// Ablation benchmarks for the design choices DESIGN.md calls out: the
// dataflow, the leakage model, the thermal grid resolution, the ICS
// spreading knob, the Eq. (6) objective weights, the remedial frequency
// sweep, and the network-on-package assumption.
package tesa_test

import (
	"context"
	"testing"

	"tesa"
	"tesa/internal/core"
	"tesa/internal/nop"
)

func ablationEvaluator(b *testing.B, mod func(*tesa.Options, *tesa.Constraints)) *tesa.Evaluator {
	b.Helper()
	opts := tesa.DefaultOptions()
	opts.Grid = 44
	cons := tesa.DefaultConstraints()
	cons.FPS = 15
	if mod != nil {
		mod(&opts, &cons)
	}
	ev, err := tesa.NewEvaluator(tesa.ARVRWorkload(), opts, cons, tesa.Models{})
	if err != nil {
		b.Fatal(err)
	}
	return ev
}

// BenchmarkAblationDataflow compares output-stationary against
// weight-stationary mapping on the paper's winning configuration: the
// choice changes cycles, utilization, and therefore power and heat.
func BenchmarkAblationDataflow(b *testing.B) {
	p := tesa.DesignPoint{ArrayDim: 200, ICSUM: 1700}
	for i := 0; i < b.N; i++ {
		for _, df := range []tesa.Dataflow{tesa.OutputStationary, tesa.WeightStationary} {
			ev := ablationEvaluator(b, func(o *tesa.Options, _ *tesa.Constraints) { o.Dataflow = df })
			e, err := ev.EvaluateFull(p)
			if err != nil {
				b.Fatal(err)
			}
			b.Logf("dataflow=%v: makespan %.1f ms, peak %.2f C, power %.2f W, DRAM %.2f W",
				df, e.MakespanSec*1e3, e.PeakTempC, e.TotalPowerW, e.DRAMPowerW)
		}
	}
}

// BenchmarkAblationLeakageModel quantifies the paper's central modeling
// argument: no leakage (W1) and linear leakage (W2) under-estimate the
// peak temperature that the exponential model (TESA) predicts.
func BenchmarkAblationLeakageModel(b *testing.B) {
	p := tesa.DesignPoint{ArrayDim: 216, ICSUM: 700}
	for i := 0; i < b.N; i++ {
		type mode struct {
			name string
			mod  func(*tesa.Options, *tesa.Constraints)
		}
		for _, m := range []mode{
			{"none (W1)", func(o *tesa.Options, _ *tesa.Constraints) { o.NoLeakage = true; o.Tech = tesa.Tech3D }},
			{"linear (W2)", func(o *tesa.Options, _ *tesa.Constraints) { o.LinearLeakage = true; o.Tech = tesa.Tech3D }},
			{"exponential (TESA)", func(o *tesa.Options, _ *tesa.Constraints) { o.Tech = tesa.Tech3D }},
		} {
			ev := ablationEvaluator(b, m.mod)
			e, err := ev.EvaluateFull(p)
			if err != nil {
				b.Fatal(err)
			}
			b.Logf("leakage=%s: peak %.2f C, leakage %.2f W, runaway=%v", m.name, e.PeakTempC, e.LeakageW, e.Runaway)
		}
	}
}

// BenchmarkAblationGrid sweeps the thermal grid resolution, validating
// that the coarse DSE grid tracks the fine reporting grid (the paper uses
// 125 um cells).
func BenchmarkAblationGrid(b *testing.B) {
	p := tesa.DesignPoint{ArrayDim: 200, ICSUM: 1700}
	for i := 0; i < b.N; i++ {
		for _, grid := range []int{24, 32, 44, 64, 88} {
			ev := ablationEvaluator(b, func(o *tesa.Options, _ *tesa.Constraints) { o.Grid = grid })
			e, err := ev.EvaluateFull(p)
			if err != nil {
				b.Fatal(err)
			}
			b.Logf("grid=%d (%.0f um cells): peak %.2f C", grid, 11000.0/float64(grid), e.PeakTempC)
		}
	}
}

// BenchmarkAblationICS sweeps the inter-chiplet spacing at fixed chiplet
// size — Fig. 1's motivation: spreading chiplets out relieves lateral
// thermal coupling, until the mesh estimator packs another chiplet in.
func BenchmarkAblationICS(b *testing.B) {
	ev := ablationEvaluator(b, nil)
	for i := 0; i < b.N; i++ {
		for _, ics := range []int{1500, 1600, 1700, 1800, 1900, 2000} {
			e, err := ev.EvaluateFull(tesa.DesignPoint{ArrayDim: 200, ICSUM: ics})
			if err != nil {
				b.Fatal(err)
			}
			b.Logf("ICS=%4d um: mesh %v, peak %.2f C", ics, e.Mesh, e.PeakTempC)
		}
	}
}

// BenchmarkAblationObjective sweeps the Eq. (6) weights: cost-only
// optimization favors fewer/smaller dies, DRAM-only favors bigger SRAM
// and fewer channels; the paper's 1/1 balances them.
func BenchmarkAblationObjective(b *testing.B) {
	space := tesa.Space{}
	for d := 184; d <= 256; d += 8 {
		space.ArrayDims = append(space.ArrayDims, d)
	}
	for ics := 0; ics <= 1000; ics += 250 {
		space.ICSUMs = append(space.ICSUMs, ics)
	}
	for i := 0; i < b.N; i++ {
		for _, w := range []struct{ alpha, beta float64 }{{1, 0}, {1, 1}, {0, 1}} {
			ev := ablationEvaluator(b, func(o *tesa.Options, _ *tesa.Constraints) {
				o.Alpha, o.Beta = w.alpha, w.beta
			})
			res, err := ev.OptimizeContext(context.Background(), space, 1, nil)
			if err != nil {
				b.Fatal(err)
			}
			if !res.Found {
				b.Logf("alpha=%g beta=%g: no solution", w.alpha, w.beta)
				continue
			}
			e := res.Best
			b.Logf("alpha=%g beta=%g: %v, %v grid, cost $%.2f, DRAM %.2f W",
				w.alpha, w.beta, e.Point, e.Mesh, e.MCMCost.Total, e.DRAMPowerW)
		}
	}
}

// BenchmarkFrequencySweep reproduces the paper's concluding remedial
// action: 3-D at 75 C has no solution at 500 MHz; reducing the frequency
// recovers feasibility.
func BenchmarkFrequencySweep(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := cfg.FrequencySweep(tesa.Tech3D, 30, 75, []float64{500, 450, 400})
		if err != nil {
			b.Fatal(err)
		}
		b.Logf("\n%s", core.FormatFrequencySweep(tesa.Tech3D, 30, 75, rows))
	}
}

// BenchmarkNoPAssumption quantifies the paper's network-on-package
// assumption on a real evaluated MCM.
func BenchmarkNoPAssumption(b *testing.B) {
	ev := ablationEvaluator(b, nil)
	for i := 0; i < b.N; i++ {
		e, err := ev.EvaluateFull(tesa.DesignPoint{ArrayDim: 200, ICSUM: 1700})
		if err != nil {
			b.Fatal(err)
		}
		a, err := ev.AssessNoP(e, nop.DefaultParams())
		if err != nil {
			b.Fatal(err)
		}
		b.Logf("NoP: worst link %.2f ns vs %.1f ms frame; wire power %.4f W vs %.2f W DRAM",
			a.WorstLatencySec*1e9, 1e3/15.0, a.WirePowerW, e.DRAMPowerW)
	}
}

// BenchmarkAblationSearchStrategy compares the paper's multi-start
// annealer against random search and greedy hill climbing at equal
// evaluation budgets on the validation space.
func BenchmarkAblationSearchStrategy(b *testing.B) {
	space := tesa.ValidationSpace()
	mk := func() *tesa.Evaluator {
		opts := tesa.DefaultOptions()
		opts.Grid = 32
		cons := tesa.DefaultConstraints()
		cons.FPS = 15
		cons.TempBudgetC = 85
		ev, err := tesa.NewEvaluator(tesa.ARVRWorkload(), opts, cons, tesa.Models{})
		if err != nil {
			b.Fatal(err)
		}
		return ev
	}
	for i := 0; i < b.N; i++ {
		msa, err := mk().OptimizeContext(context.Background(), space, 5, nil)
		if err != nil {
			b.Fatal(err)
		}
		budget := msa.Evaluations
		rnd, err := mk().RandomSearch(space, 5, budget)
		if err != nil {
			b.Fatal(err)
		}
		grd, err := mk().GreedySearch(space, 5, budget)
		if err != nil {
			b.Fatal(err)
		}
		report := func(name string, r *tesa.OptimizeResult) {
			if !r.Found {
				b.Logf("%-8s budget=%d: no solution", name, budget)
				return
			}
			b.Logf("%-8s budget=%d: %v obj=%.4f", name, budget, r.Best.Point, r.Best.Objective)
		}
		report("MSA", msa)
		report("random", rnd)
		report("greedy", grd)
	}
}
