// Command tesa-load replays a configurable job mix against a running
// tesa-server and reports end-to-end latency percentiles, error rates,
// and quarantine rates. It drives two identical legs — "cold" against a
// fresh process-wide memo store, then "warm" re-submitting the same
// request sequence — so the delta isolates the service's cross-request
// memo sharing.
//
// Usage:
//
//	tesa-load [-server http://127.0.0.1:8080] [-requests 24]
//	          [-qps 4] [-qps-peak 0] [-arrival poisson|uniform]
//	          [-mix optimize=0.6,sweep=0.2,pareto=0.2] [-seed 1]
//	          [-grid 8] [-pareto-points 3] [-out BENCH_serve.json]
//	          [-warm] [-verify]
//
// The generator draws each request's kind from -mix and its design
// sub-space from a seeded RNG, so distinct requests overlap partially:
// exactly the regime where a shared store pays. -qps sets the arrival
// rate (-qps-peak > 0 ramps linearly from -qps to -qps-peak across the
// leg); -arrival picks Poisson or uniform interarrival times. The same
// -seed replays the same sequence, which is how the warm leg re-issues
// the cold leg's work.
//
// -out writes a BENCH_serve.json with per-leg p50/p95/p99 latency
// (rank-interpolated, so they stay distinct at small request counts),
// the observation count behind them ("samples" — gates should require
// a minimum), error and quarantine rates, and the cold/warm p50
// speedup. -verify exits 1 unless every job in both legs completed
// successfully; -warm skips the cold leg (for probing an already-warm
// server).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"tesa/internal/jobspec"
	"tesa/internal/server"
	"tesa/internal/telemetry"
)

func main() {
	var (
		base     = flag.String("server", "http://127.0.0.1:8080", "tesa-server base URL")
		requests = flag.Int("requests", 24, "jobs per leg")
		qps      = flag.Float64("qps", 4, "target arrival rate in jobs/sec")
		qpsPeak  = flag.Float64("qps-peak", 0, "ramp the rate linearly from -qps to this across each leg (0 = flat)")
		arrival  = flag.String("arrival", "poisson", "interarrival process: poisson or uniform")
		mixSpec  = flag.String("mix", "optimize=0.6,sweep=0.2,pareto=0.2", "job-kind ratios")
		seed     = flag.Int64("seed", 1, "request-generator seed (same seed = same sequence)")
		grid     = flag.Int("grid", 8, "thermal grid for generated jobs")
		points   = flag.Int("pareto-points", 3, "front size for generated pareto jobs")
		out      = flag.String("out", "", "write the benchmark report JSON here")
		warmOnly = flag.Bool("warm", false, "skip the cold leg (probe an already-warm server)")
		verify   = flag.Bool("verify", false, "exit 1 unless every job in every leg succeeded")
	)
	flag.Parse()

	mix, err := parseMix(*mixSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *arrival != "poisson" && *arrival != "uniform" {
		fmt.Fprintf(os.Stderr, "unknown -arrival %q\n", *arrival)
		os.Exit(2)
	}

	cl := server.NewClient(*base, nil)
	ctx := context.Background()
	// Gate on readiness, not liveness: a draining server is alive (200
	// on /healthz) but refuses submissions, which /readyz reports.
	if rd, err := cl.Ready(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "tesa-load: server unreachable: %v\n", err)
		os.Exit(1)
	} else if ready, _ := rd["ready"].(bool); !ready {
		fmt.Fprintf(os.Stderr, "tesa-load: server not accepting jobs: %v\n", rd)
		os.Exit(1)
	}

	gen := generator{mix: mix, grid: *grid, points: *points}
	legs := []string{"cold", "warm"}
	if *warmOnly {
		legs = []string{"warm"}
	}
	report := report{
		Bench:    "serve",
		Server:   *base,
		Requests: *requests,
		Mix:      *mixSpec,
		Arrival:  *arrival,
		QPS:      *qps,
		QPSPeak:  *qpsPeak,
		Seed:     *seed,
	}
	failures := 0
	for _, name := range legs {
		// Same seed per leg: the warm leg replays the cold leg's exact
		// request sequence against the now-populated store.
		specs := gen.sequence(rand.New(rand.NewSource(*seed)), *requests)
		leg := runLeg(ctx, cl, name, specs, *qps, *qpsPeak, *arrival, rand.New(rand.NewSource(*seed+1)))
		report.Legs = append(report.Legs, leg)
		failures += leg.Failed
		fmt.Printf("%s: %d jobs in %.1fs  p50 %.0fms  p95 %.0fms  p99 %.0fms  errors %.1f%%  quarantined %d\n",
			name, leg.Done+leg.Failed, leg.WallSec, leg.P50Ms, leg.P95Ms, leg.P99Ms, 100*leg.ErrorRate, leg.Quarantined)
	}
	if len(report.Legs) == 2 && report.Legs[1].P50Ms > 0 {
		report.WarmSpeedupP50 = report.Legs[0].P50Ms / report.Legs[1].P50Ms
		report.WarmSpeedupP95 = report.Legs[0].P95Ms / report.Legs[1].P95Ms
		fmt.Printf("warm speedup: %.2fx p50, %.2fx p95\n", report.WarmSpeedupP50, report.WarmSpeedupP95)
	}

	if *out != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err == nil {
			err = os.WriteFile(*out, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *verify && failures > 0 {
		fmt.Fprintf(os.Stderr, "tesa-load: %d job(s) failed\n", failures)
		os.Exit(1)
	}
}

// report is the BENCH_serve.json schema.
type report struct {
	Bench          string  `json:"bench"`
	Server         string  `json:"server"`
	Requests       int     `json:"requests_per_leg"`
	Mix            string  `json:"mix"`
	Arrival        string  `json:"arrival"`
	QPS            float64 `json:"qps"`
	QPSPeak        float64 `json:"qps_peak,omitempty"`
	Seed           int64   `json:"seed"`
	Legs           []leg   `json:"legs"`
	WarmSpeedupP50 float64 `json:"warm_speedup_p50,omitempty"`
	WarmSpeedupP95 float64 `json:"warm_speedup_p95,omitempty"`
}

// leg aggregates one replay of the request sequence.
type leg struct {
	Name        string  `json:"name"`
	Done        int     `json:"done"`
	Failed      int     `json:"failed"`
	Quarantined int     `json:"quarantined"`
	ErrorRate   float64 `json:"error_rate"`
	// Samples is the latency observation count behind the percentiles —
	// gates should require a minimum before trusting p95/p99, which are
	// rank-interpolated and only a few samples apart at small N.
	Samples int     `json:"samples"`
	P50Ms   float64 `json:"p50_ms"`
	P95Ms   float64 `json:"p95_ms"`
	P99Ms   float64 `json:"p99_ms"`
	MeanMs  float64 `json:"mean_ms"`
	WallSec float64 `json:"wall_sec"`
}

// runLeg submits specs at the configured arrival rate, waits for every
// job, and aggregates latencies on a per-leg telemetry registry.
func runLeg(ctx context.Context, cl *server.Client, name string, specs [][]byte,
	qps, qpsPeak float64, arrival string, rng *rand.Rand) leg {
	reg := telemetry.NewRegistry()
	hist := reg.Histogram("load_job_seconds")
	var (
		wg          sync.WaitGroup
		mu          sync.Mutex
		done        int
		failed      int
		quarantined int
	)
	start := time.Now()
	for i, spec := range specs {
		if i > 0 {
			frac := float64(i) / float64(len(specs))
			rate := qps
			if qpsPeak > 0 {
				rate = qps + (qpsPeak-qps)*frac
			}
			mean := 1 / rate
			wait := mean
			if arrival == "poisson" {
				wait = rng.ExpFloat64() * mean
			}
			time.Sleep(time.Duration(wait * float64(time.Second)))
		}
		wg.Add(1)
		go func(spec []byte) {
			defer wg.Done()
			t0 := time.Now()
			res, err := cl.Run(ctx, spec, nil)
			hist.ObserveDuration(time.Since(t0))
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				failed++
				fmt.Fprintf(os.Stderr, "%s: job failed: %v\n", name, err)
				return
			}
			done++
			quarantined += res.Quarantined
		}(spec)
	}
	wg.Wait()
	wall := time.Since(start)

	snap := hist.Snapshot()
	l := leg{
		Name:        name,
		Done:        done,
		Failed:      failed,
		Quarantined: quarantined,
		Samples:     int(snap.Count),
		P50Ms:       1e3 * snap.Quantile(0.50),
		P95Ms:       1e3 * snap.Quantile(0.95),
		P99Ms:       1e3 * snap.Quantile(0.99),
		MeanMs:      1e3 * snap.Mean(),
		WallSec:     wall.Seconds(),
	}
	if done+failed > 0 {
		l.ErrorRate = float64(failed) / float64(done+failed)
	}
	return l
}

// generator draws deterministic jobspec documents whose sub-spaces
// partially overlap, so a shared memo store has cross-request hits.
type generator struct {
	mix    []kindWeight
	grid   int
	points int
}

type kindWeight struct {
	kind   string
	weight float64
}

// sequence renders n spec documents from rng.
func (g generator) sequence(rng *rand.Rand, n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = g.one(rng)
	}
	return out
}

// one renders a single spec: a kind drawn from the mix and a small
// design sub-space drawn from the feasible region around 180-256 PEs.
func (g generator) one(rng *rand.Rand) []byte {
	kind := g.mix[len(g.mix)-1].kind
	u := rng.Float64()
	for _, kw := range g.mix {
		if u < kw.weight {
			kind = kw.kind
			break
		}
		u -= kw.weight
	}
	// 2-3 array dims from {180..256 step 4}, 2 ICS pitches from
	// {0..1000 step 250}: small jobs that overlap across requests.
	dims := pick(rng, ints(180, 256, 4), 2+rng.Intn(2))
	ics := pick(rng, ints(0, 1000, 250), 2)

	grid := g.grid
	spec := jobspec.Spec{
		Version:     jobspec.Version,
		Kind:        kind,
		Options:     &jobspec.Options{Grid: &grid},
		Constraints: &jobspec.Constraints{FPS: f(15), TempC: f(85)},
		Space:       &jobspec.Space{ArrayDims: dims, ICSUMs: ics},
	}
	s := int64(1 + rng.Intn(4))
	spec.Seed = &s
	if kind == jobspec.KindPareto {
		spec.Pareto = &jobspec.Pareto{Points: g.points}
	}
	raw, err := spec.Marshal()
	if err != nil {
		panic(err) // a generator bug, not a runtime condition
	}
	return raw
}

func f(v float64) *float64 { return &v }

// ints returns {lo, lo+step, ..., hi}.
func ints(lo, hi, step int) []int {
	var out []int
	for v := lo; v <= hi; v += step {
		out = append(out, v)
	}
	return out
}

// pick draws k distinct values from vals, sorted ascending.
func pick(rng *rand.Rand, vals []int, k int) []int {
	if k > len(vals) {
		k = len(vals)
	}
	idx := rng.Perm(len(vals))[:k]
	out := make([]int, k)
	for i, j := range idx {
		out[i] = vals[j]
	}
	sort.Ints(out)
	return out
}

// parseMix parses "optimize=0.6,sweep=0.2,pareto=0.2" into normalized
// weights.
func parseMix(s string) ([]kindWeight, error) {
	var mix []kindWeight
	total := 0.0
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kind, ws, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("-mix: %q is not kind=weight", part)
		}
		switch kind {
		case jobspec.KindOptimize, jobspec.KindSweep, jobspec.KindPareto:
		default:
			return nil, fmt.Errorf("-mix: unknown kind %q", kind)
		}
		w, err := strconv.ParseFloat(ws, 64)
		if err != nil || w < 0 || math.IsNaN(w) {
			return nil, fmt.Errorf("-mix: bad weight %q", ws)
		}
		if w == 0 {
			continue
		}
		mix = append(mix, kindWeight{kind: kind, weight: w})
		total += w
	}
	if len(mix) == 0 {
		return nil, fmt.Errorf("-mix: no kinds with positive weight in %q", s)
	}
	for i := range mix {
		mix[i].weight /= total
	}
	return mix, nil
}
