// Command tesa-thermal evaluates one MCM design point with the full
// models and dumps its hottest-phase thermal map (the paper's Fig. 6) as
// ASCII art and optionally CSV.
//
// Usage:
//
//	tesa-thermal -dim 200 -ics 1700 [-tech 2d|3d] [-freq 400] [-fps 30]
//	             [-grid 88] [-csv out.csv]
//	             [-metrics] [-trace out.jsonl] [-pprof addr]
//	             [-metrics-addr addr] [-manifest run.jsonl]
//
// Observability: -metrics prints the per-stage latency breakdown of
// the single full-fidelity evaluation (the thermal solve dominates),
// -trace streams the pipeline's JSONL events, -pprof serves
// net/http/pprof, -metrics-addr serves the live exposition endpoints,
// and -manifest writes the run manifest — the same flags as the
// search commands.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"tesa"
	"tesa/internal/cli"
)

func main() {
	var (
		dim     = flag.Int("dim", 200, "systolic array dimension")
		ics     = flag.Int("ics", 1700, "inter-chiplet spacing in micrometers")
		tech    = flag.String("tech", "2d", "integration technology: 2d or 3d")
		freqMHz = flag.Float64("freq", 400, "operating frequency in MHz")
		fps     = flag.Float64("fps", 30, "latency constraint in frames per second")
		tempC   = flag.Float64("temp", 75, "thermal budget in Celsius")
		grid    = flag.Int("grid", 88, "thermal grid cells per side")
		csvPath = flag.String("csv", "", "also write the temperature field as CSV")
		obs     = cli.ObservabilityFlags()
	)
	flag.Parse()

	sess, err := obs.Setup("tesa-thermal", os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	tel := sess.Tel

	opts := tesa.DefaultOptions()
	if strings.EqualFold(*tech, "3d") {
		opts.Tech = tesa.Tech3D
	}
	opts.FreqHz = *freqMHz * 1e6
	opts.Grid = *grid
	cons := tesa.DefaultConstraints()
	cons.FPS = *fps
	cons.TempBudgetC = *tempC

	ev, err := tesa.NewEvaluator(tesa.ARVRWorkload(), opts, cons, tesa.Models{})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	ev.Instrument(tel)
	sess.Manifest.Set("point", fmt.Sprintf("%dx%d@%d", *dim, *dim, *ics))
	e, err := ev.EvaluateFull(tesa.DesignPoint{ArrayDim: *dim, ICSUM: *ics})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		sess.Finish("error")
		os.Exit(1)
	}
	if !e.Fits {
		fmt.Printf("%v does not fit the %.0f mm interposer\n", e.Point, cons.InterposerMM)
		sess.Finish("no-fit")
		os.Exit(3)
	}
	fmt.Printf("%v: %v grid, peak %.2f C, power %.2f W (dyn %.2f + leak %.2f), feasible=%v %v\n",
		e.Point, e.Mesh, e.PeakTempC, e.TotalPowerW, e.DynamicPowerW, e.LeakageW, e.Feasible, e.Violations)
	if e.Runaway {
		fmt.Println("THERMAL RUNAWAY: the leakage-temperature fixed point diverges")
	}
	fmt.Println()
	fmt.Print(tesa.ThermalMapASCII(e))

	if *csvPath != "" {
		csv := tesa.ThermalMapCSV(e)
		if csv == "" {
			fmt.Fprintln(os.Stderr, "no thermal field available for CSV export")
			sess.Finish("error")
			os.Exit(1)
		}
		if err := os.WriteFile(*csvPath, []byte(csv), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			sess.Finish("error")
			os.Exit(1)
		}
		fmt.Printf("\nwrote %s\n", *csvPath)
	}
	sess.Finish("ok")
}
