// Command tesa-sim drives one MCM design point through a dynamic
// multi-tenant workload: seeded arrival processes feed per-chiplet
// queues, utilization windows become piecewise-constant power traces
// for the transient thermal solver, and a temperature-triggered DVFS
// governor closes the loop. It reports what the steady-state evaluation
// cannot see — SLA tail-latency violations, throttle events, and the
// temperature envelope under bursts.
//
// Usage:
//
//	tesa-sim -dim 200 -ics 1700 -duration 10 \
//	         -tenant ar:MobileNet:diurnal:10:0.1 \
//	         -tenant vr:ResNet-50:poisson:5:0.1 \
//	         [-tech 2d|3d] [-freq 400] [-fps 30] [-temp 75] [-grid 88]
//	         [-dt 0.05] [-seed 1] [-draws 1] [-trip 0] [-events log.jsonl]
//	         [-json] [-job spec.json]
//	         [-metrics] [-trace out.jsonl] [-pprof addr]
//	         [-metrics-addr addr] [-manifest run.jsonl]
//
// Each -tenant is name:network:kind:rateRPS:slaSec, where kind is
// poisson, diurnal, or mmpp (richer arrival shapes — diurnal swing and
// period, MMPP burst rates and holding times — are available through a
// -job spec). -trip 0 trips the throttle at the -temp budget. -events
// writes the simulation's event log as JSONL; identically-seeded runs
// write bit-identical logs. -draws N scores the point over N seeded
// scenario draws and reports the distribution aggregate.
//
// Exit codes: 0 ok, 1 error, 3 the point does not fit the interposer.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"tesa"
	"tesa/internal/cli"
	"tesa/internal/jobspec"
)

// tenantFlags collects repeated -tenant specs.
type tenantFlags []string

// String renders the accumulated specs for flag's usage output.
func (t *tenantFlags) String() string { return strings.Join(*t, " ") }

// Set appends one -tenant occurrence.
func (t *tenantFlags) Set(v string) error {
	*t = append(*t, v)
	return nil
}

// parseTenant decodes one name:network:kind:rateRPS:slaSec spec.
func parseTenant(spec string) (tesa.Tenant, error) {
	parts := strings.Split(spec, ":")
	if len(parts) != 5 {
		return tesa.Tenant{}, fmt.Errorf("-tenant %q: want name:network:kind:rateRPS:slaSec", spec)
	}
	rate, err := strconv.ParseFloat(parts[3], 64)
	if err != nil {
		return tesa.Tenant{}, fmt.Errorf("-tenant %q: bad rate: %v", spec, err)
	}
	sla, err := strconv.ParseFloat(parts[4], 64)
	if err != nil {
		return tesa.Tenant{}, fmt.Errorf("-tenant %q: bad SLA: %v", spec, err)
	}
	return tesa.Tenant{
		Name:    parts[0],
		Network: parts[1],
		Arrival: tesa.ArrivalSpec{Kind: strings.ToLower(parts[2]), RateRPS: rate},
		SLASec:  sla,
	}, nil
}

func main() {
	var tenants tenantFlags
	var (
		dim      = flag.Int("dim", 200, "systolic array dimension")
		ics      = flag.Int("ics", 1700, "inter-chiplet spacing in micrometers")
		tech     = flag.String("tech", "2d", "integration technology: 2d or 3d")
		freqMHz  = flag.Float64("freq", 400, "operating frequency in MHz")
		fps      = flag.Float64("fps", 30, "latency constraint in frames per second")
		tempC    = flag.Float64("temp", 75, "thermal budget in Celsius")
		grid     = flag.Int("grid", 88, "thermal grid cells per side")
		duration = flag.Float64("duration", 10, "simulated horizon in seconds")
		dt       = flag.Float64("dt", 0.05, "thermal coupling tick in seconds")
		seed     = flag.Int64("seed", 1, "scenario seed (same seed, same run)")
		draws    = flag.Int("draws", 1, "score the point over this many seeded scenario draws")
		trip     = flag.Float64("trip", 0, "DVFS throttle trip point in Celsius (0 = the -temp budget)")
		events   = flag.String("events", "", "write the simulation event log as JSONL to this file")
		jsonOut  = flag.Bool("json", false, "print the full wire-form result as JSON")
		jobPath  = cli.JobFlag()
		obs      = cli.ObservabilityFlags()
	)
	flag.Var(&tenants, "tenant", "add a traffic source: name:network:kind:rateRPS:slaSec (repeatable)")
	flag.Parse()

	sess, err := obs.Setup("tesa-sim", os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	job, err := cli.ResolveJob(*jobPath, jobspec.KindSim,
		"dim", "ics", "tech", "freq", "fps", "temp", "grid",
		"duration", "dt", "seed", "draws", "trip", "tenant")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		sess.Finish("error")
		os.Exit(1)
	}

	var (
		point    tesa.DesignPoint
		scenario tesa.Scenario
		nDraws   int
		opts     tesa.Options
		cons     tesa.Constraints
		workload tesa.Workload
	)
	if job != nil {
		point, scenario, nDraws = job.SimPoint, job.Scenario, job.SimDraws
		opts, cons, workload = job.Opts, job.Cons, job.Workload
	} else {
		opts = tesa.DefaultOptions()
		if strings.EqualFold(*tech, "3d") {
			opts.Tech = tesa.Tech3D
		}
		opts.FreqHz = *freqMHz * 1e6
		opts.Grid = *grid
		cons = tesa.DefaultConstraints()
		cons.FPS = *fps
		cons.TempBudgetC = *tempC
		workload = tesa.ARVRWorkload()
		point = tesa.DesignPoint{ArrayDim: *dim, ICSUM: *ics}
		if len(tenants) == 0 {
			fmt.Fprintln(os.Stderr, "no traffic: give at least one -tenant name:network:kind:rateRPS:slaSec (or -job)")
			sess.Finish("error")
			os.Exit(1)
		}
		scenario = tesa.Scenario{
			Seed:         *seed,
			DurationSec:  *duration,
			ThermalDtSec: *dt,
			Throttle:     tesa.Throttle{TripC: *trip},
		}
		if scenario.Throttle.TripC == 0 {
			scenario.Throttle.TripC = cons.TempBudgetC
		}
		for _, spec := range tenants {
			t, err := parseTenant(spec)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				sess.Finish("error")
				os.Exit(1)
			}
			scenario.Tenants = append(scenario.Tenants, t)
		}
		nDraws = *draws
		if nDraws < 1 {
			nDraws = 1
		}
	}
	sess.Manifest.Set("point", fmt.Sprintf("%dx%d@%d", point.ArrayDim, point.ArrayDim, point.ICSUM))
	sess.Manifest.Set("scenario_seed", scenario.Seed)
	sess.Manifest.Set("draws", nDraws)

	ev, err := tesa.NewEvaluator(workload, opts, cons, tesa.Models{})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		sess.Finish("error")
		os.Exit(1)
	}
	ev.Instrument(sess.Tel)

	full, err := ev.EvaluateFull(point)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		sess.Finish("error")
		os.Exit(1)
	}
	if !full.Fits {
		fmt.Printf("%v does not fit the %.0f mm interposer\n", full.Point, cons.InterposerMM)
		sess.Finish("no-fit")
		os.Exit(3)
	}

	var logW io.Writer
	if *events != "" {
		f, err := os.Create(*events)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			sess.Finish("error")
			os.Exit(1)
		}
		defer f.Close()
		logW = f
	}

	ctx := context.Background()
	base, err := ev.Simulate(ctx, full, scenario, logW)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		sess.Finish("error")
		os.Exit(1)
	}
	score, err := ev.SimulateDistribution(ctx, full, scenario, nDraws)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		sess.Finish("error")
		os.Exit(1)
	}
	res := jobspec.FromSim(full, base, score)

	if *jsonOut {
		out, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			sess.Finish("error")
			os.Exit(1)
		}
		fmt.Println(string(out))
		sess.Finish("ok")
		return
	}

	fmt.Printf("%v: %v grid, static peak %.2f C, static objective %.4g\n",
		full.Point, full.Mesh, full.PeakTempC, full.Objective)
	fmt.Printf("scenario: seed %d, %.3g s horizon, %d tenants, dt %.3g s, throttle trips at %.1f C\n",
		scenario.Seed, scenario.DurationSec, len(scenario.Tenants), scenario.ThermalDtSec, scenario.Throttle.TripC)
	fmt.Printf("dynamic: %d requests, %d completed, %d SLA violations, %d throttle events (%.3g s throttled, min freq x%.2f), peak %.2f C\n",
		base.Requests, base.Completed, base.SLAViolations, base.ThrottleEvents,
		base.ThrottledSec, base.MinFreqFactor, base.PeakTempC)
	for _, ts := range base.Tenants {
		fmt.Printf("  tenant %-12s %5d req  %5d done  %4d over SLA  p50 %.4g ms  p95 %.4g ms  p99 %.4g ms\n",
			ts.Name, ts.Requests, ts.Completed, ts.SLAViolations,
			ts.P50Sec*1e3, ts.P95Sec*1e3, ts.P99Sec*1e3)
	}
	if nDraws > 1 {
		fmt.Printf("distribution (%d draws): mean SLA rate %.3g (max %.3g), mean throttled frac %.3g, peak %.2f C (max %.2f C)\n",
			score.Draws, score.MeanSLARate, score.MaxSLARate, score.MeanThrottledFrac,
			score.MeanPeakC, score.MaxPeakC)
	}
	fmt.Printf("combined objective %.4g (static %.4g, dynamic penalty %.3g)\n",
		res.Sim.CombinedObjective, res.Sim.StaticObjective, score.DynamicPenalty())
	if *events != "" {
		fmt.Printf("wrote %s\n", *events)
	}
	sess.Finish("ok")
}
