// Command tesa-sweep exhaustively evaluates a design space and compares
// the global optimum against the multi-start annealer — the paper's
// Sec. IV-A optimizer-correctness study, plus a way to quantify how much
// of the full Table II space is feasible per corner.
//
// Usage:
//
//	tesa-sweep [-job spec.json]
//	           [-tech 2d|3d] [-freq 400] [-fps 30] [-temp 75]
//	           [-full] [-grid 32] [-seed 1] [-shard 0]
//	           [-checkpoint sweep.ckpt] [-resume sweep.ckpt] [-progress]
//	           [-faults spec] [-max-failures 0] [-fail-fast]
//	           [-stage-timeout 0] [-metrics] [-trace out.jsonl]
//	           [-pprof addr] [-metrics-addr addr] [-manifest run.jsonl]
//	           [-thermal-fast] [-surrogate-band 3]
//	           [-surrogate] [-surrogate-k 8]
//	           [-memo] [-memo-dir .tesa-memo] [-starts-parallel]
//	tesa-sweep -coordinate :9090 -job spec.json
//	           [-lease-ttl 10s] [-lease-shards 4] [-verify-frac 0.1]
//	           [-checkpoint ledger.ckpt] [-resume ledger.ckpt]
//	tesa-sweep -worker http://host:9090 [-worker-name w1] [-faults spec]
//
// -job runs a versioned jobspec document (tesa.jobspec/v1, kind
// "sweep") instead of per-setting flags: the same file drives this
// command, the library, and tesa-server to bit-identical feasibility
// counts and optima. Config flags conflict with -job; operational
// flags (-progress, -checkpoint, -resume, -memo*, telemetry) compose.
//
// -thermal-fast runs both the exhaustive sweep and the annealer on the
// fast thermal path (workspace CG, warm starts, surrogate pre-screen
// with a -surrogate-band guard band); feasibility decisions and the
// winning points are unchanged, only wall-clock time drops.
//
// -surrogate enables the learned ranking surrogate on both evaluators:
// sweep shard interiors are evaluated best-predicted-first (the winner
// is identical by construction — every point is still evaluated) and
// the annealer ranks its candidate moves. With -memo-dir, the model
// warm-starts from the persisted evaluation corpus.
//
// -memo shares one content-addressed memo store between the exhaustive
// sweep and the annealer, so the annealer's evaluations are served
// from the sweep's results; -memo-dir persists the store across
// invocations and -starts-parallel runs the annealing chains through a
// worker pool. All three change wall-clock time only — the feasibility
// counts, both optima, and the agreement verdict are identical.
//
// By default the small validation space (64x64..128x128 arrays, coarse
// ICS) is swept; -full sweeps the whole Table II space — the
// "multiple days" regime the checkpointing exists for. The sweep is
// sharded; -checkpoint appends one JSONL record per completed shard
// (crash-safe: temp-file + rename creation, fsync per record), so a run
// killed by SIGINT/SIGTERM (or a crash) restarts where it left off with
// -resume pointing at the same file. Both flags may name the same path:
// resume reads it, then new records append to it. -progress streams
// live status lines to stderr.
//
// Failure handling: a design point whose evaluation fails (panic, NaN,
// diverged thermal solve, timeout) is quarantined — recorded in the
// checkpoint so a resume skips it — and the sweep continues.
// -max-failures bounds the quarantine count, -fail-fast restores the
// abort-on-first-failure behavior, and -faults (or TESA_FAULTS) injects
// deterministic faults for chaos runs. A run that completes with a
// non-empty quarantine ledger prints a failure summary and exits 4.
//
// Distributed mode (internal/distrib): -coordinate serves the
// lease-based sweep protocol on the given address, executing nothing
// itself except trust-but-verify re-evaluations; -worker joins a
// coordinator, fetches the spec, and executes leased shards. The
// coordinator's -checkpoint ledger is byte-compatible with a
// single-process sweep checkpoint — resume it with either mode, or
// with a plain local run. A worker's -faults spec may additionally
// carry worker-level rules (crash@shard, stall@shard, lie@shard) for
// chaos drills; a worker caught lying exits 4 (quarantined).
//
// The telemetry flags instrument both the exhaustive and the annealer
// evaluator, so the -metrics summary contrasts the sweep's pure
// pipeline throughput with the annealer's cache-amplified one.
// -metrics-addr additionally serves live /metrics (Prometheus text),
// /debug/vars, /progress and /debug/pprof for the whole run, and
// -manifest writes the run manifest as JSONL start/end records whose
// run id is also stamped into the checkpoint header, joining the
// checkpoint, trace, and manifest streams of one run.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"tesa"
	"tesa/internal/cli"
	"tesa/internal/distrib"
	"tesa/internal/faults"
)

func main() {
	var (
		tech        = flag.String("tech", "2d", "integration technology: 2d or 3d")
		freqMHz     = flag.Float64("freq", 400, "operating frequency in MHz")
		fps         = flag.Float64("fps", 15, "latency constraint in frames per second")
		tempC       = flag.Float64("temp", 85, "thermal budget in Celsius")
		full        = flag.Bool("full", false, "sweep the full Table II space instead of the validation space")
		grid        = flag.Int("grid", 32, "thermal grid cells per side")
		seed        = flag.Int64("seed", 1, "optimizer seed")
		shard       = flag.Int("shard", 0, "points per sweep shard (0 = automatic)")
		ckptPath    = flag.String("checkpoint", "", "append sweep checkpoint records to this JSONL file")
		resumePath  = flag.String("resume", "", "resume the sweep from this checkpoint file")
		progress    = flag.Bool("progress", false, "stream live progress to stderr")
		faultSpec   = flag.String("faults", os.Getenv("TESA_FAULTS"), "fault-injection spec, e.g. panic@thermal:rate=0.05 (default $TESA_FAULTS)")
		maxFailures = flag.Int("max-failures", 0, "abort once more than this many points are quarantined (0 = unlimited)")
		failFast    = flag.Bool("fail-fast", false, "abort on the first failed evaluation instead of quarantining it")
		stageTO     = flag.Duration("stage-timeout", 0, "quarantine a point when one pipeline stage exceeds this duration (0 = off)")
		fast        = flag.Bool("thermal-fast", false, "fast thermal path: workspace CG, warm starts, surrogate pre-screen")
		band        = flag.Float64("surrogate-band", tesa.DefaultSurrogateBandC, "surrogate pre-screen guard band in Celsius (with -thermal-fast)")
		surrogate   = flag.Bool("surrogate", false, "learned ranking surrogate: order sweep shards and annealer moves best-predicted-first (results unchanged)")
		surK        = flag.Int("surrogate-k", 0, "surrogate neighborhood size (0 = default; with -surrogate)")
		coordinate  = flag.String("coordinate", "", "serve a distributed sweep coordinator on this address (requires -job)")
		workerURL   = flag.String("worker", "", "join the distributed sweep coordinator at this base URL as a worker")
		workerName  = flag.String("worker-name", "", "worker identity reported to the coordinator (default: generated)")
		leaseTTL    = flag.Duration("lease-ttl", 10*time.Second, "coordinator: heartbeat deadline before a worker's leases are stolen")
		leaseShards = flag.Int("lease-shards", 4, "coordinator: maximum contiguous shards granted per lease request")
		verifyFrac  = flag.Float64("verify-frac", 0.1, "coordinator: fraction of reported shards spot re-executed (negative = off)")
		obs         = cli.ObservabilityFlags()
		mf          = cli.MemoFlagsRegister()
		jobPath     = cli.JobFlag()
	)
	flag.Parse()

	if *workerURL != "" && (*jobPath != "" || *coordinate != "") {
		fmt.Fprintln(os.Stderr, "-worker conflicts with -job and -coordinate: workers fetch the spec from the coordinator")
		os.Exit(2)
	}
	if *coordinate != "" && *jobPath == "" {
		fmt.Fprintln(os.Stderr, "-coordinate requires -job: the spec is what workers execute")
		os.Exit(2)
	}

	job, err := cli.ResolveJob(*jobPath, "sweep",
		"tech", "freq", "fps", "temp", "full", "grid", "seed", "shard",
		"faults", "max-failures", "fail-fast", "stage-timeout",
		"thermal-fast", "surrogate-band", "surrogate", "surrogate-k")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	// SIGINT/SIGTERM cancel the context; the engines observe it between
	// evaluations, checkpoint state stays consistent, and we exit with
	// the conventional 130. A -job spec's deadline_sec bounds the run
	// the same way.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if job != nil && job.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, job.Deadline)
		defer cancel()
	}

	sess, err := obs.Setup("tesa-sweep", os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	tel := sess.Tel
	store, memoDone, err := mf.Store()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	finish := func(status string) {
		if store != nil && obs.Metrics {
			fmt.Printf("memo: %s\n", store.Stats())
		}
		sess.Finish(status)
		if err := memoDone(); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}

	// Distributed modes exit from inside their helpers; the rest of main
	// is the single-process sweep-vs-annealer study.
	if *workerURL != "" {
		runWorkerMode(ctx, *workerURL, *workerName, *faultSpec, store, sess, finish)
	}
	if *coordinate != "" {
		runCoordinateMode(ctx, coordinateConfig{
			addr:        *coordinate,
			jobPath:     *jobPath,
			ckptPath:    *ckptPath,
			resumePath:  *resumePath,
			leaseTTL:    *leaseTTL,
			leaseShards: *leaseShards,
			verifyFrac:  *verifyFrac,
			progress:    *progress,
		}, store, sess, finish)
	}

	opts := tesa.DefaultOptions()
	if strings.EqualFold(*tech, "3d") {
		opts.Tech = tesa.Tech3D
	}
	opts.FreqHz = *freqMHz * 1e6
	opts.Grid = *grid
	opts.ThermalFast = *fast
	opts.SurrogateBandC = *band
	opts.Surrogate = *surrogate
	opts.SurrogateK = *surK
	cons := tesa.DefaultConstraints()
	cons.FPS = *fps
	cons.TempBudgetC = *tempC

	space := tesa.ValidationSpace()
	if *full {
		space = tesa.DefaultSpace()
	}
	w := tesa.ARVRWorkload()
	if job != nil {
		// The spec is the configuration: everything the config flags
		// would have assembled comes from the resolved job instead.
		opts, cons, w, space = job.Opts, job.Cons, job.Workload, job.Space
		*seed = job.Seed
		*shard = job.ShardSize
		*maxFailures, *failFast, *stageTO = job.MaxFailures, job.FailFast, job.StageTimeout
		*faultSpec = job.Faults
	}

	sess.Manifest.Set("space", space.Fingerprint())
	sess.Manifest.Set("seed", *seed)
	sess.Manifest.Set("workload", w.Name)
	if *faultSpec != "" {
		sess.Manifest.Set("faults", *faultSpec)
	}

	// RunID stamps the manifest's run id into the checkpoint header, so
	// a cold checkpoint names the manifest and trace records of the run
	// that wrote it.
	sweepOpt := &tesa.SweepOptions{ShardSize: *shard, MaxFailures: *maxFailures, FailFast: *failFast,
		RunID: sess.Manifest.RunID()}
	if *resumePath != "" {
		f, err := os.Open(*resumePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		state, err := tesa.LoadCheckpoint(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		sweepOpt.ResumeFrom = state
		fmt.Printf("resuming: %d of %d shards (%d of %d points) from %s\n",
			state.Completed(), state.Shards, state.CompletedPoints(), state.Total, *resumePath)
	}
	if *ckptPath != "" {
		// FileSink creates a fresh checkpoint via temp-file + rename and
		// fsyncs every flushed record, so a SIGKILL (or power loss) can
		// tear at most the final line — which LoadCheckpoint tolerates.
		sink, err := tesa.NewFileSink(*ckptPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer sink.Close()
		sweepOpt.Checkpoint = sink
	}
	if *progress {
		sweepOpt.Progress = progressPrinter("sweep")
	}
	sweepOpt.Progress = sess.Progress(sweepOpt.Progress)

	ex, err := tesa.NewEvaluator(w, opts, cons, tesa.Models{})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	ex.Instrument(tel)
	if store != nil {
		ex.UseMemo(store)
	}
	if err := cli.ApplyFaults(ex, *faultSpec, *stageTO); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fmt.Printf("exhaustive sweep: %d design vectors (%s, %.0f MHz, %.0f fps, %.0f C)\n",
		space.Size(), opts.Tech, opts.FreqHz/1e6, cons.FPS, cons.TempBudgetC)
	start := time.Now()
	exRes, err := ex.ExhaustiveContext(ctx, space, sweepOpt)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "\ninterrupted")
			if *ckptPath != "" {
				fmt.Fprintf(os.Stderr, "resume with: tesa-sweep -resume %s -checkpoint %s [same flags]\n",
					*ckptPath, *ckptPath)
			}
			finish("interrupted")
			os.Exit(130)
		}
		if errors.Is(err, tesa.ErrTooManyFailures) {
			cli.FailureSummary(os.Stderr, ex.QuarantineLedger())
		}
		fmt.Fprintln(os.Stderr, err)
		finish("error")
		os.Exit(1)
	}
	exElapsed := time.Since(start)
	fmt.Printf("  %d feasible of %d (%.1f%%), %.1fs", exRes.Feasible, exRes.Total,
		100*float64(exRes.Feasible)/float64(exRes.Total), exElapsed.Seconds())
	if exRes.Resumed > 0 {
		fmt.Printf(" (%d points evaluated, %d resumed)", exRes.Evaluated, exRes.Resumed)
	}
	fmt.Println()
	cli.FailureSummary(os.Stdout, exRes.Poisoned)
	if exRes.Best != nil {
		fmt.Printf("  global optimum: %v, %v grid, objective %.4f\n",
			exRes.Best.Point, exRes.Best.Mesh, exRes.Best.Objective)
	} else {
		fmt.Println("  no feasible configuration in this space")
	}

	op, err := tesa.NewEvaluator(w, opts, cons, tesa.Models{})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	op.Instrument(tel)
	if store != nil {
		// The same store the sweep filled: the annealer's evaluations
		// are served from the exhaustive results.
		op.UseMemo(store)
	}
	if err := cli.ApplyFaults(op, *faultSpec, *stageTO); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	optOpt := &tesa.OptimizeOptions{MaxFailures: *maxFailures, FailFast: *failFast, Parallel: mf.StartWorkers()}
	if *progress {
		optOpt.Progress = progressPrinter("anneal")
	}
	optOpt.Progress = sess.Progress(optOpt.Progress)
	start = time.Now()
	opRes, err := op.OptimizeContext(ctx, space, *seed, optOpt)
	switch {
	case errors.Is(err, tesa.ErrNoFeasibleStart):
		// Valid outcome: the annealer agrees or disagrees with the
		// sweep below, via opRes.Found == false.
	case errors.Is(err, context.Canceled):
		fmt.Fprintln(os.Stderr, "\ninterrupted during annealer run")
		finish("interrupted")
		os.Exit(130)
	case err != nil:
		if errors.Is(err, tesa.ErrTooManyFailures) {
			cli.FailureSummary(os.Stderr, op.QuarantineLedger())
		}
		fmt.Fprintln(os.Stderr, err)
		finish("error")
		os.Exit(1)
	}
	fmt.Printf("\nmulti-start annealer: explored %d points (%.1f%% of the space, %.1f%% cache hits), %.1fs\n",
		opRes.Explored, 100*float64(opRes.Explored)/float64(space.Size()),
		100*opRes.CacheHitRate, time.Since(start).Seconds())
	exit := 0
	switch {
	case !opRes.Found && exRes.Best == nil:
		fmt.Println("  agreement: both report no feasible configuration")
	case opRes.Found && exRes.Best != nil:
		fmt.Printf("  MSA optimum:    %v, objective %.4f\n", opRes.Best.Point, opRes.Best.Objective)
		if opRes.Best.Objective <= exRes.Best.Objective*(1+1e-9) {
			fmt.Println("  agreement: 100% — the annealer matched the global optimum")
		} else {
			fmt.Printf("  DISAGREEMENT: annealer %.4f vs global %.4f\n", opRes.Best.Objective, exRes.Best.Objective)
			exit = 3
		}
	default:
		fmt.Println("  DISAGREEMENT: one side found a solution, the other did not")
		exit = 3
	}
	cli.FailureSummary(os.Stdout, opRes.Poisoned)
	if exit == 0 && exRes.Quarantined+opRes.Quarantined > 0 {
		// Completed, but with quarantined points: the distinct exit code
		// lets chaos harnesses tell "survived with losses" from success.
		exit = cli.ExitQuarantined
	}
	switch exit {
	case 0:
		finish("ok")
	case cli.ExitQuarantined:
		finish("ok-quarantined")
	default:
		finish("disagreement")
	}
	if exit != 0 {
		os.Exit(exit)
	}
}

// stderrLogf adapts distrib's Logf hook to stderr lines.
func stderrLogf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
}

// runWorkerMode joins a coordinator as a sweep worker, executes leased
// shards until the sweep completes, and exits the process.
func runWorkerMode(ctx context.Context, coordURL, name, faultSpec string, store *tesa.MemoStore, sess *cli.Session, finish func(string)) {
	plan, err := faults.Parse(faultSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	sess.Manifest.Set("coordinator", coordURL)
	stats, err := distrib.RunWorker(ctx, distrib.WorkerConfig{
		Coord:  coordURL,
		Name:   name,
		Store:  store,
		Tel:    sess.Tel,
		Faults: plan,
		Logf:   stderrLogf,
	})
	fmt.Printf("worker %s: %d shards (%d points) reported, %d stale\n",
		stats.Name, stats.Shards, stats.Points, stats.Stale)
	if n := stats.Crashes + stats.Stalls + stats.Lies; n > 0 {
		fmt.Printf("  injected faults fired: %d crash, %d stall, %d lie\n",
			stats.Crashes, stats.Stalls, stats.Lies)
	}
	switch {
	case err == nil:
		finish("ok")
		os.Exit(0)
	case errors.Is(err, distrib.ErrWorkerQuarantined):
		fmt.Fprintln(os.Stderr, err)
		finish("quarantined")
		os.Exit(cli.ExitQuarantined)
	case errors.Is(err, context.Canceled):
		fmt.Fprintln(os.Stderr, "\ninterrupted")
		finish("interrupted")
		os.Exit(130)
	default:
		fmt.Fprintln(os.Stderr, err)
		finish("error")
		os.Exit(1)
	}
}

// coordinateConfig carries the -coordinate mode's flags.
type coordinateConfig struct {
	addr, jobPath        string
	ckptPath, resumePath string
	leaseTTL             time.Duration
	leaseShards          int
	verifyFrac           float64
	progress             bool
}

// runCoordinateMode serves the distributed sweep protocol until every
// shard has merged, prints the result, and exits the process.
func runCoordinateMode(ctx context.Context, cc coordinateConfig, store *tesa.MemoStore, sess *cli.Session, finish func(string)) {
	raw, err := os.ReadFile(cc.jobPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	cfg := distrib.Config{
		Spec:        raw,
		BaseDir:     filepath.Dir(cc.jobPath),
		LeaseTTL:    cc.leaseTTL,
		LeaseShards: cc.leaseShards,
		VerifyFrac:  cc.verifyFrac,
		RunID:       sess.Manifest.RunID(),
		Store:       store,
		Tel:         sess.Tel,
		Logf:        stderrLogf,
	}
	if cc.resumePath != "" {
		f, err := os.Open(cc.resumePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		state, err := tesa.LoadCheckpoint(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		cfg.Resume = state
		fmt.Printf("resuming: %d of %d shards (%d of %d points) from %s\n",
			state.Completed(), state.Shards, state.CompletedPoints(), state.Total, cc.resumePath)
	}
	if cc.ckptPath != "" {
		sink, err := tesa.NewFileSink(cc.ckptPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer sink.Close()
		cfg.Ledger = sink
	}
	if cc.progress {
		cfg.Progress = progressPrinter("distrib")
	}
	cfg.Progress = sess.Progress(cfg.Progress)

	coord, err := distrib.NewCoordinator(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		finish("error")
		os.Exit(1)
	}
	defer coord.Close()
	sess.Manifest.Set("space", coord.Fingerprint())
	sess.Manifest.Set("lease_ttl", cc.leaseTTL.String())

	hs := &http.Server{Addr: cc.addr, Handler: coord.Handler()}
	listenErr := make(chan error, 1)
	go func() { listenErr <- hs.ListenAndServe() }()
	fmt.Printf("coordinator: serving %d shards on %s (space %s, lease ttl %s, verify %.0f%%)\n",
		coord.Shards(), cc.addr, coord.Fingerprint(), cc.leaseTTL, 100*cfg.VerifyFrac)

	waitCh := make(chan struct{})
	var res *distrib.Result
	var waitErr error
	go func() {
		res, waitErr = coord.Wait(ctx)
		close(waitCh)
	}()
	select {
	case err := <-listenErr:
		// ListenAndServe only returns before shutdown on failure.
		fmt.Fprintln(os.Stderr, err)
		finish("error")
		os.Exit(1)
	case <-waitCh:
	}
	if waitErr == nil {
		// Grace period: only the worker whose report completed the sweep
		// learns Done from that response; the others discover it on their
		// next lease poll, which must still find a listener.
		time.Sleep(1 * time.Second)
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	hs.Shutdown(shutCtx) //nolint:errcheck // workers may still be disconnecting
	cancel()

	if waitErr != nil {
		if errors.Is(waitErr, context.Canceled) {
			fmt.Fprintln(os.Stderr, "\ninterrupted")
			if cc.ckptPath != "" {
				fmt.Fprintf(os.Stderr, "resume with: tesa-sweep -coordinate %s -job %s -resume %s -checkpoint %s\n",
					cc.addr, cc.jobPath, cc.ckptPath, cc.ckptPath)
			}
			finish("interrupted")
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, waitErr)
		finish("error")
		os.Exit(1)
	}

	fmt.Printf("  %d feasible of %d (%d shards)  steals %d  verifies %d  mismatches %d\n",
		res.Feasible, res.Total, res.Shards, res.Steals, res.Verified, res.Mismatches)
	if len(res.QuarantinedWorkers) > 0 {
		fmt.Printf("  quarantined workers: %s\n", strings.Join(res.QuarantinedWorkers, ", "))
	}
	cli.FailureSummary(os.Stdout, res.Poisoned)
	if res.Best != nil {
		fmt.Printf("  global optimum: %v, %v grid, objective %.4f\n",
			res.Best.Point, res.Best.Mesh, res.Best.Objective)
	} else {
		fmt.Println("  no feasible configuration in this space")
	}
	if res.Quarantined > 0 {
		finish("ok-quarantined")
		os.Exit(cli.ExitQuarantined)
	}
	finish("ok")
	os.Exit(0)
}

// progressPrinter renders Progress updates as stderr status lines:
// every new incumbent, plus completion ticks at ~5% steps for sweeps.
func progressPrinter(label string) tesa.ProgressFunc {
	lastTick := -1
	return func(p tesa.Progress) {
		tick := -1
		pct := ""
		if p.Total > 0 {
			tick = 20 * p.Done / p.Total // 5% buckets
			pct = fmt.Sprintf(" (%.0f%%)", 100*float64(p.Done)/float64(p.Total))
		}
		if !p.Improved && tick == lastTick {
			return
		}
		lastTick = tick
		line := fmt.Sprintf("%s: %d", label, p.Done)
		if p.Total > 0 {
			line += fmt.Sprintf("/%d", p.Total)
		}
		line += pct
		if p.Incumbent != nil {
			line += fmt.Sprintf("  best %v obj %.4f", p.Incumbent.Point, p.Incumbent.Objective)
		}
		fmt.Fprintf(os.Stderr, "%s  [%.1fs]\n", line, p.Elapsed.Seconds())
	}
}
