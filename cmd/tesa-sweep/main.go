// Command tesa-sweep exhaustively evaluates a design space and compares
// the global optimum against the multi-start annealer — the paper's
// Sec. IV-A optimizer-correctness study, plus a way to quantify how much
// of the full Table II space is feasible per corner.
//
// Usage:
//
//	tesa-sweep [-job spec.json]
//	           [-tech 2d|3d] [-freq 400] [-fps 30] [-temp 75]
//	           [-full] [-grid 32] [-seed 1] [-shard 0]
//	           [-checkpoint sweep.ckpt] [-resume sweep.ckpt] [-progress]
//	           [-faults spec] [-max-failures 0] [-fail-fast]
//	           [-stage-timeout 0] [-metrics] [-trace out.jsonl]
//	           [-pprof addr] [-metrics-addr addr] [-manifest run.jsonl]
//	           [-thermal-fast] [-surrogate-band 3]
//	           [-memo] [-memo-dir .tesa-memo] [-starts-parallel]
//
// -job runs a versioned jobspec document (tesa.jobspec/v1, kind
// "sweep") instead of per-setting flags: the same file drives this
// command, the library, and tesa-server to bit-identical feasibility
// counts and optima. Config flags conflict with -job; operational
// flags (-progress, -checkpoint, -resume, -memo*, telemetry) compose.
//
// -thermal-fast runs both the exhaustive sweep and the annealer on the
// fast thermal path (workspace CG, warm starts, surrogate pre-screen
// with a -surrogate-band guard band); feasibility decisions and the
// winning points are unchanged, only wall-clock time drops.
//
// -memo shares one content-addressed memo store between the exhaustive
// sweep and the annealer, so the annealer's evaluations are served
// from the sweep's results; -memo-dir persists the store across
// invocations and -starts-parallel runs the annealing chains through a
// worker pool. All three change wall-clock time only — the feasibility
// counts, both optima, and the agreement verdict are identical.
//
// By default the small validation space (64x64..128x128 arrays, coarse
// ICS) is swept; -full sweeps the whole Table II space — the
// "multiple days" regime the checkpointing exists for. The sweep is
// sharded; -checkpoint appends one JSONL record per completed shard
// (crash-safe: temp-file + rename creation, fsync per record), so a run
// killed by SIGINT/SIGTERM (or a crash) restarts where it left off with
// -resume pointing at the same file. Both flags may name the same path:
// resume reads it, then new records append to it. -progress streams
// live status lines to stderr.
//
// Failure handling: a design point whose evaluation fails (panic, NaN,
// diverged thermal solve, timeout) is quarantined — recorded in the
// checkpoint so a resume skips it — and the sweep continues.
// -max-failures bounds the quarantine count, -fail-fast restores the
// abort-on-first-failure behavior, and -faults (or TESA_FAULTS) injects
// deterministic faults for chaos runs. A run that completes with a
// non-empty quarantine ledger prints a failure summary and exits 4.
//
// The telemetry flags instrument both the exhaustive and the annealer
// evaluator, so the -metrics summary contrasts the sweep's pure
// pipeline throughput with the annealer's cache-amplified one.
// -metrics-addr additionally serves live /metrics (Prometheus text),
// /debug/vars, /progress and /debug/pprof for the whole run, and
// -manifest writes the run manifest as JSONL start/end records whose
// run id is also stamped into the checkpoint header, joining the
// checkpoint, trace, and manifest streams of one run.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"tesa"
	"tesa/internal/cli"
)

func main() {
	var (
		tech        = flag.String("tech", "2d", "integration technology: 2d or 3d")
		freqMHz     = flag.Float64("freq", 400, "operating frequency in MHz")
		fps         = flag.Float64("fps", 15, "latency constraint in frames per second")
		tempC       = flag.Float64("temp", 85, "thermal budget in Celsius")
		full        = flag.Bool("full", false, "sweep the full Table II space instead of the validation space")
		grid        = flag.Int("grid", 32, "thermal grid cells per side")
		seed        = flag.Int64("seed", 1, "optimizer seed")
		shard       = flag.Int("shard", 0, "points per sweep shard (0 = automatic)")
		ckptPath    = flag.String("checkpoint", "", "append sweep checkpoint records to this JSONL file")
		resumePath  = flag.String("resume", "", "resume the sweep from this checkpoint file")
		progress    = flag.Bool("progress", false, "stream live progress to stderr")
		faultSpec   = flag.String("faults", os.Getenv("TESA_FAULTS"), "fault-injection spec, e.g. panic@thermal:rate=0.05 (default $TESA_FAULTS)")
		maxFailures = flag.Int("max-failures", 0, "abort once more than this many points are quarantined (0 = unlimited)")
		failFast    = flag.Bool("fail-fast", false, "abort on the first failed evaluation instead of quarantining it")
		stageTO     = flag.Duration("stage-timeout", 0, "quarantine a point when one pipeline stage exceeds this duration (0 = off)")
		fast        = flag.Bool("thermal-fast", false, "fast thermal path: workspace CG, warm starts, surrogate pre-screen")
		band        = flag.Float64("surrogate-band", tesa.DefaultSurrogateBandC, "surrogate pre-screen guard band in Celsius (with -thermal-fast)")
		obs         = cli.ObservabilityFlags()
		mf          = cli.MemoFlagsRegister()
		jobPath     = cli.JobFlag()
	)
	flag.Parse()

	job, err := cli.ResolveJob(*jobPath, "sweep",
		"tech", "freq", "fps", "temp", "full", "grid", "seed", "shard",
		"faults", "max-failures", "fail-fast", "stage-timeout",
		"thermal-fast", "surrogate-band")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	// SIGINT/SIGTERM cancel the context; the engines observe it between
	// evaluations, checkpoint state stays consistent, and we exit with
	// the conventional 130. A -job spec's deadline_sec bounds the run
	// the same way.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if job != nil && job.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, job.Deadline)
		defer cancel()
	}

	sess, err := obs.Setup("tesa-sweep", os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	tel := sess.Tel
	store, memoDone, err := mf.Store()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	finish := func(status string) {
		if store != nil && obs.Metrics {
			fmt.Printf("memo: %s\n", store.Stats())
		}
		sess.Finish(status)
		if err := memoDone(); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}

	opts := tesa.DefaultOptions()
	if strings.EqualFold(*tech, "3d") {
		opts.Tech = tesa.Tech3D
	}
	opts.FreqHz = *freqMHz * 1e6
	opts.Grid = *grid
	opts.ThermalFast = *fast
	opts.SurrogateBandC = *band
	cons := tesa.DefaultConstraints()
	cons.FPS = *fps
	cons.TempBudgetC = *tempC

	space := tesa.ValidationSpace()
	if *full {
		space = tesa.DefaultSpace()
	}
	w := tesa.ARVRWorkload()
	if job != nil {
		// The spec is the configuration: everything the config flags
		// would have assembled comes from the resolved job instead.
		opts, cons, w, space = job.Opts, job.Cons, job.Workload, job.Space
		*seed = job.Seed
		*shard = job.ShardSize
		*maxFailures, *failFast, *stageTO = job.MaxFailures, job.FailFast, job.StageTimeout
		*faultSpec = job.Faults
	}

	sess.Manifest.Set("space", space.Fingerprint())
	sess.Manifest.Set("seed", *seed)
	sess.Manifest.Set("workload", w.Name)
	if *faultSpec != "" {
		sess.Manifest.Set("faults", *faultSpec)
	}

	// RunID stamps the manifest's run id into the checkpoint header, so
	// a cold checkpoint names the manifest and trace records of the run
	// that wrote it.
	sweepOpt := &tesa.SweepOptions{ShardSize: *shard, MaxFailures: *maxFailures, FailFast: *failFast,
		RunID: sess.Manifest.RunID()}
	if *resumePath != "" {
		f, err := os.Open(*resumePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		state, err := tesa.LoadCheckpoint(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		sweepOpt.ResumeFrom = state
		fmt.Printf("resuming: %d of %d shards (%d of %d points) from %s\n",
			state.Completed(), state.Shards, state.CompletedPoints(), state.Total, *resumePath)
	}
	if *ckptPath != "" {
		// FileSink creates a fresh checkpoint via temp-file + rename and
		// fsyncs every flushed record, so a SIGKILL (or power loss) can
		// tear at most the final line — which LoadCheckpoint tolerates.
		sink, err := tesa.NewFileSink(*ckptPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer sink.Close()
		sweepOpt.Checkpoint = sink
	}
	if *progress {
		sweepOpt.Progress = progressPrinter("sweep")
	}
	sweepOpt.Progress = sess.Progress(sweepOpt.Progress)

	ex, err := tesa.NewEvaluator(w, opts, cons, tesa.Models{})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	ex.Instrument(tel)
	if store != nil {
		ex.UseMemo(store)
	}
	if err := cli.ApplyFaults(ex, *faultSpec, *stageTO); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fmt.Printf("exhaustive sweep: %d design vectors (%s, %.0f MHz, %.0f fps, %.0f C)\n",
		space.Size(), opts.Tech, opts.FreqHz/1e6, cons.FPS, cons.TempBudgetC)
	start := time.Now()
	exRes, err := ex.ExhaustiveContext(ctx, space, sweepOpt)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "\ninterrupted")
			if *ckptPath != "" {
				fmt.Fprintf(os.Stderr, "resume with: tesa-sweep -resume %s -checkpoint %s [same flags]\n",
					*ckptPath, *ckptPath)
			}
			finish("interrupted")
			os.Exit(130)
		}
		if errors.Is(err, tesa.ErrTooManyFailures) {
			cli.FailureSummary(os.Stderr, ex.QuarantineLedger())
		}
		fmt.Fprintln(os.Stderr, err)
		finish("error")
		os.Exit(1)
	}
	exElapsed := time.Since(start)
	fmt.Printf("  %d feasible of %d (%.1f%%), %.1fs", exRes.Feasible, exRes.Total,
		100*float64(exRes.Feasible)/float64(exRes.Total), exElapsed.Seconds())
	if exRes.Resumed > 0 {
		fmt.Printf(" (%d points evaluated, %d resumed)", exRes.Evaluated, exRes.Resumed)
	}
	fmt.Println()
	cli.FailureSummary(os.Stdout, exRes.Poisoned)
	if exRes.Best != nil {
		fmt.Printf("  global optimum: %v, %v grid, objective %.4f\n",
			exRes.Best.Point, exRes.Best.Mesh, exRes.Best.Objective)
	} else {
		fmt.Println("  no feasible configuration in this space")
	}

	op, err := tesa.NewEvaluator(w, opts, cons, tesa.Models{})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	op.Instrument(tel)
	if store != nil {
		// The same store the sweep filled: the annealer's evaluations
		// are served from the exhaustive results.
		op.UseMemo(store)
	}
	if err := cli.ApplyFaults(op, *faultSpec, *stageTO); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	optOpt := &tesa.OptimizeOptions{MaxFailures: *maxFailures, FailFast: *failFast, Parallel: mf.StartWorkers()}
	if *progress {
		optOpt.Progress = progressPrinter("anneal")
	}
	optOpt.Progress = sess.Progress(optOpt.Progress)
	start = time.Now()
	opRes, err := op.OptimizeContext(ctx, space, *seed, optOpt)
	switch {
	case errors.Is(err, tesa.ErrNoFeasibleStart):
		// Valid outcome: the annealer agrees or disagrees with the
		// sweep below, via opRes.Found == false.
	case errors.Is(err, context.Canceled):
		fmt.Fprintln(os.Stderr, "\ninterrupted during annealer run")
		finish("interrupted")
		os.Exit(130)
	case err != nil:
		if errors.Is(err, tesa.ErrTooManyFailures) {
			cli.FailureSummary(os.Stderr, op.QuarantineLedger())
		}
		fmt.Fprintln(os.Stderr, err)
		finish("error")
		os.Exit(1)
	}
	fmt.Printf("\nmulti-start annealer: explored %d points (%.1f%% of the space, %.1f%% cache hits), %.1fs\n",
		opRes.Explored, 100*float64(opRes.Explored)/float64(space.Size()),
		100*opRes.CacheHitRate, time.Since(start).Seconds())
	exit := 0
	switch {
	case !opRes.Found && exRes.Best == nil:
		fmt.Println("  agreement: both report no feasible configuration")
	case opRes.Found && exRes.Best != nil:
		fmt.Printf("  MSA optimum:    %v, objective %.4f\n", opRes.Best.Point, opRes.Best.Objective)
		if opRes.Best.Objective <= exRes.Best.Objective*(1+1e-9) {
			fmt.Println("  agreement: 100% — the annealer matched the global optimum")
		} else {
			fmt.Printf("  DISAGREEMENT: annealer %.4f vs global %.4f\n", opRes.Best.Objective, exRes.Best.Objective)
			exit = 3
		}
	default:
		fmt.Println("  DISAGREEMENT: one side found a solution, the other did not")
		exit = 3
	}
	cli.FailureSummary(os.Stdout, opRes.Poisoned)
	if exit == 0 && exRes.Quarantined+opRes.Quarantined > 0 {
		// Completed, but with quarantined points: the distinct exit code
		// lets chaos harnesses tell "survived with losses" from success.
		exit = cli.ExitQuarantined
	}
	switch exit {
	case 0:
		finish("ok")
	case cli.ExitQuarantined:
		finish("ok-quarantined")
	default:
		finish("disagreement")
	}
	if exit != 0 {
		os.Exit(exit)
	}
}

// progressPrinter renders Progress updates as stderr status lines:
// every new incumbent, plus completion ticks at ~5% steps for sweeps.
func progressPrinter(label string) tesa.ProgressFunc {
	lastTick := -1
	return func(p tesa.Progress) {
		tick := -1
		pct := ""
		if p.Total > 0 {
			tick = 20 * p.Done / p.Total // 5% buckets
			pct = fmt.Sprintf(" (%.0f%%)", 100*float64(p.Done)/float64(p.Total))
		}
		if !p.Improved && tick == lastTick {
			return
		}
		lastTick = tick
		line := fmt.Sprintf("%s: %d", label, p.Done)
		if p.Total > 0 {
			line += fmt.Sprintf("/%d", p.Total)
		}
		line += pct
		if p.Incumbent != nil {
			line += fmt.Sprintf("  best %v obj %.4f", p.Incumbent.Point, p.Incumbent.Objective)
		}
		fmt.Fprintf(os.Stderr, "%s  [%.1fs]\n", line, p.Elapsed.Seconds())
	}
}
