// Command tesa-sweep exhaustively evaluates a design space and compares
// the global optimum against the multi-start annealer — the paper's
// Sec. IV-A optimizer-correctness study, plus a way to quantify how much
// of the full Table II space is feasible per corner.
//
// Usage:
//
//	tesa-sweep [-tech 2d|3d] [-freq 400] [-fps 30] [-temp 75]
//	           [-full] [-grid 32] [-seed 1]
//	           [-metrics] [-trace out.jsonl] [-pprof addr]
//
// By default the small validation space (64x64..128x128 arrays, coarse
// ICS) is swept; -full sweeps the whole Table II space. The telemetry
// flags instrument both the exhaustive and the annealer evaluator, so
// the -metrics summary contrasts the sweep's pure pipeline throughput
// with the annealer's cache-amplified one.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"tesa"
	"tesa/internal/telemetry"
)

func main() {
	var (
		tech    = flag.String("tech", "2d", "integration technology: 2d or 3d")
		freqMHz = flag.Float64("freq", 400, "operating frequency in MHz")
		fps     = flag.Float64("fps", 15, "latency constraint in frames per second")
		tempC   = flag.Float64("temp", 85, "thermal budget in Celsius")
		full    = flag.Bool("full", false, "sweep the full Table II space instead of the validation space")
		grid      = flag.Int("grid", 32, "thermal grid cells per side")
		seed      = flag.Int64("seed", 1, "optimizer seed")
		metrics   = flag.Bool("metrics", false, "print an end-of-run telemetry summary")
		trace     = flag.String("trace", "", "write a JSONL event trace to this file")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	)
	flag.Parse()

	tel, telDone, err := telemetry.Setup(*trace, *pprofAddr, *metrics)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	finish := func() {
		if *metrics {
			fmt.Print(tel.Summary())
		}
		if err := telDone(); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}

	opts := tesa.DefaultOptions()
	if strings.EqualFold(*tech, "3d") {
		opts.Tech = tesa.Tech3D
	}
	opts.FreqHz = *freqMHz * 1e6
	opts.Grid = *grid
	cons := tesa.DefaultConstraints()
	cons.FPS = *fps
	cons.TempBudgetC = *tempC

	space := tesa.ValidationSpace()
	if *full {
		space = tesa.DefaultSpace()
	}
	w := tesa.ARVRWorkload()

	ex, err := tesa.NewEvaluator(w, opts, cons, tesa.Models{})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	ex.Instrument(tel)
	fmt.Printf("exhaustive sweep: %d design vectors (%s, %.0f MHz, %.0f fps, %.0f C)\n",
		space.Size(), opts.Tech, *freqMHz, cons.FPS, cons.TempBudgetC)
	start := time.Now()
	exRes, err := ex.Exhaustive(space)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	exElapsed := time.Since(start)
	fmt.Printf("  %d feasible of %d (%.1f%%), %.1fs\n", exRes.Feasible, exRes.Total,
		100*float64(exRes.Feasible)/float64(exRes.Total), exElapsed.Seconds())
	if exRes.Best != nil {
		fmt.Printf("  global optimum: %v, %v grid, objective %.4f\n",
			exRes.Best.Point, exRes.Best.Mesh, exRes.Best.Objective)
	} else {
		fmt.Println("  no feasible configuration in this space")
	}

	op, err := tesa.NewEvaluator(w, opts, cons, tesa.Models{})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	op.Instrument(tel)
	start = time.Now()
	opRes, err := op.Optimize(space, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("\nmulti-start annealer: explored %d points (%.1f%% of the space, %.1f%% cache hits), %.1fs\n",
		opRes.Explored, 100*float64(opRes.Explored)/float64(space.Size()),
		100*opRes.CacheHitRate, time.Since(start).Seconds())
	exit := 0
	switch {
	case !opRes.Found && exRes.Best == nil:
		fmt.Println("  agreement: both report no feasible configuration")
	case opRes.Found && exRes.Best != nil:
		fmt.Printf("  MSA optimum:    %v, objective %.4f\n", opRes.Best.Point, opRes.Best.Objective)
		if opRes.Best.Objective <= exRes.Best.Objective*(1+1e-9) {
			fmt.Println("  agreement: 100% — the annealer matched the global optimum")
		} else {
			fmt.Printf("  DISAGREEMENT: annealer %.4f vs global %.4f\n", opRes.Best.Objective, exRes.Best.Objective)
			exit = 3
		}
	default:
		fmt.Println("  DISAGREEMENT: one side found a solution, the other did not")
		exit = 3
	}
	finish()
	if exit != 0 {
		os.Exit(exit)
	}
}
