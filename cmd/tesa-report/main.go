// Command tesa-report regenerates the paper's tables and figures.
//
// Usage:
//
//	tesa-report [-table 3|4|5] [-fig 5|6] [-headline] [-validate] [-all]
//	            [-grid 32] [-report-grid 88] [-seed 1]
//	            [-thermal-fast] [-memo] [-surrogate]
//	            [-metrics] [-trace out.jsonl] [-pprof addr]
//	            [-metrics-addr addr] [-manifest run.jsonl]
//
// Every experiment prints its reproduction next to the quantity the paper
// reports; see EXPERIMENTS.md for the recorded comparison.
//
// Observability: the standard flag set of the search commands. One hub
// instruments every evaluator the experiments create, so the -metrics
// summary aggregates stage timings across all regenerated tables and
// figures, -metrics-addr serves the live exposition endpoints while
// the (long) report runs, and -manifest records which sections ran.
//
// -thermal-fast runs the searches on the fast thermal path and -memo
// shares one content-addressed memo store across every evaluator of
// the run; both change wall-clock time only, not the reproduced
// numbers. With -memo the -validate lines report the store's hit rate
// (and the warm-start hit rate with -thermal-fast) next to the local
// cache-hit rate. -surrogate turns on the learned ranking surrogate in
// every evaluator; like the other speed knobs it reorders evaluation
// only, and the -validate lines then report the surrogate.hit and
// surrogate.rank counters (ranked decisions and candidates scored).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"tesa"
	"tesa/internal/cli"
	"tesa/internal/core"
)

func main() {
	var (
		table      = flag.Int("table", 0, "regenerate Table 3, 4, or 5")
		fig        = flag.Int("fig", 0, "regenerate Figure 1, 5, or 6")
		headline   = flag.Bool("headline", false, "regenerate the Sec. IV-B headline comparison")
		validate   = flag.Bool("validate", false, "run the Sec. IV-A optimizer validation")
		all        = flag.Bool("all", false, "regenerate everything")
		grid       = flag.Int("grid", 32, "search-time thermal grid")
		reportGrid = flag.Int("report-grid", 88, "reporting thermal grid (125 um cells)")
		seed       = flag.Int64("seed", 1, "optimizer seed")
		fast       = flag.Bool("thermal-fast", false, "fast thermal path: workspace CG, warm starts, surrogate pre-screen")
		memoize    = flag.Bool("memo", false, "share one memo store across every evaluator of the run")
		surrogate  = flag.Bool("surrogate", false, "learned ranking surrogate in every evaluator (reorders evaluation only)")
		obs        = cli.ObservabilityFlags()
	)
	flag.Parse()

	sess, err := obs.Setup("tesa-report", os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	cfg := core.DefaultExperimentConfig()
	cfg.Grid = *grid
	cfg.ReportGrid = *reportGrid
	cfg.Seed = *seed
	cfg.ThermalFast = *fast
	cfg.Memo = *memoize
	cfg.Surrogate = *surrogate
	cfg.Telemetry = sess.Tel
	sess.Manifest.Set("space", cfg.Space.Fingerprint())
	sess.Manifest.Set("seed", *seed)
	sess.Manifest.Set("workload", cfg.Workload.Name)

	ran := false
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		sess.Finish("error")
		os.Exit(1)
	}
	section := func(name string) func() {
		start := time.Now()
		fmt.Printf("==== %s ====\n", name)
		return func() { fmt.Printf("(%.1fs)\n\n", time.Since(start).Seconds()) }
	}

	if *all || *table == 5 {
		ran = true
		done := section("Table V: TESA outputs across constraint corners")
		rows, err := cfg.TableV()
		if err != nil {
			fail(err)
		}
		fmt.Print(core.FormatTableV(rows))
		done()
	}
	if *all || *table == 4 {
		ran = true
		done := section("Table IV: SC2 (chiplet sizing without temperature)")
		rows, err := cfg.TableIV()
		if err != nil {
			fail(err)
		}
		fmt.Print(core.FormatTableIV(rows))
		done()
	}
	if *all || *table == 3 {
		ran = true
		done := section("Table III: W1/W2 adoptions vs TESA (500 MHz, 3-D)")
		res, err := cfg.TableIII()
		if err != nil {
			fail(err)
		}
		fmt.Print(cfg.FormatTableIII(res))
		done()
	}
	if *all || *fig == 1 {
		ran = true
		done := section("Fig. 1: motivation scenarios (a)-(d)")
		ss, err := cfg.Fig1()
		if err != nil {
			fail(err)
		}
		fmt.Print(core.FormatFig1(ss, tesa.DefaultConstraints()))
		done()
	}
	if *all || *fig == 5 {
		ran = true
		done := section("Fig. 5: SC1 temperature-unaware max parallelism")
		rs, err := cfg.Fig5()
		if err != nil {
			fail(err)
		}
		fmt.Print(core.FormatFig5(rs, tesa.DefaultConstraints()))
		for _, r := range rs {
			if r.Result.Found {
				fmt.Print(core.ThermalMapASCII(r.Result.Actual))
			}
		}
		done()
	}
	if *all || *fig == 6 {
		ran = true
		done := section("Fig. 6: thermal maps of TESA outputs")
		for _, c := range []core.Corner{
			{Tech: tesa.Tech2D, FreqMHz: 400, FPS: 30, BudgetC: 75},
			{Tech: tesa.Tech3D, FreqMHz: 400, FPS: 30, BudgetC: 75},
			{Tech: tesa.Tech3D, FreqMHz: 500, FPS: 15, BudgetC: 85},
		} {
			row, err := cfg.RunCorner(c)
			if err != nil {
				fail(err)
			}
			if !row.Found {
				fmt.Printf("%v: solution does not exist\n", c)
				continue
			}
			fmt.Printf("%v:\n%s\n", c, core.ThermalMapASCII(row.Eval))
		}
		done()
	}
	if *all || *headline {
		ran = true
		done := section("Headline: TESA vs baselines, 2-D vs 3-D")
		h, err := cfg.RunHeadline()
		if err != nil {
			fail(err)
		}
		fmt.Print(h.Format())
		done()
	}
	if *all || *validate {
		ran = true
		done := section("Sec. IV-A: optimizer validation vs exhaustive search")
		for _, c := range []core.Corner{
			{Tech: tesa.Tech2D, FreqMHz: 400, FPS: 15, BudgetC: 85},
			{Tech: tesa.Tech2D, FreqMHz: 500, FPS: 15, BudgetC: 85},
		} {
			v, err := cfg.ValidateOptimizer(c)
			if err != nil {
				fail(err)
			}
			line := fmt.Sprintf("%v: space=%d feasible=%d explored=%.1f%% cache-hits=%.1f%%",
				c, v.SpaceSize, v.FeasibleCount, 100*v.ExploredFraction, 100*v.CacheHitRate)
			if *memoize {
				line += fmt.Sprintf(" memo-hits=%.1f%%", 100*v.MemoHitRate)
			}
			if *fast {
				line += fmt.Sprintf(" warm-hits=%.1f%%", 100*v.WarmStartHitRate)
			}
			if *surrogate {
				line += fmt.Sprintf(" surrogate.hit=%d surrogate.rank=%d", v.SurrogateHits, v.SurrogateRanked)
			}
			fmt.Printf("%s agreement=%v\n", line, v.Agreement)
			if v.ExhaustiveFound {
				fmt.Printf("  global optimum: %v (objective %.4f)\n", v.ExhaustiveBest.Point, v.ExhaustiveBest.Objective)
			}
			if v.OptFound {
				fmt.Printf("  MSA optimum:    %v (objective %.4f)\n", v.OptimizerBest.Point, v.OptimizerBest.Objective)
			}
		}
		done()
	}

	if !ran {
		flag.Usage()
		sess.Finish("usage")
		os.Exit(2)
	}
	sess.Finish("ok")
}
