// Command tesa-pareto sweeps the Eq. (6) objective weights to trace the
// MCM-cost vs DRAM-power Pareto front for one constraint corner, printing
// a CSV of the distinct winning configurations.
//
// Usage:
//
//	tesa-pareto [-tech 2d|3d] [-freq 400] [-fps 30] [-temp 75]
//	            [-points 9] [-grid 32] [-seed 1]
//	            [-metrics] [-trace out.jsonl] [-pprof addr]
//
// With the telemetry flags, all weight settings share one hub, so the
// -metrics summary aggregates stage timings across the whole front and
// the -trace events interleave the per-weight optimizer runs.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"tesa"
	"tesa/internal/telemetry"
)

func main() {
	var (
		tech      = flag.String("tech", "2d", "integration technology: 2d or 3d")
		freqMHz   = flag.Float64("freq", 400, "operating frequency in MHz")
		fps       = flag.Float64("fps", 30, "latency constraint in frames per second")
		tempC     = flag.Float64("temp", 75, "thermal budget in Celsius")
		points    = flag.Int("points", 9, "number of weight settings to sweep")
		grid      = flag.Int("grid", 32, "thermal grid cells per side")
		seed      = flag.Int64("seed", 1, "optimizer seed")
		progress  = flag.Bool("progress", false, "stream per-weight incumbents to stderr")
		metrics   = flag.Bool("metrics", false, "print an end-of-run telemetry summary")
		trace     = flag.String("trace", "", "write a JSONL event trace to this file")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	)
	flag.Parse()
	if *points < 2 {
		fmt.Fprintln(os.Stderr, "need at least 2 sweep points")
		os.Exit(2)
	}

	// SIGINT/SIGTERM cancel the front trace; the CSV printed so far
	// remains valid, so a killed run loses only the unswept weights.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	tel, telDone, err := telemetry.Setup(*trace, *pprofAddr, *metrics)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	base := tesa.DefaultOptions()
	if strings.EqualFold(*tech, "3d") {
		base.Tech = tesa.Tech3D
	}
	base.FreqHz = *freqMHz * 1e6
	base.Grid = *grid
	cons := tesa.DefaultConstraints()
	cons.FPS = *fps
	cons.TempBudgetC = *tempC
	w := tesa.ARVRWorkload()
	space := tesa.DefaultSpace()

	fmt.Println("alpha,beta,arrayDim,sramKBper,icsUM,meshRows,meshCols,peakC,powerW,costUSD,dramW")
	seen := map[tesa.DesignPoint]bool{}
	for i := 0; i < *points; i++ {
		// Sweep the weight angle from cost-only to DRAM-only.
		frac := float64(i) / float64(*points-1)
		opts := base
		opts.Alpha = 1 - frac
		opts.Beta = frac
		if opts.Alpha == 0 {
			opts.Alpha = 1e-9 // keep the objective well-defined
		}
		if opts.Beta == 0 {
			opts.Beta = 1e-9
		}
		ev, err := tesa.NewEvaluator(w, opts, cons, tesa.Models{})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		ev.Instrument(tel)
		var optOpt *tesa.OptimizeOptions
		if *progress {
			alpha, beta := opts.Alpha, opts.Beta
			optOpt = &tesa.OptimizeOptions{Progress: func(p tesa.Progress) {
				if p.Improved && p.Incumbent != nil {
					fmt.Fprintf(os.Stderr, "alpha=%.3f beta=%.3f: incumbent %v obj %.4f after %d evaluations\n",
						alpha, beta, p.Incumbent.Point, p.Incumbent.Objective, p.Done)
				}
			}}
		}
		res, err := ev.OptimizeContext(ctx, space, *seed, optOpt)
		switch {
		case errors.Is(err, tesa.ErrNoFeasibleStart):
			fmt.Fprintf(os.Stderr, "alpha=%.2f beta=%.2f: no solution\n", opts.Alpha, opts.Beta)
			continue
		case errors.Is(err, context.Canceled):
			fmt.Fprintf(os.Stderr, "interrupted at weight %d of %d; CSV above is complete for the swept weights\n",
				i, *points)
			if *metrics {
				fmt.Fprint(os.Stderr, tel.Summary())
			}
			if err := telDone(); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
			os.Exit(130)
		case err != nil:
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		b := res.Best
		marker := ""
		if seen[b.Point] {
			marker = " (dup)"
		}
		seen[b.Point] = true
		fmt.Printf("%.3f,%.3f,%d,%d,%d,%d,%d,%.2f,%.2f,%.2f,%.2f%s\n",
			opts.Alpha, opts.Beta, b.Point.ArrayDim, b.Point.SRAMKB(), b.Point.ICSUM,
			b.Mesh.Rows, b.Mesh.Cols, b.PeakTempC, b.TotalPowerW, b.MCMCost.Total, b.DRAMPowerW, marker)
	}
	if *metrics {
		// The summary goes to stderr so the CSV on stdout stays clean.
		fmt.Fprint(os.Stderr, tel.Summary())
	}
	if err := telDone(); err != nil {
		fmt.Fprintln(os.Stderr, err)
	}
}
