// Command tesa-pareto traces the Pareto front for one constraint
// corner, printing a CSV of the winning configurations. Two engines:
// the default -front weights sweeps the Eq. (6) objective weights
// (cost vs DRAM power); -front nsga2 evolves a true multi-objective
// population front over MCM cost, DRAM power, AND peak temperature —
// non-dominated sorting with crowding-distance diversity, every
// reported member re-evaluated at full fidelity.
//
// Usage:
//
//	tesa-pareto [-job spec.json]
//	            [-tech 2d|3d] [-freq 400] [-fps 30] [-temp 75]
//	            [-front weights|nsga2] [-points 9] [-pop 24] [-gens 8]
//	            [-grid 32] [-seed 1]
//	            [-faults spec] [-max-failures 0] [-fail-fast]
//	            [-stage-timeout 0] [-metrics] [-trace out.jsonl]
//	            [-pprof addr] [-metrics-addr addr] [-manifest run.jsonl]
//	            [-thermal-fast] [-surrogate-band 3]
//	            [-surrogate] [-surrogate-k 8]
//	            [-memo] [-memo-dir .tesa-memo] [-starts-parallel]
//
// -job runs a versioned jobspec document (tesa.jobspec/v1, kind
// "pareto") instead of per-setting flags: the same file drives this
// command, the library, and tesa-server to an identical front. Config
// flags conflict with -job; operational flags (-progress, -memo*,
// telemetry) compose with it.
//
// -surrogate enables the learned ranking surrogate: an online model
// trained from completed evaluations (and replayed from -memo-dir
// segments) that orders candidate moves and offspring
// best-predicted-first. Every proposal still runs the real pipeline,
// so the traced front is unchanged — the model only reduces how many
// full evaluations the search needs. -surrogate-k tunes its
// neighborhood (0 = default).
//
// -thermal-fast runs every weight setting's search on the fast thermal
// path (workspace CG, warm starts, surrogate pre-screen with a
// -surrogate-band guard band); the traced front is unchanged, only
// wall-clock time drops.
//
// -memo shares one content-addressed memo store across all weight
// settings: the Eq. 6 weights enter the objective, not the pipeline
// stages, so the frequency-independent sub-results (systolic profiles,
// SRAM estimates, schedules, thermal coverage) computed for the first
// weight are reused by every later one. -memo-dir persists the store
// across invocations; -starts-parallel pools the annealing chains.
// The traced front is identical with or without the flags.
//
// With the telemetry flags, all weight settings share one hub, so the
// -metrics summary aggregates stage timings across the whole front and
// the -trace events interleave the per-weight optimizer runs.
//
// Failure handling: design points whose evaluation fails are quarantined
// per weight setting and the sweep continues; the deduplicated union of
// all quarantined points is summarized on stderr at the end, and a run
// that completed with a non-empty ledger exits 4. -faults (or
// TESA_FAULTS) injects deterministic faults for chaos testing.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"tesa"
	"tesa/internal/cli"
)

func main() {
	var (
		tech      = flag.String("tech", "2d", "integration technology: 2d or 3d")
		freqMHz   = flag.Float64("freq", 400, "operating frequency in MHz")
		fps       = flag.Float64("fps", 30, "latency constraint in frames per second")
		tempC     = flag.Float64("temp", 75, "thermal budget in Celsius")
		front     = flag.String("front", "weights", "front engine: weights (Eq. 6 sweep) or nsga2 (multi-objective population)")
		points    = flag.Int("points", 9, "number of weight settings to sweep (weights front)")
		pop       = flag.Int("pop", 0, "NSGA-II population size (0 = default; nsga2 front)")
		gens      = flag.Int("gens", 0, "NSGA-II generations (0 = default; nsga2 front)")
		surrogate = flag.Bool("surrogate", false, "learned ranking surrogate: order proposals best-predicted-first (results unchanged)")
		surK      = flag.Int("surrogate-k", 0, "surrogate neighborhood size (0 = default; with -surrogate)")
		grid      = flag.Int("grid", 32, "thermal grid cells per side")
		seed      = flag.Int64("seed", 1, "optimizer seed")
		progress  = flag.Bool("progress", false, "stream per-weight incumbents to stderr")
		faultSpec = flag.String("faults", os.Getenv("TESA_FAULTS"), "fault-injection spec, e.g. panic@thermal:rate=0.05 (default $TESA_FAULTS)")
		maxFail   = flag.Int("max-failures", 0, "abort a weight setting once more than this many points are quarantined (0 = unlimited)")
		failFast  = flag.Bool("fail-fast", false, "abort on the first failed evaluation instead of quarantining it")
		stageTO   = flag.Duration("stage-timeout", 0, "quarantine a point when one pipeline stage exceeds this duration (0 = off)")
		fast      = flag.Bool("thermal-fast", false, "fast thermal path: workspace CG, warm starts, surrogate pre-screen")
		band      = flag.Float64("surrogate-band", tesa.DefaultSurrogateBandC, "surrogate pre-screen guard band in Celsius (with -thermal-fast)")
		obs       = cli.ObservabilityFlags()
		mf        = cli.MemoFlagsRegister()
		jobPath   = cli.JobFlag()
	)
	flag.Parse()

	job, err := cli.ResolveJob(*jobPath, "pareto",
		"tech", "freq", "fps", "temp", "front", "points", "pop", "gens",
		"grid", "seed", "faults", "max-failures", "fail-fast",
		"stage-timeout", "thermal-fast", "surrogate-band",
		"surrogate", "surrogate-k")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if job != nil {
		*front = job.ParetoFront
		*points = job.ParetoPoints
		*pop, *gens = job.ParetoPop, job.ParetoGens
	}
	switch *front {
	case "weights":
		if *points < 2 {
			fmt.Fprintln(os.Stderr, "need at least 2 sweep points")
			os.Exit(2)
		}
	case "nsga2":
	default:
		fmt.Fprintf(os.Stderr, "unknown -front %q (want weights or nsga2)\n", *front)
		os.Exit(2)
	}

	// SIGINT/SIGTERM cancel the front trace; the CSV printed so far
	// remains valid, so a killed run loses only the unswept weights.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if job != nil && job.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, job.Deadline)
		defer cancel()
	}

	// The summaries go to stderr so the CSV on stdout stays clean.
	sess, err := obs.Setup("tesa-pareto", os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	tel := sess.Tel
	store, memoDone, err := mf.Store()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	finish := func(status string) {
		if store != nil && obs.Metrics {
			fmt.Fprintf(os.Stderr, "memo: %s\n", store.Stats())
		}
		sess.Finish(status)
		if err := memoDone(); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}

	base := tesa.DefaultOptions()
	if strings.EqualFold(*tech, "3d") {
		base.Tech = tesa.Tech3D
	}
	base.FreqHz = *freqMHz * 1e6
	base.Grid = *grid
	base.ThermalFast = *fast
	base.SurrogateBandC = *band
	base.Surrogate = *surrogate
	base.SurrogateK = *surK
	cons := tesa.DefaultConstraints()
	cons.FPS = *fps
	cons.TempBudgetC = *tempC
	w := tesa.ARVRWorkload()
	space := tesa.DefaultSpace()
	if job != nil {
		// The spec is the configuration: everything the config flags
		// would have assembled comes from the resolved job instead.
		base, cons, w, space = job.Opts, job.Cons, job.Workload, job.Space
		*seed = job.Seed
		*maxFail, *failFast, *stageTO = job.MaxFailures, job.FailFast, job.StageTimeout
		*faultSpec = job.Faults
	}
	sess.Manifest.Set("space", space.Fingerprint())
	sess.Manifest.Set("seed", *seed)
	sess.Manifest.Set("workload", w.Name)
	if *faultSpec != "" {
		sess.Manifest.Set("faults", *faultSpec)
	}
	sess.Manifest.Set("front", *front)

	if *front == "nsga2" {
		runNSGA2(ctx, w, base, cons, space, *seed, *pop, *gens,
			*faultSpec, *stageTO, *progress, store, tel, sess, finish)
		return
	}

	fmt.Println("alpha,beta,arrayDim,sramKBper,icsUM,meshRows,meshCols,peakC,powerW,costUSD,dramW")
	seen := map[tesa.DesignPoint]bool{}
	// Quarantines are per weight setting (each has its own evaluator);
	// the summary reports the deduplicated union across the front.
	poisoned := map[tesa.DesignPoint]tesa.QuarantinedPoint{}
	collect := func(qs []tesa.QuarantinedPoint) {
		for _, q := range qs {
			if _, ok := poisoned[q.Point]; !ok {
				poisoned[q.Point] = q
			}
		}
	}
	for i := 0; i < *points; i++ {
		// Sweep the weight angle from cost-only to DRAM-only.
		frac := float64(i) / float64(*points-1)
		opts := base
		opts.Alpha = 1 - frac
		opts.Beta = frac
		if opts.Alpha == 0 {
			opts.Alpha = 1e-9 // keep the objective well-defined
		}
		if opts.Beta == 0 {
			opts.Beta = 1e-9
		}
		ev, err := tesa.NewEvaluator(w, opts, cons, tesa.Models{})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		ev.Instrument(tel)
		if store != nil {
			// One store across the whole front: the weight settings
			// share every weight-independent sub-result.
			ev.UseMemo(store)
		}
		if err := cli.ApplyFaults(ev, *faultSpec, *stageTO); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		optOpt := &tesa.OptimizeOptions{MaxFailures: *maxFail, FailFast: *failFast, Parallel: mf.StartWorkers()}
		if *progress {
			alpha, beta := opts.Alpha, opts.Beta
			optOpt.Progress = func(p tesa.Progress) {
				if p.Improved && p.Incumbent != nil {
					fmt.Fprintf(os.Stderr, "alpha=%.3f beta=%.3f: incumbent %v obj %.4f after %d evaluations\n",
						alpha, beta, p.Incumbent.Point, p.Incumbent.Objective, p.Done)
				}
			}
		}
		optOpt.Progress = sess.Progress(optOpt.Progress)
		res, err := ev.OptimizeContext(ctx, space, *seed, optOpt)
		if res != nil {
			// res is nil when the run is canceled mid-weight; reading
			// its ledger unconditionally would crash on SIGINT.
			collect(res.Poisoned)
		}
		switch {
		case errors.Is(err, tesa.ErrNoFeasibleStart):
			fmt.Fprintf(os.Stderr, "alpha=%.2f beta=%.2f: no solution\n", opts.Alpha, opts.Beta)
			continue
		case errors.Is(err, context.Canceled):
			fmt.Fprintf(os.Stderr, "interrupted at weight %d of %d; CSV above is complete for the swept weights\n",
				i, *points)
			finish("interrupted")
			os.Exit(130)
		case err != nil:
			if errors.Is(err, tesa.ErrTooManyFailures) {
				cli.FailureSummary(os.Stderr, ev.QuarantineLedger())
			}
			fmt.Fprintln(os.Stderr, err)
			finish("error")
			os.Exit(1)
		}
		b := res.Best
		marker := ""
		if seen[b.Point] {
			marker = " (dup)"
		}
		seen[b.Point] = true
		fmt.Printf("%.3f,%.3f,%d,%d,%d,%d,%d,%.2f,%.2f,%.2f,%.2f%s\n",
			opts.Alpha, opts.Beta, b.Point.ArrayDim, b.Point.SRAMKB(), b.Point.ICSUM,
			b.Mesh.Rows, b.Mesh.Cols, b.PeakTempC, b.TotalPowerW, b.MCMCost.Total, b.DRAMPowerW, marker)
	}
	ledger := make([]tesa.QuarantinedPoint, 0, len(poisoned))
	for _, q := range poisoned {
		ledger = append(ledger, q)
	}
	sort.Slice(ledger, func(i, j int) bool { return ledger[i].Point.Less(ledger[j].Point) })
	cli.FailureSummary(os.Stderr, ledger)
	if len(ledger) > 0 {
		finish("ok-quarantined")
		os.Exit(cli.ExitQuarantined)
	}
	finish("ok")
}

// runNSGA2 executes the -front nsga2 engine: one evaluator, one
// evolved population, and a CSV of the full-fidelity non-dominated
// front over cost, DRAM power, and peak temperature. An infinite
// crowding distance (an objective-extreme member) prints as "inf".
func runNSGA2(ctx context.Context, w tesa.Workload, opts tesa.Options, cons tesa.Constraints,
	space tesa.Space, seed int64, pop, gens int, faultSpec string, stageTO time.Duration,
	progress bool, store *tesa.MemoStore, tel *tesa.Telemetry, sess *cli.Session, finish func(string)) {
	ev, err := tesa.NewEvaluator(w, opts, cons, tesa.Models{})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	ev.Instrument(tel)
	if store != nil {
		ev.UseMemo(store)
	}
	if err := cli.ApplyFaults(ev, faultSpec, stageTO); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fo := &tesa.FrontOptions{Pop: pop, Gens: gens}
	if progress {
		fo.Progress = func(p tesa.Progress) {
			if p.Incumbent != nil {
				fmt.Fprintf(os.Stderr, "generation %d of %d: cost extreme %v after %d evaluations\n",
					p.Done, p.Total, p.Incumbent.Point, ev.Evaluations())
			}
		}
	}
	fo.Progress = sess.Progress(fo.Progress)
	frontMembers, err := ev.NSGA2FrontContext(ctx, space, seed, fo)
	switch {
	case errors.Is(err, tesa.ErrNoFeasibleStart):
		fmt.Fprintln(os.Stderr, "no feasible configuration: the front is empty")
		cli.FailureSummary(os.Stderr, ev.QuarantineLedger())
		finish("ok")
		return
	case errors.Is(err, context.Canceled):
		fmt.Fprintln(os.Stderr, "interrupted; no front printed")
		finish("interrupted")
		os.Exit(130)
	case err != nil:
		fmt.Fprintln(os.Stderr, err)
		finish("error")
		os.Exit(1)
	}
	fmt.Println("arrayDim,sramKBper,icsUM,meshRows,meshCols,peakC,powerW,costUSD,dramW,crowding")
	for _, m := range frontMembers {
		b := m.Eval
		crowding := fmt.Sprintf("%.4f", m.Crowding)
		if math.IsInf(m.Crowding, 1) {
			crowding = "inf"
		}
		fmt.Printf("%d,%d,%d,%d,%d,%.2f,%.2f,%.2f,%.2f,%s\n",
			b.Point.ArrayDim, b.Point.SRAMKB(), b.Point.ICSUM,
			b.Mesh.Rows, b.Mesh.Cols, b.PeakTempC, b.TotalPowerW, b.MCMCost.Total, b.DRAMPowerW, crowding)
	}
	if hits, misses, ranked := ev.SurrogateStats(); hits+misses > 0 {
		fmt.Fprintf(os.Stderr, "surrogate: %d ranked decisions, %d cold fallbacks, %d candidates scored\n",
			hits, misses, ranked)
	}
	ledger := ev.QuarantineLedger()
	cli.FailureSummary(os.Stderr, ledger)
	if len(ledger) > 0 {
		finish("ok-quarantined")
		os.Exit(cli.ExitQuarantined)
	}
	finish("ok")
}
