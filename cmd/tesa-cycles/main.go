// Command tesa-cycles cross-validates the analytical performance model
// against the fold-level cycle simulation (the SCALE-Sim analytical vs
// cycle-accurate relationship) and quantifies where the paper's
// stall-free assumption holds for a given chiplet configuration.
//
// Usage:
//
//	tesa-cycles [-dim 200] [-freq 400] [-channels 0 (auto)]
//	            [-metrics] [-trace out.jsonl] [-pprof addr]
//	            [-metrics-addr addr] [-manifest run.jsonl]
//
// Observability: -metrics prints per-network simulation latency
// percentiles, -trace streams one JSONL event per simulated network,
// -pprof serves net/http/pprof, -metrics-addr serves the live
// exposition endpoints, and -manifest writes the run manifest — the
// same flags as the search commands.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"tesa"
	"tesa/internal/cli"
	"tesa/internal/core"
	"tesa/internal/dram"
	"tesa/internal/systolic"
)

func main() {
	var (
		dim      = flag.Int("dim", 200, "systolic array dimension")
		freqMHz  = flag.Float64("freq", 400, "operating frequency in MHz")
		channels = flag.Int("channels", 0, "DRAM channels (0 = provision from peak bandwidth)")
		obs      = cli.ObservabilityFlags()
	)
	flag.Parse()

	sess, err := obs.Setup("tesa-cycles", os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	tel := sess.Tel
	sess.Manifest.Set("dim", *dim)

	sramKB := core.SRAMKBForArray(*dim)
	a := systolic.Array{
		Rows: *dim, Cols: *dim,
		Dataflow:  systolic.OutputStationary,
		SRAMBytes: int64(sramKB) * 1024,
	}
	ddr := dram.DefaultDDR4()
	freqHz := *freqMHz * 1e6

	fmt.Printf("array %dx%d, %d KB per SRAM, %.0f MHz\n", *dim, *dim, sramKB, *freqMHz)
	fmt.Printf("%-14s %12s %12s %8s %9s %8s %s\n",
		"network", "analytic cyc", "sim cyc", "stall%", "traffic", "ratio", "channels")

	w := tesa.ARVRWorkload()
	for i := range w.Networks {
		n := &w.Networks[i]
		span := tel.StartSpan("cycles.network")
		ana, err := systolic.SimulateNetwork(a, n)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			sess.Finish("error")
			os.Exit(1)
		}
		ch := *channels
		if ch == 0 {
			ch = ddr.ChannelsFor(ana.PeakDRAMBw * freqHz)
		}
		bytesPerCycle := float64(ch) * ddr.SustainedBytesPerSec() / freqHz
		cyc, err := systolic.SimulateNetworkCycles(a, n, bytesPerCycle)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			sess.Finish("error")
			os.Exit(1)
		}
		free, err := systolic.SimulateNetworkCycles(a, n, math.Inf(1))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			sess.Finish("error")
			os.Exit(1)
		}
		span.End()
		tel.Emit("cycles.network", map[string]any{
			"network": n.Name, "analytic": ana.Cycles, "sim": cyc.TotalCycles(),
			"stall": cyc.StallFraction(), "channels": ch,
		})
		if free.ComputeCycles != ana.Cycles {
			fmt.Fprintf(os.Stderr, "%s: analytic/cycle divergence: %d vs %d\n", n.Name, ana.Cycles, free.ComputeCycles)
			sess.Finish("divergence")
			os.Exit(2)
		}
		fmt.Printf("%-14s %12d %12d %7.1f%% %8.1fMB %8.2f %8d\n",
			n.Name, ana.Cycles, cyc.TotalCycles(),
			100*cyc.StallFraction(),
			float64(cyc.DRAMBytes)/1e6,
			float64(cyc.DRAMBytes)/float64(ana.DRAMBytes), ch)
	}
	fmt.Println("\nanalytic cyc == stall-free sim cyc for every network (validated above);")
	fmt.Println("stall% shows how close the provisioned channels come to the stall-free assumption.")
	sess.Finish("ok")
}
