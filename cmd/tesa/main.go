// Command tesa runs the TESA optimizer for one constraint corner and
// prints the chosen MCM.
//
// Usage:
//
//	tesa [-job spec.json]
//	     [-tech 2d|3d] [-freq 400] [-fps 30] [-temp 75] [-power 15]
//	     [-interposer 8] [-grid 32] [-seed 1] [-alpha 1] [-beta 1]
//	     [-faults spec] [-max-failures 0] [-fail-fast] [-stage-timeout 0]
//	     [-metrics] [-trace out.jsonl] [-pprof addr]
//	     [-metrics-addr addr] [-manifest run.jsonl]
//	     [-thermal-fast] [-surrogate-band 3]
//	     [-surrogate] [-surrogate-k 8]
//	     [-memo] [-memo-dir .tesa-memo] [-starts-parallel]
//
// -job runs a versioned jobspec document (tesa.jobspec/v1, kind
// "optimize") instead of per-setting flags: the same file drives this
// command, the library, and tesa-server to bit-identical results.
// Config flags (-tech, -grid, ...) conflict with -job; operational
// flags (-progress, -deadline, -memo*, the telemetry flags) compose
// with it, and an explicit -deadline overrides the spec's deadline_sec.
//
// -thermal-fast switches the search to the fast thermal path
// (allocation-free workspace CG, warm-started solves, surrogate
// pre-screening with a -surrogate-band guard band); reported tables
// always come from full-fidelity evaluations, so the flag changes
// wall-clock time, not results.
//
// -surrogate enables the learned ranking surrogate: an online k-NN/RBF
// model over completed evaluations (trained in-process and replayed
// from -memo-dir segments at startup) that scores candidate annealing
// moves and seed pools, so the search evaluates predicted-good points
// first. Every proposal still runs the real pipeline and the winner is
// always a full-fidelity evaluation — the flag reduces how many full
// evaluations reaching the optimum takes, not what is reported.
// -surrogate-k tunes the model neighborhood and the per-step ranked
// candidate count (0 = default).
//
// -memo memoizes pipeline sub-results (systolic profiles, SRAM
// estimates, schedules, coverage maps, whole evaluations) in a
// content-addressed store shared by all annealing chains; -memo-dir
// additionally persists the store so repeated invocations with the
// same models warm-start from disk. -starts-parallel runs the
// annealing chains through a worker pool. All three change wall-clock
// time only: the winning design point and every reported number are
// identical with or without them.
//
// The output reports the winning design point, its derived mesh and SRAM
// capacity, and the full evaluation (peak temperature, power, cost, DRAM
// power, per-chiplet schedule).
//
// Observability: -metrics prints an end-of-run summary (per-stage
// latency percentiles, evals/sec, cache hit rate), -trace streams
// annealer-level JSONL events, -pprof serves net/http/pprof,
// -metrics-addr serves live /metrics (Prometheus text), /debug/vars,
// /progress and /debug/pprof while the search runs, and -manifest
// writes the run manifest (command, flags, space fingerprint, seeds,
// quarantine tallies, wall/CPU time) as JSONL start/end records.
//
// Failure handling: a design point whose evaluation fails (panic, NaN,
// diverged thermal solve, timeout) is quarantined and the search
// continues around it; a run that still finds a solution but quarantined
// points prints a failure summary and exits 4. -max-failures bounds the
// quarantine count, -fail-fast aborts on the first failure, and -faults
// (or TESA_FAULTS) injects deterministic faults for chaos testing.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"tesa"
	"tesa/internal/cli"
)

func main() {
	var (
		tech       = flag.String("tech", "2d", "integration technology: 2d or 3d")
		freqMHz    = flag.Float64("freq", 400, "operating frequency in MHz")
		fps        = flag.Float64("fps", 30, "latency constraint in frames per second")
		tempC      = flag.Float64("temp", 75, "thermal budget in Celsius")
		powerW     = flag.Float64("power", 15, "power budget in watts")
		interposer = flag.Float64("interposer", 8, "interposer side in mm")
		grid       = flag.Int("grid", 32, "thermal grid cells per side during search")
		seed       = flag.Int64("seed", 1, "optimizer seed")
		alpha      = flag.Float64("alpha", 1, "Eq. 6 weight on MCM cost")
		beta       = flag.Float64("beta", 1, "Eq. 6 weight on DRAM power")
		dataflow   = flag.String("dataflow", "os", "systolic dataflow: os or ws")
		workload   = flag.String("workload", "", "JSON workload file (default: the built-in AR/VR workload)")
		progress   = flag.Bool("progress", false, "stream incumbent improvements to stderr")
		deadline   = flag.Duration("deadline", 0, "abort the search after this duration (0 = none)")
		faultSpec  = flag.String("faults", os.Getenv("TESA_FAULTS"), "fault-injection spec, e.g. panic@thermal:rate=0.05 (default $TESA_FAULTS)")
		maxFail    = flag.Int("max-failures", 0, "abort once more than this many points are quarantined (0 = unlimited)")
		failFast   = flag.Bool("fail-fast", false, "abort on the first failed evaluation instead of quarantining it")
		stageTO    = flag.Duration("stage-timeout", 0, "quarantine a point when one pipeline stage exceeds this duration (0 = off)")
		fast       = flag.Bool("thermal-fast", false, "fast thermal path: workspace CG, warm starts, surrogate pre-screen")
		band       = flag.Float64("surrogate-band", tesa.DefaultSurrogateBandC, "surrogate pre-screen guard band in Celsius (with -thermal-fast)")
		surrogate  = flag.Bool("surrogate", false, "learned ranking surrogate: order candidate moves and seeds best-predicted-first (results unchanged)")
		surK       = flag.Int("surrogate-k", 0, "surrogate neighborhood size and ranked-move candidate count (0 = default; with -surrogate)")
		obs        = cli.ObservabilityFlags()
		mf         = cli.MemoFlagsRegister()
		jobPath    = cli.JobFlag()
	)
	flag.Parse()

	job, err := cli.ResolveJob(*jobPath, "optimize",
		"tech", "freq", "fps", "temp", "power", "interposer", "grid", "seed",
		"alpha", "beta", "dataflow", "workload", "faults", "max-failures",
		"fail-fast", "stage-timeout", "thermal-fast", "surrogate-band",
		"surrogate", "surrogate-k")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	// SIGINT/SIGTERM (and -deadline, or the spec's deadline_sec) cancel
	// the context; the annealers observe it between evaluations and wind
	// down promptly.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if dl := cli.JobDeadline(job, *deadline); dl > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, dl)
		defer cancel()
	}

	sess, err := obs.Setup("tesa", os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	tel := sess.Tel
	store, memoDone, err := mf.Store()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// finish finalizes the run manifest and flushes telemetry and the
	// on-disk memo cache before any exit path (os.Exit skips defers).
	finish := func(status string) {
		if store != nil && obs.Metrics {
			fmt.Printf("memo: %s\n", store.Stats())
		}
		sess.Finish(status)
		if err := memoDone(); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}

	opts := tesa.DefaultOptions()
	switch strings.ToLower(*tech) {
	case "2d":
		opts.Tech = tesa.Tech2D
	case "3d":
		opts.Tech = tesa.Tech3D
	default:
		fmt.Fprintf(os.Stderr, "unknown tech %q\n", *tech)
		os.Exit(2)
	}
	switch strings.ToLower(*dataflow) {
	case "os":
		opts.Dataflow = tesa.OutputStationary
	case "ws":
		opts.Dataflow = tesa.WeightStationary
	default:
		fmt.Fprintf(os.Stderr, "unknown dataflow %q\n", *dataflow)
		os.Exit(2)
	}
	opts.FreqHz = *freqMHz * 1e6
	opts.Grid = *grid
	opts.Alpha, opts.Beta = *alpha, *beta
	opts.ThermalFast = *fast
	opts.SurrogateBandC = *band
	opts.Surrogate = *surrogate
	opts.SurrogateK = *surK
	cons := tesa.Constraints{FPS: *fps, PowerBudgetW: *powerW, TempBudgetC: *tempC, InterposerMM: *interposer}

	w := tesa.ARVRWorkload()
	if *workload != "" {
		data, err := os.ReadFile(*workload)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if w, err = tesa.UnmarshalWorkload(data); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	space := tesa.DefaultSpace()
	if job != nil {
		// The spec is the configuration: everything the config flags
		// would have assembled comes from the resolved job instead.
		opts, cons, w, space = job.Opts, job.Cons, job.Workload, job.Space
		*seed = job.Seed
		*maxFail, *failFast, *stageTO = job.MaxFailures, job.FailFast, job.StageTimeout
		*faultSpec = job.Faults
	}
	ev, err := tesa.NewEvaluator(w, opts, cons, tesa.Models{})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	ev.Instrument(tel)
	if store != nil {
		ev.UseMemo(store)
	}
	if err := cli.ApplyFaults(ev, *faultSpec, *stageTO); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	sess.Manifest.Set("space", space.Fingerprint())
	sess.Manifest.Set("seed", *seed)
	sess.Manifest.Set("workload", w.Name)
	if *faultSpec != "" {
		sess.Manifest.Set("faults", *faultSpec)
	}

	fmt.Printf("TESA: %s MCM at %.0f MHz for the %d-DNN %s workload\n", opts.Tech, opts.FreqHz/1e6, len(w.Networks), w.Name)
	fmt.Printf("constraints: %.0f fps, %.0f W, %.0f C, %.0fx%.0f mm interposer\n\n",
		cons.FPS, cons.PowerBudgetW, cons.TempBudgetC, cons.InterposerMM, cons.InterposerMM)

	optOpt := &tesa.OptimizeOptions{MaxFailures: *maxFail, FailFast: *failFast, Parallel: mf.StartWorkers()}
	if *progress {
		optOpt.Progress = func(p tesa.Progress) {
			if p.Improved && p.Incumbent != nil {
				fmt.Fprintf(os.Stderr, "incumbent after %d evaluations: %v, objective %.4f  [%.1fs]\n",
					p.Done, p.Incumbent.Point, p.Incumbent.Objective, p.Elapsed.Seconds())
			}
		}
	}
	optOpt.Progress = sess.Progress(optOpt.Progress)

	start := time.Now()
	res, err := ev.OptimizeContext(ctx, space, *seed, optOpt)
	switch {
	case errors.Is(err, tesa.ErrNoFeasibleStart):
		// res carries the exploration counters; reported below.
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		fmt.Fprintf(os.Stderr, "search aborted: %v\n", err)
		finish("interrupted")
		os.Exit(130)
	case err != nil:
		if errors.Is(err, tesa.ErrTooManyFailures) {
			cli.FailureSummary(os.Stderr, ev.QuarantineLedger())
		}
		fmt.Fprintln(os.Stderr, err)
		finish("error")
		os.Exit(1)
	}
	elapsed := time.Since(start)

	if !res.Found {
		fmt.Printf("SOLUTION DOES NOT EXIST under these constraints\n")
		fmt.Printf("(explored %d of %d design vectors in %.1fs)\n", res.Explored, space.Size(), elapsed.Seconds())
		fmt.Println("remedial options: relax the thermal budget, reduce frequency, or enlarge the interposer")
		cli.FailureSummary(os.Stderr, res.Poisoned)
		finish("no-solution")
		os.Exit(3)
	}

	best := res.Best
	fmt.Printf("winning MCM:  %v\n", best.Point)
	fmt.Printf("mesh:         %v (%d chiplets)\n", best.Mesh, best.Mesh.Count())
	fmt.Printf("chiplet:      %.2f x %.2f mm (array %.2f mm2, SRAM %.2f mm2)\n",
		best.Chiplet.WidthMM, best.Chiplet.HeightMM, best.Chiplet.ArrayMM2, best.Chiplet.SRAMMM2)
	fmt.Printf("peak temp:    %.2f C (budget %.0f C)\n", best.PeakTempC, cons.TempBudgetC)
	fmt.Printf("power:        %.2f W total (%.2f dynamic + %.2f leakage; budget %.0f W)\n",
		best.TotalPowerW, best.DynamicPowerW, best.LeakageW, cons.PowerBudgetW)
	fmt.Printf("latency:      %.1f ms makespan (%.2fx of the %.0f fps budget)\n",
		best.MakespanSec*1e3, best.LatencyFactor, cons.FPS)
	fmt.Printf("MCM cost:     $%.2f (dies $%.2f, interposer $%.2f, bonding $%.2f, stacking $%.2f)\n",
		best.MCMCost.Total, best.MCMCost.ChipletDies, best.MCMCost.Interposer, best.MCMCost.Bonding, best.MCMCost.Stacking)
	fmt.Printf("DRAM power:   %.2f W over %d channels\n", best.DRAMPowerW, best.DRAMChannels)
	fmt.Printf("throughput:   %.2f TOPS effective, %.2f TOPS peak\n", best.OPS/1e12, best.PeakOPS/1e12)
	fmt.Printf("objective:    %.4f (Eq. 6, alpha=%.2g beta=%.2g)\n\n", best.Objective, opts.Alpha, opts.Beta)

	fmt.Println("schedule (non-preemptive, corner-first):")
	for c, dnns := range best.Schedule.ChipletDNNs {
		fmt.Printf("  chiplet %d:", c)
		for _, d := range dnns {
			fmt.Printf(" %s", w.Networks[d].Name)
		}
		fmt.Println()
	}
	fmt.Printf("\nsearch: %d evaluations, %d distinct points (%.1f%% of the space, %.1f%% cache hits), %.1fs\n",
		res.Evaluations, res.Explored, 100*float64(res.Explored)/float64(space.Size()),
		100*res.CacheHitRate, elapsed.Seconds())
	if res.Screened > 0 {
		fmt.Printf("fast path: %d candidates rejected by the surrogate pre-screen without a grid solve\n", res.Screened)
	}
	if hits, misses, ranked := ev.SurrogateStats(); hits+misses > 0 {
		fmt.Printf("surrogate: %d ranked decisions (%d candidates scored), %d cold fallbacks\n",
			hits, ranked, misses)
	}
	fmt.Println()
	fmt.Print(tesa.FloorplanASCII(best))
	cli.FailureSummary(os.Stderr, res.Poisoned)
	if res.Quarantined > 0 {
		finish("ok-quarantined")
		os.Exit(cli.ExitQuarantined)
	}
	finish("ok")
}
