// Command tesa-server runs the TESA design-space-exploration engines as
// a long-lived HTTP service. Clients POST versioned jobspec documents
// (see internal/jobspec) to /v1/jobs and get a job id back; results,
// status, and Server-Sent-Events progress streams hang off the id:
//
//	POST   /v1/jobs            submit a spec → 202 + {"id": ...}
//	GET    /v1/jobs            list jobs
//	GET    /v1/jobs/{id}        status, result once done
//	GET    /v1/jobs/{id}/events SSE progress stream
//	DELETE /v1/jobs/{id}        cancel
//	GET    /healthz             liveness, drain state, pool tallies
//	GET    /readyz              readiness: 503 once draining
//	*      /v1/distrib/...      distributed sweep protocol (with -distrib)
//
// Usage:
//
//	tesa-server [-addr :8080] [-workers 2] [-queue 64]
//	            [-job-deadline 0] [-base-dir .] [-drain-timeout 30s]
//	            [-distrib sweep.json] [-distrib-checkpoint ledger.ckpt]
//	            [-memo-dir .tesa-memo] [-starts-parallel]
//	            [-metrics] [-trace out.jsonl] [-pprof addr]
//	            [-metrics-addr addr] [-manifest run.jsonl]
//
// -distrib additionally hosts a distributed sweep coordinator
// (internal/distrib) for the given jobspec under /v1/distrib/ on the
// same listener: tesa-sweep -worker http://host:8080/v1/distrib
// processes lease shards from it, and the coordinator's verification
// re-executions share the server's process-wide memo store.
// -distrib-checkpoint appends the merged ledger — byte-compatible with
// single-process sweep checkpoints — to a JSONL file. Draining closes
// the coordinator along with the job pool.
//
// Every job in the process shares one content-addressed memo store, so
// overlapping requests reuse each other's systolic profiles, schedules,
// and whole evaluations: the service gets faster as it serves. Results
// stay bit-identical to single-shot CLI runs of the same spec — memo
// sharing changes wall-clock time, never numbers. -memo-dir persists
// the store across restarts.
//
// -metrics-addr serves the shared observability surface (/metrics
// Prometheus text, /debug/vars, /progress, /debug/pprof) for the whole
// process, including tesa_serve_* job counters and latency histograms.
//
// On SIGINT/SIGTERM the server drains: submissions are refused with
// 503, queued and running jobs are canceled, the memo cache and run
// manifest flush, and the process exits 0. A drain that exceeds
// -drain-timeout exits 1.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"tesa/internal/cli"
	"tesa/internal/distrib"
	"tesa/internal/server"
	"tesa/internal/telemetry"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "job API listen address")
		workers = flag.Int("workers", 2, "concurrent job executors")
		queue   = flag.Int("queue", 64, "accepted-but-unstarted job capacity (full = 429)")
		jobDL   = flag.Duration("job-deadline", 0, "default per-job deadline for specs without deadline_sec (0 = none)")
		baseDir = flag.String("base-dir", "", "directory anchoring relative workload_file paths in specs (default: cwd)")
		drainTO = flag.Duration("drain-timeout", 30*time.Second, "maximum time to wait for jobs to wind down on shutdown")
		dSpec   = flag.String("distrib", "", "host a distributed sweep coordinator for this jobspec under /v1/distrib/")
		dCkpt   = flag.String("distrib-checkpoint", "", "append the distributed sweep's merged ledger to this JSONL file")
		obs     = cli.ObservabilityFlags()
		mf      = cli.MemoFlagsRegister()
	)
	flag.Parse()

	sess, err := obs.Setup("tesa-server", os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// The whole point of the service is cross-request warmth: the memo
	// store is always on, -memo-dir adds persistence across restarts.
	mf.Enable = true
	store, memoDone, err := mf.Store()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// An optional distributed sweep coordinator rides on the same
	// listener: its verification re-executions warm (and are warmed by)
	// the job pool's shared memo store.
	var coord *distrib.Coordinator
	if *dSpec != "" {
		raw, err := os.ReadFile(*dSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		dcfg := distrib.Config{
			Spec:    raw,
			BaseDir: filepath.Dir(*dSpec),
			RunID:   sess.Manifest.RunID(),
			Store:   store,
			Tel:     sess.Tel,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, format+"\n", args...)
			},
		}
		if *dCkpt != "" {
			sink, err := telemetry.NewFileSink(*dCkpt)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer sink.Close()
			dcfg.Ledger = sink
		}
		coord, err = distrib.NewCoordinator(dcfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer coord.Close()
		sess.Manifest.Set("distrib_space", coord.Fingerprint())
	}

	srvCfg := server.Config{
		Workers:         *workers,
		Queue:           *queue,
		Store:           store,
		Tel:             sess.Tel,
		DefaultDeadline: *jobDL,
		Parallel:        mf.StartWorkers(),
		BaseDir:         *baseDir,
	}
	if coord != nil {
		srvCfg.Distrib = coord.Handler()
	}
	srv := server.New(srvCfg)
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	sess.Manifest.Set("addr", *addr)
	sess.Manifest.Set("workers", *workers)
	sess.Manifest.Set("queue", *queue)

	errCh := make(chan error, 1)
	go func() {
		fmt.Printf("tesa-server: listening on %s (%d workers, queue %d)\n", *addr, *workers, *queue)
		if coord != nil {
			fmt.Printf("tesa-server: distributed sweep at /v1/distrib (%d shards, space %s)\n",
				coord.Shards(), coord.Fingerprint())
		}
		errCh <- hs.ListenAndServe()
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	status, code := "ok", 0
	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, err)
			status, code = "error", 1
		}
	case s := <-sig:
		fmt.Printf("tesa-server: %v, draining\n", s)
		if coord != nil {
			coord.Close()
		}
		ctx, cancel := context.WithTimeout(context.Background(), *drainTO)
		if err := srv.Drain(ctx); err != nil {
			fmt.Fprintln(os.Stderr, err)
			status, code = "drain-timeout", 1
		}
		if err := hs.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, err)
			if code == 0 {
				status, code = "shutdown-timeout", 1
			}
		}
		cancel()
		if code == 0 {
			status = "drained"
		}
	}

	if obs.Metrics && store != nil {
		fmt.Printf("memo: %+v\n", store.Stats().KindStats)
	}
	sess.Finish(status)
	if err := memoDone(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}
