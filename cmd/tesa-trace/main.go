// Command tesa-trace analyzes the JSONL streams the other tesa
// commands emit — -trace event streams, -manifest run manifests, and
// checkpoint files — without re-running anything.
//
// Usage:
//
//	tesa-trace report run.jsonl [more.jsonl ...]
//	tesa-trace diff [-threshold 0.10] [-strict] before.jsonl after.jsonl
//
// report prints, per file: the run's identity (id, command, status,
// wall/CPU time from its run.manifest records), the per-stage latency
// breakdown (count, p50/p95/p99, total self time, self% of summed
// stage time, cum% of end-to-end pipeline time), the effectiveness of
// the caching layers (evaluator cache, memo store, thermal warm
// starts, surrogate pre-screen), the thermal fidelity-ladder tallies,
// quarantine counts, and the stream's event histogram.
//
// diff compares two runs stage-by-stage on p95 latency (mean alongside)
// and effectiveness rates, flagging changes beyond -threshold as
// REGRESSION / improved. With -strict the command exits 3 when any
// regression is flagged — the CI guard mode. A stage present in only
// the second run always counts as a regression (new latency).
//
// Both modes want streams that contain run.manifest records: every
// command writes them into -trace and -manifest files automatically.
package main

import (
	"flag"
	"fmt"
	"os"

	"tesa/internal/trace"
)

func main() {
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) < 1 {
		usage()
		os.Exit(2)
	}
	switch args[0] {
	case "report":
		report(args[1:])
	case "diff":
		diff(args[1:])
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", args[0])
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  tesa-trace report run.jsonl [more.jsonl ...]
  tesa-trace diff [-threshold 0.10] [-strict] before.jsonl after.jsonl
`)
}

// report summarizes each file independently.
func report(paths []string) {
	if len(paths) == 0 {
		fmt.Fprintln(os.Stderr, "report: need at least one JSONL file")
		os.Exit(2)
	}
	for i, path := range paths {
		if i > 0 {
			fmt.Println()
		}
		s, err := trace.Load(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		trace.WriteReport(os.Stdout, s)
	}
}

// diff compares exactly two files, before then after.
func diff(args []string) {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	threshold := fs.Float64("threshold", trace.DefaultDiffThreshold,
		"relative change flagged as significant (0.10 = 10%)")
	strict := fs.Bool("strict", false, "exit 3 when any regression is flagged")
	fs.Usage = usage
	fs.Parse(args)
	if fs.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "diff: need exactly two JSONL files (before, after)")
		os.Exit(2)
	}
	before, err := trace.Load(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	after, err := trace.Load(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, s := range []*trace.Summary{before, after} {
		if !s.HasManifest() {
			fmt.Fprintf(os.Stderr, "%s: no finalized run.manifest record; latency comparison will be empty\n", s.Path)
		}
	}
	d := trace.Compare(before, after, *threshold)
	trace.WriteDiff(os.Stdout, d)
	if *strict && d.Regressions > 0 {
		os.Exit(3)
	}
}
