// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation section, plus micro-benchmarks of the substrate
// models (the paper's Sec. IV-A runtime discussion).
//
// The macro benchmarks regenerate the corresponding experiment and log
// the reproduced rows; EXPERIMENTS.md records the comparison against the
// paper. They share one experiment configuration, so corner
// optimizations are paid once across the suite (exactly like the paper's
// tool-chain caching SCALE-Sim runs).
//
// Run everything with:
//
//	go test -bench=. -benchmem -timeout 0 .
package tesa_test

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"tesa"
	"tesa/internal/core"
	"tesa/internal/dnn"
	"tesa/internal/systolic"
	"tesa/internal/telemetry"
	"tesa/internal/thermal"
)

var (
	benchCfgOnce sync.Once
	benchCfg     *core.ExperimentConfig
)

// benchConfig returns the shared experiment configuration (coarse search
// grid; winners re-evaluated at the fine grid).
func benchConfig() *core.ExperimentConfig {
	benchCfgOnce.Do(func() {
		cfg := core.DefaultExperimentConfig()
		benchCfg = &cfg
	})
	return benchCfg
}

// BenchmarkTableV regenerates Table V: TESA outputs at every constraint
// corner (2-D and 3-D, 400/500 MHz, 15/30 fps, 75/85 C).
func BenchmarkTableV(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := cfg.TableV()
		if err != nil {
			b.Fatal(err)
		}
		b.Logf("\n%s", core.FormatTableV(rows))
	}
}

// BenchmarkTableIV regenerates Table IV: SC2's temperature-unaware
// chiplet sizing and its actual thermal behaviour.
func BenchmarkTableIV(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := cfg.TableIV()
		if err != nil {
			b.Fatal(err)
		}
		b.Logf("\n%s", core.FormatTableIV(rows))
	}
}

// BenchmarkTableIII regenerates Table III: the W1/W2 adoptions against
// TESA at 500 MHz on 3-D MCMs.
func BenchmarkTableIII(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := cfg.TableIII()
		if err != nil {
			b.Fatal(err)
		}
		b.Logf("\n%s", cfg.FormatTableIII(res))
	}
}

// BenchmarkFig5 regenerates Fig. 5: the SC1 maximum-parallelism baseline
// exceeding the 75 C budget in both technologies.
func BenchmarkFig5(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rs, err := cfg.Fig5()
		if err != nil {
			b.Fatal(err)
		}
		b.Logf("\n%s", core.FormatFig5(rs, tesa.DefaultConstraints()))
	}
}

// BenchmarkFig6 regenerates Fig. 6: steady-state thermal maps of TESA
// outputs.
func BenchmarkFig6(b *testing.B) {
	cfg := benchConfig()
	corners := []core.Corner{
		{Tech: tesa.Tech2D, FreqMHz: 400, FPS: 30, BudgetC: 75},
		{Tech: tesa.Tech3D, FreqMHz: 400, FPS: 30, BudgetC: 75},
		{Tech: tesa.Tech3D, FreqMHz: 500, FPS: 15, BudgetC: 85},
	}
	for i := 0; i < b.N; i++ {
		for _, c := range corners {
			row, err := cfg.RunCorner(c)
			if err != nil {
				b.Fatal(err)
			}
			if !row.Found {
				b.Logf("%v: solution does not exist", c)
				continue
			}
			b.Logf("%v:\n%s", c, core.ThermalMapASCII(row.Eval))
		}
	}
}

// BenchmarkOptimizerValidation reproduces Sec. IV-A: exhaustive search of
// the validation space vs the multi-start annealer, checking agreement
// and the explored fraction (the paper reports 100% agreement while
// exploring <15%).
func BenchmarkOptimizerValidation(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		v, err := cfg.ValidateOptimizer(core.Corner{Tech: tesa.Tech2D, FreqMHz: 400, FPS: 15, BudgetC: 85})
		if err != nil {
			b.Fatal(err)
		}
		b.Logf("space=%d feasible=%d explored=%.1f%% agreement=%v",
			v.SpaceSize, v.FeasibleCount, 100*v.ExploredFraction, v.Agreement)
		if !v.Agreement {
			b.Fatal("optimizer disagreed with the exhaustive optimum")
		}
	}
}

// BenchmarkHeadline regenerates the Sec. IV-B headline claims: TESA vs
// SC1/SC2 savings and the 2-D vs 3-D comparison.
func BenchmarkHeadline(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		h, err := cfg.RunHeadline()
		if err != nil {
			b.Fatal(err)
		}
		b.Logf("\n%s", h.Format())
	}
}

// --- Substrate micro-benchmarks (the paper's Sec. IV-A runtime notes:
// SCALE-Sim minutes-to-hours per point, HotSpot 6 s / 16 s per steady
// state, 3-6 leakage iterations).

// BenchmarkPerfModel times one full-workload performance simulation on a
// 200x200 array (the SCALE-Sim-equivalent stage).
func BenchmarkPerfModel(b *testing.B) {
	w := dnn.ARVRWorkload()
	a := systolic.Array{Rows: 200, Cols: 200, Dataflow: systolic.OutputStationary, SRAMBytes: 1024 * 1024}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for j := range w.Networks {
			if _, err := systolic.SimulateNetwork(a, &w.Networks[j]); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkThermal2D times one steady-state solve of a 2-D MCM stack at
// the paper's 125 um grid resolution (HotSpot reports ~6 s; the CG
// solver here is far faster).
func BenchmarkThermal2D(b *testing.B) {
	benchThermal(b, false)
}

// BenchmarkThermal3D times one steady-state solve of a 3-D MCM stack
// (HotSpot reports ~16 s).
func BenchmarkThermal3D(b *testing.B) {
	benchThermal(b, true)
}

func benchThermal(b *testing.B, threeD bool) {
	grid := 88
	m := thermal.DefaultMaterials()
	cov := make([]float64, grid*grid)
	power := make([]float64, grid*grid)
	sramPower := make([]float64, grid*grid)
	cells := 14
	for _, origin := range [][2]int{{20, 20}, {20, 54}, {54, 20}, {54, 54}} {
		for j := origin[1]; j < origin[1]+cells; j++ {
			for i := origin[0]; i < origin[0]+cells; i++ {
				cov[j*grid+i] = 1
				power[j*grid+i] = 2.5 / float64(cells*cells)
				sramPower[j*grid+i] = 0.8 / float64(cells*cells)
			}
		}
	}
	cell := 11e-3 / float64(grid)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var s *thermal.Stack
		var err error
		if threeD {
			s, err = thermal.BuildStack3D(grid, cell, cov, sramPower, power, 0.02, m)
		} else {
			s, err = thermal.BuildStack2D(grid, cell, cov, power, m)
		}
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLeakageConvergence times one full design-point evaluation
// including the leakage-temperature fixed point (the paper: 3-6 HotSpot
// iterations per point).
func BenchmarkLeakageConvergence(b *testing.B) {
	opts := tesa.DefaultOptions()
	opts.Grid = 64
	cons := tesa.DefaultConstraints()
	cons.FPS = 15
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ev, err := tesa.NewEvaluator(tesa.ARVRWorkload(), opts, cons, tesa.Models{})
		if err != nil {
			b.Fatal(err)
		}
		e, err := ev.Evaluate(tesa.DesignPoint{ArrayDim: 200, ICSUM: 1700})
		if err != nil {
			b.Fatal(err)
		}
		if e.LeakIters < 1 {
			b.Fatal("no leakage iterations recorded")
		}
	}
}

// BenchmarkEvaluateDSE times a cached-workload DSE evaluation at the
// coarse search grid — the optimizer's inner-loop cost.
func BenchmarkEvaluateDSE(b *testing.B) {
	opts := tesa.DefaultOptions()
	opts.Grid = 32
	cons := tesa.DefaultConstraints()
	cons.FPS = 15
	ev, err := tesa.NewEvaluator(tesa.ARVRWorkload(), opts, cons, tesa.Models{})
	if err != nil {
		b.Fatal(err)
	}
	// Warm the performance-model cache, then time thermal-dominated
	// evaluations across distinct points.
	if _, err := ev.Evaluate(tesa.DesignPoint{ArrayDim: 200, ICSUM: 0}); err != nil {
		b.Fatal(err)
	}
	ics := []int{50, 100, 150, 200, 250, 300, 350, 400, 450, 500, 550, 600, 650, 700, 750, 800, 850, 900, 950, 1000}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := tesa.DesignPoint{ArrayDim: 200, ICSUM: ics[i%len(ics)]}
		if _, err := ev.Evaluate(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig1 regenerates the paper's Fig. 1 motivation scenarios:
// dense/large, small/spread, maximal, and TESA-tuned MCMs.
func BenchmarkFig1(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		ss, err := cfg.Fig1()
		if err != nil {
			b.Fatal(err)
		}
		b.Logf("\n%s", core.FormatFig1(ss, tesa.DefaultConstraints()))
	}
}

// benchOptimizeTelemetry runs a full validation-space optimization with
// the given hub attached (nil = the disabled fast path).
func benchOptimizeTelemetry(b *testing.B, tel *telemetry.Telemetry) {
	opts := tesa.DefaultOptions()
	opts.Grid = 24
	cons := tesa.DefaultConstraints()
	cons.FPS = 15
	cons.TempBudgetC = 85
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ev, err := tesa.NewEvaluator(tesa.ARVRWorkload(), opts, cons, tesa.Models{})
		if err != nil {
			b.Fatal(err)
		}
		ev.Instrument(tel)
		if _, err := ev.OptimizeContext(context.Background(), tesa.ValidationSpace(), 1, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptimizeTelemetryOff is the overhead guard for the
// instrumented pipeline with telemetry DISABLED (nil hub): every probe
// must reduce to a nil check, so this should stay within noise (<2%) of
// the pre-instrumentation optimizer. Compare against ...On to price the
// enabled path:
//
//	go test -bench 'OptimizeTelemetry' -count 5 .
func BenchmarkOptimizeTelemetryOff(b *testing.B) {
	benchOptimizeTelemetry(b, nil)
}

// BenchmarkOptimizeTelemetryOn prices full observability: metrics
// registry plus a JSONL trace sink swallowing every annealer event.
func BenchmarkOptimizeTelemetryOn(b *testing.B) {
	benchOptimizeTelemetry(b, telemetry.New(telemetry.NewJSONLSink(io.Discard)))
}

// BenchmarkOptimizeTelemetryExposed prices live exposition on top of
// ...On: the same instrumented run with a metrics server attached and a
// scraper hitting /metrics at a Prometheus-like cadence. Serving reads
// registry snapshots off the hot path, so this must stay within 2% of
// the ...On baseline.
func BenchmarkOptimizeTelemetryExposed(b *testing.B) {
	tel := telemetry.New(telemetry.NewJSONLSink(io.Discard))
	srv, err := telemetry.Serve("127.0.0.1:0", tel)
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(100 * time.Millisecond)
		defer tick.Stop()
		client := &http.Client{Timeout: time.Second}
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				resp, err := client.Get("http://" + srv.Addr() + "/metrics")
				if err == nil {
					_, _ = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}
	}()
	benchOptimizeTelemetry(b, tel)
	close(stop)
	wg.Wait()
}

// emitBench appends one JSONL record for this benchmark invocation to
// the file named by TESA_BENCH_JSON (no-op when unset), mirroring the
// helper in internal/thermal's benchmarks so one artifact collects both
// the solver micro-benchmarks and the end-to-end sweep numbers.
func emitBench(b *testing.B, extra map[string]any) {
	path := os.Getenv("TESA_BENCH_JSON")
	if path == "" {
		return
	}
	b.Cleanup(func() {
		rec := map[string]any{
			"bench":     b.Name(),
			"n":         b.N,
			"ns_per_op": float64(b.Elapsed().Nanoseconds()) / float64(b.N),
		}
		for k, v := range extra {
			rec[k] = v
		}
		f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			b.Logf("bench json: %v", err)
			return
		}
		defer f.Close()
		if err := json.NewEncoder(f).Encode(rec); err != nil {
			b.Logf("bench json: %v", err)
		}
	})
}

// benchSweepThermal runs the full multi-start optimizer over the
// validation space on one thermal path and records the winner, so the
// reference/fast pair in BENCH_thermal.json can be checked for both the
// speedup and the identical winning design point.
func benchSweepThermal(b *testing.B, fast bool, label string) {
	opts := tesa.DefaultOptions()
	opts.Grid = 32
	opts.ThermalFast = fast
	cons := tesa.DefaultConstraints()
	cons.FPS = 15
	cons.TempBudgetC = 85
	var winner string
	var screened int
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ev, err := tesa.NewEvaluator(tesa.ARVRWorkload(), opts, cons, tesa.Models{})
		if err != nil {
			b.Fatal(err)
		}
		res, err := ev.OptimizeContext(context.Background(), tesa.ValidationSpace(), 1, nil)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Found {
			b.Fatal("no feasible configuration on the validation space")
		}
		winner = fmt.Sprint(res.Best.Point)
		screened = res.Screened
	}
	b.Logf("%s: winner %s, %d screened", label, winner, screened)
	emitBench(b, map[string]any{"path": label, "winner": winner, "screened": screened})
}

// BenchmarkSweepThermal is the end-to-end acceptance benchmark of the
// fast thermal path: same search, same seed, reference ladder vs
// -thermal-fast. Run with -benchtime 1x for a single timed sweep each.
func BenchmarkSweepThermal(b *testing.B) {
	b.Run("reference", func(b *testing.B) { benchSweepThermal(b, false, "reference") })
	b.Run("fast", func(b *testing.B) { benchSweepThermal(b, true, "fast") })
}

// benchSweepEval runs the full default-corner optimization (the
// acceptance corner of the memoization work: DefaultSpace, 30 fps,
// 15 W, 75 C, seed 1, fast thermal path) on one configuration and
// records the winner with its exact reported numbers, so the
// baseline / memo-cold / memo-warm triple in BENCH_eval.json can be
// checked for both the speedup and the identical result.
func benchSweepEval(b *testing.B, label, memoDir string, parallel bool) {
	opts := tesa.DefaultOptions()
	opts.ThermalFast = true
	cons := tesa.DefaultConstraints()
	var rec map[string]any
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ev, err := tesa.NewEvaluator(tesa.ARVRWorkload(), opts, cons, tesa.Models{})
		if err != nil {
			b.Fatal(err)
		}
		var store *tesa.MemoStore
		memoDone := func() error { return nil }
		if memoDir != "" {
			store = tesa.NewMemoStore()
			if memoDone, err = tesa.LoadMemoDir(store, memoDir); err != nil {
				b.Fatal(err)
			}
			ev.UseMemo(store)
		}
		optOpt := &tesa.OptimizeOptions{}
		if parallel {
			optOpt.Parallel = runtime.NumCPU()
		}
		start := time.Now()
		res, err := ev.OptimizeContext(context.Background(), tesa.DefaultSpace(), 1, optOpt)
		elapsed := time.Since(start)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Found {
			b.Fatal("no feasible configuration at the default corner")
		}
		if err := memoDone(); err != nil {
			b.Fatal(err)
		}
		// The identical-result gate compares the winner and the exact
		// reported objective/cost/latency; the temperature at the CLI's
		// 2-decimal precision (warm-started CG state may move its last
		// bits).
		rec = map[string]any{
			"path":          label,
			"parallel":      parallel,
			"winner":        fmt.Sprint(res.Best.Point),
			"objective":     res.Best.Objective,
			"cost_usd":      res.Best.MCMCost.Total,
			"latency_ms":    res.Best.MakespanSec * 1e3,
			"temp_c":        fmt.Sprintf("%.2f", res.Best.PeakTempC),
			"evals_per_sec": float64(res.Evaluations) / elapsed.Seconds(),
		}
		if store != nil {
			st := store.Stats()
			rec["memo_hit_rate"] = st.HitRate()
			rec["memo_loaded"] = st.Loaded
		}
	}
	b.Logf("%s: winner %v, objective %v", label, rec["winner"], rec["objective"])
	emitBench(b, rec)
}

// benchSweepSearch runs the validation-corner optimization (grid 32,
// 15 fps, 85 C, seed 1, fast thermal path) against a shared memo corpus
// and records how many distinct design points the search touched before
// first adopting its final winner, so the plain/ranked pair in
// BENCH_search.json can be checked for the identical winner and the
// surrogate's evals-to-optimum saving. The corpus leg is a cold plain
// search whose memo segments both measured legs then load, so the memo
// layer serves both identically and the only delta between "plain" and
// "ranked" is the learned ranking itself (which warms by replaying the
// corpus before the run).
func benchSweepSearch(b *testing.B, label, memoDir string, ranked bool) {
	opts := tesa.DefaultOptions()
	opts.Grid = 32
	opts.ThermalFast = true
	opts.Surrogate = ranked
	// A wider candidate pool than the default: with a corpus-warmed model
	// each annealing move picks the best of 16 scored candidates, which is
	// what converts ranking accuracy into fewer evaluations.
	opts.SurrogateK = 16
	cons := tesa.DefaultConstraints()
	cons.FPS = 15
	cons.TempBudgetC = 85
	var rec map[string]any
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ev, err := tesa.NewEvaluator(tesa.ARVRWorkload(), opts, cons, tesa.Models{})
		if err != nil {
			b.Fatal(err)
		}
		store := tesa.NewMemoStore()
		memoDone, err := tesa.LoadMemoDir(store, memoDir)
		if err != nil {
			b.Fatal(err)
		}
		ev.UseMemo(store)
		type improvement struct {
			explored  int
			objective float64
		}
		var improvements []improvement
		optOpt := &tesa.OptimizeOptions{
			// One chain at a time: identical results for the plain path by
			// construction (see OptimizeOptions.Parallel), and a
			// deterministic online-training order for the ranked one.
			Parallel: 1,
			Progress: func(p tesa.Progress) {
				if p.Improved {
					improvements = append(improvements, improvement{ev.Explored(), p.Incumbent.Objective})
				}
			},
		}
		res, err := ev.OptimizeContext(context.Background(), tesa.ValidationSpace(), 1, optOpt)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Found {
			b.Fatal("no feasible configuration on the validation space")
		}
		// evals-to-best is the explored count at the first incumbent that
		// reached the winning objective — not at the last improvement,
		// which can be a later tie-break churn between equal-objective
		// points.
		evalsToBest := 0
		for _, im := range improvements {
			if im.objective <= res.Best.Objective*(1+1e-9) {
				evalsToBest = im.explored
				break
			}
		}
		if evalsToBest == 0 {
			b.Fatal("no incumbent ever reached the winning objective")
		}
		if err := memoDone(); err != nil {
			b.Fatal(err)
		}
		hits, misses, scored := ev.SurrogateStats()
		rec = map[string]any{
			"path":           label,
			"winner":         fmt.Sprint(res.Best.Point),
			"objective":      res.Best.Objective,
			"evals_to_best":  evalsToBest,
			"explored":       res.Explored,
			"ranked":         res.Ranked,
			"surrogate_hit":  hits,
			"surrogate_miss": misses,
			"surrogate_rank": scored,
		}
	}
	b.Logf("%s: winner %v, %v points explored to first-hit the winning objective (%v total)",
		label, rec["winner"], rec["evals_to_best"], rec["explored"])
	emitBench(b, rec)
}

// BenchmarkSweepSearch is the acceptance benchmark of the learned
// ranking surrogate: same corner, same seed, same warm memo corpus,
// surrogate off vs on. The ranked leg must re-derive the identical
// winner while touching at least 2x fewer design points before first
// hitting it. Run with -benchtime 1x so the corpus leg really seeds the
// segments the measured legs load.
func BenchmarkSweepSearch(b *testing.B) {
	dir := filepath.Join(b.TempDir(), "memo")
	b.Run("corpus", func(b *testing.B) { benchSweepSearch(b, "corpus", dir, false) })
	b.Run("plain", func(b *testing.B) { benchSweepSearch(b, "plain", dir, false) })
	b.Run("ranked", func(b *testing.B) { benchSweepSearch(b, "ranked", dir, true) })
}

// BenchmarkSweepEval is the end-to-end acceptance benchmark of the
// memoization layer: the same default-corner search on the PR's
// fast-path baseline, then memo-cold (fresh persistent store, pooled
// chains), then memo-warm (second invocation over the same -memo-dir).
// The warm leg must re-derive the identical winner at least 5x faster
// than the baseline. Run with -benchtime 1x so the cold leg really is
// cold and the warm leg really reloads the cold leg's segments.
func BenchmarkSweepEval(b *testing.B) {
	dir := filepath.Join(b.TempDir(), "memo")
	b.Run("baseline", func(b *testing.B) { benchSweepEval(b, "baseline", "", false) })
	b.Run("memo-cold", func(b *testing.B) { benchSweepEval(b, "memo-cold", dir, true) })
	b.Run("memo-warm", func(b *testing.B) { benchSweepEval(b, "memo-warm", dir, true) })
}
