module tesa

go 1.22
