package tesa_test

import (
	"context"
	"math"
	"strings"
	"testing"

	"tesa"
)

// TestFacadeEndToEnd exercises the public API exactly as README's
// quickstart does: build an evaluator, evaluate the paper's winning
// point, run a small optimization.
func TestFacadeEndToEnd(t *testing.T) {
	w := tesa.ARVRWorkload()
	if len(w.Networks) != 6 {
		t.Fatalf("AR/VR workload has %d networks, want 6", len(w.Networks))
	}
	opts := tesa.DefaultOptions()
	opts.Grid = 24
	cons := tesa.DefaultConstraints()
	cons.FPS = 15
	ev, err := tesa.NewEvaluator(w, opts, cons, tesa.Models{})
	if err != nil {
		t.Fatal(err)
	}
	e, err := ev.Evaluate(tesa.DesignPoint{ArrayDim: 200, ICSUM: 1700})
	if err != nil {
		t.Fatal(err)
	}
	if !e.Feasible {
		t.Errorf("paper's 15 fps winner infeasible via facade: %v", e.Violations)
	}
	if e.Mesh.Count() != 2 {
		t.Errorf("mesh %v, want 2 chiplets", e.Mesh)
	}

	space := tesa.Space{ArrayDims: []int{196, 212, 228, 244}, ICSUMs: []int{200, 600, 1000}}
	res, err := ev.OptimizeContext(context.Background(), space, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("optimizer found nothing via facade")
	}
	if res.Best.Objective <= 0 || math.IsInf(res.Best.Objective, 0) {
		t.Errorf("bad objective %g", res.Best.Objective)
	}
}

// TestFacadeDerivations checks the re-exported helper functions.
func TestFacadeDerivations(t *testing.T) {
	if kb := tesa.SRAMKBForArray(200); kb != 1024 {
		t.Errorf("SRAMKBForArray(200) = %d, want 1024", kb)
	}
	if s := tesa.DefaultSpace(); s.Size() != 121*21 {
		t.Errorf("space size %d, want %d", s.Size(), 121*21)
	}
	if tesa.Tech2D.String() != "2D" || tesa.Tech3D.String() != "3D" {
		t.Error("tech names wrong")
	}
}

// TestFacadeThermalMap renders a Fig. 6-style map via the facade.
func TestFacadeThermalMap(t *testing.T) {
	opts := tesa.DefaultOptions()
	opts.Grid = 32
	cons := tesa.DefaultConstraints()
	cons.FPS = 15
	ev, err := tesa.NewEvaluator(tesa.ARVRWorkload(), opts, cons, tesa.Models{})
	if err != nil {
		t.Fatal(err)
	}
	e, err := ev.EvaluateFull(tesa.DesignPoint{ArrayDim: 200, ICSUM: 1700})
	if err != nil {
		t.Fatal(err)
	}
	ascii := tesa.ThermalMapASCII(e)
	if !strings.Contains(ascii, "thermal map") || !strings.Contains(ascii, "@") {
		t.Errorf("ASCII map malformed:\n%s", ascii)
	}
	csv := tesa.ThermalMapCSV(e)
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 32 {
		t.Errorf("CSV map has %d rows, want 32", len(lines))
	}
	if len(strings.Split(lines[0], ",")) != 32 {
		t.Errorf("CSV map has %d columns, want 32", len(strings.Split(lines[0], ",")))
	}
}

// TestFacadeBaselines runs SC1 via the re-exported baseline entry point.
func TestFacadeBaselines(t *testing.T) {
	w := tesa.ARVRWorkload()
	opts := tesa.DefaultOptions()
	opts.Grid = 24
	cons := tesa.DefaultConstraints()
	res, err := tesa.RunSC1(w, opts, cons, tesa.DefaultModels(), tesa.DefaultSpace())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.Chosen.Mesh.Count() != 6 {
		t.Errorf("SC1 via facade: found=%v mesh=%v", res.Found, res.Chosen.Mesh)
	}
}
