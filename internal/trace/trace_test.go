package trace

import (
	"bytes"
	"strings"
	"testing"

	"tesa/internal/telemetry"
)

// synthesizeRun writes a realistic trace stream — start manifest, some
// events, end manifest with metrics — through the real telemetry
// writers, so the reader is tested against what production emits.
func synthesizeRun(t *testing.T, thermalSec, systolicSec float64, cacheHits int64) []byte {
	t.Helper()
	var buf bytes.Buffer
	sink := telemetry.NewJSONLSink(&buf)
	tel := telemetry.New(sink)
	reg := tel.Registry()
	for i := 0; i < 10; i++ {
		reg.Histogram("stage.thermal").Observe(thermalSec)
		reg.Histogram("stage.systolic").Observe(systolicSec)
		reg.Histogram("pipeline.total").Observe(thermalSec + systolicSec)
	}
	reg.Counter("evaluator.cache.hit").Add(cacheHits)
	reg.Counter("evaluator.cache.miss").Add(10)
	reg.Counter("thermal.warmstart.hit").Add(8)
	reg.Counter("thermal.warmstart.miss").Add(2)
	reg.Counter("surrogate.hit").Add(6)
	reg.Counter("surrogate.miss").Add(2)
	reg.Counter("surrogate.rank").Add(48)
	reg.Counter("thermal.fidelity.full").Add(9)
	reg.Counter("thermal.fidelity.coarse").Add(1)

	m := telemetry.NewManifest("tesa-test", []string{"-x"})
	tel.Emit(telemetry.ManifestEvent, m.Snapshot())
	tel.Emit("eval.quarantined", map[string]any{
		"stage": "thermal", "reason": "solver-diverged",
		"trace": []string{"+0s stage.systolic", "+1ms stage.thermal"},
	})
	tel.Emit(telemetry.ManifestEvent, m.Finalize(reg, "ok"))
	if err := tel.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestReadRoundTrip(t *testing.T) {
	data := synthesizeRun(t, 0.010, 0.001, 90)
	s, err := Read(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if !s.HasManifest() || s.Status != "ok" || s.Command != "tesa-test" {
		t.Fatalf("manifest not recovered: %+v", s)
	}
	if len(s.RunID) != 16 {
		t.Errorf("run id %q not recovered", s.RunID)
	}
	if s.Events[telemetry.ManifestEvent] != 2 || s.Events["eval.quarantined"] != 1 {
		t.Errorf("event counts %v", s.Events)
	}
	if len(s.Quarantined) != 1 || s.Quarantined[0].Stage != "thermal" || len(s.Quarantined[0].Trace) != 2 {
		t.Errorf("quarantine records %+v", s.Quarantined)
	}

	stages := s.Stages()
	if len(stages) != 2 {
		t.Fatalf("stages = %+v, want thermal+systolic", stages)
	}
	if stages[0].Name != "thermal" {
		t.Errorf("stage order: dominant stage is %q, want thermal", stages[0].Name)
	}
	if got := stages[0].Stats.P95; got != 0.010 {
		t.Errorf("thermal p95 = %v", got)
	}
	// thermal self share: 10*10ms of 10*11ms total stage time.
	if got := stages[0].SelfFrac; got < 0.89 || got > 0.93 {
		t.Errorf("thermal self fraction = %v, want ~0.909", got)
	}
	// And ~the same of the end-to-end pipeline time here.
	if got := stages[0].CumFrac; got < 0.89 || got > 0.93 {
		t.Errorf("thermal cumulative fraction = %v", got)
	}

	eff := map[string]Rate{}
	for _, r := range s.Effectiveness() {
		eff[r.Name] = r
	}
	if r := eff["evaluator cache"]; r.Total != 100 || r.Frac != 0.90 {
		t.Errorf("cache rate %+v", r)
	}
	if r := eff["thermal warm start"]; r.Frac != 0.80 {
		t.Errorf("warm-start rate %+v", r)
	}
	if r := eff["surrogate ranking"]; r.Total != 8 || r.Frac != 0.75 {
		t.Errorf("surrogate ranking rate %+v", r)
	}
	if _, ok := eff["memo store"]; ok {
		t.Error("memo rate reported with no memo counters")
	}

	fid := s.FidelityTallies()
	if len(fid) != 2 || fid[0].Name != "full" || fid[0].Hits != 9 {
		t.Errorf("fidelity tallies %+v", fid)
	}
}

// TestReadSimRun: a tesa-sim style stream — sim.* spans and counters —
// surfaces in Stages under full "sim." names and in SimTallies, and the
// report prints the dynamic-simulation line.
func TestReadSimRun(t *testing.T) {
	var buf bytes.Buffer
	sink := telemetry.NewJSONLSink(&buf)
	tel := telemetry.New(sink)
	reg := tel.Registry()
	reg.Histogram("stage.thermal").Observe(0.004)
	reg.Histogram("pipeline.total").Observe(0.004)
	reg.Histogram("sim.run").Observe(0.120)
	reg.Histogram("sim.distribution").Observe(0.360)
	reg.Counter("sim.requests").Add(135)
	reg.Counter("sim.sla_violations").Add(7)
	reg.Counter("sim.throttle_events").Add(2)
	reg.Counter("sim.steps").Add(40)
	m := telemetry.NewManifest("tesa-sim", nil)
	tel.Emit(telemetry.ManifestEvent, m.Snapshot())
	tel.Emit("sim.completed", map[string]any{"requests": 135})
	tel.Emit(telemetry.ManifestEvent, m.Finalize(reg, "ok"))
	if err := tel.Flush(); err != nil {
		t.Fatal(err)
	}

	s, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	stages := s.Stages()
	names := map[string]bool{}
	for _, st := range stages {
		names[st.Name] = true
	}
	if !names["sim.run"] || !names["sim.distribution"] || !names["thermal"] {
		t.Fatalf("stages missed sim spans: %+v", stages)
	}
	if stages[0].Name != "sim.distribution" {
		t.Errorf("dominant span is %q, want sim.distribution", stages[0].Name)
	}
	// Sim spans report against their own summed span time (0.48 s
	// total), never against pipeline.total — a share of the evaluation
	// pipeline would exceed 100% and mean nothing.
	for _, st := range stages {
		switch st.Name {
		case "sim.run":
			if st.CumFrac < 0.249 || st.CumFrac > 0.251 {
				t.Errorf("sim.run CumFrac = %v, want 0.25 of the sim total", st.CumFrac)
			}
		case "sim.distribution":
			if st.CumFrac < 0.749 || st.CumFrac > 0.751 {
				t.Errorf("sim.distribution CumFrac = %v, want 0.75 of the sim total", st.CumFrac)
			}
		case "thermal":
			if st.CumFrac != 1 {
				t.Errorf("thermal CumFrac = %v, want 1", st.CumFrac)
			}
		}
	}

	sim := map[string]int64{}
	for _, r := range s.SimTallies() {
		sim[r.Name] = r.Hits
	}
	if sim["requests"] != 135 || sim["sla_violations"] != 7 || sim["throttle_events"] != 2 {
		t.Errorf("sim tallies %v", sim)
	}
	if s.Events["sim.completed"] != 1 {
		t.Errorf("sim.completed event not counted: %v", s.Events)
	}

	var out bytes.Buffer
	WriteReport(&out, s)
	if !strings.Contains(out.String(), "dynamic simulation:") ||
		!strings.Contains(out.String(), "requests=135") {
		t.Errorf("report missing the dynamic-simulation line:\n%s", out.String())
	}
}

func TestReadToleratesTornTail(t *testing.T) {
	data := synthesizeRun(t, 0.010, 0.001, 90)
	torn := append(bytes.TrimRight(data, "\n"), []byte("\n{\"event\":\"run.man")...)
	s, err := Read(bytes.NewReader(torn))
	if err != nil {
		t.Fatalf("torn tail rejected: %v", err)
	}
	if s.Status != "ok" {
		t.Error("records before the torn tail were lost")
	}
	// But garbage mid-stream is an error.
	bad := append([]byte("{\"event\":\"x\"\n"), data...)
	if _, err := Read(bytes.NewReader(bad)); err == nil {
		t.Error("mid-stream corruption accepted")
	}
}

func TestReadNoManifest(t *testing.T) {
	s, err := Read(strings.NewReader(`{"event":"anneal.level","temp":1.5}` + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	if s.HasManifest() {
		t.Error("manifest reported for a stream without one")
	}
	if len(s.Stages()) != 0 || len(s.Effectiveness()) != 0 {
		t.Error("analysis fabricated without a manifest")
	}
	var out bytes.Buffer
	WriteReport(&out, s) // must not panic, must mention the gap
	if !strings.Contains(out.String(), "no finalized run.manifest") {
		t.Errorf("report did not flag the missing manifest:\n%s", out.String())
	}
}

func TestCompareFlagsRegressions(t *testing.T) {
	before, err := Read(bytes.NewReader(synthesizeRun(t, 0.010, 0.001, 90)))
	if err != nil {
		t.Fatal(err)
	}
	// Thermal 2x slower, systolic unchanged, cache rate collapses.
	after, err := Read(bytes.NewReader(synthesizeRun(t, 0.020, 0.001, 5)))
	if err != nil {
		t.Fatal(err)
	}
	d := Compare(before, after, 0.10)
	byName := map[string]StageDelta{}
	for _, sd := range d.Stages {
		byName[sd.Name] = sd
	}
	th := byName["thermal"]
	if !th.Regression || th.P95Delta < 0.9 || th.P95Delta > 1.1 {
		t.Errorf("thermal delta %+v, want ~+100%% regression", th)
	}
	if sy := byName["systolic"]; sy.Regression || sy.Improvement {
		t.Errorf("systolic flagged with no change: %+v", sy)
	}
	var cache RateDelta
	for _, rd := range d.Rates {
		if rd.Name == "evaluator cache" {
			cache = rd
		}
	}
	// 90/100 → 5/15 hit rate: far below any threshold.
	if !cache.Regression {
		t.Errorf("cache-rate collapse not flagged: %+v", cache)
	}
	if d.Regressions < 2 {
		t.Errorf("Regressions = %d, want thermal + cache", d.Regressions)
	}

	var out bytes.Buffer
	WriteDiff(&out, d)
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Errorf("diff output missing REGRESSION flag:\n%s", out.String())
	}

	// The reverse comparison is an improvement, not a regression.
	rev := Compare(after, before, 0.10)
	revByName := map[string]StageDelta{}
	for _, sd := range rev.Stages {
		revByName[sd.Name] = sd
	}
	if th := revByName["thermal"]; th.Regression || !th.Improvement {
		t.Errorf("reverse thermal delta %+v, want improvement", th)
	}
}

func TestCompareStageOnlyInOneRun(t *testing.T) {
	before, _ := Read(bytes.NewReader(synthesizeRun(t, 0.010, 0.001, 90)))
	var buf bytes.Buffer
	sink := telemetry.NewJSONLSink(&buf)
	tel := telemetry.New(sink)
	tel.Registry().Histogram("stage.thermal").Observe(0.010)
	tel.Registry().Histogram("stage.dram").Observe(0.002)
	m := telemetry.NewManifest("tesa-test", nil)
	tel.Emit(telemetry.ManifestEvent, m.Finalize(tel.Registry(), "ok"))
	if err := tel.Flush(); err != nil {
		t.Fatal(err)
	}
	after, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	d := Compare(before, after, 0.10)
	got := map[string]string{}
	for _, sd := range d.Stages {
		got[sd.Name] = sd.OnlyIn
	}
	if got["dram"] != "after" || got["systolic"] != "before" || got["thermal"] != "" {
		t.Errorf("OnlyIn classification %v", got)
	}
	for _, sd := range d.Stages {
		if sd.Name == "dram" && !sd.Regression {
			t.Error("new-in-B stage not flagged as regression")
		}
	}
}

func TestRelDeltaGuards(t *testing.T) {
	if got := relDelta(0, 5); got != 0 {
		t.Errorf("relDelta(0,5) = %v, want 0 (no baseline signal)", got)
	}
	if got := relDelta(2, 3); got != 0.5 {
		t.Errorf("relDelta(2,3) = %v", got)
	}
}
