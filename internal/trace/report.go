package trace

import (
	"fmt"
	"io"
	"sort"
)

// WriteReport renders a run summary as the human-readable per-stage
// report: identity, outcome, the stage latency table (p50/p95/p99,
// self vs cumulative share), effectiveness rates, fidelity tallies,
// quarantines, and event counts.
func WriteReport(w io.Writer, s *Summary) {
	if s.Path != "" {
		fmt.Fprintf(w, "%s\n", s.Path)
	}
	if s.Command != "" || s.RunID != "" {
		fmt.Fprintf(w, "run %s  command %s  started %s\n", orDash(s.RunID), orDash(s.Command), orDash(s.Started))
	}
	if !s.HasManifest() {
		fmt.Fprintln(w, "no finalized run.manifest record: stage and effectiveness analysis unavailable")
		fmt.Fprintln(w, "(rerun the command with -manifest or -trace so the manifest lands in the stream)")
		writeEventCounts(w, s)
		return
	}
	fmt.Fprintf(w, "status %s  wall %.2fs  cpu %.2fs user + %.2fs sys\n\n",
		s.Status, s.WallSec, s.CPUUserSec, s.CPUSysSec)

	stages := s.Stages()
	if len(stages) > 0 {
		fmt.Fprintf(w, "%-11s %9s %9s %9s %9s %9s %6s %6s\n",
			"stage", "count", "p50", "p95", "p99", "total", "self%", "cum%")
		for _, st := range stages {
			fmt.Fprintf(w, "%-11s %9d %9s %9s %9s %9s %5.1f%% %5.1f%%\n",
				st.Name, st.Stats.Count,
				fmtLatency(st.Stats.P50), fmtLatency(st.Stats.P95), fmtLatency(st.Stats.P99),
				fmtLatency(st.Stats.Sum), 100*st.SelfFrac, 100*st.CumFrac)
		}
		if pipe, ok := s.Metrics.Histograms["pipeline.total"]; ok {
			fmt.Fprintf(w, "%-11s %9d %9s %9s %9s %9s\n",
				"pipeline", pipe.Count, fmtLatency(pipe.P50), fmtLatency(pipe.P95), fmtLatency(pipe.P99), fmtLatency(pipe.Sum))
		}
		fmt.Fprintln(w)
	}

	if eff := s.Effectiveness(); len(eff) > 0 {
		for _, r := range eff {
			fmt.Fprintf(w, "%-22s %6.1f%%  (%d of %d)\n", r.Name, 100*r.Frac, r.Hits, r.Total)
		}
		fmt.Fprintln(w)
	}
	if fid := s.FidelityTallies(); len(fid) > 0 {
		fmt.Fprint(w, "thermal fidelity ladder:")
		for _, r := range fid {
			fmt.Fprintf(w, "  %s=%d", r.Name, r.Hits)
		}
		fmt.Fprintln(w)
	}
	if sim := s.SimTallies(); len(sim) > 0 {
		fmt.Fprint(w, "dynamic simulation:")
		for _, r := range sim {
			fmt.Fprintf(w, "  %s=%d", r.Name, r.Hits)
		}
		fmt.Fprintln(w)
	}
	if n := len(s.Quarantined); n > 0 {
		byStage := map[string]int{}
		for _, q := range s.Quarantined {
			byStage[q.Stage]++
		}
		fmt.Fprintf(w, "quarantined: %d", n)
		for _, stage := range sortedCountKeys(byStage) {
			fmt.Fprintf(w, "  %s=%d", stage, byStage[stage])
		}
		fmt.Fprintln(w)
	}
	writeEventCounts(w, s)
}

// writeEventCounts prints the stream's event histogram, busiest first.
func writeEventCounts(w io.Writer, s *Summary) {
	if len(s.Events) == 0 {
		return
	}
	fmt.Fprint(w, "events:")
	for _, name := range sortedCountKeys(s.Events) {
		fmt.Fprintf(w, "  %s=%d", orDash(name), s.Events[name])
	}
	fmt.Fprintln(w)
}

// sortedCountKeys orders a count map's keys by descending count, then
// name, for stable output.
func sortedCountKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if m[keys[i]] != m[keys[j]] {
			return m[keys[i]] > m[keys[j]]
		}
		return keys[i] < keys[j]
	})
	return keys
}

// fmtLatency renders a duration in seconds with a unit that keeps three
// significant figures across the ns..s range the stages span.
func fmtLatency(sec float64) string {
	switch {
	case sec <= 0:
		return "0"
	case sec < 1e-6:
		return fmt.Sprintf("%.0fns", sec*1e9)
	case sec < 1e-3:
		return fmt.Sprintf("%.1fus", sec*1e6)
	case sec < 1:
		return fmt.Sprintf("%.2fms", sec*1e3)
	default:
		return fmt.Sprintf("%.2fs", sec)
	}
}

// orDash substitutes "-" for an empty field in report output.
func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
