package trace

import (
	"fmt"
	"io"
	"sort"

	"tesa/internal/telemetry"
)

// DefaultDiffThreshold is the relative change below which a stage delta
// is considered noise.
const DefaultDiffThreshold = 0.10

// StageDelta is one stage's A/B comparison between two runs.
type StageDelta struct {
	Name          string
	Before, After telemetry.HistogramStats
	// P95Delta and MeanDelta are relative changes ((after-before)/before);
	// 0 when the before side has no signal to compare against.
	P95Delta  float64
	MeanDelta float64
	// OnlyIn marks a stage present in just one run ("before"/"after",
	// "" when both have it).
	OnlyIn string
	// Regression is set when the stage got slower beyond the threshold
	// (or exists only in the after run).
	Regression bool
	// Improvement is set when it got faster beyond the threshold.
	Improvement bool
}

// RateDelta is one effectiveness rate's A/B comparison. Deltas are in
// absolute fraction points (an 0.90 → 0.80 hit rate is -0.10).
type RateDelta struct {
	Name          string
	Before, After Rate
	Delta         float64
	// Regression is set when the hit rate dropped beyond the threshold.
	Regression bool
}

// Diff is the stage-by-stage comparison of two runs.
type Diff struct {
	Before, After *Summary
	// Threshold is the relative change that was considered significant.
	Threshold float64
	Stages    []StageDelta
	Rates     []RateDelta
	// WallDelta is the relative end-to-end wall-clock change.
	WallDelta float64
	// Regressions counts the flagged stage and rate regressions.
	Regressions int
}

// Compare diffs two run summaries stage-by-stage and rate-by-rate,
// flagging changes beyond threshold (<= 0 selects the default 10%).
// Latency comparisons use p95 — the tail is what sweeps feel — with the
// mean reported alongside.
func Compare(before, after *Summary, threshold float64) *Diff {
	if threshold <= 0 {
		threshold = DefaultDiffThreshold
	}
	d := &Diff{Before: before, After: after, Threshold: threshold}

	stages := map[string]*StageDelta{}
	for _, st := range before.Stages() {
		stages[st.Name] = &StageDelta{Name: st.Name, Before: st.Stats, OnlyIn: "before"}
	}
	for _, st := range after.Stages() {
		sd, ok := stages[st.Name]
		if !ok {
			sd = &StageDelta{Name: st.Name, OnlyIn: "after"}
			stages[st.Name] = sd
		} else {
			sd.OnlyIn = ""
		}
		sd.After = st.Stats
	}
	for _, sd := range stages {
		switch sd.OnlyIn {
		case "after":
			// A stage that appeared is new latency: always worth a flag.
			sd.Regression = true
		case "":
			sd.P95Delta = relDelta(sd.Before.P95, sd.After.P95)
			sd.MeanDelta = relDelta(sd.Before.Mean, sd.After.Mean)
			sd.Regression = sd.P95Delta > threshold
			sd.Improvement = sd.P95Delta < -threshold
		}
		if sd.Regression {
			d.Regressions++
		}
		d.Stages = append(d.Stages, *sd)
	}
	sort.Slice(d.Stages, func(i, j int) bool {
		if d.Stages[i].Regression != d.Stages[j].Regression {
			return d.Stages[i].Regression
		}
		if d.Stages[i].P95Delta != d.Stages[j].P95Delta {
			return d.Stages[i].P95Delta > d.Stages[j].P95Delta
		}
		return d.Stages[i].Name < d.Stages[j].Name
	})

	beforeRates := map[string]Rate{}
	for _, r := range before.Effectiveness() {
		beforeRates[r.Name] = r
	}
	for _, r := range after.Effectiveness() {
		b, ok := beforeRates[r.Name]
		if !ok {
			continue // a rate only one run exercised is not comparable
		}
		rd := RateDelta{Name: r.Name, Before: b, After: r, Delta: r.Frac - b.Frac}
		rd.Regression = rd.Delta < -threshold
		if rd.Regression {
			d.Regressions++
		}
		d.Rates = append(d.Rates, rd)
	}
	sort.Slice(d.Rates, func(i, j int) bool { return d.Rates[i].Name < d.Rates[j].Name })

	d.WallDelta = relDelta(before.WallSec, after.WallSec)
	return d
}

// relDelta is the relative change from a to b, 0 when a carries no
// signal (avoids Inf/NaN on empty or zero baselines).
func relDelta(a, b float64) float64 {
	if a <= 0 {
		return 0
	}
	return (b - a) / a
}

// WriteDiff renders the comparison: per-stage p95/mean deltas with
// REGRESSION/improved flags, effectiveness-rate deltas, and the
// wall-clock change.
func WriteDiff(w io.Writer, d *Diff) {
	fmt.Fprintf(w, "A: %s  (run %s, %.2fs wall)\n", orDash(d.Before.Path), orDash(d.Before.RunID), d.Before.WallSec)
	fmt.Fprintf(w, "B: %s  (run %s, %.2fs wall)\n", orDash(d.After.Path), orDash(d.After.RunID), d.After.WallSec)
	fmt.Fprintf(w, "threshold: %.0f%%\n\n", 100*d.Threshold)

	if len(d.Stages) > 0 {
		fmt.Fprintf(w, "%-11s %10s %10s %8s %8s  %s\n", "stage", "A p95", "B p95", "p95", "mean", "")
		for _, sd := range d.Stages {
			flag := ""
			switch {
			case sd.OnlyIn == "before":
				flag = "gone in B"
			case sd.OnlyIn == "after":
				flag = "REGRESSION (new in B)"
			case sd.Regression:
				flag = "REGRESSION"
			case sd.Improvement:
				flag = "improved"
			}
			fmt.Fprintf(w, "%-11s %10s %10s %7.1f%% %7.1f%%  %s\n",
				sd.Name, fmtLatency(sd.Before.P95), fmtLatency(sd.After.P95),
				100*sd.P95Delta, 100*sd.MeanDelta, flag)
		}
		fmt.Fprintln(w)
	}
	for _, rd := range d.Rates {
		flag := ""
		if rd.Regression {
			flag = "  REGRESSION"
		}
		fmt.Fprintf(w, "%-22s %5.1f%% -> %5.1f%%  (%+.1f pts)%s\n",
			rd.Name, 100*rd.Before.Frac, 100*rd.After.Frac, 100*rd.Delta, flag)
	}
	if len(d.Rates) > 0 {
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "wall clock: %.2fs -> %.2fs (%+.1f%%)\n", d.Before.WallSec, d.After.WallSec, 100*d.WallDelta)
	if d.Regressions > 0 {
		fmt.Fprintf(w, "%d regression(s) beyond the %.0f%% threshold\n", d.Regressions, 100*d.Threshold)
	} else {
		fmt.Fprintln(w, "no regressions beyond the threshold")
	}
}
