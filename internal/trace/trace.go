// Package trace analyzes the JSONL streams the tesa commands emit —
// event traces, run manifests, and checkpoint files — into per-run
// summaries, human-readable per-stage latency reports, and A/B diffs
// between two runs. It is the reading half of internal/telemetry: what
// the Manifest and the sinks write, this package loads back.
//
// The unit of analysis is the run: one "run.manifest" start/end record
// pair plus whatever trace events landed in the same stream. The end
// manifest carries the run's final metrics snapshot (counters and
// histogram percentiles), which is where the per-stage latency
// breakdowns and the memo/warm-start/surrogate effectiveness rates
// come from; the raw events only contribute occurrence counts.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"tesa/internal/telemetry"
)

// Summary is everything the analyzer extracts from one run's JSONL
// stream(s): identity from the start manifest, outcome and final
// metrics from the end manifest, and event counts from the trace.
type Summary struct {
	// Path is the file the summary was loaded from ("" for readers).
	Path string
	// RunID, Command, and Started identify the run (from the manifest;
	// empty when the stream carried none).
	RunID   string
	Command string
	Started string
	// Status is the end manifest's exit status ("" when the run never
	// finalized — a crash, or a stream with only a start record).
	Status string
	// WallSec, CPUUserSec and CPUSysSec are the end manifest's timings.
	WallSec    float64
	CPUUserSec float64
	CPUSysSec  float64
	// Metrics is the final metrics snapshot from the end manifest.
	Metrics telemetry.MetricsSnapshot
	// Events counts every event name seen in the stream.
	Events map[string]int
	// Quarantined lists the "eval.quarantined" records (stage plus
	// reason per failed point), preserving stream order.
	Quarantined []QuarantineRecord
}

// QuarantineRecord is one quarantined evaluation as recorded in a
// trace stream.
type QuarantineRecord struct {
	Stage  string
	Reason string
	// Trace is the flight-recorder dump, when the record carried one.
	Trace []string
}

// HasManifest reports whether the stream carried a finalized manifest —
// the precondition for latency and effectiveness analysis.
func (s *Summary) HasManifest() bool { return s.Status != "" }

// Load reads and summarizes one JSONL file.
func Load(path string) (*Summary, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	s.Path = path
	return s, nil
}

// Read summarizes a JSONL stream. Unknown events are counted but
// otherwise ignored, and a torn final line (the tail of a killed run)
// is tolerated; any other malformed line is an error.
func Read(r io.Reader) (*Summary, error) {
	s := &Summary{Events: map[string]int{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	var badLine error
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(strings.TrimSpace(string(raw))) == 0 {
			continue
		}
		if badLine != nil {
			return nil, badLine // garbage followed by more records
		}
		var rec map[string]any
		if err := json.Unmarshal(raw, &rec); err != nil {
			badLine = fmt.Errorf("line %d: %v", line, err)
			continue
		}
		event, _ := rec["event"].(string)
		s.Events[event]++
		switch event {
		case telemetry.ManifestEvent:
			s.mergeManifest(rec)
		case "eval.quarantined":
			q := QuarantineRecord{}
			q.Stage, _ = rec["stage"].(string)
			q.Reason, _ = rec["reason"].(string)
			if arr, ok := rec["trace"].([]any); ok {
				for _, v := range arr {
					if str, ok := v.(string); ok {
						q.Trace = append(q.Trace, str)
					}
				}
			}
			s.Quarantined = append(s.Quarantined, q)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return s, nil
}

// mergeManifest folds one run.manifest record into the summary: the
// start record contributes identity, the end record outcome and
// metrics. Later records win, so a stream with several runs appended
// (a resumed sweep) reports the last one — matching the checkpoint
// loader's newest-wins record semantics.
func (s *Summary) mergeManifest(rec map[string]any) {
	if v, ok := rec["run"].(string); ok && v != "" {
		s.RunID = v
	}
	if v, ok := rec["command"].(string); ok && v != "" {
		s.Command = v
	}
	if v, ok := rec["started"].(string); ok && v != "" {
		s.Started = v
	}
	phase, _ := rec["phase"].(string)
	if phase != "end" {
		return
	}
	s.Status, _ = rec["status"].(string)
	s.WallSec, _ = rec["wall_sec"].(float64)
	s.CPUUserSec, _ = rec["cpu_user_sec"].(float64)
	s.CPUSysSec, _ = rec["cpu_sys_sec"].(float64)
	if m, ok := rec["metrics"]; ok {
		// Round-trip through JSON: the snapshot arrived as a generic
		// map, and MetricsSnapshot's tags define the schema.
		if raw, err := json.Marshal(m); err == nil {
			var snap telemetry.MetricsSnapshot
			if json.Unmarshal(raw, &snap) == nil {
				s.Metrics = snap
			}
		}
	}
}

// StageStats is one pipeline stage's latency contribution within a run.
type StageStats struct {
	// Name is the stage ("systolic", "thermal", ...) without the
	// "stage." metric prefix. Simulation spans keep their full "sim."
	// name ("sim.run", "sim.distribution") so dynamic-workload time is
	// distinguishable from the evaluation pipeline's stages.
	Name string
	// Stats is the stage's latency histogram (seconds).
	Stats telemetry.HistogramStats
	// SelfFrac is the stage's share of the summed self time of all
	// stages; CumFrac is its share of the end-to-end total its stage
	// family belongs to (they differ when stages overlap cached
	// evaluations, or when the total was never observed — CumFrac is
	// then 0). Evaluation stages report against pipeline.total;
	// simulation spans run outside the evaluation pipeline, so they
	// report against the summed "sim." span time instead — each family
	// sums to at most 1 against its own total.
	SelfFrac float64
	CumFrac  float64
}

// stagePrefix is the metric namespace of the per-stage histograms;
// simPrefix is the namespace of the dynamic-workload simulation spans
// (sim.run, sim.distribution) emitted by tesa-sim and sim jobs.
const (
	stagePrefix = "stage."
	simPrefix   = "sim."
)

// Stages extracts the per-stage latency breakdown from the summary's
// final metrics, ordered by descending self time. Simulation spans are
// included under their full "sim." names; their counters (requests,
// throttle events) are a separate axis — see SimTallies.
func (s *Summary) Stages() []StageStats {
	var out []StageStats
	var selfSum, simSum float64
	for name, h := range s.Metrics.Histograms {
		switch {
		case strings.HasPrefix(name, stagePrefix):
			out = append(out, StageStats{Name: strings.TrimPrefix(name, stagePrefix), Stats: h})
		case strings.HasPrefix(name, simPrefix):
			out = append(out, StageStats{Name: name, Stats: h})
			simSum += h.Sum
		default:
			continue
		}
		selfSum += h.Sum
	}
	pipeSum := s.Metrics.Histograms["pipeline.total"].Sum
	for i := range out {
		if selfSum > 0 {
			out[i].SelfFrac = out[i].Stats.Sum / selfSum
		}
		// Sim spans are not part of the evaluation pipeline — a share of
		// pipeline.total would exceed 100% and mean nothing — so they
		// report against their own family's summed span time.
		if strings.HasPrefix(out[i].Name, simPrefix) {
			if simSum > 0 {
				out[i].CumFrac = out[i].Stats.Sum / simSum
			}
		} else if pipeSum > 0 {
			out[i].CumFrac = out[i].Stats.Sum / pipeSum
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Stats.Sum != out[j].Stats.Sum {
			return out[i].Stats.Sum > out[j].Stats.Sum
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Rate is a hit/total effectiveness ratio extracted from counters.
type Rate struct {
	Name  string
	Hits  int64
	Total int64
	// Frac is Hits/Total, 0 when nothing was counted.
	Frac float64
}

// rate builds a Rate from hit and miss counter values.
func rate(name string, hits, misses int64) Rate {
	r := Rate{Name: name, Hits: hits, Total: hits + misses}
	if r.Total > 0 {
		r.Frac = float64(r.Hits) / float64(r.Total)
	}
	return r
}

// Effectiveness summarizes the caching and fast-path counters of a run:
// evaluator cache, cross-point memo (aggregated over result kinds),
// thermal warm starts, the surrogate pre-screen (a "hit" is a candidate
// screened out without a grid solve), and the learned ranking surrogate
// (a "hit" is a search decision made by a warm model, a "miss" a cold
// fallback to the unranked path).
func (s *Summary) Effectiveness() []Rate {
	c := s.Metrics.Counters
	var memoHit, memoMiss int64
	for name, v := range c {
		if strings.HasPrefix(name, "memo.hit.") {
			memoHit += v
		}
		if strings.HasPrefix(name, "memo.miss.") {
			memoMiss += v
		}
	}
	skips := c["thermal.surrogate.skip.hot"] + c["thermal.surrogate.skip.cool"]
	rates := []Rate{
		rate("evaluator cache", c["evaluator.cache.hit"], c["evaluator.cache.miss"]),
		rate("memo store", memoHit, memoMiss),
		rate("thermal warm start", c["thermal.warmstart.hit"], c["thermal.warmstart.miss"]),
		rate("surrogate pre-screen", skips, c["thermal.surrogate.fallthrough"]),
		rate("surrogate ranking", c["surrogate.hit"], c["surrogate.miss"]),
	}
	out := rates[:0]
	for _, r := range rates {
		if r.Total > 0 {
			out = append(out, r)
		}
	}
	return out
}

// SimTallies returns the dynamic-workload simulation counters
// (sim.requests, sim.sla_violations, sim.throttle_events, sim.steps,
// and any per-reason sim failure counters), sorted by descending count
// then name. Empty for runs that never simulated.
func (s *Summary) SimTallies() []Rate {
	var out []Rate
	for name, v := range s.Metrics.Counters {
		if rest, ok := strings.CutPrefix(name, simPrefix); ok {
			out = append(out, Rate{Name: rest, Hits: v, Total: v, Frac: 1})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Hits != out[j].Hits {
			return out[i].Hits > out[j].Hits
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// FidelityTallies returns the thermal fidelity-ladder counters
// (thermal.fidelity.<rung> successes), sorted by descending count.
func (s *Summary) FidelityTallies() []Rate {
	var out []Rate
	for name, v := range s.Metrics.Counters {
		if rung, ok := strings.CutPrefix(name, "thermal.fidelity."); ok {
			out = append(out, Rate{Name: rung, Hits: v, Total: v, Frac: 1})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Hits != out[j].Hits {
			return out[i].Hits > out[j].Hits
		}
		return out[i].Name < out[j].Name
	})
	return out
}
