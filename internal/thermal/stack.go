package thermal

import "fmt"

// Materials bundles the package's material properties and layer
// thicknesses (after Narayan et al. [20], as the paper does) plus the
// boundary conditions (HotSpot ambient 45 C and 0.4 K/W convection for
// edge devices [19]).
type Materials struct {
	// Conductivities in W/(m*K).
	SiliconK   float64 // bulk silicon (dies, interposer)
	CopperK    float64 // TSV copper
	UnderfillK float64 // epoxy underfill / gap fill between chiplets
	BondK      float64 // face-to-back bond layer (ILD + microbumps) of 3-D chiplets
	TIMK       float64 // thermal interface material under the lid
	GapTIMK    float64 // TIM-layer fill over whitespace (no die below)
	LidK       float64 // heat-spreader lid

	// Thicknesses in meters.
	InterposerThk float64
	DieThk        float64 // 2-D chiplet die / 3-D array tier
	SRAMTierThk   float64 // 3-D SRAM tier
	BondThk       float64
	TIMThk        float64
	LidThk        float64

	AmbientC        float64
	ConvectionKPerW float64
}

// DefaultMaterials returns the calibration used throughout the
// reproduction. The TIM dominates the vertical resistance (edge devices
// have no bulky heat sink), which is what puts the paper's design points
// into the 72-85 C band at 6-15 W.
func DefaultMaterials() Materials {
	return Materials{
		SiliconK:   110,
		CopperK:    390,
		UnderfillK: 1.0,
		BondK:      2.0,
		TIMK:       2.0,
		GapTIMK:    0.8,
		LidK:       390,

		InterposerThk: 100e-6,
		DieThk:        150e-6,
		SRAMTierThk:   100e-6,
		BondThk:       20e-6,
		TIMThk:        58e-6,
		LidThk:        3000e-6,

		AmbientC:        45,
		ConvectionKPerW: 0.4,
	}
}

// blend builds a per-cell conductivity map interpolating between outside
// (coverage 0) and inside (coverage 1) values.
func blend(coverage []float64, outside, inside float64) []float64 {
	k := make([]float64, len(coverage))
	for i, c := range coverage {
		k[i] = outside + c*(inside-outside)
	}
	return k
}

// BuildStack2D assembles the 2-D MCM stack of the paper's Fig. 3
// cross-section (2-D variant): interposer, chiplet die layer (power map),
// TIM, lid. coverage is the per-cell chiplet-silicon fraction; power is
// the die-layer power map (array + SRAM regions already merged by the
// floorplanner).
func BuildStack2D(grid int, cellM float64, coverage, power []float64, m Materials) (*Stack, error) {
	if len(coverage) != grid*grid || len(power) != grid*grid {
		return nil, fmt.Errorf("thermal: coverage/power maps must have %d cells", grid*grid)
	}
	s := &Stack{
		Grid: grid, CellM: cellM,
		AmbientC: m.AmbientC, ConvectionKPerW: m.ConvectionKPerW,
		Layers: []Layer{
			{Name: "interposer", ThicknessM: m.InterposerThk, K: Uniform(grid, m.SiliconK)},
			{Name: "die", ThicknessM: m.DieThk, K: blend(coverage, m.UnderfillK, m.SiliconK), Power: power},
			{Name: "tim", ThicknessM: m.TIMThk, K: blend(coverage, m.GapTIMK, m.TIMK)},
			{Name: "lid", ThicknessM: m.LidThk, K: Uniform(grid, m.LidK)},
		},
	}
	return s, s.Validate()
}

// BuildStack3D assembles the 3-D MCM stack of Fig. 3: interposer, SRAM
// tier (TSV-adjusted conductivity, SRAM power), face-to-back bond layer,
// array tier (array power), TIM, lid. tsvCuFraction is the copper
// fraction of the SRAM tier inside chiplet footprints; the tier's
// effective conductivity combines copper and silicon in parallel, the
// paper's joint-resistivity treatment.
func BuildStack3D(grid int, cellM float64, coverage, sramPower, arrayPower []float64, tsvCuFraction float64, m Materials) (*Stack, error) {
	n := grid * grid
	if len(coverage) != n || len(sramPower) != n || len(arrayPower) != n {
		return nil, fmt.Errorf("thermal: coverage/power maps must have %d cells", n)
	}
	if tsvCuFraction < 0 || tsvCuFraction >= 1 {
		return nil, fmt.Errorf("thermal: TSV copper fraction %g out of [0,1)", tsvCuFraction)
	}
	sramK := m.SiliconK*(1-tsvCuFraction) + m.CopperK*tsvCuFraction
	s := &Stack{
		Grid: grid, CellM: cellM,
		AmbientC: m.AmbientC, ConvectionKPerW: m.ConvectionKPerW,
		Layers: []Layer{
			{Name: "interposer", ThicknessM: m.InterposerThk, K: Uniform(grid, m.SiliconK)},
			{Name: "sram", ThicknessM: m.SRAMTierThk, K: blend(coverage, m.UnderfillK, sramK), Power: sramPower},
			{Name: "bond", ThicknessM: m.BondThk, K: blend(coverage, m.UnderfillK, m.BondK)},
			{Name: "array", ThicknessM: m.DieThk, K: blend(coverage, m.UnderfillK, m.SiliconK), Power: arrayPower},
			{Name: "tim", ThicknessM: m.TIMThk, K: blend(coverage, m.GapTIMK, m.TIMK)},
			{Name: "lid", ThicknessM: m.LidThk, K: Uniform(grid, m.LidK)},
		},
	}
	return s, s.Validate()
}
