package thermal

import (
	"math"
	"testing"
	"testing/quick"
)

// singleLayer builds a one-layer stack with the given uniform power.
func singleLayer(grid int, totalWatts float64) *Stack {
	p := make([]float64, grid*grid)
	for i := range p {
		p[i] = totalWatts / float64(grid*grid)
	}
	return &Stack{
		Grid: grid, CellM: 125e-6,
		AmbientC: 45, ConvectionKPerW: 0.4,
		Layers: []Layer{{Name: "die", ThicknessM: 150e-6, K: Uniform(grid, 110), Power: p}},
	}
}

func TestValidate(t *testing.T) {
	s := singleLayer(8, 1)
	if err := s.Validate(); err != nil {
		t.Fatalf("valid stack rejected: %v", err)
	}
	bad := singleLayer(8, 1)
	bad.Layers[0].K[3] = -5
	if err := bad.Validate(); err == nil {
		t.Error("negative conductivity accepted")
	}
	bad2 := singleLayer(8, 1)
	bad2.Layers[0].Power[0] = -1
	if err := bad2.Validate(); err == nil {
		t.Error("negative power accepted")
	}
	bad3 := singleLayer(8, 1)
	bad3.ConvectionKPerW = 0
	if err := bad3.Validate(); err == nil {
		t.Error("zero convection resistance accepted")
	}
	bad4 := &Stack{Grid: 4, CellM: 1e-4, ConvectionKPerW: 0.4}
	if err := bad4.Validate(); err == nil {
		t.Error("empty stack accepted")
	}
}

// TestUniformPowerAnalytic: with uniform power on a single layer, the
// exact solution is T = ambient + P_total * R_conv everywhere (no lateral
// gradients, all heat leaves through the film).
func TestUniformPowerAnalytic(t *testing.T) {
	s := singleLayer(16, 10)
	r, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	want := 45 + 10*0.4
	for idx, temp := range r.Temps[0] {
		if math.Abs(temp-want) > 1e-6 {
			t.Fatalf("cell %d: T = %f, want %f", idx, temp, want)
		}
	}
	if math.Abs(r.PeakC-want) > 1e-6 {
		t.Errorf("peak = %f, want %f", r.PeakC, want)
	}
}

// TestZeroPower: with no dissipation everything sits at ambient.
func TestZeroPower(t *testing.T) {
	s := singleLayer(8, 0)
	r, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.PeakC-45) > 1e-9 {
		t.Errorf("peak %f, want ambient 45", r.PeakC)
	}
	if r.Iterations != 0 {
		t.Errorf("zero-power solve took %d iterations", r.Iterations)
	}
}

// TestEnergyBalance: in steady state, all injected power must exit
// through the convection film: sum gamb*(T_top - Tamb) = P_total.
func TestEnergyBalance(t *testing.T) {
	grid := 16
	s := singleLayer(grid, 7.5)
	// Concentrate power in one corner to exercise lateral flow.
	for i := range s.Layers[0].Power {
		s.Layers[0].Power[i] = 0
	}
	s.Layers[0].Power[0] = 5
	s.Layers[0].Power[1] = 2.5
	r, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	gamb := 1 / (0.4 * float64(grid*grid))
	var out float64
	for _, temp := range r.Temps[len(r.Temps)-1] {
		out += gamb * (temp - 45)
	}
	if math.Abs(out-7.5) > 1e-6 {
		t.Errorf("heat out = %f W, want 7.5", out)
	}
}

// TestSuperposition: the solver is linear — the rise of a summed power
// map equals the sum of rises (property test over random splits).
func TestSuperposition(t *testing.T) {
	grid := 8
	f := func(cells [4]uint8, w1, w2 uint8) bool {
		p1 := make([]float64, grid*grid)
		p2 := make([]float64, grid*grid)
		p1[int(cells[0])%(grid*grid)] = 1 + float64(w1%10)
		p1[int(cells[1])%(grid*grid)] += 2
		p2[int(cells[2])%(grid*grid)] = 1 + float64(w2%10)
		p2[int(cells[3])%(grid*grid)] += 3
		solve := func(p []float64) []float64 {
			s := singleLayer(grid, 0)
			copy(s.Layers[0].Power, p)
			r, err := s.Solve()
			if err != nil {
				return nil
			}
			return r.Temps[0]
		}
		sum := make([]float64, grid*grid)
		for i := range sum {
			sum[i] = p1[i] + p2[i]
		}
		t1, t2, ts := solve(p1), solve(p2), solve(sum)
		if t1 == nil || t2 == nil || ts == nil {
			return false
		}
		for i := range ts {
			want := (t1[i] - 45) + (t2[i] - 45)
			// The CG tolerance is relaxed for DSE speed; superposition
			// holds to well below a millikelvin.
			if math.Abs((ts[i]-45)-want) > 5e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestPositivity: non-negative power never cools below ambient.
func TestPositivity(t *testing.T) {
	f := func(seed uint8) bool {
		grid := 8
		s := singleLayer(grid, 0)
		for i := range s.Layers[0].Power {
			s.Layers[0].Power[i] = float64((int(seed)+i*7)%5) * 0.1
		}
		r, err := s.Solve()
		if err != nil {
			return false
		}
		for _, temp := range r.Temps[0] {
			if temp < 45-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestSymmetry: a symmetric power map yields a symmetric field.
func TestSymmetry(t *testing.T) {
	grid := 16
	s := singleLayer(grid, 0)
	p := s.Layers[0].Power
	// Two hot spots mirrored about the vertical axis.
	p[5*grid+3] = 4
	p[5*grid+(grid-1-3)] = 4
	r, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < grid; j++ {
		for i := 0; i < grid/2; i++ {
			a := r.Temps[0][j*grid+i]
			b := r.Temps[0][j*grid+(grid-1-i)]
			if math.Abs(a-b) > 1e-6 {
				t.Fatalf("asymmetry at (%d,%d): %f vs %f", i, j, a, b)
			}
		}
	}
}

// TestHotSpotAboveSource: the peak temperature is in the power-bearing
// layer at (or adjacent to) the power injection site.
func TestHotSpotAboveSource(t *testing.T) {
	grid := 16
	s := singleLayer(grid, 0)
	hot := 9*grid + 9
	s.Layers[0].Power[hot] = 6
	r, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if r.PeakCell != hot {
		t.Errorf("peak at cell %d, want %d", r.PeakCell, hot)
	}
}

// TestConcentrationHeats: the same total power concentrated in fewer
// cells produces a higher peak — the power-density mechanism behind the
// paper's chiplet-sizing argument.
func TestConcentrationHeats(t *testing.T) {
	grid := 16
	spread := singleLayer(grid, 8)
	conc := singleLayer(grid, 0)
	conc.Layers[0].Power[8*grid+8] = 8
	rs, err := spread.Solve()
	if err != nil {
		t.Fatal(err)
	}
	rc, err := conc.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if rc.PeakC <= rs.PeakC {
		t.Errorf("concentrated peak %f not above spread peak %f", rc.PeakC, rs.PeakC)
	}
}

// TestBuildStack2D: the composed MCM stack solves, peaks in the die
// layer, and lands in a plausible band for paper-scale power.
func TestBuildStack2D(t *testing.T) {
	grid := 32
	m := DefaultMaterials()
	cov := make([]float64, grid*grid)
	power := make([]float64, grid*grid)
	// Two 2.8 mm chiplets on the 8 mm interposer, ~3.5 W each.
	cells := int(2.8 / (8.0 / float64(grid)))
	for _, x0 := range []int{3, 18} {
		for j := 10; j < 10+cells; j++ {
			for i := x0; i < x0+cells; i++ {
				cov[j*grid+i] = 1
				power[j*grid+i] = 3.5 / float64(cells*cells)
			}
		}
	}
	s, err := BuildStack2D(grid, 8e-3/float64(grid), cov, power, m)
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if s.Layers[r.PeakLayer].Name != "die" {
		t.Errorf("peak in layer %q, want die", s.Layers[r.PeakLayer].Name)
	}
	if r.PeakC < 50 || r.PeakC > 110 {
		t.Errorf("7 W two-chiplet peak = %.1f C, want a plausible 50..110 C", r.PeakC)
	}
}

// TestICSCoupling: moving two chiplets closer together (smaller ICS)
// raises the peak temperature at equal power — the paper's lateral
// thermal-coupling mechanism that TESA's ICS knob controls.
func TestICSCoupling(t *testing.T) {
	grid := 64
	m := DefaultMaterials()
	build := func(gapCells int) float64 {
		cov := make([]float64, grid*grid)
		power := make([]float64, grid*grid)
		cells := 22 // ~2.75 mm per chiplet
		x0 := grid/2 - gapCells/2 - cells
		x1 := grid/2 + (gapCells+1)/2
		for j := 20; j < 20+cells; j++ {
			for i := x0; i < x0+cells; i++ {
				cov[j*grid+i] = 1
				power[j*grid+i] = 4.0 / float64(cells*cells)
			}
			for i := x1; i < x1+cells; i++ {
				cov[j*grid+i] = 1
				power[j*grid+i] = 4.0 / float64(cells*cells)
			}
		}
		s, err := BuildStack2D(grid, 8e-3/float64(grid), cov, power, m)
		if err != nil {
			t.Fatal(err)
		}
		r, err := s.Solve()
		if err != nil {
			t.Fatal(err)
		}
		return r.PeakC
	}
	close := build(1) // ~0.125 mm gap
	far := build(8)   // ~1 mm gap
	if close <= far {
		t.Errorf("close spacing peak %.2f C not above far spacing peak %.2f C", close, far)
	}
}

// TestBuildStack3DHotterThanIso2D: stacking the same total power into a
// 3-D chiplet (half the footprint) must run hotter than the 2-D spread —
// the reason 3-D MCMs need TESA's thermal awareness most.
func TestBuildStack3DHotterThanIso2D(t *testing.T) {
	grid := 32
	m := DefaultMaterials()
	cell := 8e-3 / float64(grid)
	// 2-D: one 4x4-cell region with 3 W array + 1 W SRAM side by side
	// over 32 cells total footprint.
	cov2 := make([]float64, grid*grid)
	p2 := make([]float64, grid*grid)
	for j := 12; j < 16; j++ {
		for i := 10; i < 18; i++ {
			cov2[j*grid+i] = 1
			p2[j*grid+i] = 4.0 / 32
		}
	}
	s2, err := BuildStack2D(grid, cell, cov2, p2, m)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s2.Solve()
	if err != nil {
		t.Fatal(err)
	}
	// 3-D: same 4 W in half the footprint, split across two tiers.
	cov3 := make([]float64, grid*grid)
	pa := make([]float64, grid*grid)
	ps := make([]float64, grid*grid)
	for j := 12; j < 16; j++ {
		for i := 12; i < 16; i++ {
			cov3[j*grid+i] = 1
			pa[j*grid+i] = 3.0 / 16
			ps[j*grid+i] = 1.0 / 16
		}
	}
	s3, err := BuildStack3D(grid, cell, cov3, ps, pa, 0.02, m)
	if err != nil {
		t.Fatal(err)
	}
	r3, err := s3.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if r3.PeakC <= r2.PeakC {
		t.Errorf("3-D peak %.2f C not above iso-power 2-D peak %.2f C", r3.PeakC, r2.PeakC)
	}
}

// TestTSVsCoolSRAMTier: raising the TSV copper fraction lowers the 3-D
// peak (better vertical conduction), as the paper's joint-resistivity
// model implies.
func TestTSVsCoolSRAMTier(t *testing.T) {
	grid := 32
	m := DefaultMaterials()
	cell := 8e-3 / float64(grid)
	build := func(cu float64) float64 {
		cov := make([]float64, grid*grid)
		pa := make([]float64, grid*grid)
		ps := make([]float64, grid*grid)
		for j := 12; j < 16; j++ {
			for i := 12; i < 16; i++ {
				cov[j*grid+i] = 1
				pa[j*grid+i] = 3.0 / 16
				ps[j*grid+i] = 1.5 / 16
			}
		}
		s, err := BuildStack3D(grid, cell, cov, ps, pa, cu, m)
		if err != nil {
			t.Fatal(err)
		}
		r, err := s.Solve()
		if err != nil {
			t.Fatal(err)
		}
		return r.PeakC
	}
	if noCu, withCu := build(0), build(0.10); withCu >= noCu {
		t.Errorf("10%% TSV copper peak %.3f C not below no-TSV peak %.3f C", withCu, noCu)
	}
}

func TestBuildStackValidation(t *testing.T) {
	m := DefaultMaterials()
	if _, err := BuildStack2D(8, 1e-4, make([]float64, 10), make([]float64, 64), m); err == nil {
		t.Error("bad coverage length accepted")
	}
	n := make([]float64, 64)
	if _, err := BuildStack3D(8, 1e-4, n, n, n, 1.2, m); err == nil {
		t.Error("copper fraction > 1 accepted")
	}
}

func TestLayerTempsLookup(t *testing.T) {
	s := singleLayer(8, 2)
	r, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if r.LayerTemps(s, "die") == nil {
		t.Error("die layer not found")
	}
	if r.LayerTemps(s, "nope") != nil {
		t.Error("phantom layer found")
	}
}
