package thermal

import (
	"encoding/json"
	"os"
	"testing"
)

// emitBench appends one JSONL record for this benchmark invocation to
// the file named by TESA_BENCH_JSON (no-op when unset). Each record
// carries the benchmark name, the iteration count, and ns/op; repeated
// invocations (testing's N ramp-up, -count > 1) append a trajectory,
// and consumers take the largest-N record per benchmark.
func emitBench(b *testing.B, extra map[string]any) {
	path := os.Getenv("TESA_BENCH_JSON")
	if path == "" {
		return
	}
	b.Cleanup(func() {
		rec := map[string]any{
			"bench":     b.Name(),
			"n":         b.N,
			"ns_per_op": float64(b.Elapsed().Nanoseconds()) / float64(b.N),
		}
		for k, v := range extra {
			rec[k] = v
		}
		f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			b.Logf("bench json: %v", err)
			return
		}
		defer f.Close()
		if err := json.NewEncoder(f).Encode(rec); err != nil {
			b.Logf("bench json: %v", err)
		}
	})
}

// benchStack builds the same grid-88 MCM the repo-root thermal
// benchmarks use: 11 mm interposer, four 14-cell chiplets.
func benchStack(b *testing.B, threeD bool) *Stack {
	b.Helper()
	grid := 88
	m := DefaultMaterials()
	cov := make([]float64, grid*grid)
	power := make([]float64, grid*grid)
	sramPower := make([]float64, grid*grid)
	cells := 14
	for _, origin := range [][2]int{{20, 20}, {20, 54}, {54, 20}, {54, 54}} {
		for j := origin[1]; j < origin[1]+cells; j++ {
			for i := origin[0]; i < origin[0]+cells; i++ {
				cov[j*grid+i] = 1
				power[j*grid+i] = 2.5 / float64(cells*cells)
				sramPower[j*grid+i] = 0.8 / float64(cells*cells)
			}
		}
	}
	cell := 11e-3 / float64(grid)
	var s *Stack
	var err error
	if threeD {
		s, err = BuildStack3D(grid, cell, cov, sramPower, power, 0.02, m)
	} else {
		s, err = BuildStack2D(grid, cell, cov, power, m)
	}
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// benchSolveReference times the seed solver (Jacobi CG, per-solve
// allocations) — the baseline of the fast-path speedup claim.
func benchSolveReference(b *testing.B, threeD bool) {
	s := benchStack(b, threeD)
	emitBench(b, map[string]any{"solver": "reference", "grid": s.Grid, "layers": len(s.Layers)})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSolveFast times the workspace solver at the reference
// convergence target (an apples-to-apples comparison against
// BenchmarkSolveReference*), recycling one workspace and one Result so
// the steady state is reached with zero allocations per solve.
func benchSolveFast(b *testing.B, threeD bool, tolScale float64, label string) {
	s := benchStack(b, threeD)
	s.Solver.TolScale = tolScale
	emitBench(b, map[string]any{"solver": label, "grid": s.Grid, "layers": len(s.Layers)})
	ws := NewWorkspace()
	var res Result
	if err := s.SolveWorkspaceInto(ws, nil, &res); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.SolveWorkspaceInto(ws, nil, &res); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveReference2D is the seed solver on the 2-D MCM bench stack.
func BenchmarkSolveReference2D(b *testing.B) { benchSolveReference(b, false) }

// BenchmarkSolveReference3D is the seed solver on the 3-D MCM bench stack.
func BenchmarkSolveReference3D(b *testing.B) { benchSolveReference(b, true) }

// BenchmarkSolveFast2D is the workspace solver on the 2-D MCM bench
// stack at the reference tolerance; compare against
// BenchmarkSolveReference2D.
func BenchmarkSolveFast2D(b *testing.B) { benchSolveFast(b, false, 0, "workspace") }

// BenchmarkSolveFast3D is the workspace solver on the 3-D MCM bench
// stack at the reference tolerance; compare against
// BenchmarkSolveReference3D.
func BenchmarkSolveFast3D(b *testing.B) { benchSolveFast(b, true, 0, "workspace") }

// BenchmarkSolveFastTol2D is the workspace solver at the fast-path
// tolerance (FastTolScale) — the configuration core's -thermal-fast
// evaluation runs.
func BenchmarkSolveFastTol2D(b *testing.B) {
	benchSolveFast(b, false, FastTolScale, "workspace-fasttol")
}

// BenchmarkSolveFastTol3D is BenchmarkSolveFastTol2D on the 3-D stack.
func BenchmarkSolveFastTol3D(b *testing.B) {
	benchSolveFast(b, true, FastTolScale, "workspace-fasttol")
}
