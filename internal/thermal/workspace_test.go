package thermal

import (
	"math"
	"math/rand"
	"runtime"
	"sync"
	"testing"
)

// testStacks builds the fault-matrix stack configurations: single layer,
// 2-D MCM (4 layers), and 3-D MCM (6 layers), each with a non-uniform
// power map and heterogeneous conductivities.
func testStacks(t *testing.T) map[string]*Stack {
	t.Helper()
	grid := 24
	n := grid * grid
	coverage := make([]float64, n)
	power := make([]float64, n)
	sramPower := make([]float64, n)
	rng := rand.New(rand.NewSource(7))
	for j := 8; j < 16; j++ {
		for i := 4; i < 20; i++ {
			coverage[j*grid+i] = 1
			power[j*grid+i] = 0.02 + 0.01*rng.Float64()
			sramPower[j*grid+i] = 0.005
		}
	}
	m := DefaultMaterials()
	s2d, err := BuildStack2D(grid, 125e-6, coverage, power, m)
	if err != nil {
		t.Fatal(err)
	}
	s3d, err := BuildStack3D(grid, 125e-6, coverage, sramPower, power, 0.1, m)
	if err != nil {
		t.Fatal(err)
	}
	single := singleLayer(grid, 0)
	single.Layers[0].Power[5*grid+7] = 3
	single.Layers[0].Power[15*grid+18] = 2
	return map[string]*Stack{"single": single, "mcm2d": s2d, "mcm3d": s3d}
}

// TestWorkspaceEquivalence: the workspace solver, under both
// preconditioners, matches the reference solver cell-by-cell well within
// the 0.1 C acceptance bound across the fault-matrix stack configs.
func TestWorkspaceEquivalence(t *testing.T) {
	for name, s := range testStacks(t) {
		ref, err := s.Solve()
		if err != nil {
			t.Fatalf("%s: reference solve: %v", name, err)
		}
		for _, pc := range []Precond{PrecondJacobi, PrecondSSOR} {
			fast := *s
			fast.Solver.Precond = pc
			got, err := fast.SolveWorkspace(NewWorkspace(), nil)
			if err != nil {
				t.Fatalf("%s/precond=%d: %v", name, pc, err)
			}
			for l := range ref.Temps {
				for i := range ref.Temps[l] {
					if d := math.Abs(got.Temps[l][i] - ref.Temps[l][i]); d > 0.1 {
						t.Fatalf("%s/precond=%d: layer %d cell %d differs by %.4f C (fast %.4f, ref %.4f)",
							name, pc, l, i, d, got.Temps[l][i], ref.Temps[l][i])
					}
				}
			}
			if d := math.Abs(got.PeakC - ref.PeakC); d > 0.1 {
				t.Fatalf("%s/precond=%d: peak differs by %.4f C", name, pc, d)
			}
			if got.PeakLayer != ref.PeakLayer || got.PeakCell != ref.PeakCell {
				t.Errorf("%s/precond=%d: hot spot at (%d,%d), ref (%d,%d)",
					name, pc, got.PeakLayer, got.PeakCell, ref.PeakLayer, ref.PeakCell)
			}
			if d := math.Abs(got.MeanC - ref.MeanC); d > 0.1 {
				t.Errorf("%s/precond=%d: mean differs by %.4f C", name, pc, d)
			}
		}
	}
}

// TestSSORFewerIterations: SSOR should cut the CG iteration count versus
// Jacobi on an MCM stack — the whole point of the preconditioner.
func TestSSORFewerIterations(t *testing.T) {
	s := testStacks(t)["mcm2d"]
	jac := *s
	jac.Solver.Precond = PrecondJacobi
	rj, err := jac.SolveWorkspace(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	ssor := *s
	ssor.Solver.Precond = PrecondSSOR
	rs, err := ssor.SolveWorkspace(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Iterations >= rj.Iterations {
		t.Errorf("SSOR took %d iterations, Jacobi %d — no reduction", rs.Iterations, rj.Iterations)
	}
}

// TestWorkspaceWarmStart: warm starts reach the same fixed point through
// the workspace path, in no more iterations than a cold start.
func TestWorkspaceWarmStart(t *testing.T) {
	s := testStacks(t)["mcm2d"]
	s.Solver.Precond = PrecondSSOR
	ws := NewWorkspace()
	cold, err := s.SolveWorkspace(ws, nil)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := s.SolveWorkspace(ws, cold.Rises)
	if err != nil {
		t.Fatal(err)
	}
	for l := range cold.Temps {
		for i := range cold.Temps[l] {
			if math.Abs(warm.Temps[l][i]-cold.Temps[l][i]) > 1e-4 {
				t.Fatalf("layer %d cell %d: warm %.6f != cold %.6f", l, i, warm.Temps[l][i], cold.Temps[l][i])
			}
		}
	}
	if warm.Iterations > cold.Iterations {
		t.Errorf("warm start took %d iterations, cold %d", warm.Iterations, cold.Iterations)
	}
}

// TestWorkspaceReuseAcrossGeometries: one workspace recycled across
// stacks of different grid and layer counts stays correct — the guard
// bands and stale operator entries must not leak between solves.
func TestWorkspaceReuseAcrossGeometries(t *testing.T) {
	ws := NewWorkspace()
	stacks := testStacks(t)
	small := singleLayer(8, 2)
	order := []*Stack{stacks["mcm3d"], small, stacks["mcm2d"], stacks["single"], stacks["mcm3d"]}
	for i, s := range order {
		fast := *s
		fast.Solver.Precond = PrecondSSOR
		got, err := fast.SolveWorkspace(ws, nil)
		if err != nil {
			t.Fatalf("solve %d: %v", i, err)
		}
		ref, err := s.Solve()
		if err != nil {
			t.Fatalf("ref %d: %v", i, err)
		}
		if d := math.Abs(got.PeakC - ref.PeakC); d > 0.1 {
			t.Fatalf("solve %d: peak differs by %.4f C after workspace reuse", i, d)
		}
	}
}

// TestWorkspacePerGoroutine: concurrent solves, each goroutine with its
// own workspace, race-free (run under -race) and correct.
func TestWorkspacePerGoroutine(t *testing.T) {
	s := testStacks(t)["mcm2d"]
	s.Solver.Precond = PrecondSSOR
	ref, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	peaks := make([]float64, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ws := NewWorkspace()
			for it := 0; it < 3; it++ {
				res, err := s.SolveWorkspace(ws, nil)
				if err != nil {
					errs[g] = err
					return
				}
				peaks[g] = res.PeakC
			}
		}(g)
	}
	wg.Wait()
	for g := 0; g < 8; g++ {
		if errs[g] != nil {
			t.Fatalf("goroutine %d: %v", g, errs[g])
		}
		if math.Abs(peaks[g]-ref.PeakC) > 0.1 {
			t.Fatalf("goroutine %d: peak %.4f, ref %.4f", g, peaks[g], ref.PeakC)
		}
	}
}

// TestParallelStencilEquivalence: forcing the parallel apply path (by
// dropping the node threshold and raising GOMAXPROCS) yields the same
// solution as the serial path.
func TestParallelStencilEquivalence(t *testing.T) {
	oldMin := parallelMinNodes
	oldProcs := runtime.GOMAXPROCS(4)
	defer func() {
		parallelMinNodes = oldMin
		runtime.GOMAXPROCS(oldProcs)
	}()
	parallelMinNodes = 1
	for name, s := range testStacks(t) {
		ref, err := s.Solve()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		fast := *s
		fast.Solver.Precond = PrecondSSOR
		got, err := fast.SolveWorkspace(NewWorkspace(), nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for l := range ref.Temps {
			for i := range ref.Temps[l] {
				if math.Abs(got.Temps[l][i]-ref.Temps[l][i]) > 0.1 {
					t.Fatalf("%s: layer %d cell %d diverges under parallel apply", name, l, i)
				}
			}
		}
	}
}

// TestSolveWorkspaceIntoZeroAlloc: recycling both the workspace and the
// Result runs the whole solve without allocating.
func TestSolveWorkspaceIntoZeroAlloc(t *testing.T) {
	s := testStacks(t)["mcm2d"]
	s.Solver.Precond = PrecondSSOR
	ws := NewWorkspace()
	var res Result
	if err := s.SolveWorkspaceInto(ws, nil, &res); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(5, func() {
		if err := s.SolveWorkspaceInto(ws, nil, &res); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("SolveWorkspaceInto allocated %.0f times per solve, want 0", allocs)
	}
}

// TestWorkspaceErrors: validation failures and exhausted iteration
// budgets surface through the workspace path exactly like the reference.
func TestWorkspaceErrors(t *testing.T) {
	bad := singleLayer(8, 1)
	bad.Grid = 0
	if _, err := bad.SolveWorkspace(nil, nil); err == nil {
		t.Error("invalid stack accepted")
	}
	s := nonuniform(8)
	s.Solver = SolverParams{IterScale: 1e-9, Precond: PrecondSSOR}
	if _, err := s.SolveWorkspace(nil, nil); err == nil {
		t.Error("exhausted budget did not error")
	}
}

// TestWorkspaceZeroPower: a zero-power stack returns ambient everywhere
// even when the workspace holds a stale previous solution.
func TestWorkspaceZeroPower(t *testing.T) {
	ws := NewWorkspace()
	hot := singleLayer(8, 4)
	if _, err := hot.SolveWorkspace(ws, nil); err != nil {
		t.Fatal(err)
	}
	cold := singleLayer(8, 0)
	r, err := cold.SolveWorkspace(ws, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.PeakC-45) > 1e-9 {
		t.Errorf("zero-power peak %f, want ambient 45", r.PeakC)
	}
}

// TestFastToleranceWithinBand: solving at the fast-path tolerance
// (FastTolScale, ~1e-5 relative residual) stays within 0.02 C of the
// full-fidelity reference everywhere — five times inside the 0.1 C
// agreement contract — across the fault-matrix stack configs.
func TestFastToleranceWithinBand(t *testing.T) {
	for name, s := range testStacks(t) {
		ref, err := s.Solve()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		fast := *s
		fast.Solver.TolScale = FastTolScale
		got, err := fast.SolveWorkspace(nil, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for l := range ref.Temps {
			for i := range ref.Temps[l] {
				if d := math.Abs(got.Temps[l][i] - ref.Temps[l][i]); d > 0.02 {
					t.Fatalf("%s: layer %d cell %d differs by %.5f C at fast tolerance", name, l, i, d)
				}
			}
		}
		if got.Iterations >= ref.Iterations {
			t.Errorf("%s: fast tolerance took %d iterations, reference %d — no saving", name, got.Iterations, ref.Iterations)
		}
	}
}

// TestHarmZeroGuard: the harmonic mean of two zero conductivities is
// zero, not NaN.
func TestHarmZeroGuard(t *testing.T) {
	if got := harm(0, 0); got != 0 {
		t.Errorf("harm(0,0) = %v, want 0", got)
	}
	if got := harm(2, 2); math.Abs(got-2) > 1e-12 {
		t.Errorf("harm(2,2) = %v, want 2", got)
	}
	if got := harm(0, 5); got != 0 {
		t.Errorf("harm(0,5) = %v, want 0", got)
	}
}
