package thermal

import (
	"math"
	"testing"
)

// TestWarmStartSameFixedPoint: a solve warm-started from another
// solution's rises reaches the same temperatures (the guess affects only
// the iteration count).
func TestWarmStartSameFixedPoint(t *testing.T) {
	grid := 24
	s := singleLayer(grid, 0)
	s.Layers[0].Power[5*grid+7] = 3
	s.Layers[0].Power[15*grid+18] = 2
	cold, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}

	// Perturb the power slightly and solve cold vs warm.
	s2 := singleLayer(grid, 0)
	s2.Layers[0].Power[5*grid+7] = 3.3
	s2.Layers[0].Power[15*grid+18] = 2.1
	coldRef, err := s2.Solve()
	if err != nil {
		t.Fatal(err)
	}
	warm, err := s2.SolveWithGuess(cold.Rises)
	if err != nil {
		t.Fatal(err)
	}
	for i := range warm.Temps[0] {
		if math.Abs(warm.Temps[0][i]-coldRef.Temps[0][i]) > 1e-4 {
			t.Fatalf("cell %d: warm %.6f != cold %.6f", i, warm.Temps[0][i], coldRef.Temps[0][i])
		}
	}
	if warm.Iterations > coldRef.Iterations {
		t.Errorf("warm start took %d iterations, cold %d — no speedup", warm.Iterations, coldRef.Iterations)
	}
}

// TestWarmStartWrongLengthIgnored: a malformed guess falls back to the
// cold start instead of corrupting the solve.
func TestWarmStartWrongLengthIgnored(t *testing.T) {
	s := singleLayer(8, 2)
	ref, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.SolveWithGuess([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.PeakC-ref.PeakC) > 1e-9 {
		t.Errorf("short guess changed the solution: %f vs %f", got.PeakC, ref.PeakC)
	}
}

// TestWarmStartZeroPower: with no power, the result is ambient even when
// a stale nonzero guess is supplied.
func TestWarmStartZeroPower(t *testing.T) {
	s := singleLayer(8, 0)
	stale := make([]float64, 8*8)
	for i := range stale {
		stale[i] = 25
	}
	r, err := s.SolveWithGuess(stale)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.PeakC-45) > 1e-9 {
		t.Errorf("zero-power peak %f, want ambient 45", r.PeakC)
	}
}

// TestRisesExposed: Result.Rises matches Temps minus ambient.
func TestRisesExposed(t *testing.T) {
	grid := 8
	s := singleLayer(grid, 4)
	r, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rises) != grid*grid {
		t.Fatalf("rises length %d, want %d", len(r.Rises), grid*grid)
	}
	for i := range r.Rises {
		if math.Abs(r.Rises[i]-(r.Temps[0][i]-45)) > 1e-9 {
			t.Fatalf("cell %d: rise %.6f != temp-ambient %.6f", i, r.Rises[i], r.Temps[0][i]-45)
		}
	}
}
