package thermal

import (
	"math"
	"testing"
)

// TestBoundEstimateBracketsPeak: across the fault-matrix stack configs
// the closed-form surrogate pair brackets the grid solver's peak —
// BoundEstimate from above (the property core's cool-skip relies on),
// LumpedEstimate at or below BoundEstimate.
func TestBoundEstimateBracketsPeak(t *testing.T) {
	stacks := testStacks(t)
	stacks["nonuniform"] = nonuniform(16)
	for name, s := range stacks {
		ref, err := s.Solve()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		bound := s.BoundEstimate()
		if bound.PeakC < ref.PeakC {
			t.Errorf("%s: BoundEstimate peak %.3f C below solved peak %.3f C", name, bound.PeakC, ref.PeakC)
		}
		if lump := s.LumpedEstimate(); lump.PeakC > bound.PeakC {
			t.Errorf("%s: LumpedEstimate %.3f C above BoundEstimate %.3f C", name, lump.PeakC, bound.PeakC)
		}
		if bound.PeakLayer < 0 || bound.PeakCell < 0 || bound.PeakCell >= s.Grid*s.Grid {
			t.Errorf("%s: bad hot-spot location (%d,%d)", name, bound.PeakLayer, bound.PeakCell)
		}
	}
}

// TestBoundEstimateZeroPower: with no dissipation the bound is exactly
// ambient everywhere.
func TestBoundEstimateZeroPower(t *testing.T) {
	s := singleLayer(8, 0)
	res := s.BoundEstimate()
	if math.Abs(res.PeakC-s.AmbientC) > 1e-12 || math.Abs(res.MeanC-s.AmbientC) > 1e-12 {
		t.Errorf("zero-power bound peak %.6f mean %.6f, want ambient %.1f", res.PeakC, res.MeanC, s.AmbientC)
	}
}
