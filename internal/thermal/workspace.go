package thermal

import (
	"fmt"
	"math"
	"runtime"
	"sync"
)

// Precond selects the conjugate-gradient preconditioner of the
// workspace solver (Stack.SolveWorkspace). The zero value is Jacobi —
// the same diagonal scaling the reference solver uses — so a
// zero-valued SolverParams reproduces the reference preconditioning.
type Precond int

const (
	// PrecondJacobi is diagonal scaling. The workspace solver folds it
	// into the operator once per solve (symmetric scaling
	// D^-1/2 A D^-1/2, which generates the same Krylov iterates as
	// Jacobi-preconditioned CG on A), so the per-iteration
	// preconditioner cost is zero: the CG loop runs in three fused
	// passes. The fastest wall-clock choice on most hosts.
	PrecondJacobi Precond = iota
	// PrecondSSOR is the symmetric successive over-relaxation
	// preconditioner at omega = 1 (symmetric Gauss-Seidel) applied on
	// top of the diagonal scaling: M = (I+L)(I+U) over the scaled
	// operator, computed matrix-free as a forward and a backward
	// triangular sweep. M is symmetric positive definite, so CG theory
	// still applies; it cuts the iteration count roughly in half versus
	// Jacobi at the price of two inherently sequential sweeps per
	// iteration (see DESIGN.md, "Thermal solver").
	PrecondSSOR
)

// FastTolScale is the SolverParams.TolScale the fast evaluation path
// uses: it loosens the reference convergence target (relative residual
// 3e-8) to roughly 1e-5. For the package's stacks a relative residual
// of 1e-5 bounds the temperature error by ~1e-3 C — two orders of
// magnitude inside the 0.1 C agreement contract of the fast path — and
// saves about a third of the CG iterations (iterations scale with
// log(1/tol)). The bound is enforced by TestFastToleranceWithinBand.
const FastTolScale = 300

// parallelMinNodes is the node count above which the stencil apply fans
// out across GOMAXPROCS goroutines. The default equals the smallest
// sweep-scale system (grid 32, four layers); tests lower it to exercise
// the parallel path on small stacks.
var parallelMinNodes = 32 * 32 * 4

// maxStencilWorkers caps the stencil fan-out: beyond ~8 workers the
// apply is memory-bandwidth-bound and more goroutines only add
// synchronization cost.
const maxStencilWorkers = 8

// Workspace is a reusable solver arena: the conductance operator, the
// conjugate-gradient vectors, and the scratch buffers of one solve, all
// allocated once and recycled across solves (growing monotonically when
// a larger stack arrives). A Workspace is NOT safe for concurrent use —
// keep one per goroutine (e.g. via sync.Pool) and reuse it across the
// annealer's thermal solves; the CG loop then runs with zero
// allocations.
//
// All buffers are padded by one cell-layer (nc = grid*grid nodes) on
// each side. The pads stay zero forever, which lets the 7-point stencil
// read x[idx±1], x[idx±grid] and x[idx±nc] unconditionally: boundary
// couplings multiply a zero conductance against an in-bounds (padded)
// value instead of branching, so the hot loops are branch-free.
type Workspace struct {
	n   int // active nodes (layers * grid * grid)
	pad int // pad size (grid * grid)

	// Padded scaled operator: conductances of D^-1/2 A D^-1/2 (whose
	// diagonal is identically 1) plus the scaling vectors.
	gx, gy, gz, sqrtD, invSqrtD []float64
	// Padded CG vectors.
	q, x, r, z, p, ap, y []float64
	// Per-worker partial sums of the fused stencil dot product.
	partial []float64
}

// NewWorkspace returns an empty workspace; buffers are allocated on
// first use and reused afterwards.
func NewWorkspace() *Workspace { return &Workspace{} }

// reserve sizes the workspace for n active nodes with pad-sized guard
// bands. Buffers are reallocated only when the padded size grows; the
// guard bands are (re)zeroed only when the geometry changes, because no
// solve ever writes them.
func (ws *Workspace) reserve(n, pad int) {
	total := n + 2*pad
	if cap(ws.gx) < total {
		ws.gx = make([]float64, total)
		ws.gy = make([]float64, total)
		ws.gz = make([]float64, total)
		ws.sqrtD = make([]float64, total)
		ws.invSqrtD = make([]float64, total)
		ws.q = make([]float64, total)
		ws.x = make([]float64, total)
		ws.r = make([]float64, total)
		ws.z = make([]float64, total)
		ws.p = make([]float64, total)
		ws.ap = make([]float64, total)
		ws.y = make([]float64, total)
	} else if ws.n != n || ws.pad != pad {
		// Same backing arrays, different geometry: the old active
		// window may leak non-zero values into the new guard bands, so
		// clear everything the stencil can read.
		for _, b := range [][]float64{ws.gx, ws.gy, ws.gz, ws.x, ws.y, ws.p, ws.z} {
			clearFloats(b[:total])
		}
	}
	resize := func(s []float64) []float64 { return s[:total] }
	ws.gx, ws.gy, ws.gz = resize(ws.gx), resize(ws.gy), resize(ws.gz)
	ws.sqrtD, ws.invSqrtD = resize(ws.sqrtD), resize(ws.invSqrtD)
	ws.q, ws.x, ws.r, ws.z = resize(ws.q), resize(ws.x), resize(ws.r), resize(ws.z)
	ws.p, ws.ap, ws.y = resize(ws.p), resize(ws.ap), resize(ws.y)
	ws.n, ws.pad = n, pad
	if ws.partial == nil {
		ws.partial = make([]float64, maxStencilWorkers)
	}
}

func clearFloats(s []float64) {
	for i := range s {
		s[i] = 0
	}
}

// assemble builds the padded, diagonally-scaled conductance operator:
// first the raw conductances gx/gy/gz (zero on the far boundary of each
// axis, so the branch-free stencil couplings vanish there) and the
// diagonal row sums (plus the ambient film on the top layer), then the
// symmetric scaling g'[i,j] = g[i,j] / sqrt(d[i] d[j]) that makes the
// scaled diagonal identically one.
func (s *Stack) assemble(ws *Workspace) {
	g := s.Grid
	nc := g * g
	nl := len(s.Layers)
	pad := ws.pad

	for l := 0; l < nl; l++ {
		t := s.Layers[l].ThicknessM
		k := s.Layers[l].K
		base := pad + l*nc
		for j := 0; j < g; j++ {
			row := base + j*g
			crow := j * g
			for i := 0; i < g; i++ {
				var vx, vy float64
				if i+1 < g {
					vx = t * harm(k[crow+i], k[crow+i+1])
				}
				if j+1 < g {
					vy = t * harm(k[crow+i], k[crow+i+g])
				}
				ws.gx[row+i] = vx
				ws.gy[row+i] = vy
			}
		}
	}
	area := s.CellM * s.CellM
	for l := 0; l < nl; l++ {
		base := pad + l*nc
		if l+1 >= nl {
			clearFloats(ws.gz[base : base+nc])
			continue
		}
		tl, tu := s.Layers[l].ThicknessM, s.Layers[l+1].ThicknessM
		kl, ku := s.Layers[l].K, s.Layers[l+1].K
		for idx := 0; idx < nc; idx++ {
			r := tl/(2*kl[idx]) + tu/(2*ku[idx])
			ws.gz[base+idx] = area / r
		}
	}
	gamb := 1 / (s.ConvectionKPerW * float64(nc))
	gx, gy, gz := ws.gx, ws.gy, ws.gz
	lo, hi := pad, pad+ws.n
	for l := 0; l < nl; l++ {
		base := pad + l*nc
		film := 0.0
		if l == nl-1 {
			film = gamb
		}
		for idx := 0; idx < nc; idx++ {
			node := base + idx
			d := gx[node] + gx[node-1] + gy[node] + gy[node-g] + gz[node] + gz[node-nc] + film
			sq := math.Sqrt(d)
			ws.sqrtD[node] = sq
			ws.invSqrtD[node] = 1 / sq
		}
	}
	// Scale the couplings; the pads hold invSqrtD = 0, which keeps the
	// boundary couplings zero.
	inv := ws.invSqrtD
	for idx := lo; idx < hi; idx++ {
		gx[idx] *= inv[idx] * inv[idx+1]
		gy[idx] *= inv[idx] * inv[idx+g]
		gz[idx] *= inv[idx] * inv[idx+nc]
	}
}

// stencilSpan computes y = A'*x over the padded index range [lo, hi) of
// the scaled operator (unit diagonal) and returns the partial dot
// product sum(x[i]*y[i]). The loop is branch-free: boundary couplings
// multiply a zero conductance.
func stencilSpan(gx, gy, gz, x, y []float64, lo, hi, g, nc int) float64 {
	// Shifted, length-pinned views let the compiler drop every bounds
	// check from the 7-point gather.
	n := hi - lo
	xc, yc := x[lo:hi], y[lo:hi:hi]
	gxc, gxm := gx[lo:hi][:n], gx[lo-1 : hi-1][:n]
	gyc, gym := gy[lo:hi][:n], gy[lo-g : hi-g][:n]
	gzc, gzm := gz[lo:hi][:n], gz[lo-nc : hi-nc][:n]
	xp1, xm1 := x[lo+1 : hi+1][:n], x[lo-1 : hi-1][:n]
	xpg, xmg := x[lo+g : hi+g][:n], x[lo-g : hi-g][:n]
	xpn, xmn := x[lo+nc : hi+nc][:n], x[lo-nc : hi-nc][:n]
	var dot float64
	for i := range xc {
		v := xc[i] -
			gxc[i]*xp1[i] - gxm[i]*xm1[i] -
			gyc[i]*xpg[i] - gym[i]*xmg[i] -
			gzc[i]*xpn[i] - gzm[i]*xmn[i]
		yc[i] = v
		dot += xc[i] * v
	}
	return dot
}

// apply computes y = A'*x (padded vectors, scaled operator) and returns
// dot(x, A'*x), fanning out across goroutines when the system is large
// enough and more than one CPU is available. Per-worker partial sums
// keep the reduction deterministic for a fixed worker count.
func (ws *Workspace) apply(x, y []float64, g, nc int) float64 {
	lo, hi := ws.pad, ws.pad+ws.n
	workers := runtime.GOMAXPROCS(0)
	if workers > maxStencilWorkers {
		workers = maxStencilWorkers
	}
	if ws.n < parallelMinNodes || workers < 2 {
		return stencilSpan(ws.gx, ws.gy, ws.gz, x, y, lo, hi, g, nc)
	}
	chunk := (ws.n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		a := lo + w*chunk
		b := a + chunk
		if b > hi {
			b = hi
		}
		if a >= b {
			ws.partial[w] = 0
			continue
		}
		wg.Add(1)
		go func(w, a, b int) {
			defer wg.Done()
			ws.partial[w] = stencilSpan(ws.gx, ws.gy, ws.gz, x, y, a, b, g, nc)
		}(w, a, b)
	}
	wg.Wait()
	var dot float64
	for w := 0; w < workers; w++ {
		dot += ws.partial[w]
	}
	return dot
}

// ssorApply computes z = M^-1 r for the SSOR preconditioner of the
// scaled (unit-diagonal) operator, M = (I+L)(I+U), and returns
// dot(r, z) fused into the final sweep. The triangular sweeps are
// inherently sequential (each node depends on already-visited
// neighbors), so they do not fan out; their critical path is a single
// fused multiply-add per node because the diagonal scaling is already
// folded into the couplings.
func (ws *Workspace) ssorApply(g, nc int) float64 {
	lo, hi := ws.pad, ws.pad+ws.n
	n := hi - lo
	gx, gy, gz := ws.gx, ws.gy, ws.gz
	r, z, y := ws.r[lo:hi], ws.z, ws.y
	gxm, gym, gzm := gx[lo-1 : hi-1][:n], gy[lo-g : hi-g][:n], gz[lo-nc : hi-nc][:n]
	yc := y[lo:hi][:n]
	ym1, ymg, ymn := y[lo-1 : hi-1][:n], y[lo-g : hi-g][:n], y[lo-nc : hi-nc][:n]
	for i := range yc {
		yc[i] = r[i] +
			gxm[i]*ym1[i] + gym[i]*ymg[i] + gzm[i]*ymn[i]
	}
	gxc, gyc, gzc := gx[lo:hi][:n], gy[lo:hi][:n], gz[lo:hi][:n]
	zc := z[lo:hi][:n]
	zp1, zpg, zpn := z[lo+1 : hi+1][:n], z[lo+g : hi+g][:n], z[lo+nc : hi+nc][:n]
	var rz float64
	for i := n - 1; i >= 0; i-- {
		zi := yc[i] +
			gxc[i]*zp1[i] + gyc[i]*zpg[i] + gzc[i]*zpn[i]
		zc[i] = zi
		rz += r[i] * zi
	}
	return rz
}

// SolveWorkspace computes the steady-state temperature field like
// SolveWithGuess, but through ws: the operator and every CG vector live
// in the workspace's reusable arena, the Jacobi preconditioner is
// folded into the operator by symmetric diagonal scaling (three fused,
// branch-free passes per iteration instead of the reference's seven
// branchy ones), the stencil apply runs in parallel for sweep-scale
// grids on multi-CPU hosts, and Stack.Solver.Precond can layer SSOR on
// top. The convergence target follows SolverParams exactly as the
// reference solver does (the residual is measured in the scaled norm),
// so at default fidelity the fixed point matches SolveWithGuess to
// solver tolerance; only the route there is cheaper. A nil ws allocates
// a throwaway workspace.
func (s *Stack) SolveWorkspace(ws *Workspace, guess []float64) (*Result, error) {
	res := &Result{}
	if err := s.SolveWorkspaceInto(ws, guess, res); err != nil {
		return nil, err
	}
	return res, nil
}

// SolveWorkspaceInto is SolveWorkspace writing into a caller-owned
// Result, reusing its Temps and Rises buffers when already sized: a
// solve loop that recycles both ws and res runs with zero allocations.
// res.Rises must not alias a guess the caller still needs — it is
// overwritten in place.
func (s *Stack) SolveWorkspaceInto(ws *Workspace, guess []float64, res *Result) error {
	if err := s.Validate(); err != nil {
		return err
	}
	if ws == nil {
		ws = NewWorkspace()
	}
	g := s.Grid
	nc := g * g
	nl := len(s.Layers)
	n := nl * nc
	ws.reserve(n, nc)
	s.assemble(ws)
	pad := ws.pad
	// Scaled right-hand side q' = D^-1/2 q.
	for l := 0; l < nl; l++ {
		base := pad + l*nc
		if p := s.Layers[l].Power; p != nil {
			for idx := 0; idx < nc; idx++ {
				ws.q[base+idx] = p[idx] * ws.invSqrtD[base+idx]
			}
		} else {
			clearFloats(ws.q[base : base+nc])
		}
	}
	iters, err := ws.runCG(s, guess, g, nc)
	if err != nil {
		return err
	}
	// Unscale in place: x = D^-1/2 x'.
	lo, hi := pad, pad+n
	for idx := lo; idx < hi; idx++ {
		ws.x[idx] *= ws.invSqrtD[idx]
	}
	publishResult(s, ws.x[lo:hi], iters, res)
	return nil
}

// runCG runs preconditioned conjugate gradients on the scaled system
// A' x' = q' over the workspace's assembled operator, leaving the
// scaled solution in ws.x. With the Jacobi choice the scaled system
// needs no per-iteration preconditioner at all (z = r), so each
// iteration is one fused matvec+dot, one fused triple update
// (x, r, |r|^2), and one direction update. It allocates nothing.
func (ws *Workspace) runCG(s *Stack, guess []float64, g, nc int) (int, error) {
	lo, hi := ws.pad, ws.pad+ws.n
	q, x, r, p, ap := ws.q, ws.x, ws.r, ws.p, ws.ap
	var qnorm float64
	for idx := lo; idx < hi; idx++ {
		qnorm += q[idx] * q[idx]
	}
	qnorm = math.Sqrt(qnorm)
	if qnorm == 0 {
		clearFloats(x[lo:hi])
		return 0, nil
	}
	if len(guess) == ws.n {
		// Scale the guess into the primed system: x' = D^1/2 x.
		sq := ws.sqrtD
		for idx := lo; idx < hi; idx++ {
			x[idx] = guess[idx-lo] * sq[idx]
		}
		ws.apply(x, ap, g, nc)
		for idx := lo; idx < hi; idx++ {
			r[idx] = q[idx] - ap[idx]
		}
	} else {
		clearFloats(x[lo:hi])
		copy(r[lo:hi], q[lo:hi])
	}
	ssor := s.Solver.Precond == PrecondSSOR
	var rz float64
	if ssor {
		rz = ws.ssorApply(g, nc)
		copy(p[lo:hi], ws.z[lo:hi])
	} else {
		for idx := lo; idx < hi; idx++ {
			rz += r[idx] * r[idx]
		}
		copy(p[lo:hi], r[lo:hi])
	}
	tol := 3e-8 * qnorm
	if s.Solver.TolScale > 0 {
		tol *= s.Solver.TolScale
	}
	maxIter := 20 * ws.n
	if s.Solver.IterScale > 0 {
		maxIter = int(float64(maxIter) * s.Solver.IterScale)
	}
	n := ws.n
	xc, rc := x[lo:hi][:n], r[lo:hi][:n]
	pc, apc := p[lo:hi][:n], ap[lo:hi][:n]
	zc := ws.z[lo:hi][:n]
	var rn float64
	iters := 0
	for ; iters < maxIter; iters++ {
		pap := ws.apply(p, ap, g, nc)
		alpha := rz / pap
		var rn2 float64
		for i := range rc {
			xc[i] += alpha * pc[i]
			ri := rc[i] - alpha*apc[i]
			rc[i] = ri
			rn2 += ri * ri
		}
		rn = math.Sqrt(rn2)
		if rn < tol {
			break
		}
		var rzNew float64
		if ssor {
			rzNew = ws.ssorApply(g, nc)
			beta := rzNew / rz
			for i := range pc {
				pc[i] = zc[i] + beta*pc[i]
			}
		} else {
			rzNew = rn2
			beta := rzNew / rz
			for i := range pc {
				pc[i] = rc[i] + beta*pc[i]
			}
		}
		rz = rzNew
	}
	if iters >= maxIter {
		return 0, fmt.Errorf("%w in %d iterations (residual %g, target %g)", ErrNoConvergence, maxIter, rn, tol)
	}
	return iters, nil
}

// publishResult fills res from the solved temperature-rise vector,
// reusing res's buffers when their capacity suffices.
func publishResult(s *Stack, rises []float64, iters int, res *Result) {
	g := s.Grid
	nc := g * g
	nl := len(s.Layers)
	res.Iterations = iters
	if cap(res.Rises) >= len(rises) {
		res.Rises = res.Rises[:len(rises)]
	} else {
		res.Rises = make([]float64, len(rises))
	}
	copy(res.Rises, rises)
	if cap(res.Temps) >= nl {
		res.Temps = res.Temps[:nl]
	} else {
		res.Temps = make([][]float64, nl)
	}
	res.PeakC = math.Inf(-1)
	res.PeakLayer, res.PeakCell = 0, 0
	for l := 0; l < nl; l++ {
		if cap(res.Temps[l]) >= nc {
			res.Temps[l] = res.Temps[l][:nc]
		} else {
			res.Temps[l] = make([]float64, nc)
		}
		base := l * nc
		for idx := 0; idx < nc; idx++ {
			t := s.AmbientC + rises[base+idx]
			res.Temps[l][idx] = t
			if t > res.PeakC {
				res.PeakC = t
				res.PeakLayer = l
				res.PeakCell = idx
			}
		}
	}
	res.MeanC = 0
	for l := nl - 1; l >= 0; l-- {
		if s.Layers[l].Power == nil {
			continue
		}
		var sum float64
		for _, t := range res.Temps[l] {
			sum += t
		}
		res.MeanC = sum / float64(nc)
		break
	}
}
