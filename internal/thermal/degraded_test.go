package thermal

import (
	"errors"
	"math"
	"testing"
)

// nonuniform builds a single-layer stack with one hot cell, so the CG
// solve needs real iterations (unlike the uniform analytic case).
func nonuniform(grid int) *Stack {
	s := singleLayer(grid, 0)
	s.Layers[0].Power[grid+1] = 5
	return s
}

// TestSolverNonConvergence: an exhausted iteration budget reports
// ErrNoConvergence (matchable with errors.Is) instead of returning a
// half-converged field.
func TestSolverNonConvergence(t *testing.T) {
	s := nonuniform(8)
	s.Solver = SolverParams{IterScale: 1e-9} // budget rounds to zero
	if _, err := s.Solve(); !errors.Is(err, ErrNoConvergence) {
		t.Fatalf("err = %v, want ErrNoConvergence", err)
	}
}

// TestSolverRelaxedTolerance: loosening TolScale converges in no more
// iterations than the full-fidelity solve and lands near its solution —
// the property the degraded-retry ladder's "relaxed" rung relies on.
func TestSolverRelaxedTolerance(t *testing.T) {
	full := nonuniform(16)
	rf, err := full.Solve()
	if err != nil {
		t.Fatal(err)
	}
	relaxed := nonuniform(16)
	relaxed.Solver = SolverParams{TolScale: 100, IterScale: 2}
	rr, err := relaxed.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if rr.Iterations > rf.Iterations {
		t.Errorf("relaxed solve took %d iterations vs full %d", rr.Iterations, rf.Iterations)
	}
	if math.Abs(rr.PeakC-rf.PeakC) > 0.5 {
		t.Errorf("relaxed peak %f strays from full %f", rr.PeakC, rf.PeakC)
	}
}

// TestLumpedEstimate: the ladder's last rung is a closed form — finite,
// uniform, at least ambient, and never an error, even where CG diverges.
func TestLumpedEstimate(t *testing.T) {
	s := nonuniform(8)
	s.Solver = SolverParams{IterScale: 1e-9} // CG would fail here
	r := s.LumpedEstimate()
	if r.Iterations != 0 {
		t.Errorf("lumped estimate reports %d iterations", r.Iterations)
	}
	if math.IsNaN(r.PeakC) || math.IsInf(r.PeakC, 0) || r.PeakC < s.AmbientC {
		t.Fatalf("lumped peak = %f", r.PeakC)
	}
	if r.PeakC != r.MeanC {
		t.Errorf("lumped field not uniform: peak %f mean %f", r.PeakC, r.MeanC)
	}
	for l, layer := range r.Temps {
		if len(layer) != s.Grid*s.Grid {
			t.Fatalf("layer %d has %d cells", l, len(layer))
		}
		for _, temp := range layer {
			if temp != r.PeakC {
				t.Fatalf("non-uniform lumped cell %f != %f", temp, r.PeakC)
			}
		}
	}
	if len(r.Rises) != len(s.Layers)*s.Grid*s.Grid {
		t.Errorf("rises length %d", len(r.Rises))
	}

	// The lumped rise stays physical: for uniform power it is the
	// analytic convection-only solution plus the slab's series vertical
	// conduction resistance.
	u := singleLayer(8, 10)
	lr := u.LumpedEstimate()
	slabArea := u.CellM * u.CellM * 64
	rCond := u.Layers[0].ThicknessM / (110 * slabArea)
	want := 45 + 10*(0.4+rCond)
	if math.Abs(lr.PeakC-want) > 1e-9 {
		t.Errorf("uniform lumped peak %f, want %f", lr.PeakC, want)
	}

	// Zero power sits at ambient.
	z := singleLayer(8, 0)
	if zr := z.LumpedEstimate(); zr.PeakC != z.AmbientC {
		t.Errorf("zero-power lumped peak %f, want ambient", zr.PeakC)
	}
}
