package thermal

import (
	"math"
	"testing"
)

// TestTransientConvergesToSteadyState: the implicit-Euler step response
// approaches the steady-state solution for long times.
func TestTransientConvergesToSteadyState(t *testing.T) {
	grid := 12
	s := singleLayer(grid, 5)
	steady, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	// Thermal time constant of one cell ~ C/g; run far past it.
	tr, err := s.SolveTransient(0.5, 60)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tr.Final.PeakC-steady.PeakC) > 0.05 {
		t.Errorf("transient limit %.3f C != steady %.3f C", tr.Final.PeakC, steady.PeakC)
	}
}

// TestTransientMonotoneRise: under constant power from ambient, the peak
// temperature rises monotonically toward steady state (implicit Euler is
// unconditionally stable and monotone for this system).
func TestTransientMonotoneRise(t *testing.T) {
	s := singleLayer(10, 4)
	tr, err := s.SolveTransient(0.05, 40)
	if err != nil {
		t.Fatal(err)
	}
	prev := s.AmbientC
	for i, p := range tr.PeakC {
		// Tolerance at the CG residual level.
		if p < prev-1e-3 {
			t.Fatalf("step %d: peak %.4f dropped below %.4f", i, p, prev)
		}
		prev = p
	}
	steady, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if last := tr.PeakC[len(tr.PeakC)-1]; last > steady.PeakC+1e-6 {
		t.Errorf("transient overshot steady state: %.4f > %.4f", last, steady.PeakC)
	}
}

// TestTransientStartsNearAmbient: the first small step barely heats the
// stack (large C/dt dominates).
func TestTransientStartsNearAmbient(t *testing.T) {
	s := singleLayer(10, 4)
	tr, err := s.SolveTransient(1e-5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rise := tr.PeakC[0] - s.AmbientC; rise > 1.0 {
		t.Errorf("first 10 us step rose %.3f C; expected a small fraction of the steady rise", rise)
	}
}

// TestTimeToFraction: the 63% time is positive and below the 95% time.
func TestTimeToFraction(t *testing.T) {
	s := singleLayer(10, 6)
	tr, err := s.SolveTransient(0.05, 80)
	if err != nil {
		t.Fatal(err)
	}
	t63, ok63 := tr.TimeToFractionSec(s.AmbientC, 0.63)
	t95, ok95 := tr.TimeToFractionSec(s.AmbientC, 0.95)
	if !ok63 || !ok95 {
		t.Fatal("fraction times not reached within the trace")
	}
	if t63 <= 0 || t95 < t63 {
		t.Errorf("t63=%.3f t95=%.3f inconsistent", t63, t95)
	}
}

// TestTransientValidation: error paths.
func TestTransientValidation(t *testing.T) {
	s := singleLayer(8, 1)
	if _, err := s.SolveTransient(0, 10); err == nil {
		t.Error("zero dt accepted")
	}
	if _, err := s.SolveTransient(0.1, 0); err == nil {
		t.Error("zero steps accepted")
	}
	bad := singleLayer(8, 1)
	bad.CellM = -1
	if _, err := bad.SolveTransient(0.1, 5); err == nil {
		t.Error("invalid stack accepted")
	}
}

// TestTransientMCMStack: the composed 2-D MCM stack steps without error
// and heats toward its steady state.
func TestTransientMCMStack(t *testing.T) {
	grid := 16
	m := DefaultMaterials()
	cov := make([]float64, grid*grid)
	power := make([]float64, grid*grid)
	for j := 5; j < 11; j++ {
		for i := 5; i < 11; i++ {
			cov[j*grid+i] = 1
			power[j*grid+i] = 6.0 / 36
		}
	}
	s, err := BuildStack2D(grid, 8e-3/float64(grid), cov, power, m)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := s.SolveTransient(0.02, 50)
	if err != nil {
		t.Fatal(err)
	}
	steady, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	last := tr.PeakC[len(tr.PeakC)-1]
	if last <= s.AmbientC || last > steady.PeakC+1e-6 {
		t.Errorf("transient peak %.2f outside (ambient, steady %.2f]", last, steady.PeakC)
	}
}
