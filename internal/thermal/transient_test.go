package thermal

import (
	"errors"
	"math"
	"testing"
)

// TestTransientConvergesToSteadyState: the implicit-Euler step response
// approaches the steady-state solution for long times.
func TestTransientConvergesToSteadyState(t *testing.T) {
	grid := 12
	s := singleLayer(grid, 5)
	steady, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	// Thermal time constant of one cell ~ C/g; run far past it.
	tr, err := s.SolveTransient(0.5, 60)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tr.Final.PeakC-steady.PeakC) > 0.05 {
		t.Errorf("transient limit %.3f C != steady %.3f C", tr.Final.PeakC, steady.PeakC)
	}
}

// TestTransientMonotoneRise: under constant power from ambient, the peak
// temperature rises monotonically toward steady state (implicit Euler is
// unconditionally stable and monotone for this system).
func TestTransientMonotoneRise(t *testing.T) {
	s := singleLayer(10, 4)
	tr, err := s.SolveTransient(0.05, 40)
	if err != nil {
		t.Fatal(err)
	}
	prev := s.AmbientC
	for i, p := range tr.PeakC {
		// Tolerance at the CG residual level.
		if p < prev-1e-3 {
			t.Fatalf("step %d: peak %.4f dropped below %.4f", i, p, prev)
		}
		prev = p
	}
	steady, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if last := tr.PeakC[len(tr.PeakC)-1]; last > steady.PeakC+1e-6 {
		t.Errorf("transient overshot steady state: %.4f > %.4f", last, steady.PeakC)
	}
}

// TestTransientStartsNearAmbient: the first small step barely heats the
// stack (large C/dt dominates).
func TestTransientStartsNearAmbient(t *testing.T) {
	s := singleLayer(10, 4)
	tr, err := s.SolveTransient(1e-5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rise := tr.PeakC[0] - s.AmbientC; rise > 1.0 {
		t.Errorf("first 10 us step rose %.3f C; expected a small fraction of the steady rise", rise)
	}
}

// TestTimeToFraction: the 63% time is positive and below the 95% time.
func TestTimeToFraction(t *testing.T) {
	s := singleLayer(10, 6)
	tr, err := s.SolveTransient(0.05, 80)
	if err != nil {
		t.Fatal(err)
	}
	t63, ok63 := tr.TimeToFractionSec(s.AmbientC, 0.63)
	t95, ok95 := tr.TimeToFractionSec(s.AmbientC, 0.95)
	if !ok63 || !ok95 {
		t.Fatal("fraction times not reached within the trace")
	}
	if t63 <= 0 || t95 < t63 {
		t.Errorf("t63=%.3f t95=%.3f inconsistent", t63, t95)
	}
}

// TestTransientValidation: error paths.
func TestTransientValidation(t *testing.T) {
	s := singleLayer(8, 1)
	if _, err := s.SolveTransient(0, 10); err == nil {
		t.Error("zero dt accepted")
	}
	if _, err := s.SolveTransient(0.1, 0); err == nil {
		t.Error("zero steps accepted")
	}
	bad := singleLayer(8, 1)
	bad.CellM = -1
	if _, err := bad.SolveTransient(0.1, 5); err == nil {
		t.Error("invalid stack accepted")
	}
}

// TestTransientMCMStack: the composed 2-D MCM stack steps without error
// and heats toward its steady state.
func TestTransientMCMStack(t *testing.T) {
	grid := 16
	m := DefaultMaterials()
	cov := make([]float64, grid*grid)
	power := make([]float64, grid*grid)
	for j := 5; j < 11; j++ {
		for i := 5; i < 11; i++ {
			cov[j*grid+i] = 1
			power[j*grid+i] = 6.0 / 36
		}
	}
	s, err := BuildStack2D(grid, 8e-3/float64(grid), cov, power, m)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := s.SolveTransient(0.02, 50)
	if err != nil {
		t.Fatal(err)
	}
	steady, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	last := tr.PeakC[len(tr.PeakC)-1]
	if last <= s.AmbientC || last > steady.PeakC+1e-6 {
		t.Errorf("transient peak %.2f outside (ambient, steady %.2f]", last, steady.PeakC)
	}
}

// TestTransientStepperGolden: a uniformly-powered single-layer stack is
// a scalar RC network per cell (node + ambient; by symmetry every cell
// sits at the same temperature, so lateral fluxes cancel), and the
// implicit-Euler recurrence
//
//	x_{n+1} = (q + (C/dt) x_n) / (C/dt + g)
//
// is hand-computable: C from the documented volumetric heat capacity,
// and the cell-to-ambient conductance g recovered from the steady rise
// (g = q / x_inf). The stepper trace must match it step for step.
func TestTransientStepperGolden(t *testing.T) {
	s := singleLayer(2, 2) // four identical cells, 0.5 W each
	steady, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	q := 0.5
	g := q / (steady.PeakC - s.AmbientC)
	dt := 0.001
	c := SiliconVolHeatCapacity * s.CellM * s.CellM * s.Layers[0].ThicknessM
	ts, err := s.NewTransientStepper(dt)
	if err != nil {
		t.Fatal(err)
	}
	x := 0.0
	for step := 1; step <= 50; step++ {
		res, err := ts.Step()
		if err != nil {
			t.Fatal(err)
		}
		x = (q + (c/dt)*x) / (c/dt + g)
		if got, want := res.PeakC-s.AmbientC, x; math.Abs(got-want) > 1e-6*math.Max(1, want) {
			t.Fatalf("step %d: rise %.9f, golden %.9f", step, got, want)
		}
		if wantT := float64(step) * dt; ts.TimeSec() != wantT {
			t.Fatalf("step %d: TimeSec %g, want %g", step, ts.TimeSec(), wantT)
		}
	}
}

// TestTransientStepperMatchesSolveTransient: stepping N times with the
// stack's own power maps reproduces SolveTransient exactly.
func TestTransientStepperMatchesSolveTransient(t *testing.T) {
	s := singleLayer(10, 4)
	tr, err := s.SolveTransient(0.05, 20)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := s.NewTransientStepper(0.05)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		res, err := ts.Step()
		if err != nil {
			t.Fatal(err)
		}
		if res.PeakC != tr.PeakC[i] {
			t.Fatalf("step %d: stepper peak %g != SolveTransient %g", i, res.PeakC, tr.PeakC[i])
		}
	}
}

// TestTransientStepperSetPower: dropping the power mid-run cools the
// stack; bad power maps are rejected with ErrNonFinitePower.
func TestTransientStepperSetPower(t *testing.T) {
	s := singleLayer(6, 5)
	ts, err := s.NewTransientStepper(0.1)
	if err != nil {
		t.Fatal(err)
	}
	var hot float64
	for i := 0; i < 30; i++ {
		res, err := ts.Step()
		if err != nil {
			t.Fatal(err)
		}
		hot = res.PeakC
	}
	if err := ts.SetPower("die", make([]float64, 36)); err != nil {
		t.Fatalf("SetPower off: %v", err)
	}
	var cooled float64
	for i := 0; i < 30; i++ {
		res, err := ts.Step()
		if err != nil {
			t.Fatal(err)
		}
		cooled = res.PeakC
	}
	if cooled >= hot {
		t.Errorf("stack did not cool after power-off: %.3f -> %.3f", hot, cooled)
	}
}

// TestTransientStepperGuards: the typed input guards of the DES
// coupling boundary.
func TestTransientStepperGuards(t *testing.T) {
	s := singleLayer(4, 1)
	for _, dt := range []float64{0, -0.1, math.NaN(), math.Inf(1)} {
		if _, err := s.NewTransientStepper(dt); !errors.Is(err, ErrInvalidStep) {
			t.Errorf("dt=%g: got %v, want ErrInvalidStep", dt, err)
		}
		if _, err := s.SolveTransient(dt, 5); err == nil {
			t.Errorf("SolveTransient(dt=%g) accepted", dt)
		}
	}
	if _, err := s.SolveTransient(0.1, -1); !errors.Is(err, ErrInvalidStep) {
		t.Error("negative steps not ErrInvalidStep")
	}
	ts, err := s.NewTransientStepper(0.1)
	if err != nil {
		t.Fatal(err)
	}
	bad := map[string]float64{"nan": math.NaN(), "inf": math.Inf(1), "neg": -1}
	for name, v := range bad {
		p := make([]float64, 16)
		p[3] = v
		if err := ts.SetPower("die", p); !errors.Is(err, ErrNonFinitePower) {
			t.Errorf("%s power: got %v, want ErrNonFinitePower", name, err)
		}
	}
	if err := ts.SetPower("nope", make([]float64, 16)); err == nil {
		t.Error("unknown layer accepted")
	}
	if err := ts.SetPower("die", make([]float64, 3)); err == nil {
		t.Error("short power map accepted")
	}
}
