package thermal

import (
	"fmt"
	"math"
)

// Transient analysis — the counterpart of HotSpot's transient mode to
// this package's steady-state mode. The paper's DSE only needs steady
// state (its workloads run continuously), but the transient solver lets
// users check how quickly an MCM approaches its steady temperature after
// a workload starts, and verifies that steady state is indeed the
// long-run limit (pinned by tests).
//
// Discretization: backward (implicit) Euler on the same thermal network,
//
//	(C/dt + A) T_{n+1} = (C/dt) T_n + q,
//
// where C is the per-cell heat capacity. The stepping matrix is SPD like
// A, so the same Jacobi-preconditioned CG solves each step, warm-started
// from the previous one.

// Volumetric heat capacities in J/(m^3 K).
const (
	SiliconVolHeatCapacity = 1.63e6
	CopperVolHeatCapacity  = 3.45e6
	// PolymerVolHeatCapacity covers underfill, TIM, and bond layers.
	PolymerVolHeatCapacity = 2.0e6
)

// TransientResult is a step-response trace.
type TransientResult struct {
	// TimesSec[i] is the time after power-on of sample i.
	TimesSec []float64
	// PeakC[i] is the peak temperature at sample i.
	PeakC []float64
	// Final is the full field at the last step.
	Final *Result
}

// TimeToFractionSec returns the first sampled time at which the peak
// temperature rise reaches the given fraction of the final rise, or
// ok=false if it never does within the trace.
func (tr *TransientResult) TimeToFractionSec(ambientC, frac float64) (float64, bool) {
	if len(tr.PeakC) == 0 {
		return 0, false
	}
	target := ambientC + frac*(tr.PeakC[len(tr.PeakC)-1]-ambientC)
	for i, p := range tr.PeakC {
		if p >= target {
			return tr.TimesSec[i], true
		}
	}
	return 0, false
}

// volHeatCapacity returns the volumetric heat capacity for a layer,
// inferred from its conductivity class when not meaningful to ask the
// caller: metals (k > 150) get copper's, semiconductors (k > 20) get
// silicon's, everything else polymer's.
func volHeatCapacity(k float64) float64 {
	switch {
	case k > 150:
		return CopperVolHeatCapacity
	case k > 20:
		return SiliconVolHeatCapacity
	default:
		return PolymerVolHeatCapacity
	}
}

// SolveTransient computes the step response: the stack starts at ambient
// everywhere, the power maps switch on at t=0, and the field is stepped
// with the implicit-Euler scheme. steps samples are taken dt apart.
func (s *Stack) SolveTransient(dt float64, steps int) (*TransientResult, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if dt <= 0 || steps <= 0 {
		return nil, fmt.Errorf("thermal: transient needs positive dt and steps, got %g and %d", dt, steps)
	}
	g := s.Grid
	nc := g * g
	nl := len(s.Layers)
	n := nl * nc

	// Per-node heat capacity over dt.
	cOverDt := make([]float64, n)
	cellArea := s.CellM * s.CellM
	for l := 0; l < nl; l++ {
		cap := volHeatCapacity(s.Layers[l].K[0]) * cellArea * s.Layers[l].ThicknessM / dt
		base := l * nc
		for idx := 0; idx < nc; idx++ {
			cOverDt[base+idx] = cap
		}
	}

	// Each implicit step is a solve of the augmented SPD system
	// (A + C/dt) x_{n+1} = q + (C/dt) x_n, warm-started from x_n.
	tr := &TransientResult{}
	x := make([]float64, n) // rise above ambient
	rhs := make([]float64, n)
	q := make([]float64, n)
	for l := 0; l < nl; l++ {
		if p := s.Layers[l].Power; p != nil {
			base := l * nc
			for idx := 0; idx < nc; idx++ {
				q[base+idx] = p[idx]
			}
		}
	}
	for step := 1; step <= steps; step++ {
		for i := range rhs {
			rhs[i] = q[i] + cOverDt[i]*x[i]
		}
		next, _, err := s.solveSystem(cOverDt, rhs, x)
		if err != nil {
			return nil, err
		}
		x = next
		peak := math.Inf(-1)
		for _, v := range x {
			if v > peak {
				peak = v
			}
		}
		tr.TimesSec = append(tr.TimesSec, float64(step)*dt)
		tr.PeakC = append(tr.PeakC, s.AmbientC+peak)
	}

	// Package the final field like a steady solve.
	res := &Result{Temps: make([][]float64, nl), Rises: x}
	res.PeakC = math.Inf(-1)
	for l := 0; l < nl; l++ {
		res.Temps[l] = make([]float64, nc)
		base := l * nc
		for idx := 0; idx < nc; idx++ {
			t := s.AmbientC + x[base+idx]
			res.Temps[l][idx] = t
			if t > res.PeakC {
				res.PeakC = t
				res.PeakLayer = l
				res.PeakCell = idx
			}
		}
	}
	tr.Final = res
	return tr, nil
}
