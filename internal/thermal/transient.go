package thermal

import (
	"errors"
	"fmt"
	"math"
)

// Typed transient-input errors. Discrete-event scenario drivers feed
// this solver machine-generated power traces, so bad inputs (NaN/Inf
// watts, zero-length or non-finite timesteps) must be rejected at the
// boundary with matchable sentinels rather than silently corrupting
// the field. Callers match with errors.Is.
var (
	// ErrInvalidStep marks a non-finite or non-positive timestep.
	ErrInvalidStep = errors.New("thermal: invalid transient timestep")
	// ErrNonFinitePower marks a NaN, infinite, or negative power input.
	ErrNonFinitePower = errors.New("thermal: non-finite or negative power input")
)

// Transient analysis — the counterpart of HotSpot's transient mode to
// this package's steady-state mode. The paper's DSE only needs steady
// state (its workloads run continuously), but the transient solver lets
// users check how quickly an MCM approaches its steady temperature after
// a workload starts, and verifies that steady state is indeed the
// long-run limit (pinned by tests).
//
// Discretization: backward (implicit) Euler on the same thermal network,
//
//	(C/dt + A) T_{n+1} = (C/dt) T_n + q,
//
// where C is the per-cell heat capacity. The stepping matrix is SPD like
// A, so the same Jacobi-preconditioned CG solves each step, warm-started
// from the previous one.

// Volumetric heat capacities in J/(m^3 K).
const (
	SiliconVolHeatCapacity = 1.63e6
	CopperVolHeatCapacity  = 3.45e6
	// PolymerVolHeatCapacity covers underfill, TIM, and bond layers.
	PolymerVolHeatCapacity = 2.0e6
)

// TransientResult is a step-response trace.
type TransientResult struct {
	// TimesSec[i] is the time after power-on of sample i.
	TimesSec []float64
	// PeakC[i] is the peak temperature at sample i.
	PeakC []float64
	// Final is the full field at the last step.
	Final *Result
}

// TimeToFractionSec returns the first sampled time at which the peak
// temperature rise reaches the given fraction of the final rise, or
// ok=false if it never does within the trace.
func (tr *TransientResult) TimeToFractionSec(ambientC, frac float64) (float64, bool) {
	if len(tr.PeakC) == 0 {
		return 0, false
	}
	target := ambientC + frac*(tr.PeakC[len(tr.PeakC)-1]-ambientC)
	for i, p := range tr.PeakC {
		if p >= target {
			return tr.TimesSec[i], true
		}
	}
	return 0, false
}

// volHeatCapacity returns the volumetric heat capacity for a layer,
// inferred from its conductivity class when not meaningful to ask the
// caller: metals (k > 150) get copper's, semiconductors (k > 20) get
// silicon's, everything else polymer's.
func volHeatCapacity(k float64) float64 {
	switch {
	case k > 150:
		return CopperVolHeatCapacity
	case k > 20:
		return SiliconVolHeatCapacity
	default:
		return PolymerVolHeatCapacity
	}
}

// TransientStepper advances a stack's temperature field one implicit
// Euler step at a time under externally supplied, piecewise-constant
// power — the integration point for discrete-event scenario drivers
// (internal/des via internal/core), which batch utilization windows
// into one SetPower per layer per tick and then Step. The field starts
// at ambient; SetPower may change the trace between any two steps.
type TransientStepper struct {
	s       *Stack
	dtSec   float64
	cOverDt []float64
	x       []float64 // rise above ambient
	rhs     []float64
	q       []float64 // current volumetric power trace
	steps   int
}

// NewTransientStepper validates the stack and timestep and returns a
// stepper primed with the stack's own power maps (replaceable via
// SetPower). A NaN, infinite, or non-positive dtSec returns
// ErrInvalidStep.
func (s *Stack) NewTransientStepper(dtSec float64) (*TransientStepper, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if math.IsNaN(dtSec) || math.IsInf(dtSec, 0) || dtSec <= 0 {
		return nil, fmt.Errorf("%w: dt %g s", ErrInvalidStep, dtSec)
	}
	nc := s.Grid * s.Grid
	nl := len(s.Layers)
	n := nl * nc
	ts := &TransientStepper{
		s: s, dtSec: dtSec,
		cOverDt: make([]float64, n),
		x:       make([]float64, n),
		rhs:     make([]float64, n),
		q:       make([]float64, n),
	}
	cellArea := s.CellM * s.CellM
	for l := 0; l < nl; l++ {
		// Per-node heat capacity over dt.
		cap := volHeatCapacity(s.Layers[l].K[0]) * cellArea * s.Layers[l].ThicknessM / dtSec
		base := l * nc
		for idx := 0; idx < nc; idx++ {
			ts.cOverDt[base+idx] = cap
		}
		if p := s.Layers[l].Power; p != nil {
			copy(ts.q[base:base+nc], p)
		}
	}
	return ts, nil
}

// DtSec returns the fixed step size.
func (ts *TransientStepper) DtSec() float64 { return ts.dtSec }

// TimeSec returns the virtual time integrated so far (steps taken
// times the step size).
func (ts *TransientStepper) TimeSec() float64 { return float64(ts.steps) * ts.dtSec }

// SetPower replaces the named layer's power map for subsequent steps.
// The map must match the grid and hold only finite, non-negative watts;
// violations return ErrNonFinitePower with the offending cell, leaving
// the trace unchanged.
func (ts *TransientStepper) SetPower(layerName string, power []float64) error {
	nc := ts.s.Grid * ts.s.Grid
	li := -1
	for l := range ts.s.Layers {
		if ts.s.Layers[l].Name == layerName {
			li = l
			break
		}
	}
	if li < 0 {
		return fmt.Errorf("thermal: no layer %q in stack", layerName)
	}
	if len(power) != nc {
		return fmt.Errorf("thermal: layer %q power map has %d cells, want %d", layerName, len(power), nc)
	}
	for i, p := range power {
		if math.IsNaN(p) || math.IsInf(p, 0) || p < 0 {
			return fmt.Errorf("%w: layer %q cell %d: %g W", ErrNonFinitePower, layerName, i, p)
		}
	}
	copy(ts.q[li*nc:(li+1)*nc], power)
	return nil
}

// Step advances one implicit Euler step under the current power trace
// and returns the full field, packaged like a steady solve. Each step
// solves the augmented SPD system (A + C/dt) x_{n+1} = q + (C/dt) x_n,
// warm-started from x_n.
func (ts *TransientStepper) Step() (*Result, error) {
	for i := range ts.rhs {
		ts.rhs[i] = ts.q[i] + ts.cOverDt[i]*ts.x[i]
	}
	next, _, err := ts.s.solveSystem(ts.cOverDt, ts.rhs, ts.x)
	if err != nil {
		return nil, err
	}
	ts.x = next
	ts.steps++
	return ts.field(), nil
}

// field packages the current rise field as a Result.
func (ts *TransientStepper) field() *Result {
	nc := ts.s.Grid * ts.s.Grid
	nl := len(ts.s.Layers)
	// Rises is copied so the returned Result stays valid across later
	// steps (ts.x is reused as the warm start).
	res := &Result{Temps: make([][]float64, nl), Rises: append([]float64(nil), ts.x...)}
	res.PeakC = math.Inf(-1)
	for l := 0; l < nl; l++ {
		res.Temps[l] = make([]float64, nc)
		base := l * nc
		for idx := 0; idx < nc; idx++ {
			t := ts.s.AmbientC + ts.x[base+idx]
			res.Temps[l][idx] = t
			if t > res.PeakC {
				res.PeakC = t
				res.PeakLayer = l
				res.PeakCell = idx
			}
		}
	}
	return res
}

// SolveTransient computes the step response: the stack starts at ambient
// everywhere, the power maps switch on at t=0, and the field is stepped
// with the implicit-Euler scheme. steps samples are taken dt apart.
func (s *Stack) SolveTransient(dt float64, steps int) (*TransientResult, error) {
	if steps <= 0 {
		return nil, fmt.Errorf("%w: transient needs positive steps, got %d", ErrInvalidStep, steps)
	}
	ts, err := s.NewTransientStepper(dt)
	if err != nil {
		return nil, err
	}
	tr := &TransientResult{}
	for step := 1; step <= steps; step++ {
		res, err := ts.Step()
		if err != nil {
			return nil, err
		}
		tr.TimesSec = append(tr.TimesSec, ts.TimeSec())
		tr.PeakC = append(tr.PeakC, res.PeakC)
		tr.Final = res
	}
	return tr, nil
}
