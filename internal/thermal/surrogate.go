package thermal

import "math"

// BoundEstimate is the conservative companion of LumpedEstimate: a
// per-column upper estimate of the steady-state temperature field under
// the no-lateral-spreading relaxation. Each grid column is treated as an
// isolated one-dimensional path: all of the column's power is routed
// through the column's full vertical conduction resistance and the
// column's share of the lumped convection resistance, with no help from
// neighboring columns.
//
// Dropping the lateral conductances can only concentrate heat — lateral
// conduction moves power from hotter columns into cooler ones, and in a
// grounded resistive network adding a conductance never raises the
// maximum node potential — and routing the column's whole dissipation
// through every layer over-counts the path below the injection layer.
// Both relaxations push the estimate upward, so Result.PeakC here sits
// at or above the grid solver's peak for physically meaningful stacks
// (verified across the fault-matrix configurations in tests), while
// LumpedEstimate sits near the mean. The pair brackets the true peak,
// which is exactly what core's surrogate pre-screen gate needs: a
// hot-skip certificate from the underestimate and a cool-skip
// certificate from this overestimate.
//
// Like LumpedEstimate it is closed-form, allocates only its Result, and
// cannot fail; zero-conductivity cells (rejected by Validate but
// reachable through direct construction) contribute no path resistance
// instead of dividing by zero.
func (s *Stack) BoundEstimate() *Result {
	g := s.Grid
	nc := g * g
	nl := len(s.Layers)
	cellArea := s.CellM * s.CellM
	// The uniform film splits the lumped convection resistance evenly
	// over the top layer's cells, so one column's share is nc times the
	// total (matching the gamb assembly of the grid solver).
	rFilm := s.ConvectionKPerW * float64(nc)

	res := &Result{
		Temps: make([][]float64, nl),
		PeakC: math.Inf(-1),
		Rises: make([]float64, nl*nc),
	}
	var sum float64
	for idx := 0; idx < nc; idx++ {
		var pcol, rcol float64
		for l := 0; l < nl; l++ {
			if p := s.Layers[l].Power; p != nil {
				pcol += p[idx]
			}
			if k := s.Layers[l].K[idx]; k > 0 && cellArea > 0 {
				rcol += s.Layers[l].ThicknessM / (k * cellArea)
			}
		}
		rise := pcol * (rFilm + rcol)
		if math.IsNaN(rise) || math.IsInf(rise, 0) || rise < 0 {
			rise = 0
		}
		sum += rise
		for l := 0; l < nl; l++ {
			res.Rises[l*nc+idx] = rise
		}
		if t := s.AmbientC + rise; t > res.PeakC {
			res.PeakC = t
			res.PeakCell = idx
		}
	}
	res.MeanC = s.AmbientC + sum/float64(nc)
	for l := 0; l < nl; l++ {
		res.Temps[l] = make([]float64, nc)
		for idx := 0; idx < nc; idx++ {
			res.Temps[l][idx] = s.AmbientC + res.Rises[l*nc+idx]
		}
	}
	return res
}
