// Package thermal is the HotSpot-6.0-equivalent substrate of TESA: a
// steady-state, grid-based 3-D thermal solver for chiplet stacks on a
// silicon interposer.
//
// The model is HotSpot's detailed_3D formulation: each material layer is
// discretized into grid x grid cells; adjacent cells are connected by
// lateral thermal conductances, adjacent layers by vertical conductances
// (series half-thickness resistances), and the top layer reaches the
// 45 C ambient through a lumped convection resistance (0.4 K/W in the
// paper, representing the limited cooling of edge/mobile devices). The
// bottom face is adiabatic, as in HotSpot's default single-path package.
//
// Per-cell conductivities support heterogeneous layers: silicon inside
// chiplet footprints vs underfill in the whitespace, and the
// TSV-perforated SRAM tier of 3-D chiplets, whose copper fraction raises
// its effective vertical conductivity (the paper's joint copper/silicon
// resistivity treatment).
//
// The resulting linear system is symmetric positive definite and is
// solved matrix-free with Jacobi-preconditioned conjugate gradients.
package thermal

import (
	"errors"
	"fmt"
	"math"
)

// ErrNoConvergence marks a conjugate-gradient solve that exhausted its
// iteration budget without reaching the residual tolerance — typically
// an ill-conditioned corner of the design space (degenerate geometry,
// extreme conductivity contrast). Callers match it with errors.Is and
// may retry at degraded fidelity (looser tolerance, coarser grid, or
// the LumpedEstimate fallback) instead of aborting a whole sweep.
var ErrNoConvergence = errors.New("thermal: CG did not converge")

// SolverParams tunes the conjugate-gradient iteration. The zero value
// is full fidelity; the degraded-retry ladder passes scales > 1 to
// trade accuracy for convergence robustness.
type SolverParams struct {
	// TolScale multiplies the relative residual tolerance (0 = 1).
	TolScale float64
	// IterScale multiplies the 20*n iteration cap (0 = 1).
	IterScale float64
	// Precond selects the preconditioner of the workspace solver
	// (SolveWorkspace); the reference Solve path always uses Jacobi.
	// The zero value is PrecondJacobi.
	Precond Precond
}

// Layer is one material layer of the stack, bottom to top.
type Layer struct {
	Name string
	// ThicknessM is the layer thickness in meters.
	ThicknessM float64
	// K is the per-cell thermal conductivity in W/(m*K), row-major,
	// length grid*grid.
	K []float64
	// Power is the per-cell dissipation in watts; nil means no power.
	Power []float64
}

// Stack is a complete thermal problem.
type Stack struct {
	// Grid is the number of cells per side (the paper uses 125 um cells
	// on an 8 mm interposer, i.e. Grid=64).
	Grid int
	// CellM is the cell edge length in meters.
	CellM float64
	// AmbientC is the ambient temperature in Celsius (HotSpot default 45).
	AmbientC float64
	// ConvectionKPerW is the lumped convection resistance from the top
	// layer to ambient (0.4 K/W for edge devices).
	ConvectionKPerW float64
	// Solver tunes the CG iteration (zero value = full fidelity).
	Solver SolverParams
	// Layers, bottom to top.
	Layers []Layer
}

// Uniform returns a grid*grid conductivity map with a single value.
func Uniform(grid int, k float64) []float64 {
	m := make([]float64, grid*grid)
	for i := range m {
		m[i] = k
	}
	return m
}

// Validate reports an error for inconsistent stacks.
func (s *Stack) Validate() error {
	if s.Grid <= 0 {
		return fmt.Errorf("thermal: non-positive grid %d", s.Grid)
	}
	if s.CellM <= 0 {
		return fmt.Errorf("thermal: non-positive cell size %g", s.CellM)
	}
	if s.ConvectionKPerW <= 0 {
		return fmt.Errorf("thermal: non-positive convection resistance %g", s.ConvectionKPerW)
	}
	if len(s.Layers) == 0 {
		return fmt.Errorf("thermal: no layers")
	}
	n := s.Grid * s.Grid
	for li, l := range s.Layers {
		if l.ThicknessM <= 0 {
			return fmt.Errorf("thermal: layer %d (%s): non-positive thickness %g", li, l.Name, l.ThicknessM)
		}
		if len(l.K) != n {
			return fmt.Errorf("thermal: layer %d (%s): conductivity map has %d cells, want %d", li, l.Name, len(l.K), n)
		}
		for ci, k := range l.K {
			if k <= 0 || math.IsNaN(k) {
				return fmt.Errorf("thermal: layer %d (%s): non-physical conductivity %g at cell %d", li, l.Name, k, ci)
			}
		}
		if l.Power != nil && len(l.Power) != n {
			return fmt.Errorf("thermal: layer %d (%s): power map has %d cells, want %d", li, l.Name, len(l.Power), n)
		}
		for ci, p := range l.Power {
			if p < 0 || math.IsNaN(p) {
				return fmt.Errorf("thermal: layer %d (%s): negative power %g at cell %d", li, l.Name, p, ci)
			}
		}
	}
	return nil
}

// TotalPower returns the stack's total dissipation in watts.
func (s *Stack) TotalPower() float64 {
	var total float64
	for _, l := range s.Layers {
		for _, p := range l.Power {
			total += p
		}
	}
	return total
}

// Result is a solved temperature field.
type Result struct {
	// Temps[l] is layer l's row-major temperature map in Celsius.
	Temps [][]float64
	// PeakC is the maximum junction temperature over all layers.
	PeakC float64
	// PeakLayer and PeakCell locate the hot spot.
	PeakLayer, PeakCell int
	// MeanC is the average temperature of the topmost power-bearing
	// layer (informational).
	MeanC float64
	// Iterations is the conjugate-gradient iteration count.
	Iterations int
	// Rises is the raw temperature-rise vector (all layers, row-major),
	// usable as the warm-start guess of a subsequent SolveWithGuess.
	Rises []float64
}

// LayerTemps returns the temperature map of the named layer, or nil.
func (r *Result) LayerTemps(s *Stack, name string) []float64 {
	for i, l := range s.Layers {
		if l.Name == name {
			return r.Temps[i]
		}
	}
	return nil
}

// harm is the harmonic mean used to combine the conductivities of two
// adjacent half-cells in series. Two zero-conductivity cells would
// divide 0 by 0; the series conductance of two perfect insulators is
// zero, so return that instead of NaN (Validate rejects non-positive
// conductivities, but fault injection and direct Stack construction can
// still reach this).
func harm(a, b float64) float64 {
	s := a + b
	if s == 0 {
		return 0
	}
	return 2 * a * b / s
}

// Solve computes the steady-state temperature field.
func (s *Stack) Solve() (*Result, error) {
	return s.SolveWithGuess(nil)
}

// SolveWithGuess computes the steady-state temperature field starting the
// conjugate-gradient iteration from a previous solution's temperature
// rises (Result.Rises). The guess only affects the iteration count, never
// the fixed point; callers iterating a leakage-temperature loop converge
// substantially faster by chaining solutions.
func (s *Stack) SolveWithGuess(guess []float64) (*Result, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	g := s.Grid
	nc := g * g
	nl := len(s.Layers)
	q := make([]float64, nl*nc)
	for l := 0; l < nl; l++ {
		if p := s.Layers[l].Power; p != nil {
			base := l * nc
			for idx := 0; idx < nc; idx++ {
				q[base+idx] = p[idx]
			}
		}
	}
	x, iters, err := s.solveSystem(nil, q, guess)
	if err != nil {
		return nil, err
	}

	res := &Result{Temps: make([][]float64, nl), Iterations: iters, Rises: x}
	res.PeakC = math.Inf(-1)
	for l := 0; l < nl; l++ {
		res.Temps[l] = make([]float64, nc)
		base := l * nc
		for idx := 0; idx < nc; idx++ {
			t := s.AmbientC + x[base+idx]
			res.Temps[l][idx] = t
			if t > res.PeakC {
				res.PeakC = t
				res.PeakLayer = l
				res.PeakCell = idx
			}
		}
	}
	// Mean of the topmost power-bearing layer.
	for l := nl - 1; l >= 0; l-- {
		if s.Layers[l].Power == nil {
			continue
		}
		var sum float64
		for _, t := range res.Temps[l] {
			sum += t
		}
		res.MeanC = sum / float64(nc)
		break
	}
	return res, nil
}

// solveSystem assembles the thermal conductance network and solves
// (A + diag(diagExtra)) x = q with Jacobi-preconditioned conjugate
// gradients, where x is the temperature-rise vector. diagExtra may be nil
// (pure steady state) or a per-node addition (the implicit-Euler C/dt
// term of the transient solver).
func (s *Stack) solveSystem(diagExtra, q, guess []float64) ([]float64, int, error) {
	g := s.Grid
	nc := g * g
	nl := len(s.Layers)
	n := nl * nc

	// Precompute conductances.
	// gx[l*nc+idx]: between (i,j) and (i+1,j); gy: between (i,j) and (i,j+1).
	gx := make([]float64, n)
	gy := make([]float64, n)
	// gz[l*nc+idx]: between layer l and l+1 at idx.
	gz := make([]float64, (nl-1)*nc)
	cell := s.CellM
	for l := 0; l < nl; l++ {
		t := s.Layers[l].ThicknessM
		k := s.Layers[l].K
		base := l * nc
		for j := 0; j < g; j++ {
			for i := 0; i < g; i++ {
				idx := j*g + i
				if i+1 < g {
					gx[base+idx] = t * harm(k[idx], k[idx+1])
				}
				if j+1 < g {
					gy[base+idx] = t * harm(k[idx], k[idx+g])
				}
			}
		}
	}
	area := cell * cell
	for l := 0; l+1 < nl; l++ {
		tl, tu := s.Layers[l].ThicknessM, s.Layers[l+1].ThicknessM
		kl, ku := s.Layers[l].K, s.Layers[l+1].K
		base := l * nc
		for idx := 0; idx < nc; idx++ {
			r := tl/(2*kl[idx]) + tu/(2*ku[idx])
			gz[base+idx] = area / r
		}
	}
	// Uniform film: the lumped convection resistance splits evenly over
	// the top layer's cells.
	gamb := 1 / (s.ConvectionKPerW * float64(nc))

	// Diagonal of A (temperatures relative to ambient: the ambient
	// coupling appears only in the diagonal), plus any caller-supplied
	// per-node addition.
	diag := make([]float64, n)
	for l := 0; l < nl; l++ {
		base := l * nc
		for idx := 0; idx < nc; idx++ {
			node := base + idx
			i, j := idx%g, idx/g
			var d float64
			if i+1 < g {
				d += gx[node]
			}
			if i > 0 {
				d += gx[node-1]
			}
			if j+1 < g {
				d += gy[node]
			}
			if j > 0 {
				d += gy[node-g]
			}
			if l+1 < nl {
				d += gz[node]
			}
			if l > 0 {
				d += gz[node-nc]
			}
			if l == nl-1 {
				d += gamb
			}
			if diagExtra != nil {
				d += diagExtra[node]
			}
			diag[node] = d
		}
	}

	// matvec computes y = A*x for the 7-point stencil.
	matvec := func(x, y []float64) {
		for l := 0; l < nl; l++ {
			base := l * nc
			for j := 0; j < g; j++ {
				row := base + j*g
				for i := 0; i < g; i++ {
					node := row + i
					v := diag[node] * x[node]
					if i+1 < g {
						v -= gx[node] * x[node+1]
					}
					if i > 0 {
						v -= gx[node-1] * x[node-1]
					}
					if j+1 < g {
						v -= gy[node] * x[node+g]
					}
					if j > 0 {
						v -= gy[node-g] * x[node-g]
					}
					if l+1 < nl {
						v -= gz[node] * x[node+nc]
					}
					if l > 0 {
						v -= gz[node-nc] * x[node-nc]
					}
					y[node] = v
				}
			}
		}
	}

	// Jacobi-preconditioned conjugate gradients.
	x := make([]float64, n) // temperature rise above ambient
	r := make([]float64, n)
	z := make([]float64, n)
	p := make([]float64, n)
	ap := make([]float64, n)
	var qnorm float64
	for _, v := range q {
		qnorm += v * v
	}
	qnorm = math.Sqrt(qnorm)
	if qnorm > 0 && len(guess) == n {
		copy(x, guess)
		matvec(x, ap)
		for i := range r {
			r[i] = q[i] - ap[i]
		}
	} else {
		copy(r, q)
	}
	iters := 0
	if qnorm > 0 {
		for i := range z {
			z[i] = r[i] / diag[i]
		}
		copy(p, z)
		rz := dot(r, z)
		tol := 3e-8 * qnorm
		if s.Solver.TolScale > 0 {
			tol *= s.Solver.TolScale
		}
		maxIter := 20 * n
		if s.Solver.IterScale > 0 {
			maxIter = int(float64(maxIter) * s.Solver.IterScale)
		}
		// An already-converged warm start (transient steppers at their
		// fixed point reach r exactly zero) must not enter the loop:
		// alpha would be 0/0.
		if norm2(r) < tol {
			return x, 0, nil
		}
		for ; iters < maxIter; iters++ {
			matvec(p, ap)
			alpha := rz / dot(p, ap)
			for i := range x {
				x[i] += alpha * p[i]
				r[i] -= alpha * ap[i]
			}
			if norm2(r) < tol {
				break
			}
			for i := range z {
				z[i] = r[i] / diag[i]
			}
			rzNew := dot(r, z)
			beta := rzNew / rz
			rz = rzNew
			for i := range p {
				p[i] = z[i] + beta*p[i]
			}
		}
		if iters >= maxIter {
			return nil, 0, fmt.Errorf("%w in %d iterations (residual %g, target %g)", ErrNoConvergence, maxIter, norm2(r), tol)
		}
	}
	return x, iters, nil
}

// LumpedEstimate is the zero-dimensional steady-state fallback of the
// degraded-retry ladder: the whole stack collapses to one thermal node
// whose rise above ambient is the total dissipation times the lumped
// convection resistance plus the series vertical conduction resistance
// of the full slab (mean conductivity per layer). The temperature field
// is uniform — no hot-spot structure — so it systematically rounds the
// spatial peak toward the mean; it exists so an ill-conditioned point
// still gets a physically-plausible, finite temperature instead of
// killing a sweep. It cannot fail.
func (s *Stack) LumpedEstimate() *Result {
	g := s.Grid
	nc := g * g
	nl := len(s.Layers)
	total := s.TotalPower()
	slabArea := s.CellM * s.CellM * float64(nc)
	r := s.ConvectionKPerW
	for _, l := range s.Layers {
		var kSum float64
		for _, k := range l.K {
			kSum += k
		}
		if kMean := kSum / float64(nc); kMean > 0 && slabArea > 0 {
			r += l.ThicknessM / (kMean * slabArea)
		}
	}
	rise := total * r
	if math.IsNaN(rise) || math.IsInf(rise, 0) || rise < 0 {
		rise = 0
	}
	res := &Result{
		Temps: make([][]float64, nl),
		PeakC: s.AmbientC + rise,
		MeanC: s.AmbientC + rise,
		Rises: make([]float64, nl*nc),
	}
	for l := 0; l < nl; l++ {
		res.Temps[l] = make([]float64, nc)
		for idx := 0; idx < nc; idx++ {
			res.Temps[l][idx] = s.AmbientC + rise
			res.Rises[l*nc+idx] = rise
		}
	}
	return res
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func norm2(a []float64) float64 {
	return math.Sqrt(dot(a, a))
}
