// Package floorplan implements TESA's mesh estimator and floorplanner:
// given a chiplet footprint and an inter-chiplet spacing (ICS), it derives
// the rows x columns mesh that fills the interposer uniformly, places the
// chiplets, orders them corner-first for the thermally-aware scheduler,
// and rasterizes per-chiplet power into the per-layer power maps the
// thermal model consumes.
package floorplan

import (
	"fmt"
	"math"
	"sort"
)

// Mesh is a rows x columns uniform chiplet grid.
type Mesh struct {
	Rows, Cols int
}

// Count returns the number of chiplets in the mesh.
func (m Mesh) Count() int { return m.Rows * m.Cols }

// String formats the mesh as "RxC".
func (m Mesh) String() string { return fmt.Sprintf("%dx%d", m.Rows, m.Cols) }

// EstimateMesh returns the densest mesh of chiplets of the given width
// and height at exact inter-chiplet spacing that fits the (square)
// interposer, capped at maxChiplets (the paper limits chiplet count to
// the number of DNNs to avoid over-provisioning). Ties in chiplet count
// prefer the squarer mesh, which spreads heat more evenly. Rectangular
// 2-D chiplets naturally produce the paper's one-dimensional 2x1/3x1
// meshes; square 3-D chiplets produce 2x2-style meshes.
func EstimateMesh(interposerMM, widthMM, heightMM, icsMM float64, maxChiplets int) (Mesh, error) {
	if interposerMM <= 0 || widthMM <= 0 || heightMM <= 0 || icsMM < 0 {
		return Mesh{}, fmt.Errorf("floorplan: bad geometry interposer=%g chiplet=%gx%g ics=%g", interposerMM, widthMM, heightMM, icsMM)
	}
	if maxChiplets <= 0 {
		return Mesh{}, fmt.Errorf("floorplan: non-positive chiplet cap %d", maxChiplets)
	}
	// n chiplets along a dimension need n*dim + (n-1)*ics <= interposer.
	maxCols := int((interposerMM + icsMM) / (widthMM + icsMM))
	maxRows := int((interposerMM + icsMM) / (heightMM + icsMM))
	if maxCols < 1 || maxRows < 1 {
		return Mesh{}, fmt.Errorf("floorplan: %.2fx%.2f mm chiplet does not fit %.2f mm interposer", widthMM, heightMM, interposerMM)
	}
	best := Mesh{}
	for r := 1; r <= maxRows; r++ {
		for c := 1; c <= maxCols; c++ {
			if r*c > maxChiplets {
				continue
			}
			if r*c > best.Count() ||
				(r*c == best.Count() && abs(r-c) < abs(best.Rows-best.Cols)) {
				best = Mesh{Rows: r, Cols: c}
			}
		}
	}
	return best, nil
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Rect is an axis-aligned rectangle in interposer coordinates
// (millimetres, origin at the interposer's lower-left corner).
type Rect struct {
	X, Y, W, H float64
}

// Area returns the rectangle's area in mm^2.
func (r Rect) Area() float64 { return r.W * r.H }

// CenterX and CenterY return the rectangle's centroid.
func (r Rect) CenterX() float64 { return r.X + r.W/2 }

// CenterY returns the Y coordinate of the rectangle's centroid.
func (r Rect) CenterY() float64 { return r.Y + r.H/2 }

// Overlap returns the overlap area of two rectangles.
func (r Rect) Overlap(o Rect) float64 {
	w := math.Min(r.X+r.W, o.X+o.W) - math.Max(r.X, o.X)
	h := math.Min(r.Y+r.H, o.Y+o.H) - math.Max(r.Y, o.Y)
	if w <= 0 || h <= 0 {
		return 0
	}
	return w * h
}

// Placement is a concrete MCM floorplan: chiplet footprints on the
// interposer.
type Placement struct {
	InterposerMM      float64
	WidthMM, HeightMM float64 // chiplet footprint dimensions
	ICSmm             float64
	Mesh              Mesh
	Chiplets          []Rect // row-major, length Mesh.Count()
}

// Place builds the uniform, centered placement for the mesh: chiplets are
// separated by exactly the ICS and the whole block is centered on the
// interposer (the paper's dense mesh-like layout with chiplets toward the
// edges).
func Place(interposerMM, widthMM, heightMM, icsMM float64, m Mesh) (*Placement, error) {
	if m.Rows <= 0 || m.Cols <= 0 {
		return nil, fmt.Errorf("floorplan: empty mesh %v", m)
	}
	blockW := float64(m.Cols)*widthMM + float64(m.Cols-1)*icsMM
	blockH := float64(m.Rows)*heightMM + float64(m.Rows-1)*icsMM
	if blockW > interposerMM+1e-9 || blockH > interposerMM+1e-9 {
		return nil, fmt.Errorf("floorplan: mesh %v of %.2fx%.2f mm chiplets at %.2f mm ICS overflows %.2f mm interposer",
			m, widthMM, heightMM, icsMM, interposerMM)
	}
	x0 := (interposerMM - blockW) / 2
	y0 := (interposerMM - blockH) / 2
	p := &Placement{
		InterposerMM: interposerMM,
		WidthMM:      widthMM,
		HeightMM:     heightMM,
		ICSmm:        icsMM,
		Mesh:         m,
		Chiplets:     make([]Rect, 0, m.Count()),
	}
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			p.Chiplets = append(p.Chiplets, Rect{
				X: x0 + float64(c)*(widthMM+icsMM),
				Y: y0 + float64(r)*(heightMM+icsMM),
				W: widthMM, H: heightMM,
			})
		}
	}
	return p, nil
}

// Inset returns a copy of the placement whose chiplet rectangles are
// shrunk by d on every side (used to inject power only into the active
// die area inside a 3-D chiplet's assembly margin). A non-positive d
// returns the placement unchanged.
func (p *Placement) Inset(d float64) *Placement {
	if d <= 0 {
		return p
	}
	q := *p
	q.Chiplets = make([]Rect, len(p.Chiplets))
	for i, r := range p.Chiplets {
		q.Chiplets[i] = Rect{X: r.X + d, Y: r.Y + d, W: r.W - 2*d, H: r.H - 2*d}
	}
	return &q
}

// CornerFirstOrder returns chiplet indices sorted corner-first: the
// paper's scheduler fills corner chiplets, then outer rows/columns, then
// the center, to keep the hottest work at the best-spreading positions.
// Order is by descending distance of the chiplet center from the
// interposer center (deterministic tie-break on index).
func (p *Placement) CornerFirstOrder() []int {
	center := p.InterposerMM / 2
	idx := make([]int, len(p.Chiplets))
	for i := range idx {
		idx[i] = i
	}
	dist := func(i int) float64 {
		dx := p.Chiplets[i].CenterX() - center
		dy := p.Chiplets[i].CenterY() - center
		return dx*dx + dy*dy
	}
	sort.SliceStable(idx, func(a, b int) bool {
		da, db := dist(idx[a]), dist(idx[b])
		if da != db {
			return da > db
		}
		return idx[a] < idx[b]
	})
	return idx
}

// ChipletPower is the dissipation of one chiplet, split by region/tier.
type ChipletPower struct {
	ArrayWatts float64 // systolic array (+ its leakage)
	SRAMWatts  float64 // three SRAM macros (+ leakage, + TSV power in 3-D)
}

// PowerMaps holds per-cell power for the die layers of the thermal stack,
// in row-major grid order.
type PowerMaps struct {
	Grid int
	// Array is the array-tier (3-D) or unified-die (2-D) map.
	Array []float64
	// SRAM is the SRAM-tier map; nil for 2-D MCMs, where SRAM power is
	// folded into Array within each chiplet's SRAM region.
	SRAM []float64
}

// Rasterize distributes per-chiplet power onto a grid x grid map of the
// interposer. In 2-D, each chiplet footprint is split into an array
// region and an SRAM region side by side (proportional to arrayFrac,
// the array's share of the footprint); in 3-D, the two tiers each cover
// the full footprint and get their own map.
func (p *Placement) Rasterize(grid int, powers []ChipletPower, threeD bool, arrayFrac float64) (*PowerMaps, error) {
	if grid <= 0 {
		return nil, fmt.Errorf("floorplan: non-positive grid %d", grid)
	}
	if len(powers) != len(p.Chiplets) {
		return nil, fmt.Errorf("floorplan: %d power entries for %d chiplets", len(powers), len(p.Chiplets))
	}
	if arrayFrac <= 0 || arrayFrac > 1 {
		return nil, fmt.Errorf("floorplan: array fraction %g out of (0,1]", arrayFrac)
	}
	pm := &PowerMaps{Grid: grid, Array: make([]float64, grid*grid)}
	if threeD {
		pm.SRAM = make([]float64, grid*grid)
	}
	for i, rect := range p.Chiplets {
		if threeD {
			p.splat(pm.Array, grid, rect, powers[i].ArrayWatts)
			p.splat(pm.SRAM, grid, rect, powers[i].SRAMWatts)
			continue
		}
		// 2-D: array on the left arrayFrac of the footprint, SRAMs on
		// the right.
		arr := Rect{X: rect.X, Y: rect.Y, W: rect.W * arrayFrac, H: rect.H}
		sr := Rect{X: rect.X + arr.W, Y: rect.Y, W: rect.W - arr.W, H: rect.H}
		p.splat(pm.Array, grid, arr, powers[i].ArrayWatts)
		if sr.W > 0 {
			p.splat(pm.Array, grid, sr, powers[i].SRAMWatts)
		} else {
			p.splat(pm.Array, grid, arr, powers[i].SRAMWatts)
		}
	}
	return pm, nil
}

// Coverage returns, for each cell of a grid x grid discretization of the
// interposer, the fraction of the cell covered by chiplet silicon. The
// thermal model uses it to assign silicon conductivity inside footprints
// and underfill conductivity in the whitespace.
func (p *Placement) Coverage(grid int) []float64 {
	cov := make([]float64, grid*grid)
	cell := p.InterposerMM / float64(grid)
	cellArea := cell * cell
	for _, rect := range p.Chiplets {
		i0 := int(rect.X / cell)
		j0 := int(rect.Y / cell)
		i1 := int(math.Ceil((rect.X + rect.W) / cell))
		j1 := int(math.Ceil((rect.Y + rect.H) / cell))
		for j := max(0, j0); j < min(grid, j1); j++ {
			for i := max(0, i0); i < min(grid, i1); i++ {
				c := Rect{X: float64(i) * cell, Y: float64(j) * cell, W: cell, H: cell}
				cov[j*grid+i] += rect.Overlap(c) / cellArea
			}
		}
	}
	for i, v := range cov {
		if v > 1 {
			cov[i] = 1
		}
	}
	return cov
}

// splat adds `watts` distributed over rect into the map by exact
// cell-overlap areas.
func (p *Placement) splat(m []float64, grid int, rect Rect, watts float64) {
	if watts == 0 || rect.Area() <= 0 {
		return
	}
	cell := p.InterposerMM / float64(grid)
	perArea := watts / rect.Area()
	i0 := int(rect.X / cell)
	j0 := int(rect.Y / cell)
	i1 := int(math.Ceil((rect.X + rect.W) / cell))
	j1 := int(math.Ceil((rect.Y + rect.H) / cell))
	clamp := func(v int) int {
		if v < 0 {
			return 0
		}
		if v > grid {
			return grid
		}
		return v
	}
	i0, i1, j0, j1 = clamp(i0), clamp(i1), clamp(j0), clamp(j1)
	for j := j0; j < j1; j++ {
		for i := i0; i < i1; i++ {
			c := Rect{X: float64(i) * cell, Y: float64(j) * cell, W: cell, H: cell}
			if ov := rect.Overlap(c); ov > 0 {
				m[j*grid+i] += perArea * ov
			}
		}
	}
}
