package floorplan

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEstimateMeshBasic(t *testing.T) {
	cases := []struct {
		side, ics float64
		cap       int
		want      Mesh
	}{
		// 2.8 mm chiplets at 1 mm ICS on 8 mm: 2*2.8+1 = 6.6 fits, 3 does not.
		{2.8, 1.0, 6, Mesh{2, 2}},
		// Tiny chiplets capped at 6: prefer squarer 2x3/3x2 over 1x6.
		{1.0, 0.1, 6, Mesh{2, 3}},
		// Single huge chiplet.
		{7.5, 0.0, 6, Mesh{1, 1}},
		// Cap of 1.
		{1.0, 0.0, 1, Mesh{1, 1}},
	}
	for _, c := range cases {
		m, err := EstimateMesh(8, c.side, c.side, c.ics, c.cap)
		if err != nil {
			t.Fatalf("EstimateMesh(8, %g, %g, %d): %v", c.side, c.ics, c.cap, err)
		}
		if m.Count() != c.want.Count() {
			t.Errorf("EstimateMesh(8, %g, %g, %d) = %v, want count %d", c.side, c.ics, c.cap, m, c.want.Count())
		}
	}
}

func TestEstimateMeshErrors(t *testing.T) {
	if _, err := EstimateMesh(8, 9, 9, 0, 6); err == nil {
		t.Error("oversized chiplet accepted")
	}
	if _, err := EstimateMesh(8, 1, 1, -0.1, 6); err == nil {
		t.Error("negative ICS accepted")
	}
	if _, err := EstimateMesh(8, 1, 1, 0, 0); err == nil {
		t.Error("zero cap accepted")
	}
}

// TestMeshMonotoneInICS: growing the spacing never lets more chiplets fit
// (the paper's core spreading-vs-count trade-off).
func TestMeshMonotoneInICS(t *testing.T) {
	f := func(sideSel, icsA, icsB uint8) bool {
		side := 1.0 + float64(sideSel%30)/10 // 1.0 .. 3.9 mm
		a := float64(icsA%21) * 0.05
		b := float64(icsB%21) * 0.05
		if a > b {
			a, b = b, a
		}
		ma, err1 := EstimateMesh(8, side, side, a, 36)
		mb, err2 := EstimateMesh(8, side, side, b, 36)
		if err1 != nil || err2 != nil {
			return false
		}
		return ma.Count() >= mb.Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestMeshMonotoneInSide: bigger chiplets never fit in greater numbers.
func TestMeshMonotoneInSide(t *testing.T) {
	f := func(a, b uint8) bool {
		sa := 0.5 + float64(a%60)/10
		sb := 0.5 + float64(b%60)/10
		if sa > sb {
			sa, sb = sb, sa
		}
		if sb > 8 {
			return true
		}
		ma, err1 := EstimateMesh(8, sa, sa, 0.5, 36)
		mb, err2 := EstimateMesh(8, sb, sb, 0.5, 36)
		if err1 != nil || err2 != nil {
			return false
		}
		return ma.Count() >= mb.Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPlaceGeometry(t *testing.T) {
	p, err := Place(8, 2.8, 2.8, 1.0, Mesh{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Chiplets) != 4 {
		t.Fatalf("placed %d chiplets, want 4", len(p.Chiplets))
	}
	// Centered: margins equal on both sides.
	left := p.Chiplets[0].X
	right := 8 - (p.Chiplets[1].X + p.Chiplets[1].W)
	if math.Abs(left-right) > 1e-9 {
		t.Errorf("not centered: left margin %g, right margin %g", left, right)
	}
	// Spacing exactly ICS.
	gap := p.Chiplets[1].X - (p.Chiplets[0].X + p.Chiplets[0].W)
	if math.Abs(gap-1.0) > 1e-9 {
		t.Errorf("gap = %g, want 1.0", gap)
	}
	// No overlaps.
	for i := 0; i < len(p.Chiplets); i++ {
		for j := i + 1; j < len(p.Chiplets); j++ {
			if p.Chiplets[i].Overlap(p.Chiplets[j]) > 0 {
				t.Errorf("chiplets %d and %d overlap", i, j)
			}
		}
	}
}

func TestPlaceRejectsOverflow(t *testing.T) {
	if _, err := Place(8, 4.0, 4.0, 1.0, Mesh{2, 2}); err == nil {
		t.Error("overflowing placement accepted")
	}
	if _, err := Place(8, 2, 2, 0, Mesh{}); err == nil {
		t.Error("empty mesh accepted")
	}
}

func TestCornerFirstOrder(t *testing.T) {
	p, err := Place(8, 2.0, 2.0, 0.5, Mesh{3, 2})
	if err != nil {
		t.Fatal(err)
	}
	order := p.CornerFirstOrder()
	if len(order) != 6 {
		t.Fatalf("order length %d, want 6", len(order))
	}
	// Every index exactly once.
	seen := make(map[int]bool)
	for _, i := range order {
		if seen[i] {
			t.Fatalf("index %d repeated", i)
		}
		seen[i] = true
	}
	// In a 3x2 mesh the four corners (indices 0,1,4,5) must precede the
	// two middle chiplets (2,3).
	pos := make(map[int]int)
	for rank, i := range order {
		pos[i] = rank
	}
	for _, corner := range []int{0, 1, 4, 5} {
		for _, mid := range []int{2, 3} {
			if pos[corner] > pos[mid] {
				t.Errorf("corner chiplet %d ranked after middle chiplet %d", corner, mid)
			}
		}
	}
}

// TestRasterizeConservesPower: the total power on the map equals the sum
// of chiplet powers (property over grid sizes and layouts).
func TestRasterizeConservesPower(t *testing.T) {
	f := func(gridSel, meshSel uint8, threeD bool) bool {
		grid := 16 << (gridSel % 3) // 16, 32, 64
		meshes := []Mesh{{1, 1}, {1, 2}, {2, 2}, {2, 3}, {3, 2}, {1, 6}}
		m := meshes[int(meshSel)%len(meshes)]
		side := 1.8
		p, err := Place(8, side, side, 0.25, m)
		if err != nil {
			return true // mesh does not fit this interposer; nothing to check
		}
		powers := make([]ChipletPower, m.Count())
		var want float64
		for i := range powers {
			powers[i] = ChipletPower{ArrayWatts: 1.5 + float64(i)*0.3, SRAMWatts: 0.4}
			want += powers[i].ArrayWatts + powers[i].SRAMWatts
		}
		pm, err := p.Rasterize(grid, powers, threeD, 0.55)
		if err != nil {
			return false
		}
		var got float64
		for _, w := range pm.Array {
			got += w
		}
		if threeD {
			for _, w := range pm.SRAM {
				got += w
			}
		}
		return math.Abs(got-want) < 1e-6*want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRasterizeValidation(t *testing.T) {
	p, err := Place(8, 2, 2, 0.5, Mesh{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Rasterize(0, make([]ChipletPower, 2), false, 0.5); err == nil {
		t.Error("zero grid accepted")
	}
	if _, err := p.Rasterize(32, make([]ChipletPower, 1), false, 0.5); err == nil {
		t.Error("wrong power count accepted")
	}
	if _, err := p.Rasterize(32, make([]ChipletPower, 2), false, 1.5); err == nil {
		t.Error("array fraction > 1 accepted")
	}
}

// TestRasterize3DTierSplit: in 3-D, array power lands on the array map
// and SRAM power on the SRAM map, both conserving totals independently.
func TestRasterize3DTierSplit(t *testing.T) {
	p, err := Place(8, 2.2, 2.2, 0.8, Mesh{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	powers := []ChipletPower{{2, 1}, {2, 1}, {2, 1}, {2, 1}}
	pm, err := p.Rasterize(64, powers, true, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	sum := func(m []float64) float64 {
		var s float64
		for _, v := range m {
			s += v
		}
		return s
	}
	if a := sum(pm.Array); math.Abs(a-8) > 1e-9 {
		t.Errorf("array tier total %g, want 8", a)
	}
	if s := sum(pm.SRAM); math.Abs(s-4) > 1e-9 {
		t.Errorf("SRAM tier total %g, want 4", s)
	}
}

// TestWhitespaceHasNoPower: cells outside every chiplet carry zero power.
func TestWhitespaceHasNoPower(t *testing.T) {
	p, err := Place(8, 2.0, 2.0, 2.0, Mesh{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	pm, err := p.Rasterize(64, []ChipletPower{{1, 1}, {1, 1}, {1, 1}, {1, 1}}, false, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	cell := 8.0 / 64
	for j := 0; j < 64; j++ {
		for i := 0; i < 64; i++ {
			c := Rect{X: float64(i) * cell, Y: float64(j) * cell, W: cell, H: cell}
			inside := false
			for _, ch := range p.Chiplets {
				if ch.Overlap(c) > 0 {
					inside = true
					break
				}
			}
			if !inside && pm.Array[j*64+i] != 0 {
				t.Fatalf("whitespace cell (%d,%d) has power %g", i, j, pm.Array[j*64+i])
			}
		}
	}
}

// TestInsetGeometry: Inset shrinks every rectangle by d per side,
// preserving centers; non-positive d is the identity.
func TestInsetGeometry(t *testing.T) {
	p, err := Place(8, 2.5, 2.5, 0.5, Mesh{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	q := p.Inset(0.2)
	if len(q.Chiplets) != len(p.Chiplets) {
		t.Fatal("Inset changed chiplet count")
	}
	for i := range p.Chiplets {
		a, b := p.Chiplets[i], q.Chiplets[i]
		if math.Abs(b.W-(a.W-0.4)) > 1e-12 || math.Abs(b.H-(a.H-0.4)) > 1e-12 {
			t.Errorf("chiplet %d: inset dims %gx%g from %gx%g", i, b.W, b.H, a.W, a.H)
		}
		if math.Abs(a.CenterX()-b.CenterX()) > 1e-12 || math.Abs(a.CenterY()-b.CenterY()) > 1e-12 {
			t.Errorf("chiplet %d: center moved", i)
		}
	}
	if same := p.Inset(0); same != p {
		t.Error("zero inset did not return the identical placement")
	}
	// The original placement is untouched.
	if math.Abs(p.Chiplets[0].W-2.5) > 1e-12 {
		t.Error("Inset mutated the source placement")
	}
}

// TestCoverageConsistency: coverage sums to the chiplet area divided by
// the cell area (property over grids).
func TestCoverageConsistency(t *testing.T) {
	p, err := Place(8, 3.1, 1.7, 1.3, Mesh{2, 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, grid := range []int{16, 32, 64} {
		cov := p.Coverage(grid)
		cell := 8.0 / float64(grid)
		var sum float64
		for _, c := range cov {
			if c < 0 || c > 1+1e-12 {
				t.Fatalf("grid %d: coverage %f out of [0,1]", grid, c)
			}
			sum += c * cell * cell
		}
		want := 2 * 3.1 * 1.7
		if math.Abs(sum-want) > 1e-6 {
			t.Errorf("grid %d: covered area %f, want %f", grid, sum, want)
		}
	}
}
