package dnn

import "fmt"

// Constructors for the layer kinds. They keep the network definitions
// below terse and guarantee geometric consistency.

// NewConv builds a standard convolution layer.
func NewConv(name string, inH, inW, inC, kh, kw, outC, stride, pad int) Layer {
	return Layer{
		Name: name, Kind: Conv,
		InH: inH, InW: inW, InC: inC,
		KH: kh, KW: kw, OutC: outC, Stride: stride, Pad: pad,
	}
}

// NewDWConv builds a depthwise convolution layer (one filter per channel).
func NewDWConv(name string, inH, inW, inC, kh, kw, stride, pad int) Layer {
	return Layer{
		Name: name, Kind: DWConv,
		InH: inH, InW: inW, InC: inC,
		KH: kh, KW: kw, OutC: inC, Stride: stride, Pad: pad,
	}
}

// NewFC builds a fully connected layer at batch 1 (a 1-row GEMM).
func NewFC(name string, in, out int) Layer {
	return Layer{Name: name, Kind: FC, GemmM: 1, GemmN: out, GemmK: in}
}

// NewGEMM builds an explicit M x N x K matrix multiplication layer.
func NewGEMM(name string, m, n, k int) Layer {
	return Layer{Name: name, Kind: GEMM, GemmM: m, GemmN: n, GemmK: k}
}

// netBuilder tracks the spatial feature-map shape while appending layers,
// so chained definitions stay consistent by construction.
type netBuilder struct {
	n       Network
	h, w, c int
}

func newBuilder(name string, h, w, c int) *netBuilder {
	return &netBuilder{n: Network{Name: name}, h: h, w: w, c: c}
}

func (b *netBuilder) conv(kh, kw, outC, stride, pad int) *netBuilder {
	l := NewConv(fmt.Sprintf("%s.conv%d", b.n.Name, len(b.n.Layers)), b.h, b.w, b.c, kh, kw, outC, stride, pad)
	b.n.Layers = append(b.n.Layers, l)
	b.h, b.w = l.OutDims()
	b.c = outC
	return b
}

func (b *netBuilder) dwconv(kh, kw, stride, pad int) *netBuilder {
	l := NewDWConv(fmt.Sprintf("%s.dw%d", b.n.Name, len(b.n.Layers)), b.h, b.w, b.c, kh, kw, stride, pad)
	b.n.Layers = append(b.n.Layers, l)
	b.h, b.w = l.OutDims()
	return b
}

// pool models a pooling stage: it carries no MACs, so it only updates the
// tracked feature-map shape.
func (b *netBuilder) pool(stride int) *netBuilder {
	b.h /= stride
	b.w /= stride
	return b
}

// upsample models a 2x nearest-neighbour/transposed upsampling stage used
// by encoder-decoder networks; shape bookkeeping only.
func (b *netBuilder) upsample() *netBuilder {
	b.h *= 2
	b.w *= 2
	return b
}

// setChannels overrides the tracked channel count (used after feature-map
// concatenation in U-Net style skip connections).
func (b *netBuilder) setChannels(c int) *netBuilder {
	b.c = c
	return b
}

func (b *netBuilder) fc(out int) *netBuilder {
	in := b.c
	l := NewFC(fmt.Sprintf("%s.fc%d", b.n.Name, len(b.n.Layers)), in, out)
	b.n.Layers = append(b.n.Layers, l)
	b.c = out
	return b
}

// globalPool collapses the spatial dims (bookkeeping only).
func (b *netBuilder) globalPool() *netBuilder {
	b.h, b.w = 1, 1
	return b
}

func (b *netBuilder) build() Network { return b.n }

// ResNet50 returns the standard ResNet-50 topology at 224x224x3 input
// (object recognition in the AR/VR workload). All 53 convolutions and the
// final classifier are modeled; batch-norm and activations carry no MACs.
func ResNet50() Network {
	b := newBuilder("ResNet-50", 224, 224, 3)
	b.conv(7, 7, 64, 2, 3) // conv1
	b.pool(2)              // 3x3 max pool /2 -> 56x56x64

	bottleneck := func(mid, out, stride int, downsample bool) {
		inC := b.c
		inH, inW := b.h, b.w
		b.conv(1, 1, mid, 1, 0)
		b.conv(3, 3, mid, stride, 1)
		b.conv(1, 1, out, 1, 0)
		if downsample {
			// Projection shortcut runs on the block's input shape.
			l := NewConv(fmt.Sprintf("%s.proj%d", b.n.Name, len(b.n.Layers)), inH, inW, inC, 1, 1, out, stride, 0)
			b.n.Layers = append(b.n.Layers, l)
		}
	}

	// Stage 2: 3 blocks, 56x56, 64/256.
	bottleneck(64, 256, 1, true)
	bottleneck(64, 256, 1, false)
	bottleneck(64, 256, 1, false)
	// Stage 3: 4 blocks, down to 28x28, 128/512.
	bottleneck(128, 512, 2, true)
	for i := 0; i < 3; i++ {
		bottleneck(128, 512, 1, false)
	}
	// Stage 4: 6 blocks, down to 14x14, 256/1024.
	bottleneck(256, 1024, 2, true)
	for i := 0; i < 5; i++ {
		bottleneck(256, 1024, 1, false)
	}
	// Stage 5: 3 blocks, down to 7x7, 512/2048.
	bottleneck(512, 2048, 2, true)
	bottleneck(512, 2048, 1, false)
	bottleneck(512, 2048, 1, false)

	b.globalPool()
	b.fc(1000)
	return b.build()
}

// MobileNet returns the MobileNetV1 topology at 224x224x3 input (object
// detection backbone in the AR/VR workload): a stem convolution followed
// by 13 depthwise-separable blocks and a classifier.
func MobileNet() Network {
	b := newBuilder("MobileNet", 224, 224, 3)
	b.conv(3, 3, 32, 2, 1)

	sep := func(outC, stride int) {
		b.dwconv(3, 3, stride, 1)
		b.conv(1, 1, outC, 1, 0)
	}
	sep(64, 1)
	sep(128, 2)
	sep(128, 1)
	sep(256, 2)
	sep(256, 1)
	sep(512, 2)
	for i := 0; i < 5; i++ {
		sep(512, 1)
	}
	sep(1024, 2)
	sep(1024, 1)

	b.globalPool()
	b.fc(1000)
	return b.build()
}

// UNet returns the classic U-Net encoder-decoder topology at a 448x448x3
// input resolution (image segmentation for AR/VR passthrough; close to
// the original 572x572 medical-imaging resolution). Skip connections
// concatenate encoder features into the decoder, doubling the input
// channels of the first convolution at each decoder level. At ~178 GMACs
// this is the workload's heaviest network, which is what makes it
// dominate SCALE-Sim simulation time in the paper.
func UNet() Network {
	b := newBuilder("U-Net", 448, 448, 3)

	encLevel := func(c int) {
		b.conv(3, 3, c, 1, 1)
		b.conv(3, 3, c, 1, 1)
	}
	// Encoder: 64, 128, 256, 512 with 2x pooling between levels.
	encLevel(64)
	b.pool(2)
	encLevel(128)
	b.pool(2)
	encLevel(256)
	b.pool(2)
	encLevel(512)
	b.pool(2)
	// Bottleneck: 1024.
	encLevel(1024)

	decLevel := func(c int) {
		// 2x2 up-convolution halves channels, then concatenation with the
		// skip connection doubles them again before two 3x3 convolutions.
		b.upsample()
		b.conv(2, 2, c, 1, 1)
		b.setChannels(2 * c)
		b.conv(3, 3, c, 1, 1)
		b.conv(3, 3, c, 1, 1)
	}
	decLevel(512)
	decLevel(256)
	decLevel(128)
	decLevel(64)

	// Final 1x1 segmentation head (2 classes).
	b.conv(1, 1, 2, 1, 0)
	return b.build()
}

// HandposeNet returns a representative hand-pose estimation CNN at a
// 368x368x3 input: an OpenPose-style VGG-19 feature extractor followed by
// two heatmap refinement stages predicting 21 keypoint maps (~60 GMACs,
// the scale of published hand-keypoint models). The AR/VR workload of
// Kwon et al. (HPCA'21) includes such a network.
func HandposeNet() Network {
	b := newBuilder("HandposeNet", 368, 368, 3)
	// VGG-19 first ten convolutions (the OpenPose backbone cut).
	b.conv(3, 3, 64, 1, 1)
	b.conv(3, 3, 64, 1, 1)
	b.pool(2)
	b.conv(3, 3, 128, 1, 1)
	b.conv(3, 3, 128, 1, 1)
	b.pool(2)
	b.conv(3, 3, 256, 1, 1)
	b.conv(3, 3, 256, 1, 1)
	b.conv(3, 3, 256, 1, 1)
	b.conv(3, 3, 256, 1, 1)
	b.pool(2)
	b.conv(3, 3, 512, 1, 1)
	b.conv(3, 3, 512, 1, 1)
	// Feature compression then two refinement stages at 46x46.
	b.conv(3, 3, 256, 1, 1)
	b.conv(3, 3, 128, 1, 1)
	for stage := 0; stage < 2; stage++ {
		for i := 0; i < 5; i++ {
			b.conv(7, 7, 128, 1, 3)
		}
		b.conv(1, 1, 128, 1, 0)
		b.conv(1, 1, 21, 1, 0) // 21 keypoint heatmaps
		b.setChannels(128 + 21)
	}
	return b.build()
}

// DNL returns a representative dense monocular depth-estimation network
// at 448x448x3 ("DNL" in the AR/VR workload): a deep convolutional
// encoder with a disentangled non-local context block (modeled as 1x1
// projections plus the affinity and aggregation GEMMs) and a wide
// full-resolution decoder (~140 GMACs, the scale of published dense
// prediction models such as DPT).
func DNL() Network {
	b := newBuilder("DNL", 448, 448, 3)
	// VGG-style encoder at full resolution.
	b.conv(3, 3, 64, 1, 1)
	b.conv(3, 3, 64, 1, 1)
	b.pool(2) // 224
	b.conv(3, 3, 128, 1, 1)
	b.conv(3, 3, 128, 1, 1)
	b.pool(2) // 112
	b.conv(3, 3, 256, 1, 1)
	b.conv(3, 3, 256, 1, 1)
	b.conv(3, 3, 256, 1, 1)
	b.pool(2) // 56
	b.conv(3, 3, 512, 1, 1)
	b.conv(3, 3, 512, 1, 1)
	b.conv(3, 3, 512, 1, 1)
	b.pool(2) // 28
	b.conv(3, 3, 512, 1, 1)

	// Non-local (disentangled) block at 28x28x512: theta/phi/g
	// projections then pairwise affinity (HW x HW x C') and aggregation
	// GEMMs.
	hw := b.h * b.w
	cInner := b.c / 2
	b.conv(1, 1, cInner, 1, 0) // theta
	b.setChannels(512)
	b.conv(1, 1, cInner, 1, 0) // phi
	b.setChannels(512)
	b.conv(1, 1, cInner, 1, 0) // g
	b.n.Layers = append(b.n.Layers,
		NewGEMM("DNL.affinity", hw, hw, cInner),
		NewGEMM("DNL.aggregate", hw, cInner, hw),
	)
	b.setChannels(cInner)
	b.conv(1, 1, 512, 1, 0) // output projection back to 512

	// Decoder: four 2x upsampling fusion stages back to full resolution,
	// two convolutions each, then the depth head.
	dec := func(c int) {
		b.upsample()
		b.conv(3, 3, c, 1, 1)
		b.conv(3, 3, c, 1, 1)
	}
	dec(256)
	dec(128)
	dec(64)
	dec(32)
	b.conv(3, 3, 1, 1, 1) // depth map head
	return b.build()
}

// Transformer returns a 12-layer Transformer encoder (d_model=768,
// d_ff=3072, 12 heads, sequence length 512 — roughly two seconds of
// audio frames) for speech recognition, expressed as the GEMM sequence
// each layer performs at batch 1. A final projection maps to a
// 1000-token output vocabulary.
func Transformer() Network {
	const (
		layers  = 12
		seq     = 512
		dModel  = 768
		dFF     = 3072
		heads   = 12
		dHead   = dModel / heads
		vocab   = 1000
		nLayers = layers
	)
	n := Network{Name: "Transformer"}
	for l := 0; l < nLayers; l++ {
		pre := fmt.Sprintf("Transformer.l%d.", l)
		// Q, K, V projections.
		n.Layers = append(n.Layers,
			NewGEMM(pre+"q", seq, dModel, dModel),
			NewGEMM(pre+"k", seq, dModel, dModel),
			NewGEMM(pre+"v", seq, dModel, dModel),
		)
		// Attention scores and context per head.
		for h := 0; h < heads; h++ {
			n.Layers = append(n.Layers,
				NewGEMM(fmt.Sprintf("%sscore.h%d", pre, h), seq, seq, dHead),
				NewGEMM(fmt.Sprintf("%sctx.h%d", pre, h), seq, dHead, seq),
			)
		}
		// Output projection and feed-forward network.
		n.Layers = append(n.Layers,
			NewGEMM(pre+"proj", seq, dModel, dModel),
			NewGEMM(pre+"ff1", seq, dFF, dModel),
			NewGEMM(pre+"ff2", seq, dModel, dFF),
		)
	}
	n.Layers = append(n.Layers, NewGEMM("Transformer.head", seq, vocab, dModel))
	return n
}

// ARVRWorkload returns the paper's six-DNN AR/VR workload: handpose
// detection, image segmentation, object detection, object recognition,
// depth estimation, and speech recognition, each an independent subtask.
func ARVRWorkload() Workload {
	return Workload{
		Name: "AR/VR",
		Networks: []Network{
			HandposeNet(),
			UNet(),
			MobileNet(),
			ResNet50(),
			DNL(),
			Transformer(),
		},
	}
}
