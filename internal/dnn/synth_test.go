package dnn

import (
	"math/rand"
	"testing"
)

// TestSynthNetworksAlwaysValid: every generated network passes
// validation and has positive MACs (generator-level fuzz).
func TestSynthNetworksAlwaysValid(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	p := DefaultSynthParams()
	for i := 0; i < 300; i++ {
		n := SynthNetwork("fuzz", rng, p)
		if err := n.Validate(); err != nil {
			t.Fatalf("iteration %d: invalid network: %v", i, err)
		}
		if n.MACs() <= 0 {
			t.Fatalf("iteration %d: non-positive MACs", i)
		}
		if n.WeightBytes() <= 0 {
			t.Fatalf("iteration %d: non-positive weights", i)
		}
	}
}

// TestSynthWorkloadShape: workloads have distinct names and validate.
func TestSynthWorkloadShape(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	w := SynthWorkload(rng, 4, DefaultSynthParams())
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(w.Networks) != 4 {
		t.Fatalf("networks = %d, want 4", len(w.Networks))
	}
}

// TestSynthZeroParamsDefaulted: the zero SynthParams still generates
// valid networks.
func TestSynthZeroParamsDefaulted(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := SynthNetwork("z", rng, SynthParams{})
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestSynthDeterministic: same seed, same topology.
func TestSynthDeterministic(t *testing.T) {
	a := SynthNetwork("d", rand.New(rand.NewSource(9)), DefaultSynthParams())
	b := SynthNetwork("d", rand.New(rand.NewSource(9)), DefaultSynthParams())
	if a.MACs() != b.MACs() || len(a.Layers) != len(b.Layers) {
		t.Error("same seed produced different networks")
	}
}
