package dnn

import (
	"encoding/json"
	"fmt"
	"io"
)

// This file implements the serialized workload format: TESA's first input
// is a "multi-DNN workload (layer-wise description of each DNN with input
// size, #weights, etc.)". The JSON schema mirrors the Layer IR directly
// so users can describe their own workloads without writing Go:
//
//	{
//	  "name": "my-workload",
//	  "networks": [
//	    {
//	      "name": "tiny-cnn",
//	      "layers": [
//	        {"kind": "conv", "in": [32, 32, 3], "kernel": [3, 3],
//	         "filters": 16, "stride": 1, "pad": 1},
//	        {"kind": "fc", "inFeatures": 1024, "outFeatures": 10}
//	      ]
//	    }
//	  ]
//	}
//
// GEMM layers use {"kind": "gemm", "m":, "n":, "k":}; depthwise layers
// use {"kind": "dwconv"} with the conv fields minus "filters".

// jsonWorkload is the on-disk schema.
type jsonWorkload struct {
	Name     string        `json:"name"`
	Networks []jsonNetwork `json:"networks"`
}

type jsonNetwork struct {
	Name   string      `json:"name"`
	Layers []jsonLayer `json:"layers"`
}

type jsonLayer struct {
	Name   string `json:"name,omitempty"`
	Kind   string `json:"kind"`
	In     []int  `json:"in,omitempty"`     // [H, W, C]
	Kernel []int  `json:"kernel,omitempty"` // [KH, KW]
	// Filters is the output-channel count of a conv layer.
	Filters int `json:"filters,omitempty"`
	Stride  int `json:"stride,omitempty"`
	Pad     int `json:"pad,omitempty"`
	// FC fields.
	InFeatures  int `json:"inFeatures,omitempty"`
	OutFeatures int `json:"outFeatures,omitempty"`
	// GEMM fields.
	M int `json:"m,omitempty"`
	N int `json:"n,omitempty"`
	K int `json:"k,omitempty"`
}

// MarshalWorkload serializes a workload to the JSON schema.
func MarshalWorkload(w *Workload) ([]byte, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	jw := jsonWorkload{Name: w.Name}
	for _, n := range w.Networks {
		jn := jsonNetwork{Name: n.Name}
		for _, l := range n.Layers {
			jl := jsonLayer{Name: l.Name, Kind: l.Kind.String()}
			switch l.Kind {
			case Conv, DWConv:
				jl.In = []int{l.InH, l.InW, l.InC}
				jl.Kernel = []int{l.KH, l.KW}
				jl.Stride = l.Stride
				jl.Pad = l.Pad
				if l.Kind == Conv {
					jl.Filters = l.OutC
				}
			case FC:
				jl.InFeatures = l.GemmK
				jl.OutFeatures = l.GemmN
			case GEMM:
				jl.M, jl.N, jl.K = l.GemmM, l.GemmN, l.GemmK
			}
			jn.Layers = append(jn.Layers, jl)
		}
		jw.Networks = append(jw.Networks, jn)
	}
	return json.MarshalIndent(jw, "", "  ")
}

// UnmarshalWorkload parses and validates a workload from the JSON schema.
func UnmarshalWorkload(data []byte) (Workload, error) {
	var jw jsonWorkload
	if err := json.Unmarshal(data, &jw); err != nil {
		return Workload{}, fmt.Errorf("dnn: parsing workload: %w", err)
	}
	w := Workload{Name: jw.Name}
	for ni, jn := range jw.Networks {
		n := Network{Name: jn.Name}
		for li, jl := range jn.Layers {
			l, err := jl.toLayer()
			if err != nil {
				return Workload{}, fmt.Errorf("dnn: network %d (%s) layer %d: %w", ni, jn.Name, li, err)
			}
			if l.Name == "" {
				l.Name = fmt.Sprintf("%s.l%d", jn.Name, li)
			}
			n.Layers = append(n.Layers, l)
		}
		w.Networks = append(w.Networks, n)
	}
	if err := w.Validate(); err != nil {
		return Workload{}, err
	}
	return w, nil
}

// ReadWorkload parses a workload from a reader.
func ReadWorkload(r io.Reader) (Workload, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return Workload{}, fmt.Errorf("dnn: reading workload: %w", err)
	}
	return UnmarshalWorkload(data)
}

func (jl jsonLayer) toLayer() (Layer, error) {
	switch jl.Kind {
	case "conv", "dwconv":
		if len(jl.In) != 3 {
			return Layer{}, fmt.Errorf("%s layer needs in: [H, W, C], got %v", jl.Kind, jl.In)
		}
		if len(jl.Kernel) != 2 {
			return Layer{}, fmt.Errorf("%s layer needs kernel: [KH, KW], got %v", jl.Kind, jl.Kernel)
		}
		stride := jl.Stride
		if stride == 0 {
			stride = 1
		}
		if jl.Kind == "dwconv" {
			if jl.Filters != 0 {
				return Layer{}, fmt.Errorf("dwconv layer must not set filters (one filter per channel)")
			}
			return NewDWConv(jl.Name, jl.In[0], jl.In[1], jl.In[2], jl.Kernel[0], jl.Kernel[1], stride, jl.Pad), nil
		}
		if jl.Filters <= 0 {
			return Layer{}, fmt.Errorf("conv layer needs positive filters, got %d", jl.Filters)
		}
		return NewConv(jl.Name, jl.In[0], jl.In[1], jl.In[2], jl.Kernel[0], jl.Kernel[1], jl.Filters, stride, jl.Pad), nil
	case "fc":
		if jl.InFeatures <= 0 || jl.OutFeatures <= 0 {
			return Layer{}, fmt.Errorf("fc layer needs positive inFeatures/outFeatures, got %d/%d", jl.InFeatures, jl.OutFeatures)
		}
		return NewFC(jl.Name, jl.InFeatures, jl.OutFeatures), nil
	case "gemm":
		if jl.M <= 0 || jl.N <= 0 || jl.K <= 0 {
			return Layer{}, fmt.Errorf("gemm layer needs positive m/n/k, got %d/%d/%d", jl.M, jl.N, jl.K)
		}
		return NewGEMM(jl.Name, jl.M, jl.N, jl.K), nil
	default:
		return Layer{}, fmt.Errorf("unknown layer kind %q (want conv, dwconv, fc, or gemm)", jl.Kind)
	}
}
