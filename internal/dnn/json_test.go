package dnn

import (
	"strings"
	"testing"
)

// TestRoundTripARVR: the full AR/VR workload survives a
// marshal/unmarshal round trip exactly.
func TestRoundTripARVR(t *testing.T) {
	w := ARVRWorkload()
	data, err := MarshalWorkload(&w)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalWorkload(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != w.Name || len(got.Networks) != len(w.Networks) {
		t.Fatalf("shape mismatch: %s/%d vs %s/%d", got.Name, len(got.Networks), w.Name, len(w.Networks))
	}
	for i := range w.Networks {
		a, b := &w.Networks[i], &got.Networks[i]
		if a.Name != b.Name || len(a.Layers) != len(b.Layers) {
			t.Fatalf("network %d: %s/%d vs %s/%d", i, b.Name, len(b.Layers), a.Name, len(a.Layers))
		}
		if a.MACs() != b.MACs() {
			t.Errorf("%s: MACs %d != %d after round trip", a.Name, b.MACs(), a.MACs())
		}
		if a.WeightBytes() != b.WeightBytes() {
			t.Errorf("%s: weights %d != %d after round trip", a.Name, b.WeightBytes(), a.WeightBytes())
		}
	}
}

func TestUnmarshalMinimal(t *testing.T) {
	src := `{
	  "name": "tiny",
	  "networks": [{
	    "name": "net",
	    "layers": [
	      {"kind": "conv", "in": [32, 32, 3], "kernel": [3, 3], "filters": 16, "stride": 1, "pad": 1},
	      {"kind": "dwconv", "in": [32, 32, 16], "kernel": [3, 3], "pad": 1},
	      {"kind": "fc", "inFeatures": 256, "outFeatures": 10},
	      {"kind": "gemm", "m": 8, "n": 8, "k": 8}
	    ]
	  }]
	}`
	w, err := UnmarshalWorkload([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	n := &w.Networks[0]
	if len(n.Layers) != 4 {
		t.Fatalf("layers = %d, want 4", len(n.Layers))
	}
	wantKinds := []Kind{Conv, DWConv, FC, GEMM}
	for i, k := range wantKinds {
		if n.Layers[i].Kind != k {
			t.Errorf("layer %d kind %v, want %v", i, n.Layers[i].Kind, k)
		}
	}
	// Default stride applied.
	if n.Layers[1].Stride != 1 {
		t.Errorf("dwconv default stride = %d, want 1", n.Layers[1].Stride)
	}
	// Auto-generated names.
	if n.Layers[0].Name != "net.l0" {
		t.Errorf("auto name = %q, want net.l0", n.Layers[0].Name)
	}
}

func TestUnmarshalRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"syntax":        `{"name": }`,
		"unknown kind":  `{"name":"x","networks":[{"name":"n","layers":[{"kind":"pool"}]}]}`,
		"conv no in":    `{"name":"x","networks":[{"name":"n","layers":[{"kind":"conv","kernel":[3,3],"filters":4}]}]}`,
		"conv no kern":  `{"name":"x","networks":[{"name":"n","layers":[{"kind":"conv","in":[8,8,3],"filters":4}]}]}`,
		"conv no filt":  `{"name":"x","networks":[{"name":"n","layers":[{"kind":"conv","in":[8,8,3],"kernel":[3,3]}]}]}`,
		"dw w/ filters": `{"name":"x","networks":[{"name":"n","layers":[{"kind":"dwconv","in":[8,8,3],"kernel":[3,3],"filters":4}]}]}`,
		"fc bad":        `{"name":"x","networks":[{"name":"n","layers":[{"kind":"fc","inFeatures":-1,"outFeatures":10}]}]}`,
		"gemm bad":      `{"name":"x","networks":[{"name":"n","layers":[{"kind":"gemm","m":1,"n":0,"k":1}]}]}`,
		"empty":         `{"name":"x","networks":[]}`,
		"dupe names":    `{"name":"x","networks":[{"name":"n","layers":[{"kind":"gemm","m":1,"n":1,"k":1}]},{"name":"n","layers":[{"kind":"gemm","m":1,"n":1,"k":1}]}]}`,
	}
	for label, src := range cases {
		if _, err := UnmarshalWorkload([]byte(src)); err == nil {
			t.Errorf("%s: accepted", label)
		}
	}
}

func TestReadWorkload(t *testing.T) {
	w := Workload{Name: "r", Networks: []Network{MobileNet()}}
	data, err := MarshalWorkload(&w)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadWorkload(strings.NewReader(string(data)))
	if err != nil {
		t.Fatal(err)
	}
	if got.Networks[0].MACs() != w.Networks[0].MACs() {
		t.Error("MACs changed through ReadWorkload")
	}
}

func TestMarshalRejectsInvalid(t *testing.T) {
	bad := Workload{Name: "bad"}
	if _, err := MarshalWorkload(&bad); err == nil {
		t.Error("empty workload marshaled")
	}
}
