// Package dnn defines the layer-level intermediate representation of deep
// neural networks used by TESA, and the six-DNN AR/VR workload the paper
// evaluates (HandposeNet, U-Net, MobileNet, ResNet-50, DNL, Transformer).
//
// Each network is described layer by layer, exactly the granularity the
// SCALE-Sim-equivalent performance model (internal/systolic) consumes.
// All tensors are 8-bit integer (one byte per element) at batch size 1,
// matching the paper's AR/VR inference assumptions.
package dnn

import "fmt"

// Kind identifies how a layer maps onto the systolic array.
type Kind int

const (
	// Conv is a standard 2-D convolution, lowered to a GEMM via im2col:
	// rows = output pixels, cols = filters, depth = R*S*C.
	Conv Kind = iota
	// DWConv is a depthwise convolution: each input channel is convolved
	// with its own single filter. It lowers to C independent single-column
	// GEMMs and therefore utilizes a systolic array poorly, as on real
	// hardware.
	DWConv
	// FC is a fully connected layer at batch 1: a single-row GEMM.
	FC
	// GEMM is an explicit matrix multiply (used by the Transformer):
	// an M-row by N-col output with inner depth K.
	GEMM
)

// String returns the lowercase layer-kind name.
func (k Kind) String() string {
	switch k {
	case Conv:
		return "conv"
	case DWConv:
		return "dwconv"
	case FC:
		return "fc"
	case GEMM:
		return "gemm"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Layer is one inference layer. Only the fields relevant to the layer's
// Kind are meaningful; the constructors below populate them consistently.
type Layer struct {
	Name string
	Kind Kind

	// Convolution / depthwise parameters.
	InH, InW, InC int // input feature-map height, width, channels
	KH, KW        int // kernel (filter) height and width
	OutC          int // number of filters / output channels
	Stride        int // spatial stride (same in both dims)
	Pad           int // spatial zero padding (same in both dims)

	// Explicit GEMM parameters (Kind == GEMM). For FC layers the
	// constructors express the layer as GemmM=1, GemmK=inputs,
	// GemmN=outputs.
	GemmM, GemmN, GemmK int
}

// Validate reports an error if the layer's geometry is inconsistent.
func (l *Layer) Validate() error {
	switch l.Kind {
	case Conv, DWConv:
		if l.InH <= 0 || l.InW <= 0 || l.InC <= 0 {
			return fmt.Errorf("layer %q: non-positive input dims %dx%dx%d", l.Name, l.InH, l.InW, l.InC)
		}
		if l.KH <= 0 || l.KW <= 0 {
			return fmt.Errorf("layer %q: non-positive kernel %dx%d", l.Name, l.KH, l.KW)
		}
		if l.Stride <= 0 {
			return fmt.Errorf("layer %q: non-positive stride %d", l.Name, l.Stride)
		}
		if l.Kind == Conv && l.OutC <= 0 {
			return fmt.Errorf("layer %q: non-positive output channels %d", l.Name, l.OutC)
		}
		if oh, ow := l.OutDims(); oh <= 0 || ow <= 0 {
			return fmt.Errorf("layer %q: kernel %dx%d larger than padded input %dx%d", l.Name, l.KH, l.KW, l.InH+2*l.Pad, l.InW+2*l.Pad)
		}
	case FC, GEMM:
		if l.GemmM <= 0 || l.GemmN <= 0 || l.GemmK <= 0 {
			return fmt.Errorf("layer %q: non-positive GEMM dims %dx%dx%d", l.Name, l.GemmM, l.GemmN, l.GemmK)
		}
	default:
		return fmt.Errorf("layer %q: unknown kind %d", l.Name, int(l.Kind))
	}
	return nil
}

// OutDims returns the output feature-map height and width of a
// convolutional layer.
func (l *Layer) OutDims() (h, w int) {
	h = (l.InH+2*l.Pad-l.KH)/l.Stride + 1
	w = (l.InW+2*l.Pad-l.KW)/l.Stride + 1
	return h, w
}

// MACs returns the number of multiply-accumulate operations the layer
// performs at batch size 1.
func (l *Layer) MACs() int64 {
	switch l.Kind {
	case Conv:
		oh, ow := l.OutDims()
		return int64(oh) * int64(ow) * int64(l.OutC) * int64(l.KH) * int64(l.KW) * int64(l.InC)
	case DWConv:
		oh, ow := l.OutDims()
		return int64(oh) * int64(ow) * int64(l.InC) * int64(l.KH) * int64(l.KW)
	case FC, GEMM:
		return int64(l.GemmM) * int64(l.GemmN) * int64(l.GemmK)
	default:
		return 0
	}
}

// IfmapBytes returns the unique input-activation footprint in bytes
// (int8 data, one byte per element).
func (l *Layer) IfmapBytes() int64 {
	switch l.Kind {
	case Conv, DWConv:
		return int64(l.InH) * int64(l.InW) * int64(l.InC)
	case FC, GEMM:
		return int64(l.GemmM) * int64(l.GemmK)
	default:
		return 0
	}
}

// FilterBytes returns the weight footprint in bytes.
func (l *Layer) FilterBytes() int64 {
	switch l.Kind {
	case Conv:
		return int64(l.KH) * int64(l.KW) * int64(l.InC) * int64(l.OutC)
	case DWConv:
		return int64(l.KH) * int64(l.KW) * int64(l.InC)
	case FC, GEMM:
		return int64(l.GemmK) * int64(l.GemmN)
	default:
		return 0
	}
}

// OfmapBytes returns the output-activation footprint in bytes.
func (l *Layer) OfmapBytes() int64 {
	switch l.Kind {
	case Conv:
		oh, ow := l.OutDims()
		return int64(oh) * int64(ow) * int64(l.OutC)
	case DWConv:
		oh, ow := l.OutDims()
		return int64(oh) * int64(ow) * int64(l.InC)
	case FC, GEMM:
		return int64(l.GemmM) * int64(l.GemmN)
	default:
		return 0
	}
}

// Network is a named, ordered list of layers executed sequentially.
type Network struct {
	Name   string
	Layers []Layer
}

// Validate checks every layer of the network.
func (n *Network) Validate() error {
	if n.Name == "" {
		return fmt.Errorf("network has empty name")
	}
	if len(n.Layers) == 0 {
		return fmt.Errorf("network %q has no layers", n.Name)
	}
	for i := range n.Layers {
		if err := n.Layers[i].Validate(); err != nil {
			return fmt.Errorf("network %q: layer %d: %w", n.Name, i, err)
		}
	}
	return nil
}

// MACs returns the total multiply-accumulate count of the network.
func (n *Network) MACs() int64 {
	var total int64
	for i := range n.Layers {
		total += n.Layers[i].MACs()
	}
	return total
}

// WeightBytes returns the total weight footprint of the network in bytes.
func (n *Network) WeightBytes() int64 {
	var total int64
	for i := range n.Layers {
		total += n.Layers[i].FilterBytes()
	}
	return total
}

// Workload is a multi-DNN workload: a set of independent networks that
// must all complete within one frame period. The networks perform
// independent subtasks, so there is no inter-DNN communication.
type Workload struct {
	Name     string
	Networks []Network
}

// Validate checks every network in the workload.
func (w *Workload) Validate() error {
	if len(w.Networks) == 0 {
		return fmt.Errorf("workload %q has no networks", w.Name)
	}
	seen := make(map[string]bool, len(w.Networks))
	for i := range w.Networks {
		if err := w.Networks[i].Validate(); err != nil {
			return fmt.Errorf("workload %q: %w", w.Name, err)
		}
		if seen[w.Networks[i].Name] {
			return fmt.Errorf("workload %q: duplicate network name %q", w.Name, w.Networks[i].Name)
		}
		seen[w.Networks[i].Name] = true
	}
	return nil
}
