package dnn

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{Conv: "conv", DWConv: "dwconv", FC: "fc", GEMM: "gemm", Kind(99): "kind(99)"}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestConvOutDims(t *testing.T) {
	cases := []struct {
		l            Layer
		wantH, wantW int
	}{
		{NewConv("a", 224, 224, 3, 7, 7, 64, 2, 3), 112, 112},
		{NewConv("b", 56, 56, 64, 1, 1, 256, 1, 0), 56, 56},
		{NewConv("c", 56, 56, 64, 3, 3, 128, 2, 1), 28, 28},
		{NewDWConv("d", 112, 112, 32, 3, 3, 1, 1), 112, 112},
		{NewDWConv("e", 112, 112, 64, 3, 3, 2, 1), 56, 56},
	}
	for _, c := range cases {
		h, w := c.l.OutDims()
		if h != c.wantH || w != c.wantW {
			t.Errorf("%s: OutDims() = (%d,%d), want (%d,%d)", c.l.Name, h, w, c.wantH, c.wantW)
		}
	}
}

func TestLayerMACs(t *testing.T) {
	// 1x1 conv: 56*56*256*64 MACs.
	l := NewConv("x", 56, 56, 64, 1, 1, 256, 1, 0)
	if got, want := l.MACs(), int64(56*56*256*64); got != want {
		t.Errorf("conv MACs = %d, want %d", got, want)
	}
	// FC 1024 -> 1000.
	fc := NewFC("f", 1024, 1000)
	if got, want := fc.MACs(), int64(1024*1000); got != want {
		t.Errorf("fc MACs = %d, want %d", got, want)
	}
	// Depthwise 3x3 on 112x112x32 stride 1: 112*112*32*9.
	dw := NewDWConv("d", 112, 112, 32, 3, 3, 1, 1)
	if got, want := dw.MACs(), int64(112*112*32*9); got != want {
		t.Errorf("dw MACs = %d, want %d", got, want)
	}
	// GEMM.
	g := NewGEMM("g", 128, 512, 512)
	if got, want := g.MACs(), int64(128*512*512); got != want {
		t.Errorf("gemm MACs = %d, want %d", got, want)
	}
}

func TestLayerBytes(t *testing.T) {
	l := NewConv("x", 56, 56, 64, 3, 3, 128, 2, 1)
	if got, want := l.IfmapBytes(), int64(56*56*64); got != want {
		t.Errorf("IfmapBytes = %d, want %d", got, want)
	}
	if got, want := l.FilterBytes(), int64(3*3*64*128); got != want {
		t.Errorf("FilterBytes = %d, want %d", got, want)
	}
	if got, want := l.OfmapBytes(), int64(28*28*128); got != want {
		t.Errorf("OfmapBytes = %d, want %d", got, want)
	}
}

func TestLayerValidate(t *testing.T) {
	good := NewConv("ok", 8, 8, 3, 3, 3, 16, 1, 1)
	if err := good.Validate(); err != nil {
		t.Errorf("valid layer rejected: %v", err)
	}
	bad := []Layer{
		NewConv("neg", -1, 8, 3, 3, 3, 16, 1, 1),
		NewConv("kernel", 2, 2, 3, 5, 5, 16, 1, 0),
		NewConv("stride", 8, 8, 3, 3, 3, 16, 0, 1),
		NewFC("fc", 0, 10),
		{Name: "unknown", Kind: Kind(42)},
	}
	for _, l := range bad {
		if err := l.Validate(); err == nil {
			t.Errorf("layer %q: invalid geometry accepted", l.Name)
		}
	}
}

func TestAllNetworksValidate(t *testing.T) {
	w := ARVRWorkload()
	if err := w.Validate(); err != nil {
		t.Fatalf("AR/VR workload invalid: %v", err)
	}
	if len(w.Networks) != 6 {
		t.Fatalf("AR/VR workload has %d networks, want 6", len(w.Networks))
	}
}

func TestWorkloadValidateRejectsDuplicates(t *testing.T) {
	w := Workload{Name: "dup", Networks: []Network{MobileNet(), MobileNet()}}
	if err := w.Validate(); err == nil {
		t.Error("duplicate network names accepted")
	}
	empty := Workload{Name: "empty"}
	if err := empty.Validate(); err == nil {
		t.Error("empty workload accepted")
	}
}

// TestResNet50Shape checks the canonical published numbers: roughly
// 3.8 GMACs and 25.5 M weights at 224x224.
func TestResNet50Shape(t *testing.T) {
	n := ResNet50()
	macs := float64(n.MACs())
	if macs < 3.5e9 || macs > 4.3e9 {
		t.Errorf("ResNet-50 MACs = %.3g, want ~3.8e9", macs)
	}
	wb := float64(n.WeightBytes())
	if wb < 2.2e7 || wb > 2.9e7 {
		t.Errorf("ResNet-50 weight bytes = %.3g, want ~2.55e7", wb)
	}
	// 53 convolutions + 1 FC.
	convs := 0
	for _, l := range n.Layers {
		if l.Kind == Conv {
			convs++
		}
	}
	if convs != 53 {
		t.Errorf("ResNet-50 has %d convs, want 53", convs)
	}
}

// TestMobileNetShape checks against the published ~569 MMACs / ~4.2 M
// parameter figures for MobileNetV1.
func TestMobileNetShape(t *testing.T) {
	n := MobileNet()
	macs := float64(n.MACs())
	if macs < 5.2e8 || macs > 6.2e8 {
		t.Errorf("MobileNet MACs = %.3g, want ~5.7e8", macs)
	}
	wb := float64(n.WeightBytes())
	if wb < 3.5e6 || wb > 4.8e6 {
		t.Errorf("MobileNet weight bytes = %.3g, want ~4.2e6", wb)
	}
	// 13 depthwise blocks.
	dw := 0
	for _, l := range n.Layers {
		if l.Kind == DWConv {
			dw++
		}
	}
	if dw != 13 {
		t.Errorf("MobileNet has %d depthwise layers, want 13", dw)
	}
}

// TestUNetIsHeaviest confirms the paper's observation that U-Net dominates
// simulation time (it is by far the largest MAC count in the workload).
func TestUNetIsHeaviest(t *testing.T) {
	w := ARVRWorkload()
	var unet, maxOther int64
	for _, n := range w.Networks {
		if n.Name == "U-Net" {
			unet = n.MACs()
		} else if m := n.MACs(); m > maxOther {
			maxOther = m
		}
	}
	if unet <= maxOther {
		t.Errorf("U-Net MACs = %d not the heaviest (max other = %d)", unet, maxOther)
	}
}

func TestTransformerShape(t *testing.T) {
	n := Transformer()
	// 12 layers x (3 proj + 2x12-head attention + proj + 2 ffn) + head.
	if got, want := len(n.Layers), 12*(3+24+3)+1; got != want {
		t.Errorf("Transformer layers = %d, want %d", got, want)
	}
	for _, l := range n.Layers {
		if l.Kind != GEMM {
			t.Errorf("Transformer layer %q has kind %v, want gemm", l.Name, l.Kind)
		}
	}
}

// TestMACsNonNegative is a property test: any layer the builders can
// produce reports non-negative MACs and byte counts.
func TestMACsNonNegative(t *testing.T) {
	f := func(inH, inW, inC, k, outC, stride uint8) bool {
		h, w := int(inH%64)+1, int(inW%64)+1
		c := int(inC%32) + 1
		kk := int(k%3)*2 + 1 // 1, 3, 5
		oc := int(outC%64) + 1
		s := int(stride%2) + 1
		l := NewConv("q", h, w, c, kk, kk, oc, s, kk/2)
		if err := l.Validate(); err != nil {
			return true // geometrically impossible configs are rejected, fine
		}
		return l.MACs() >= 0 && l.IfmapBytes() > 0 && l.FilterBytes() > 0 && l.OfmapBytes() > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestMACsScaleWithFilters: doubling the filter count doubles conv MACs.
func TestMACsScaleWithFilters(t *testing.T) {
	f := func(outC uint8) bool {
		oc := int(outC%100) + 1
		a := NewConv("a", 28, 28, 64, 3, 3, oc, 1, 1)
		b := NewConv("b", 28, 28, 64, 3, 3, 2*oc, 1, 1)
		return b.MACs() == 2*a.MACs()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWorkloadTotalMACs(t *testing.T) {
	w := ARVRWorkload()
	var total float64
	for _, n := range w.Networks {
		m := n.MACs()
		if m <= 0 {
			t.Errorf("%s: non-positive MACs %d", n.Name, m)
		}
		total += float64(m)
	}
	// The six-network workload lands in the hundreds of GMACs —
	// dominated by U-Net segmentation at about 45%%.
	if total < 1e11 || total > 1e12 {
		t.Errorf("workload total MACs = %.3g, expected 1e11..1e12", total)
	}
	var unet float64
	for _, n := range w.Networks {
		if n.Name == "U-Net" {
			unet = float64(n.MACs())
		}
	}
	if share := unet / total; share < 0.3 || share > 0.6 {
		t.Errorf("U-Net share = %.0f%%, expected 30..60%% (drives the mesh sizing)", share*100)
	}
	if math.IsNaN(total) {
		t.Error("total is NaN")
	}
}
