package dnn

import (
	"fmt"
	"math/rand"
)

// SynthParams bounds the synthetic network generator. Zero-valued fields
// get sensible defaults from DefaultSynthParams.
type SynthParams struct {
	MinLayers, MaxLayers int
	// MaxInputHW bounds the input resolution (power-of-two-ish sizes are
	// drawn up to this).
	MaxInputHW int
	// MaxChannels bounds channel counts.
	MaxChannels int
	// FCHead appends a classifier head when true.
	FCHead bool
}

// DefaultSynthParams returns edge-inference-scale bounds.
func DefaultSynthParams() SynthParams {
	return SynthParams{MinLayers: 3, MaxLayers: 24, MaxInputHW: 256, MaxChannels: 512, FCHead: true}
}

// SynthNetwork generates a random but geometrically valid CNN: a chain of
// convolutions, depthwise convolutions, and pooling stages whose shapes
// are tracked so every layer is consistent with its predecessor. It is
// the fuzzing substrate for pipeline-level property tests: any generated
// network must survive the full TESA evaluation.
func SynthNetwork(name string, rng *rand.Rand, p SynthParams) Network {
	if p.MinLayers <= 0 {
		p.MinLayers = 3
	}
	if p.MaxLayers < p.MinLayers {
		p.MaxLayers = p.MinLayers + 8
	}
	if p.MaxInputHW < 16 {
		p.MaxInputHW = 256
	}
	if p.MaxChannels < 8 {
		p.MaxChannels = 512
	}

	sizes := []int{32, 64, 96, 128, 160, 224, 256, 320}
	hw := sizes[rng.Intn(len(sizes))]
	for hw > p.MaxInputHW {
		hw = sizes[rng.Intn(len(sizes))]
	}
	b := newBuilder(name, hw, hw, 3)
	layers := p.MinLayers + rng.Intn(p.MaxLayers-p.MinLayers+1)
	ch := 8 << rng.Intn(3) // 8, 16, 32
	for i := 0; i < layers; i++ {
		// Keep the spatial size workable.
		if b.h < 4 || b.w < 4 {
			break
		}
		switch rng.Intn(5) {
		case 0: // strided conv downsample
			if b.h >= 8 {
				b.conv(3, 3, ch, 2, 1)
			} else {
				b.conv(3, 3, ch, 1, 1)
			}
		case 1: // pointwise
			b.conv(1, 1, ch, 1, 0)
		case 2: // depthwise
			b.dwconv(3, 3, 1, 1)
		case 3: // pool + widen
			if b.h >= 8 {
				b.pool(2)
			}
			if ch < p.MaxChannels {
				ch *= 2
			}
			b.conv(3, 3, ch, 1, 1)
		default: // plain 3x3
			b.conv(3, 3, ch, 1, 1)
		}
	}
	if p.FCHead {
		b.globalPool()
		b.fc(10 + rng.Intn(990))
	}
	return b.build()
}

// SynthWorkload generates a multi-DNN workload of n synthetic networks.
func SynthWorkload(rng *rand.Rand, n int, p SynthParams) Workload {
	w := Workload{Name: fmt.Sprintf("synthetic-%d", n)}
	for i := 0; i < n; i++ {
		w.Networks = append(w.Networks, SynthNetwork(fmt.Sprintf("synth%d", i), rng, p))
	}
	return w
}
