package des

import (
	"math"
	"math/rand"
	"testing"
)

// TestArrivalValidate exercises the spec guards.
func TestArrivalValidate(t *testing.T) {
	ok := []ArrivalSpec{
		{Kind: ArrivalPoisson, RateRPS: 3},
		{Kind: ArrivalDiurnal, RateRPS: 3, Swing: 0.9, PeriodSec: 5},
		{Kind: ArrivalMMPP, RateRPS: 3, BurstRPS: 30, MeanBurstSec: 0.2, MeanCalmSec: 4},
	}
	for _, a := range ok {
		if err := a.Validate(); err != nil {
			t.Errorf("valid spec %+v rejected: %v", a, err)
		}
	}
	bad := []ArrivalSpec{
		{},
		{Kind: "weird", RateRPS: 1},
		{Kind: ArrivalPoisson, RateRPS: 0},
		{Kind: ArrivalPoisson, RateRPS: math.Inf(1)},
		{Kind: ArrivalDiurnal, RateRPS: 1, Swing: 1},
		{Kind: ArrivalDiurnal, RateRPS: 1, PeriodSec: math.NaN()},
		{Kind: ArrivalMMPP, RateRPS: 1, BurstRPS: -2},
		{Kind: ArrivalMMPP, RateRPS: 1, MeanCalmSec: math.Inf(1)},
	}
	for _, a := range bad {
		if err := a.Validate(); err == nil {
			t.Errorf("invalid spec %+v accepted", a)
		}
	}
}

// TestArrivalRates checks empirical mean rates over a long horizon land
// near the configured intensities.
func TestArrivalRates(t *testing.T) {
	const horizon = 20000.0
	cases := []struct {
		name string
		spec ArrivalSpec
		want float64
	}{
		{"poisson", ArrivalSpec{Kind: ArrivalPoisson, RateRPS: 5}, 5},
		{"diurnal", ArrivalSpec{Kind: ArrivalDiurnal, RateRPS: 5, PeriodSec: 50}, 5},
		// MMPP mean rate = (calm*Tcalm + burst*Tburst)/(Tcalm+Tburst).
		{"mmpp", ArrivalSpec{Kind: ArrivalMMPP, RateRPS: 2, BurstRPS: 8, MeanBurstSec: 1, MeanCalmSec: 3}, (2*3 + 8*1) / 4.0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := c.spec.process(rand.New(rand.NewSource(11)))
			now, n := 0.0, 0
			for now < horizon {
				d := p.nextDelay(now)
				if d < 0 || math.IsNaN(d) || math.IsInf(d, 0) {
					t.Fatalf("bad delay %g", d)
				}
				now += d
				n++
			}
			got := float64(n) / horizon
			if math.Abs(got-c.want)/c.want > 0.05 {
				t.Fatalf("empirical rate %.3f rps, want ~%.3f", got, c.want)
			}
		})
	}
}

// TestArrivalDeterminism checks fixed-seed draws reproduce exactly.
func TestArrivalDeterminism(t *testing.T) {
	for _, spec := range []ArrivalSpec{
		{Kind: ArrivalPoisson, RateRPS: 4},
		{Kind: ArrivalDiurnal, RateRPS: 4},
		{Kind: ArrivalMMPP, RateRPS: 4},
	} {
		draw := func() []float64 {
			p := spec.process(rand.New(rand.NewSource(99)))
			now := 0.0
			var out []float64
			for i := 0; i < 500; i++ {
				d := p.nextDelay(now)
				now += d
				out = append(out, d)
			}
			return out
		}
		a, b := draw(), draw()
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: draw %d differs: %g vs %g", spec.Kind, i, a[i], b[i])
			}
		}
	}
}

// TestPeakRPS checks the capacity-planning figure per kind.
func TestPeakRPS(t *testing.T) {
	if got := (ArrivalSpec{Kind: ArrivalPoisson, RateRPS: 3}).PeakRPS(); got != 3 {
		t.Errorf("poisson peak %g", got)
	}
	if got := (ArrivalSpec{Kind: ArrivalDiurnal, RateRPS: 4, Swing: 0.25}).PeakRPS(); got != 5 {
		t.Errorf("diurnal peak %g", got)
	}
	if got := (ArrivalSpec{Kind: ArrivalMMPP, RateRPS: 2}).PeakRPS(); got != 8 {
		t.Errorf("mmpp default peak %g", got)
	}
}
