package des

import (
	"math"
	"sort"
)

// Result aggregates one scenario run: traffic and SLA accounting, the
// DVFS/throttling history, and the time-domain temperature envelope.
// It is a pure function of (Scenario, Platform, ThermalStepper).
type Result struct {
	// Seed echoes the scenario seed that produced this result.
	Seed int64 `json:"seed"`
	// DurationSec is the simulated horizon.
	DurationSec float64 `json:"duration_sec"`
	// Events is the number of simulation events processed.
	Events int `json:"events"`
	// Requests and Completed count arrivals and finished services over
	// the horizon; QueuedAtEnd is the backlog left at the horizon.
	Requests  int64 `json:"requests"`
	Completed int64 `json:"completed"`
	// QueuedAtEnd counts requests still waiting or running at the
	// horizon.
	QueuedAtEnd int64 `json:"queued_at_end"`
	// SLAViolations counts completions over their tenant's SLA plus
	// backlog already past it at the horizon.
	SLAViolations int64 `json:"sla_violations"`
	// ThrottleEvents counts downward DVFS shifts; ThrottledSec is the
	// virtual time spent below the nominal frequency and MinFreqFactor
	// the lowest frequency factor reached.
	ThrottleEvents int64   `json:"throttle_events"`
	ThrottledSec   float64 `json:"throttled_sec"`
	MinFreqFactor  float64 `json:"min_freq_factor"`
	// PeakTempC is the maximum of the temperature envelope.
	PeakTempC float64 `json:"peak_temp_c"`
	// Windows counts completed utilization windows (one per service)
	// and Steps the thermal ticks taken.
	Windows int64 `json:"windows"`
	Steps   int   `json:"steps"`
	// Envelope is the tick-sampled peak-temperature trace.
	Envelope Envelope `json:"envelope"`
	// Utilization[c] is chiplet c's busy fraction over the horizon;
	// MaxQueue[c] its deepest queue.
	Utilization []float64 `json:"utilization"`
	MaxQueue    []int     `json:"max_queue"`
	// Tenants holds per-tenant traffic and tail-latency statistics.
	Tenants []TenantStats `json:"tenants"`
}

// Envelope is the time-domain peak-temperature trace, sampled at the
// end of each thermal tick.
type Envelope struct {
	// TimesSec are the tick-end instants.
	TimesSec []float64 `json:"times_sec"`
	// PeakC are the peak junction temperatures at those instants.
	PeakC []float64 `json:"peak_c"`
}

// TenantStats is one tenant's traffic and latency summary.
type TenantStats struct {
	// Name echoes the tenant name.
	Name string `json:"name"`
	// Requests counts arrivals, Completed finished services.
	Requests  int64 `json:"requests"`
	Completed int64 `json:"completed"`
	// SLAViolations counts completions over the tenant's SLA.
	SLAViolations int64 `json:"sla_violations"`
	// P50Sec/P95Sec/P99Sec are nearest-rank completion-latency
	// percentiles (zero when nothing completed).
	P50Sec float64 `json:"p50_sec"`
	P95Sec float64 `json:"p95_sec"`
	P99Sec float64 `json:"p99_sec"`
}

// SLARate returns the fraction of requests that violated their SLA
// (completions over SLA plus overdue backlog, over all arrivals).
func (r *Result) SLARate() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.SLAViolations) / float64(r.Requests)
}

// percentile returns the nearest-rank q-quantile of lats (not
// necessarily sorted; sorted in place). Zero for an empty slice.
func percentile(lats []float64, q float64) float64 {
	if len(lats) == 0 {
		return 0
	}
	sort.Float64s(lats)
	i := int(math.Ceil(q*float64(len(lats)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(lats) {
		i = len(lats) - 1
	}
	return lats[i]
}
