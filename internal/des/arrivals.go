package des

import (
	"fmt"
	"math"
	"math/rand"
)

// Arrival process kinds.
const (
	// ArrivalPoisson is a homogeneous Poisson process at RateRPS.
	ArrivalPoisson = "poisson"
	// ArrivalDiurnal is a nonhomogeneous Poisson process whose rate
	// swings sinusoidally around RateRPS (a compressed day/night cycle),
	// sampled by thinning against the peak rate.
	ArrivalDiurnal = "diurnal"
	// ArrivalMMPP is a two-state Markov-modulated Poisson process:
	// calm periods at RateRPS alternate with bursts at BurstRPS, with
	// exponentially distributed state holding times.
	ArrivalMMPP = "mmpp"
)

// ArrivalSpec configures one tenant's request-arrival process. The
// zero value is invalid; Kind selects the process and RateRPS its base
// rate, with the remaining fields consulted per kind.
type ArrivalSpec struct {
	// Kind is "poisson", "diurnal", or "mmpp".
	Kind string `json:"kind"`
	// RateRPS is the base arrival rate in requests per second (the
	// calm-state rate for MMPP, the mean rate for diurnal).
	RateRPS float64 `json:"rate_rps"`

	// PeriodSec is the diurnal cycle length (default 60 s — a
	// compressed day so short simulations see both halves).
	PeriodSec float64 `json:"period_sec,omitempty"`
	// Swing is the diurnal modulation depth in [0,1): the rate moves
	// between RateRPS*(1-Swing) and RateRPS*(1+Swing). Default 0.5.
	Swing float64 `json:"swing,omitempty"`

	// BurstRPS is the MMPP burst-state rate (default 4x RateRPS).
	BurstRPS float64 `json:"burst_rps,omitempty"`
	// MeanBurstSec and MeanCalmSec are the mean state holding times
	// (defaults 0.5 s and 2 s).
	MeanBurstSec float64 `json:"mean_burst_sec,omitempty"`
	MeanCalmSec  float64 `json:"mean_calm_sec,omitempty"`
}

// Validate reports an error for unusable arrival specs.
func (a ArrivalSpec) Validate() error {
	if !finitePos(a.RateRPS) {
		return fmt.Errorf("des: arrival rate_rps %g must be finite and positive", a.RateRPS)
	}
	switch a.Kind {
	case ArrivalPoisson:
	case ArrivalDiurnal:
		if a.Swing < 0 || a.Swing >= 1 {
			return fmt.Errorf("des: diurnal swing %g out of [0,1)", a.Swing)
		}
		if a.PeriodSec != 0 && !finitePos(a.PeriodSec) {
			return fmt.Errorf("des: diurnal period_sec %g must be finite and positive", a.PeriodSec)
		}
	case ArrivalMMPP:
		if a.BurstRPS != 0 && !finitePos(a.BurstRPS) {
			return fmt.Errorf("des: mmpp burst_rps %g must be finite and positive", a.BurstRPS)
		}
		if (a.MeanBurstSec != 0 && !finitePos(a.MeanBurstSec)) || (a.MeanCalmSec != 0 && !finitePos(a.MeanCalmSec)) {
			return fmt.Errorf("des: mmpp state holding times must be finite and positive, got burst=%g calm=%g", a.MeanBurstSec, a.MeanCalmSec)
		}
	case "":
		return fmt.Errorf("des: missing arrival kind (poisson, diurnal, or mmpp)")
	default:
		return fmt.Errorf("des: unknown arrival kind %q (want poisson, diurnal, or mmpp)", a.Kind)
	}
	return nil
}

// PeakRPS returns the process's maximum instantaneous rate — the
// capacity-planning figure the burst scenarios stress.
func (a ArrivalSpec) PeakRPS() float64 {
	switch a.Kind {
	case ArrivalDiurnal:
		return a.RateRPS * (1 + a.swing())
	case ArrivalMMPP:
		return a.burstRPS()
	default:
		return a.RateRPS
	}
}

func (a ArrivalSpec) swing() float64 {
	if a.Swing == 0 {
		return 0.5
	}
	return a.Swing
}

func (a ArrivalSpec) periodSec() float64 {
	if a.PeriodSec == 0 {
		return 60
	}
	return a.PeriodSec
}

func (a ArrivalSpec) burstRPS() float64 {
	if a.BurstRPS == 0 {
		return 4 * a.RateRPS
	}
	return a.BurstRPS
}

func (a ArrivalSpec) meanBurstSec() float64 {
	if a.MeanBurstSec == 0 {
		return 0.5
	}
	return a.MeanBurstSec
}

func (a ArrivalSpec) meanCalmSec() float64 {
	if a.MeanCalmSec == 0 {
		return 2
	}
	return a.MeanCalmSec
}

// arrivalProcess generates inter-arrival delays. Implementations draw
// from rng in a fixed call order, which is what makes a seeded
// scenario deterministic.
type arrivalProcess interface {
	// nextDelay returns the delay from nowSec to the next arrival.
	nextDelay(nowSec float64) float64
}

// process instantiates the spec against a seeded generator. Call
// Validate first; an invalid spec panics here.
func (a ArrivalSpec) process(rng *rand.Rand) arrivalProcess {
	if err := a.Validate(); err != nil {
		panic(err)
	}
	switch a.Kind {
	case ArrivalDiurnal:
		return &diurnalProcess{rng: rng, meanRPS: a.RateRPS, swing: a.swing(), periodSec: a.periodSec()}
	case ArrivalMMPP:
		return &mmppProcess{
			rng: rng, calmRPS: a.RateRPS, burstRPS: a.burstRPS(),
			meanBurstSec: a.meanBurstSec(), meanCalmSec: a.meanCalmSec(),
		}
	default:
		return &poissonProcess{rng: rng, rateRPS: a.RateRPS}
	}
}

// poissonProcess draws i.i.d. exponential inter-arrival times.
type poissonProcess struct {
	rng     *rand.Rand
	rateRPS float64
}

func (p *poissonProcess) nextDelay(float64) float64 {
	return p.rng.ExpFloat64() / p.rateRPS
}

// diurnalProcess thins a homogeneous process at the peak rate down to
// the sinusoidal instantaneous rate (Lewis-Shedler thinning), so the
// arrival intensity follows a deterministic day/night curve while the
// draws stay a fixed-order function of the seed.
type diurnalProcess struct {
	rng       *rand.Rand
	meanRPS   float64
	swing     float64
	periodSec float64
}

func (p *diurnalProcess) nextDelay(nowSec float64) float64 {
	peak := p.meanRPS * (1 + p.swing)
	t := nowSec
	for {
		t += p.rng.ExpFloat64() / peak
		rate := p.meanRPS * (1 + p.swing*math.Sin(2*math.Pi*t/p.periodSec))
		if p.rng.Float64()*peak <= rate {
			return t - nowSec
		}
	}
}

// mmppProcess alternates exponentially-held calm and burst states,
// each an independent Poisson process at its own rate. State
// transitions are realized lazily while generating the next arrival.
type mmppProcess struct {
	rng                       *rand.Rand
	calmRPS, burstRPS         float64
	meanBurstSec, meanCalmSec float64
	inBurst                   bool
	stateEndSec               float64
	initialized               bool
}

func (p *mmppProcess) nextDelay(nowSec float64) float64 {
	if !p.initialized {
		p.initialized = true
		p.stateEndSec = nowSec + p.rng.ExpFloat64()*p.meanCalmSec
	}
	t := nowSec
	for {
		rate := p.calmRPS
		if p.inBurst {
			rate = p.burstRPS
		}
		candidate := t + p.rng.ExpFloat64()/rate
		if candidate <= p.stateEndSec {
			return candidate - nowSec
		}
		// The state flips before the candidate arrival: restart the
		// memoryless draw from the transition instant.
		t = p.stateEndSec
		p.inBurst = !p.inBurst
		mean := p.meanCalmSec
		if p.inBurst {
			mean = p.meanBurstSec
		}
		p.stateEndSec = t + p.rng.ExpFloat64()*mean
	}
}

// finitePos reports whether v is a finite positive float.
func finitePos(v float64) bool {
	return v > 0 && !math.IsInf(v, 0) && !math.IsNaN(v)
}
