// Package des is a small deterministic discrete-event simulation core
// plus the scenario modules that turn it into a dynamic multi-tenant
// workload generator for MCM accelerators: seeded request-arrival
// processes (Poisson, diurnal, bursty MMPP), per-tenant queues with SLA
// tail-latency tracking, a placement/occupancy module that maps active
// DNN invocations to per-chiplet utilization windows, and a
// thermal-coupling module that batches those windows into
// piecewise-constant power traces for a transient thermal solver,
// closing the loop through a simple DVFS throttling governor.
//
// The package deliberately knows nothing about the TESA evaluation
// pipeline: the hardware is abstracted as a Platform (per-tenant
// service times, chiplet assignment, and power splits) and the thermal
// solver as a ThermalStepper, both provided by the caller
// (internal/core wires them from an Evaluation and
// internal/thermal's transient solver).
//
// Determinism contract: a scenario run is a pure function of
// (Scenario, Platform, ThermalStepper). All randomness flows from one
// seeded generator consumed in event order, event ties are broken by
// schedule order (a strictly increasing sequence number), no map is
// iterated, and the event log is formatted with canonical float
// encoding — so two runs with the same seed produce bit-identical
// event logs and temperature envelopes. See DESIGN.md §9.
package des

import (
	"container/heap"
	"fmt"
	"math"
)

// Module is one simulation component: events addressed to it are
// delivered in virtual-time order via Handle, which may schedule
// further events on the Simulator.
type Module interface {
	// Handle processes one event addressed to this module. The
	// simulator's virtual clock already stands at the event's time.
	Handle(s *Simulator, e Event)
}

// Event is one scheduled occurrence in virtual time.
type Event struct {
	// AtSec is the virtual time the event fires.
	AtSec float64
	// Seq is the schedule-order sequence number, the deterministic
	// tie-break between events scheduled for the same instant: of two
	// simultaneous events, the one scheduled first fires first.
	Seq uint64
	// Kind names the event for the module's dispatch and the log.
	Kind string
	// To is the module the event is addressed to.
	To Module
	// Data is the event payload (module-defined; may be nil).
	Data any
}

// Simulator is the deterministic event core: a virtual clock and a
// binary-heap event queue ordered by (AtSec, Seq).
type Simulator struct {
	nowSec    float64
	seq       uint64
	queue     eventQueue
	processed int
	err       error
}

// NewSimulator returns an empty simulator with the clock at zero.
func NewSimulator() *Simulator { return &Simulator{} }

// NowSec returns the current virtual time in seconds.
func (s *Simulator) NowSec() float64 { return s.nowSec }

// Processed returns the number of events handled so far.
func (s *Simulator) Processed() int { return s.processed }

// Schedule enqueues an event delaySec after the current virtual time.
// A negative or non-finite delay, or a nil module, is a scenario bug:
// it is recorded as the simulation's sticky error (surfaced by Run)
// and the event is dropped.
func (s *Simulator) Schedule(delaySec float64, kind string, to Module, data any) error {
	if math.IsNaN(delaySec) || math.IsInf(delaySec, 0) || delaySec < 0 {
		return s.fail(fmt.Errorf("des: event %q scheduled with invalid delay %g", kind, delaySec))
	}
	if to == nil {
		return s.fail(fmt.Errorf("des: event %q scheduled to a nil module", kind))
	}
	s.seq++
	heap.Push(&s.queue, Event{AtSec: s.nowSec + delaySec, Seq: s.seq, Kind: kind, To: to, Data: data})
	return nil
}

// Abort records err as the simulation's sticky error, making Run stop
// before dispatching any further event. Modules call it when an
// external coupling (e.g. the thermal stepper) fails mid-run.
func (s *Simulator) Abort(err error) {
	if err != nil {
		s.fail(err)
	}
}

// fail records the first scheduling error; later ones are dropped so
// the root cause is what Run reports.
func (s *Simulator) fail(err error) error {
	if s.err == nil {
		s.err = err
	}
	return err
}

// Run processes events in (time, sequence) order until the queue holds
// nothing at or before untilSec, then advances the clock to untilSec.
// Events scheduled beyond the horizon stay queued (and unprocessed).
// Returns the first scheduling error, if any occurred.
func (s *Simulator) Run(untilSec float64) error {
	if math.IsNaN(untilSec) || untilSec < s.nowSec {
		return s.fail(fmt.Errorf("des: run horizon %g behind the clock %g", untilSec, s.nowSec))
	}
	for s.err == nil && s.queue.Len() > 0 && s.queue[0].AtSec <= untilSec {
		e := heap.Pop(&s.queue).(Event)
		s.nowSec = e.AtSec
		s.processed++
		e.To.Handle(s, e)
	}
	if s.err != nil {
		return s.err
	}
	s.nowSec = untilSec
	return nil
}

// eventQueue is the binary heap ordering events by (AtSec, Seq).
type eventQueue []Event

// Len implements heap.Interface.
func (q eventQueue) Len() int { return len(q) }

// Less orders by virtual time, ties broken by schedule order.
func (q eventQueue) Less(i, j int) bool {
	if q[i].AtSec != q[j].AtSec {
		return q[i].AtSec < q[j].AtSec
	}
	return q[i].Seq < q[j].Seq
}

// Swap implements heap.Interface.
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

// Push implements heap.Interface.
func (q *eventQueue) Push(x any) { *q = append(*q, x.(Event)) }

// Pop implements heap.Interface.
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}
