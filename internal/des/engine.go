package des

import (
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"strings"
)

// Event kinds emitted by the scenario modules (and, with the same
// names, the "ev" field of the event log).
const (
	evArrive   = "arrive"
	evStart    = "start"
	evDone     = "done"
	evTick     = "tick"
	evThrottle = "throttle"
)

// Run executes one scenario against a platform and thermal stepper and
// returns its aggregated result. When logW is non-nil every simulation
// event is appended to it as one canonical JSONL line; two runs with
// identical inputs write identical bytes (the determinism contract the
// CI sim leg enforces). Run is single-threaded and returns the first
// module or stepper error.
func Run(sc Scenario, pl Platform, ts ThermalStepper, logW io.Writer) (*Result, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if err := pl.Validate(len(sc.Tenants)); err != nil {
		return nil, err
	}
	if ts == nil {
		return nil, fmt.Errorf("des: nil thermal stepper")
	}
	eng := &engine{
		sim: NewSimulator(),
		sc:  sc, pl: pl, ts: ts,
		rng:      rand.New(rand.NewSource(sc.Seed)),
		log:      logW,
		throttle: sc.Throttle.withDefaults(),
		minFreq:  1,
	}
	eng.freqFactor = eng.throttle.Levels[0]
	eng.minFreq = eng.freqFactor
	eng.servers = make([]*server, pl.Chiplets)
	for c := range eng.servers {
		eng.servers[c] = &server{eng: eng, chiplet: c}
	}
	eng.sources = make([]*source, len(sc.Tenants))
	eng.latencies = make([][]float64, len(sc.Tenants))
	for t := range sc.Tenants {
		src := &source{eng: eng, tenant: t, proc: sc.Tenants[t].Arrival.process(eng.rng)}
		eng.sources[t] = src
		if err := eng.sim.Schedule(src.proc.nextDelay(0), evArrive, src, nil); err != nil {
			return nil, err
		}
	}
	tick := &ticker{eng: eng}
	if err := eng.sim.Schedule(sc.ThermalDtSec, evTick, tick, nil); err != nil {
		return nil, err
	}
	if err := eng.sim.Run(sc.DurationSec); err != nil {
		return nil, err
	}
	if eng.err != nil {
		return nil, eng.err
	}
	return eng.finalize(), nil
}

// engine is the shared state of one scenario run.
type engine struct {
	sim *Simulator
	sc  Scenario
	pl  Platform
	ts  ThermalStepper
	rng *rand.Rand
	log io.Writer
	err error

	throttle   Throttle
	level      int
	freqFactor float64
	minFreq    float64
	levelSince float64 // virtual time the current level was entered
	throttled  float64 // accumulated seconds at level > 0

	sources []*source
	servers []*server

	nextID    int64
	requests  int64
	completed int64
	slaViol   int64
	throttles int64
	windows   int64
	steps     int
	latencies [][]float64 // per tenant, completion order
	envT      []float64
	envC      []float64
	peakC     float64
}

// request is one in-flight inference invocation.
type request struct {
	id        int64
	tenant    int
	arriveSec float64
}

// source generates one tenant's arrivals.
type source struct {
	eng    *engine
	tenant int
	proc   arrivalProcess
}

// Handle implements Module: admit the request and draw the next one.
func (s *source) Handle(sim *Simulator, e Event) {
	eng := s.eng
	eng.requests++
	eng.nextID++
	r := request{id: eng.nextID, tenant: s.tenant, arriveSec: sim.NowSec()}
	eng.logf(sim.NowSec(), e.Seq, evArrive, `"tenant":%q,"id":%d`, eng.sc.Tenants[s.tenant].Name, r.id)
	eng.servers[eng.pl.Chiplet[s.tenant]].enqueue(sim, r)
	sim.Schedule(s.proc.nextDelay(sim.NowSec()), evArrive, s, nil)
}

// server is one chiplet's non-preemptive FIFO queue plus the occupancy
// accounting that turns its service windows into tick-averaged power.
type server struct {
	eng     *engine
	chiplet int
	queue   []request
	busy    bool
	cur     request
	// curArrW/curSRAMW are the DVFS-scaled power draw of the running
	// service (frozen at service start, like the stretched latency).
	curArrW, curSRAMW float64
	// Energy accumulated since the last thermal tick, and the last
	// instant it was accumulated to.
	arrJ, sramJ float64
	lastSec     float64
	busySec     float64
	maxQueue    int
}

// enqueue admits a request; an idle server starts it immediately.
func (sv *server) enqueue(sim *Simulator, r request) {
	sv.queue = append(sv.queue, r)
	if len(sv.queue) > sv.maxQueue {
		sv.maxQueue = len(sv.queue)
	}
	if !sv.busy {
		sv.start(sim)
	}
}

// start begins serving the queue head. Service time and power draw are
// frozen at the current DVFS factor: latency stretches by 1/factor,
// dynamic power scales by factor (voltage held, see DESIGN.md §9).
func (sv *server) start(sim *Simulator) {
	eng := sv.eng
	sv.accumulate(sim.NowSec())
	r := sv.queue[0]
	sv.queue = sv.queue[1:]
	f := eng.freqFactor
	sv.busy = true
	sv.cur = r
	sv.curArrW = eng.pl.ArrayW[r.tenant] * f
	sv.curSRAMW = eng.pl.SRAMW[r.tenant] * f
	eng.logf(sim.NowSec(), 0, evStart, `"chiplet":%d,"tenant":%q,"id":%d,"freq":%s`,
		sv.chiplet, eng.sc.Tenants[r.tenant].Name, r.id, fnum(f))
	sim.Schedule(eng.pl.ServiceSec[r.tenant]/f, evDone, sv, nil)
}

// Handle implements Module: complete the running service, record its
// latency against the tenant's SLA, and start the next request.
func (sv *server) Handle(sim *Simulator, e Event) {
	eng := sv.eng
	sv.accumulate(sim.NowSec())
	r := sv.cur
	sv.busy = false
	eng.windows++
	eng.completed++
	lat := sim.NowSec() - r.arriveSec
	viol := lat > eng.sc.Tenants[r.tenant].SLASec
	if viol {
		eng.slaViol++
	}
	eng.latencies[r.tenant] = append(eng.latencies[r.tenant], lat)
	eng.logf(sim.NowSec(), e.Seq, evDone, `"id":%d,"latency_sec":%s,"sla_miss":%v`, r.id, fnum(lat), viol)
	if len(sv.queue) > 0 {
		sv.start(sim)
	}
}

// accumulate folds the service window since lastSec into the tick's
// energy integral — the exact (not sampled) window→power batching.
func (sv *server) accumulate(toSec float64) {
	if sv.busy {
		dt := toSec - sv.lastSec
		sv.arrJ += sv.curArrW * dt
		sv.sramJ += sv.curSRAMW * dt
		sv.busySec += dt
	}
	sv.lastSec = toSec
}

// ticker is the thermal-coupling module: every ThermalDtSec it batches
// the chiplets' utilization windows into one piecewise-constant power
// step, advances the transient solver, and lets the DVFS governor
// react to the new peak temperature.
type ticker struct {
	eng *engine
	k   int // completed tick count
}

// Handle implements Module.
func (t *ticker) Handle(sim *Simulator, e Event) {
	eng := t.eng
	now := sim.NowSec()
	dt := eng.sc.ThermalDtSec
	power := make([]ChipletPowerW, len(eng.servers))
	for c, sv := range eng.servers {
		sv.accumulate(now)
		power[c] = ChipletPowerW{ArrayW: sv.arrJ / dt, SRAMW: sv.sramJ / dt}
		sv.arrJ, sv.sramJ = 0, 0
	}
	peak, err := eng.ts.Step(dt, power)
	if err != nil {
		sim.Abort(fmt.Errorf("des: thermal step at t=%gs: %w", now, err))
		eng.err = eng.sim.err
		return
	}
	eng.steps++
	eng.envT = append(eng.envT, now)
	eng.envC = append(eng.envC, peak)
	if peak > eng.peakC || eng.steps == 1 {
		eng.peakC = peak
	}
	eng.logf(now, e.Seq, evTick, `"peak_c":%s,"freq":%s`, fnum(peak), fnum(eng.freqFactor))
	eng.govern(sim, e.Seq, peak)
	t.k++
	next := float64(t.k+1) * dt
	if next <= eng.sc.DurationSec+1e-12 {
		sim.Schedule(next-now, evTick, t, nil)
	}
}

// govern is the DVFS policy: one level down past the trip point, one
// level up once cooled below trip-hysteresis. Downward shifts count as
// throttling events.
func (eng *engine) govern(sim *Simulator, seq uint64, peakC float64) {
	p := eng.throttle
	switch {
	case peakC > p.TripC && eng.level < len(p.Levels)-1:
		eng.shift(sim, seq, eng.level+1, peakC)
		eng.throttles++
	case peakC < p.TripC-p.HysteresisC && eng.level > 0:
		eng.shift(sim, seq, eng.level-1, peakC)
	}
}

// shift moves the governor to the given level, re-freezing nothing:
// running services keep their start-time factor; only future starts
// see the new one.
func (eng *engine) shift(sim *Simulator, seq uint64, level int, peakC float64) {
	now := sim.NowSec()
	if eng.level > 0 {
		eng.throttled += now - eng.levelSince
	}
	eng.level = level
	eng.levelSince = now
	eng.freqFactor = eng.throttle.Levels[level]
	if eng.freqFactor < eng.minFreq {
		eng.minFreq = eng.freqFactor
	}
	eng.logf(now, seq, evThrottle, `"level":%d,"freq":%s,"peak_c":%s`, level, fnum(eng.freqFactor), fnum(peakC))
}

// finalize assembles the Result after the horizon.
func (eng *engine) finalize() *Result {
	end := eng.sc.DurationSec
	if eng.level > 0 {
		eng.throttled += end - eng.levelSince
	}
	res := &Result{
		Seed:           eng.sc.Seed,
		DurationSec:    end,
		Events:         eng.sim.Processed(),
		Requests:       eng.requests,
		Completed:      eng.completed,
		SLAViolations:  eng.slaViol,
		ThrottleEvents: eng.throttles,
		ThrottledSec:   eng.throttled,
		MinFreqFactor:  eng.minFreq,
		PeakTempC:      eng.peakC,
		Windows:        eng.windows,
		Steps:          eng.steps,
		Envelope:       Envelope{TimesSec: eng.envT, PeakC: eng.envC},
		Utilization:    make([]float64, len(eng.servers)),
		MaxQueue:       make([]int, len(eng.servers)),
	}
	for c, sv := range eng.servers {
		sv.accumulate(end)
		res.Utilization[c] = sv.busySec / end
		res.MaxQueue[c] = sv.maxQueue
		// Requests still waiting or running past their SLA at the
		// horizon are violations already — they can only finish later.
		res.QueuedAtEnd += int64(len(sv.queue))
		if sv.busy {
			res.QueuedAtEnd++
			if end-sv.cur.arriveSec > eng.sc.Tenants[sv.cur.tenant].SLASec {
				res.SLAViolations++
			}
		}
		for _, r := range sv.queue {
			if end-r.arriveSec > eng.sc.Tenants[r.tenant].SLASec {
				res.SLAViolations++
			}
		}
	}
	res.Tenants = make([]TenantStats, len(eng.sc.Tenants))
	for t := range eng.sc.Tenants {
		lats := eng.latencies[t]
		st := TenantStats{
			Name:      eng.sc.Tenants[t].Name,
			Completed: int64(len(lats)),
		}
		viol := 0
		for _, l := range lats {
			if l > eng.sc.Tenants[t].SLASec {
				viol++
			}
		}
		st.SLAViolations = int64(viol)
		st.P50Sec = percentile(lats, 0.50)
		st.P95Sec = percentile(lats, 0.95)
		st.P99Sec = percentile(lats, 0.99)
		res.Tenants[t] = st
	}
	// Per-tenant arrival counts: completed plus still in flight.
	for _, sv := range eng.servers {
		if sv.busy {
			res.Tenants[sv.cur.tenant].Requests++
		}
		for _, r := range sv.queue {
			res.Tenants[r.tenant].Requests++
		}
	}
	for t := range res.Tenants {
		res.Tenants[t].Requests += res.Tenants[t].Completed
	}
	return res
}

// logf appends one canonical event-log line. Floats go through fnum
// (shortest round-trip form), so identical runs write identical bytes.
func (eng *engine) logf(tSec float64, seq uint64, ev string, format string, args ...any) {
	if eng.log == nil {
		return
	}
	var b strings.Builder
	fmt.Fprintf(&b, `{"t":%s,"seq":%d,"ev":%q`, fnum(tSec), seq, ev)
	if format != "" {
		b.WriteByte(',')
		fmt.Fprintf(&b, format, args...)
	}
	b.WriteString("}\n")
	if _, err := io.WriteString(eng.log, b.String()); err != nil && eng.err == nil {
		eng.err = fmt.Errorf("des: event log: %w", err)
		eng.sim.Abort(eng.err)
	}
}

// fnum renders a float in its shortest round-trip decimal form — the
// canonical encoding of the event log and the envelope.
func fnum(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
