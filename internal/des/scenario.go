package des

import (
	"fmt"
	"math"
)

// Tenant is one traffic source: a stream of inference requests for a
// single DNN, with an SLA on end-to-end latency.
type Tenant struct {
	// Name labels the tenant in logs and results.
	Name string `json:"name"`
	// Network names the workload DNN this tenant invokes. The des
	// engine treats it as opaque — the caller resolves it into the
	// Platform's per-tenant service profile.
	Network string `json:"network,omitempty"`
	// Arrival configures the tenant's request-arrival process.
	Arrival ArrivalSpec `json:"arrival"`
	// SLASec is the end-to-end latency objective: a request whose
	// completion takes longer (queueing included) counts as an SLA
	// violation.
	SLASec float64 `json:"sla_sec"`
}

// Throttle is the DVFS governor policy: when the peak junction
// temperature trips TripC, the governor steps the frequency factor one
// level down; once it cools below TripC-HysteresisC, one level up.
type Throttle struct {
	// TripC is the throttling trip point in Celsius.
	TripC float64 `json:"trip_c"`
	// HysteresisC is the cool-down band below TripC before the
	// governor steps back up (default 2 C).
	HysteresisC float64 `json:"hysteresis_c,omitempty"`
	// Levels are the available frequency factors, descending from
	// Levels[0] (nominal, normally 1.0). Default [1, 0.8, 0.6, 0.4].
	Levels []float64 `json:"levels,omitempty"`
}

// DefaultThrottleLevels is the default DVFS ladder: nominal plus three
// throttled frequency factors.
var DefaultThrottleLevels = []float64{1, 0.8, 0.6, 0.4}

// withDefaults fills the zero fields.
func (t Throttle) withDefaults() Throttle {
	if t.HysteresisC == 0 {
		t.HysteresisC = 2
	}
	if len(t.Levels) == 0 {
		t.Levels = DefaultThrottleLevels
	}
	return t
}

// Validate reports an error for unusable throttle policies.
func (t Throttle) Validate() error {
	if !finitePos(t.TripC) {
		return fmt.Errorf("des: throttle trip_c %g must be finite and positive", t.TripC)
	}
	if t.HysteresisC < 0 || math.IsNaN(t.HysteresisC) || math.IsInf(t.HysteresisC, 0) {
		return fmt.Errorf("des: throttle hysteresis_c %g must be finite and non-negative", t.HysteresisC)
	}
	prev := math.Inf(1)
	for i, f := range t.Levels {
		if !finitePos(f) || f > 1 {
			return fmt.Errorf("des: throttle level %d factor %g out of (0,1]", i, f)
		}
		if f >= prev {
			return fmt.Errorf("des: throttle levels must strictly descend, got %v", t.Levels)
		}
		prev = f
	}
	return nil
}

// Scenario is one dynamic-workload experiment: a seeded, time-bounded
// multi-tenant traffic mix coupled to the thermal solver at a fixed
// tick. The same Scenario against the same Platform and stepper
// reproduces bit-identically.
type Scenario struct {
	// Seed drives every random draw of the run.
	Seed int64 `json:"seed"`
	// DurationSec is the simulated horizon.
	DurationSec float64 `json:"duration_sec"`
	// ThermalDtSec is the thermal coupling tick: utilization windows
	// are batched into one piecewise-constant power step per tick.
	ThermalDtSec float64 `json:"thermal_dt_sec"`
	// Tenants are the traffic sources.
	Tenants []Tenant `json:"tenants"`
	// Throttle is the DVFS policy reacting to the temperature envelope.
	Throttle Throttle `json:"throttle"`
}

// Validate reports an error for unusable scenarios.
func (sc Scenario) Validate() error {
	if !finitePos(sc.DurationSec) {
		return fmt.Errorf("des: scenario duration_sec %g must be finite and positive", sc.DurationSec)
	}
	if !finitePos(sc.ThermalDtSec) {
		return fmt.Errorf("des: scenario thermal_dt_sec %g must be finite and positive", sc.ThermalDtSec)
	}
	if sc.ThermalDtSec > sc.DurationSec {
		return fmt.Errorf("des: thermal tick %g s exceeds the %g s horizon", sc.ThermalDtSec, sc.DurationSec)
	}
	if len(sc.Tenants) == 0 {
		return fmt.Errorf("des: scenario has no tenants")
	}
	for i, t := range sc.Tenants {
		if t.Name == "" {
			return fmt.Errorf("des: tenant %d has no name", i)
		}
		if err := t.Arrival.Validate(); err != nil {
			return fmt.Errorf("des: tenant %s: %w", t.Name, err)
		}
		if !finitePos(t.SLASec) {
			return fmt.Errorf("des: tenant %s sla_sec %g must be finite and positive", t.Name, t.SLASec)
		}
	}
	return sc.Throttle.withDefaults().Validate()
}

// Platform is the hardware view a scenario executes on, derived by the
// caller from a full design-point evaluation: how many chiplets exist,
// and per tenant the serving chiplet, the nominal-frequency inference
// latency, and the chiplet power split while serving that tenant.
type Platform struct {
	// Chiplets is the MCM's chiplet count.
	Chiplets int
	// Chiplet[t] is the chiplet serving tenant t (the static
	// placement the scheduler chose for the tenant's DNN).
	Chiplet []int
	// ServiceSec[t] is tenant t's inference latency at the nominal
	// frequency; DVFS stretches it by 1/factor.
	ServiceSec []float64
	// ArrayW[t] and SRAMW[t] split the chiplet dynamic power while
	// serving tenant t (array vs SRAM+TSV); DVFS scales both by the
	// frequency factor.
	ArrayW []float64
	SRAMW  []float64
}

// Validate checks the platform against the scenario's tenant count.
func (p Platform) Validate(tenants int) error {
	if p.Chiplets <= 0 {
		return fmt.Errorf("des: platform has %d chiplets", p.Chiplets)
	}
	if len(p.Chiplet) != tenants || len(p.ServiceSec) != tenants || len(p.ArrayW) != tenants || len(p.SRAMW) != tenants {
		return fmt.Errorf("des: platform profiles sized %d/%d/%d/%d for %d tenants",
			len(p.Chiplet), len(p.ServiceSec), len(p.ArrayW), len(p.SRAMW), tenants)
	}
	for t := 0; t < tenants; t++ {
		if p.Chiplet[t] < 0 || p.Chiplet[t] >= p.Chiplets {
			return fmt.Errorf("des: tenant %d assigned to chiplet %d of %d", t, p.Chiplet[t], p.Chiplets)
		}
		if !finitePos(p.ServiceSec[t]) {
			return fmt.Errorf("des: tenant %d service time %g must be finite and positive", t, p.ServiceSec[t])
		}
		if p.ArrayW[t] < 0 || p.SRAMW[t] < 0 || !finite(p.ArrayW[t]) || !finite(p.SRAMW[t]) {
			return fmt.Errorf("des: tenant %d power split %g/%g must be finite and non-negative", t, p.ArrayW[t], p.SRAMW[t])
		}
	}
	return nil
}

// ChipletPowerW is one chiplet's dynamic power split over a thermal
// tick, the unit of the piecewise-constant power trace handed to the
// thermal stepper.
type ChipletPowerW struct {
	// ArrayW is the systolic-array dynamic power in watts.
	ArrayW float64
	// SRAMW is the SRAM (+TSV) dynamic power in watts.
	SRAMW float64
}

// ThermalStepper advances a transient thermal model under one
// piecewise-constant power step and reports the resulting peak
// junction temperature. internal/core adapts internal/thermal's
// TransientStepper (adding temperature-dependent leakage) to this
// interface; tests substitute analytic models.
type ThermalStepper interface {
	// Step advances dtSec under the given per-chiplet dynamic power
	// and returns the peak junction temperature at the end of the
	// step.
	Step(dtSec float64, power []ChipletPowerW) (peakC float64, err error)
}

// finite reports whether v is neither NaN nor infinite.
func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
