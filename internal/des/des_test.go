package des

import (
	"bytes"
	"container/heap"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// recorder captures delivered events in order.
type recorder struct {
	got []Event
}

func (r *recorder) Handle(s *Simulator, e Event) { r.got = append(r.got, e) }

// TestHeapOrderingProperty pushes random (time, seq) events and checks
// they pop in (AtSec, Seq) order — the deterministic tie-break rule.
func TestHeapOrderingProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		var q eventQueue
		n := 1 + rng.Intn(64)
		for i := 0; i < n; i++ {
			// Coarse times force plenty of ties.
			at := float64(rng.Intn(8))
			heap.Push(&q, Event{AtSec: at, Seq: uint64(i + 1)})
		}
		var prev Event
		for i := 0; q.Len() > 0; i++ {
			e := heap.Pop(&q).(Event)
			if i > 0 {
				if e.AtSec < prev.AtSec {
					t.Fatalf("trial %d: time order violated: %g after %g", trial, e.AtSec, prev.AtSec)
				}
				if e.AtSec == prev.AtSec && e.Seq < prev.Seq {
					t.Fatalf("trial %d: tie-break violated: seq %d after %d at t=%g", trial, e.Seq, prev.Seq, e.AtSec)
				}
			}
			prev = e
		}
	}
}

// TestSimulatorDelivery checks clock advance, horizon semantics, and
// tie-breaking through the public API.
func TestSimulatorDelivery(t *testing.T) {
	s := NewSimulator()
	r := &recorder{}
	s.Schedule(2, "b", r, nil)
	s.Schedule(2, "c", r, nil) // same instant, scheduled later
	s.Schedule(1, "a", r, nil)
	s.Schedule(9, "late", r, nil) // beyond horizon
	if err := s.Run(5); err != nil {
		t.Fatalf("Run: %v", err)
	}
	var kinds []string
	for _, e := range r.got {
		kinds = append(kinds, e.Kind)
	}
	if want := []string{"a", "b", "c"}; !reflect.DeepEqual(kinds, want) {
		t.Fatalf("delivery order %v, want %v", kinds, want)
	}
	if s.NowSec() != 5 {
		t.Fatalf("clock %g after Run(5)", s.NowSec())
	}
	if s.Processed() != 3 {
		t.Fatalf("processed %d, want 3", s.Processed())
	}
}

// TestScheduleGuards rejects bad delays and nil modules.
func TestScheduleGuards(t *testing.T) {
	for _, delay := range []float64{math.NaN(), math.Inf(1), -1} {
		s := NewSimulator()
		if err := s.Schedule(delay, "x", &recorder{}, nil); err == nil {
			t.Errorf("Schedule(%g) accepted", delay)
		}
		if err := s.Run(1); err == nil {
			t.Errorf("Run after Schedule(%g) did not surface the error", delay)
		}
	}
	s := NewSimulator()
	if err := s.Schedule(1, "x", nil, nil); err == nil {
		t.Error("Schedule to nil module accepted")
	}
}

// constStepper is an analytic thermal model for engine tests: the
// temperature is ambient plus gain times total power of the last step.
type constStepper struct {
	ambientC float64
	gain     float64
	steps    int
}

func (c *constStepper) Step(dtSec float64, power []ChipletPowerW) (float64, error) {
	if dtSec <= 0 {
		return 0, fmt.Errorf("bad dt %g", dtSec)
	}
	total := 0.0
	for _, p := range power {
		total += p.ArrayW + p.SRAMW
	}
	c.steps++
	return c.ambientC + c.gain*total, nil
}

func testScenario(seed int64) (Scenario, Platform) {
	sc := Scenario{
		Seed:         seed,
		DurationSec:  20,
		ThermalDtSec: 0.25,
		Tenants: []Tenant{
			{Name: "ar", Arrival: ArrivalSpec{Kind: ArrivalDiurnal, RateRPS: 6, PeriodSec: 10}, SLASec: 0.5},
			{Name: "vr", Arrival: ArrivalSpec{Kind: ArrivalMMPP, RateRPS: 2}, SLASec: 0.4},
		},
		Throttle: Throttle{TripC: 80},
	}
	pl := Platform{
		Chiplets:   2,
		Chiplet:    []int{0, 1},
		ServiceSec: []float64{0.08, 0.12},
		ArrayW:     []float64{9, 14},
		SRAMW:      []float64{3, 5},
	}
	return sc, pl
}

// TestEngineDeterminism runs the same seeded scenario twice and demands
// bit-identical event logs and envelopes (the CI sim smoke re-checks
// this end to end through tesa-sim).
func TestEngineDeterminism(t *testing.T) {
	run := func() (*Result, []byte) {
		sc, pl := testScenario(42)
		var log bytes.Buffer
		res, err := Run(sc, pl, &constStepper{ambientC: 45, gain: 2.2}, &log)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res, log.Bytes()
	}
	r1, log1 := run()
	r2, log2 := run()
	if !bytes.Equal(log1, log2) {
		t.Fatal("event logs differ between identically-seeded runs")
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("results differ between identically-seeded runs:\n%+v\n%+v", r1, r2)
	}
	if len(log1) == 0 {
		t.Fatal("empty event log")
	}
	if !reflect.DeepEqual(r1.Envelope.TimesSec, r2.Envelope.TimesSec) || !reflect.DeepEqual(r1.Envelope.PeakC, r2.Envelope.PeakC) {
		t.Fatal("envelopes differ between identically-seeded runs")
	}
	// Different seeds must actually change the trace.
	sc, pl := testScenario(43)
	r3, err := Run(sc, pl, &constStepper{ambientC: 45, gain: 2.2}, nil)
	if err != nil {
		t.Fatalf("Run seed 43: %v", err)
	}
	if r3.Requests == r1.Requests && reflect.DeepEqual(r3.Envelope.PeakC, r1.Envelope.PeakC) {
		t.Fatal("seed change did not alter the run")
	}
}

// TestEngineAccounting sanity-checks conservation laws of one run.
func TestEngineAccounting(t *testing.T) {
	sc, pl := testScenario(1)
	res, err := Run(sc, pl, &constStepper{ambientC: 45, gain: 2.2}, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Requests != res.Completed+res.QueuedAtEnd {
		t.Fatalf("requests %d != completed %d + queued %d", res.Requests, res.Completed, res.QueuedAtEnd)
	}
	if res.Requests == 0 || res.Steps != 80 {
		t.Fatalf("requests=%d steps=%d (want >0 and 80 ticks over 20s at 0.25s)", res.Requests, res.Steps)
	}
	if len(res.Envelope.TimesSec) != res.Steps || len(res.Envelope.PeakC) != res.Steps {
		t.Fatalf("envelope length %d/%d, want %d", len(res.Envelope.TimesSec), len(res.Envelope.PeakC), res.Steps)
	}
	var completed, viol int64
	for _, ts := range res.Tenants {
		completed += ts.Completed
		viol += ts.SLAViolations
	}
	if completed != res.Completed {
		t.Fatalf("tenant completions %d != total %d", completed, res.Completed)
	}
	if viol > res.SLAViolations {
		t.Fatalf("tenant violations %d exceed total %d", viol, res.SLAViolations)
	}
	for c, u := range res.Utilization {
		if u < 0 || u > 1+1e-9 {
			t.Fatalf("chiplet %d utilization %g out of [0,1]", c, u)
		}
	}
	if res.PeakTempC <= 45 {
		t.Fatalf("peak temp %g never rose above ambient", res.PeakTempC)
	}
}

// TestEngineThrottles drives an overloaded burst scenario through a hot
// stepper and expects the governor to throttle and SLAs to blow.
func TestEngineThrottles(t *testing.T) {
	sc := Scenario{
		Seed:         7,
		DurationSec:  10,
		ThermalDtSec: 0.25,
		Tenants: []Tenant{{
			Name:    "burst",
			Arrival: ArrivalSpec{Kind: ArrivalMMPP, RateRPS: 4, BurstRPS: 40, MeanBurstSec: 2, MeanCalmSec: 1},
			SLASec:  0.2,
		}},
		Throttle: Throttle{TripC: 70},
	}
	pl := Platform{Chiplets: 1, Chiplet: []int{0}, ServiceSec: []float64{0.09}, ArrayW: []float64{20}, SRAMW: []float64{8}}
	res, err := Run(sc, pl, &constStepper{ambientC: 45, gain: 1.5}, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.ThrottleEvents == 0 || res.ThrottledSec == 0 {
		t.Fatalf("expected throttling, got %d events / %g s", res.ThrottleEvents, res.ThrottledSec)
	}
	if res.MinFreqFactor >= 1 {
		t.Fatalf("min freq factor %g never dropped", res.MinFreqFactor)
	}
	if res.SLAViolations == 0 {
		t.Fatal("overloaded burst scenario reported no SLA violations")
	}
}

// TestEngineStepperError propagates stepper failures as run errors.
func TestEngineStepperError(t *testing.T) {
	sc, pl := testScenario(3)
	bad := stepperFunc(func(float64, []ChipletPowerW) (float64, error) {
		return 0, fmt.Errorf("diverged")
	})
	if _, err := Run(sc, pl, bad, nil); err == nil {
		t.Fatal("stepper error not propagated")
	}
}

// stepperFunc adapts a function to ThermalStepper.
type stepperFunc func(float64, []ChipletPowerW) (float64, error)

func (f stepperFunc) Step(dt float64, p []ChipletPowerW) (float64, error) { return f(dt, p) }

// TestScenarioValidate covers the validation guards.
func TestScenarioValidate(t *testing.T) {
	sc, pl := testScenario(1)
	if err := sc.Validate(); err != nil {
		t.Fatalf("valid scenario rejected: %v", err)
	}
	bad := sc
	bad.DurationSec = math.NaN()
	if bad.Validate() == nil {
		t.Error("NaN duration accepted")
	}
	bad = sc
	bad.ThermalDtSec = 30
	if bad.Validate() == nil {
		t.Error("tick beyond horizon accepted")
	}
	bad = sc
	bad.Tenants = nil
	if bad.Validate() == nil {
		t.Error("tenantless scenario accepted")
	}
	bad = sc
	bad.Throttle.Levels = []float64{1, 1.2}
	if bad.Validate() == nil {
		t.Error("ascending throttle levels accepted")
	}
	badPl := pl
	badPl.Chiplet = []int{0, 5}
	if badPl.Validate(2) == nil {
		t.Error("out-of-range chiplet assignment accepted")
	}
	if (Platform{}).Validate(1) == nil {
		t.Error("empty platform accepted")
	}
}
