package jobspec

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"tesa/internal/core"
	"tesa/internal/des"
	"tesa/internal/dnn"
	"tesa/internal/faults"
	"tesa/internal/systolic"
)

// defaultThermalDtSec is the scenario thermal tick used when a sim
// section leaves thermal_dt_sec unset.
const defaultThermalDtSec = 0.05

// Resolved is a spec materialized into the core types: defaults filled,
// workload loaded, axes validated. It is the unit the executors (Run,
// the CLIs, tesa-server) consume.
type Resolved struct {
	// Kind is the validated job kind.
	Kind string
	// Workload is the loaded multi-DNN workload.
	Workload dnn.Workload
	// Opts and Cons are the evaluation configuration.
	Opts core.Options
	Cons core.Constraints
	// Space is the design space to search.
	Space core.Space
	// Seed is the optimizer seed (ignored by sweeps).
	Seed int64
	// ShardSize is the sweep shard granularity (0 = automatic).
	ShardSize int
	// ParetoFront is the front engine of a pareto job ("weights" or
	// "nsga2"); ParetoPoints is the weight-setting count of a weight
	// front, ParetoPop/ParetoGens the population shape of an NSGA-II
	// front (0 = engine defaults).
	ParetoFront  string
	ParetoPoints int
	ParetoPop    int
	ParetoGens   int
	// MaxFailures / FailFast / StageTimeout are the failure policies.
	MaxFailures  int
	FailFast     bool
	StageTimeout time.Duration
	// Faults is the raw fault-injection spec ("" = none); FaultPlan is
	// its compiled form (nil = none).
	Faults    string
	FaultPlan *faults.Plan
	// Deadline bounds the job's wall time (0 = none).
	Deadline time.Duration
	// SimPoint is the design point of a sim job; Scenario its
	// materialized dynamic scenario (seeded with Seed, throttle trip
	// defaulted to the temperature budget) and SimDraws the
	// distribution size (>= 1). Zero values for the other kinds.
	SimPoint core.DesignPoint
	Scenario des.Scenario
	SimDraws int
}

// Resolve materializes the spec: validates it, loads the workload
// (workload_file paths are resolved against baseDir when relative),
// overlays the option/constraint sections onto the paper defaults, and
// compiles the fault plan. The result is self-contained — executing it
// needs no further file access.
func (s *Spec) Resolve(baseDir string) (*Resolved, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	r := &Resolved{
		Kind:         s.Kind,
		Opts:         core.DefaultOptions(),
		Cons:         core.DefaultConstraints(),
		Seed:         1,
		ParetoFront:  "weights",
		ParetoPoints: 9,
	}
	w, err := s.resolveWorkload(baseDir)
	if err != nil {
		return nil, err
	}
	r.Workload = w
	if o := s.Options; o != nil {
		if o.Tech != nil {
			switch strings.ToLower(*o.Tech) {
			case "2d":
				r.Opts.Tech = core.Tech2D
			case "3d":
				r.Opts.Tech = core.Tech3D
			default:
				return nil, fmt.Errorf("jobspec: unknown tech %q (want 2d or 3d)", *o.Tech)
			}
		}
		if o.FreqMHz != nil {
			r.Opts.FreqHz = *o.FreqMHz * 1e6
		}
		if o.Dataflow != nil {
			switch strings.ToLower(*o.Dataflow) {
			case "os":
				r.Opts.Dataflow = systolic.OutputStationary
			case "ws":
				r.Opts.Dataflow = systolic.WeightStationary
			default:
				return nil, fmt.Errorf("jobspec: unknown dataflow %q (want os or ws)", *o.Dataflow)
			}
		}
		if o.Grid != nil {
			r.Opts.Grid = *o.Grid
		}
		if o.Alpha != nil {
			r.Opts.Alpha = *o.Alpha
		}
		if o.Beta != nil {
			r.Opts.Beta = *o.Beta
		}
		if o.ThermalFast != nil {
			r.Opts.ThermalFast = *o.ThermalFast
		}
		if o.SurrogateBandC != nil {
			r.Opts.SurrogateBandC = *o.SurrogateBandC
		}
		if o.Surrogate != nil {
			r.Opts.Surrogate = *o.Surrogate
		}
		if o.SurrogateK != nil {
			r.Opts.SurrogateK = *o.SurrogateK
		}
	}
	if c := s.Constraints; c != nil {
		if c.FPS != nil {
			r.Cons.FPS = *c.FPS
		}
		if c.PowerW != nil {
			r.Cons.PowerBudgetW = *c.PowerW
		}
		if c.TempC != nil {
			r.Cons.TempBudgetC = *c.TempC
		}
		if c.InterposerMM != nil {
			r.Cons.InterposerMM = *c.InterposerMM
		}
	}
	if err := r.Opts.Validate(); err != nil {
		return nil, fmt.Errorf("jobspec: %w", err)
	}
	if err := r.Cons.Validate(); err != nil {
		return nil, fmt.Errorf("jobspec: %w", err)
	}
	r.Space, err = s.resolveSpace()
	if err != nil {
		return nil, err
	}
	if s.Seed != nil {
		r.Seed = *s.Seed
	}
	if s.Sweep != nil {
		r.ShardSize = s.Sweep.ShardSize
	}
	if p := s.Pareto; p != nil {
		if p.Front != "" {
			r.ParetoFront = p.Front
		}
		if p.Points != 0 {
			r.ParetoPoints = p.Points
		}
		r.ParetoPop = p.Pop
		r.ParetoGens = p.Gens
	}
	if p := s.Policies; p != nil {
		r.MaxFailures = p.MaxFailures
		r.FailFast = p.FailFast
		r.StageTimeout = time.Duration(p.StageTimeoutMS) * time.Millisecond
		r.Faults = p.Faults
		if p.Faults != "" {
			plan, err := faults.Parse(p.Faults)
			if err != nil {
				return nil, fmt.Errorf("jobspec: faults: %w", err)
			}
			r.FaultPlan = plan
		}
	}
	if s.DeadlineSec > 0 {
		r.Deadline = time.Duration(s.DeadlineSec * float64(time.Second))
	}
	if s.Kind == KindSim {
		if err := s.resolveSim(r); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// resolveSim materializes the sim section into a validated scenario:
// the spec seed becomes the scenario seed, an unset tick takes the
// default, and an absent throttle section trips at the job's
// temperature budget with the standard DVFS ladder.
func (s *Spec) resolveSim(r *Resolved) error {
	sim := s.Sim
	r.SimPoint = core.DesignPoint{ArrayDim: sim.ArrayDim, ICSUM: sim.ICSUM}
	r.SimDraws = sim.Draws
	if r.SimDraws < 1 {
		r.SimDraws = 1
	}
	sc := des.Scenario{
		Seed:         r.Seed,
		DurationSec:  sim.DurationSec,
		ThermalDtSec: sim.ThermalDtSec,
		Tenants:      sim.Tenants,
	}
	if sc.ThermalDtSec == 0 {
		sc.ThermalDtSec = defaultThermalDtSec
	}
	if sim.Throttle != nil {
		sc.Throttle = *sim.Throttle
	} else {
		sc.Throttle = des.Throttle{TripC: r.Cons.TempBudgetC}
	}
	if err := sc.Validate(); err != nil {
		return fmt.Errorf("jobspec: %w", err)
	}
	r.Scenario = sc
	return nil
}

// resolveWorkload loads the spec's workload: inline JSON, a file
// reference, a built-in name, or (absent all three) the AR/VR default.
func (s *Spec) resolveWorkload(baseDir string) (dnn.Workload, error) {
	switch {
	case len(s.Workload) > 0:
		w, err := dnn.UnmarshalWorkload(s.Workload)
		if err != nil {
			return dnn.Workload{}, fmt.Errorf("jobspec: inline workload: %w", err)
		}
		return w, nil
	case s.WorkloadFile != "":
		path := s.WorkloadFile
		if !filepath.IsAbs(path) && baseDir != "" {
			path = filepath.Join(baseDir, path)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return dnn.Workload{}, fmt.Errorf("jobspec: workload_file: %w", err)
		}
		w, err := dnn.UnmarshalWorkload(data)
		if err != nil {
			return dnn.Workload{}, fmt.Errorf("jobspec: workload_file %s: %w", path, err)
		}
		return w, nil
	case s.WorkloadRef == "" || strings.EqualFold(s.WorkloadRef, "arvr"):
		return dnn.ARVRWorkload(), nil
	default:
		return dnn.Workload{}, fmt.Errorf("jobspec: unknown workload_ref %q (built-ins: arvr)", s.WorkloadRef)
	}
}

// resolveSpace materializes the space section; absent, each kind gets
// its CLI default — the Table II space for optimize and pareto, the
// exhaustively-enumerable validation space for sweep.
func (s *Spec) resolveSpace() (core.Space, error) {
	if s.Space == nil {
		if s.Kind == KindSweep {
			return core.ValidationSpace(), nil
		}
		return core.DefaultSpace(), nil
	}
	var sp core.Space
	switch {
	case s.Space.Preset == "validation":
		sp = core.ValidationSpace()
	case s.Space.Preset == "default":
		sp = core.DefaultSpace()
	default:
		sp = core.Space{ArrayDims: s.Space.ArrayDims, ICSUMs: s.Space.ICSUMs}
	}
	if err := sp.Validate(); err != nil {
		return core.Space{}, fmt.Errorf("jobspec: %w", err)
	}
	return sp, nil
}
