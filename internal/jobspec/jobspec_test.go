package jobspec

import (
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"tesa/internal/core"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// TestGoldenRoundTrip pins the canonical encoding: every spec in
// testdata decodes strictly, re-encodes to its golden file byte for
// byte, and the golden re-decodes to an identical spec.
func TestGoldenRoundTrip(t *testing.T) {
	for _, name := range []string{"optimize", "sweep", "pareto", "sim"} {
		t.Run(name, func(t *testing.T) {
			in := filepath.Join("testdata", name+".json")
			golden := filepath.Join("testdata", name+".golden.json")
			spec, err := Load(in)
			if err != nil {
				t.Fatalf("Load(%s): %v", in, err)
			}
			out, err := spec.Marshal()
			if err != nil {
				t.Fatalf("Marshal: %v", err)
			}
			if *update {
				if err := os.WriteFile(golden, out, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("golden missing (run with -update): %v", err)
			}
			if string(out) != string(want) {
				t.Errorf("canonical encoding drifted from %s:\n got: %s\nwant: %s", golden, out, want)
			}
			// The golden itself must round-trip to the same spec.
			again, err := Parse(want)
			if err != nil {
				t.Fatalf("Parse(golden): %v", err)
			}
			a, _ := json.Marshal(spec)
			b, _ := json.Marshal(again)
			if string(a) != string(b) {
				t.Errorf("golden round-trip changed the spec:\n got: %s\nwant: %s", b, a)
			}
		})
	}
}

func TestParseStrict(t *testing.T) {
	cases := []struct {
		name, in, wantErr string
	}{
		{"unknown top-level field",
			`{"version":"tesa.jobspec/v1","kind":"optimize","kinds":"x"}`, "unknown field"},
		{"unknown nested field",
			`{"version":"tesa.jobspec/v1","kind":"optimize","options":{"freq_ghz":1}}`, "unknown field"},
		{"missing version", `{"kind":"optimize"}`, "missing version"},
		{"wrong version", `{"version":"tesa.jobspec/v0","kind":"optimize"}`, "unsupported version"},
		{"missing kind", `{"version":"tesa.jobspec/v1"}`, "missing kind"},
		{"unknown kind", `{"version":"tesa.jobspec/v1","kind":"search"}`, "unknown kind"},
		{"trailing data", `{"version":"tesa.jobspec/v1","kind":"optimize"}{}`, "trailing data"},
		{"two workload sources",
			`{"version":"tesa.jobspec/v1","kind":"optimize","workload_ref":"arvr","workload_file":"w.json"}`,
			"mutually exclusive"},
		{"preset plus axes",
			`{"version":"tesa.jobspec/v1","kind":"optimize","space":{"preset":"default","array_dims":[64]}}`,
			"mutually exclusive"},
		{"half an explicit space",
			`{"version":"tesa.jobspec/v1","kind":"optimize","space":{"array_dims":[64]}}`,
			"both array_dims and ics_ums"},
		{"sweep section on optimize",
			`{"version":"tesa.jobspec/v1","kind":"optimize","sweep":{"shard_size":4}}`,
			"sweep section"},
		{"pareto section on sweep",
			`{"version":"tesa.jobspec/v1","kind":"sweep","pareto":{"points":3}}`,
			"pareto section"},
		{"one pareto point",
			`{"version":"tesa.jobspec/v1","kind":"pareto","pareto":{"points":1}}`,
			"at least 2"},
		{"negative deadline",
			`{"version":"tesa.jobspec/v1","kind":"optimize","deadline_sec":-1}`,
			"negative deadline"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse([]byte(c.in))
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("Parse(%s) err = %v, want containing %q", c.in, err, c.wantErr)
			}
		})
	}
}

func TestResolveDefaults(t *testing.T) {
	spec, err := Parse([]byte(`{"version":"tesa.jobspec/v1","kind":"optimize"}`))
	if err != nil {
		t.Fatal(err)
	}
	r, err := spec.Resolve("")
	if err != nil {
		t.Fatal(err)
	}
	if r.Opts != core.DefaultOptions() {
		t.Errorf("defaults drifted: %+v", r.Opts)
	}
	if r.Cons != core.DefaultConstraints() {
		t.Errorf("constraint defaults drifted: %+v", r.Cons)
	}
	if r.Space.Fingerprint() != core.DefaultSpace().Fingerprint() {
		t.Error("optimize default space is not the Table II space")
	}
	if r.Seed != 1 || r.ParetoPoints != 9 {
		t.Errorf("seed/points defaults drifted: %d %d", r.Seed, r.ParetoPoints)
	}
	if r.Workload.Name == "" || len(r.Workload.Networks) != 6 {
		t.Errorf("default workload is not the six-DNN AR/VR set: %q", r.Workload.Name)
	}

	sweep, err := Parse([]byte(`{"version":"tesa.jobspec/v1","kind":"sweep"}`))
	if err != nil {
		t.Fatal(err)
	}
	rs, err := sweep.Resolve("")
	if err != nil {
		t.Fatal(err)
	}
	if rs.Space.Fingerprint() != core.ValidationSpace().Fingerprint() {
		t.Error("sweep default space is not the validation space")
	}
}

func TestResolveOverlays(t *testing.T) {
	spec, err := Load(filepath.Join("testdata", "optimize.json"))
	if err != nil {
		t.Fatal(err)
	}
	r, err := spec.Resolve("testdata")
	if err != nil {
		t.Fatal(err)
	}
	if r.Opts.Grid != 16 || !r.Opts.ThermalFast || r.Opts.FreqHz != 400e6 {
		t.Errorf("options overlay lost: %+v", r.Opts)
	}
	if r.Cons.FPS != 30 || r.Cons.TempBudgetC != 75 {
		t.Errorf("constraints overlay lost: %+v", r.Cons)
	}
	if r.Seed != 7 || r.MaxFailures != 5 {
		t.Errorf("seed/policies lost: seed=%d maxFailures=%d", r.Seed, r.MaxFailures)
	}
	if r.Deadline != 120*time.Second {
		t.Errorf("deadline lost: %v", r.Deadline)
	}
	if r.Space.Fingerprint() != core.ValidationSpace().Fingerprint() {
		t.Error("space preset lost")
	}
}

func TestResolveErrors(t *testing.T) {
	cases := []struct {
		name, in, wantErr string
	}{
		{"bad tech",
			`{"version":"tesa.jobspec/v1","kind":"optimize","options":{"tech":"4d"}}`, "unknown tech"},
		{"bad dataflow",
			`{"version":"tesa.jobspec/v1","kind":"optimize","options":{"dataflow":"rs"}}`, "unknown dataflow"},
		{"bad workload ref",
			`{"version":"tesa.jobspec/v1","kind":"optimize","workload_ref":"mlperf"}`, "unknown workload_ref"},
		{"bad fault spec",
			`{"version":"tesa.jobspec/v1","kind":"optimize","policies":{"faults":"zap@nowhere"}}`, "faults"},
		{"invalid space axis",
			`{"version":"tesa.jobspec/v1","kind":"optimize","space":{"array_dims":[-4],"ics_ums":[0]}}`,
			"array dim"},
		{"missing workload file",
			`{"version":"tesa.jobspec/v1","kind":"optimize","workload_file":"no/such.json"}`, "workload_file"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			spec, err := Parse([]byte(c.in))
			if err != nil {
				t.Fatalf("Parse: %v", err)
			}
			_, err = spec.Resolve("")
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("Resolve err = %v, want containing %q", err, c.wantErr)
			}
		})
	}
}

// tinySpec is a fast optimize job for execution tests: a 3x2 space at
// a coarse grid.
const tinySpec = `{
  "version": "tesa.jobspec/v1",
  "kind": "optimize",
  "options": {"tech": "2d", "freq_mhz": 400, "grid": 16},
  "constraints": {"fps": 15, "temp_c": 85},
  "space": {"array_dims": [180, 200, 220], "ics_ums": [0, 500, 1000]},
  "seed": 1
}`

// TestRunMatchesLibraryPath proves the Run executor is the library path:
// the same resolved spec driven directly through OptimizeContext yields
// a bit-identical wire result.
func TestRunMatchesLibraryPath(t *testing.T) {
	spec, err := Parse([]byte(tinySpec))
	if err != nil {
		t.Fatal(err)
	}
	r, err := spec.Resolve("")
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(context.Background(), r, Runtime{})
	if err != nil {
		t.Fatal(err)
	}

	ev, err := core.NewEvaluator(r.Workload, r.Opts, r.Cons, core.Models{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ev.OptimizeContext(context.Background(), r.Space, r.Seed, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := FromOptimize(res)
	a, _ := json.Marshal(got)
	b, _ := json.Marshal(want)
	if string(a) != string(b) {
		t.Errorf("Run drifted from the library path:\n got: %s\nwant: %s", a, b)
	}
	if !got.Found || got.Best == nil {
		t.Fatalf("tiny optimize found nothing: %s", a)
	}
}

// TestRunSweepAndPareto smoke-runs the other two kinds and checks their
// wire-form tallies are coherent.
func TestRunSweepAndPareto(t *testing.T) {
	sweep := `{
	  "version": "tesa.jobspec/v1",
	  "kind": "sweep",
	  "options": {"grid": 8},
	  "constraints": {"fps": 15, "temp_c": 85},
	  "space": {"array_dims": [180, 200, 220], "ics_ums": [0, 1000]}
	}`
	spec, err := Parse([]byte(sweep))
	if err != nil {
		t.Fatal(err)
	}
	r, err := spec.Resolve("")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), r, Runtime{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != KindSweep || res.Total != 6 || res.Evaluated != 6 {
		t.Errorf("sweep tallies off: %+v", res)
	}

	pareto := `{
	  "version": "tesa.jobspec/v1",
	  "kind": "pareto",
	  "options": {"grid": 8},
	  "constraints": {"fps": 15, "temp_c": 85},
	  "space": {"array_dims": [180, 200, 220], "ics_ums": [0, 1000]},
	  "pareto": {"points": 3}
	}`
	spec, err = Parse([]byte(pareto))
	if err != nil {
		t.Fatal(err)
	}
	r, err = spec.Resolve("")
	if err != nil {
		t.Fatal(err)
	}
	res, err = Run(context.Background(), r, Runtime{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != KindPareto || len(res.Front) != 3 {
		t.Errorf("pareto front off: %+v", res)
	}
	for i, fp := range res.Front {
		if fp.Found && fp.Best == nil {
			t.Errorf("front[%d] found without a best", i)
		}
	}
}

// TestResolveSurrogateAndFront covers the learned-surrogate overlay and
// the pareto front-engine selection: the pointer fields reach
// core.Options, front defaults to the weight sweep, and the nsga2
// section validates strictly.
func TestResolveSurrogateAndFront(t *testing.T) {
	spec, err := Parse([]byte(`{
	  "version": "tesa.jobspec/v1",
	  "kind": "pareto",
	  "options": {"surrogate": true, "surrogate_k": 5},
	  "pareto": {"front": "nsga2", "pop": 6, "gens": 2}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	r, err := spec.Resolve("")
	if err != nil {
		t.Fatal(err)
	}
	if !r.Opts.Surrogate || r.Opts.SurrogateK != 5 {
		t.Errorf("surrogate overlay lost: %+v", r.Opts)
	}
	if r.ParetoFront != "nsga2" || r.ParetoPop != 6 || r.ParetoGens != 2 {
		t.Errorf("front section lost: %q pop=%d gens=%d", r.ParetoFront, r.ParetoPop, r.ParetoGens)
	}

	plain, err := Parse([]byte(`{"version":"tesa.jobspec/v1","kind":"pareto"}`))
	if err != nil {
		t.Fatal(err)
	}
	rp, err := plain.Resolve("")
	if err != nil {
		t.Fatal(err)
	}
	if rp.ParetoFront != "weights" || rp.Opts.Surrogate {
		t.Errorf("defaults drifted: front=%q surrogate=%v", rp.ParetoFront, rp.Opts.Surrogate)
	}

	for _, bad := range []string{
		`{"version":"tesa.jobspec/v1","kind":"pareto","pareto":{"front":"hull"}}`,
		`{"version":"tesa.jobspec/v1","kind":"pareto","pareto":{"pop":8}}`,
		`{"version":"tesa.jobspec/v1","kind":"pareto","pareto":{"front":"nsga2","points":5}}`,
		`{"version":"tesa.jobspec/v1","kind":"pareto","pareto":{"front":"nsga2","pop":-1}}`,
	} {
		if _, err := Parse([]byte(bad)); err == nil {
			t.Errorf("accepted invalid pareto section: %s", bad)
		}
	}
}

// TestRunNSGA2Front executes an nsga2 pareto job end to end: the wire
// result carries the engine tag and a non-empty front whose members all
// have full projections.
func TestRunNSGA2Front(t *testing.T) {
	spec, err := Parse([]byte(`{
	  "version": "tesa.jobspec/v1",
	  "kind": "pareto",
	  "options": {"grid": 8, "surrogate": true},
	  "constraints": {"fps": 15, "temp_c": 85},
	  "space": {"array_dims": [180, 200, 220], "ics_ums": [0, 1000]},
	  "pareto": {"front": "nsga2", "pop": 4, "gens": 2},
	  "seed": 1
	}`))
	if err != nil {
		t.Fatal(err)
	}
	r, err := spec.Resolve("")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), r, Runtime{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != KindPareto || res.FrontEngine != "nsga2" {
		t.Fatalf("engine tag off: %+v", res)
	}
	if !res.Found || len(res.Front) == 0 {
		t.Fatal("empty front on a feasible space")
	}
	for i, fp := range res.Front {
		if !fp.Found || fp.Best == nil {
			t.Errorf("front[%d] missing its evaluation", i)
		}
		if fp.Alpha != 0 || fp.Beta != 0 {
			t.Errorf("front[%d] carries weight-sweep fields: %+v", i, fp)
		}
	}
}

// TestRunDeadline proves the spec's own deadline cancels a job.
func TestRunDeadline(t *testing.T) {
	spec, err := Parse([]byte(`{
	  "version": "tesa.jobspec/v1",
	  "kind": "sweep",
	  "space": {"preset": "default"},
	  "options": {"grid": 32},
	  "deadline_sec": 0.05
	}`))
	if err != nil {
		t.Fatal(err)
	}
	r, err := spec.Resolve("")
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(context.Background(), r, Runtime{})
	if err == nil || (err != context.DeadlineExceeded && !strings.Contains(err.Error(), "deadline")) {
		t.Errorf("deadline_sec did not cancel the job: %v", err)
	}
}
