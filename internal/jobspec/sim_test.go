package jobspec

import (
	"context"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"tesa/internal/core"
)

// TestSimSpecValidation pins the sim-section pairing and field rules.
func TestSimSpecValidation(t *testing.T) {
	cases := []struct {
		name, in, wantErr string
	}{
		{"sim section on optimize",
			`{"version":"tesa.jobspec/v1","kind":"optimize","sim":{"array_dim":200,"duration_sec":1,"tenants":[]}}`,
			"sim section"},
		{"sim job without section",
			`{"version":"tesa.jobspec/v1","kind":"sim"}`,
			"needs a sim section"},
		{"non-positive array dim",
			`{"version":"tesa.jobspec/v1","kind":"sim","sim":{"array_dim":0,"duration_sec":1,"tenants":[{"name":"a","arrival":{"kind":"poisson","rate_rps":1},"sla_sec":1}]}}`,
			"array_dim"},
		{"negative ics spacing",
			`{"version":"tesa.jobspec/v1","kind":"sim","sim":{"array_dim":64,"ics_um":-1,"duration_sec":1,"tenants":[{"name":"a","arrival":{"kind":"poisson","rate_rps":1},"sla_sec":1}]}}`,
			"ics_um"},
		{"negative draws",
			`{"version":"tesa.jobspec/v1","kind":"sim","sim":{"array_dim":64,"duration_sec":1,"draws":-2,"tenants":[{"name":"a","arrival":{"kind":"poisson","rate_rps":1},"sla_sec":1}]}}`,
			"draws"},
		{"space section on sim",
			`{"version":"tesa.jobspec/v1","kind":"sim","space":{"preset":"default"},"sim":{"array_dim":64,"duration_sec":1,"tenants":[{"name":"a","arrival":{"kind":"poisson","rate_rps":1},"sla_sec":1}]}}`,
			"space section"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse([]byte(c.in))
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("Parse err = %v, want containing %q", err, c.wantErr)
			}
		})
	}
}

// TestResolveSim pins the scenario materialization: the spec seed seeds
// the scenario, an unset tick takes the 0.05 s default, an absent
// throttle section trips at the temperature budget, and draws floor at
// one.
func TestResolveSim(t *testing.T) {
	minimal := `{
	  "version": "tesa.jobspec/v1",
	  "kind": "sim",
	  "constraints": {"temp_c": 75},
	  "seed": 9,
	  "sim": {
	    "array_dim": 200, "ics_um": 1700, "duration_sec": 1,
	    "tenants": [{"name": "a", "network": "MobileNet",
	                 "arrival": {"kind": "poisson", "rate_rps": 2}, "sla_sec": 0.5}]
	  }
	}`
	spec, err := Parse([]byte(minimal))
	if err != nil {
		t.Fatal(err)
	}
	r, err := spec.Resolve("")
	if err != nil {
		t.Fatal(err)
	}
	if r.SimPoint.ArrayDim != 200 || r.SimPoint.ICSUM != 1700 {
		t.Errorf("sim point lost: %+v", r.SimPoint)
	}
	if r.Scenario.Seed != 9 {
		t.Errorf("scenario seed = %d, want the spec seed 9", r.Scenario.Seed)
	}
	if r.Scenario.ThermalDtSec != defaultThermalDtSec {
		t.Errorf("thermal dt = %g, want default %g", r.Scenario.ThermalDtSec, defaultThermalDtSec)
	}
	if r.Scenario.Throttle.TripC != 75 {
		t.Errorf("throttle trip = %g, want the 75 C budget", r.Scenario.Throttle.TripC)
	}
	if r.SimDraws != 1 {
		t.Errorf("draws = %d, want floor of 1", r.SimDraws)
	}

	spec, err = Load(filepath.Join("testdata", "sim.json"))
	if err != nil {
		t.Fatal(err)
	}
	r, err = spec.Resolve("testdata")
	if err != nil {
		t.Fatal(err)
	}
	if r.Scenario.ThermalDtSec != 0.1 || r.SimDraws != 3 || len(r.Scenario.Tenants) != 2 {
		t.Errorf("sim overlay lost: dt=%g draws=%d tenants=%d",
			r.Scenario.ThermalDtSec, r.SimDraws, len(r.Scenario.Tenants))
	}

	// An invalid scenario (zero-rate tenant) fails at resolve, not run.
	bad := strings.Replace(minimal, `"rate_rps": 2`, `"rate_rps": 0`, 1)
	spec, err = Parse([]byte(bad))
	if err != nil {
		t.Fatal(err)
	}
	if _, err = spec.Resolve(""); err == nil {
		t.Error("zero-rate tenant resolved without error")
	}
}

// TestRunSim executes the testdata sim job end to end and checks the
// wire form is coherent and deterministic.
func TestRunSim(t *testing.T) {
	spec, err := Load(filepath.Join("testdata", "sim.json"))
	if err != nil {
		t.Fatal(err)
	}
	r, err := spec.Resolve("testdata")
	if err != nil {
		t.Fatal(err)
	}
	run := func() []byte {
		res, err := Run(context.Background(), r, Runtime{})
		if err != nil {
			t.Fatal(err)
		}
		b, _ := json.Marshal(res)
		return b
	}
	b1 := run()
	var res Result
	if err := json.Unmarshal(b1, &res); err != nil {
		t.Fatal(err)
	}
	if res.Kind != KindSim || !res.Found || res.Sim == nil || res.Best == nil {
		t.Fatalf("sim result incoherent: %s", b1)
	}
	s := res.Sim
	if s.ArrayDim != 200 || s.ICSUM != 1700 || s.Seed != 42 || s.Draws != 3 {
		t.Errorf("sim identity drifted: %+v", s)
	}
	if s.Requests == 0 || s.PeakTempC <= 0 || len(s.Tenants) != 2 {
		t.Errorf("sim run saw no traffic or heat: %+v", s)
	}
	if s.CombinedObjective < s.StaticObjective {
		t.Errorf("combined objective %g below static %g", s.CombinedObjective, s.StaticObjective)
	}
	if b2 := run(); string(b1) != string(b2) {
		t.Errorf("sim job is not deterministic:\n%s\n%s", b1, b2)
	}

	// A point that cannot fit the interposer is Found=false, not an error.
	tight := *r
	tight.Cons.InterposerMM = 3
	tight.SimPoint = core.DesignPoint{ArrayDim: 256, ICSUM: 1000}
	miss, err := Run(context.Background(), &tight, Runtime{})
	if err != nil {
		t.Fatalf("non-fitting sim point errored: %v", err)
	}
	if miss.Found || miss.Sim != nil {
		t.Errorf("non-fitting point reported a sim outcome: %+v", miss)
	}
}
