package jobspec

import (
	"math"

	"tesa/internal/core"
	"tesa/internal/des"
)

// Result is the JSON-safe outcome of a job: the structured subset of
// the engine results that serializes deterministically (no durations,
// no NaN — every float is finite by construction), so the same spec run
// through the library, a CLI, or tesa-server marshals to identical
// bytes.
type Result struct {
	// Kind echoes the job kind that produced the result.
	Kind string `json:"kind"`
	// Found is false when the run saw no feasible configuration (the
	// paper's "solution does not exist" outcome).
	Found bool `json:"found"`
	// Best is the winning MCM (absent when Found is false).
	Best *Best `json:"best,omitempty"`
	// Evaluations counts annealer evaluations including cache hits;
	// Explored counts distinct design points actually evaluated
	// (optimize and pareto jobs).
	Evaluations int `json:"evaluations,omitempty"`
	Explored    int `json:"explored,omitempty"`
	// Feasible / Evaluated / Resumed / Total are the sweep tallies.
	Feasible  int `json:"feasible,omitempty"`
	Evaluated int `json:"evaluated,omitempty"`
	Resumed   int `json:"resumed,omitempty"`
	Total     int `json:"total,omitempty"`
	// Quarantined counts distinct design points whose evaluation failed;
	// the engines skipped them and continued.
	Quarantined int `json:"quarantined,omitempty"`
	// Screened counts candidates rejected by the surrogate pre-screen
	// (only with thermal_fast).
	Screened int `json:"screened,omitempty"`
	// FrontEngine says which engine traced Front: "weights" (the Eq. 6
	// weight sweep, in weight order) or "nsga2" (the non-dominated
	// population front, sorted by cost).
	FrontEngine string `json:"front_engine,omitempty"`
	// Front is the traced front of a pareto job.
	Front []FrontPoint `json:"front,omitempty"`
	// Sim is the dynamic-workload outcome of a sim job (absent when the
	// point does not fit the interposer — Found is false then).
	Sim *SimOutcome `json:"sim,omitempty"`
}

// Best is the JSON-safe projection of a winning Evaluation.
type Best struct {
	// ArrayDim and ICSUM are the design point; SRAMKB is the derived
	// per-SRAM capacity.
	ArrayDim int `json:"array_dim"`
	ICSUM    int `json:"ics_um"`
	SRAMKB   int `json:"sram_kb"`
	// MeshRows x MeshCols is the derived chiplet mesh.
	MeshRows int `json:"mesh_rows"`
	MeshCols int `json:"mesh_cols"`
	// Objective is the Eq. (6) value; the remaining fields are the
	// table-level characterization of the MCM.
	Objective   float64 `json:"objective"`
	PeakTempC   float64 `json:"peak_temp_c"`
	TotalPowerW float64 `json:"total_power_w"`
	MakespanMS  float64 `json:"makespan_ms"`
	CostUSD     float64 `json:"cost_usd"`
	DRAMPowerW  float64 `json:"dram_power_w"`
}

// FrontPoint is one weight setting of a pareto job's traced front.
type FrontPoint struct {
	// Alpha and Beta are the Eq. (6) weights of this setting.
	Alpha float64 `json:"alpha"`
	Beta  float64 `json:"beta"`
	// Found is false when this weight setting had no feasible MCM.
	Found bool `json:"found"`
	// Best is the setting's winner (absent when Found is false).
	Best *Best `json:"best,omitempty"`
	// Duplicate marks a winner already traced by an earlier weight.
	Duplicate bool `json:"duplicate,omitempty"`
	// Crowding is the NSGA-II crowding distance (nsga2 fronts only;
	// -1 encodes the +Inf of an objective-extreme member so the result
	// stays finite JSON). Zero on weight fronts.
	Crowding float64 `json:"crowding,omitempty"`
}

// SimOutcome is the JSON-safe outcome of a sim job: the base-seed run's
// summary, the N-draw scenario-distribution score, and the
// static-vs-dynamic objective comparison. The static characterization
// of the point itself rides in Result.Best.
type SimOutcome struct {
	// ArrayDim and ICSUM are the simulated design point; Seed is the
	// base scenario seed and Draws the distribution size.
	ArrayDim int   `json:"array_dim"`
	ICSUM    int   `json:"ics_um"`
	Seed     int64 `json:"seed"`
	Draws    int   `json:"draws"`
	// DurationSec through PeakTempC summarize the base-seed run.
	DurationSec    float64 `json:"duration_sec"`
	Requests       int64   `json:"requests"`
	Completed      int64   `json:"completed"`
	SLAViolations  int64   `json:"sla_violations"`
	ThrottleEvents int64   `json:"throttle_events"`
	ThrottledSec   float64 `json:"throttled_sec"`
	MinFreqFactor  float64 `json:"min_freq_factor"`
	PeakTempC      float64 `json:"peak_temp_c"`
	// Tenants are the base-seed per-tenant tallies and latency
	// percentiles.
	Tenants []des.TenantStats `json:"tenants"`
	// Score aggregates the N-draw scenario distribution.
	Score core.SimScore `json:"score"`
	// StaticObjective is the steady-state Eq. (6) value of the point;
	// CombinedObjective inflates it by the dynamic penalty
	// (static x (1 + penalty)) — the value sim-aware rankings sort by.
	StaticObjective   float64 `json:"static_objective"`
	CombinedObjective float64 `json:"combined_objective"`
}

// fin clamps non-finite values to 0 so a Result always marshals to
// valid JSON (PeakTempC is NaN under thermal-disabled baselines).
func fin(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

// bestOf projects an Evaluation into the wire form.
func bestOf(ev *core.Evaluation) *Best {
	return &Best{
		ArrayDim:    ev.Point.ArrayDim,
		ICSUM:       ev.Point.ICSUM,
		SRAMKB:      ev.Point.SRAMKB(),
		MeshRows:    ev.Mesh.Rows,
		MeshCols:    ev.Mesh.Cols,
		Objective:   fin(ev.Objective),
		PeakTempC:   fin(ev.PeakTempC),
		TotalPowerW: fin(ev.TotalPowerW),
		MakespanMS:  fin(ev.MakespanSec * 1e3),
		CostUSD:     fin(ev.MCMCost.Total),
		DRAMPowerW:  fin(ev.DRAMPowerW),
	}
}

// FromOptimize projects an optimizer outcome into the wire form.
func FromOptimize(res *core.OptimizeResult) *Result {
	out := &Result{
		Kind:        KindOptimize,
		Found:       res.Found,
		Evaluations: res.Evaluations,
		Explored:    res.Explored,
		Quarantined: res.Quarantined,
		Screened:    res.Screened,
	}
	if res.Found && res.Best != nil {
		out.Best = bestOf(res.Best)
	}
	return out
}

// FromSim projects a sim run — the point's static evaluation, its
// base-seed DES run, and the N-draw distribution score — into the wire
// form.
func FromSim(ev *core.Evaluation, base *des.Result, score *core.SimScore) *Result {
	sc := *score
	sc.MeanSLARate = fin(sc.MeanSLARate)
	sc.MaxSLARate = fin(sc.MaxSLARate)
	sc.MeanThrottledFrac = fin(sc.MeanThrottledFrac)
	sc.MeanPeakC = fin(sc.MeanPeakC)
	sc.MaxPeakC = fin(sc.MaxPeakC)
	sc.WorstP99Sec = fin(sc.WorstP99Sec)
	tenants := make([]des.TenantStats, len(base.Tenants))
	for i, ts := range base.Tenants {
		ts.P50Sec = fin(ts.P50Sec)
		ts.P95Sec = fin(ts.P95Sec)
		ts.P99Sec = fin(ts.P99Sec)
		tenants[i] = ts
	}
	return &Result{
		Kind:  KindSim,
		Found: true,
		Best:  bestOf(ev),
		Sim: &SimOutcome{
			ArrayDim:          ev.Point.ArrayDim,
			ICSUM:             ev.Point.ICSUM,
			Seed:              base.Seed,
			Draws:             score.Draws,
			DurationSec:       fin(base.DurationSec),
			Requests:          base.Requests,
			Completed:         base.Completed,
			SLAViolations:     base.SLAViolations,
			ThrottleEvents:    base.ThrottleEvents,
			ThrottledSec:      fin(base.ThrottledSec),
			MinFreqFactor:     fin(base.MinFreqFactor),
			PeakTempC:         fin(base.PeakTempC),
			Tenants:           tenants,
			Score:             sc,
			StaticObjective:   fin(ev.Objective),
			CombinedObjective: fin(score.CombinedObjective(ev.Objective)),
		},
	}
}

// FromSweep projects a sweep outcome into the wire form.
func FromSweep(res *core.ExhaustiveResult) *Result {
	out := &Result{
		Kind:        KindSweep,
		Found:       res.Best != nil,
		Feasible:    res.Feasible,
		Evaluated:   res.Evaluated,
		Resumed:     res.Resumed,
		Total:       res.Total,
		Quarantined: res.Quarantined,
	}
	if res.Best != nil {
		out.Best = bestOf(res.Best)
	}
	return out
}
