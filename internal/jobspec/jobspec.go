// Package jobspec defines the versioned JSON job specification shared
// by the tesa CLIs and tesa-server: one schema describes an optimize,
// sweep, pareto, or sim run — workload, evaluation options,
// constraints, design space or scenario, and failure policies — so a
// job file handed to `tesa -job`, `tesa-sweep -job`, `tesa-pareto
// -job`, `tesa-sim -job`, or POSTed to `tesa-server` means exactly the
// same run everywhere.
//
// The schema is strict and versioned: decoding rejects unknown fields
// (a typo fails loudly instead of silently falling back to a default)
// and every spec must carry the exact Version string, so a file written
// for a future revision is refused rather than half-understood.
//
// A minimal optimize spec:
//
//	{
//	  "version": "tesa.jobspec/v1",
//	  "kind": "optimize",
//	  "constraints": {"fps": 30, "temp_c": 75},
//	  "space": {"preset": "validation"},
//	  "seed": 1
//	}
//
// Every omitted field takes the paper's default (DefaultOptions,
// DefaultConstraints, the per-kind default space), so the empty-ish
// spec above is a complete job description. Spec.Resolve materializes
// the spec into the core types and Run executes it.
package jobspec

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"tesa/internal/des"
)

// Version is the schema revision this package reads and writes. Specs
// carrying any other (or no) version string are rejected by Parse, so
// schema evolution is explicit.
const Version = "tesa.jobspec/v1"

// Job kinds — the engines a spec can ask for.
const (
	// KindOptimize runs the multi-start annealer (Evaluator.OptimizeContext).
	KindOptimize = "optimize"
	// KindSweep exhaustively evaluates the space (Evaluator.ExhaustiveContext).
	KindSweep = "sweep"
	// KindPareto sweeps the Eq. (6) weights and traces the cost/DRAM front.
	KindPareto = "pareto"
	// KindSim runs a seeded dynamic multi-tenant scenario against one
	// design point (Evaluator.Simulate / SimulateDistribution).
	KindSim = "sim"
)

// Spec is the versioned job specification. The zero value is invalid;
// decode one with Parse/Read/Load or fill Version and Kind explicitly.
// All sections are optional — nil means "the defaults".
type Spec struct {
	// Version must equal the package's Version constant.
	Version string `json:"version"`
	// Kind selects the engine: "optimize", "sweep", or "pareto".
	Kind string `json:"kind"`

	// Workload selection — at most one of the three. WorkloadRef names a
	// built-in workload ("arvr", the default). WorkloadFile points at a
	// JSON workload file (the internal/dnn schema), resolved relative to
	// the spec file's directory. Workload embeds the same JSON inline.
	WorkloadRef  string          `json:"workload_ref,omitempty"`
	WorkloadFile string          `json:"workload_file,omitempty"`
	Workload     json.RawMessage `json:"workload,omitempty"`

	// Options override evaluation options (nil = DefaultOptions).
	Options *Options `json:"options,omitempty"`
	// Constraints override the constraint corner (nil = DefaultConstraints).
	Constraints *Constraints `json:"constraints,omitempty"`
	// Space selects the design space (nil = the kind's default: the
	// Table II space for optimize/pareto, the validation space for sweep).
	Space *Space `json:"space,omitempty"`
	// Seed is the optimizer seed (nil = 1). Sweeps ignore it.
	Seed *int64 `json:"seed,omitempty"`

	// Sweep tunes the sweep engine; only valid when Kind is "sweep".
	Sweep *Sweep `json:"sweep,omitempty"`
	// Pareto tunes the weight sweep; only valid when Kind is "pareto".
	Pareto *Pareto `json:"pareto,omitempty"`
	// Sim describes the dynamic scenario; required when Kind is "sim".
	Sim *Sim `json:"sim,omitempty"`
	// Policies are the failure-handling knobs shared by every kind.
	Policies *Policies `json:"policies,omitempty"`

	// DeadlineSec bounds the job's wall-clock time; the engines observe
	// the deadline between evaluations. 0 means no deadline.
	DeadlineSec float64 `json:"deadline_sec,omitempty"`
}

// Options is the spec's view of core.Options: every field is a pointer
// so "absent" (keep the default) and "zero" stay distinguishable.
type Options struct {
	// Tech is "2d" or "3d".
	Tech *string `json:"tech,omitempty"`
	// FreqMHz is the operating frequency in MHz.
	FreqMHz *float64 `json:"freq_mhz,omitempty"`
	// Dataflow is "os" (output-stationary) or "ws" (weight-stationary).
	Dataflow *string `json:"dataflow,omitempty"`
	// Grid is the thermal grid resolution (cells per interposer side).
	Grid *int `json:"grid,omitempty"`
	// Alpha and Beta are the Eq. (6) objective weights.
	Alpha *float64 `json:"alpha,omitempty"`
	Beta  *float64 `json:"beta,omitempty"`
	// ThermalFast enables the fast thermal path (workspace CG, warm
	// starts, surrogate pre-screen); results are unchanged.
	ThermalFast *bool `json:"thermal_fast,omitempty"`
	// SurrogateBandC is the pre-screen guard band in Celsius.
	SurrogateBandC *float64 `json:"surrogate_band_c,omitempty"`
	// Surrogate enables the learned ranking surrogate: an online model
	// over completed evaluations that orders candidate moves, seeds, and
	// sweep shards best-predicted-first. Results are unchanged — every
	// proposal still runs the real pipeline.
	Surrogate *bool `json:"surrogate,omitempty"`
	// SurrogateK is the model's neighborhood size and the ranked-move
	// candidate count (0 = the package default).
	SurrogateK *int `json:"surrogate_k,omitempty"`
}

// Constraints is the spec's view of core.Constraints; absent fields
// keep the paper's canonical corner.
type Constraints struct {
	// FPS is the frame-rate (latency) constraint.
	FPS *float64 `json:"fps,omitempty"`
	// PowerW is the chiplet power budget in watts.
	PowerW *float64 `json:"power_w,omitempty"`
	// TempC is the peak-junction-temperature budget in Celsius.
	TempC *float64 `json:"temp_c,omitempty"`
	// InterposerMM is the square interposer side in millimeters.
	InterposerMM *float64 `json:"interposer_mm,omitempty"`
}

// Space selects the design space: a named preset or explicit axes,
// never both.
type Space struct {
	// Preset is "default" (the Table II space) or "validation" (the
	// small Sec. IV-A space).
	Preset string `json:"preset,omitempty"`
	// ArrayDims and ICSUMs are explicit axes for a custom space.
	ArrayDims []int `json:"array_dims,omitempty"`
	ICSUMs    []int `json:"ics_ums,omitempty"`
}

// Sweep tunes the exhaustive engine.
type Sweep struct {
	// ShardSize is the points-per-shard granularity (0 = automatic).
	ShardSize int `json:"shard_size,omitempty"`
}

// Pareto tunes the front engine.
type Pareto struct {
	// Front selects the engine: "weights" (the Eq. 6 weight sweep, the
	// default) or "nsga2" (the true multi-objective population front
	// over cost, DRAM power, and peak temperature).
	Front string `json:"front,omitempty"`
	// Points is the number of weight settings to sweep (>= 2; 0 = 9).
	// Weight fronts only.
	Points int `json:"points,omitempty"`
	// Pop and Gens are the NSGA-II population size and generation count
	// (0 = the engine defaults). NSGA-II fronts only.
	Pop  int `json:"pop,omitempty"`
	Gens int `json:"gens,omitempty"`
}

// Sim describes a dynamic multi-tenant scenario run: the design point
// to simulate and the traffic/throttle model of internal/des. The
// scenario seed is the spec's top-level Seed.
type Sim struct {
	// ArrayDim and ICSUM select the design point to simulate.
	ArrayDim int `json:"array_dim"`
	ICSUM    int `json:"ics_um"`
	// DurationSec is the simulated horizon.
	DurationSec float64 `json:"duration_sec"`
	// ThermalDtSec is the thermal coupling tick (0 = 0.05 s).
	ThermalDtSec float64 `json:"thermal_dt_sec,omitempty"`
	// Tenants are the traffic sources (the des.Tenant JSON shape).
	Tenants []des.Tenant `json:"tenants"`
	// Throttle is the DVFS policy; absent, the trip point defaults to
	// the job's temperature budget with the standard level ladder.
	Throttle *des.Throttle `json:"throttle,omitempty"`
	// Draws scores the design over this many seeded scenario draws
	// (0 or 1 = the single base-seed run).
	Draws int `json:"draws,omitempty"`
}

// Policies are the failure-handling knobs of a run.
type Policies struct {
	// MaxFailures aborts the run once more than this many points are
	// quarantined (0 = unlimited).
	MaxFailures int `json:"max_failures,omitempty"`
	// FailFast aborts on the first failed evaluation.
	FailFast bool `json:"fail_fast,omitempty"`
	// StageTimeoutMS quarantines a point when one pipeline stage exceeds
	// this many milliseconds (0 = off).
	StageTimeoutMS int `json:"stage_timeout_ms,omitempty"`
	// Faults is a deterministic fault-injection spec (the -faults /
	// TESA_FAULTS grammar) for chaos runs.
	Faults string `json:"faults,omitempty"`
}

// Parse decodes a spec from JSON. Decoding is strict: unknown fields
// anywhere in the document (except inside an inline workload, which
// internal/dnn validates) are errors, and the version string must match
// this package's Version exactly.
func Parse(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("jobspec: %w", err)
	}
	// A second document in the stream is a malformed spec, not extra input.
	if dec.More() {
		return nil, fmt.Errorf("jobspec: trailing data after the spec object")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Read decodes a spec from r (see Parse).
func Read(r io.Reader) (*Spec, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("jobspec: %w", err)
	}
	return Parse(data)
}

// Load reads and decodes the spec file at path (see Parse). Relative
// workload_file references are resolved against the spec file's
// directory by Resolve, so pass filepath.Dir(path) as its baseDir.
func Load(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("jobspec: %w", err)
	}
	s, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// Marshal renders the spec in the canonical on-disk form: two-space
// indented JSON with a trailing newline. Parse(Marshal(s)) round-trips.
func (s *Spec) Marshal() ([]byte, error) {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("jobspec: %w", err)
	}
	return append(data, '\n'), nil
}

// Validate checks the spec's internal consistency — version, kind,
// workload-selection exclusivity, space shape, and kind-section
// pairing. Resolve calls it; CLIs can call it early for fast feedback.
func (s *Spec) Validate() error {
	if s.Version == "" {
		return fmt.Errorf("jobspec: missing version (want %q)", Version)
	}
	if s.Version != Version {
		return fmt.Errorf("jobspec: unsupported version %q (this build reads %q)", s.Version, Version)
	}
	switch s.Kind {
	case KindOptimize, KindSweep, KindPareto, KindSim:
	case "":
		return fmt.Errorf("jobspec: missing kind (optimize, sweep, pareto, or sim)")
	default:
		return fmt.Errorf("jobspec: unknown kind %q (want optimize, sweep, pareto, or sim)", s.Kind)
	}
	n := 0
	if s.WorkloadRef != "" {
		n++
	}
	if s.WorkloadFile != "" {
		n++
	}
	if len(s.Workload) > 0 {
		n++
	}
	if n > 1 {
		return fmt.Errorf("jobspec: workload_ref, workload_file, and workload are mutually exclusive")
	}
	if s.Space != nil {
		explicit := len(s.Space.ArrayDims) > 0 || len(s.Space.ICSUMs) > 0
		if s.Space.Preset != "" && explicit {
			return fmt.Errorf("jobspec: space preset and explicit axes are mutually exclusive")
		}
		if s.Space.Preset == "" && !explicit {
			return fmt.Errorf("jobspec: empty space section (give a preset or axes)")
		}
		if explicit && (len(s.Space.ArrayDims) == 0 || len(s.Space.ICSUMs) == 0) {
			return fmt.Errorf("jobspec: an explicit space needs both array_dims and ics_ums")
		}
		switch s.Space.Preset {
		case "", "default", "validation":
		default:
			return fmt.Errorf("jobspec: unknown space preset %q (want default or validation)", s.Space.Preset)
		}
	}
	if s.Sweep != nil && s.Kind != KindSweep {
		return fmt.Errorf("jobspec: sweep section on a %q job", s.Kind)
	}
	if s.Pareto != nil && s.Kind != KindPareto {
		return fmt.Errorf("jobspec: pareto section on a %q job", s.Kind)
	}
	if p := s.Pareto; p != nil {
		switch p.Front {
		case "", "weights", "nsga2":
		default:
			return fmt.Errorf("jobspec: unknown pareto front %q (want weights or nsga2)", p.Front)
		}
		if p.Points != 0 && p.Points < 2 {
			return fmt.Errorf("jobspec: pareto needs at least 2 weight points, got %d", p.Points)
		}
		if p.Pop < 0 || p.Gens < 0 {
			return fmt.Errorf("jobspec: negative pareto pop/gens %d/%d", p.Pop, p.Gens)
		}
		if p.Front != "nsga2" && (p.Pop != 0 || p.Gens != 0) {
			return fmt.Errorf("jobspec: pop/gens only apply to the nsga2 front")
		}
		if p.Front == "nsga2" && p.Points != 0 {
			return fmt.Errorf("jobspec: points only applies to the weights front")
		}
	}
	if s.Sim != nil && s.Kind != KindSim {
		return fmt.Errorf("jobspec: sim section on a %q job", s.Kind)
	}
	if s.Kind == KindSim {
		switch {
		case s.Sim == nil:
			return fmt.Errorf("jobspec: a sim job needs a sim section")
		case s.Sim.ArrayDim <= 0 || s.Sim.ICSUM < 0:
			return fmt.Errorf("jobspec: sim needs a design point (array_dim > 0, ics_um >= 0), got %d/%d", s.Sim.ArrayDim, s.Sim.ICSUM)
		case s.Sim.Draws < 0:
			return fmt.Errorf("jobspec: negative sim draws %d", s.Sim.Draws)
		case s.Space != nil:
			return fmt.Errorf("jobspec: a sim job takes a design point, not a space section")
		}
	}
	if s.DeadlineSec < 0 {
		return fmt.Errorf("jobspec: negative deadline_sec %g", s.DeadlineSec)
	}
	if p := s.Policies; p != nil {
		if p.MaxFailures < 0 || p.StageTimeoutMS < 0 {
			return fmt.Errorf("jobspec: negative policy values %+v", *p)
		}
	}
	return nil
}
