package jobspec

import (
	"context"
	"errors"
	"math"

	"tesa/internal/core"
	"tesa/internal/memo"
	"tesa/internal/telemetry"
)

// Runtime is the process-level state a job executes against. All fields
// are optional: the zero Runtime runs the job isolated and unobserved.
type Runtime struct {
	// Store is the shared memoization store (nil = no memoization).
	// tesa-server passes its process-wide store here so concurrent jobs
	// hit each other's warm entries.
	Store *memo.Store
	// Tel is the shared observability hub (nil = disabled).
	Tel *telemetry.Telemetry
	// Progress receives the job's incremental updates (nil = none).
	Progress core.ProgressFunc
	// Parallel bounds the annealer's multi-start worker pool
	// (OptimizeOptions.Parallel); 0 keeps the legacy schedule.
	Parallel int
}

// Run executes a resolved job to completion and returns its wire-form
// result. The mapping from spec to engine is exactly the CLIs': an
// optimize job is Evaluator.OptimizeContext, a sweep job is
// Evaluator.ExhaustiveContext, a pareto job is the tesa-pareto weight
// loop, and a sim job is the tesa-sim coupling (static evaluation, then
// Evaluator.Simulate and SimulateDistribution) — so a spec produces
// bit-identical numbers whether it runs here, in a CLI, or behind
// tesa-server.
//
// "No feasible configuration" is a result (Found=false), not an error;
// cancellation and deadline expiry surface ctx's error. The spec's own
// DeadlineSec, when set, bounds the run in addition to ctx.
func Run(ctx context.Context, r *Resolved, rt Runtime) (*Result, error) {
	if r.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, r.Deadline)
		defer cancel()
	}
	switch r.Kind {
	case KindSweep:
		return runSweep(ctx, r, rt)
	case KindPareto:
		return runPareto(ctx, r, rt)
	case KindSim:
		return runSim(ctx, r, rt)
	default:
		return runOptimize(ctx, r, rt)
	}
}

// NewEvaluator builds the job's evaluator wired into the runtime — the
// exact construction the executors use, exported so distributed-sweep
// coordinators and workers evaluate a spec identically to a local run
// (same options, constraints, fault plan, and stage timeout).
func NewEvaluator(r *Resolved, rt Runtime) (*core.Evaluator, error) {
	return newEvaluator(r, r.Opts, rt)
}

// newEvaluator builds one job evaluator wired into the runtime.
func newEvaluator(r *Resolved, opts core.Options, rt Runtime) (*core.Evaluator, error) {
	ev, err := core.NewEvaluator(r.Workload, opts, r.Cons, core.Models{})
	if err != nil {
		return nil, err
	}
	ev.Instrument(rt.Tel)
	if rt.Store != nil {
		ev.UseMemo(rt.Store)
	}
	ev.InjectFaults(r.FaultPlan)
	if r.StageTimeout > 0 {
		ev.SetStageTimeout(r.StageTimeout)
	}
	return ev, nil
}

func runOptimize(ctx context.Context, r *Resolved, rt Runtime) (*Result, error) {
	ev, err := newEvaluator(r, r.Opts, rt)
	if err != nil {
		return nil, err
	}
	opt := &core.OptimizeOptions{
		Progress:    rt.Progress,
		MaxFailures: r.MaxFailures,
		FailFast:    r.FailFast,
		Parallel:    rt.Parallel,
	}
	res, err := ev.OptimizeContext(ctx, r.Space, r.Seed, opt)
	if err != nil && !errors.Is(err, core.ErrNoFeasibleStart) {
		return nil, err
	}
	return FromOptimize(res), nil
}

func runSweep(ctx context.Context, r *Resolved, rt Runtime) (*Result, error) {
	ev, err := newEvaluator(r, r.Opts, rt)
	if err != nil {
		return nil, err
	}
	opt := &core.SweepOptions{
		ShardSize:   r.ShardSize,
		Progress:    rt.Progress,
		MaxFailures: r.MaxFailures,
		FailFast:    r.FailFast,
	}
	res, err := ev.ExhaustiveContext(ctx, r.Space, opt)
	if err != nil {
		return nil, err
	}
	return FromSweep(res), nil
}

// runSim evaluates the sim job's design point statically, then couples
// it to the DES scenario engine: one base-seed run for per-tenant
// detail plus the resolved N-draw scenario distribution. A point that
// does not fit the interposer is a result (Found=false), not an error;
// a scenario whose trace poisons the thermal solver surfaces as the
// evaluator's structured error.
func runSim(ctx context.Context, r *Resolved, rt Runtime) (*Result, error) {
	ev, err := newEvaluator(r, r.Opts, rt)
	if err != nil {
		return nil, err
	}
	full, err := ev.EvaluateFullContext(ctx, r.SimPoint)
	if err != nil {
		return nil, err
	}
	if !full.Fits {
		return &Result{Kind: KindSim}, nil
	}
	base, err := ev.Simulate(ctx, full, r.Scenario, nil)
	if err != nil {
		return nil, err
	}
	score, err := ev.SimulateDistribution(ctx, full, r.Scenario, r.SimDraws)
	if err != nil {
		return nil, err
	}
	return FromSim(full, base, score), nil
}

// runPareto is the tesa-pareto weight loop: ParetoPoints settings from
// cost-only to DRAM-only, each optimized by a fresh evaluator that
// shares the runtime's store and hub (the weights enter the objective,
// not the pipeline, so every weight-independent sub-result is reused).
func runPareto(ctx context.Context, r *Resolved, rt Runtime) (*Result, error) {
	if r.ParetoFront == "nsga2" {
		return runParetoNSGA2(ctx, r, rt)
	}
	out := &Result{Kind: KindPareto, FrontEngine: "weights"}
	seen := map[core.DesignPoint]bool{}
	poisoned := map[core.DesignPoint]bool{}
	for i := 0; i < r.ParetoPoints; i++ {
		// Sweep the weight angle from cost-only to DRAM-only, exactly as
		// cmd/tesa-pareto does (the spec's own alpha/beta are ignored —
		// a pareto job traces the whole front).
		frac := float64(i) / float64(r.ParetoPoints-1)
		opts := r.Opts
		opts.Alpha = 1 - frac
		opts.Beta = frac
		if opts.Alpha == 0 {
			opts.Alpha = 1e-9 // keep the objective well-defined
		}
		if opts.Beta == 0 {
			opts.Beta = 1e-9
		}
		ev, err := newEvaluator(r, opts, rt)
		if err != nil {
			return nil, err
		}
		opt := &core.OptimizeOptions{
			Progress:    rt.Progress,
			MaxFailures: r.MaxFailures,
			FailFast:    r.FailFast,
			Parallel:    rt.Parallel,
		}
		res, err := ev.OptimizeContext(ctx, r.Space, r.Seed, opt)
		if res != nil {
			out.Evaluations += res.Evaluations
			out.Explored += res.Explored
			out.Screened += res.Screened
			for _, q := range res.Poisoned {
				poisoned[q.Point] = true
			}
		}
		fp := FrontPoint{Alpha: fin(opts.Alpha), Beta: fin(opts.Beta)}
		switch {
		case errors.Is(err, core.ErrNoFeasibleStart):
			// A weight with no solution stays on the front as a gap.
		case err != nil:
			return nil, err
		default:
			fp.Found = true
			fp.Best = bestOf(res.Best)
			fp.Duplicate = seen[res.Best.Point]
			seen[res.Best.Point] = true
			out.Found = true
		}
		out.Front = append(out.Front, fp)
	}
	out.Quarantined = len(poisoned)
	// Front stays in weight order; objectives are not comparable across
	// weight settings, so there is no overall Best for a pareto job.
	return out, nil
}

// runParetoNSGA2 is the true multi-objective front: one NSGA-II
// population evolved over (cost, DRAM power, peak temperature), every
// reported member re-evaluated at full fidelity by the engine. Unlike
// the weight sweep there is no alpha/beta per point — the front IS the
// trade-off surface, so Alpha/Beta stay zero and Crowding carries the
// diversity metric instead.
func runParetoNSGA2(ctx context.Context, r *Resolved, rt Runtime) (*Result, error) {
	ev, err := newEvaluator(r, r.Opts, rt)
	if err != nil {
		return nil, err
	}
	front, err := ev.NSGA2FrontContext(ctx, r.Space, r.Seed, &core.FrontOptions{
		Pop:      r.ParetoPop,
		Gens:     r.ParetoGens,
		Progress: rt.Progress,
	})
	if err != nil && !errors.Is(err, core.ErrNoFeasibleStart) {
		return nil, err
	}
	out := &Result{
		Kind:        KindPareto,
		FrontEngine: "nsga2",
		Found:       len(front) > 0,
		Evaluations: ev.Evaluations(),
		Explored:    ev.Explored(),
		Quarantined: ev.QuarantinedCount(),
	}
	for _, m := range front {
		crowding := m.Crowding
		if math.IsInf(crowding, 1) {
			crowding = -1 // objective-extreme member; keep the JSON finite
		}
		out.Front = append(out.Front, FrontPoint{
			Found:    true,
			Best:     bestOf(m.Eval),
			Crowding: fin(crowding),
		})
	}
	return out, nil
}
