package surrogate

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// f is a smooth 2-D test objective with a single basin.
func f(x, y float64) float64 {
	return (x-3)*(x-3) + 0.5*(y+1)*(y+1)
}

func trainGrid(m *Model) {
	for i := -5; i <= 5; i++ {
		for j := -5; j <= 5; j++ {
			m.Add([]float64{float64(i), float64(j)}, f(float64(i), float64(j)))
		}
	}
}

func TestPredictExactRecall(t *testing.T) {
	m := New(4)
	trainGrid(m)
	mean, sigma, ok := m.Predict([]float64{3, -1})
	if !ok {
		t.Fatal("model not ready after 121 samples")
	}
	if mean != f(3, -1) {
		t.Fatalf("exact training point: mean=%g want %g", mean, f(3, -1))
	}
	if sigma != 0 {
		t.Fatalf("exact training point: sigma=%g want 0", sigma)
	}
}

func TestPredictInterpolatesSmoothObjective(t *testing.T) {
	m := New(4)
	trainGrid(m)
	mean, sigma, ok := m.Predict([]float64{2.5, -0.5})
	if !ok {
		t.Fatal("model not ready")
	}
	want := f(2.5, -0.5)
	if math.Abs(mean-want) > 1.5 {
		t.Fatalf("interpolation off: mean=%g want ~%g", mean, want)
	}
	if sigma <= 0 {
		t.Fatalf("off-grid query must carry uncertainty, got sigma=%g", sigma)
	}
}

func TestPredictRanksBasinFirst(t *testing.T) {
	m := New(4)
	trainGrid(m)
	nearMean, _, _ := m.Predict([]float64{3.2, -0.8})
	farMean, _, _ := m.Predict([]float64{-4.5, 4.5})
	if nearMean >= farMean {
		t.Fatalf("basin query predicted worse than rim: %g vs %g", nearMean, farMean)
	}
}

func TestNotReadyBeforeK(t *testing.T) {
	m := New(5)
	for i := 0; i < 4; i++ {
		m.Add([]float64{float64(i)}, float64(i))
	}
	if m.Ready() {
		t.Fatal("Ready with fewer than k samples")
	}
	if _, _, ok := m.Predict([]float64{0}); ok {
		t.Fatal("Predict ok with fewer than k samples")
	}
	m.Add([]float64{9}, 9)
	if !m.Ready() {
		t.Fatal("not Ready at k samples")
	}
}

func TestNonFiniteObjectivesIgnored(t *testing.T) {
	m := New(2)
	m.Add([]float64{0}, math.Inf(1))
	m.Add([]float64{1}, math.NaN())
	if m.Len() != 0 {
		t.Fatalf("non-finite samples stored: Len=%d", m.Len())
	}
}

func TestDuplicateFeaturesCollapse(t *testing.T) {
	m := New(2)
	m.Add([]float64{1, 2}, 3)
	m.Add([]float64{1, 2}, 3)
	m.Add([]float64{1, 2}, 3)
	if m.Len() != 1 {
		t.Fatalf("duplicates not collapsed: Len=%d", m.Len())
	}
}

// TestPredictionOrderIndependent is the determinism contract: two
// models trained on the same sample set in different insertion orders
// must predict bit-identically.
func TestPredictionOrderIndependent(t *testing.T) {
	type s struct {
		x []float64
		y float64
	}
	var samples []s
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 60; i++ {
		x, y := rng.Float64()*10-5, rng.Float64()*10-5
		samples = append(samples, s{[]float64{x, y}, f(x, y)})
	}
	a, b := New(6), New(6)
	for _, sm := range samples {
		a.Add(sm.x, sm.y)
	}
	perm := rng.Perm(len(samples))
	for _, i := range perm {
		b.Add(samples[i].x, samples[i].y)
	}
	for q := 0; q < 50; q++ {
		x := []float64{rng.Float64()*12 - 6, rng.Float64()*12 - 6}
		am, as, aok := a.Predict(x)
		bm, bs, bok := b.Predict(x)
		if am != bm || as != bs || aok != bok {
			t.Fatalf("order-dependent prediction at %v: (%g,%g,%v) vs (%g,%g,%v)",
				x, am, as, aok, bm, bs, bok)
		}
	}
}

// TestConcurrentTrainAndPredict exercises the lock under the race
// detector and re-checks set-determinism after a concurrent build.
func TestConcurrentTrainAndPredict(t *testing.T) {
	m := New(4)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 50; i++ {
				x := float64(i%10) - 5
				y := float64((i*w)%10) - 5
				m.Add([]float64{x, y}, f(x, y))
				m.Predict([]float64{rng.Float64(), rng.Float64()})
			}
		}(w)
	}
	wg.Wait()
	// Sequential reference holding the same sample set.
	ref := New(4)
	for w := 0; w < 8; w++ {
		for i := 0; i < 50; i++ {
			x := float64(i%10) - 5
			y := float64((i*w)%10) - 5
			ref.Add([]float64{x, y}, f(x, y))
		}
	}
	if m.Len() != ref.Len() {
		t.Fatalf("sample sets differ: %d vs %d", m.Len(), ref.Len())
	}
	for q := 0; q < 20; q++ {
		x := []float64{float64(q)/3 - 3, float64(q)/4 - 2}
		am, as, _ := m.Predict(x)
		bm, bs, _ := ref.Predict(x)
		if am != bm || as != bs {
			t.Fatalf("concurrent build diverged at %v: (%g,%g) vs (%g,%g)", x, am, as, bm, bs)
		}
	}
}

func TestLCB(t *testing.T) {
	if got := LCB(10, 2, 1.5); got != 7 {
		t.Fatalf("LCB(10,2,1.5)=%g want 7", got)
	}
	// Higher uncertainty must rank better (lower) at equal mean: that
	// is what keeps unexplored regions reachable.
	if LCB(5, 3, 1) >= LCB(5, 1, 1) {
		t.Fatal("LCB does not favor uncertainty")
	}
}
