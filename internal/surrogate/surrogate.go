// Package surrogate implements an online k-nearest-neighbor / RBF
// regressor over canonical design-point feature vectors, trained
// incrementally from completed full-fidelity evaluations. The search
// engines use it to RANK candidates — which point looks most promising
// — never to ANSWER for one: every ranked candidate that matters is
// still evaluated by the real pipeline, so the surrogate can only move
// wall-clock, not results (the same soundness discipline as the
// thermal pre-screen certificates, see DESIGN.md).
//
// Determinism under concurrency is load-bearing: the engines train the
// model from parallel workers, and a prediction must not depend on the
// interleaving. The model therefore keys its training set by the exact
// feature vector — the sample SET, not the insertion sequence, is the
// state — and rebuilds a canonical (lexicographically sorted) view
// before predicting. Duplicate feature vectors collapse to one sample,
// which is sound because the evaluation pipeline is deterministic: the
// same point always yields the same objective. Every quantity a
// prediction depends on (normalization statistics, neighbor order, tie
// breaks, kernel weights) is computed from that canonical view, so any
// two models holding the same samples predict identically, regardless
// of how or in what order the samples arrived.
package surrogate

import (
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// DefaultK is the default neighborhood size: large enough to smooth
// over single-sample noise, small enough to stay local on the coarse
// design grids the engines search.
const DefaultK = 8

// sample is one training observation: a feature vector and the scalar
// objective the full-fidelity pipeline computed for it.
type sample struct {
	x []float64
	y float64
}

// Model is an online, concurrency-safe k-NN regressor with a Gaussian
// (RBF) distance kernel. The zero value is not usable; call New.
type Model struct {
	k int

	mu      sync.Mutex
	samples map[string]sample // keyed by canonical feature rendering
	dirty   bool              // canonical view stale after Add

	// Canonical view, rebuilt lazily: samples in lexicographic feature
	// order, plus per-dimension normalization statistics and the global
	// objective spread (the extrapolation-uncertainty scale).
	xs      [][]float64
	ys      []float64
	mean    []float64
	scale   []float64
	ySpread float64
}

// New returns an empty model that predicts from the k nearest training
// samples (k <= 0 selects DefaultK).
func New(k int) *Model {
	if k <= 0 {
		k = DefaultK
	}
	return &Model{k: k, samples: make(map[string]sample)}
}

// featureKey renders a feature vector exactly (shortest round-trip
// decimals), so equal vectors — and only equal vectors — collapse.
func featureKey(x []float64) string {
	parts := make([]string, len(x))
	for i, v := range x {
		parts[i] = strconv.FormatFloat(v, 'g', -1, 64)
	}
	return strings.Join(parts, ",")
}

// Add records one completed full-fidelity observation. Non-finite
// objectives are ignored: infeasible evaluations carry +Inf and teach
// the model nothing a feasible neighborhood would not. Adding the same
// feature vector again keeps the latest value (the pipeline is
// deterministic, so the values are equal anyway).
func (m *Model) Add(x []float64, y float64) {
	if len(x) == 0 || math.IsNaN(y) || math.IsInf(y, 0) {
		return
	}
	cp := make([]float64, len(x))
	copy(cp, x)
	m.mu.Lock()
	m.samples[featureKey(cp)] = sample{x: cp, y: y}
	m.dirty = true
	m.mu.Unlock()
}

// Len returns the number of distinct training samples.
func (m *Model) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.samples)
}

// Ready reports whether the model holds enough samples to rank: at
// least k, so a prediction is never an extrapolation from fewer
// neighbors than the kernel assumes.
func (m *Model) Ready() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.samples) >= m.k
}

// rebuild refreshes the canonical view under m.mu: samples sorted by
// feature vector (lexicographic, exact), per-dimension mean and scale,
// and the objective spread. Everything Predict reads derives from this
// order, which is a pure function of the sample set.
func (m *Model) rebuild() {
	n := len(m.samples)
	m.xs = make([][]float64, 0, n)
	m.ys = make([]float64, 0, n)
	keys := make([]string, 0, n)
	for k := range m.samples {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		return lexLess(m.samples[keys[i]].x, m.samples[keys[j]].x)
	})
	for _, k := range keys {
		s := m.samples[k]
		m.xs = append(m.xs, s.x)
		m.ys = append(m.ys, s.y)
	}
	d := len(m.xs[0])
	m.mean = make([]float64, d)
	m.scale = make([]float64, d)
	for j := 0; j < d; j++ {
		var sum float64
		for _, x := range m.xs {
			sum += x[j]
		}
		m.mean[j] = sum / float64(n)
		var ss float64
		for _, x := range m.xs {
			dv := x[j] - m.mean[j]
			ss += dv * dv
		}
		m.scale[j] = math.Sqrt(ss / float64(n))
		if m.scale[j] == 0 {
			m.scale[j] = 1 // constant dimension: distances ignore it
		}
	}
	var ySum float64
	for _, y := range m.ys {
		ySum += y
	}
	yMean := ySum / float64(n)
	var yss float64
	for _, y := range m.ys {
		dv := y - yMean
		yss += dv * dv
	}
	m.ySpread = math.Sqrt(yss / float64(n))
	m.dirty = false
}

// lexLess orders feature vectors lexicographically (shorter vectors
// first on a shared prefix) — the canonical sample order.
func lexLess(a, b []float64) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// Predict estimates the objective at x from the k nearest training
// samples under normalized Euclidean distance, with Gaussian kernel
// weights whose bandwidth adapts to the k-th neighbor's distance.
// sigma is the prediction's uncertainty: the weighted spread of the
// neighborhood's objectives plus an extrapolation term that grows with
// the distance to the nearest sample, so queries far from all training
// data report wide bands instead of false confidence. ok is false when
// the model is not Ready.
func (m *Model) Predict(x []float64) (mean, sigma float64, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.samples) < m.k {
		return 0, 0, false
	}
	if m.dirty {
		m.rebuild()
	}
	if len(x) != len(m.mean) {
		return 0, 0, false
	}
	n := len(m.xs)
	dists := make([]float64, n)
	for i, sx := range m.xs {
		var d2 float64
		for j := range x {
			dv := (x[j] - sx[j]) / m.scale[j]
			d2 += dv * dv
		}
		dists[i] = math.Sqrt(d2)
	}
	// Nearest-k selection with a deterministic tie break: canonical
	// index (lexicographic feature order), so equidistant samples pick
	// the same winner in every model holding this sample set.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if dists[idx[a]] != dists[idx[b]] {
			return dists[idx[a]] < dists[idx[b]]
		}
		return idx[a] < idx[b]
	})
	nb := idx[:m.k]
	if dists[nb[0]] == 0 {
		// The query IS a training sample: exact recall, zero band. The
		// pipeline is deterministic, so the stored value is the answer.
		return m.ys[nb[0]], 0, true
	}
	// Adaptive RBF bandwidth: the k-th neighbor sits at weight e^-1.
	h := dists[nb[m.k-1]]
	var wSum, wySum float64
	for _, i := range nb {
		w := math.Exp(-(dists[i] / h) * (dists[i] / h))
		wSum += w
		wySum += w * m.ys[i]
	}
	mean = wySum / wSum
	var wvSum float64
	for _, i := range nb {
		w := math.Exp(-(dists[i] / h) * (dists[i] / h))
		dv := m.ys[i] - mean
		wvSum += w * dv * dv
	}
	sigma = math.Sqrt(wvSum/wSum) + dists[nb[0]]*m.ySpread
	return mean, sigma, true
}

// LCB is the lower confidence bound mean - c*sigma: the optimistic
// (minimization) ranking score. Ranking by LCB prefers points that are
// either predicted good or still uncertain, so unexplored regions stay
// reachable — the surrogate narrows where the search looks first, not
// where it may go.
func LCB(mean, sigma, c float64) float64 { return mean - c*sigma }
