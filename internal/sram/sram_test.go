package sram

import (
	"testing"
	"testing/quick"
)

func mustEstimate(t *testing.T, bytes int64) Estimate {
	t.Helper()
	e, err := Estimate22nm(bytes)
	if err != nil {
		t.Fatalf("Estimate22nm(%d): %v", bytes, err)
	}
	return e
}

func TestRejectsNonPositive(t *testing.T) {
	for _, b := range []int64{0, -1, -1024} {
		if _, err := Estimate22nm(b); err == nil {
			t.Errorf("capacity %d accepted", b)
		}
	}
}

// TestPaperAreaRatio verifies the calibration anchor stated in DESIGN.md:
// three 1,024 KB SRAMs occupy roughly the same silicon as a 200x200 MAC
// array at 100 um^2 per MAC (the paper's area-ratio ~1 assumption).
func TestPaperAreaRatio(t *testing.T) {
	e := mustEstimate(t, 1024*1024)
	sramArea := 3 * e.AreaMM2
	arrayArea := 200.0 * 200.0 * 100e-6 // mm^2
	ratio := arrayArea / sramArea
	if ratio < 0.8 || ratio > 1.4 {
		t.Errorf("array:SRAM area ratio = %.2f, want ~1 (array %.2f mm^2, SRAM %.2f mm^2)", ratio, arrayArea, sramArea)
	}
}

func TestMonotoneInCapacity(t *testing.T) {
	f := func(a, b uint16) bool {
		ba := int64(a)*1024 + 1024
		bb := int64(b)*1024 + 1024
		if ba > bb {
			ba, bb = bb, ba
		}
		ea, err1 := Estimate22nm(ba)
		eb, err2 := Estimate22nm(bb)
		if err1 != nil || err2 != nil {
			return false
		}
		return ea.AreaMM2 <= eb.AreaMM2 &&
			ea.EnergyPJPerByte <= eb.EnergyPJPerByte &&
			ea.LeakWatts <= eb.LeakWatts
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestEnergySublinear: energy per byte grows sublinearly with capacity
// (banked macro), so a 4x capacity costs less than 2.2x the energy.
func TestEnergySublinear(t *testing.T) {
	small := mustEstimate(t, 256*1024)
	big := mustEstimate(t, 1024*1024)
	if big.EnergyPJPerByte >= 2.2*small.EnergyPJPerByte {
		t.Errorf("4x capacity energy grew %fx, want < 2.2x", big.EnergyPJPerByte/small.EnergyPJPerByte)
	}
}

func TestLeakageLinear(t *testing.T) {
	oneMB := mustEstimate(t, 1024*1024)
	twoMB := mustEstimate(t, 2*1024*1024)
	if diff := twoMB.LeakWatts - 2*oneMB.LeakWatts; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("leakage not linear: 2MB=%g, 2x1MB=%g", twoMB.LeakWatts, 2*oneMB.LeakWatts)
	}
}

// TestDesignSpaceRange: every per-SRAM capacity in the paper's design
// space (8 KB .. 4,096 KB) characterizes to physically sensible values.
func TestDesignSpaceRange(t *testing.T) {
	for kb := int64(8); kb <= 4096; kb *= 2 {
		e := mustEstimate(t, kb*1024)
		if e.AreaMM2 <= 0 || e.AreaMM2 > 10 {
			t.Errorf("%d KB: area %.3f mm^2 out of range", kb, e.AreaMM2)
		}
		if e.EnergyPJPerByte < 0.1 || e.EnergyPJPerByte > 5 {
			t.Errorf("%d KB: energy %.3f pJ/B out of range", kb, e.EnergyPJPerByte)
		}
		if e.LeakWatts <= 0 || e.LeakWatts > 0.2 {
			t.Errorf("%d KB: leakage %.4f W out of range", kb, e.LeakWatts)
		}
	}
}
