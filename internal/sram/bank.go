package sram

import (
	"fmt"
	"math"
)

// Banking organization — the CACTI-style structural model underneath the
// fitted curves of Estimate22nm. CACTI searches bank/subarray
// organizations to optimize access energy, delay, and area; this file
// reproduces that search at the granularity TESA needs and the tests
// check that the fitted curves used by the DSE are consistent with the
// structural optimum across the whole Table II capacity range.

// Org is one macro organization: the macro is split into equal banks,
// one of which activates per access.
type Org struct {
	Bytes int64
	Banks int
	// BankBits is the bit count of one bank.
	BankBits int64
	// EnergyPJPerByte is the access energy: bank-internal (wordline +
	// bitline swing over sqrt(bankBits)-long wires) plus the H-tree route
	// from the macro port to the bank.
	EnergyPJPerByte float64
	// AreaMM2 includes the per-bank periphery overhead.
	AreaMM2 float64
	// LatencyNS is the access latency (route + bank decode + bitline).
	LatencyNS float64
}

// 22 nm structural constants.
const (
	bitcellUM2 = 0.10 // 6T bitcell
	// areaEffBase is the array efficiency of an unbanked macro; each bank
	// adds fixed periphery.
	areaEffBase   = 0.75
	bankPeriphMM2 = 0.0035
	// minBankBits floors the subarray size: banks below 8 KB stop making
	// sense (periphery dominates).
	minBankBits = 64 * 1024

	// Energy coefficients (pJ per byte accessed).
	eDecode    = 0.10   // decode + sense baseline
	eBitlinePJ = 0.0006 // per sqrt(bank bits): bitline/wordline swing
	eRoutePJ   = 0.5    // per mm of H-tree from port to bank
	eBankOvPJ  = 0.012  // per bank: repeaters, bank decoders

	tDecodeNS   = 0.25
	tBitlineNS  = 0.0012 // per sqrt(bank bits)
	tRouteNSpMM = 0.35
)

// organize computes the characteristics of one candidate banking.
func organize(bytes int64, banks int) Org {
	bits := bytes * 8
	bankBits := bits / int64(banks)
	cellArea := float64(bits) * bitcellUM2 * 1e-6 // mm^2
	area := cellArea/areaEffBase + float64(banks)*bankPeriphMM2
	// H-tree route: half the macro's diagonal on average.
	routeMM := 0.5 * math.Sqrt(2*area)
	sqb := math.Sqrt(float64(bankBits))
	return Org{
		Bytes:           bytes,
		Banks:           banks,
		BankBits:        bankBits,
		EnergyPJPerByte: eDecode + eBitlinePJ*sqb + eRoutePJ*routeMM + eBankOvPJ*float64(banks),
		AreaMM2:         area,
		LatencyNS:       tDecodeNS + tBitlineNS*sqb + tRouteNSpMM*routeMM,
	}
}

// Organize searches power-of-two bank counts and returns the organization
// minimizing the energy-delay-area product — CACTI's balanced
// optimization target family.
func Organize(bytes int64) (Org, error) {
	if bytes <= 0 {
		return Org{}, fmt.Errorf("sram: non-positive capacity %d", bytes)
	}
	best := Org{}
	bestEDAP := math.Inf(1)
	for banks := 1; banks <= 64; banks *= 2 {
		if bytes*8/int64(banks) < minBankBits {
			break
		}
		o := organize(bytes, banks)
		if edap := o.EnergyPJPerByte * o.LatencyNS * o.AreaMM2; edap < bestEDAP {
			best, bestEDAP = o, edap
		}
	}
	if best.Banks == 0 {
		best = organize(bytes, 1)
	}
	return best, nil
}
