package sram

import (
	"testing"
)

func TestOrganizeValidation(t *testing.T) {
	if _, err := Organize(0); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := Organize(-5); err == nil {
		t.Error("negative capacity accepted")
	}
}

// TestBanksGrowWithCapacity: bigger macros split into more banks (the
// structural reason access energy grows sublinearly).
func TestBanksGrowWithCapacity(t *testing.T) {
	small, err := Organize(8 * 1024)
	if err != nil {
		t.Fatal(err)
	}
	big, err := Organize(4096 * 1024)
	if err != nil {
		t.Fatal(err)
	}
	if big.Banks < small.Banks {
		t.Errorf("4 MB macro has %d banks, 8 KB has %d", big.Banks, small.Banks)
	}
	if big.Banks < 4 {
		t.Errorf("4 MB macro uses only %d banks", big.Banks)
	}
}

// TestStructuralModelTracksFittedCurves: across the Table II capacity
// range, the structural optimum's energy and area stay within 2x of the
// fitted curves Estimate22nm provides to the DSE — the two views of the
// same macro must agree.
func TestStructuralModelTracksFittedCurves(t *testing.T) {
	for kb := int64(8); kb <= 4096; kb *= 2 {
		bytes := kb * 1024
		org, err := Organize(bytes)
		if err != nil {
			t.Fatal(err)
		}
		fit, err := Estimate22nm(bytes)
		if err != nil {
			t.Fatal(err)
		}
		if r := org.EnergyPJPerByte / fit.EnergyPJPerByte; r < 0.5 || r > 2.0 {
			t.Errorf("%d KB: structural energy %.2f pJ/B vs fitted %.2f (ratio %.2f)", kb, org.EnergyPJPerByte, fit.EnergyPJPerByte, r)
		}
		if r := org.AreaMM2 / fit.AreaMM2; r < 0.5 || r > 2.0 {
			t.Errorf("%d KB: structural area %.3f mm2 vs fitted %.3f (ratio %.2f)", kb, org.AreaMM2, fit.AreaMM2, r)
		}
	}
}

// TestOrganizeMonotone: energy, area, and latency grow with capacity.
func TestOrganizeMonotone(t *testing.T) {
	var prev Org
	for kb := int64(8); kb <= 4096; kb *= 2 {
		org, err := Organize(kb * 1024)
		if err != nil {
			t.Fatal(err)
		}
		if prev.Bytes > 0 {
			if org.EnergyPJPerByte < prev.EnergyPJPerByte {
				t.Errorf("%d KB: energy dropped vs smaller macro", kb)
			}
			if org.AreaMM2 <= prev.AreaMM2 {
				t.Errorf("%d KB: area did not grow", kb)
			}
			if org.LatencyNS < prev.LatencyNS {
				t.Errorf("%d KB: latency dropped", kb)
			}
		}
		prev = org
	}
}

// TestBankingBeatsUnbanked: for a large macro, the chosen organization
// has strictly better energy-delay than the unbanked one.
func TestBankingBeatsUnbanked(t *testing.T) {
	bytes := int64(2048 * 1024)
	best, err := Organize(bytes)
	if err != nil {
		t.Fatal(err)
	}
	unbanked := organize(bytes, 1)
	if best.Banks == 1 {
		t.Skip("optimizer picked the unbanked organization")
	}
	if best.EnergyPJPerByte*best.LatencyNS >= unbanked.EnergyPJPerByte*unbanked.LatencyNS {
		t.Error("banked organization does not beat unbanked EDP")
	}
}
