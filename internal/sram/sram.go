// Package sram is the CACTI-7.0-equivalent substrate of TESA: an analytic
// 22 nm SRAM model producing the three scalars the paper pulls from CACTI
// for each candidate capacity — silicon area, dynamic energy per byte
// accessed, and leakage power.
//
// The fits below follow published CACTI 22 nm trends: area is linear in
// capacity with a fixed periphery floor, access energy grows with the
// square root of capacity (bitline/wordline length under square banking),
// and leakage is proportional to capacity. The model is monotone and
// convex in capacity, which is the structural property TESA's sizing
// trade-off (SRAM capacity vs DRAM refetch traffic vs chiplet area/cost)
// depends on.
package sram

import (
	"fmt"
	"math"
)

// Technology constants for the 22 nm node used throughout the paper.
const (
	// areaPerByteMM2 is the effective macro area per byte including
	// bitcells and amortized periphery (0.149 um^2 per bit). With this
	// density the paper's area assumption holds: three 1,024 KB SRAMs
	// (~3.7 mm^2) roughly match a 200x200 MAC array (~4.0 mm^2), i.e. an
	// array:SRAM area ratio of ~1.
	areaPerByteMM2 = 1.18e-6
	// areaBaseMM2 is the capacity-independent periphery floor (decoders,
	// IO) of one SRAM macro.
	areaBaseMM2 = 0.010

	// energyBasePJ and energyCoefPJ fit CACTI's pJ-per-byte access
	// energy: E(pJ/B) = base + coef*sqrt(KB). 8 KB -> ~0.24 pJ/B,
	// 1,024 KB -> ~1.17 pJ/B, 4,096 KB -> ~2.2 pJ/B.
	energyBasePJ = 0.15
	energyCoefPJ = 0.032

	// leakWattsPerMB is the leakage of one megabyte of low-standby-power
	// 22 nm SRAM at the 45 C reference temperature.
	leakWattsPerMB = 0.030
)

// Estimate is the CACTI-style characterization of one SRAM macro.
type Estimate struct {
	Bytes           int64   // macro capacity
	AreaMM2         float64 // silicon area in mm^2
	EnergyPJPerByte float64 // dynamic energy per byte accessed, in pJ
	LeakWatts       float64 // leakage power at the 45 C reference temperature
}

// Estimate22nm characterizes a single SRAM macro of the given capacity at
// the 22 nm node. Capacity must be positive.
func Estimate22nm(bytes int64) (Estimate, error) {
	if bytes <= 0 {
		return Estimate{}, fmt.Errorf("sram: non-positive capacity %d bytes", bytes)
	}
	kB := float64(bytes) / 1024
	return Estimate{
		Bytes:           bytes,
		AreaMM2:         areaBaseMM2 + areaPerByteMM2*float64(bytes),
		EnergyPJPerByte: energyBasePJ + energyCoefPJ*math.Sqrt(kB),
		LeakWatts:       leakWattsPerMB * float64(bytes) / (1024 * 1024),
	}, nil
}
