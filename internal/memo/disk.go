package memo

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// segmentHeader is the first record of every segment file. Version binds
// the records to the producing model revision: a reader with a different
// version skips the whole segment, which is the memo layer's
// invalidation rule — bump the version constant whenever a model change
// alters any memoized value.
type segmentHeader struct {
	Memo    string `json:"memo"`
	Version string `json:"version"`
}

// Record is one persisted key/value pair from a segment file. The value
// stays raw JSON; the owner of the key kind decodes it.
type Record struct {
	// K is the store key.
	K string `json:"k"`
	// V is the encoded value.
	V json.RawMessage `json:"v"`
}

// diskFlushEvery bounds data loss: the segment is flushed and fsynced
// after this many appends (and on Close). A torn tail from a crash
// between syncs is tolerated by Open.
const diskFlushEvery = 64

// Disk is an append-only persistent cache directory of JSONL segment
// files, written FileSink-style: each process creates its own segment
// via tmp+rename (so concurrent processes never interleave writes) and
// appends records to it, fsyncing every diskFlushEvery appends. Open
// loads every committed segment whose header version matches.
type Disk struct {
	dir     string
	version string
	loaded  []Record

	mu      sync.Mutex
	f       *os.File
	w       *bufio.Writer
	pending int
	err     error
}

// OpenDisk opens (creating if needed) a persistent cache directory,
// loads the records of every segment committed with a matching version,
// and prepares a fresh segment for this process's appends. Segments with
// a different version, an unreadable header, or torn trailing records
// are skipped or truncated silently — a persistent cache is advisory.
func OpenDisk(dir, version string) (*Disk, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("memo: create cache dir: %w", err)
	}
	d := &Disk{dir: dir, version: version}
	names, err := filepath.Glob(filepath.Join(dir, "seg-*.jsonl"))
	if err != nil {
		return nil, fmt.Errorf("memo: scan cache dir: %w", err)
	}
	sort.Strings(names)
	for _, name := range names {
		d.loadSegment(name)
	}
	if err := d.openSegment(); err != nil {
		return nil, err
	}
	return d, nil
}

// loadSegment reads one segment file, appending its committed records to
// d.loaded. Decode errors end the file early (torn tail from a crash);
// version mismatches skip it entirely.
func (d *Disk) loadSegment(name string) {
	f, err := os.Open(name)
	if err != nil {
		return
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	if !sc.Scan() {
		return
	}
	var hdr segmentHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil || hdr.Memo != "header" || hdr.Version != d.version {
		return
	}
	for sc.Scan() {
		var rec Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil || rec.K == "" {
			return // torn or corrupt tail: keep what decoded so far
		}
		d.loaded = append(d.loaded, rec)
	}
}

// openSegment creates this process's append segment via tmp+rename so a
// crash mid-creation never leaves a half-written header visible.
func (d *Disk) openSegment() error {
	name := fmt.Sprintf("seg-%d-%d.jsonl", time.Now().UnixNano(), os.Getpid())
	tmp := filepath.Join(d.dir, name+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("memo: create segment: %w", err)
	}
	hdr, _ := json.Marshal(segmentHeader{Memo: "header", Version: d.version})
	if _, err := f.Write(append(hdr, '\n')); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("memo: write segment header: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("memo: sync segment header: %w", err)
	}
	final := filepath.Join(d.dir, name)
	if err := os.Rename(tmp, final); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("memo: commit segment: %w", err)
	}
	d.f = f
	d.w = bufio.NewWriter(f)
	return nil
}

// Records returns the key/value pairs loaded from committed segments at
// open time, in segment-name then append order. Later records for a key
// shadow earlier ones when seeded in order via Store.Seed (Seed keeps
// the first, so callers should iterate as returned — the values are
// interchangeable anyway, since equal keys address equal contents).
func (d *Disk) Records() []Record {
	return d.loaded
}

// Dir returns the cache directory path.
func (d *Disk) Dir() string { return d.dir }

// Append writes one record to this process's segment. Writes are
// buffered and fsynced every diskFlushEvery appends; the first write
// error sticks and is returned from then on.
func (d *Disk) Append(key string, raw []byte) error {
	rec, err := json.Marshal(Record{K: key, V: raw})
	if err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.err != nil {
		return d.err
	}
	if d.w == nil {
		return fmt.Errorf("memo: segment closed")
	}
	if _, err := d.w.Write(append(rec, '\n')); err != nil {
		d.err = err
		return err
	}
	d.pending++
	if d.pending >= diskFlushEvery {
		d.err = d.flushLocked()
	}
	return d.err
}

func (d *Disk) flushLocked() error {
	if err := d.w.Flush(); err != nil {
		return err
	}
	d.pending = 0
	return d.f.Sync()
}

// Close flushes, fsyncs and closes this process's segment.
func (d *Disk) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.w == nil {
		return d.err
	}
	err := d.flushLocked()
	if cerr := d.f.Close(); err == nil {
		err = cerr
	}
	d.w, d.f = nil, nil
	if d.err == nil {
		d.err = err
	}
	return err
}
