// Package memo provides a content-addressed, concurrency-safe
// memoization store for the evaluation pipeline.
//
// Keys are canonical strings of the form "kind:part|part|...", where the
// kind names the memoized computation ("systolic", "sram", "profiles",
// "sched", "cov", "eval") and the parts are exact renderings of every
// input the computation depends on (content fingerprints for structured
// inputs, shortest round-trip decimals for floats). Two keys are equal
// exactly when the memoized function would produce the same value, so a
// store can be shared by every evaluator, sweep shard and annealing
// chain in a process without changing any result.
//
// GetOrCompute deduplicates in-flight computations (single-flight): when
// several chains race to evaluate the same key, one computes and the
// rest wait for its value. Errors are never cached — a failed
// computation is retried by the next caller, which keeps fault-injection
// and quarantine semantics at the evaluator layer.
//
// A store may be backed by a Disk (see disk.go), which persists selected
// records as versioned JSONL segments so later processes warm-start.
package memo

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Key joins a kind and its canonical parts into a store key. The kind
// must not contain ':'; parts are joined with '|'.
func Key(kind string, parts ...string) string {
	return kind + ":" + strings.Join(parts, "|")
}

// Kind returns the kind prefix of a store key (everything before the
// first ':', or the whole key if it has none).
func Kind(key string) string {
	if i := strings.IndexByte(key, ':'); i >= 0 {
		return key[:i]
	}
	return key
}

// Fnum renders a float64 as its shortest decimal that round-trips to the
// same bits, so float-valued key parts are exact (quantize first if a
// key should deliberately collapse nearby geometries).
func Fnum(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Hash returns a 16-hex-digit FNV-1a fingerprint of the canonical "%+v"
// rendering of vals. It is deterministic across processes for values
// whose formatting is deterministic: structs, slices and scalars qualify
// (fields and elements print in declaration order); maps do not and must
// not be passed.
func Hash(vals ...any) string {
	h := fnv.New64a()
	for _, v := range vals {
		fmt.Fprintf(h, "%+v\x1f", v)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// KindStats counts store traffic for one key kind.
type KindStats struct {
	// Hits counts lookups served from the in-memory map.
	Hits int64
	// Misses counts lookups that ran the compute function.
	Misses int64
	// Deduped counts lookups that waited on another goroutine's
	// in-flight computation of the same key instead of recomputing.
	Deduped int64
	// Loaded counts records seeded from a persistent segment on open.
	Loaded int64
	// Persisted counts records appended to the persistent segment.
	Persisted int64
}

// Stats is a point-in-time snapshot of store traffic, overall and per
// kind.
type Stats struct {
	// KindStats aggregates the totals across all kinds.
	KindStats
	// Kinds breaks the totals down by key kind.
	Kinds map[string]KindStats
}

// HitRate returns Hits / (Hits + Misses), or 0 when the store saw no
// lookups. Deduped waits count as neither.
func (s KindStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// String renders the snapshot compactly, kinds in sorted order.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "hits=%d misses=%d deduped=%d loaded=%d persisted=%d",
		s.Hits, s.Misses, s.Deduped, s.Loaded, s.Persisted)
	kinds := make([]string, 0, len(s.Kinds))
	for k := range s.Kinds {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		ks := s.Kinds[k]
		fmt.Fprintf(&b, " %s=%d/%d", k, ks.Hits, ks.Hits+ks.Misses)
	}
	return b.String()
}

type call struct {
	done chan struct{}
	val  any
	err  error
}

// Store is a concurrency-safe content-addressed memoization map with
// single-flight computation and per-kind statistics. The zero value is
// not usable; call NewStore.
type Store struct {
	mu       sync.Mutex
	m        map[string]any
	inflight map[string]*call
	stats    map[string]*KindStats
	disk     *Disk
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{
		m:        make(map[string]any),
		inflight: make(map[string]*call),
		stats:    make(map[string]*KindStats),
	}
}

func (s *Store) kindStats(key string) *KindStats {
	k := Kind(key)
	ks := s.stats[k]
	if ks == nil {
		ks = &KindStats{}
		s.stats[k] = ks
	}
	return ks
}

// Get returns the cached value for key, if present. It counts as a hit
// when found and is silent otherwise (a Get probe that falls through to
// GetOrCompute must not double-count the miss).
func (s *Store) Get(key string) (any, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.m[key]
	if ok {
		s.kindStats(key).Hits++
	}
	return v, ok
}

// Put stores value under key unconditionally, replacing any previous
// value (used to upgrade a compact record to a full one).
func (s *Store) Put(key string, value any) {
	s.mu.Lock()
	s.m[key] = value
	s.mu.Unlock()
}

// Seed stores value under key without touching hit/miss counters and
// counts it as loaded. Existing entries win (a live value is never
// replaced by a persisted one).
func (s *Store) Seed(key string, value any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.m[key]; ok {
		return
	}
	s.m[key] = value
	s.kindStats(key).Loaded++
}

// ErrPeerPanicked is returned to goroutines that were waiting on an
// in-flight computation whose computing goroutine panicked; the panic
// itself propagates in the computing goroutine (so its owner can
// attribute it), while waiters fail with this error and may retry.
var ErrPeerPanicked = errors.New("memo: shared computation panicked")

// GetOrCompute returns the value for key, computing it with fn on a
// miss. Concurrent callers of the same key share one computation: the
// first runs fn, the rest block until it finishes. The hit result
// reports whether the value was served from cache (including waiting on
// an in-flight computation). Errors from fn are returned to every waiter
// and never cached; a panicking fn propagates its panic to the computing
// caller and fails waiters with ErrPeerPanicked.
func (s *Store) GetOrCompute(key string, fn func() (any, error)) (val any, hit bool, err error) {
	s.mu.Lock()
	if v, ok := s.m[key]; ok {
		s.kindStats(key).Hits++
		s.mu.Unlock()
		return v, true, nil
	}
	if c, ok := s.inflight[key]; ok {
		s.kindStats(key).Deduped++
		s.mu.Unlock()
		<-c.done
		return c.val, true, c.err
	}
	c := &call{done: make(chan struct{})}
	s.inflight[key] = c
	s.kindStats(key).Misses++
	s.mu.Unlock()

	finished := false
	defer func() {
		if !finished && c.err == nil {
			c.err = ErrPeerPanicked
		}
		s.mu.Lock()
		delete(s.inflight, key)
		if finished && c.err == nil {
			s.m[key] = c.val
		}
		s.mu.Unlock()
		close(c.done)
	}()
	c.val, c.err = fn()
	finished = true
	return c.val, false, c.err
}

// Persist appends a pre-encoded record for key to the attached disk
// segment, if any. It is a no-op on a purely in-memory store.
func (s *Store) Persist(key string, raw []byte) error {
	s.mu.Lock()
	d := s.disk
	if d != nil {
		s.kindStats(key).Persisted++
	}
	s.mu.Unlock()
	if d == nil {
		return nil
	}
	return d.Append(key, raw)
}

// AttachDisk binds a disk segment writer to the store; subsequent
// Persist calls append to it. Passing nil detaches.
func (s *Store) AttachDisk(d *Disk) {
	s.mu.Lock()
	s.disk = d
	s.mu.Unlock()
}

// HasDisk reports whether a persistent segment is attached, so callers
// can skip encoding records that would go nowhere.
func (s *Store) HasDisk() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.disk != nil
}

// Range calls fn for every cached entry whose key starts with prefix,
// until fn returns false. The iteration order is unspecified (callers
// needing a canonical order must impose one on what they collect). The
// matching entries are snapshotted under the lock and fn runs outside
// it, so fn may call back into the store; values written after the
// snapshot are not visited. This is the corpus-replay iterator: the
// surrogate trainer walks the "eval:<cfg>|" prefix to learn from every
// evaluation the store holds, whether computed live or seeded from
// disk.
func (s *Store) Range(prefix string, fn func(key string, v any) bool) {
	s.mu.Lock()
	type kv struct {
		k string
		v any
	}
	var snap []kv
	for k, v := range s.m {
		if strings.HasPrefix(k, prefix) {
			snap = append(snap, kv{k, v})
		}
	}
	s.mu.Unlock()
	for _, e := range snap {
		if !fn(e.k, e.v) {
			return
		}
	}
}

// Len returns the number of cached entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

// Stats returns a snapshot of the store's traffic counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := Stats{Kinds: make(map[string]KindStats, len(s.stats))}
	for k, ks := range s.stats {
		out.Kinds[k] = *ks
		out.Hits += ks.Hits
		out.Misses += ks.Misses
		out.Deduped += ks.Deduped
		out.Loaded += ks.Loaded
		out.Persisted += ks.Persisted
	}
	return out
}
