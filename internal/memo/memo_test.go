package memo

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
)

func TestKeyAndKind(t *testing.T) {
	k := Key("systolic", "abc", "64", "0.25")
	if k != "systolic:abc|64|0.25" {
		t.Fatalf("key = %q", k)
	}
	if Kind(k) != "systolic" {
		t.Fatalf("kind = %q", Kind(k))
	}
	if Kind("plain") != "plain" {
		t.Fatalf("kind of kindless key = %q", Kind("plain"))
	}
}

func TestFnumRoundTrips(t *testing.T) {
	for _, v := range []float64{0, 1.0 / 3, math.Pi, 6.25e-5, -17.125} {
		s := Fnum(v)
		var back float64
		if _, err := fmt.Sscanf(s, "%g", &back); err != nil || back != v {
			t.Fatalf("Fnum(%v) = %q did not round-trip (got %v, err %v)", v, s, back, err)
		}
	}
}

func TestHashDeterministicAndSensitive(t *testing.T) {
	type cfg struct {
		A int
		B float64
	}
	h1 := Hash(cfg{1, 2.5}, "x")
	h2 := Hash(cfg{1, 2.5}, "x")
	if h1 != h2 {
		t.Fatalf("hash not deterministic: %s vs %s", h1, h2)
	}
	if Hash(cfg{1, 2.5}, "x") == Hash(cfg{2, 2.5}, "x") {
		t.Fatal("hash insensitive to field change")
	}
	// Concatenation must not alias: ("ab","c") != ("a","bc").
	if Hash("ab", "c") == Hash("a", "bc") {
		t.Fatal("hash aliases across value boundaries")
	}
}

func TestGetOrComputeCachesValuesNotErrors(t *testing.T) {
	s := NewStore()
	calls := 0
	fn := func() (any, error) {
		calls++
		if calls == 1 {
			return nil, errors.New("transient")
		}
		return 42, nil
	}
	if _, _, err := s.GetOrCompute("k:1", fn); err == nil {
		t.Fatal("want error from first compute")
	}
	v, hit, err := s.GetOrCompute("k:1", fn)
	if err != nil || hit || v.(int) != 42 {
		t.Fatalf("second compute: v=%v hit=%v err=%v", v, hit, err)
	}
	v, hit, _ = s.GetOrCompute("k:1", fn)
	if !hit || v.(int) != 42 {
		t.Fatalf("third lookup should hit: v=%v hit=%v", v, hit)
	}
	if calls != 2 {
		t.Fatalf("calls = %d, want 2 (error not cached, value cached)", calls)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 2 {
		t.Fatalf("stats = %+v, want 1 hit / 2 misses", st.KindStats)
	}
}

func TestGetOrComputeSingleFlight(t *testing.T) {
	s := NewStore()
	var computes atomic.Int64
	gate := make(chan struct{})
	const workers = 16
	var wg sync.WaitGroup
	results := make([]int, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := s.GetOrCompute("slow:key", func() (any, error) {
				computes.Add(1)
				<-gate
				return 7, nil
			})
			if err != nil {
				t.Errorf("worker %d: %v", i, err)
				return
			}
			results[i] = v.(int)
		}(i)
	}
	close(gate)
	wg.Wait()
	if got := computes.Load(); got != 1 {
		t.Fatalf("computed %d times, want 1 (single-flight)", got)
	}
	for i, v := range results {
		if v != 7 {
			t.Fatalf("worker %d got %d", i, v)
		}
	}
	st := s.Stats()
	if st.Misses != 1 || st.Hits+st.Deduped != workers-1 {
		t.Fatalf("stats = %+v, want 1 miss and %d hit/deduped", st.KindStats, workers-1)
	}
}

func TestSeedDoesNotReplaceLiveValue(t *testing.T) {
	s := NewStore()
	s.Put("k:1", "live")
	s.Seed("k:1", "stale")
	if v, _ := s.Get("k:1"); v != "live" {
		t.Fatalf("seed replaced live value: %v", v)
	}
	s.Seed("k:2", "loaded")
	if v, _ := s.Get("k:2"); v != "loaded" {
		t.Fatalf("seed missing: %v", v)
	}
	if st := s.Stats(); st.Loaded != 1 {
		t.Fatalf("loaded = %d, want 1", st.Loaded)
	}
}

func TestDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, "v1")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		raw, _ := json.Marshal(map[string]int{"i": i})
		if err := d.Append(fmt.Sprintf("eval:%d", i), raw); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := OpenDisk(dir, "v1")
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	recs := d2.Records()
	if len(recs) != 100 {
		t.Fatalf("loaded %d records, want 100", len(recs))
	}
	if recs[3].K != "eval:3" {
		t.Fatalf("record order broken: %q", recs[3].K)
	}
}

func TestDiskVersionMismatchSkipsSegment(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, "v1")
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Append("k:1", []byte(`{"x":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := OpenDisk(dir, "v2")
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if n := len(d2.Records()); n != 0 {
		t.Fatalf("version-mismatched segment served %d records", n)
	}
}

func TestDiskToleratesTornTail(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, "v1")
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Append("k:1", []byte(`{"x":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := d.Append("k:2", []byte(`{"x":2}`)); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the last record in half, as a crash mid-write would.
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.jsonl"))
	if len(segs) != 1 {
		t.Fatalf("want 1 segment, got %v", segs)
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(segs[0], data[:len(data)-9], 0o644); err != nil {
		t.Fatal(err)
	}
	d2, err := OpenDisk(dir, "v1")
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	recs := d2.Records()
	if len(recs) != 1 || recs[0].K != "k:1" {
		t.Fatalf("torn tail: got %+v, want just k:1", recs)
	}
}

func TestDiskConcurrentAppend(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, "v1")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				raw, _ := json.Marshal(g*1000 + i)
				if err := d.Append(fmt.Sprintf("k:%d-%d", g, i), raw); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := OpenDisk(dir, "v1")
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if n := len(d2.Records()); n != 400 {
		t.Fatalf("loaded %d records, want 400", n)
	}
}
