// Package systolic is the performance-model substrate of TESA: an
// analytical reproduction of SCALE-Sim (Samajdar et al., ISPASS 2020) for
// stall-free DNN inference on systolic arrays with double-buffered SRAMs.
//
// The model lowers every layer to a GEMM, folds it onto the array for the
// selected dataflow, and derives exactly the aggregate outputs TESA
// consumes: execution cycles, array utilization, and average/peak SRAM and
// DRAM bandwidths, at 8-bit integer data and batch size 1.
//
// SCALE-Sim itself provides an analytical mode whose cycle counts match
// its cycle-accurate mode for stall-free (double-buffered) execution; this
// package implements the same fold arithmetic, so the substitution
// preserves the quantities the DSE depends on (see DESIGN.md).
package systolic

import (
	"fmt"

	"tesa/internal/dnn"
)

// Dataflow selects the systolic-array mapping strategy.
type Dataflow int

const (
	// OutputStationary keeps partial sums in the PEs while inputs and
	// weights stream through (SCALE-Sim "os", the default here).
	OutputStationary Dataflow = iota
	// WeightStationary pins weights in the PEs and streams inputs
	// (TPU-style, SCALE-Sim "ws").
	WeightStationary
)

// String returns the SCALE-Sim-style short name of the dataflow.
func (d Dataflow) String() string {
	switch d {
	case OutputStationary:
		return "os"
	case WeightStationary:
		return "ws"
	default:
		return fmt.Sprintf("dataflow(%d)", int(d))
	}
}

// Array describes one systolic-array chiplet's compute configuration.
type Array struct {
	Rows, Cols int      // PE grid dimensions
	Dataflow   Dataflow // mapping strategy
	// SRAMBytes is the capacity of EACH of the three on-chip SRAMs
	// (IFMAP, FILTER, OFMAP) in bytes. SRAMs are double buffered, so only
	// half of each capacity holds the working tile; the other half
	// prefetches the next tile, which is what makes execution stall-free.
	SRAMBytes int64
}

// Validate reports an error for non-physical array configurations.
func (a Array) Validate() error {
	if a.Rows <= 0 || a.Cols <= 0 {
		return fmt.Errorf("array %dx%d: non-positive dimensions", a.Rows, a.Cols)
	}
	if a.SRAMBytes <= 0 {
		return fmt.Errorf("array %dx%d: non-positive SRAM capacity %d", a.Rows, a.Cols, a.SRAMBytes)
	}
	if a.Dataflow != OutputStationary && a.Dataflow != WeightStationary {
		return fmt.Errorf("array %dx%d: unknown dataflow %d", a.Rows, a.Cols, int(a.Dataflow))
	}
	return nil
}

// PEs returns the number of processing elements in the array.
func (a Array) PEs() int { return a.Rows * a.Cols }

// usable returns the working-tile capacity of one SRAM under double
// buffering.
func (a Array) usable() int64 { return a.SRAMBytes / 2 }

// LayerStats is the per-layer output of the performance model — the
// analogue of one row of a SCALE-Sim report.
type LayerStats struct {
	Name        string
	Cycles      int64   // compute cycles (CC in the paper's Eq. 3)
	Utilization float64 // average fraction of PEs doing useful MACs (Util in Eq. 3)
	MACs        int64

	// SRAM access volumes in bytes (reads plus fill writes), per SRAM.
	SRAMIfmap, SRAMFilter, SRAMOfmap int64
	// DRAM traffic in bytes, per stream.
	DRAMIfmap, DRAMFilter, DRAMOfmap int64
}

// DRAMBytes returns the layer's total off-chip traffic.
func (s LayerStats) DRAMBytes() int64 { return s.DRAMIfmap + s.DRAMFilter + s.DRAMOfmap }

// gemmShape is the lowered matrix-multiply view of a layer: an SR x SC
// output computed over inner depth K.
type gemmShape struct {
	sr, sc, k int64
	// utilScale derates utilization for mappings that cannot use the
	// array perfectly (depthwise convolutions).
	utilScale float64
	// uniqueIfmap is the unique input footprint in DRAM; the im2col
	// operand (sr*k bytes) can be larger because convolution windows
	// overlap.
	uniqueIfmap int64
}

// lower maps a layer onto the array's GEMM view.
func lower(l *dnn.Layer) gemmShape {
	switch l.Kind {
	case dnn.Conv:
		oh, ow := l.OutDims()
		return gemmShape{
			sr: int64(oh) * int64(ow), sc: int64(l.OutC),
			k:         int64(l.KH) * int64(l.KW) * int64(l.InC),
			utilScale: 1, uniqueIfmap: l.IfmapBytes(),
		}
	case dnn.DWConv:
		// Depthwise: channels map to array columns with per-column
		// accumulation over the R*S window. The mapping cannot broadcast
		// one input row to all columns (each column needs its own
		// channel), which halves achievable utilization.
		oh, ow := l.OutDims()
		return gemmShape{
			sr: int64(oh) * int64(ow), sc: int64(l.InC),
			k:         int64(l.KH) * int64(l.KW),
			utilScale: 0.5, uniqueIfmap: l.IfmapBytes(),
		}
	case dnn.FC, dnn.GEMM:
		return gemmShape{
			sr: int64(l.GemmM), sc: int64(l.GemmN), k: int64(l.GemmK),
			utilScale: 1, uniqueIfmap: l.IfmapBytes(),
		}
	default:
		return gemmShape{}
	}
}

func ceilDiv(a, b int64) int64 {
	if b <= 0 {
		return 0
	}
	return (a + b - 1) / b
}

// SimulateLayer runs the analytical model for one layer on the array.
func SimulateLayer(a Array, l *dnn.Layer) LayerStats {
	g := lower(l)
	if g.sr == 0 || g.sc == 0 || g.k == 0 {
		return LayerStats{Name: l.Name}
	}
	rows, cols := int64(a.Rows), int64(a.Cols)

	var cycles int64
	switch a.Dataflow {
	case WeightStationary:
		cycles = wsCycles(rows, cols, g)
	default:
		cycles = osCycles(rows, cols, g)
	}
	// Depthwise mapping inefficiency lengthens execution.
	if g.utilScale < 1 {
		cycles = int64(float64(cycles) / g.utilScale)
	}

	macs := g.sr * g.sc * g.k
	util := float64(macs) / (float64(a.PEs()) * float64(cycles))
	if util > 1 {
		util = 1
	}

	st := LayerStats{
		Name:        l.Name,
		Cycles:      cycles,
		Utilization: util,
		MACs:        macs,
	}
	fillTraffic(a, g, l, &st)
	return st
}

// osCycles implements the SCALE-Sim output-stationary fold arithmetic:
// each (row-fold, col-fold) tile takes 2*r + c + K - 2 cycles, where r and
// c are the rows/columns actually used by the (possibly partial) edge
// folds.
func osCycles(rows, cols int64, g gemmShape) int64 {
	rowFolds := ceilDiv(g.sr, rows)
	colFolds := ceilDiv(g.sc, cols)
	lastR := g.sr - (rowFolds-1)*rows
	lastC := g.sc - (colFolds-1)*cols

	fold := func(r, c int64) int64 { return 2*r + c + g.k - 2 }

	full := fold(rows, cols) * (rowFolds - 1) * (colFolds - 1)
	edgeR := fold(lastR, cols) * (colFolds - 1)
	edgeC := fold(rows, lastC) * (rowFolds - 1)
	corner := fold(lastR, lastC)
	return full + edgeR + edgeC + corner
}

// wsCycles implements the weight-stationary fold arithmetic: weights for a
// (k-fold, col-fold) tile are preloaded over r cycles, then all SR input
// rows stream through, draining over c cycles.
func wsCycles(rows, cols int64, g gemmShape) int64 {
	kFolds := ceilDiv(g.k, rows)
	colFolds := ceilDiv(g.sc, cols)
	lastK := g.k - (kFolds-1)*rows
	lastC := g.sc - (colFolds-1)*cols

	fold := func(r, c int64) int64 { return r + g.sr + c - 1 }

	full := fold(rows, cols) * (kFolds - 1) * (colFolds - 1)
	edgeK := fold(lastK, cols) * (colFolds - 1)
	edgeC := fold(rows, lastC) * (kFolds - 1)
	corner := fold(lastK, lastC)
	return full + edgeK + edgeC + corner
}

// fillTraffic computes SRAM access volumes and DRAM traffic for the layer
// under the double-buffered tiling model.
func fillTraffic(a Array, g gemmShape, l *dnn.Layer, st *LayerStats) {
	usable := a.usable()
	rows, cols := int64(a.Rows), int64(a.Cols)
	filterBytes := l.FilterBytes()
	ofmapBytes := l.OfmapBytes()
	im2col := g.sr * g.k

	switch a.Dataflow {
	case WeightStationary:
		kFolds := ceilDiv(g.k, rows)
		colFolds := ceilDiv(g.sc, cols)
		// Weights visit the array exactly once.
		st.DRAMFilter = filterBytes
		// The ifmap k-slice is re-streamed for every column fold; slices
		// that stay resident in the IFMAP SRAM avoid DRAM refetch.
		st.DRAMIfmap = refetchTraffic(g.uniqueIfmap, im2col, kFolds, colFolds, usable)
		// Partial sums spill per extra k-fold unless the OFMAP SRAM holds
		// the accumulation tile.
		spills := kFolds - 1
		if ofmapBytes <= usable {
			spills = 0
		}
		st.DRAMOfmap = ofmapBytes * (1 + 2*spills)
		st.SRAMIfmap = colFolds*im2col + st.DRAMIfmap
		st.SRAMFilter = filterBytes + st.DRAMFilter
		st.SRAMOfmap = 2*ofmapBytes*kFolds + st.DRAMOfmap
	default: // OutputStationary
		rowFolds := ceilDiv(g.sr, rows)
		colFolds := ceilDiv(g.sc, cols)
		// Outputs leave the PEs once, fully accumulated.
		st.DRAMOfmap = ofmapBytes
		// Filter slices are re-streamed for every row fold; resident
		// slices avoid refetch.
		st.DRAMFilter = refetchTraffic(filterBytes, filterBytes, colFolds, rowFolds, usable)
		// The ifmap row-slice is loaded once per row fold (the column
		// loop is innermost, so it stays resident) provided its unique
		// footprint fits; otherwise the im2col stream comes from DRAM.
		st.DRAMIfmap = residentTraffic(g.uniqueIfmap, im2col, rowFolds, usable)
		st.SRAMIfmap = colFolds*im2col + st.DRAMIfmap
		st.SRAMFilter = rowFolds*filterBytes + st.DRAMFilter
		st.SRAMOfmap = 2*ofmapBytes + st.DRAMOfmap
	}
}

// refetchTraffic models an operand of `total` unique bytes, partitioned
// into `slices` working slices, each of which must be visited once per
// each of `passes` outer iterations. Slices that fit in the `usable` SRAM
// capacity stay resident across passes and are fetched once; the rest are
// refetched every pass. `streamTotal` is the (possibly larger) streamed
// volume used when nothing is resident.
func refetchTraffic(total, streamTotal, slices, passes, usable int64) int64 {
	if total <= 0 {
		return 0
	}
	if total <= usable {
		return total // fully resident: one fetch
	}
	if slices <= 0 {
		slices = 1
	}
	sliceBytes := ceilDiv(total, slices)
	resident := int64(0)
	if sliceBytes > 0 {
		resident = usable / sliceBytes
	}
	if resident >= slices {
		return total
	}
	// resident slices fetched once; the remainder refetched each pass.
	residentBytes := resident * sliceBytes
	if residentBytes > total {
		residentBytes = total
	}
	nonResident := streamTotal - residentBytes
	if nonResident < 0 {
		nonResident = 0
	}
	if passes < 1 {
		passes = 1
	}
	return residentBytes + nonResident*passes
}

// residentTraffic models an operand whose slices are each used by one
// outer iteration only (no cross-pass reuse needed): the unique footprint
// is fetched once when a slice fits in SRAM, degrading toward the streamed
// im2col volume as the slice outgrows the SRAM.
func residentTraffic(unique, stream, slices int64, usable int64) int64 {
	if unique <= 0 {
		return 0
	}
	if slices < 1 {
		slices = 1
	}
	sliceBytes := ceilDiv(unique, slices)
	if sliceBytes <= usable {
		return unique
	}
	// Fraction of each slice that can be staged; the rest streams at
	// im2col volume.
	if stream < unique {
		stream = unique
	}
	frac := float64(usable) / float64(sliceBytes)
	return int64(frac*float64(unique) + (1-frac)*float64(stream))
}
