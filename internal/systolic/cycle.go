package systolic

import (
	"fmt"
	"math"

	"tesa/internal/dnn"
)

// This file implements the fold-level cycle simulation mode — the
// counterpart of SCALE-Sim's cycle-accurate mode to this package's
// analytical mode. It walks every (row-fold, column-fold) tile of every
// layer, tracks double-buffer prefetch timing against a finite DRAM
// bandwidth, and charges stall cycles whenever the next tile's operands
// cannot be staged before the current tile finishes computing.
//
// With unbounded bandwidth the simulation produces exactly the analytical
// cycle counts (both use the same fold arithmetic) — the property the
// tests pin — which is also SCALE-Sim's own relationship between its two
// modes for stall-free execution. With a finite bandwidth it quantifies
// where the paper's stall-free assumption (double-buffered SRAMs with
// dedicated DRAM channels) actually holds.

// CycleStats extends the analytical outputs with stall accounting.
type CycleStats struct {
	Name string
	// ComputeCycles is the stall-free fold time (identical to the
	// analytical model's cycles).
	ComputeCycles int64
	// StallCycles is the time the array waits for prefetches.
	StallCycles int64
	// DRAMBytes is the simulated off-chip traffic.
	DRAMBytes int64
	MACs      int64
}

// TotalCycles returns compute plus stall cycles.
func (s CycleStats) TotalCycles() int64 { return s.ComputeCycles + s.StallCycles }

// Utilization returns useful-MAC occupancy over the total (stalled)
// execution, for an array with pes processing elements.
func (s CycleStats) Utilization(pes int) float64 {
	if s.TotalCycles() == 0 {
		return 0
	}
	return float64(s.MACs) / (float64(pes) * float64(s.TotalCycles()))
}

// SimulateLayerCycles runs the fold-level simulation of one layer.
// dramBytesPerCycle is the provisioned off-chip bandwidth in bytes per
// array cycle; +Inf (or any value >= every tile's demand) reproduces the
// stall-free analytical cycles exactly.
func SimulateLayerCycles(a Array, l *dnn.Layer, dramBytesPerCycle float64) (CycleStats, error) {
	if err := a.Validate(); err != nil {
		return CycleStats{}, err
	}
	if dramBytesPerCycle <= 0 {
		return CycleStats{}, fmt.Errorf("systolic: non-positive DRAM bandwidth %g", dramBytesPerCycle)
	}
	if a.Dataflow != OutputStationary {
		return CycleStats{}, fmt.Errorf("systolic: cycle simulation implements the os dataflow only")
	}
	g := lower(l)
	if g.sr == 0 || g.sc == 0 || g.k == 0 {
		return CycleStats{}, fmt.Errorf("systolic: layer %s lowers to an empty GEMM", l.Name)
	}
	rows, cols := int64(a.Rows), int64(a.Cols)
	rowFolds := ceilDiv(g.sr, rows)
	colFolds := ceilDiv(g.sc, cols)
	usable := a.usable()

	// Operand slice sizes. The ifmap row-slice is its unique DRAM
	// footprint when it fits the working buffer; otherwise the im2col
	// stream must be refetched per fold.
	ifSlice := ceilDiv(g.uniqueIfmap, rowFolds)
	ifStreamPerFold := rows * g.k // im2col volume of one fold
	ifResident := ifSlice <= usable
	filterTotal := l.FilterBytes()
	filterSlice := ceilDiv(filterTotal, colFolds)
	// Number of filter slices that stay resident across row folds.
	var filterCachecap int64
	if filterSlice > 0 {
		filterCachecap = usable / filterSlice
	}

	st := CycleStats{Name: l.Name, MACs: g.sr * g.sc * g.k}

	// LRU set of resident filter slices (slice index -> last use); with
	// row-major fold order the reuse pattern is cyclic, so a simple
	// round-robin residency (the first filterCachecap slices stay) is
	// optimal and cheap.
	fold := func(r, c int64) int64 { return 2*r + c + g.k - 2 }

	var pending int64 // bytes still to prefetch for the NEXT fold
	for rf := int64(0); rf < rowFolds; rf++ {
		rUsed := rows
		if rf == rowFolds-1 {
			rUsed = g.sr - (rowFolds-1)*rows
		}
		for cf := int64(0); cf < colFolds; cf++ {
			cUsed := cols
			if cf == colFolds-1 {
				cUsed = g.sc - (colFolds-1)*cols
			}
			compute := fold(rUsed, cUsed)
			if g.utilScale < 1 {
				compute = int64(float64(compute) / g.utilScale)
			}
			// The pending prefetch from the previous fold overlaps this
			// fold's compute; any excess is a stall.
			fetchCycles := int64(math.Ceil(float64(pending) / dramBytesPerCycle))
			if fetchCycles > compute {
				st.StallCycles += fetchCycles - compute
			}
			st.ComputeCycles += compute

			// Queue the NEXT fold's operand movement.
			pending = 0
			nrf, ncf := rf, cf+1
			if ncf == colFolds {
				nrf, ncf = rf+1, 0
			}
			if nrf < rowFolds {
				// Filter slice for ncf: resident when within the cache
				// capacity under cyclic reuse.
				if ncf >= filterCachecap {
					pending += filterSlice
					st.DRAMBytes += filterSlice
				} else if nrf == 0 && rf == 0 && ncf == cf+1 {
					// First pass compulsory fill of the resident set.
					pending += filterSlice
					st.DRAMBytes += filterSlice
				}
				// Ifmap slice changes with the row fold.
				if nrf != rf {
					if ifResident {
						pending += ifSlice
						st.DRAMBytes += ifSlice
					} else {
						pending += ifStreamPerFold
						st.DRAMBytes += ifStreamPerFold
					}
				} else if !ifResident {
					pending += ifStreamPerFold
					st.DRAMBytes += ifStreamPerFold
				}
			}
			// Drain this fold's outputs (shares the channel).
			drain := rUsed * cUsed
			pending += drain
			st.DRAMBytes += drain
		}
	}
	// Compulsory first-fold fill happens before cycle zero in the
	// double-buffered pipeline (ramp-up), charged as stall time.
	first := filterSlice
	if ifResident {
		first += ifSlice
	} else {
		first += ifStreamPerFold
	}
	st.DRAMBytes += first
	st.StallCycles += int64(math.Ceil(float64(first) / dramBytesPerCycle))
	// Final pending drain.
	if pending > 0 {
		st.StallCycles += int64(math.Ceil(float64(pending) / dramBytesPerCycle))
	}
	return st, nil
}

// NetworkCycleStats aggregates the fold-level simulation over a network.
type NetworkCycleStats struct {
	Network       string
	ComputeCycles int64
	StallCycles   int64
	DRAMBytes     int64
	MACs          int64
	Layers        []CycleStats
}

// TotalCycles returns compute plus stall cycles.
func (s *NetworkCycleStats) TotalCycles() int64 { return s.ComputeCycles + s.StallCycles }

// StallFraction returns the share of execution lost to stalls.
func (s *NetworkCycleStats) StallFraction() float64 {
	t := s.TotalCycles()
	if t == 0 {
		return 0
	}
	return float64(s.StallCycles) / float64(t)
}

// SimulateNetworkCycles runs the fold-level simulation over a network.
func SimulateNetworkCycles(a Array, n *dnn.Network, dramBytesPerCycle float64) (*NetworkCycleStats, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	st := &NetworkCycleStats{Network: n.Name}
	for i := range n.Layers {
		ls, err := SimulateLayerCycles(a, &n.Layers[i], dramBytesPerCycle)
		if err != nil {
			return nil, err
		}
		st.ComputeCycles += ls.ComputeCycles
		st.StallCycles += ls.StallCycles
		st.DRAMBytes += ls.DRAMBytes
		st.MACs += ls.MACs
		st.Layers = append(st.Layers, ls)
	}
	return st, nil
}
