package systolic

import (
	"math"
	"testing"
	"testing/quick"

	"tesa/internal/dnn"
)

// TestCycleMatchesAnalyticUnbounded: with unbounded DRAM bandwidth the
// fold-level simulation must reproduce the analytical compute cycles
// exactly — SCALE-Sim's own relationship between its cycle-accurate and
// analytical modes for stall-free execution.
func TestCycleMatchesAnalyticUnbounded(t *testing.T) {
	a := testArray(128, 128, OutputStationary, 512)
	for _, n := range dnn.ARVRWorkload().Networks {
		ana, err := SimulateNetwork(a, &n)
		if err != nil {
			t.Fatal(err)
		}
		cyc, err := SimulateNetworkCycles(a, &n, math.Inf(1))
		if err != nil {
			t.Fatal(err)
		}
		if cyc.ComputeCycles != ana.Cycles {
			t.Errorf("%s: cycle-mode compute %d != analytical %d", n.Name, cyc.ComputeCycles, ana.Cycles)
		}
		if cyc.StallCycles != 0 {
			t.Errorf("%s: %d stall cycles at unbounded bandwidth", n.Name, cyc.StallCycles)
		}
		if cyc.MACs != ana.MACs {
			t.Errorf("%s: MACs %d != %d", n.Name, cyc.MACs, ana.MACs)
		}
	}
}

// TestCycleStallsMonotoneInBandwidth: lowering the DRAM bandwidth never
// reduces stall cycles (property over bandwidth pairs).
func TestCycleStallsMonotoneInBandwidth(t *testing.T) {
	a := testArray(64, 64, OutputStationary, 64)
	n := dnn.ResNet50()
	f := func(b1, b2 uint8) bool {
		lo := 1 + float64(b1%64)
		hi := 1 + float64(b2%64)
		if lo > hi {
			lo, hi = hi, lo
		}
		sLo, err1 := SimulateNetworkCycles(a, &n, lo)
		sHi, err2 := SimulateNetworkCycles(a, &n, hi)
		if err1 != nil || err2 != nil {
			return false
		}
		return sLo.StallCycles >= sHi.StallCycles
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestCycleTrafficTracksAnalytic: simulated off-chip traffic stays within
// a factor of the analytical tiling model's traffic (they use the same
// residency structure; the analytical model smooths refetch factors).
func TestCycleTrafficTracksAnalytic(t *testing.T) {
	for _, sramKB := range []int64{32, 256, 1024} {
		a := testArray(128, 128, OutputStationary, sramKB)
		for _, n := range dnn.ARVRWorkload().Networks {
			ana, err := SimulateNetwork(a, &n)
			if err != nil {
				t.Fatal(err)
			}
			cyc, err := SimulateNetworkCycles(a, &n, math.Inf(1))
			if err != nil {
				t.Fatal(err)
			}
			ratio := float64(cyc.DRAMBytes) / float64(ana.DRAMBytes)
			if ratio < 0.4 || ratio > 2.5 {
				t.Errorf("%s @ %d KB: cycle traffic %.2fx the analytical traffic", n.Name, sramKB, ratio)
			}
		}
	}
}

// TestStallFreeAssumptionWithProvisionedChannels: the paper assumes
// stall-free execution given each chiplet's bandwidth-driven DRAM channel
// allocation. Provisioning channels from the analytical model's peak
// per-layer bandwidth (exactly what the evaluator does) must keep stalls
// a small fraction of execution on the winning 200x200 / 3x1,024 KB
// configuration — i.e. the provisioning rule and the stall-free
// assumption are mutually consistent.
func TestStallFreeAssumptionWithProvisionedChannels(t *testing.T) {
	a := testArray(200, 200, OutputStationary, 1024)
	const freqHz = 400e6
	const sustainedChannelBps = 19.2e9 * 0.70
	var worst float64
	var worstName string
	for _, n := range dnn.ARVRWorkload().Networks {
		ana, err := SimulateNetwork(a, &n)
		if err != nil {
			t.Fatal(err)
		}
		channels := math.Ceil(ana.PeakDRAMBw * freqHz / sustainedChannelBps)
		if channels < 1 {
			channels = 1
		}
		bytesPerCycle := channels * sustainedChannelBps / freqHz
		st, err := SimulateNetworkCycles(a, &n, bytesPerCycle)
		if err != nil {
			t.Fatal(err)
		}
		if f := st.StallFraction(); f > worst {
			worst, worstName = f, n.Name
		}
	}
	if worst > 0.20 {
		t.Errorf("worst stall fraction %.1f%% (%s) — provisioning does not support the stall-free assumption", worst*100, worstName)
	}
}

// TestTinySRAMStalls: starving the SRAM (8 KB) at low bandwidth produces
// substantial stalls — the regime the paper's double-buffering avoids.
func TestTinySRAMStalls(t *testing.T) {
	a := testArray(128, 128, OutputStationary, 8)
	n := dnn.ResNet50()
	st, err := SimulateNetworkCycles(a, &n, 4)
	if err != nil {
		t.Fatal(err)
	}
	if st.StallCycles == 0 {
		t.Error("no stalls with an 8 KB SRAM at 4 B/cycle")
	}
	if st.TotalCycles() <= st.ComputeCycles {
		t.Error("total cycles not above compute cycles despite stalls")
	}
}

// TestCycleValidation: error paths.
func TestCycleValidation(t *testing.T) {
	a := testArray(64, 64, OutputStationary, 64)
	n := dnn.MobileNet()
	if _, err := SimulateNetworkCycles(a, &n, 0); err == nil {
		t.Error("zero bandwidth accepted")
	}
	ws := testArray(64, 64, WeightStationary, 64)
	if _, err := SimulateNetworkCycles(ws, &n, 8); err == nil {
		t.Error("ws dataflow accepted by the os-only cycle mode")
	}
	bad := Array{}
	l := dnn.NewFC("f", 8, 8)
	if _, err := SimulateLayerCycles(bad, &l, 8); err == nil {
		t.Error("invalid array accepted")
	}
}

// TestCycleUtilizationBounds: utilization is in (0, 1] and decreases as
// stalls appear.
func TestCycleUtilizationBounds(t *testing.T) {
	a := testArray(64, 64, OutputStationary, 64)
	l := dnn.NewConv("c", 56, 56, 64, 3, 3, 128, 1, 1)
	free, err := SimulateLayerCycles(a, &l, math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	starved, err := SimulateLayerCycles(a, &l, 2)
	if err != nil {
		t.Fatal(err)
	}
	uFree, uStarved := free.Utilization(a.PEs()), starved.Utilization(a.PEs())
	if uFree <= 0 || uFree > 1 || uStarved <= 0 || uStarved > 1 {
		t.Errorf("utilizations out of range: %f, %f", uFree, uStarved)
	}
	if uStarved >= uFree {
		t.Errorf("starved utilization %f not below stall-free %f", uStarved, uFree)
	}
}
