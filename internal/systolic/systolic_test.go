package systolic

import (
	"testing"
	"testing/quick"

	"tesa/internal/dnn"
)

func kb(n int64) int64 { return n * 1024 }

func testArray(rows, cols int, df Dataflow, sramKB int64) Array {
	return Array{Rows: rows, Cols: cols, Dataflow: df, SRAMBytes: kb(sramKB)}
}

func TestArrayValidate(t *testing.T) {
	good := testArray(16, 16, OutputStationary, 64)
	if err := good.Validate(); err != nil {
		t.Errorf("valid array rejected: %v", err)
	}
	bad := []Array{
		{Rows: 0, Cols: 16, SRAMBytes: 1024},
		{Rows: 16, Cols: -1, SRAMBytes: 1024},
		{Rows: 16, Cols: 16, SRAMBytes: 0},
		{Rows: 16, Cols: 16, SRAMBytes: 1024, Dataflow: Dataflow(9)},
	}
	for i, a := range bad {
		if err := a.Validate(); err == nil {
			t.Errorf("case %d: invalid array accepted", i)
		}
	}
}

func TestDataflowString(t *testing.T) {
	if OutputStationary.String() != "os" || WeightStationary.String() != "ws" {
		t.Error("dataflow names wrong")
	}
}

// TestOSCyclesSingleFold checks the canonical SCALE-Sim formula on a GEMM
// that fits in one fold: cycles = 2R + C + K - 2.
func TestOSCyclesSingleFold(t *testing.T) {
	a := testArray(32, 32, OutputStationary, 1024)
	l := dnn.NewGEMM("g", 32, 32, 100)
	st := SimulateLayer(a, &l)
	want := int64(2*32 + 32 + 100 - 2)
	if st.Cycles != want {
		t.Errorf("single-fold OS cycles = %d, want %d", st.Cycles, want)
	}
}

// TestWSCyclesSingleFold: weight-stationary single fold takes
// R + SR + C - 1 cycles.
func TestWSCyclesSingleFold(t *testing.T) {
	a := testArray(32, 32, WeightStationary, 1024)
	l := dnn.NewGEMM("g", 100, 32, 32) // K=32 rows, C=32 cols, SR=100
	st := SimulateLayer(a, &l)
	want := int64(32 + 100 + 32 - 1)
	if st.Cycles != want {
		t.Errorf("single-fold WS cycles = %d, want %d", st.Cycles, want)
	}
}

// TestOSFoldCount: a GEMM exactly 2x the array in both dims costs exactly
// 4 full folds.
func TestOSFoldCount(t *testing.T) {
	a := testArray(16, 16, OutputStationary, 1024)
	l := dnn.NewGEMM("g", 32, 32, 64)
	st := SimulateLayer(a, &l)
	want := 4 * int64(2*16+16+64-2)
	if st.Cycles != want {
		t.Errorf("4-fold OS cycles = %d, want %d", st.Cycles, want)
	}
}

// TestUtilizationBounds: utilization is in (0, 1] for every layer of
// every network in the workload.
func TestUtilizationBounds(t *testing.T) {
	a := testArray(64, 64, OutputStationary, 256)
	for _, n := range dnn.ARVRWorkload().Networks {
		st, err := SimulateNetwork(a, &n)
		if err != nil {
			t.Fatalf("%s: %v", n.Name, err)
		}
		if st.Utilization <= 0 || st.Utilization > 1 {
			t.Errorf("%s: utilization %f out of (0,1]", n.Name, st.Utilization)
		}
		for _, ls := range st.Layers {
			if ls.Utilization <= 0 || ls.Utilization > 1 {
				t.Errorf("%s/%s: layer utilization %f out of (0,1]", n.Name, ls.Name, ls.Utilization)
			}
		}
	}
}

// TestCyclesLowerBound: cycles can never beat the ideal MACs/PEs bound.
func TestCyclesLowerBound(t *testing.T) {
	for _, df := range []Dataflow{OutputStationary, WeightStationary} {
		a := testArray(128, 128, df, 1024)
		for _, n := range dnn.ARVRWorkload().Networks {
			st, err := SimulateNetwork(a, &n)
			if err != nil {
				t.Fatalf("%s: %v", n.Name, err)
			}
			ideal := st.MACs / int64(a.PEs())
			if st.Cycles < ideal {
				t.Errorf("%s df=%v: cycles %d below ideal bound %d", n.Name, df, st.Cycles, ideal)
			}
		}
	}
}

// TestBiggerArrayNotSlower: growing the array never increases a
// network's cycle count (property over array sizes).
func TestBiggerArrayNotSlower(t *testing.T) {
	net := dnn.ResNet50()
	prev := int64(1 << 62)
	for _, dim := range []int{16, 32, 64, 128, 256} {
		a := testArray(dim, dim, OutputStationary, 1024)
		st, err := SimulateNetwork(a, &net)
		if err != nil {
			t.Fatal(err)
		}
		if st.Cycles > prev {
			t.Errorf("array %dx%d: cycles %d > smaller array's %d", dim, dim, st.Cycles, prev)
		}
		prev = st.Cycles
	}
}

// TestLargerSRAMReducesDRAMTraffic: the core TESA trade-off — growing the
// SRAM can only reduce off-chip traffic, and strictly reduces it for
// capacity-bound networks.
func TestLargerSRAMReducesDRAMTraffic(t *testing.T) {
	net := dnn.ResNet50()
	prev := int64(1 << 62)
	for _, s := range []int64{8, 32, 128, 512, 2048} {
		a := testArray(128, 128, OutputStationary, s)
		st, err := SimulateNetwork(a, &net)
		if err != nil {
			t.Fatal(err)
		}
		if st.DRAMBytes > prev {
			t.Errorf("SRAM %d KB: DRAM traffic %d exceeds smaller SRAM's %d", s, st.DRAMBytes, prev)
		}
		prev = st.DRAMBytes
	}
	// With tiny SRAM, traffic must strictly exceed the compulsory volume.
	small, _ := SimulateNetwork(testArray(128, 128, OutputStationary, 8), &net)
	big, _ := SimulateNetwork(testArray(128, 128, OutputStationary, 4096), &net)
	if small.DRAMBytes <= big.DRAMBytes {
		t.Error("expected strictly more DRAM traffic with 8 KB SRAM than 4096 KB")
	}
}

// TestDRAMTrafficAtLeastCompulsory: off-chip traffic is never below the
// compulsory volume (weights + unique inputs of the first layer + final
// outputs are all unavoidable; we check the per-layer lower bound:
// filter + ofmap at minimum).
func TestDRAMTrafficAtLeastCompulsory(t *testing.T) {
	a := testArray(128, 128, OutputStationary, 4096)
	for _, n := range dnn.ARVRWorkload().Networks {
		st, err := SimulateNetwork(a, &n)
		if err != nil {
			t.Fatal(err)
		}
		for i, ls := range st.Layers {
			l := &n.Layers[i]
			if ls.DRAMFilter < 0 || ls.DRAMIfmap < 0 || ls.DRAMOfmap < 0 {
				t.Fatalf("%s/%s: negative traffic", n.Name, ls.Name)
			}
			if ls.DRAMFilter < l.FilterBytes() {
				t.Errorf("%s/%s: filter traffic %d below compulsory %d", n.Name, ls.Name, ls.DRAMFilter, l.FilterBytes())
			}
			if ls.DRAMOfmap < l.OfmapBytes() {
				t.Errorf("%s/%s: ofmap traffic %d below compulsory %d", n.Name, ls.Name, ls.DRAMOfmap, l.OfmapBytes())
			}
		}
	}
}

// TestSRAMAccessesAtLeastDRAM: every DRAM byte transits an SRAM, so SRAM
// access volume bounds DRAM traffic from above per stream.
func TestSRAMAccessesAtLeastDRAM(t *testing.T) {
	a := testArray(64, 64, OutputStationary, 128)
	n := dnn.MobileNet()
	st, err := SimulateNetwork(a, &n)
	if err != nil {
		t.Fatal(err)
	}
	for _, ls := range st.Layers {
		if ls.SRAMIfmap < ls.DRAMIfmap || ls.SRAMFilter < ls.DRAMFilter || ls.SRAMOfmap < ls.DRAMOfmap {
			t.Errorf("%s: SRAM volume below DRAM traffic", ls.Name)
		}
	}
}

// TestMACsConserved: the lowered GEMMs perform exactly the layer MACs for
// conv/FC/GEMM kinds regardless of array size (property test).
func TestMACsConserved(t *testing.T) {
	net := dnn.ResNet50()
	f := func(dimSel uint8) bool {
		dim := 16 + int(dimSel%121)*2
		a := testArray(dim, dim, OutputStationary, 1024)
		st, err := SimulateNetwork(a, &net)
		if err != nil {
			return false
		}
		return st.MACs == net.MACs()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestW1PerformanceViolationShape reproduces the Table III observation
// that a 16x16 array with 8 KB SRAMs is grossly too slow for 30 fps on
// the AR/VR workload (the paper reports 36x over budget; we require at
// least a 5x violation, since the shape, not the exact factor, is the
// claim under test here).
func TestW1PerformanceViolationShape(t *testing.T) {
	a := testArray(16, 16, OutputStationary, kb(8)/1024)
	a.SRAMBytes = kb(8)
	worst := 0.0
	for _, n := range dnn.ARVRWorkload().Networks {
		st, err := SimulateNetwork(a, &n)
		if err != nil {
			t.Fatal(err)
		}
		if lat := st.LatencySeconds(500e6); lat > worst {
			worst = lat
		}
	}
	budget := 1.0 / 30
	if worst < 5*budget {
		t.Errorf("16x16/8KB worst latency %.3fs, want > %.3fs (5x 30fps budget)", worst, 5*budget)
	}
}

// Test200x200LatencyStructure pins the workload/array sizing that drives
// the paper's mesh results: on a 200x200 array at 400 MHz, (i) U-Net —
// the heaviest DNN — fits one 30 fps frame on its own chiplet, (ii) the
// serial sum of all six exceeds two frames (so two chiplets cannot meet
// 30 fps and the optimizer must go to three), and (iii) the serial sum
// stays under four frames (three chiplets suffice).
func Test200x200LatencyStructure(t *testing.T) {
	a := testArray(200, 200, OutputStationary, 1024)
	frame := 1.0 / 30
	var total, unet float64
	for _, n := range dnn.ARVRWorkload().Networks {
		st, err := SimulateNetwork(a, &n)
		if err != nil {
			t.Fatal(err)
		}
		lat := st.LatencySeconds(400e6)
		total += lat
		if n.Name == "U-Net" {
			unet = lat
		}
	}
	if unet >= frame {
		t.Errorf("U-Net latency %.1f ms exceeds one 30 fps frame (%.1f ms)", unet*1e3, frame*1e3)
	}
	if total <= 2*frame {
		t.Errorf("serial latency %.1f ms fits two frames; two chiplets would always suffice", total*1e3)
	}
	if total >= 4*frame {
		t.Errorf("serial latency %.1f ms exceeds four frames; even wide meshes would miss 30 fps", total*1e3)
	}
}

func TestSimulatorCaching(t *testing.T) {
	sim := NewSimulator()
	a := testArray(64, 64, OutputStationary, 256)
	n := dnn.MobileNet()
	st1, err := sim.Simulate(a, &n)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := sim.Simulate(a, &n)
	if err != nil {
		t.Fatal(err)
	}
	if st1 != st2 {
		t.Error("cache miss on identical simulation")
	}
	if sim.CacheSize() != 1 {
		t.Errorf("cache size %d, want 1", sim.CacheSize())
	}
	b := testArray(65, 65, OutputStationary, 256)
	if _, err := sim.Simulate(b, &n); err != nil {
		t.Fatal(err)
	}
	if sim.CacheSize() != 2 {
		t.Errorf("cache size %d, want 2", sim.CacheSize())
	}
}

func TestSimulateNetworkRejectsInvalid(t *testing.T) {
	n := dnn.MobileNet()
	if _, err := SimulateNetwork(Array{}, &n); err == nil {
		t.Error("invalid array accepted")
	}
	bad := dnn.Network{Name: "bad"}
	if _, err := SimulateNetwork(testArray(16, 16, OutputStationary, 64), &bad); err == nil {
		t.Error("empty network accepted")
	}
}

func TestPeakBandwidths(t *testing.T) {
	a := testArray(100, 100, OutputStationary, 512)
	n := dnn.ResNet50()
	st, err := SimulateNetwork(a, &n)
	if err != nil {
		t.Fatal(err)
	}
	if st.PeakSRAMBytesPerCycle != float64(100+200) {
		t.Errorf("peak SRAM bytes/cycle = %f, want 300", st.PeakSRAMBytesPerCycle)
	}
	if st.PeakDRAMBw < st.AvgDRAMBw {
		t.Errorf("peak DRAM bw %f below average %f", st.PeakDRAMBw, st.AvgDRAMBw)
	}
	if st.AvgDRAMBw <= 0 {
		t.Error("average DRAM bandwidth not positive")
	}
}

// TestDepthwiseUtilizationPenalty: depthwise layers utilize the array
// worse than a standard conv of equal MACs.
func TestDepthwiseUtilizationPenalty(t *testing.T) {
	a := testArray(64, 64, OutputStationary, 512)
	dw := dnn.NewDWConv("dw", 56, 56, 128, 3, 3, 1, 1)
	cv := dnn.NewConv("cv", 56, 56, 128, 3, 3, 128, 1, 1)
	dws := SimulateLayer(a, &dw)
	cvs := SimulateLayer(a, &cv)
	if dws.Utilization >= cvs.Utilization {
		t.Errorf("depthwise util %f not below conv util %f", dws.Utilization, cvs.Utilization)
	}
}
