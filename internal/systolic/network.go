package systolic

import (
	"fmt"
	"sync"

	"tesa/internal/dnn"
)

// NetworkStats aggregates the per-layer model outputs over a whole DNN —
// the analogue of SCALE-Sim's end-of-run summary, in exactly the units
// TESA's power and DRAM models consume.
type NetworkStats struct {
	Network string
	Array   Array

	Cycles      int64   // total compute cycles for one inference (batch 1)
	Utilization float64 // cycle-weighted average utilization (paper Eq. 3)
	MACs        int64

	// Average SRAM bandwidths in bytes per cycle (SrBw_avg,m in Eq. 4),
	// indexed IFMAP, FILTER, OFMAP.
	AvgSRAMBw [3]float64
	// PeakSRAMBytesPerCycle is the worst-case concurrent SRAM traffic in
	// bytes per cycle; it sizes the TSV bundle of a 3-D chiplet.
	PeakSRAMBytesPerCycle float64

	DRAMBytes int64 // total off-chip traffic for one inference
	// AvgDRAMBw is DRAM traffic averaged over the whole inference, in
	// bytes per cycle.
	AvgDRAMBw float64
	// PeakDRAMBw is the highest per-layer average DRAM bandwidth in bytes
	// per cycle; double buffering makes the per-layer average the
	// sustained requirement, so the max over layers provisions channels.
	PeakDRAMBw float64

	Layers []LayerStats
}

// LatencySeconds returns the inference latency at the given operating
// frequency in hertz.
func (s *NetworkStats) LatencySeconds(freqHz float64) float64 {
	return float64(s.Cycles) / freqHz
}

// SimulateNetwork runs the analytical model for every layer of the
// network and aggregates per the paper's Eq. 3 (cycle-weighted
// utilization).
func SimulateNetwork(a Array, n *dnn.Network) (*NetworkStats, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	st := &NetworkStats{Network: n.Name, Array: a, Layers: make([]LayerStats, 0, len(n.Layers))}
	var utilCycles float64
	var sramBytes [3]int64
	for i := range n.Layers {
		ls := SimulateLayer(a, &n.Layers[i])
		if ls.Cycles <= 0 {
			return nil, fmt.Errorf("network %s: layer %s produced no cycles", n.Name, n.Layers[i].Name)
		}
		st.Cycles += ls.Cycles
		st.MACs += ls.MACs
		utilCycles += ls.Utilization * float64(ls.Cycles)
		sramBytes[0] += ls.SRAMIfmap
		sramBytes[1] += ls.SRAMFilter
		sramBytes[2] += ls.SRAMOfmap
		st.DRAMBytes += ls.DRAMBytes()
		if bw := float64(ls.DRAMBytes()) / float64(ls.Cycles); bw > st.PeakDRAMBw {
			st.PeakDRAMBw = bw
		}
		st.Layers = append(st.Layers, ls)
	}
	st.Utilization = utilCycles / float64(st.Cycles)
	for m := 0; m < 3; m++ {
		st.AvgSRAMBw[m] = float64(sramBytes[m]) / float64(st.Cycles)
	}
	// Worst-case concurrent SRAM traffic: every array row pulls an ifmap
	// byte, every column pulls a filter byte, and every column drains an
	// ofmap byte in the same cycle.
	st.PeakSRAMBytesPerCycle = float64(a.Rows + 2*a.Cols)
	st.AvgDRAMBw = float64(st.DRAMBytes) / float64(st.Cycles)
	return st, nil
}

// Simulator memoizes network simulations. TESA's annealer revisits the
// same (array, network) points constantly — the paper reports SCALE-Sim
// runs of minutes to hours per point, which is exactly why its optimizer
// caches and why exhaustive search is impractical.
type Simulator struct {
	mu    sync.Mutex
	cache map[simKey]*NetworkStats
}

type simKey struct {
	rows, cols int
	dataflow   Dataflow
	sramBytes  int64
	network    string
}

// NewSimulator returns an empty memoizing simulator.
func NewSimulator() *Simulator {
	return &Simulator{cache: make(map[simKey]*NetworkStats)}
}

// Simulate returns the (possibly cached) stats for the network on the
// array. Results are cached by network name, so distinct networks must
// have distinct names (dnn.Workload.Validate enforces this).
func (s *Simulator) Simulate(a Array, n *dnn.Network) (*NetworkStats, error) {
	k := simKey{a.Rows, a.Cols, a.Dataflow, a.SRAMBytes, n.Name}
	s.mu.Lock()
	if st, ok := s.cache[k]; ok {
		s.mu.Unlock()
		return st, nil
	}
	s.mu.Unlock()
	st, err := SimulateNetwork(a, n)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.cache[k] = st
	s.mu.Unlock()
	return st, nil
}

// CacheSize reports the number of memoized simulations (for tests and
// runtime diagnostics).
func (s *Simulator) CacheSize() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.cache)
}
