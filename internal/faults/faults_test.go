package faults

import (
	"errors"
	"testing"
	"time"
)

// TestParseEmpty: empty and all-whitespace specs disable injection.
func TestParseEmpty(t *testing.T) {
	for _, spec := range []string{"", "   ", ";", " ; ; "} {
		p, err := Parse(spec)
		if err != nil {
			t.Errorf("Parse(%q) err = %v", spec, err)
		}
		if !p.Empty() {
			t.Errorf("Parse(%q) = %v, want empty plan", spec, p)
		}
	}
}

// TestParseSpec walks the spec grammar: every kind, every option, ranges,
// and multi-rule plans.
func TestParseSpec(t *testing.T) {
	p, err := Parse("panic@systolic:rate=0.02,seed=3;diverge@thermal:ics=500;latency@*:delay=50ms;nan@cost:dim=64-128;error@dram:ics=0")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Rules) != 5 {
		t.Fatalf("parsed %d rules, want 5", len(p.Rules))
	}
	r := p.Rules[0]
	if r.Kind != KindPanic || r.Stage != "systolic" || r.Rate != 0.02 || r.Seed != 3 {
		t.Errorf("rule 0 = %+v", r)
	}
	r = p.Rules[1]
	if r.Kind != KindDiverge || !r.ICSSet || r.ICSLo != 500 || r.ICSHi != 500 {
		t.Errorf("rule 1 = %+v", r)
	}
	r = p.Rules[2]
	if r.Kind != KindLatency || r.Stage != "*" || r.Delay != 50*time.Millisecond {
		t.Errorf("rule 2 = %+v", r)
	}
	r = p.Rules[3]
	if r.Kind != KindNaN || !r.DimSet || r.DimLo != 64 || r.DimHi != 128 {
		t.Errorf("rule 3 = %+v", r)
	}
	// ics=0 is a legal spacing: the Set flag must distinguish it from
	// "match anything".
	r = p.Rules[4]
	if r.Kind != KindError || !r.ICSSet || r.ICSLo != 0 || r.ICSHi != 0 {
		t.Errorf("rule 4 = %+v", r)
	}
}

// TestParseRoundTrip: String() renders re-parseable specs.
func TestParseRoundTrip(t *testing.T) {
	spec := "panic@systolic:rate=0.02,seed=3;diverge@thermal:ics=500,attempts=2;latency@*:delay=50ms"
	p, err := Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Parse(p.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", p.String(), err)
	}
	if len(p2.Rules) != len(p.Rules) {
		t.Fatalf("round-trip lost rules: %q -> %q", spec, p2.String())
	}
	for i := range p.Rules {
		if p.Rules[i] != p2.Rules[i] {
			t.Errorf("rule %d round-trip: %+v != %+v", i, p.Rules[i], p2.Rules[i])
		}
	}
}

// TestParseErrors: malformed specs fail with a rule-attributed error.
func TestParseErrors(t *testing.T) {
	bad := []string{
		"panic",                       // no @stage
		"explode@thermal",             // unknown kind
		"panic@warp",                  // unknown stage
		"diverge@systolic",            // diverge is thermal-only
		"panic@thermal:rate=0",        // rate out of (0,1]
		"panic@thermal:rate=1.5",      // rate out of (0,1]
		"panic@thermal:rate",          // no value
		"panic@thermal:vibe=high",     // unknown option
		"panic@thermal:dim=128-64",    // inverted range
		"panic@thermal:dim=-4",        // negative bound
		"panic@thermal:delay=10ms",    // delay on a non-latency rule
		"error@thermal:attempts=2",    // attempts on a non-diverge rule
		"latency@thermal:delay=-5ms",  // non-positive delay
		"diverge@thermal:attempts=0",  // non-positive attempts
		"panic@thermal;explode@sched", // bad rule in a multi-rule spec
	}
	for _, spec := range bad {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted, want error", spec)
		}
	}
}

// TestAtPredicates: stage and dim/ics predicates select exactly the
// specified boundaries.
func TestAtPredicates(t *testing.T) {
	p, err := Parse("error@sched:dim=64-128,ics=250")
	if err != nil {
		t.Fatal(err)
	}
	if o := p.At("sched", 96, 250); o == nil || o.Err == nil {
		t.Error("in-range point not poisoned")
	} else if !errors.Is(o.Err, ErrInjected) {
		t.Errorf("injected error does not wrap ErrInjected: %v", o.Err)
	}
	for _, tc := range []struct {
		stage    string
		dim, ics int
	}{
		{"thermal", 96, 250}, // wrong stage
		{"sched", 130, 250},  // dim above range
		{"sched", 63, 250},   // dim below range
		{"sched", 96, 0},     // wrong ics
	} {
		if o := p.At(tc.stage, tc.dim, tc.ics); o != nil {
			t.Errorf("At(%s,%d,%d) = %+v, want nil", tc.stage, tc.dim, tc.ics, o)
		}
	}
}

// TestAtCombinesRules: multiple firing rules merge into one outcome.
func TestAtCombinesRules(t *testing.T) {
	p, err := Parse("latency@cost:delay=10ms;latency@*:delay=5ms;nan@cost")
	if err != nil {
		t.Fatal(err)
	}
	o := p.At("cost", 64, 0)
	if o == nil || !o.NaN || o.Delay != 15*time.Millisecond {
		t.Errorf("combined outcome = %+v, want NaN with 15ms delay", o)
	}
}

// TestRateDeterminism: rate decisions are pure functions of
// (seed, stage, point) — identical across calls, plans, and (by
// construction) processes — and the hit fraction tracks the rate.
func TestRateDeterminism(t *testing.T) {
	p1, _ := Parse("panic@systolic:rate=0.3,seed=7")
	p2, _ := Parse("panic@systolic:rate=0.3,seed=7")
	p3, _ := Parse("panic@systolic:rate=0.3,seed=8")
	hits, diff := 0, 0
	n := 0
	for dim := 8; dim <= 256; dim += 2 {
		for ics := 0; ics <= 1000; ics += 100 {
			n++
			a := p1.At("systolic", dim, ics) != nil
			b := p2.At("systolic", dim, ics) != nil
			if a != b {
				t.Fatalf("identical plans disagree at dim=%d ics=%d", dim, ics)
			}
			if a {
				hits++
			}
			if c := p3.At("systolic", dim, ics) != nil; c != a {
				diff++
			}
		}
	}
	frac := float64(hits) / float64(n)
	if frac < 0.2 || frac > 0.4 {
		t.Errorf("rate=0.3 poisoned %.2f of points", frac)
	}
	if diff == 0 {
		t.Error("changing the seed changed nothing: hash ignores the seed")
	}
}

// TestDivergeAttempts: diverge rules gate on the fidelity-ladder attempt
// index, and never surface through At (the thermal loop consults Diverge
// directly).
func TestDivergeAttempts(t *testing.T) {
	all, _ := Parse("diverge@thermal")
	first2, _ := Parse("diverge@thermal:attempts=2")
	for attempt := 0; attempt < 4; attempt++ {
		if !all.Diverge(64, 0, attempt) {
			t.Errorf("unbounded diverge passed attempt %d", attempt)
		}
		if got, want := first2.Diverge(64, 0, attempt), attempt < 2; got != want {
			t.Errorf("attempts=2 Diverge(attempt=%d) = %v, want %v", attempt, got, want)
		}
	}
	if o := all.At("thermal", 64, 0); o != nil {
		t.Errorf("diverge rule leaked into At: %+v", o)
	}
	if all.Diverge(64, 0, 0) && (&Plan{}).Diverge(64, 0, 0) {
		t.Error("empty plan diverges")
	}
	var nilPlan *Plan
	if nilPlan.Diverge(64, 0, 0) || nilPlan.At("thermal", 64, 0) != nil || !nilPlan.Empty() {
		t.Error("nil plan must be the disabled fast path")
	}
}

// TestParseShardRules: the worker-level grammar — crash/stall/lie bound
// to the shard pseudo-stage, shard index ranges, stall delays — parses,
// round-trips, and rejects category mixups.
func TestParseShardRules(t *testing.T) {
	p, err := Parse("crash@shard:shard=0;stall@shard:shard=1-3,delay=600ms;lie@shard:rate=0.1,seed=9")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Rules) != 3 {
		t.Fatalf("parsed %d rules, want 3", len(p.Rules))
	}
	r := p.Rules[0]
	if r.Kind != KindCrash || r.Stage != StageShard || !r.ShardSet || r.ShardLo != 0 || r.ShardHi != 0 {
		t.Errorf("rule 0 = %+v", r)
	}
	r = p.Rules[1]
	if r.Kind != KindStall || !r.ShardSet || r.ShardLo != 1 || r.ShardHi != 3 || r.Delay != 600*time.Millisecond {
		t.Errorf("rule 1 = %+v", r)
	}
	r = p.Rules[2]
	if r.Kind != KindLie || r.ShardSet || r.Rate != 0.1 || r.Seed != 9 {
		t.Errorf("rule 2 = %+v", r)
	}
	p2, err := Parse(p.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", p.String(), err)
	}
	for i := range p.Rules {
		if p.Rules[i] != p2.Rules[i] {
			t.Errorf("rule %d round-trip: %+v != %+v", i, p.Rules[i], p2.Rules[i])
		}
	}
	bad := []string{
		"crash@thermal",          // worker kind on a pipeline stage
		"crash@*",                // worker kinds don't wildcard
		"panic@shard",            // pipeline kind on the shard stage
		"crash@shard:dim=64",     // design-point predicate on a shard rule
		"crash@shard:ics=500",    // design-point predicate on a shard rule
		"panic@thermal:shard=0",  // shard predicate on a pipeline rule
		"crash@shard:delay=10ms", // delay is stall/latency-only
	}
	for _, spec := range bad {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted, want error", spec)
		}
	}
}

// TestAtShard: shard predicates select exactly the specified shard
// indices, outcomes merge across rules, stalls default their duration,
// and pipeline probes never see worker rules (nor vice versa).
func TestAtShard(t *testing.T) {
	p, err := Parse("crash@shard:shard=0;stall@shard:shard=0-2;lie@shard:shard=2-4")
	if err != nil {
		t.Fatal(err)
	}
	o := p.AtShard(0)
	if o == nil || !o.Crash || !o.Stall || o.Lie || o.StallFor != DefaultStall {
		t.Errorf("AtShard(0) = %+v, want crash+stall with default duration", o)
	}
	o = p.AtShard(2)
	if o == nil || o.Crash || !o.Stall || !o.Lie {
		t.Errorf("AtShard(2) = %+v, want stall+lie", o)
	}
	if o = p.AtShard(5); o != nil {
		t.Errorf("AtShard(5) = %+v, want nil", o)
	}
	if out := p.At("thermal", 64, 0); out != nil {
		t.Errorf("worker rules leaked into At: %+v", out)
	}
	var nilPlan *Plan
	if nilPlan.AtShard(0) != nil {
		t.Error("nil plan must be the disabled fast path")
	}

	// Rate decisions are keyed on the shard index and deterministic.
	rated, _ := Parse("lie@shard:rate=0.3,seed=7")
	rated2, _ := Parse("lie@shard:rate=0.3,seed=7")
	hits := 0
	for idx := 0; idx < 1000; idx++ {
		a := rated.AtShard(idx) != nil
		if b := rated2.AtShard(idx) != nil; a != b {
			t.Fatalf("identical plans disagree at shard %d", idx)
		}
		if a {
			hits++
		}
	}
	if frac := float64(hits) / 1000; frac < 0.2 || frac > 0.4 {
		t.Errorf("rate=0.3 poisoned %.2f of shards", frac)
	}
}

// TestSplitWorker: a mixed plan partitions into worker and pipeline
// halves; pure plans yield a nil other half; counters survive the split.
func TestSplitWorker(t *testing.T) {
	p, err := Parse("crash@shard:shard=0;panic@systolic:dim=64;lie@shard;diverge@thermal")
	if err != nil {
		t.Fatal(err)
	}
	w, pl := p.SplitWorker()
	if w == nil || len(w.Rules) != 2 || w.Rules[0].Kind != KindCrash || w.Rules[1].Kind != KindLie {
		t.Errorf("worker half = %v", w)
	}
	if pl == nil || len(pl.Rules) != 2 || pl.Rules[0].Kind != KindPanic || pl.Rules[1].Kind != KindDiverge {
		t.Errorf("pipeline half = %v", pl)
	}
	if w.AtShard(0) == nil || w.At("systolic", 64, 0) != nil {
		t.Error("worker half misrouted probes")
	}
	if pl.At("systolic", 64, 0) == nil || pl.AtShard(0) != nil {
		t.Error("pipeline half misrouted probes")
	}
	if got := w.FiredCounts(); len(got) != 2 {
		t.Errorf("worker FiredCounts = %v, want the crash and unbounded lie rules", got)
	}

	onlyPipeline, _ := Parse("panic@systolic")
	if ww, ppl := onlyPipeline.SplitWorker(); ww != nil || ppl == nil {
		t.Errorf("pipeline-only split = (%v, %v)", ww, ppl)
	}
	onlyWorker, _ := Parse("crash@shard")
	if ww, ppl := onlyWorker.SplitWorker(); ww == nil || ppl != nil {
		t.Errorf("worker-only split = (%v, %v)", ww, ppl)
	}
	var nilPlan *Plan
	if ww, ppl := nilPlan.SplitWorker(); ww != nil || ppl != nil {
		t.Error("nil plan split must be nil halves")
	}
}
