// Package faults is TESA's deterministic fault-injection subsystem: a
// seedable chaos layer that the evaluation pipeline consults at every
// stage boundary. It exists to prove the hardened pipeline — panic
// isolation, non-finite validation, degraded-fidelity thermal retries,
// and the quarantine ledger — against the failure modes a multi-hour
// DSE run actually meets: a pathological design point that panics a
// model, feeds a NaN downstream, stalls a stage, or defeats the thermal
// CG solver.
//
// A Plan is a list of rules parsed from a compact spec (the TESA_FAULTS
// environment variable or the CLIs' -faults flag):
//
//	kind@stage[:key=value,...][;kind@stage...]
//
// where kind is one of panic, error, nan, latency, diverge; stage is a
// pipeline stage name (systolic, floorplan, sched, dram, cost, thermal)
// or * for any stage; and the options select which design points the
// rule poisons:
//
//	dim=64      exact array dimension, or dim=64-128 for a range
//	ics=500     exact inter-chiplet spacing (um), or a range
//	rate=0.05   poison this fraction of matching points (default: all)
//	seed=7      PRNG seed for the rate decision (default 1)
//	delay=50ms  sleep duration for latency faults (default 25ms)
//	attempts=2  diverge only: fail only the first N solver-fidelity
//	            attempts, letting the degraded-retry ladder rescue the
//	            point (default: all attempts, forcing quarantine)
//
// Distributed sweeps add worker-level kinds — crash, stall, lie — that
// fire per leased shard rather than per pipeline stage. They apply only
// to the pseudo-stage "shard" and select shards by index instead of by
// design point:
//
//	shard=3     exact shard index, or shard=0-4 for a range
//	delay=600ms stall only: how long the worker sits on the lease
//	            without heartbeating (default 500ms)
//
// Example: crash the worker on its first pickup of shard 0, and lie
// about 10% of shards:
//
//	crash@shard:shard=0;lie@shard:rate=0.1,seed=9
//
// Plan.SplitWorker separates the two halves so the worker loop consumes
// the shard rules while the evaluator keeps the pipeline rules.
//
// Example: panic 2% of all systolic-stage evaluations and force thermal
// divergence for every point at 500 um spacing:
//
//	TESA_FAULTS="panic@systolic:rate=0.02,seed=3;diverge@thermal:ics=500"
//
// Decisions are pure functions of (rule seed, stage, design point), so
// a plan poisons the identical set of points on every run and on every
// worker — which is what lets tests assert exact quarantine sets and
// lets a resumed sweep skip exactly the poisoned points.
package faults

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind enumerates the injectable failure modes.
type Kind int

const (
	// KindPanic panics at the stage boundary (exercises the per-worker
	// recover and ErrStagePanic conversion).
	KindPanic Kind = iota
	// KindError returns ErrInjected from the stage (exercises the
	// structured-error quarantine path).
	KindError
	// KindNaN corrupts a stage output scalar to NaN (exercises the
	// non-finite boundary validation and ErrNonFinite).
	KindNaN
	// KindLatency sleeps at the stage boundary (exercises the stage
	// wall-clock budget and ErrStageTimeout).
	KindLatency
	// KindDiverge forces the thermal solver to report non-convergence
	// (exercises the degraded-fidelity retry ladder and
	// ErrSolverDiverged).
	KindDiverge
	// KindCrash makes a distributed sweep worker exit before executing
	// the shard, abandoning its leases (exercises lease expiry and
	// re-issue in internal/distrib).
	KindCrash
	// KindStall makes a worker sit on a leased shard past the lease TTL
	// before completing it (exercises work stealing and stale-report
	// merging).
	KindStall
	// KindLie makes a worker report a corrupted shard record claiming a
	// better-than-true winner (exercises trust-but-verify re-evaluation
	// and worker quarantine).
	KindLie
)

// String returns the spec keyword for the kind.
func (k Kind) String() string {
	switch k {
	case KindPanic:
		return "panic"
	case KindError:
		return "error"
	case KindNaN:
		return "nan"
	case KindLatency:
		return "latency"
	case KindDiverge:
		return "diverge"
	case KindCrash:
		return "crash"
	case KindStall:
		return "stall"
	case KindLie:
		return "lie"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// ErrInjected is the cause carried by every error-kind injection, so
// callers can tell chaos-run failures from organic ones with errors.Is.
var ErrInjected = errors.New("faults: injected error")

// DefaultLatency is the sleep applied by latency rules without an
// explicit delay option.
const DefaultLatency = 25 * time.Millisecond

// Rule is one parsed injection rule. The zero values of the predicate
// fields mean "match anything".
type Rule struct {
	Kind  Kind
	Stage string // pipeline stage name, or "*"

	// DimLo/DimHi and ICSLo/ICSHi bound the matching design points
	// (inclusive); the bounds only apply when the corresponding Set flag
	// is true, so an exact-zero bound (ics=0 is a legal spacing) still
	// works.
	DimSet       bool
	DimLo, DimHi int
	ICSSet       bool
	ICSLo, ICSHi int

	// ShardSet/ShardLo/ShardHi bound the matching shard indices for
	// worker-level rules at the "shard" stage (inclusive; only applied
	// when ShardSet is true, so shard=0 still works).
	ShardSet         bool
	ShardLo, ShardHi int

	// Rate poisons this fraction of matching points via a deterministic
	// per-point hash; 0 means 1 (every matching point).
	Rate float64
	// Seed feeds the per-point hash so distinct rules (or runs) can
	// poison distinct subsets.
	Seed int64
	// Delay is the latency-kind sleep.
	Delay time.Duration
	// Attempts, for diverge rules, fails only solver-fidelity attempts
	// 0..Attempts-1; 0 fails every attempt including the lumped
	// fallback.
	Attempts int
}

// String renders the rule back in spec syntax (not necessarily
// byte-identical to the input, but re-parseable).
func (r Rule) String() string {
	var opts []string
	if r.DimSet {
		opts = append(opts, rangeOpt("dim", r.DimLo, r.DimHi))
	}
	if r.ICSSet {
		opts = append(opts, rangeOpt("ics", r.ICSLo, r.ICSHi))
	}
	if r.ShardSet {
		opts = append(opts, rangeOpt("shard", r.ShardLo, r.ShardHi))
	}
	if r.Rate > 0 && r.Rate < 1 {
		opts = append(opts, fmt.Sprintf("rate=%g", r.Rate))
	}
	if r.Seed != 0 {
		opts = append(opts, fmt.Sprintf("seed=%d", r.Seed))
	}
	if r.Kind == KindStall && r.Delay > 0 {
		opts = append(opts, fmt.Sprintf("delay=%s", r.Delay))
	}
	if r.Kind == KindLatency && r.Delay > 0 {
		opts = append(opts, fmt.Sprintf("delay=%s", r.Delay))
	}
	if r.Kind == KindDiverge && r.Attempts > 0 {
		opts = append(opts, fmt.Sprintf("attempts=%d", r.Attempts))
	}
	s := fmt.Sprintf("%s@%s", r.Kind, r.Stage)
	if len(opts) > 0 {
		s += ":" + strings.Join(opts, ",")
	}
	return s
}

func rangeOpt(key string, lo, hi int) string {
	if lo == hi {
		return fmt.Sprintf("%s=%d", key, lo)
	}
	return fmt.Sprintf("%s=%d-%d", key, lo, hi)
}

// matches reports whether the rule's predicate covers (stage, dim, ics),
// including the deterministic rate decision.
func (r *Rule) matches(stage string, dim, ics int) bool {
	if r.Stage != "*" && r.Stage != stage {
		return false
	}
	if r.DimSet && (dim < r.DimLo || dim > r.DimHi) {
		return false
	}
	if r.ICSSet && (ics < r.ICSLo || ics > r.ICSHi) {
		return false
	}
	if r.Rate > 0 && r.Rate < 1 {
		return hash01(r.Seed, r.Stage, dim, ics) < r.Rate
	}
	return true
}

// matchesShard reports whether a worker-level rule covers the given
// shard index, including the deterministic rate decision (keyed on the
// shard index, so the same shards are poisoned on every run).
func (r *Rule) matchesShard(idx int) bool {
	if r.Stage != StageShard {
		return false
	}
	if r.ShardSet && (idx < r.ShardLo || idx > r.ShardHi) {
		return false
	}
	if r.Rate > 0 && r.Rate < 1 {
		return hash01(r.Seed, StageShard, idx, 0) < r.Rate
	}
	return true
}

// hash01 maps (seed, stage, dim, ics) to a uniform [0,1) value — the
// deterministic replacement for a coin flip, stable across runs and
// workers.
func hash01(seed int64, stage string, dim, ics int) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%d|%d", seed, stage, dim, ics)
	// 53 mantissa bits of the hash, scaled to [0,1).
	return float64(h.Sum64()>>11) / float64(1<<53)
}

// Outcome is the set of faults firing at one stage boundary. Multiple
// rules can fire together (e.g. a latency rule plus an error rule).
type Outcome struct {
	// Panic requests an injected panic at the boundary.
	Panic bool
	// Err, when non-nil, is the injected stage error (wraps ErrInjected).
	Err error
	// NaN requests corruption of a stage output scalar to NaN.
	NaN bool
	// Delay is the total injected latency.
	Delay time.Duration
}

// Plan is a parsed set of injection rules. The nil plan is the disabled
// fast path: every probe is a single nil check.
type Plan struct {
	Rules []Rule

	// fired counts, per rule, how many stage boundaries the rule
	// actually poisoned — the chaos run's ground truth for "did my fault
	// spec fire at all". A slice of atomics parallel to Rules (not a
	// mutex-guarded map) so concurrent sweep workers never serialize on
	// the injection probe; firedOnce sizes it lazily because plans are
	// also built as plain literals in tests.
	firedOnce sync.Once
	fired     []atomic.Int64
}

// markFired bumps rule i's injection counter.
func (p *Plan) markFired(i int) {
	p.firedOnce.Do(func() { p.fired = make([]atomic.Int64, len(p.Rules)) })
	if i < len(p.fired) {
		p.fired[i].Add(1)
	}
}

// FiredCounts reports how many times each rule fired, keyed by the
// rule's spec syntax (Rule.String); rules that never fired are omitted,
// and nil is returned when nothing fired at all. Safe to call while
// injection is running — counts are monotonic snapshots.
func (p *Plan) FiredCounts() map[string]int64 {
	if p == nil || p.fired == nil {
		return nil
	}
	var out map[string]int64
	for i := range p.Rules {
		if n := p.fired[i].Load(); n > 0 {
			if out == nil {
				out = make(map[string]int64)
			}
			out[p.Rules[i].String()] += n
		}
	}
	return out
}

// Empty reports whether the plan injects nothing.
func (p *Plan) Empty() bool { return p == nil || len(p.Rules) == 0 }

// String renders the plan in spec syntax.
func (p *Plan) String() string {
	if p == nil {
		return ""
	}
	parts := make([]string, len(p.Rules))
	for i, r := range p.Rules {
		parts[i] = r.String()
	}
	return strings.Join(parts, ";")
}

// At returns the faults firing at the given stage boundary for the
// given design point, or nil when none do. Deterministic: the same
// (plan, stage, point) always yields the same outcome.
func (p *Plan) At(stage string, dim, ics int) *Outcome {
	if p == nil {
		return nil
	}
	var out *Outcome
	for i := range p.Rules {
		r := &p.Rules[i]
		if r.Kind == KindDiverge || !r.matches(stage, dim, ics) {
			continue
		}
		if out == nil {
			out = &Outcome{}
		}
		p.markFired(i)
		switch r.Kind {
		case KindPanic:
			out.Panic = true
		case KindError:
			out.Err = fmt.Errorf("%w: rule %s at stage %s for dim=%d ics=%d", ErrInjected, r, stage, dim, ics)
		case KindNaN:
			out.NaN = true
		case KindLatency:
			d := r.Delay
			if d <= 0 {
				d = DefaultLatency
			}
			out.Delay += d
		}
	}
	return out
}

// ShardOutcome is the set of worker-level faults firing when a
// distributed sweep worker picks up one leased shard.
type ShardOutcome struct {
	// Crash makes the worker exit before executing the shard.
	Crash bool
	// Stall makes the worker sleep StallFor before executing the shard,
	// without heartbeating — long enough for the lease to expire.
	Stall bool
	// StallFor is the stall duration (DefaultStall when the rule gave
	// no delay).
	StallFor time.Duration
	// Lie makes the worker corrupt the shard record it reports,
	// claiming a better-than-true winner.
	Lie bool
}

// DefaultStall is the sleep applied by stall rules without an explicit
// delay option; long enough to outlive the short lease TTLs used in
// tests.
const DefaultStall = 500 * time.Millisecond

// AtShard returns the worker-level faults firing for the given shard
// index, or nil when none do. Deterministic: the same (plan, shard)
// always yields the same outcome on every worker.
func (p *Plan) AtShard(idx int) *ShardOutcome {
	if p == nil {
		return nil
	}
	var out *ShardOutcome
	for i := range p.Rules {
		r := &p.Rules[i]
		if !isShardKind(r.Kind) || !r.matchesShard(idx) {
			continue
		}
		if out == nil {
			out = &ShardOutcome{}
		}
		p.markFired(i)
		switch r.Kind {
		case KindCrash:
			out.Crash = true
		case KindStall:
			out.Stall = true
			d := r.Delay
			if d <= 0 {
				d = DefaultStall
			}
			if d > out.StallFor {
				out.StallFor = d
			}
		case KindLie:
			out.Lie = true
		}
	}
	return out
}

// SplitWorker partitions the plan into the worker-level rules (stage
// "shard", consumed by the distributed-sweep worker loop) and the
// pipeline rules (everything else, injected into the evaluator as
// usual). Either half is nil when empty, preserving the nil-plan fast
// path; a nil receiver yields two nil halves.
func (p *Plan) SplitWorker() (worker, pipeline *Plan) {
	if p == nil {
		return nil, nil
	}
	var w, pl Plan
	for _, r := range p.Rules {
		if isShardKind(r.Kind) {
			w.Rules = append(w.Rules, r)
		} else {
			pl.Rules = append(pl.Rules, r)
		}
	}
	if len(w.Rules) > 0 {
		worker = &w
	}
	if len(pl.Rules) > 0 {
		pipeline = &pl
	}
	return worker, pipeline
}

// isShardKind reports whether the kind is a worker-level fault (fires
// per leased shard, not per pipeline stage boundary).
func isShardKind(k Kind) bool {
	return k == KindCrash || k == KindStall || k == KindLie
}

// Diverge reports whether a diverge rule forces thermal-solver
// non-convergence for the given design point at the given
// fidelity-ladder attempt (0 = full fidelity; higher attempts are the
// degraded retries).
func (p *Plan) Diverge(dim, ics, attempt int) bool {
	if p == nil {
		return false
	}
	for i := range p.Rules {
		r := &p.Rules[i]
		if r.Kind != KindDiverge {
			continue
		}
		if !r.matches("thermal", dim, ics) {
			continue
		}
		if r.Attempts == 0 || attempt < r.Attempts {
			p.markFired(i)
			return true
		}
	}
	return false
}

// FromEnv parses the TESA_FAULTS-style value; an empty spec returns a
// nil plan (injection disabled).
func FromEnv(spec string) (*Plan, error) { return Parse(spec) }

// Parse parses a fault spec (see the package comment for the syntax).
// An empty or all-whitespace spec returns a nil plan.
func Parse(spec string) (*Plan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var plan Plan
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		rule, err := parseRule(part)
		if err != nil {
			return nil, fmt.Errorf("faults: rule %q: %w", part, err)
		}
		plan.Rules = append(plan.Rules, rule)
	}
	if len(plan.Rules) == 0 {
		return nil, nil
	}
	return &plan, nil
}

// StageShard is the pseudo-stage name for worker-level rules: the
// fault fires when a distributed sweep worker picks up a leased shard,
// not at a pipeline stage boundary.
const StageShard = "shard"

// knownStages guards against silently-dead rules from typo'd stage
// names.
var knownStages = map[string]bool{
	"*": true, "systolic": true, "floorplan": true, "sched": true,
	"dram": true, "cost": true, "thermal": true, StageShard: true,
}

func parseRule(s string) (Rule, error) {
	head, opts, hasOpts := strings.Cut(s, ":")
	kindStr, stage, ok := strings.Cut(head, "@")
	if !ok {
		return Rule{}, fmt.Errorf("want kind@stage, got %q", head)
	}
	var r Rule
	switch strings.TrimSpace(kindStr) {
	case "panic":
		r.Kind = KindPanic
	case "error":
		r.Kind = KindError
	case "nan":
		r.Kind = KindNaN
	case "latency":
		r.Kind = KindLatency
	case "diverge":
		r.Kind = KindDiverge
	case "crash":
		r.Kind = KindCrash
	case "stall":
		r.Kind = KindStall
	case "lie":
		r.Kind = KindLie
	default:
		return Rule{}, fmt.Errorf("unknown fault kind %q", kindStr)
	}
	r.Stage = strings.TrimSpace(stage)
	if !knownStages[r.Stage] {
		return Rule{}, fmt.Errorf("unknown stage %q", r.Stage)
	}
	if r.Kind == KindDiverge && r.Stage != "thermal" && r.Stage != "*" {
		return Rule{}, fmt.Errorf("diverge applies to the thermal stage, not %q", r.Stage)
	}
	if isShardKind(r.Kind) && r.Stage != StageShard {
		return Rule{}, fmt.Errorf("%s is a worker-level fault and applies to the shard stage, not %q", r.Kind, r.Stage)
	}
	if !isShardKind(r.Kind) && r.Stage == StageShard {
		return Rule{}, fmt.Errorf("%s is a pipeline fault and cannot apply to the shard stage", r.Kind)
	}
	r.Seed = 1
	if !hasOpts {
		return r, nil
	}
	for _, opt := range strings.Split(opts, ",") {
		opt = strings.TrimSpace(opt)
		if opt == "" {
			continue
		}
		key, val, ok := strings.Cut(opt, "=")
		if !ok {
			return Rule{}, fmt.Errorf("want key=value, got %q", opt)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		switch key {
		case "dim":
			if r.Stage == StageShard {
				return Rule{}, fmt.Errorf("dim does not apply to shard-stage rules (use shard=lo-hi)")
			}
			lo, hi, err := parseRange(val)
			if err != nil {
				return Rule{}, fmt.Errorf("dim: %w", err)
			}
			r.DimSet, r.DimLo, r.DimHi = true, lo, hi
		case "ics":
			if r.Stage == StageShard {
				return Rule{}, fmt.Errorf("ics does not apply to shard-stage rules (use shard=lo-hi)")
			}
			lo, hi, err := parseRange(val)
			if err != nil {
				return Rule{}, fmt.Errorf("ics: %w", err)
			}
			r.ICSSet, r.ICSLo, r.ICSHi = true, lo, hi
		case "shard":
			if r.Stage != StageShard {
				return Rule{}, fmt.Errorf("shard only applies to shard-stage rules")
			}
			lo, hi, err := parseRange(val)
			if err != nil {
				return Rule{}, fmt.Errorf("shard: %w", err)
			}
			r.ShardSet, r.ShardLo, r.ShardHi = true, lo, hi
		case "rate":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || math.IsNaN(f) || f <= 0 || f > 1 {
				return Rule{}, fmt.Errorf("rate must be in (0,1], got %q", val)
			}
			r.Rate = f
		case "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return Rule{}, fmt.Errorf("seed: %w", err)
			}
			r.Seed = n
		case "delay":
			if r.Kind != KindLatency && r.Kind != KindStall {
				return Rule{}, fmt.Errorf("delay only applies to latency and stall rules")
			}
			d, err := time.ParseDuration(val)
			if err != nil || d <= 0 {
				return Rule{}, fmt.Errorf("delay must be a positive duration, got %q", val)
			}
			r.Delay = d
		case "attempts":
			if r.Kind != KindDiverge {
				return Rule{}, fmt.Errorf("attempts only applies to diverge rules")
			}
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return Rule{}, fmt.Errorf("attempts must be a positive integer, got %q", val)
			}
			r.Attempts = n
		default:
			return Rule{}, fmt.Errorf("unknown option %q", key)
		}
	}
	return r, nil
}

// parseRange parses "64" (lo==hi) or "64-128".
func parseRange(s string) (int, int, error) {
	loStr, hiStr, isRange := strings.Cut(s, "-")
	lo, err := strconv.Atoi(strings.TrimSpace(loStr))
	if err != nil {
		return 0, 0, fmt.Errorf("bad bound %q", loStr)
	}
	hi := lo
	if isRange {
		if hi, err = strconv.Atoi(strings.TrimSpace(hiStr)); err != nil {
			return 0, 0, fmt.Errorf("bad bound %q", hiStr)
		}
	}
	if lo < 0 || hi < lo {
		return 0, 0, fmt.Errorf("bad range %d-%d", lo, hi)
	}
	return lo, hi, nil
}
