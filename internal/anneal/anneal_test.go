package anneal

import (
	"math"
	"math/rand"
	"testing"
)

func TestConfigValidate(t *testing.T) {
	good := Config{TInit: 19, TFinal: 0.5, Decay: 0.87, PerturbationsPerLevel: 10}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{TInit: 0.5, TFinal: 19, Decay: 0.87, PerturbationsPerLevel: 10}, // inverted temps
		{TInit: 19, TFinal: 0.5, Decay: 1.1, PerturbationsPerLevel: 10},  // decay >= 1
		{TInit: 19, TFinal: 0.5, Decay: 0.87, PerturbationsPerLevel: 0},  // no perturbations
		{TInit: -1, TFinal: 0.5, Decay: 0.87, PerturbationsPerLevel: 10},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestDefaultStartsMatchPaper(t *testing.T) {
	starts := DefaultStarts(7)
	if len(starts) != 3 {
		t.Fatalf("got %d starts, want 3", len(starts))
	}
	wantDecay := []float64{0.89, 0.87, 0.85}
	for i, c := range starts {
		if c.TInit != 19 || c.TFinal != 0.5 || c.PerturbationsPerLevel != 10 {
			t.Errorf("start %d: %+v deviates from the paper's annealer properties", i, c)
		}
		if c.Decay != wantDecay[i] {
			t.Errorf("start %d: decay %g, want %g", i, c.Decay, wantDecay[i])
		}
		if err := c.Validate(); err != nil {
			t.Errorf("start %d invalid: %v", i, err)
		}
	}
	// The paper notes the final uphill-acceptance probability is tiny
	// (~2e-6 for delta=0.85 at a unit objective gap).
	if p := math.Exp(-1 / 0.5); p > 0.15 {
		t.Errorf("final-level acceptance %g unexpectedly high", p)
	}
}

// quadratic is a 1-D integer test problem: minimize (x-17)^2 over
// x in [0, 100].
func quadratic(x int) (float64, bool) {
	d := float64(x - 17)
	return d * d, x >= 0 && x <= 100
}

func stepNeighbor(x int, rng *rand.Rand) int {
	return x + rng.Intn(11) - 5
}

func TestMinimizeFindsOptimum(t *testing.T) {
	cfg := Config{TInit: 19, TFinal: 0.5, Decay: 0.87, PerturbationsPerLevel: 10, Seed: 42}
	res, err := Minimize(cfg, func(*rand.Rand) (int, bool) { return 90, true }, stepNeighbor, quadratic)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("no solution found")
	}
	if res.Best < 12 || res.Best > 22 {
		t.Errorf("best x = %d, want near 17", res.Best)
	}
	if res.Evaluations == 0 || res.Accepted == 0 {
		t.Errorf("suspicious counters: %+v", res)
	}
}

// TestInfeasibleStatesRejected: an evaluation that declares everything
// infeasible leaves the annealer at its start and reports it faithfully.
func TestInfeasibleStatesRejected(t *testing.T) {
	cfg := Config{TInit: 19, TFinal: 0.5, Decay: 0.85, PerturbationsPerLevel: 10, Seed: 1}
	evals := 0
	res, err := Minimize(cfg,
		func(*rand.Rand) (int, bool) { return 50, true },
		stepNeighbor,
		func(x int) (float64, bool) {
			evals++
			return quadratic50Only(x)
		})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.Best != 50 {
		t.Errorf("best = %v found=%v, want the only feasible state 50", res.Best, res.Found)
	}
	if evals != res.Evaluations {
		t.Errorf("evaluation counter %d != actual calls %d", res.Evaluations, evals)
	}
}

// quadratic50Only marks only x=50 feasible.
func quadratic50Only(x int) (float64, bool) {
	d := float64(x - 17)
	return d * d, x == 50
}

// TestNoFeasibleStart: init failure yields Found=false, the paper's
// "solution does not exist" outcome.
func TestNoFeasibleStart(t *testing.T) {
	cfg := Config{TInit: 19, TFinal: 0.5, Decay: 0.85, PerturbationsPerLevel: 10, Seed: 3}
	res, err := Minimize(cfg, func(*rand.Rand) (int, bool) { return 0, false }, stepNeighbor, quadratic)
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Error("reported success without a feasible start")
	}
}

func TestDeterministicForSeed(t *testing.T) {
	cfg := Config{TInit: 19, TFinal: 0.5, Decay: 0.89, PerturbationsPerLevel: 10, Seed: 99}
	run := func() Result[int] {
		r, err := Minimize(cfg, func(*rand.Rand) (int, bool) { return 80, true }, stepNeighbor, quadratic)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if a.Best != b.Best || a.BestObj != b.BestObj || a.Evaluations != b.Evaluations || a.Accepted != b.Accepted {
		t.Errorf("same seed diverged: %+v vs %+v", a, b)
	}
}

// TestMultiStartBeatsWorstStart: the ensemble returns the best of its
// starts and aggregates counters.
func TestMultiStartBeatsWorstStart(t *testing.T) {
	// A deceptive 1-D landscape: global minimum at 5, local trap at 80.
	deceptive := func(x int) (float64, bool) {
		if x < 0 || x > 100 {
			return 0, false
		}
		d1 := float64(x-5) * float64(x-5)
		d2 := float64(x-80)*float64(x-80) + 50
		return math.Min(d1, d2), true
	}
	best, per, err := MultiStart(DefaultStarts(11),
		func(rng *rand.Rand) (int, bool) { return 80, true },
		stepNeighbor, deceptive)
	if err != nil {
		t.Fatal(err)
	}
	if !best.Found {
		t.Fatal("ensemble found nothing")
	}
	if len(per) != 3 {
		t.Fatalf("%d per-start results, want 3", len(per))
	}
	for _, r := range per {
		if r.Found && r.BestObj < best.BestObj {
			t.Errorf("ensemble best %g worse than a start's %g", best.BestObj, r.BestObj)
		}
	}
	var evals int
	for _, r := range per {
		evals += r.Evaluations
	}
	if best.Evaluations != evals {
		t.Errorf("ensemble evaluations %d != sum of starts %d", best.Evaluations, evals)
	}
}

func TestMultiStartRequiresConfigs(t *testing.T) {
	_, _, err := MultiStart(nil,
		func(*rand.Rand) (int, bool) { return 0, true },
		stepNeighbor, quadratic)
	if err == nil {
		t.Error("empty config list accepted")
	}
}

// TestUphillMovesHappen: at high temperature the annealer does accept
// worsening moves (this is what distinguishes it from greedy descent).
func TestUphillMovesHappen(t *testing.T) {
	cfg := Config{TInit: 1000, TFinal: 500, Decay: 0.9, PerturbationsPerLevel: 200, Seed: 5}
	res, err := Minimize(cfg, func(*rand.Rand) (int, bool) { return 50, true }, stepNeighbor, quadratic)
	if err != nil {
		t.Fatal(err)
	}
	if res.Uphill == 0 {
		t.Error("no uphill moves at T=1000; Metropolis rule broken")
	}
}
