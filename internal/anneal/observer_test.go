package anneal

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// recordObserver captures the full event stream; safe for concurrent
// use so MultiStart can share one instance.
type recordObserver struct {
	mu     sync.Mutex
	starts []StartEvent
	levels []LevelEvent
	dones  []DoneEvent
}

func (o *recordObserver) AnnealStart(e StartEvent) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.starts = append(o.starts, e)
}

func (o *recordObserver) AnnealLevel(e LevelEvent) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.levels = append(o.levels, e)
}

func (o *recordObserver) AnnealDone(e DoneEvent) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.dones = append(o.dones, e)
}

// TestObserverEventOrdering: one annealer produces AnnealStart, then
// per-level events with strictly decaying temperature and consistent
// counters, then AnnealDone matching the returned Result.
func TestObserverEventOrdering(t *testing.T) {
	obs := &recordObserver{}
	cfg := Config{TInit: 19, TFinal: 0.5, Decay: 0.87, PerturbationsPerLevel: 10,
		Seed: 42, Start: 7, Observer: obs}
	res, err := Minimize(cfg, func(*rand.Rand) (int, bool) { return 90, true }, stepNeighbor, quadratic)
	if err != nil {
		t.Fatal(err)
	}

	if len(obs.starts) != 1 || len(obs.dones) != 1 {
		t.Fatalf("lifecycle events: %d starts, %d dones, want 1 each", len(obs.starts), len(obs.dones))
	}
	if s := obs.starts[0]; s.Start != 7 || s.Decay != 0.87 || s.Seed != 42 {
		t.Errorf("start event %+v does not echo the config", s)
	}
	if len(obs.levels) != res.Levels {
		t.Fatalf("%d level events, result says %d levels", len(obs.levels), res.Levels)
	}

	var accepted, uphill int
	for i, lv := range obs.levels {
		if lv.Start != 7 {
			t.Fatalf("level %d: start label %d, want 7", i, lv.Start)
		}
		if lv.Level != i {
			t.Errorf("level index %d at position %d", lv.Level, i)
		}
		if i > 0 && lv.Temperature >= obs.levels[i-1].Temperature {
			t.Errorf("temperature did not decay: %g -> %g", obs.levels[i-1].Temperature, lv.Temperature)
		}
		if lv.Accepted+lv.Rejected != cfg.PerturbationsPerLevel {
			t.Errorf("level %d: accepted %d + rejected %d != N=%d",
				i, lv.Accepted, lv.Rejected, cfg.PerturbationsPerLevel)
		}
		if lv.Infeasible > lv.Rejected || lv.Uphill > lv.Accepted {
			t.Errorf("level %d: inconsistent counts %+v", i, lv)
		}
		if lv.BestObj > lv.CurObj {
			t.Errorf("level %d: best %g worse than current %g", i, lv.BestObj, lv.CurObj)
		}
		accepted += lv.Accepted
		uphill += lv.Uphill
	}
	if accepted != res.Accepted || uphill != res.Uphill {
		t.Errorf("per-level sums accepted=%d uphill=%d, result %d/%d",
			accepted, uphill, res.Accepted, res.Uphill)
	}
	if last := obs.levels[len(obs.levels)-1]; last.Evaluations != res.Evaluations {
		t.Errorf("final cumulative evaluations %d != result %d", last.Evaluations, res.Evaluations)
	}

	d := obs.dones[0]
	if d.Start != 7 || d.Found != res.Found || d.BestObj != res.BestObj ||
		d.Levels != res.Levels || d.Evaluations != res.Evaluations ||
		d.Accepted != res.Accepted || d.Uphill != res.Uphill {
		t.Errorf("done event %+v disagrees with result %+v", d, res)
	}
	if d.Duration <= 0 || d.Duration != res.Duration {
		t.Errorf("done duration %v vs result %v", d.Duration, res.Duration)
	}
}

// TestObserverDeterministic: a fixed seed replays an identical event
// stream (timestamps excluded) — the observer never perturbs the PRNG.
func TestObserverDeterministic(t *testing.T) {
	run := func() ([]LevelEvent, Result[int]) {
		obs := &recordObserver{}
		cfg := Config{TInit: 19, TFinal: 0.5, Decay: 0.89, PerturbationsPerLevel: 10,
			Seed: 99, Observer: obs}
		res, err := Minimize(cfg, func(*rand.Rand) (int, bool) { return 80, true }, stepNeighbor, quadratic)
		if err != nil {
			t.Fatal(err)
		}
		return obs.levels, res
	}
	evA, resA := run()
	evB, resB := run()
	for i := range evA {
		evA[i].Duration = 0 // wall-clock, excluded like the timestamps
	}
	for i := range evB {
		evB[i].Duration = 0
	}
	if !reflect.DeepEqual(evA, evB) {
		t.Error("same seed produced different level-event streams")
	}
	if resA.Best != resB.Best || resA.BestObj != resB.BestObj {
		t.Error("observer presence made the search nondeterministic")
	}

	// And identical to an unobserved run: the observer is read-only.
	plain := Config{TInit: 19, TFinal: 0.5, Decay: 0.89, PerturbationsPerLevel: 10, Seed: 99}
	resP, err := Minimize(plain, func(*rand.Rand) (int, bool) { return 80, true }, stepNeighbor, quadratic)
	if err != nil {
		t.Fatal(err)
	}
	if resP.Best != resA.Best || resP.Evaluations != resA.Evaluations || resP.Accepted != resA.Accepted {
		t.Error("observed and unobserved runs diverged")
	}
}

// TestObserverNoFeasibleStart: lifecycle events still bracket a run
// that never finds a feasible start; no level events fire.
func TestObserverNoFeasibleStart(t *testing.T) {
	obs := &recordObserver{}
	cfg := Config{TInit: 19, TFinal: 0.5, Decay: 0.85, PerturbationsPerLevel: 10,
		Seed: 3, Observer: obs}
	res, err := Minimize(cfg, func(*rand.Rand) (int, bool) { return 0, false }, stepNeighbor, quadratic)
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Fatal("found without a feasible start")
	}
	if len(obs.starts) != 1 || len(obs.dones) != 1 || len(obs.levels) != 0 {
		t.Errorf("events: %d starts, %d levels, %d dones; want 1/0/1",
			len(obs.starts), len(obs.levels), len(obs.dones))
	}
	if obs.dones[0].Found {
		t.Error("done event claims success")
	}
}

// TestMultiStartObserver: a shared observer sees every start's
// lifecycle, and per-start Result durations/levels are populated.
func TestMultiStartObserver(t *testing.T) {
	obs := &recordObserver{}
	cfgs := DefaultStarts(11)
	for i := range cfgs {
		cfgs[i].Observer = obs
	}
	best, per, err := MultiStart(cfgs,
		func(*rand.Rand) (int, bool) { return 80, true }, stepNeighbor, quadratic)
	if err != nil {
		t.Fatal(err)
	}
	if len(obs.starts) != 3 || len(obs.dones) != 3 {
		t.Fatalf("%d starts, %d dones; want 3 each", len(obs.starts), len(obs.dones))
	}
	seen := map[int]bool{}
	for _, s := range obs.starts {
		seen[s.Start] = true
	}
	if !seen[0] || !seen[1] || !seen[2] {
		t.Errorf("start labels %v, want {0,1,2}", seen)
	}
	var maxLevels int
	for i, r := range per {
		if r.Duration <= 0 || r.Levels <= 0 {
			t.Errorf("start %d: duration %v, levels %d not populated", i, r.Duration, r.Levels)
		}
		if r.Levels > maxLevels {
			maxLevels = r.Levels
		}
	}
	if best.Levels != maxLevels {
		t.Errorf("ensemble levels %d, want max over starts %d", best.Levels, maxLevels)
	}
	if best.Duration <= 0 {
		t.Errorf("ensemble duration %v", best.Duration)
	}
}
