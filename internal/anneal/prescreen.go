package anneal

import "sync/atomic"

// ScreenStats counts prescreen outcomes across an annealing run. It is
// safe for concurrent use — MultiStart's parallel annealers share one
// instance through the Prescreened closure.
type ScreenStats struct {
	screened atomic.Int64
	passed   atomic.Int64
}

// Screened returns the number of candidates rejected by the screen
// without a full evaluation.
func (s *ScreenStats) Screened() int { return int(s.screened.Load()) }

// Passed returns the number of candidates the screen let through to the
// full evaluation.
func (s *ScreenStats) Passed() int { return int(s.passed.Load()) }

// Prescreened wraps an evaluation with a screening predicate: a
// candidate for which screen returns true is reported infeasible
// without invoking eval, and counted in stats (which may be nil).
//
// The annealer consumes no PRNG state on an infeasible candidate — it
// rejects and moves on — so as long as screen only fires on states
// whose evaluation would report infeasible anyway, the annealing
// trajectory (every accept/reject decision and every PRNG draw) is
// bit-identical to the unscreened run; only the evaluation cost of the
// screened states is saved. A screen that fires on a feasible state
// changes the search, so screens should be conservative certificates,
// not heuristics (core wires the surrogate hot-skip here, which is
// exactly such a certificate).
func Prescreened[S any](screen func(S) bool, stats *ScreenStats, eval Eval[S]) Eval[S] {
	return func(s S) (float64, bool) {
		if screen(s) {
			if stats != nil {
				stats.screened.Add(1)
			}
			return 0, false
		}
		if stats != nil {
			stats.passed.Add(1)
		}
		return eval(s)
	}
}
