package anneal

import (
	"math/rand"
	"testing"
)

// intStep is a toy move generator: one PRNG draw per move.
func intStep(cur int, rng *rand.Rand) int { return cur + rng.Intn(11) - 5 }

// TestRankedNeighborColdIsBitIdentical: a scorer that never warms must
// leave the move stream — and the PRNG state behind it — untouched.
func TestRankedNeighborColdIsBitIdentical(t *testing.T) {
	var stats RankStats
	ranked := RankedNeighbor(4, intStep, func(int) (float64, bool) { return 0, false }, &stats)
	a, b := rand.New(rand.NewSource(3)), rand.New(rand.NewSource(3))
	cur := 0
	for i := 0; i < 100; i++ {
		got, want := ranked(cur, a), intStep(cur, b)
		if got != want {
			t.Fatalf("step %d: cold ranked move %d != plain move %d", i, got, want)
		}
		cur = got
	}
	if a.Int63() != b.Int63() {
		t.Fatal("cold ranking consumed extra PRNG state")
	}
	if stats.Cold() != 100 || stats.Decided() != 0 {
		t.Fatalf("stats: cold=%d decided=%d, want 100/0", stats.Cold(), stats.Decided())
	}
}

// TestRankedNeighborPicksBestScore: with a warm scorer the proposed
// move is the best-scored of the k draws.
func TestRankedNeighborPicksBestScore(t *testing.T) {
	var stats RankStats
	score := func(s int) (float64, bool) { return float64(s * s), true } // prefer 0
	ranked := RankedNeighbor(8, intStep, score, &stats)
	rng := rand.New(rand.NewSource(9))
	ref := rand.New(rand.NewSource(9))
	for i := 0; i < 50; i++ {
		got := ranked(10, rng)
		// Reference: same 8 draws from a cloned stream, min score wins,
		// ties keep the earliest draw.
		best := intStep(10, ref)
		bestS, _ := score(best)
		for j := 1; j < 8; j++ {
			c := intStep(10, ref)
			if s, _ := score(c); s < bestS {
				best, bestS = c, s
			}
		}
		if got != best {
			t.Fatalf("step %d: picked %d, reference best %d", i, got, best)
		}
	}
	if stats.Decided() != 50 {
		t.Fatalf("decided=%d want 50", stats.Decided())
	}
	if stats.Ranked() != 50*8 {
		t.Fatalf("ranked=%d want %d", stats.Ranked(), 50*8)
	}
}

// TestRankedNeighborDegenerateK: k < 2 is the plain generator.
func TestRankedNeighborDegenerateK(t *testing.T) {
	ranked := RankedNeighbor(1, intStep, func(int) (float64, bool) { return 0, true }, nil)
	a, b := rand.New(rand.NewSource(5)), rand.New(rand.NewSource(5))
	for i := 0; i < 20; i++ {
		if got, want := ranked(0, a), intStep(0, b); got != want {
			t.Fatalf("k=1 diverged: %d vs %d", got, want)
		}
	}
}
