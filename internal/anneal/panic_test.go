package anneal

import (
	"context"
	"errors"
	"math/rand"
	"testing"
)

// panicConfig is a small, valid annealer config for panic tests.
func panicConfig(seed int64) Config {
	return Config{TInit: 19, TFinal: 0.5, Decay: 0.87, PerturbationsPerLevel: 10, Seed: seed}
}

// TestPanicInEval: a panicking objective is recovered into an error
// wrapping ErrPanic instead of killing the process, and the partial
// result gathered before the panic survives.
func TestPanicInEval(t *testing.T) {
	evals := 0
	res, err := MinimizeContext(context.Background(), panicConfig(1),
		func(rng *rand.Rand) (int, bool) { return 40, true },
		stepNeighbor,
		func(x int) (float64, bool) {
			evals++
			if evals > 5 {
				panic("objective blew up")
			}
			return quadratic(x)
		})
	if !errors.Is(err, ErrPanic) {
		t.Fatalf("err = %v, want ErrPanic", err)
	}
	if !res.Found || res.Evaluations == 0 {
		t.Errorf("partial result lost across recover: %+v", res)
	}
}

// TestPanicInInit: a panic before any evaluation still comes back as
// ErrPanic with an empty (not-found) result.
func TestPanicInInit(t *testing.T) {
	res, err := MinimizeContext(context.Background(), panicConfig(2),
		func(rng *rand.Rand) (int, bool) { panic("no initial state") },
		stepNeighbor,
		func(x int) (float64, bool) { return quadratic(x) })
	if !errors.Is(err, ErrPanic) {
		t.Fatalf("err = %v, want ErrPanic", err)
	}
	if res.Found {
		t.Errorf("found a result despite init panicking: %+v", res)
	}
}

// TestPanicObserverStillFires: the AnnealDone observer defer runs while
// the panic unwinds, so event streams stay balanced even for crashed
// starts.
func TestPanicObserverStillFires(t *testing.T) {
	obs := &recordObserver{}
	cfg := panicConfig(3)
	cfg.Observer = obs
	_, err := MinimizeContext(context.Background(), cfg,
		func(rng *rand.Rand) (int, bool) { return 40, true },
		stepNeighbor,
		func(x int) (float64, bool) { panic("first eval") })
	if !errors.Is(err, ErrPanic) {
		t.Fatalf("err = %v, want ErrPanic", err)
	}
	if len(obs.starts) != 1 || len(obs.dones) != 1 {
		t.Errorf("observer saw %d starts / %d dones, want 1/1", len(obs.starts), len(obs.dones))
	}
}

// TestMultiStartPanic: one crashing start out of three surfaces as an
// ErrPanic error from MultiStartContext after all goroutines join —
// no leaked workers, no process death.
func TestMultiStartPanic(t *testing.T) {
	cfgs := DefaultStarts(11)
	for i := range cfgs {
		cfgs[i].Start = i
	}
	_, _, err := MultiStartContext(context.Background(), cfgs,
		func(rng *rand.Rand) (int, bool) { return 40, true },
		stepNeighbor,
		func(x int) (float64, bool) {
			if x < 20 {
				panic("poisoned region")
			}
			return quadratic(x)
		})
	if !errors.Is(err, ErrPanic) {
		t.Fatalf("err = %v, want ErrPanic", err)
	}
}
