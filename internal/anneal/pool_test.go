package anneal

import (
	"context"
	"math/rand"
	"testing"
)

// poolProblem is a deterministic synthetic minimization shared by the
// pool-invariance tests: minimize (s-42)^2 over integers, feasible
// everywhere, with seeded random walks.
func poolProblem() (Init[int], Neighbor[int], Eval[int]) {
	init := func(rng *rand.Rand) (int, bool) { return rng.Intn(200) - 100, true }
	neighbor := func(s int, rng *rand.Rand) int { return s + rng.Intn(21) - 10 }
	eval := func(s int) (float64, bool) {
		d := float64(s - 42)
		return d * d, true
	}
	return init, neighbor, eval
}

// TestMultiStartPoolWidthInvariance: every per-start result (and the
// merged ensemble result) is identical for any worker-pool width —
// each chain owns its config-seeded PRNG stream, so the width changes
// scheduling only.
func TestMultiStartPoolWidthInvariance(t *testing.T) {
	cfgs := DefaultStarts(7)
	init, neighbor, eval := poolProblem()
	ref, refPer, err := MultiStartContext(context.Background(), cfgs, init, neighbor, eval)
	if err != nil {
		t.Fatal(err)
	}
	for workers := 1; workers <= len(cfgs)+1; workers++ {
		got, per, err := MultiStartPoolContext(context.Background(), cfgs, workers, nil, init, neighbor, eval)
		if err != nil {
			t.Fatal(err)
		}
		if got.Found != ref.Found || got.Best != ref.Best || got.BestObj != ref.BestObj ||
			got.Evaluations != ref.Evaluations || got.Accepted != ref.Accepted ||
			got.Uphill != ref.Uphill || got.Levels != ref.Levels {
			t.Errorf("workers=%d: ensemble result diverged: %+v, want %+v", workers, got, ref)
		}
		if len(per) != len(refPer) {
			t.Fatalf("workers=%d: %d per-start results, want %d", workers, len(per), len(refPer))
		}
		for i := range per {
			p, w := per[i], refPer[i]
			if p.Found != w.Found || p.Best != w.Best || p.BestObj != w.BestObj ||
				p.Evaluations != w.Evaluations || p.Accepted != w.Accepted ||
				p.Uphill != w.Uphill || p.Levels != w.Levels {
				t.Errorf("workers=%d start %d: %+v, want %+v", workers, i, p, w)
			}
		}
	}
}

// TestMultiStartPoolLessTieBreak: when starts tie on the objective, a
// non-nil less picks the state ordering first regardless of start
// index, while nil preserves the legacy first-by-index winner.
func TestMultiStartPoolLessTieBreak(t *testing.T) {
	cfgs := DefaultStarts(3)
	// Flat landscape: every state is feasible with objective 0, so each
	// chain's best stays its seeded init draw and all chains tie.
	init := func(rng *rand.Rand) (int, bool) { return rng.Intn(1000), true }
	neighbor := func(s int, rng *rand.Rand) int { return s + rng.Intn(3) - 1 }
	eval := func(int) (float64, bool) { return 0, true }

	legacy, per, err := MultiStartPoolContext(context.Background(), cfgs, 0, nil, init, neighbor, eval)
	if err != nil {
		t.Fatal(err)
	}
	if legacy.Best != per[0].Best {
		t.Errorf("nil less: winner %d, want start 0's %d", legacy.Best, per[0].Best)
	}

	less := func(a, b int) bool { return a < b }
	got, per, err := MultiStartPoolContext(context.Background(), cfgs, 2, less, init, neighbor, eval)
	if err != nil {
		t.Fatal(err)
	}
	min := per[0].Best
	for _, r := range per[1:] {
		if r.Best < min {
			min = r.Best
		}
	}
	if got.Best != min {
		t.Errorf("less tie-break: winner %d, want minimum per-start best %d", got.Best, min)
	}
	if got.BestObj != 0 || !got.Found {
		t.Errorf("tie-break changed the objective: %+v", got)
	}
}
