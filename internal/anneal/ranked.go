package anneal

import (
	"math/rand"
	"sync/atomic"
)

// RankStats counts ranked-move outcomes across an annealing run. It is
// safe for concurrent use — parallel annealers share one instance
// through the RankedNeighbor closure.
type RankStats struct {
	decided atomic.Int64
	cold    atomic.Int64
	ranked  atomic.Int64
}

// Decided returns the number of steps where the scorer was warm and the
// ranking chose the proposed move.
func (s *RankStats) Decided() int { return int(s.decided.Load()) }

// Cold returns the number of steps that fell back to the plain move
// because the scorer declined (not enough training data yet).
func (s *RankStats) Cold() int { return int(s.cold.Load()) }

// Ranked returns the total number of candidate moves scored.
func (s *RankStats) Ranked() int { return int(s.ranked.Load()) }

// RankedNeighbor wraps a move generator with candidate ranking: each
// step draws up to k candidate moves from the chain's own PRNG, scores
// them with score (lower is better — core passes a surrogate
// lower-confidence bound), and proposes the best-scored one. Only the
// proposed move is ever evaluated at full fidelity, so the ranking
// redirects the trajectory without adding evaluations.
//
// The first candidate is drawn before any ranking commitment: when
// score declines it (ok=false — a cold model), the step returns that
// first draw having consumed exactly the PRNG state the unranked
// generator would have, so a run whose scorer never warms is
// bit-identical to the unranked run. Once the scorer warms the
// trajectory may diverge — which is the point — but every proposed
// state still flows through the caller's evaluation, so the soundness
// argument (winners are full-fidelity by construction) is untouched.
// Ties in score keep the earliest draw, making the proposal a
// deterministic function of the PRNG stream and the scorer's state.
func RankedNeighbor[S any](k int, neighbor Neighbor[S], score func(S) (float64, bool), stats *RankStats) Neighbor[S] {
	if k < 2 {
		return neighbor
	}
	return func(cur S, rng *rand.Rand) S {
		best := neighbor(cur, rng)
		bestScore, ok := score(best)
		if !ok {
			if stats != nil {
				stats.cold.Add(1)
			}
			return best
		}
		scored := int64(1)
		for i := 1; i < k; i++ {
			cand := neighbor(cur, rng)
			s, ok := score(cand)
			if !ok {
				continue
			}
			scored++
			if s < bestScore {
				best, bestScore = cand, s
			}
		}
		if stats != nil {
			stats.decided.Add(1)
			stats.ranked.Add(scored)
		}
		return best
	}
}
