// Package anneal implements the multi-start simulated-annealing (MSA)
// optimizer of TESA's Fig. 4: each annealer starts from a feasible
// configuration, performs N perturbations per temperature level, accepts
// better feasible configurations unconditionally and worse ones with a
// Metropolis probability, decays the annealing temperature by a per-start
// factor delta, and converges when the temperature falls below the final
// threshold. Multiple starts run in parallel and the best result wins,
// increasing the probability of reaching the global optimum.
//
// The package is generic over the state type so TESA's design points,
// the baselines' restricted spaces, and test problems all share one
// engine.
package anneal

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"
)

// ErrPanic marks a panic recovered from a caller-supplied callback
// (init, neighbor, eval, or an Observer). The annealers run inside
// MultiStart's worker goroutines, where an unrecovered panic would kill
// the whole process; MinimizeContext converts it into an error wrapping
// this sentinel instead.
var ErrPanic = errors.New("anneal: callback panic")

// Config parameterizes one annealer. The paper's validated settings are
// TInit=19, TFinal=0.5, N=10, with per-start decays 0.89, 0.87, 0.85
// (see DefaultStarts).
type Config struct {
	TInit                 float64 // initial annealing temperature (T_a)
	TFinal                float64 // convergence threshold
	Decay                 float64 // temperature multiplier per level (delta)
	PerturbationsPerLevel int     // N
	Seed                  int64   // deterministic PRNG seed

	// Start labels this annealer within a multi-start ensemble; it is
	// echoed in every Observer event (DefaultStarts numbers 0, 1, 2).
	Start int
	// Observer, when non-nil, receives lifecycle and per-temperature-
	// level events. Observers never influence the search: they see the
	// PRNG stream's results, not the PRNG. A shared Observer must be
	// safe for concurrent use — MultiStart runs annealers in parallel.
	Observer Observer
}

// Observer receives annealer progress. All callbacks run synchronously
// on the annealer's goroutine, so they must be cheap; expensive sinks
// should buffer.
type Observer interface {
	// AnnealStart fires once before the first temperature level.
	AnnealStart(StartEvent)
	// AnnealLevel fires after each completed temperature level.
	AnnealLevel(LevelEvent)
	// AnnealDone fires once per annealer, after convergence or when no
	// feasible start was found.
	AnnealDone(DoneEvent)
}

// StartEvent announces one annealer's configuration.
type StartEvent struct {
	Start  int
	TInit  float64
	TFinal float64
	Decay  float64
	Seed   int64
}

// LevelEvent reports one completed temperature level. The move counts
// are per-level (Accepted+Rejected == perturbations at this level);
// Evaluations is cumulative across the run.
type LevelEvent struct {
	Start       int
	Level       int     // 0-based temperature-level index
	Temperature float64 // T_a at this level
	CurObj      float64 // objective of the current state after the level
	BestObj     float64 // best objective so far
	Accepted    int     // moves accepted at this level
	Uphill      int     // accepted worsening moves at this level
	Rejected    int     // rejected moves at this level (incl. infeasible)
	Infeasible  int     // rejections due to constraint violations
	Evaluations int     // cumulative evaluations so far
	// Duration is the wall time this level took — the per-level latency
	// observability tooling plots to show where annealing time goes.
	Duration time.Duration
}

// DoneEvent summarizes one annealer's run.
type DoneEvent struct {
	Start       int
	Found       bool
	BestObj     float64 // meaningless when !Found
	Levels      int
	Evaluations int
	Accepted    int
	Uphill      int
	Duration    time.Duration
}

// Validate reports an error for unusable annealer settings.
func (c Config) Validate() error {
	if c.TInit <= 0 || c.TFinal <= 0 || c.TFinal >= c.TInit {
		return fmt.Errorf("anneal: need 0 < TFinal < TInit, got %g and %g", c.TFinal, c.TInit)
	}
	if c.Decay <= 0 || c.Decay >= 1 {
		return fmt.Errorf("anneal: decay must be in (0,1), got %g", c.Decay)
	}
	if c.PerturbationsPerLevel <= 0 {
		return fmt.Errorf("anneal: non-positive perturbations per level %d", c.PerturbationsPerLevel)
	}
	return nil
}

// DefaultStarts returns the paper's three-start configuration.
func DefaultStarts(seed int64) []Config {
	mk := func(i int, delta float64, s int64) Config {
		return Config{TInit: 19, TFinal: 0.5, Decay: delta, PerturbationsPerLevel: 10, Seed: s, Start: i}
	}
	return []Config{
		mk(0, 0.89, seed),
		mk(1, 0.87, seed+1),
		mk(2, 0.85, seed+2),
	}
}

// Eval evaluates a state: its objective value and whether it satisfies
// every user-defined constraint. Infeasible states are always rejected
// (Fig. 4), so their objective value is ignored.
type Eval[S any] func(S) (obj float64, feasible bool)

// Neighbor produces a random perturbation of a state.
type Neighbor[S any] func(S, *rand.Rand) S

// Init produces a starting state; ok=false means no feasible start was
// found and the annealer reports failure.
type Init[S any] func(*rand.Rand) (state S, ok bool)

// Result reports one annealer's (or the multi-start ensemble's) outcome.
type Result[S any] struct {
	Best        S
	BestObj     float64
	Found       bool // false when no feasible configuration was ever seen
	Evaluations int  // perturbations evaluated
	Accepted    int  // accepted moves (better or Metropolis)
	Uphill      int  // accepted worsening moves
	// Levels is the number of temperature levels completed; for a
	// MultiStart ensemble it is the maximum over its starts.
	Levels int
	// Duration is the annealer's wall-clock time; for a MultiStart
	// ensemble it is the wall-clock time of the whole parallel run (not
	// the sum of its starts).
	Duration time.Duration
}

// Minimize runs a single annealer per Fig. 4 without cancellation (a
// context.Background() wrapper over MinimizeContext).
func Minimize[S any](cfg Config, init Init[S], neighbor Neighbor[S], eval Eval[S]) (Result[S], error) {
	return MinimizeContext(context.Background(), cfg, init, neighbor, eval)
}

// MinimizeContext runs a single annealer per Fig. 4, observing ctx
// between evaluations: when ctx is cancelled or its deadline passes, the
// annealer stops within one evaluation's latency and returns ctx.Err()
// alongside the partial result gathered so far. The init function should
// itself observe ctx (it runs its own sampling loop); a ctx failure
// during init is still reported as ctx.Err() here.
func MinimizeContext[S any](ctx context.Context, cfg Config, init Init[S], neighbor Neighbor[S], eval Eval[S]) (res Result[S], err error) {
	if err := cfg.Validate(); err != nil {
		return Result[S]{}, err
	}
	// Registered first so it runs last: the observer and duration defers
	// below still fire while the panic unwinds, then the recover turns
	// it into an error carrying the partial result.
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%w: start %d: %v", ErrPanic, cfg.Start, r)
		}
	}()
	rng := rand.New(rand.NewSource(cfg.Seed))
	began := time.Now()
	if obs := cfg.Observer; obs != nil {
		obs.AnnealStart(StartEvent{
			Start: cfg.Start, TInit: cfg.TInit, TFinal: cfg.TFinal,
			Decay: cfg.Decay, Seed: cfg.Seed,
		})
		defer func() {
			obs.AnnealDone(DoneEvent{
				Start: cfg.Start, Found: res.Found, BestObj: res.BestObj,
				Levels: res.Levels, Evaluations: res.Evaluations,
				Accepted: res.Accepted, Uphill: res.Uphill, Duration: res.Duration,
			})
		}()
	}
	defer func() { res.Duration = time.Since(began) }()

	if cerr := ctx.Err(); cerr != nil {
		return res, cerr
	}
	cur, ok := init(rng)
	if cerr := ctx.Err(); cerr != nil {
		return res, cerr
	}
	if !ok {
		return res, nil
	}
	curObj, feasible := eval(cur)
	res.Evaluations++
	if !feasible {
		// The contract is that init returns a feasible state; treat a
		// violation as "nothing found" rather than panicking, so callers
		// can surface the paper's "solution does not exist" outcome.
		return res, nil
	}
	res.Best, res.BestObj, res.Found = cur, curObj, true

	for ta := cfg.TInit; ta > cfg.TFinal; ta *= cfg.Decay {
		prevAcc, prevUp, infeasible := res.Accepted, res.Uphill, 0
		levelStart := time.Now()
		for i := 0; i < cfg.PerturbationsPerLevel; i++ {
			if cerr := ctx.Err(); cerr != nil {
				return res, cerr
			}
			cand := neighbor(cur, rng)
			obj, feas := eval(cand)
			res.Evaluations++
			if !feas {
				infeasible++
				continue // constraint violation: reject, next iteration
			}
			accept := false
			if obj < curObj {
				accept = true
			} else {
				// Metropolis: accept a worse configuration with
				// probability exp(-(obj-cur)/T_a) to escape local minima.
				p := math.Exp(-(obj - curObj) / ta)
				if rng.Float64() < p {
					accept = true
					res.Uphill++
				}
			}
			if accept {
				cur, curObj = cand, obj
				res.Accepted++
				if obj < res.BestObj {
					res.Best, res.BestObj = cand, obj
				}
			}
		}
		res.Levels++
		if obs := cfg.Observer; obs != nil {
			acc := res.Accepted - prevAcc
			obs.AnnealLevel(LevelEvent{
				Start:       cfg.Start,
				Level:       res.Levels - 1,
				Temperature: ta,
				CurObj:      curObj,
				BestObj:     res.BestObj,
				Accepted:    acc,
				Uphill:      res.Uphill - prevUp,
				Rejected:    cfg.PerturbationsPerLevel - acc,
				Infeasible:  infeasible,
				Evaluations: res.Evaluations,
				Duration:    time.Since(levelStart),
			})
		}
	}
	return res, nil
}

// MultiStart runs one annealer per config in parallel and returns the
// best result plus the per-start results (a context.Background() wrapper
// over MultiStartContext).
func MultiStart[S any](cfgs []Config, init Init[S], neighbor Neighbor[S], eval Eval[S]) (Result[S], []Result[S], error) {
	return MultiStartContext(context.Background(), cfgs, init, neighbor, eval)
}

// MultiStartContext runs one annealer per config in parallel, each
// observing ctx between evaluations (see MinimizeContext), and returns
// the best result plus the per-start results. On cancellation every
// start winds down within one evaluation's latency, the goroutines are
// joined (no leaks), and the first error — ctx.Err() in the
// cancellation case — is returned. Objective ties across starts resolve
// by start order (the legacy behavior; see MultiStartPoolContext for a
// state-based tie-break).
func MultiStartContext[S any](ctx context.Context, cfgs []Config, init Init[S], neighbor Neighbor[S], eval Eval[S]) (Result[S], []Result[S], error) {
	return MultiStartPoolContext(ctx, cfgs, 0, nil, init, neighbor, eval)
}

// MultiStartPoolContext is MultiStartContext with an explicit worker
// pool: at most workers chains run concurrently (0, negative, or a value
// >= len(cfgs) runs every chain concurrently, matching
// MultiStartContext), drawing configs in index order. Each chain owns
// its config-seeded PRNG stream, so the pool width changes scheduling
// only — every per-start Result is identical for any width.
//
// less, when non-nil, refines the cross-start winner selection: among
// starts tied on BestObj, the state that orders first under less wins
// regardless of start index, making the ensemble winner independent of
// which chains happen to share the optimum (with nil less, lower start
// index wins ties, the MultiStartContext behavior).
func MultiStartPoolContext[S any](ctx context.Context, cfgs []Config, workers int, less func(a, b S) bool, init Init[S], neighbor Neighbor[S], eval Eval[S]) (Result[S], []Result[S], error) {
	if len(cfgs) == 0 {
		return Result[S]{}, nil, fmt.Errorf("anneal: no starts configured")
	}
	if workers <= 0 || workers > len(cfgs) {
		workers = len(cfgs)
	}
	began := time.Now()
	results := make([]Result[S], len(cfgs))
	errs := make([]error, len(cfgs))
	idxCh := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				results[i], errs[i] = MinimizeContext(ctx, cfgs[i], init, neighbor, eval)
			}
		}()
	}
	for i := range cfgs {
		idxCh <- i
	}
	close(idxCh)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return Result[S]{}, nil, err
		}
	}
	var best Result[S]
	best.Duration = time.Since(began)
	for _, r := range results {
		best.Evaluations += r.Evaluations
		best.Accepted += r.Accepted
		best.Uphill += r.Uphill
		if r.Levels > best.Levels {
			best.Levels = r.Levels
		}
		better := r.Found && (!best.Found || r.BestObj < best.BestObj ||
			(r.BestObj == best.BestObj && less != nil && less(r.Best, best.Best)))
		if better {
			best.Best, best.BestObj, best.Found = r.Best, r.BestObj, true
		}
	}
	return best, results, nil
}
