package anneal

import (
	"context"
	"errors"
	"math/rand"
	"sync/atomic"
	"testing"
)

// cancellingEval wraps the quadratic test problem and cancels after n
// evaluations — a deterministic "mid-run" cancellation edge.
func cancellingEval(cancel context.CancelFunc, n int64) Eval[int] {
	var seen int64
	return func(x int) (float64, bool) {
		if atomic.AddInt64(&seen, 1) == n {
			cancel()
		}
		return quadratic(x)
	}
}

func TestMinimizeContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := Config{TInit: 19, TFinal: 0.5, Decay: 0.87, PerturbationsPerLevel: 10, Seed: 1}
	res, err := MinimizeContext(ctx, cfg, func(*rand.Rand) (int, bool) { return 40, true }, stepNeighbor, Eval[int](func(x int) (float64, bool) { return quadratic(x) }))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res.Evaluations != 0 {
		t.Errorf("evaluated %d states under a pre-cancelled context", res.Evaluations)
	}
}

func TestMinimizeContextCancelMid(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := Config{TInit: 19, TFinal: 0.5, Decay: 0.87, PerturbationsPerLevel: 10, Seed: 1}
	res, err := MinimizeContext(ctx, cfg, func(*rand.Rand) (int, bool) { return 40, true },
		stepNeighbor, cancellingEval(cancel, 5))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// One evaluation may complete between the cancelling one and the
	// next ctx poll, but the run must stop immediately after that.
	if res.Evaluations < 5 || res.Evaluations > 6 {
		t.Errorf("evaluations = %d, want 5 (or 6 for the in-flight one)", res.Evaluations)
	}
	if !res.Found {
		t.Error("partial result lost the feasible start")
	}
}

func TestMinimizeContextMatchesMinimize(t *testing.T) {
	cfg := Config{TInit: 19, TFinal: 0.5, Decay: 0.87, PerturbationsPerLevel: 10, Seed: 9}
	init := func(rng *rand.Rand) (int, bool) { return 80, true }
	eval := Eval[int](func(x int) (float64, bool) { return quadratic(x) })
	plain, err := Minimize(cfg, init, stepNeighbor, eval)
	if err != nil {
		t.Fatal(err)
	}
	withCtx, err := MinimizeContext(context.Background(), cfg, init, stepNeighbor, eval)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Best != withCtx.Best || plain.BestObj != withCtx.BestObj || plain.Evaluations != withCtx.Evaluations {
		t.Errorf("context plumbing changed the search: %+v vs %+v", plain, withCtx)
	}
}

func TestMultiStartContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Cancel once the parallel starts have together burned 10
	// evaluations; every start must wind down and join.
	_, _, err := MultiStartContext(ctx, DefaultStarts(3),
		func(rng *rand.Rand) (int, bool) { return 60, true },
		stepNeighbor, cancellingEval(cancel, 10))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestMultiStartContextMatchesMultiStart(t *testing.T) {
	init := func(rng *rand.Rand) (int, bool) { return 70, true }
	eval := Eval[int](func(x int) (float64, bool) { return quadratic(x) })
	plain, plainPer, err := MultiStart(DefaultStarts(5), init, stepNeighbor, eval)
	if err != nil {
		t.Fatal(err)
	}
	withCtx, ctxPer, err := MultiStartContext(context.Background(), DefaultStarts(5), init, stepNeighbor, eval)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Best != withCtx.Best || plain.BestObj != withCtx.BestObj {
		t.Errorf("context plumbing changed the ensemble: %+v vs %+v", plain, withCtx)
	}
	if len(plainPer) != len(ctxPer) {
		t.Fatalf("per-start counts differ: %d vs %d", len(plainPer), len(ctxPer))
	}
	for i := range plainPer {
		if plainPer[i].Best != ctxPer[i].Best || plainPer[i].Evaluations != ctxPer[i].Evaluations {
			t.Errorf("start %d diverged: %+v vs %+v", i, plainPer[i], ctxPer[i])
		}
	}
}
