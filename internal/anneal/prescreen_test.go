package anneal

import (
	"math/rand"
	"sync"
	"testing"
)

// quadEval is a 1-D test objective: minimize (x-3)^2, feasible on
// [-10, 10].
func quadEval(x float64) (float64, bool) {
	return (x - 3) * (x - 3), x >= -10 && x <= 10
}

// TestPrescreenedTrajectoryIdentical: a screen that fires exactly on
// (a subset of) infeasible states leaves the annealing trajectory
// bit-identical — same best, same objective, same move counters — while
// recording the screened states.
func TestPrescreenedTrajectoryIdentical(t *testing.T) {
	cfg := Config{TInit: 19, TFinal: 0.5, Decay: 0.87, PerturbationsPerLevel: 10, Seed: 42}
	init := func(rng *rand.Rand) (float64, bool) { return 0, true }
	neighbor := func(x float64, rng *rand.Rand) float64 { return x + (rng.Float64()-0.5)*12 }

	run := func(eval Eval[float64]) Result[float64] {
		res, err := Minimize(cfg, init, neighbor, eval)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	var stats ScreenStats
	screen := func(x float64) bool { return x > 10 } // fires only on infeasible states
	ref := run(quadEval)
	scr := run(Prescreened(screen, &stats, quadEval))

	if ref.BestObj != scr.BestObj || ref.Best != scr.Best {
		t.Errorf("screened best (%g, %g) differs from reference (%g, %g)",
			scr.Best, scr.BestObj, ref.Best, ref.BestObj)
	}
	if ref.Accepted != scr.Accepted || ref.Uphill != scr.Uphill || ref.Evaluations != scr.Evaluations {
		t.Errorf("screened counters (acc %d up %d ev %d) differ from reference (acc %d up %d ev %d)",
			scr.Accepted, scr.Uphill, scr.Evaluations, ref.Accepted, ref.Uphill, ref.Evaluations)
	}
	if stats.Screened()+stats.Passed() != scr.Evaluations {
		t.Errorf("screen stats %d+%d do not account for %d evaluations",
			stats.Screened(), stats.Passed(), scr.Evaluations)
	}
}

// TestPrescreenedCounts: the screen's decisions are tallied and eval is
// not called for screened states.
func TestPrescreenedCounts(t *testing.T) {
	var stats ScreenStats
	evals := 0
	wrapped := Prescreened(
		func(x int) bool { return x < 0 },
		&stats,
		func(x int) (float64, bool) { evals++; return float64(x), true },
	)
	for _, x := range []int{-1, -2, 5, 7, -3} {
		obj, feas := wrapped(x)
		if x < 0 && feas {
			t.Errorf("screened state %d reported feasible", x)
		}
		if x >= 0 && (!feas || obj != float64(x)) {
			t.Errorf("passed state %d mis-evaluated (%g, %v)", x, obj, feas)
		}
	}
	if stats.Screened() != 3 || stats.Passed() != 2 || evals != 2 {
		t.Errorf("screened %d passed %d evals %d, want 3/2/2", stats.Screened(), stats.Passed(), evals)
	}
}

// TestPrescreenedNilStats: a nil stats pointer is allowed.
func TestPrescreenedNilStats(t *testing.T) {
	wrapped := Prescreened(func(x int) bool { return x < 0 }, nil, func(x int) (float64, bool) { return 0, true })
	if _, feas := wrapped(-5); feas {
		t.Error("screened state reported feasible")
	}
	if _, feas := wrapped(5); !feas {
		t.Error("passed state reported infeasible")
	}
}

// TestPrescreenedConcurrent: shared stats under parallel use (run with
// -race).
func TestPrescreenedConcurrent(t *testing.T) {
	var stats ScreenStats
	wrapped := Prescreened(func(x int) bool { return x%2 == 0 }, &stats, func(x int) (float64, bool) { return 0, true })
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				wrapped(g*100 + i)
			}
		}(g)
	}
	wg.Wait()
	if stats.Screened() != 400 || stats.Passed() != 400 {
		t.Errorf("screened %d passed %d, want 400/400", stats.Screened(), stats.Passed())
	}
}
