package telemetry

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func getBody(t *testing.T, url string) (string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body), resp.Header.Get("Content-Type")
}

func TestServerEndpoints(t *testing.T) {
	tel := New(nil)
	tel.Registry().Counter("evaluator.cache.hit").Add(5)
	tel.Registry().Histogram("stage.thermal").Observe(0.125)

	srv, err := Serve("127.0.0.1:0", tel)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	t.Run("metrics", func(t *testing.T) {
		body, ct := getBody(t, base+"/metrics")
		if !strings.HasPrefix(ct, "text/plain") || !strings.Contains(ct, "version=0.0.4") {
			t.Errorf("content type = %q", ct)
		}
		for _, want := range []string{
			"tesa_evaluator_cache_hit 5",
			"# TYPE tesa_stage_thermal summary",
			"tesa_stage_thermal_count 1",
			"tesa_uptime_seconds",
		} {
			if !strings.Contains(body, want) {
				t.Errorf("missing %q in /metrics:\n%s", want, body)
			}
		}
	})

	t.Run("vars", func(t *testing.T) {
		srv.PublishManifest(map[string]any{"run": "deadbeef", "command": "tesa-test"})
		body, ct := getBody(t, base+"/debug/vars")
		if !strings.HasPrefix(ct, "application/json") {
			t.Errorf("content type = %q", ct)
		}
		var v struct {
			Metrics  MetricsSnapshot `json:"metrics"`
			Manifest map[string]any  `json:"manifest"`
		}
		if err := json.Unmarshal([]byte(body), &v); err != nil {
			t.Fatalf("invalid JSON: %v\n%s", err, body)
		}
		if v.Metrics.Counters["evaluator.cache.hit"] != 5 {
			t.Errorf("metrics snapshot missing counter: %+v", v.Metrics)
		}
		if v.Manifest["run"] != "deadbeef" {
			t.Errorf("manifest not served: %+v", v.Manifest)
		}
	})

	t.Run("progress", func(t *testing.T) {
		body, _ := getBody(t, base+"/progress")
		if strings.TrimSpace(body) != "{}" {
			t.Errorf("empty progress should serve {}: %q", body)
		}
		srv.PublishProgress(map[string]any{"phase": "sweep", "done": 3, "total": 10})
		body, _ = getBody(t, base+"/progress")
		var p map[string]any
		if err := json.Unmarshal([]byte(body), &p); err != nil {
			t.Fatalf("invalid JSON: %v", err)
		}
		if p["phase"] != "sweep" || p["done"] != float64(3) {
			t.Errorf("progress = %v", p)
		}
	})

	t.Run("pprof", func(t *testing.T) {
		body, _ := getBody(t, base+"/debug/pprof/cmdline")
		if body == "" {
			t.Error("pprof cmdline empty")
		}
	})

	t.Run("index", func(t *testing.T) {
		body, _ := getBody(t, base+"/")
		if !strings.Contains(body, "/metrics") {
			t.Errorf("index = %q", body)
		}
	})
}

// TestServerConcurrentScrapeAndWrite races scrapes against metric
// writes and progress publishes — the live-sweep scenario. Run with
// -race in CI.
func TestServerConcurrentScrapeAndWrite(t *testing.T) {
	tel := New(nil)
	srv, err := Serve("127.0.0.1:0", tel)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := tel.Registry().Histogram("pipeline.total")
			c := tel.Registry().Counter("evaluator.cache.hit")
			for i := 0; i < 200; i++ {
				h.Observe(float64(i))
				c.Inc()
				srv.PublishProgress(map[string]any{"done": i, "worker": w})
			}
		}(w)
	}
	// t.Fatal is off-limits outside the test goroutine, so the scrape
	// loop reports through t.Error.
	scrape := func(url string) {
		resp, err := http.Get(url)
		if err != nil {
			t.Errorf("GET %s: %v", url, err)
			return
		}
		defer resp.Body.Close()
		if _, err := io.ReadAll(resp.Body); err != nil {
			t.Errorf("read %s: %v", url, err)
		}
	}
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				scrape(base + "/metrics")
				scrape(base + "/progress")
				scrape(base + "/debug/vars")
			}
		}()
	}
	wg.Wait()
}

func TestServerNil(t *testing.T) {
	var s *Server
	if s.Addr() != "" {
		t.Error("nil Addr should be empty")
	}
	s.PublishProgress(map[string]any{"x": 1})
	s.PublishManifest(map[string]any{"x": 1})
	if err := s.Close(); err != nil {
		t.Errorf("nil Close: %v", err)
	}
}

// TestServerCloseIdempotent: Close and Drain may be called repeatedly
// and in any order by racing exit paths; all calls return the first
// outcome and none panic.
func TestServerCloseIdempotent(t *testing.T) {
	tel := New(nil)
	s, err := Serve("127.0.0.1:0", tel)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Close(); err != nil {
			t.Errorf("repeat Close #%d: %v", i, err)
		}
		if err := s.Drain(context.Background()); err != nil {
			t.Errorf("Drain after Close #%d: %v", i, err)
		}
	}

	var nilSrv *Server
	if err := nilSrv.Drain(context.Background()); err != nil {
		t.Errorf("nil Drain: %v", err)
	}
}

// TestServerDrainServesInFlight: Drain lets an already-accepted request
// complete instead of resetting it, then refuses new connections.
func TestServerDrainServesInFlight(t *testing.T) {
	tel := New(nil)
	s, err := Serve("127.0.0.1:0", tel)
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + s.Addr()
	// Prove the surface is live, then drain and verify the listener is
	// gone. (A request truly in flight across Shutdown is timing-
	// dependent; the contract test for ordering lives in the handler
	// path itself, which Shutdown waits on by specification.)
	if body, _ := getBody(t, base+"/metrics"); body == "" {
		t.Error("no metrics before drain")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if _, err := http.Get(base + "/metrics"); err == nil {
		t.Error("listener still accepting after Drain")
	}
}
