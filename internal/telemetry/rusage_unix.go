//go:build unix

package telemetry

import "syscall"

// cpuTime returns the process's cumulative user and system CPU time in
// seconds, via getrusage(RUSAGE_SELF).
func cpuTime() (user, sys float64) {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0, 0
	}
	return tvSec(ru.Utime), tvSec(ru.Stime)
}

func tvSec(tv syscall.Timeval) float64 {
	return float64(tv.Sec) + float64(tv.Usec)/1e6
}
