package telemetry

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestJSONLSinkShape: every emitted record is one parseable JSON line
// carrying ts, seq, event, and the caller's fields.
func TestJSONLSinkShape(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLSink(&buf)
	s.now = func() time.Time { return time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC) }
	s.Emit("anneal.level", map[string]any{"start": 0, "temp": 19.0, "accepted": 7})
	s.Emit("anneal.done", map[string]any{"start": 0, "found": true})
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	var first map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("line 0 not JSON: %v", err)
	}
	if first["event"] != "anneal.level" || first["seq"] != float64(0) {
		t.Errorf("unexpected header fields: %v", first)
	}
	if first["ts"] != "2026-08-06T12:00:00Z" {
		t.Errorf("ts = %v", first["ts"])
	}
	if first["temp"] != 19.0 || first["accepted"] != float64(7) {
		t.Errorf("payload fields lost: %v", first)
	}
	var second map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &second); err != nil {
		t.Fatalf("line 1 not JSON: %v", err)
	}
	if second["seq"] != float64(1) || second["found"] != true {
		t.Errorf("unexpected second record: %v", second)
	}
}

// TestJSONLSinkConcurrent: concurrent emitters never interleave bytes
// and seq stays a total order.
func TestJSONLSinkConcurrent(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLSink(&buf)
	const goroutines, perG = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				s.Emit("tick", map[string]any{"g": g, "i": i})
			}
		}(g)
	}
	wg.Wait()
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != goroutines*perG {
		t.Fatalf("got %d lines, want %d", len(lines), goroutines*perG)
	}
	seen := make(map[int64]bool, len(lines))
	for n, line := range lines {
		var rec struct {
			Seq   int64  `json:"seq"`
			Event string `json:"event"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %d corrupt (%v): %q", n, err, line)
		}
		if rec.Event != "tick" || seen[rec.Seq] {
			t.Fatalf("line %d: bad or duplicate record %+v", n, rec)
		}
		seen[rec.Seq] = true
	}
}

// errSentinel distinguishes a propagated child error in MultiSink
// tests.
var errSentinel = errors.New("sentinel flush failure")

// captureSink records emitted events and whether it was flushed, for
// MultiSink fan-out assertions.
type captureSink struct {
	mu       sync.Mutex
	events   []map[string]any
	flushed  int
	flushErr error
}

func (c *captureSink) Emit(event string, fields map[string]any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rec := map[string]any{"__event": event}
	for k, v := range fields {
		rec[k] = v
	}
	c.events = append(c.events, rec)
	// Mutate the map we were handed: the sink owns it, and MultiSink
	// must have cloned it for the other children.
	if fields != nil {
		fields["__mutated"] = true
	}
}

func (c *captureSink) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.flushed++
	return c.flushErr
}

// TestMultiSink: fan-out reaches every child with an independent fields
// map, nil children collapse away, and Flush visits everyone even after
// an error.
func TestMultiSink(t *testing.T) {
	a, b := &captureSink{}, &captureSink{flushErr: errSentinel}
	m := NewMultiSink(a, nil, b)
	m.Emit("checkpoint.shard", map[string]any{"shard": 3})
	m.Emit("checkpoint.shard", nil)
	for _, c := range []*captureSink{a, b} {
		if len(c.events) != 2 || c.events[0]["shard"] != 3 {
			t.Fatalf("child events = %v", c.events)
		}
		if _, leaked := c.events[0]["__mutated"]; leaked {
			t.Error("children shared one fields map")
		}
	}
	if err := m.Flush(); err != errSentinel {
		t.Errorf("Flush = %v, want the child error", err)
	}
	if a.flushed != 1 || b.flushed != 1 {
		t.Errorf("flush counts = %d, %d, want 1, 1", a.flushed, b.flushed)
	}

	// Degenerate compositions keep the fast paths.
	if NewMultiSink() != nil || NewMultiSink(nil, nil) != nil {
		t.Error("all-nil composition must be nil")
	}
	if got := NewMultiSink(nil, a); got != EventSink(a) {
		t.Errorf("single-sink composition = %v, want the sink itself", got)
	}
	var nilMulti *MultiSink
	nilMulti.Emit("x", nil)
	if nilMulti.Flush() != nil {
		t.Error("nil MultiSink must be inert")
	}
}
