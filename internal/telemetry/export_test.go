package telemetry

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestHistogramDropsNonFinite(t *testing.T) {
	h := &Histogram{}
	h.Observe(1)
	h.Observe(math.NaN())
	h.Observe(math.Inf(1))
	h.Observe(math.Inf(-1))
	h.Observe(3)
	s := h.Snapshot()
	if s.Count != 2 {
		t.Fatalf("count = %d, want 2 (non-finite observations must be dropped)", s.Count)
	}
	if s.Sum != 4 {
		t.Fatalf("sum = %v, want 4", s.Sum)
	}
	if m := s.Mean(); m != 2 {
		t.Fatalf("mean = %v, want 2", m)
	}
}

func TestEmptySnapshotNeverNaN(t *testing.T) {
	var s HistogramSnapshot
	if m := s.Mean(); m != 0 || math.IsNaN(m) {
		t.Fatalf("empty Mean = %v, want 0", m)
	}
	for _, q := range []float64{0, 0.5, 0.99, 1, math.NaN()} {
		if v := s.Quantile(q); v != 0 || math.IsNaN(v) {
			t.Fatalf("empty Quantile(%v) = %v, want 0", q, v)
		}
	}
}

func TestSummaryEmptyHistogramNoNaN(t *testing.T) {
	r := NewRegistry()
	r.Histogram("stage.empty") // registered but never observed
	r.Gauge("bad").Set(math.NaN())
	out := r.Summary()
	if strings.Contains(out, "NaN") {
		t.Fatalf("summary contains NaN:\n%s", out)
	}
}

func TestExportMarshalsToValidJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("evaluator.cache.hit").Add(7)
	r.Gauge("anneal.temp").Set(math.Inf(1)) // must be clamped, not break JSON
	r.Histogram("stage.thermal").Observe(0.25)
	r.Histogram("stage.empty")
	snap := r.Export()
	raw, err := json.Marshal(snap)
	if err != nil {
		t.Fatalf("Export must always marshal: %v", err)
	}
	if strings.Contains(string(raw), "NaN") {
		t.Fatalf("exported JSON contains NaN: %s", raw)
	}
	var back MetricsSnapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if back.Counters["evaluator.cache.hit"] != 7 {
		t.Fatalf("counter lost in round-trip: %+v", back.Counters)
	}
	if back.Gauges["anneal.temp"] != 0 {
		t.Fatalf("Inf gauge should export as 0, got %v", back.Gauges["anneal.temp"])
	}
	h := back.Histograms["stage.thermal"]
	if h.Count != 1 || h.Sum != 0.25 || h.P99 != 0.25 {
		t.Fatalf("histogram stats wrong: %+v", h)
	}
}

func TestExportNilRegistry(t *testing.T) {
	var r *Registry
	snap := r.Export()
	if snap.Counters != nil || snap.Gauges != nil || snap.Histograms != nil {
		t.Fatalf("nil registry must export empty snapshot: %+v", snap)
	}
}

func TestPromNameEscaping(t *testing.T) {
	cases := map[string]string{
		"stage.thermal":           "tesa_stage_thermal",
		"thermal.surrogate.skip":  "tesa_thermal_surrogate_skip",
		"evaluator.cache.hit":     "tesa_evaluator_cache_hit",
		"weird-name with spaces!": "tesa_weird_name_with_spaces_",
		"already_ok:subsystem":    "tesa_already_ok:subsystem",
		"0starts.with.digit":      "tesa_0starts_with_digit", // prefix makes leading digit legal
		"unicode\u00e9.metric":    "tesa_unicode___metric",   // é is 2 bytes, each escaped
		"":                        "tesa_",
		"UPPER.case":              "tesa_UPPER_case",
	}
	for in, want := range cases {
		if got := PromName(in); got != want {
			t.Errorf("PromName(%q) = %q, want %q", in, got, want)
		}
	}
}

// promNameRe mirrors the Prometheus metric-name grammar.
func validPromName(s string) bool {
	if len(s) == 0 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("evaluator.cache.hit").Add(3)
	r.Counter("eval.quarantined").Inc()
	r.Gauge("sweep.done").Set(42)
	h := r.Histogram("pipeline.total")
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) / 100)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	// Every non-comment line must be "name[{labels}] value" with a valid
	// metric name and a parseable finite value.
	seenType := map[string]string{}
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			seenType[parts[2]] = parts[3]
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line: %q", line)
		}
		name := line[:sp]
		if i := strings.IndexByte(name, '{'); i >= 0 {
			if !strings.HasSuffix(name, "}") {
				t.Fatalf("unbalanced labels: %q", line)
			}
			name = name[:i]
		}
		if !validPromName(name) {
			t.Fatalf("invalid metric name %q in line %q", name, line)
		}
		if strings.ContainsAny(line[sp+1:], "NI") { // NaN / Inf
			t.Fatalf("non-finite sample value: %q", line)
		}
	}
	for name, typ := range map[string]string{
		"tesa_evaluator_cache_hit": "counter",
		"tesa_eval_quarantined":    "counter",
		"tesa_sweep_done":          "gauge",
		"tesa_pipeline_total":      "summary",
		"tesa_uptime_seconds":      "gauge",
	} {
		if seenType[name] != typ {
			t.Errorf("metric %s: TYPE = %q, want %q\n%s", name, seenType[name], typ, out)
		}
	}
	for _, want := range []string{
		"tesa_evaluator_cache_hit 3",
		"tesa_pipeline_total{quantile=\"0.5\"} 0.5",
		"tesa_pipeline_total_count 100",
		"tesa_pipeline_total_sum 50.5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestWritePrometheusNilRegistry(t *testing.T) {
	var r *Registry
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "tesa_uptime_seconds 0") {
		t.Fatalf("nil registry output: %q", b.String())
	}
}
