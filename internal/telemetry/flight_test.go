package telemetry

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestFlightRecorderRingBounds(t *testing.T) {
	f := NewFlightRecorder()
	if got := f.Dump(); got != nil {
		t.Fatalf("empty dump = %v, want nil", got)
	}
	for i := 0; i < flightDepth+5; i++ {
		f.Record(fmt.Sprintf("stage.%d", i))
	}
	got := f.Dump()
	if len(got) != flightDepth {
		t.Fatalf("dump length = %d, want %d", len(got), flightDepth)
	}
	// Oldest retained event is #5; newest is #flightDepth+4.
	if !strings.HasSuffix(got[0], "stage.5") {
		t.Errorf("oldest = %q, want stage.5", got[0])
	}
	if !strings.HasSuffix(got[len(got)-1], fmt.Sprintf("stage.%d", flightDepth+4)) {
		t.Errorf("newest = %q", got[len(got)-1])
	}
	if !strings.HasPrefix(got[0], "+0s ") {
		t.Errorf("first event should be at +0s: %q", got[0])
	}
}

func TestFlightRecorderPerGoroutine(t *testing.T) {
	f := NewFlightRecorder()
	f.Record("main.event")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				f.Record(fmt.Sprintf("worker%d.%d", w, i))
			}
			dump := f.Dump()
			want := fmt.Sprintf("worker%d.", w)
			for _, line := range dump {
				if !strings.Contains(line, want) {
					t.Errorf("goroutine %d dump leaked foreign event %q", w, line)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	// The main goroutine's ring is untouched by the workers.
	dump := f.Dump()
	if len(dump) != 1 || !strings.HasSuffix(dump[0], "main.event") {
		t.Fatalf("main dump = %v", dump)
	}
}

func TestFlightRecorderEviction(t *testing.T) {
	f := NewFlightRecorder()
	var wg sync.WaitGroup
	for i := 0; i < maxFlightRings+32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			f.Record("ephemeral")
		}()
		wg.Wait() // serialize so each goroutine gets a distinct ring
		wg = sync.WaitGroup{}
	}
	f.mu.Lock()
	n := len(f.rings)
	f.mu.Unlock()
	if n > maxFlightRings {
		t.Fatalf("rings = %d, want <= %d", n, maxFlightRings)
	}
}

func TestFlightRecorderNil(t *testing.T) {
	var f *FlightRecorder
	f.Record("x")
	if got := f.Dump(); got != nil {
		t.Fatalf("nil dump = %v", got)
	}
}
