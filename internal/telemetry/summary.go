package telemetry

import (
	"fmt"
	"strings"
	"time"
)

// Summary renders the end-of-run metrics table behind the CLIs'
// -metrics flag: one row per timing histogram (count, total, mean,
// p50/p95/p99), the counters and gauges, and derived throughput lines
// (evals/sec, cache hit rate) when the standard evaluator metrics are
// present. Returns "" for a disabled hub.
func (t *Telemetry) Summary() string {
	if t == nil {
		return ""
	}
	return t.reg.Summary()
}

// Summary renders the registry's metrics as a fixed-width table.
func (r *Registry) Summary() string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	r.mu.Unlock()

	var b strings.Builder
	b.WriteString("== telemetry summary ==\n")
	if len(hists) > 0 {
		fmt.Fprintf(&b, "%-24s %9s %10s %10s %10s %10s %10s\n",
			"timing", "count", "total", "mean", "p50", "p95", "p99")
		for _, name := range names(hists) {
			s := hists[name].Snapshot()
			fmt.Fprintf(&b, "%-24s %9d %10s %10s %10s %10s %10s\n",
				name, s.Count,
				fmtSec(s.Sum), fmtSec(s.Mean()),
				fmtSec(s.Quantile(0.50)), fmtSec(s.Quantile(0.95)), fmtSec(s.Quantile(0.99)))
		}
	}
	if len(counters) > 0 {
		fmt.Fprintf(&b, "%-24s %9s\n", "counter", "value")
		for _, name := range names(counters) {
			fmt.Fprintf(&b, "%-24s %9d\n", name, counters[name].Value())
		}
	}
	if len(gauges) > 0 {
		fmt.Fprintf(&b, "%-24s %9s\n", "gauge", "value")
		for _, name := range names(gauges) {
			fmt.Fprintf(&b, "%-24s %9.4g\n", name, finiteOr0(gauges[name].Value()))
		}
	}

	// Derived lines from the standard evaluator metrics.
	elapsed := time.Since(r.start)
	fmt.Fprintf(&b, "elapsed %s", fmtSec(elapsed.Seconds()))
	if h, ok := hists["pipeline.total"]; ok {
		n := h.Snapshot().Count
		fmt.Fprintf(&b, " | %d pipeline evals (%.1f evals/sec)", n, float64(n)/elapsed.Seconds())
	}
	hit := counters["evaluator.cache.hit"].Value()
	miss := counters["evaluator.cache.miss"].Value()
	if hit+miss > 0 {
		fmt.Fprintf(&b, " | cache hit rate %.1f%% (%d of %d lookups)",
			100*float64(hit)/float64(hit+miss), hit, hit+miss)
	}
	b.WriteByte('\n')
	return b.String()
}

// fmtSec renders seconds with a unit that keeps 3-4 significant digits
// across the ns..hours range the pipeline spans. Non-finite inputs
// render as 0s — the histograms drop them at Observe, so this is a
// belt-and-suspenders guard for hand-built snapshots.
func fmtSec(s float64) string {
	d := time.Duration(finiteOr0(s) * float64(time.Second))
	switch {
	case d == 0:
		return "0s"
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fus", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	case d < time.Minute:
		return fmt.Sprintf("%.2fs", d.Seconds())
	default:
		return d.Round(time.Second).String()
	}
}
