package telemetry

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// readRecords parses a JSONL file back into its event names.
func readRecords(t *testing.T, path string) []string {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var events []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("corrupt record %q: %v", sc.Text(), err)
		}
		ev, _ := rec["event"].(string)
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return events
}

// TestFileSinkFreshFile: a fresh sink writes to path+".tmp" until the
// first Flush, then atomically lands at the final path — a crash before
// the flush leaves no (possibly torn) final file behind.
func TestFileSinkFreshFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	s, err := NewFileSink(path)
	if err != nil {
		t.Fatal(err)
	}
	s.Emit("a", map[string]any{"x": 1})
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("final path exists before first Flush (err=%v)", err)
	}
	if _, err := os.Stat(path + ".tmp"); err != nil {
		t.Fatalf("temp file missing before first Flush: %v", err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Errorf("temp file survives the rename (err=%v)", err)
	}
	s.Emit("b", nil)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if got := readRecords(t, path); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("records = %v, want [a b]", got)
	}
}

// TestFileSinkCloseWithoutFlush: Close alone still renames a fresh file
// into place, so even an empty or unflushed sink ends at its final path.
func TestFileSinkCloseWithoutFlush(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	s, err := NewFileSink(path)
	if err != nil {
		t.Fatal(err)
	}
	s.Emit("only", nil)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if got := readRecords(t, path); len(got) != 1 || got[0] != "only" {
		t.Errorf("records = %v, want [only]", got)
	}
}

// TestFileSinkAppend: reopening an existing file appends — the resume
// path for sweep checkpoints — and never routes through a temp file
// (which would clobber the prior records on rename).
func TestFileSinkAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	s, err := NewFileSink(path)
	if err != nil {
		t.Fatal(err)
	}
	s.Emit("first", nil)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := NewFileSink(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Errorf("append reopen created a temp file (err=%v)", err)
	}
	s2.Emit("second", nil)
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	if got := readRecords(t, path); len(got) != 2 || got[0] != "first" || got[1] != "second" {
		t.Errorf("records = %v, want [first second]", got)
	}
}

// TestFileSinkNil: the nil sink is the disabled fast path everywhere.
func TestFileSinkNil(t *testing.T) {
	var s *FileSink
	s.Emit("x", nil)
	if err := s.Flush(); err != nil {
		t.Error(err)
	}
	if err := s.Close(); err != nil {
		t.Error(err)
	}
}
