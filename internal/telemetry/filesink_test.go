package telemetry

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// readRecords parses a JSONL file back into its event names.
func readRecords(t *testing.T, path string) []string {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var events []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("corrupt record %q: %v", sc.Text(), err)
		}
		ev, _ := rec["event"].(string)
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return events
}

// TestFileSinkFreshFile: a fresh sink writes to path+".tmp" until the
// first Flush, then atomically lands at the final path — a crash before
// the flush leaves no (possibly torn) final file behind.
func TestFileSinkFreshFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	s, err := NewFileSink(path)
	if err != nil {
		t.Fatal(err)
	}
	s.Emit("a", map[string]any{"x": 1})
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("final path exists before first Flush (err=%v)", err)
	}
	if _, err := os.Stat(path + ".tmp"); err != nil {
		t.Fatalf("temp file missing before first Flush: %v", err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Errorf("temp file survives the rename (err=%v)", err)
	}
	s.Emit("b", nil)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if got := readRecords(t, path); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("records = %v, want [a b]", got)
	}
}

// TestFileSinkCloseWithoutFlush: Close alone still renames a fresh file
// into place, so even an empty or unflushed sink ends at its final path.
func TestFileSinkCloseWithoutFlush(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	s, err := NewFileSink(path)
	if err != nil {
		t.Fatal(err)
	}
	s.Emit("only", nil)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if got := readRecords(t, path); len(got) != 1 || got[0] != "only" {
		t.Errorf("records = %v, want [only]", got)
	}
}

// TestFileSinkAppend: reopening an existing file appends — the resume
// path for sweep checkpoints — and never routes through a temp file
// (which would clobber the prior records on rename).
func TestFileSinkAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	s, err := NewFileSink(path)
	if err != nil {
		t.Fatal(err)
	}
	s.Emit("first", nil)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := NewFileSink(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Errorf("append reopen created a temp file (err=%v)", err)
	}
	s2.Emit("second", nil)
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	if got := readRecords(t, path); len(got) != 2 || got[0] != "first" || got[1] != "second" {
		t.Errorf("records = %v, want [first second]", got)
	}
}

// TestFileSinkConcurrentWriters: many goroutines emitting and flushing
// at once — the multi-start annealers' trace pattern — must produce a
// file of intact, parseable records with no interleaved bytes. Run with
// -race in CI.
func TestFileSinkConcurrentWriters(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	s, err := NewFileSink(path)
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				s.Emit("ev", map[string]any{"writer": w, "i": i})
				if i%10 == 0 {
					if err := s.Flush(); err != nil {
						t.Errorf("flush: %v", err)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	got := readRecords(t, path) // fails the test on any torn record
	if len(got) != writers*perWriter {
		t.Fatalf("got %d records, want %d", len(got), writers*perWriter)
	}
}

// TestFileSinkCrashSafeFinalize: a "crash" (abandoning the sink without
// Flush/Close) before the first flush must leave the final path absent —
// readers never see a torn fresh file — while a crash after a flush
// leaves every flushed record intact on disk.
func TestFileSinkCrashSafeFinalize(t *testing.T) {
	dir := t.TempDir()

	// Crash before first flush: only the .tmp exists.
	p1 := filepath.Join(dir, "crash-early.jsonl")
	s1, err := NewFileSink(p1)
	if err != nil {
		t.Fatal(err)
	}
	s1.Emit("torn", nil)
	// No Flush, no Close: simulate SIGKILL by just dropping the sink.
	if _, err := os.Stat(p1); !os.IsNotExist(err) {
		t.Fatalf("final path exists after pre-flush crash (err=%v)", err)
	}
	s1.f.Close() // release the fd so TempDir cleanup works everywhere

	// Crash after a flush: the flushed records are durable at the final
	// path even though Close never ran.
	p2 := filepath.Join(dir, "crash-late.jsonl")
	s2, err := NewFileSink(p2)
	if err != nil {
		t.Fatal(err)
	}
	s2.Emit("kept", nil)
	if err := s2.Flush(); err != nil {
		t.Fatal(err)
	}
	s2.Emit("lost-maybe", nil) // buffered, never flushed
	if got := readRecords(t, p2); len(got) < 1 || got[0] != "kept" {
		t.Fatalf("flushed record missing after post-flush crash: %v", got)
	}
	s2.f.Close()
}

// TestFileSinkNil: the nil sink is the disabled fast path everywhere.
func TestFileSinkNil(t *testing.T) {
	var s *FileSink
	s.Emit("x", nil)
	if err := s.Flush(); err != nil {
		t.Error(err)
	}
	if err := s.Close(); err != nil {
		t.Error(err)
	}
}
