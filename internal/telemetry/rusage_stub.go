//go:build !unix

package telemetry

// cpuTime reports zero CPU time on platforms without getrusage; the
// manifest fields stay present (and zero) so consumers need no
// platform-specific schema.
func cpuTime() (user, sys float64) { return 0, 0 }
