package telemetry

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// FileSink is a crash-safe JSONL event sink over a file path, built for
// sweep checkpoints (but usable for any trace stream):
//
//   - A fresh file is first written as path+".tmp" and atomically
//     renamed into place on the first Flush, so the final path either
//     does not exist or starts with complete records — a kill during
//     the initial writes can never leave a torn header behind.
//   - An existing file is opened in append mode, which is how a resumed
//     sweep extends its checkpoint.
//   - Every Flush drains the write buffer and fsyncs the file (and, for
//     the first flush of a fresh file, the parent directory after the
//     rename), so a flushed record survives a machine crash, not just a
//     process kill.
//
// Emit never blocks on the disk — durability is paid at Flush, which is
// exactly the sweep engine's per-shard checkpoint cadence.
type FileSink struct {
	mu   sync.Mutex
	f    *os.File
	sink *JSONLSink
	path string
	// tmpPath is non-empty until the first Flush renames the file into
	// place; an existing file opened for append starts empty.
	tmpPath string
}

// NewFileSink opens path for durable event appends, creating it (via
// the temp-file + rename protocol) when it does not exist.
func NewFileSink(path string) (*FileSink, error) {
	s := &FileSink{path: path}
	if _, err := os.Stat(path); err == nil {
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("telemetry: file sink: %w", err)
		}
		s.f = f
	} else if os.IsNotExist(err) {
		tmp := path + ".tmp"
		f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
		if err != nil {
			return nil, fmt.Errorf("telemetry: file sink: %w", err)
		}
		s.f, s.tmpPath = f, tmp
	} else {
		return nil, fmt.Errorf("telemetry: file sink: %w", err)
	}
	s.sink = NewJSONLSink(s.f)
	return s, nil
}

// Path returns the final path of the sink's file (which may still be at
// its temporary name until the first Flush).
func (s *FileSink) Path() string { return s.path }

// Emit buffers one JSONL record (see JSONLSink for the envelope).
func (s *FileSink) Emit(event string, fields map[string]any) {
	if s == nil {
		return
	}
	s.sink.Emit(event, fields)
}

// Flush drains the buffer, fsyncs the file, and — on the first flush of
// a fresh file — renames it into its final place and fsyncs the parent
// directory so the rename itself is durable.
func (s *FileSink) Flush() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.sink.Flush(); err != nil {
		return err
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("telemetry: file sink: %w", err)
	}
	if s.tmpPath != "" {
		if err := os.Rename(s.tmpPath, s.path); err != nil {
			return fmt.Errorf("telemetry: file sink: %w", err)
		}
		s.tmpPath = ""
		if dir, err := os.Open(filepath.Dir(s.path)); err == nil {
			// Directory fsync is advisory on some filesystems; the
			// rename itself is already atomic.
			_ = dir.Sync()
			_ = dir.Close()
		}
	}
	return nil
}

// Close flushes (including the rename of a never-flushed fresh file, so
// even an empty checkpoint ends up at its final path) and closes the
// file.
func (s *FileSink) Close() error {
	if s == nil {
		return nil
	}
	if err := s.Flush(); err != nil {
		s.f.Close()
		return err
	}
	return s.f.Close()
}
