package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// HistogramStats is the export-friendly summary of one timing
// histogram. Every float field is guaranteed finite (never NaN or Inf),
// so the struct marshals to valid JSON unconditionally.
type HistogramStats struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// MetricsSnapshot is a point-in-time copy of a registry's metrics in a
// JSON-marshalable shape: the payload of /debug/vars, the metrics
// section of a run manifest, and the input of the tesa-trace analyzer.
// All float values are finite.
type MetricsSnapshot struct {
	// UptimeSec is the registry's age when the snapshot was taken.
	UptimeSec  float64                   `json:"uptime_sec"`
	Counters   map[string]int64          `json:"counters,omitempty"`
	Gauges     map[string]float64        `json:"gauges,omitempty"`
	Histograms map[string]HistogramStats `json:"histograms,omitempty"`
}

// Export takes a consistent snapshot of every metric in the registry.
// A nil registry exports an empty snapshot.
func (r *Registry) Export() MetricsSnapshot {
	snap := MetricsSnapshot{}
	if r == nil {
		return snap
	}
	counters, gauges, hists := r.copyMaps()
	snap.UptimeSec = r.Elapsed().Seconds()
	if len(counters) > 0 {
		snap.Counters = make(map[string]int64, len(counters))
		for name, c := range counters {
			snap.Counters[name] = c.Value()
		}
	}
	if len(gauges) > 0 {
		snap.Gauges = make(map[string]float64, len(gauges))
		for name, g := range gauges {
			snap.Gauges[name] = finiteOr0(g.Value())
		}
	}
	if len(hists) > 0 {
		snap.Histograms = make(map[string]HistogramStats, len(hists))
		for name, h := range hists {
			s := h.Snapshot()
			snap.Histograms[name] = HistogramStats{
				Count: s.Count,
				Sum:   finiteOr0(s.Sum),
				Min:   finiteOr0(s.Min),
				Max:   finiteOr0(s.Max),
				Mean:  s.Mean(),
				P50:   s.Quantile(0.50),
				P95:   s.Quantile(0.95),
				P99:   s.Quantile(0.99),
			}
		}
	}
	return snap
}

// copyMaps snapshots the metric handle maps under the registry lock so
// exporters iterate without racing concurrent metric creation.
func (r *Registry) copyMaps() (map[string]*Counter, map[string]*Gauge, map[string]*Histogram) {
	r.mu.Lock()
	defer r.mu.Unlock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	return counters, gauges, hists
}

// promNamespace prefixes every exposed metric so TESA's series never
// collide with other exporters scraped by the same Prometheus.
const promNamespace = "tesa_"

// PromName converts an internal metric name ("stage.thermal",
// "thermal.surrogate.skip.hot") into a valid Prometheus metric name:
// the tesa_ namespace plus the name with every byte outside
// [a-zA-Z0-9_:] replaced by '_'. The namespace prefix also makes a
// leading digit legal. Deterministic, so the same internal name always
// exposes the same series.
func PromName(name string) string {
	var b strings.Builder
	b.Grow(len(promNamespace) + len(name) + 1)
	b.WriteString(promNamespace)
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == ':':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat renders a float in Prometheus exposition syntax. Inputs are
// already finite (see MetricsSnapshot); the strconv shortest form keeps
// full float64 precision.
func promFloat(v float64) string {
	return strconv.FormatFloat(finiteOr0(v), 'g', -1, 64)
}

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4): counters and gauges as themselves,
// timing histograms as summaries with 0.5/0.95/0.99 quantiles plus
// _sum and _count series, and a tesa_uptime_seconds gauge. Metric
// families are emitted in sorted order so scrapes are diffable. A nil
// registry writes only the uptime gauge (value 0).
func (r *Registry) WritePrometheus(w io.Writer) error {
	snap := r.Export()
	var b strings.Builder
	for _, name := range sortedKeys(snap.Counters) {
		pn := PromName(name)
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", pn, pn, snap.Counters[name])
	}
	for _, name := range sortedKeys(snap.Gauges) {
		pn := PromName(name)
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %s\n", pn, pn, promFloat(snap.Gauges[name]))
	}
	for _, name := range sortedKeys(snap.Histograms) {
		pn := PromName(name)
		h := snap.Histograms[name]
		fmt.Fprintf(&b, "# TYPE %s summary\n", pn)
		fmt.Fprintf(&b, "%s{quantile=\"0.5\"} %s\n", pn, promFloat(h.P50))
		fmt.Fprintf(&b, "%s{quantile=\"0.95\"} %s\n", pn, promFloat(h.P95))
		fmt.Fprintf(&b, "%s{quantile=\"0.99\"} %s\n", pn, promFloat(h.P99))
		fmt.Fprintf(&b, "%s_sum %s\n", pn, promFloat(h.Sum))
		fmt.Fprintf(&b, "%s_count %d\n", pn, h.Count)
	}
	fmt.Fprintf(&b, "# TYPE %suptime_seconds gauge\n%suptime_seconds %s\n",
		promNamespace, promNamespace, promFloat(snap.UptimeSec))
	_, err := io.WriteString(w, b.String())
	return err
}

// sortedKeys returns the sorted keys of a map with string keys.
func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
