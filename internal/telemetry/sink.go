package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"time"
)

// EventSink receives structured trace events. Implementations must be
// safe for concurrent use: the multi-start annealers emit from their own
// goroutines.
type EventSink interface {
	// Emit records one event. Fields must be JSON-marshalable; the sink
	// owns the map after the call.
	Emit(event string, fields map[string]any)
	// Flush forces buffered events out.
	Flush() error
}

// JSONLSink writes one JSON object per event, newline-delimited — the
// trace format behind the CLIs' -trace flag. Every record carries:
//
//	ts    RFC3339Nano wall-clock timestamp
//	seq   a process-monotonic sequence number (total order across
//	      concurrent emitters)
//	event the event name (e.g. "anneal.level")
//
// plus the event's own fields. encoding/json sorts map keys, so records
// are byte-stable given identical fields, which keeps traces diffable.
type JSONLSink struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	enc *json.Encoder
	seq int64
	// now is stubbed in tests.
	now func() time.Time
}

// NewJSONLSink wraps w (typically a file) in a buffered JSONL trace
// sink. Call Flush before the process exits.
func NewJSONLSink(w io.Writer) *JSONLSink {
	bw := bufio.NewWriter(w)
	return &JSONLSink{bw: bw, enc: json.NewEncoder(bw), now: time.Now}
}

// Emit writes one JSONL record. Marshal failures drop the offending
// field set rather than corrupting the trace.
func (s *JSONLSink) Emit(event string, fields map[string]any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	rec := make(map[string]any, len(fields)+3)
	for k, v := range fields {
		rec[k] = v
	}
	rec["ts"] = s.now().Format(time.RFC3339Nano)
	rec["seq"] = s.seq
	rec["event"] = event
	if err := s.enc.Encode(rec); err != nil {
		return
	}
	s.seq++
}

// Flush drains the write buffer.
func (s *JSONLSink) Flush() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bw.Flush()
}

// MultiSink fans every event out to all child sinks — e.g. a
// distributed-sweep coordinator mirroring its checkpoint ledger into the
// live trace stream. Nil children are skipped, so callers can compose
// optional sinks without guards.
type MultiSink struct {
	sinks []EventSink
}

// NewMultiSink composes sinks into one fan-out EventSink. Nil entries
// are dropped; if at most one non-nil sink remains there is nothing to
// fan out, so that sink (or nil) is returned directly, preserving the
// single-sink fast path.
func NewMultiSink(sinks ...EventSink) EventSink {
	kept := make([]EventSink, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			kept = append(kept, s)
		}
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	}
	return &MultiSink{sinks: kept}
}

// Emit forwards the event to every child. Children own their copy of
// the fields map per the EventSink contract, so each gets its own
// shallow clone.
func (m *MultiSink) Emit(event string, fields map[string]any) {
	if m == nil {
		return
	}
	for i, s := range m.sinks {
		f := fields
		if i < len(m.sinks)-1 && fields != nil {
			f = make(map[string]any, len(fields))
			for k, v := range fields {
				f[k] = v
			}
		}
		s.Emit(event, f)
	}
}

// Flush flushes every child, returning the first error but flushing the
// rest regardless.
func (m *MultiSink) Flush() error {
	if m == nil {
		return nil
	}
	var first error
	for _, s := range m.sinks {
		if err := s.Flush(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
