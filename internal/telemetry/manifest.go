package telemetry

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync"
	"time"
)

// ManifestEvent is the JSONL event name of run-manifest records. Each
// instrumented run emits two: one with phase "start" as soon as flags
// are parsed, and one with phase "end" (carrying tallies, timings, and
// the final metrics snapshot) on exit — so a killed run still leaves
// the start record identifying what it was.
const ManifestEvent = "run.manifest"

// Manifest is the machine-readable identity card of one CLI run:
// command, arguments, run id, and whatever run-defining facts the
// command registers (space fingerprint, model version, seeds, fault
// spec, ...). It accumulates via Set during the run and is finalized
// once at exit with wall/CPU time and the metrics snapshot — which
// carries the fidelity-ladder, memo, and quarantine tallies as
// counters. Safe for concurrent use; a nil *Manifest is a valid no-op.
type Manifest struct {
	mu      sync.Mutex
	runID   string
	command string
	argv    []string
	started time.Time
	fields  map[string]any
}

// NewManifest opens the manifest of one run of command (invoked with
// argv, os.Args[1:] by convention) and assigns it a fresh run id.
func NewManifest(command string, argv []string) *Manifest {
	return &Manifest{
		runID:   NewRunID(),
		command: command,
		argv:    append([]string(nil), argv...),
		started: time.Now(),
		fields:  make(map[string]any),
	}
}

// NewRunID returns a fresh 16-hex-digit random run identifier — the
// value that binds a run's manifest, trace, and checkpoint records
// together.
func NewRunID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; a
		// time-derived id keeps the manifest usable regardless.
		return fmt.Sprintf("t%015x", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

// RunID returns the run's identifier ("" for a nil manifest).
func (m *Manifest) RunID() string {
	if m == nil {
		return ""
	}
	return m.runID
}

// Set records one run-defining fact (e.g. "space", "model_version",
// "seed", "faults"). Later Sets of the same key overwrite. The value
// must be JSON-marshalable and finite.
func (m *Manifest) Set(key string, value any) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.fields[key] = value
	m.mu.Unlock()
}

// Snapshot returns the manifest as a fresh field map (phase "start"):
// run id, command, argv, start timestamp, and every Set fact. The
// caller owns the map. Nil-safe (returns nil).
func (m *Manifest) Snapshot() map[string]any {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.snapshotLocked("start")
}

func (m *Manifest) snapshotLocked(phase string) map[string]any {
	rec := make(map[string]any, len(m.fields)+5)
	for k, v := range m.fields {
		rec[k] = v
	}
	rec["phase"] = phase
	rec["run"] = m.runID
	rec["command"] = m.command
	rec["argv"] = append([]string(nil), m.argv...)
	rec["started"] = m.started.Format(time.RFC3339Nano)
	return rec
}

// Finalize returns the end-of-run record (phase "end"): the Snapshot
// fields plus the exit status, wall-clock seconds, user/system CPU
// seconds (zero where the platform cannot report them), and the full
// metrics snapshot — whose counters are the run's fidelity-ladder,
// memo/warm-start, and quarantine tallies. The caller owns the map.
func (m *Manifest) Finalize(reg *Registry, status string) map[string]any {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	rec := m.snapshotLocked("end")
	wall := time.Since(m.started).Seconds()
	m.mu.Unlock()
	rec["status"] = status
	rec["wall_sec"] = finiteOr0(wall)
	user, sys := cpuTime()
	rec["cpu_user_sec"] = finiteOr0(user)
	rec["cpu_sys_sec"] = finiteOr0(sys)
	rec["metrics"] = reg.Export()
	return rec
}

// EmitStart writes the phase-"start" manifest record to sink (no-op
// when either side is nil) and flushes, so the record survives even a
// run killed moments later.
func (m *Manifest) EmitStart(sink EventSink) error {
	if m == nil || sink == nil {
		return nil
	}
	sink.Emit(ManifestEvent, m.Snapshot())
	return sink.Flush()
}

// EmitEnd writes the phase-"end" manifest record to sink and flushes.
func (m *Manifest) EmitEnd(sink EventSink, reg *Registry, status string) error {
	if m == nil || sink == nil {
		return nil
	}
	sink.Emit(ManifestEvent, m.Finalize(reg, status))
	return sink.Flush()
}
