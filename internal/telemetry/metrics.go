package telemetry

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. A nil *Counter is a
// valid no-op, so callers holding a counter from a disabled registry pay
// only a nil check on the hot path.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value-wins metric (e.g. the current annealing
// temperature). A nil *Gauge is a valid no-op.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores the value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the last stored value (0 for a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// reservoirSize bounds a histogram's sample memory; beyond it, samples
// are admitted by uniform reservoir sampling so the quantile estimates
// stay representative of the whole stream.
const reservoirSize = 4096

// Histogram accumulates a stream of observations (span durations in
// seconds, by convention) and reports count, sum, min/max, and
// reservoir-estimated quantiles. It is safe for concurrent use; a nil
// *Histogram is a valid no-op.
type Histogram struct {
	mu      sync.Mutex
	count   int64
	sum     float64
	min     float64
	max     float64
	samples []float64
	rng     uint64 // splitmix64 state for reservoir admission
}

// Observe records one value. Non-finite values (NaN, ±Inf) are dropped
// at the door: a single poisoned observation would otherwise turn Sum —
// and every derived mean — into NaN for the rest of the run, and the
// exposition layer promises JSON output that never contains NaN.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	if len(h.samples) < reservoirSize {
		h.samples = append(h.samples, v)
		return
	}
	// Vitter's algorithm R: replace a random slot with probability
	// reservoirSize/count.
	h.rng += 0x9e3779b97f4a7c15
	z := h.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if idx := z % uint64(h.count); idx < reservoirSize {
		h.samples[idx] = v
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// HistogramSnapshot is a consistent copy of a histogram's state.
type HistogramSnapshot struct {
	Count    int64
	Sum      float64
	Min, Max float64
	sorted   []float64
}

// Mean returns the arithmetic mean — 0 when the histogram is empty or
// its state is somehow non-finite, never NaN.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return finiteOr0(s.Sum / float64(s.Count))
}

// Quantile returns the q-quantile (q in [0,1]) estimated from the
// sample reservoir by linear rank interpolation (the R-7 estimator) —
// 0 when the histogram is empty or the selected samples are
// non-finite, never NaN. Interpolation keeps nearby quantiles
// distinguishable at small sample counts, where the nearest-rank
// estimator collapses p95, p99, and max onto the same order statistic
// (at n=12, ceil(0.95*12) and ceil(0.99*12) are both the last rank).
func (s HistogramSnapshot) Quantile(q float64) float64 {
	n := len(s.sorted)
	if n == 0 || math.IsNaN(q) {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	pos := q * float64(n-1)
	lo := int(pos)
	if lo >= n-1 {
		return finiteOr0(s.sorted[n-1])
	}
	frac := pos - float64(lo)
	return finiteOr0(s.sorted[lo] + frac*(s.sorted[lo+1]-s.sorted[lo]))
}

// finiteOr0 clamps non-finite values to 0 — the exposition layer's
// "never NaN in JSON" guarantee in one place.
func finiteOr0(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

// Snapshot returns a consistent copy for reporting (zero value for a
// nil histogram).
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	h.mu.Lock()
	snap := HistogramSnapshot{
		Count:  h.count,
		Sum:    h.sum,
		Min:    h.min,
		Max:    h.max,
		sorted: append([]float64(nil), h.samples...),
	}
	h.mu.Unlock()
	sort.Float64s(snap.sorted)
	return snap
}

// Registry names and owns a process's metrics. Metric handles are
// created on first use and shared by name afterwards; all accessors are
// safe for concurrent use. A nil *Registry hands out nil metric
// handles, which are themselves no-ops — the disabled fast path.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	start    time.Time
}

// NewRegistry returns an empty registry; its creation time anchors the
// rate computations of Summary.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		start:    time.Now(),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Elapsed is the time since the registry was created.
func (r *Registry) Elapsed() time.Duration {
	if r == nil {
		return 0
	}
	return time.Since(r.start)
}

// names returns the sorted keys of a metric map.
func names[M any](m map[string]M) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
