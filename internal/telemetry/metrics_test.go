package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestCounterConcurrent: G goroutines x N increments land exactly; run
// under -race this also proves the counter is data-race free.
func TestCounterConcurrent(t *testing.T) {
	const goroutines, perG = 16, 1000
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Mix of first-use lookups and increments exercises the
			// registry's create-on-first-use path concurrently too.
			for i := 0; i < perG; i++ {
				r.Counter("moves").Inc()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("moves").Value(); got != goroutines*perG {
		t.Errorf("counter = %d, want %d", got, goroutines*perG)
	}
}

func TestNilMetricsAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Error("nil counter accumulated")
	}
	g := r.Gauge("y")
	g.Set(3)
	if g.Value() != 0 {
		t.Error("nil gauge stored")
	}
	h := r.Histogram("z")
	h.Observe(1)
	if s := h.Snapshot(); s.Count != 0 {
		t.Error("nil histogram recorded")
	}
	if r.Summary() != "" {
		t.Error("nil registry produced a summary")
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("temp")
	g.Set(19.5)
	g.Set(0.5)
	if v := g.Value(); v != 0.5 {
		t.Errorf("gauge = %g, want 0.5", v)
	}
	if r.Gauge("temp") != g {
		t.Error("same name returned a different gauge")
	}
}

// TestHistogramQuantiles: a known distribution yields the expected
// order statistics.
func TestHistogramQuantiles(t *testing.T) {
	h := &Histogram{}
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	s := h.Snapshot()
	if s.Count != 100 || s.Min != 1 || s.Max != 100 {
		t.Fatalf("count/min/max = %d/%g/%g", s.Count, s.Min, s.Max)
	}
	if m := s.Mean(); math.Abs(m-50.5) > 1e-9 {
		t.Errorf("mean = %g, want 50.5", m)
	}
	// R-7 interpolation: position q*(n-1) between the order statistics.
	for _, tc := range []struct{ q, want float64 }{
		{0.50, 50.5}, {0.95, 95.05}, {0.99, 99.01}, {1.0, 100},
	} {
		if got := s.Quantile(tc.q); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("q%.2f = %g, want %g", tc.q, got, tc.want)
		}
	}
}

// TestQuantileSmallSampleDistinct is the small-N regression: with 12
// samples (a tesa-load leg), nearest-rank p95, p99, and max all landed
// on the last order statistic; interpolation keeps them distinct and
// strictly ordered.
func TestQuantileSmallSampleDistinct(t *testing.T) {
	h := &Histogram{}
	for i := 1; i <= 12; i++ {
		h.Observe(float64(i))
	}
	s := h.Snapshot()
	p50, p95, p99, max := s.Quantile(0.50), s.Quantile(0.95), s.Quantile(0.99), s.Quantile(1)
	if !(p50 < p95 && p95 < p99 && p99 < max) {
		t.Errorf("small-N quantiles collapsed: p50=%g p95=%g p99=%g max=%g", p50, p95, p99, max)
	}
	if max != 12 {
		t.Errorf("q1 = %g, want the max sample", max)
	}
}

// TestHistogramConcurrent: concurrent observers never lose counts, and
// the reservoir stays bounded with sane quantiles.
func TestHistogramConcurrent(t *testing.T) {
	const goroutines, perG = 8, 2000 // 16000 > reservoirSize
	h := &Histogram{}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(float64(g*perG + i))
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != goroutines*perG {
		t.Errorf("count = %d, want %d", s.Count, goroutines*perG)
	}
	if len(s.sorted) != reservoirSize {
		t.Errorf("reservoir = %d samples, want %d", len(s.sorted), reservoirSize)
	}
	if p50, p99 := s.Quantile(0.5), s.Quantile(0.99); p50 > p99 || p99 > s.Max {
		t.Errorf("quantiles disordered: p50=%g p99=%g max=%g", p50, p99, s.Max)
	}
}

func TestHistogramObserveDuration(t *testing.T) {
	h := &Histogram{}
	h.ObserveDuration(250 * time.Millisecond)
	if s := h.Snapshot(); math.Abs(s.Sum-0.25) > 1e-9 {
		t.Errorf("sum = %g, want 0.25", s.Sum)
	}
}

func TestSummaryContent(t *testing.T) {
	tel := New(nil)
	reg := tel.Registry()
	reg.Histogram("pipeline.total").Observe(0.010)
	reg.Counter("evaluator.cache.hit").Add(3)
	reg.Counter("evaluator.cache.miss").Add(1)
	reg.Gauge("anneal.temperature").Set(0.5)
	out := tel.Summary()
	for _, want := range []string{
		"pipeline.total", "evaluator.cache.hit", "anneal.temperature",
		"p95", "cache hit rate 75.0%", "pipeline evals",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
	var nilTel *Telemetry
	if nilTel.Summary() != "" {
		t.Error("nil telemetry produced a summary")
	}
}
