package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
)

// Server is the live exposition surface of a TESA process: a small HTTP
// server publishing the metrics registry, run manifest, and sweep
// progress. It is the scrape endpoint a future tesa-server mounts
// unchanged. Endpoints:
//
//	/metrics       Prometheus text format 0.0.4 (Registry.WritePrometheus)
//	/debug/vars    JSON: {"metrics": MetricsSnapshot, "manifest": {...},
//	               "progress": {...}} — all values finite, always valid JSON
//	/progress      JSON: the most recently published progress snapshot
//	/debug/pprof/  the standard net/http/pprof handlers
//	/              a plain-text index of the above
//
// All methods are nil-safe so CLIs hold a possibly-nil *Server and call
// it unconditionally, mirroring the *Telemetry convention.
type Server struct {
	tel *Telemetry
	ln  net.Listener
	srv *http.Server
	// progress and manifest hold map[string]any snapshots published by
	// the run loop. Snapshots, not live pointers: the publisher hands
	// over ownership, so request handlers never race run-loop mutation.
	progress atomic.Value
	manifest atomic.Value

	// closeOnce makes Close/Drain idempotent: multiple exit paths (signal
	// handler, deferred cleanup, explicit shutdown) can all call them and
	// every caller sees the first call's error.
	closeOnce sync.Once
	closeErr  error
}

// Serve binds addr (e.g. "localhost:9090", ":0" for an ephemeral port)
// and serves the exposition endpoints for tel until Close. The listener
// binds synchronously — a bad address fails here, not in a goroutine.
func Serve(addr string, tel *Telemetry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: serve: %w", err)
	}
	s := &Server{tel: tel, ln: ln}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/vars", s.handleVars)
	mux.HandleFunc("/progress", s.handleProgress)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", s.handleIndex)
	s.srv = &http.Server{Handler: mux}
	go func() {
		// http.ErrServerClosed is the normal Close path; anything else
		// has nowhere useful to go once the CLI is deep in a sweep.
		_ = s.srv.Serve(ln)
	}()
	return s, nil
}

// Addr returns the server's bound address ("" for a nil server) —
// useful with ":0" to discover the ephemeral port.
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// PublishProgress stores a progress snapshot for /progress. The server
// takes ownership of the map; callers must not mutate it afterwards.
// Safe to call from the sweep's progress callback (it only swaps an
// atomic pointer).
func (s *Server) PublishProgress(fields map[string]any) {
	if s == nil || fields == nil {
		return
	}
	s.progress.Store(fields)
}

// PublishManifest stores the run-manifest snapshot served under
// /debug/vars. The server takes ownership of the map.
func (s *Server) PublishManifest(fields map[string]any) {
	if s == nil || fields == nil {
		return
	}
	s.manifest.Store(fields)
}

// Close stops serving immediately, dropping in-flight requests, and
// releases the listener. Idempotent: repeated calls (and calls after
// Drain) return the first call's error.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	s.closeOnce.Do(func() { s.closeErr = s.srv.Close() })
	return s.closeErr
}

// Drain is the graceful counterpart of Close: it stops accepting new
// connections and waits for in-flight requests (a scrape mid-shutdown,
// a slow /debug/pprof/profile) to finish, up to ctx's deadline.
// Idempotent, and interchangeable with Close — whichever runs first
// decides the shutdown mode.
func (s *Server) Drain(ctx context.Context) error {
	if s == nil {
		return nil
	}
	s.closeOnce.Do(func() { s.closeErr = s.srv.Shutdown(ctx) })
	return s.closeErr
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.tel.Registry().WritePrometheus(w)
}

func (s *Server) handleVars(w http.ResponseWriter, _ *http.Request) {
	payload := map[string]any{
		"metrics": s.tel.Registry().Export(),
	}
	if m, ok := s.manifest.Load().(map[string]any); ok {
		payload["manifest"] = m
	}
	if p, ok := s.progress.Load().(map[string]any); ok {
		payload["progress"] = p
	}
	writeJSON(w, payload)
}

func (s *Server) handleProgress(w http.ResponseWriter, _ *http.Request) {
	p, ok := s.progress.Load().(map[string]any)
	if !ok {
		p = map[string]any{}
	}
	writeJSON(w, p)
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, "tesa exposition endpoints:\n"+
		"  /metrics      Prometheus text format\n"+
		"  /debug/vars   JSON metrics + manifest + progress\n"+
		"  /progress     JSON live progress\n"+
		"  /debug/pprof  runtime profiles\n")
}

// writeJSON marshals v (every exported snapshot is finite-by-
// construction, so marshaling cannot fail on NaN) and writes it with
// the JSON content type.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
