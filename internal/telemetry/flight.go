package telemetry

import (
	"fmt"
	"runtime"
	"sync"
	"time"
)

// flightDepth is the per-goroutine ring capacity: the last N stage
// events retained for a quarantine dump. Deep enough to span a full
// pipeline evaluation (six stages) plus the preceding point's tail.
const flightDepth = 16

// maxFlightRings bounds the number of per-goroutine rings; beyond it,
// registering a new goroutine evicts the least recently active ring.
// Evaluator goroutines come from bounded worker pools, so eviction only
// fires in long-lived multi-sweep processes (the future tesa-server).
const maxFlightRings = 128

// FlightRecorder is a bounded per-goroutine ring of recent stage
// events — a flight recorder for the evaluation pipeline. Each worker
// goroutine's last flightDepth Record calls are retained; when an
// evaluation fails, Dump returns the calling goroutine's recent history
// so the quarantine record carries its own causal trace. All methods
// are safe for concurrent use; a nil *FlightRecorder is a valid no-op.
type FlightRecorder struct {
	mu    sync.Mutex
	rings map[uint64]*flightRing
}

type flightRing struct {
	events [flightDepth]flightEvent
	n      int // total events ever recorded
	touch  time.Time
}

type flightEvent struct {
	what string
	at   time.Time
}

// NewFlightRecorder returns an empty recorder.
func NewFlightRecorder() *FlightRecorder {
	return &FlightRecorder{rings: make(map[uint64]*flightRing)}
}

// Record appends one event to the calling goroutine's ring. The event
// string should be short and self-contained, e.g.
// "stage.thermal dim=24 ics=6".
func (f *FlightRecorder) Record(what string) {
	if f == nil {
		return
	}
	now := time.Now()
	id := goid()
	f.mu.Lock()
	r, ok := f.rings[id]
	if !ok {
		if len(f.rings) >= maxFlightRings {
			f.evictStalestLocked()
		}
		r = &flightRing{}
		f.rings[id] = r
	}
	r.events[r.n%flightDepth] = flightEvent{what: what, at: now}
	r.n++
	r.touch = now
	f.mu.Unlock()
}

// Dump returns the calling goroutine's recorded events, oldest first,
// each prefixed with its offset from the oldest dumped event
// ("+1.2ms stage.thermal dim=24 ics=6"). Returns nil when the
// goroutine has recorded nothing (or the recorder is nil).
func (f *FlightRecorder) Dump() []string {
	if f == nil {
		return nil
	}
	id := goid()
	f.mu.Lock()
	r, ok := f.rings[id]
	if !ok || r.n == 0 {
		f.mu.Unlock()
		return nil
	}
	count := r.n
	if count > flightDepth {
		count = flightDepth
	}
	events := make([]flightEvent, count)
	for i := 0; i < count; i++ {
		// Oldest retained event is at index n%depth when the ring has
		// wrapped, 0 otherwise.
		idx := i
		if r.n > flightDepth {
			idx = (r.n + i) % flightDepth
		}
		events[i] = r.events[idx]
	}
	f.mu.Unlock()
	out := make([]string, count)
	t0 := events[0].at
	for i, e := range events {
		out[i] = fmt.Sprintf("+%s %s", e.at.Sub(t0).Round(time.Microsecond), e.what)
	}
	return out
}

// evictStalestLocked drops the least recently touched ring. Caller
// holds f.mu.
func (f *FlightRecorder) evictStalestLocked() {
	var stalest uint64
	var when time.Time
	first := true
	for id, r := range f.rings {
		if first || r.touch.Before(when) {
			stalest, when, first = id, r.touch, false
		}
	}
	if !first {
		delete(f.rings, stalest)
	}
}

// goid parses the current goroutine's id from runtime.Stack. Go
// deliberately hides goroutine ids, but a per-goroutine ring keyed any
// other way would need the pipeline to thread a context through every
// stage; parsing the stack header costs ~1µs, paid only on Record —
// i.e. only when flight recording is enabled.
func goid() uint64 {
	var buf [32]byte
	n := runtime.Stack(buf[:], false)
	// Header shape: "goroutine 123 [running]:".
	var id uint64
	for i := len("goroutine "); i < n; i++ {
		c := buf[i]
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + uint64(c-'0')
	}
	return id
}
