package telemetry

import (
	"context"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"
	"time"
)

// drainGrace bounds how long Setup's cleanup waits for in-flight
// exposition requests before the process moves on with its exit.
const drainGrace = 2 * time.Second

// Setup wires the standard CLI observability flags:
//
//	-trace out.jsonl    tracePath:   JSONL event trace (""=off)
//	-metrics            metrics:     collect + print the summary table
//	-metrics-addr addr  metricsAddr: serve /metrics, /debug/vars,
//	                    /progress and /debug/pprof (""=off)
//	-pprof addr         pprofAddr:   serve net/http/pprof alone (""=off)
//
// It returns the hub (nil when nothing asked for telemetry, preserving
// the disabled fast path — note -metrics-addr implies a live registry),
// the exposition server (nil unless metricsAddr was given), and a
// cleanup that flushes and closes the trace file and shuts the server
// down. Both listeners bind synchronously — a bad address fails here,
// not in a goroutine.
func Setup(tracePath, pprofAddr, metricsAddr string, metrics bool) (*Telemetry, *Server, func() error, error) {
	cleanup := func() error { return nil }
	if pprofAddr != "" {
		ln, err := net.Listen("tcp", pprofAddr)
		if err != nil {
			return nil, nil, cleanup, fmt.Errorf("telemetry: pprof listen: %w", err)
		}
		fmt.Fprintf(os.Stderr, "pprof: serving on http://%s/debug/pprof\n", ln.Addr())
		go func() {
			if err := http.Serve(ln, nil); err != nil {
				fmt.Fprintf(os.Stderr, "pprof: %v\n", err)
			}
		}()
	}
	var sink EventSink
	var closeTrace func() error
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return nil, nil, cleanup, fmt.Errorf("telemetry: trace: %w", err)
		}
		js := NewJSONLSink(f)
		sink = js
		closeTrace = func() error {
			if err := js.Flush(); err != nil {
				f.Close()
				return err
			}
			return f.Close()
		}
	}
	if sink == nil && !metrics && metricsAddr == "" {
		return nil, nil, cleanup, nil
	}
	tel := New(sink)
	var srv *Server
	if metricsAddr != "" {
		var err error
		srv, err = Serve(metricsAddr, tel)
		if err != nil {
			if closeTrace != nil {
				_ = closeTrace()
			}
			return nil, nil, cleanup, err
		}
		fmt.Fprintf(os.Stderr, "metrics: serving on http://%s/metrics\n", srv.Addr())
	}
	cleanup = func() error {
		// Drain rather than Close: a scrape racing process exit gets its
		// response instead of a reset. The bound keeps a wedged client
		// from holding the process hostage; Drain and Close share one
		// sync.Once, so a caller that already Closed wins harmlessly.
		ctx, cancel := context.WithTimeout(context.Background(), drainGrace)
		defer cancel()
		err := srv.Drain(ctx)
		if closeTrace != nil {
			if terr := closeTrace(); err == nil {
				err = terr
			}
		}
		return err
	}
	return tel, srv, cleanup, nil
}
