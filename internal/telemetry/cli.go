package telemetry

import (
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"
)

// Setup wires the standard CLI observability flags:
//
//	-trace out.jsonl   tracePath: JSONL event trace (""=off)
//	-metrics           metrics:   collect + print the summary table
//	-pprof addr        pprofAddr: serve net/http/pprof (""=off)
//
// It returns the hub (nil when neither tracing nor metrics was
// requested, preserving the disabled fast path) and a cleanup that
// flushes and closes the trace file. The pprof server, if requested,
// binds synchronously — a bad address fails here, not in a goroutine —
// and serves for the life of the process.
func Setup(tracePath, pprofAddr string, metrics bool) (*Telemetry, func() error, error) {
	cleanup := func() error { return nil }
	if pprofAddr != "" {
		ln, err := net.Listen("tcp", pprofAddr)
		if err != nil {
			return nil, cleanup, fmt.Errorf("telemetry: pprof listen: %w", err)
		}
		fmt.Fprintf(os.Stderr, "pprof: serving on http://%s/debug/pprof\n", ln.Addr())
		go func() {
			if err := http.Serve(ln, nil); err != nil {
				fmt.Fprintf(os.Stderr, "pprof: %v\n", err)
			}
		}()
	}
	var sink EventSink
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return nil, cleanup, fmt.Errorf("telemetry: trace: %w", err)
		}
		js := NewJSONLSink(f)
		sink = js
		cleanup = func() error {
			if err := js.Flush(); err != nil {
				f.Close()
				return err
			}
			return f.Close()
		}
	}
	if sink == nil && !metrics {
		return nil, cleanup, nil
	}
	return New(sink), cleanup, nil
}
