package telemetry

import (
	"bytes"
	"sync"
	"testing"
	"time"
)

// TestNilTelemetryFastPath: every entry point on a nil hub is a no-op
// that neither panics nor allocates observable state.
func TestNilTelemetryFastPath(t *testing.T) {
	var tel *Telemetry
	if tel.Enabled() || tel.Tracing() {
		t.Error("nil hub claims to be enabled")
	}
	sp := tel.StartSpan("stage.x")
	sp.End() // must not panic
	tel.Emit("event", nil)
	tel.AddHook(func(string, time.Duration) { t.Error("hook on nil hub fired") })
	if tel.Registry() != nil {
		t.Error("nil hub returned a registry")
	}
	if err := tel.Flush(); err != nil {
		t.Errorf("nil flush: %v", err)
	}
}

func TestSpanRecordsHistogram(t *testing.T) {
	tel := New(nil)
	sp := tel.StartSpan("stage.test")
	time.Sleep(time.Millisecond)
	sp.End()
	s := tel.Registry().Histogram("stage.test").Snapshot()
	if s.Count != 1 {
		t.Fatalf("count = %d, want 1", s.Count)
	}
	if s.Sum <= 0 {
		t.Errorf("sum = %g, want > 0", s.Sum)
	}
}

func TestHooksObserveSpans(t *testing.T) {
	tel := New(nil)
	var mu sync.Mutex
	var got []string
	tel.AddHook(func(name string, d time.Duration) {
		mu.Lock()
		defer mu.Unlock()
		if d < 0 {
			t.Errorf("negative duration %v", d)
		}
		got = append(got, name)
	})
	tel.StartSpan("a").End()
	tel.StartSpan("b").End()
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("hooks saw %v, want [a b]", got)
	}
}

// TestEmitReachesSink: a hub with a sink forwards events; one without
// discards them.
func TestEmitReachesSink(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	tel := New(sink)
	if !tel.Tracing() {
		t.Fatal("hub with sink reports Tracing()=false")
	}
	tel.Emit("hello", map[string]any{"x": 1})
	if err := tel.Flush(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("event never reached the sink")
	}

	metricsOnly := New(nil)
	if metricsOnly.Tracing() {
		t.Error("sinkless hub reports Tracing()=true")
	}
	metricsOnly.Emit("dropped", nil) // must not panic
}
