package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestManifestStartEndRecords(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)

	m := NewManifest("tesa-sweep", []string{"-full", "-trace", "t.jsonl"})
	if len(m.RunID()) != 16 {
		t.Fatalf("run id %q: want 16 hex chars", m.RunID())
	}
	m.Set("space", "fp:abc123")
	m.Set("model_version", "tesa-models-1")
	if err := m.EmitStart(sink); err != nil {
		t.Fatal(err)
	}

	reg := NewRegistry()
	reg.Counter("eval.quarantined").Add(2)
	m.Set("shards", 8) // facts may accrue during the run
	if err := m.EmitEnd(sink, reg, "ok"); err != nil {
		t.Fatal(err)
	}
	sink.Flush()

	sc := bufio.NewScanner(&buf)
	var recs []map[string]any
	for sc.Scan() {
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("invalid JSONL: %v: %s", err, sc.Text())
		}
		recs = append(recs, rec)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	start, end := recs[0], recs[1]
	if start["event"] != ManifestEvent || end["event"] != ManifestEvent {
		t.Fatalf("wrong events: %v / %v", start["event"], end["event"])
	}
	if start["phase"] != "start" || end["phase"] != "end" {
		t.Fatalf("phases: %v / %v", start["phase"], end["phase"])
	}
	if start["run"] != m.RunID() || end["run"] != m.RunID() {
		t.Fatal("run id must bind both records")
	}
	if start["command"] != "tesa-sweep" || start["space"] != "fp:abc123" {
		t.Fatalf("start record: %v", start)
	}
	if _, ok := start["shards"]; ok {
		t.Fatal("start record must not contain facts set later")
	}
	if end["shards"] != float64(8) || end["status"] != "ok" {
		t.Fatalf("end record: %v", end)
	}
	if _, ok := end["wall_sec"].(float64); !ok {
		t.Fatalf("end record missing wall_sec: %v", end)
	}
	metrics, ok := end["metrics"].(map[string]any)
	if !ok {
		t.Fatalf("end record missing metrics: %v", end)
	}
	counters, _ := metrics["counters"].(map[string]any)
	if counters["eval.quarantined"] != float64(2) {
		t.Fatalf("quarantine tally not in manifest: %v", metrics)
	}
}

func TestManifestNilSafe(t *testing.T) {
	var m *Manifest
	if m.RunID() != "" {
		t.Error("nil RunID")
	}
	m.Set("k", 1)
	if m.Snapshot() != nil || m.Finalize(nil, "ok") != nil {
		t.Error("nil manifest snapshots must be nil")
	}
	if err := m.EmitStart(nil); err != nil {
		t.Error(err)
	}
	if err := m.EmitEnd(nil, nil, "ok"); err != nil {
		t.Error(err)
	}
}

func TestNewRunIDUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := NewRunID()
		if len(id) != 16 || strings.ContainsAny(id, " \t\n") {
			t.Fatalf("bad run id %q", id)
		}
		if seen[id] {
			t.Fatalf("duplicate run id %q", id)
		}
		seen[id] = true
	}
}
