// Package telemetry is TESA's zero-dependency observability layer: a
// thread-safe metrics registry (counters, gauges, timing histograms
// with p50/p95/p99), a structured JSONL event sink for traces, and a
// Span/Hook API that the evaluation pipeline and the annealers report
// through.
//
// The design constraint is that *disabled* telemetry must cost
// approximately nothing: every entry point is nil-safe, so code holds a
// possibly-nil *Telemetry and calls it unconditionally. A nil hub hands
// out zero Spans and nil metric handles whose methods are single
// nil-check no-ops — no time.Now, no locks, no allocation on the hot
// path (see BenchmarkOptimizeTelemetryOff/On at the repo root).
//
// Metric and event names used by the TESA pipeline:
//
//	pipeline.total            histogram, seconds per design-point evaluation
//	stage.systolic            histogram, performance-model stage
//	stage.floorplan           histogram, area + mesh + placement stage
//	stage.sched               histogram, scheduler stage
//	stage.dram                histogram, DRAM channel/power stage
//	stage.cost                histogram, MCM cost stage
//	stage.thermal             histogram, leakage/thermal stage
//	evaluator.cache.hit/.miss counters, memoized vs pipeline evaluations
//	evaluator.feasible/.infeasible counters, pipeline verdicts
//	anneal.accepted/.uphill/.rejected counters, annealer move outcomes
//	anneal.start/.level/.done, optimize.done  trace events
package telemetry

import (
	"sync"
	"time"
)

// Hook observes every completed span (name and duration). Hooks are the
// attachment point for future surrogate-model and adaptive-budget work:
// they see per-stage latencies as they happen, without touching the
// pipeline code. Hooks run synchronously on the emitting goroutine and
// must be cheap and concurrency-safe.
type Hook func(name string, d time.Duration)

// Telemetry bundles a metrics registry with an optional trace sink. The
// zero *Telemetry (nil) is the disabled state; all methods are nil-safe.
type Telemetry struct {
	reg  *Registry
	sink EventSink

	mu    sync.Mutex
	hooks []Hook
}

// New returns an enabled hub. sink may be nil for metrics-only
// operation (the CLIs' -metrics without -trace).
func New(sink EventSink) *Telemetry {
	return &Telemetry{reg: NewRegistry(), sink: sink}
}

// Enabled reports whether the hub collects anything at all.
func (t *Telemetry) Enabled() bool { return t != nil }

// Tracing reports whether trace events reach a sink.
func (t *Telemetry) Tracing() bool { return t != nil && t.sink != nil }

// Registry returns the metrics registry (nil when disabled, which is
// itself a valid no-op registry).
func (t *Telemetry) Registry() *Registry {
	if t == nil {
		return nil
	}
	return t.reg
}

// AddHook registers a span observer.
func (t *Telemetry) AddHook(h Hook) {
	if t == nil || h == nil {
		return
	}
	t.mu.Lock()
	t.hooks = append(t.hooks, h)
	t.mu.Unlock()
}

// Emit forwards a trace event to the sink, if any. Callers on hot paths
// should guard field-map construction with Tracing().
func (t *Telemetry) Emit(event string, fields map[string]any) {
	if t == nil || t.sink == nil {
		return
	}
	t.sink.Emit(event, fields)
}

// Span measures one timed section. The zero Span (from a nil hub) is a
// no-op whose End costs a single nil check.
type Span struct {
	t     *Telemetry
	hist  *Histogram
	name  string
	start time.Time
}

// StartSpan opens a span whose End records into the histogram named
// name.
func (t *Telemetry) StartSpan(name string) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, hist: t.reg.Histogram(name), name: name, start: time.Now()}
}

// End closes the span: the duration lands in the span's histogram and
// every registered Hook.
func (s Span) End() {
	if s.t == nil {
		return
	}
	d := time.Since(s.start)
	s.hist.Observe(d.Seconds())
	s.t.mu.Lock()
	hooks := s.t.hooks
	s.t.mu.Unlock()
	for _, h := range hooks {
		h(s.name, d)
	}
}

// Flush drains the trace sink, if any.
func (t *Telemetry) Flush() error {
	if t == nil || t.sink == nil {
		return nil
	}
	return t.sink.Flush()
}
