// Package power implements TESA's power models: the chiplet dynamic power
// of Eqs. (1)-(4), the TSV power of Eq. (5), and the leakage models — an
// exponential temperature-dependent model for the systolic array (after
// Shukla et al., ASPDAC 2021) and a CACTI-derived, temperature-scaled
// model for the SRAMs.
//
// The paper argues that leakage modeling is what separates TESA from the
// prior 2.5D floorplanners it compares against: W1 ignores leakage and W2
// linearizes it, and both consequently miss thermal-runaway conditions in
// 3-D stacks. The exponential model here reproduces that failure mode.
package power

import (
	"fmt"
	"math"

	"tesa/internal/sram"
	"tesa/internal/systolic"
)

// Params bundles the 22 nm technology constants used by the models. The
// zero value is not valid; use Default22nm.
type Params struct {
	// MACDynamicWattsAt400MHz is the dynamic power of one 8-bit MAC unit
	// (PE) at 400 MHz, representative of a 22 nm implementation [10].
	// Dynamic power scales linearly with frequency.
	MACDynamicWattsAt400MHz float64
	// MACLeakWatts45C is one PE's leakage at the 45 C reference.
	MACLeakWatts45C float64
	// LeakTempCoeffPerC is the exponent k of the exponential leakage
	// model P(T) = P(T0) * exp(k*(T-T0)).
	LeakTempCoeffPerC float64
	// RefTempC is T0 of the leakage model: the HotSpot ambient (45 C).
	RefTempC float64
	// TSVWattsPerBitAt400MHz is a TSV's dynamic power per bit at 400 MHz
	// (1 uW, after Gong et al. [16]); it scales linearly with frequency.
	TSVWattsPerBitAt400MHz float64
}

// Default22nm returns the calibration used throughout the reproduction
// (see DESIGN.md section 5).
func Default22nm() Params {
	return Params{
		MACDynamicWattsAt400MHz: 0.15e-3,
		MACLeakWatts45C:         0.010e-3,
		LeakTempCoeffPerC:       0.035,
		RefTempC:                45,
		TSVWattsPerBitAt400MHz:  1e-6,
	}
}

// Validate reports an error for non-physical parameter sets.
func (p Params) Validate() error {
	if p.MACDynamicWattsAt400MHz <= 0 || p.MACLeakWatts45C < 0 ||
		p.LeakTempCoeffPerC <= 0 || p.TSVWattsPerBitAt400MHz < 0 {
		return fmt.Errorf("power: non-physical params %+v", p)
	}
	return nil
}

// MACDynamicWatts returns DP_MAC at the given frequency (Table I).
func (p Params) MACDynamicWatts(freqHz float64) float64 {
	return p.MACDynamicWattsAt400MHz * freqHz / 400e6
}

// Dynamic is the decomposition of one chiplet's dynamic power while
// executing one DNN (Eq. 1).
type Dynamic struct {
	ArrayWatts float64 // SaDP_{i,j}, Eq. (2)
	SRAMWatts  float64 // SrDP_{i,j}, Eq. (4)
	TSVWatts   float64 // TsvDP_{i,j}, Eq. (5); zero for 2-D chiplets
}

// Total returns DP_{i,j} (Eq. 1), plus the TSV term for 3-D chiplets.
func (d Dynamic) Total() float64 { return d.ArrayWatts + d.SRAMWatts + d.TSVWatts }

// ChipletDynamic evaluates Eqs. (1)-(4) for a chiplet running one DNN:
// the stats come from the performance model (utilization and average SRAM
// bandwidths already cycle-weighted per Eq. 3), est characterizes each of
// the three SRAM macros, and threeD adds the Eq. (5) TSV term.
func (p Params) ChipletDynamic(st *systolic.NetworkStats, est sram.Estimate, freqHz float64, threeD bool) Dynamic {
	var d Dynamic
	// Eq. (2): SaDP = Util * DP_MAC(freq) * num_PEs.
	d.ArrayWatts = st.Utilization * p.MACDynamicWatts(freqHz) * float64(st.Array.PEs())
	// Eq. (4): SrDP = sum_m SrBw_avg,m * DP_per_byte. Bandwidths are in
	// bytes per cycle; multiplying by frequency converts the per-access
	// energy into power.
	for m := 0; m < 3; m++ {
		d.SRAMWatts += st.AvgSRAMBw[m] * est.EnergyPJPerByte * 1e-12 * freqHz
	}
	if threeD {
		d.TSVWatts = p.TSVDynamic(st, freqHz)
	}
	return d
}

// TSVDynamic evaluates Eq. (5): every SRAM byte crossing the tier
// boundary costs 8 bit-transfers through TSVs.
func (p Params) TSVDynamic(st *systolic.NetworkStats, freqHz float64) float64 {
	perBit := p.TSVWattsPerBitAt400MHz * freqHz / 400e6
	var w float64
	for m := 0; m < 3; m++ {
		w += st.AvgSRAMBw[m] * 8 * perBit
	}
	return w
}

// leakScale returns exp(k*(T-T0)), the exponential temperature scaling
// shared by the array and SRAM leakage models.
func (p Params) leakScale(tempC float64) float64 {
	return math.Exp(p.LeakTempCoeffPerC * (tempC - p.RefTempC))
}

// ArrayLeakage returns the systolic-array tier's leakage at the given
// junction temperature for a chiplet with numPEs MACs.
func (p Params) ArrayLeakage(numPEs int, tempC float64) float64 {
	return float64(numPEs) * p.MACLeakWatts45C * p.leakScale(tempC)
}

// SRAMLeakage returns the leakage of the chiplet's three SRAM macros at
// the given junction temperature.
func (p Params) SRAMLeakage(est sram.Estimate, tempC float64) float64 {
	return 3 * est.LeakWatts * p.leakScale(tempC)
}

// ChipletLeakage returns the total chiplet leakage (array + SRAMs) at the
// given junction temperature. Leakage is dissipated whether or not a DNN
// is executing, which is why temperature-unaware baselines that ignore it
// (SC1/SC2) under-estimate total power.
func (p Params) ChipletLeakage(numPEs int, est sram.Estimate, tempC float64) float64 {
	return p.ArrayLeakage(numPEs, tempC) + p.SRAMLeakage(est, tempC)
}
