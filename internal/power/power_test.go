package power

import (
	"math"
	"testing"
	"testing/quick"

	"tesa/internal/dnn"
	"tesa/internal/sram"
	"tesa/internal/systolic"
)

func stats(t *testing.T, dim int, sramKB int64) *systolic.NetworkStats {
	t.Helper()
	a := systolic.Array{Rows: dim, Cols: dim, Dataflow: systolic.OutputStationary, SRAMBytes: sramKB * 1024}
	n := dnn.ResNet50()
	st, err := systolic.SimulateNetwork(a, &n)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func est(t *testing.T, kb int64) sram.Estimate {
	t.Helper()
	e, err := sram.Estimate22nm(kb * 1024)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestDefaultParamsValid(t *testing.T) {
	if err := Default22nm().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Params{}
	if err := bad.Validate(); err == nil {
		t.Error("zero params accepted")
	}
}

func TestMACDynamicScalesWithFrequency(t *testing.T) {
	p := Default22nm()
	w400 := p.MACDynamicWatts(400e6)
	w500 := p.MACDynamicWatts(500e6)
	if math.Abs(w500/w400-1.25) > 1e-9 {
		t.Errorf("500/400 MHz power ratio = %f, want 1.25", w500/w400)
	}
	if math.Abs(w400-0.15e-3) > 1e-12 {
		t.Errorf("DP_MAC at 400 MHz = %g, want 1.5e-4 W", w400)
	}
}

// TestEq2ArrayPower: SaDP = Util * DP_MAC * num_PEs exactly.
func TestEq2ArrayPower(t *testing.T) {
	p := Default22nm()
	st := stats(t, 200, 1024)
	d := p.ChipletDynamic(st, est(t, 1024), 400e6, false)
	want := st.Utilization * 0.15e-3 * 200 * 200
	if math.Abs(d.ArrayWatts-want) > 1e-12 {
		t.Errorf("SaDP = %g, want %g", d.ArrayWatts, want)
	}
	if d.TSVWatts != 0 {
		t.Errorf("2-D chiplet has TSV power %g", d.TSVWatts)
	}
}

// TestPaperPowerMagnitudes: the winning 200x200 configuration at 400 MHz
// must land in the single-digit-watt range per chiplet, consistent with a
// 15 W MCM budget for 2-3 chiplets (Table II).
func TestPaperPowerMagnitudes(t *testing.T) {
	p := Default22nm()
	st := stats(t, 200, 1024)
	d := p.ChipletDynamic(st, est(t, 1024), 400e6, false)
	if d.Total() < 0.5 || d.Total() > 8 {
		t.Errorf("200x200 chiplet dynamic power = %.2f W, want 0.5..8 W", d.Total())
	}
	if d.SRAMWatts <= 0 || d.SRAMWatts > d.ArrayWatts {
		t.Errorf("SRAM power %.3f W should be positive and below array power %.3f W", d.SRAMWatts, d.ArrayWatts)
	}
}

// TestEq5TSVPower: 3-D adds a positive TSV term proportional to frequency.
func TestEq5TSVPower(t *testing.T) {
	p := Default22nm()
	st := stats(t, 128, 512)
	d400 := p.ChipletDynamic(st, est(t, 512), 400e6, true)
	d500 := p.ChipletDynamic(st, est(t, 512), 500e6, true)
	if d400.TSVWatts <= 0 {
		t.Fatal("3-D chiplet TSV power not positive")
	}
	if math.Abs(d500.TSVWatts/d400.TSVWatts-1.25) > 1e-9 {
		t.Errorf("TSV power freq ratio = %f, want 1.25", d500.TSVWatts/d400.TSVWatts)
	}
	// Eq. (5) spelled out.
	var want float64
	for m := 0; m < 3; m++ {
		want += st.AvgSRAMBw[m] * 8 * 1e-6
	}
	if math.Abs(d400.TSVWatts-want) > 1e-12 {
		t.Errorf("TSV power = %g, want %g", d400.TSVWatts, want)
	}
}

// TestLeakageExponential: leakage follows P(T) = P0 * exp(k dT) exactly,
// and is strictly increasing in temperature (property test).
func TestLeakageExponential(t *testing.T) {
	p := Default22nm()
	base := p.ArrayLeakage(40000, 45)
	if math.Abs(base-40000*0.010e-3) > 1e-9 {
		t.Errorf("leakage at T0 = %g, want %g", base, 40000*0.010e-3)
	}
	at75 := p.ArrayLeakage(40000, 75)
	if math.Abs(at75/base-math.Exp(0.035*30)) > 1e-9 {
		t.Errorf("75C/45C leakage ratio = %f, want %f", at75/base, math.Exp(0.035*30))
	}
	f := func(t1, t2 uint8) bool {
		a, b := 45+float64(t1%80), 45+float64(t2%80)
		if a > b {
			a, b = b, a
		}
		return p.ArrayLeakage(1000, a) <= p.ArrayLeakage(1000, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestLeakageRunawayCapable: the leakage model must be strong enough that
// a hot, dense 3-D chiplet's leakage at ~100 C is several times its 45 C
// value — the precondition for reproducing the paper's SC2 thermal
// runaway rows.
func TestLeakageRunawayCapable(t *testing.T) {
	p := Default22nm()
	ratio := p.ArrayLeakage(1, 100) / p.ArrayLeakage(1, 45)
	if ratio < 5 {
		t.Errorf("100C/45C leakage ratio = %.1f, want >= 5 for runaway reproduction", ratio)
	}
}

func TestSRAMLeakageCountsAllThreeMacros(t *testing.T) {
	p := Default22nm()
	e := est(t, 1024)
	got := p.SRAMLeakage(e, 45)
	if math.Abs(got-3*e.LeakWatts) > 1e-12 {
		t.Errorf("SRAM leakage at T0 = %g, want %g (3 macros)", got, 3*e.LeakWatts)
	}
}

func TestChipletLeakageIsSum(t *testing.T) {
	p := Default22nm()
	e := est(t, 256)
	total := p.ChipletLeakage(10000, e, 80)
	parts := p.ArrayLeakage(10000, 80) + p.SRAMLeakage(e, 80)
	if math.Abs(total-parts) > 1e-12 {
		t.Errorf("chiplet leakage %g != array+sram %g", total, parts)
	}
}

// TestUtilizationDrivesDensityInversion reproduces the mechanism behind
// the paper's 240x240-at-75C result: a larger array runs at lower
// utilization, so its power *density* (W per PE-area) drops even though
// total power rises.
func TestUtilizationDrivesDensityInversion(t *testing.T) {
	p := Default22nm()
	st200 := stats(t, 200, 1024)
	st240 := stats(t, 240, 1024)
	d200 := p.ChipletDynamic(st200, est(t, 1024), 500e6, false)
	d240 := p.ChipletDynamic(st240, est(t, 1024), 500e6, false)
	density200 := d200.ArrayWatts / (200 * 200)
	density240 := d240.ArrayWatts / (240 * 240)
	if density240 >= density200 {
		t.Errorf("240x240 power density %.3g not below 200x200's %.3g", density240, density200)
	}
}
