package nop

import (
	"math"
	"testing"
	"testing/quick"

	"tesa/internal/floorplan"
)

func place(t *testing.T, w, h, ics float64, m floorplan.Mesh) *floorplan.Placement {
	t.Helper()
	p, err := floorplan.Place(8, w, h, ics, m)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultParams()
	bad.LinkWidthBits = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero link width accepted")
	}
}

func TestLinkLatencyComposition(t *testing.T) {
	p := DefaultParams()
	// 4 mm: 2 ns SerDes + 4 * 150 ps = 2.6 ns.
	want := 2e-9 + 4*150e-12
	if got := p.LinkLatencySec(4); math.Abs(got-want) > 1e-15 {
		t.Errorf("latency = %g, want %g", got, want)
	}
}

func TestWireEnergyScales(t *testing.T) {
	p := DefaultParams()
	e1 := p.WireEnergyJ(1000, 2)
	e2 := p.WireEnergyJ(2000, 2)
	e3 := p.WireEnergyJ(1000, 4)
	if math.Abs(e2-2*e1) > 1e-18 || math.Abs(e3-2*e1) > 1e-18 {
		t.Error("wire energy not linear in bytes and distance")
	}
}

func TestEdgeDistances(t *testing.T) {
	// 2x1 mesh of 2x2 mm chiplets at 1 mm ICS on 8 mm: centered block
	// spans y in [1.5, 6.5], x in [3, 5]. Chiplet centers at (4, 2.5) and
	// (4, 5.5): nearest edges are y=0 and y=8, both 2.5 mm away.
	pl := place(t, 2, 2, 1, floorplan.Mesh{Rows: 2, Cols: 1})
	d := EdgeDistances(pl)
	if len(d) != 2 {
		t.Fatalf("distances = %d, want 2", len(d))
	}
	for i, dist := range d {
		if math.Abs(dist-2.5) > 1e-9 {
			t.Errorf("chiplet %d edge distance = %.3f, want 2.5", i, dist)
		}
	}
}

// TestEdgeChipletsCloserThanCenter: in a 3x1 column the middle chiplet is
// no closer to an edge than the outer ones.
func TestEdgeChipletsCloserThanCenter(t *testing.T) {
	pl := place(t, 2, 1.7, 1.4, floorplan.Mesh{Rows: 3, Cols: 1})
	d := EdgeDistances(pl)
	if d[1] < d[0] || d[1] < d[2] {
		t.Errorf("middle chiplet closer to an edge than outer ones: %v", d)
	}
}

func TestAssessValidation(t *testing.T) {
	pl := place(t, 2, 2, 1, floorplan.Mesh{Rows: 2, Cols: 1})
	p := DefaultParams()
	if _, err := p.Assess(pl, []int64{1}, 30); err == nil {
		t.Error("wrong traffic length accepted")
	}
	if _, err := p.Assess(pl, []int64{1, 1}, 0); err == nil {
		t.Error("zero fps accepted")
	}
}

// TestPaperAssumptionHolds verifies the paper's Sec. III claim in this
// model's regime: for a paper-scale MCM (2x1 of 200x200-class chiplets
// moving ~100 MB per frame each), the chiplet-to-PHY link latency is
// negligible against a 33 ms frame and the wire power is negligible
// against watts of DRAM power.
func TestPaperAssumptionHolds(t *testing.T) {
	pl := place(t, 3.88, 1.72, 1.7, floorplan.Mesh{Rows: 2, Cols: 1})
	p := DefaultParams()
	a, err := p.Assess(pl, []int64{100e6, 100e6}, 30)
	if err != nil {
		t.Fatal(err)
	}
	frame := 1.0 / 30
	if a.WorstLatencySec > 1e-4*frame {
		t.Errorf("link latency %.2g s is not negligible vs the %.2g s frame", a.WorstLatencySec, frame)
	}
	if a.WirePowerW > 0.5 {
		t.Errorf("wire power %.3f W not negligible vs DRAM power (watts)", a.WirePowerW)
	}
	if a.WirePowerW <= 0 {
		t.Error("wire power should be positive for nonzero traffic")
	}
}

// TestAssessConsistency: totals equal the sum of per-chiplet values
// (property over traffic splits).
func TestAssessConsistency(t *testing.T) {
	pl := place(t, 1.5, 1.5, 0.5, floorplan.Mesh{Rows: 2, Cols: 2})
	p := DefaultParams()
	f := func(a, b, c, d uint32) bool {
		traffic := []int64{int64(a), int64(b), int64(c), int64(d)}
		as, err := p.Assess(pl, traffic, 30)
		if err != nil {
			return false
		}
		var sum, worst float64
		for _, cl := range as.PerChiplet {
			sum += cl.WirePowerWatt
			if cl.LatencySec > worst {
				worst = cl.LatencySec
			}
		}
		return math.Abs(sum-as.WirePowerW) < 1e-12 && worst == as.WorstLatencySec
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
