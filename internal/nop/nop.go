// Package nop models the network-on-package: the interposer-level links
// that carry each chiplet's DRAM traffic to the PHYs at the interposer
// edge. The paper lists integrating a network-on-package as future work
// and justifies ignoring it with two assumptions: (i) the DNNs need no
// inter-chiplet communication, and (ii) "the chiplets are placed along
// the edges and have dedicated DRAM channels. Thus, ICS does not
// significantly impact DRAM latency."
//
// This package quantifies assumption (ii): given a floorplan, it computes
// each chiplet's wire distance to the nearest interposer edge and turns
// it into link latency and wire energy using representative 2.5-D
// interposer signaling parameters. The companion test (and the ablation
// benchmark) verify that across the whole design space the added latency
// stays far below one frame period and the wire power far below the DRAM
// power it accompanies — i.e. the paper's assumption holds in this
// model's regime.
package nop

import (
	"fmt"
	"math"

	"tesa/internal/floorplan"
)

// Params are representative electrical parameters of repeatered
// interposer wires (65 nm-class passive silicon interposer).
type Params struct {
	// WireDelayPSPerMM is the propagation delay of a repeatered
	// interposer wire (~150 ps/mm).
	WireDelayPSPerMM float64
	// WireEnergyPJPerBitMM is the signaling energy (~0.10 pJ/bit/mm).
	WireEnergyPJPerBitMM float64
	// LinkWidthBits is the per-channel link width (matches a x64 DDR4
	// channel's data path).
	LinkWidthBits int
	// SerDesLatencyNS is the fixed PHY serialization/deserialization
	// latency per transfer direction.
	SerDesLatencyNS float64
}

// DefaultParams returns the representative calibration.
func DefaultParams() Params {
	return Params{
		WireDelayPSPerMM:     150,
		WireEnergyPJPerBitMM: 0.10,
		LinkWidthBits:        64,
		SerDesLatencyNS:      2,
	}
}

// Validate reports an error for non-physical parameters.
func (p Params) Validate() error {
	if p.WireDelayPSPerMM <= 0 || p.WireEnergyPJPerBitMM < 0 || p.LinkWidthBits <= 0 || p.SerDesLatencyNS < 0 {
		return fmt.Errorf("nop: non-physical params %+v", p)
	}
	return nil
}

// LinkLatencySec returns the one-way link latency over the given
// distance.
func (p Params) LinkLatencySec(distMM float64) float64 {
	return p.SerDesLatencyNS*1e-9 + distMM*p.WireDelayPSPerMM*1e-12
}

// WireEnergyJ returns the energy of moving the given bytes over the
// distance.
func (p Params) WireEnergyJ(bytes int64, distMM float64) float64 {
	return float64(bytes) * 8 * p.WireEnergyPJPerBitMM * 1e-12 * distMM
}

// EdgeDistances returns, per chiplet, the distance from the chiplet
// center to the nearest interposer edge — where the DRAM PHYs sit.
func EdgeDistances(pl *floorplan.Placement) []float64 {
	out := make([]float64, len(pl.Chiplets))
	for i, r := range pl.Chiplets {
		cx, cy := r.CenterX(), r.CenterY()
		d := math.Min(
			math.Min(cx, pl.InterposerMM-cx),
			math.Min(cy, pl.InterposerMM-cy),
		)
		if d < 0 {
			d = 0
		}
		out[i] = d
	}
	return out
}

// ChipletLink summarizes one chiplet's DRAM-path overhead.
type ChipletLink struct {
	DistanceMM    float64
	LatencySec    float64 // one-way link latency
	WireEnergyJ   float64 // energy for this chiplet's traffic
	WirePowerWatt float64 // averaged over the frame period
}

// Assessment quantifies the network-on-package overhead of one MCM.
type Assessment struct {
	PerChiplet []ChipletLink
	// WirePowerW is the total interposer-wire power.
	WirePowerW float64
	// WorstLatencySec is the slowest chiplet-to-PHY link.
	WorstLatencySec float64
}

// Assess computes the per-chiplet link overheads for the given per-chiplet
// DRAM traffic (bytes per frame) at the given frame rate.
func (p Params) Assess(pl *floorplan.Placement, trafficBytes []int64, fps float64) (*Assessment, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(trafficBytes) != len(pl.Chiplets) {
		return nil, fmt.Errorf("nop: %d traffic entries for %d chiplets", len(trafficBytes), len(pl.Chiplets))
	}
	if fps <= 0 {
		return nil, fmt.Errorf("nop: non-positive frame rate %g", fps)
	}
	a := &Assessment{PerChiplet: make([]ChipletLink, len(pl.Chiplets))}
	dists := EdgeDistances(pl)
	for i, d := range dists {
		lat := p.LinkLatencySec(d)
		energy := p.WireEnergyJ(trafficBytes[i], d)
		a.PerChiplet[i] = ChipletLink{
			DistanceMM:    d,
			LatencySec:    lat,
			WireEnergyJ:   energy,
			WirePowerWatt: energy * fps,
		}
		a.WirePowerW += energy * fps
		if lat > a.WorstLatencySec {
			a.WorstLatencySec = lat
		}
	}
	return a, nil
}
