package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"tesa/internal/jobspec"
	"tesa/internal/memo"
)

// tinySpec is a fast feasible optimize job (see internal/core's
// tinySpace: dims near 200 are feasible at 15 fps / 85 C).
const tinySpec = `{
  "version": "tesa.jobspec/v1",
  "kind": "optimize",
  "options": {"tech": "2d", "freq_mhz": 400, "grid": 16},
  "constraints": {"fps": 15, "temp_c": 85},
  "space": {"array_dims": [180, 200, 220], "ics_ums": [0, 500, 1000]},
  "seed": 1
}`

// slowSpec is a full-space sweep at a fine grid — long enough to still
// be running when a test cancels or drains it.
const slowSpec = `{
  "version": "tesa.jobspec/v1",
  "kind": "sweep",
  "options": {"grid": 48},
  "space": {"preset": "default"}
}`

func testServer(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	s := New(cfg)
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Drain(ctx)
		hs.Close()
	})
	return s, NewClient(hs.URL, hs.Client())
}

// TestServerMatchesLibraryPath is the API contract: a spec run through
// the HTTP server returns a byte-identical wire result to the same spec
// run through the library. Memoization on the server side must not
// change the bytes either.
func TestServerMatchesLibraryPath(t *testing.T) {
	_, cl := testServer(t, Config{Workers: 2, Store: memo.NewStore()})

	got, err := cl.Run(context.Background(), []byte(tinySpec), nil)
	if err != nil {
		t.Fatal(err)
	}

	spec, err := jobspec.Parse([]byte(tinySpec))
	if err != nil {
		t.Fatal(err)
	}
	r, err := spec.Resolve("")
	if err != nil {
		t.Fatal(err)
	}
	want, err := jobspec.Run(context.Background(), r, jobspec.Runtime{})
	if err != nil {
		t.Fatal(err)
	}

	a, _ := json.Marshal(got)
	b, _ := json.Marshal(want)
	if string(a) != string(b) {
		t.Errorf("server result drifted from library result:\nserver: %s\nlib:    %s", a, b)
	}
	if !got.Found {
		t.Fatalf("tiny optimize found nothing: %s", a)
	}
}

// TestServerSharedMemo submits the same job twice to one server and
// checks the second run hits the process-wide store warmed by the first.
func TestServerSharedMemo(t *testing.T) {
	store := memo.NewStore()
	_, cl := testServer(t, Config{Workers: 1, Store: store})

	first, err := cl.Run(context.Background(), []byte(tinySpec), nil)
	if err != nil {
		t.Fatal(err)
	}
	cold := store.Stats().Hits
	second, err := cl.Run(context.Background(), []byte(tinySpec), nil)
	if err != nil {
		t.Fatal(err)
	}
	warm := store.Stats().Hits
	if warm <= cold {
		t.Errorf("second identical job saw no new memo hits (cold=%d warm=%d)", cold, warm)
	}
	a, _ := json.Marshal(first)
	b, _ := json.Marshal(second)
	if string(a) != string(b) {
		t.Errorf("memo-warm rerun changed the result:\ncold: %s\nwarm: %s", a, b)
	}
}

// TestServerEvents exercises the SSE path: progress events arrive while
// the job runs and the stream terminates with the final status.
func TestServerEvents(t *testing.T) {
	_, cl := testServer(t, Config{Workers: 1})

	// A multi-shard sweep emits steady per-point progress, so the SSE
	// subscriber reliably attaches while updates are still flowing.
	eventSpec := `{
	  "version": "tesa.jobspec/v1",
	  "kind": "sweep",
	  "options": {"grid": 24},
	  "constraints": {"fps": 15, "temp_c": 85},
	  "space": {"preset": "validation"}
	}`
	st, err := cl.Submit(context.Background(), []byte(eventSpec))
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var updates int
	final, err := cl.Wait(context.Background(), st.ID, 0, func(map[string]any) {
		mu.Lock()
		updates++
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone || final.Result == nil {
		t.Fatalf("job did not finish cleanly: %+v", final)
	}
	mu.Lock()
	n := updates
	mu.Unlock()
	if n == 0 {
		t.Error("no progress events observed over SSE")
	}
}

// TestServerRejections covers the client-error surface: malformed
// specs, unknown ids, a full queue, and a draining server.
func TestServerRejections(t *testing.T) {
	s, cl := testServer(t, Config{Workers: 1, Queue: 1})
	ctx := context.Background()

	if _, err := cl.Submit(ctx, []byte(`{"version":"tesa.jobspec/v1"}`)); err == nil ||
		!strings.Contains(err.Error(), "missing kind") {
		t.Errorf("bad spec err = %v, want missing kind", err)
	}
	if _, err := cl.Status(ctx, "deadbeefdeadbeef"); err == nil ||
		!strings.Contains(err.Error(), "404") {
		t.Errorf("unknown id err = %v, want 404", err)
	}

	// Saturate: one slow job runs, one fills the queue, the next bounces.
	running, err := cl.Submit(ctx, []byte(slowSpec))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, cl, running.ID, StateRunning)
	if _, err := cl.Submit(ctx, []byte(slowSpec)); err != nil {
		t.Fatalf("queued submit: %v", err)
	}
	if _, err := cl.Submit(ctx, []byte(slowSpec)); err == nil ||
		!strings.Contains(err.Error(), "429") {
		t.Errorf("full-queue err = %v, want 429", err)
	}

	// Drain: in-flight jobs cancel, new submissions bounce with 503.
	drainCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := s.Drain(drainCtx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if _, err := cl.Submit(ctx, []byte(tinySpec)); err == nil ||
		!strings.Contains(err.Error(), "503") {
		t.Errorf("draining err = %v, want 503", err)
	}
	// Liveness stays green while draining; readiness goes red.
	h, err := cl.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := h["ok"].(bool); !ok {
		t.Errorf("healthz not ok during drain (liveness must survive): %v", h)
	}
	if draining, _ := h["draining"].(bool); !draining {
		t.Errorf("healthz draining = false during drain: %v", h)
	}
	rd, err := cl.Ready(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ready, _ := rd["ready"].(bool); ready {
		t.Errorf("readyz ready during drain: %v", rd)
	}
	st, err := cl.Status(ctx, running.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCanceled {
		t.Errorf("drained job state = %s, want canceled", st.State)
	}
}

// TestServerCancel cancels a running job and a queued job.
func TestServerCancel(t *testing.T) {
	_, cl := testServer(t, Config{Workers: 1, Queue: 4})
	ctx := context.Background()

	running, err := cl.Submit(ctx, []byte(slowSpec))
	if err != nil {
		t.Fatal(err)
	}
	queued, err := cl.Submit(ctx, []byte(slowSpec))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, cl, running.ID, StateRunning)

	if err := cl.Cancel(ctx, queued.ID); err != nil {
		t.Fatal(err)
	}
	if err := cl.Cancel(ctx, running.ID); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{running.ID, queued.ID} {
		st, err := cl.Wait(ctx, id, 10*time.Millisecond, nil)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != StateCanceled {
			t.Errorf("job %s state = %s, want canceled", id, st.State)
		}
	}
}

// TestDrainConcurrentSubmissions races a burst of submissions against
// two concurrent Drain calls (run with -race): every submission must
// either be accepted or rejected with ErrDraining/ErrQueueFull — never
// hang or panic — accepted jobs must still reach a terminal state, and
// the second Drain must be an idempotent no-op.
func TestDrainConcurrentSubmissions(t *testing.T) {
	s := New(Config{Workers: 2, Queue: 4})

	const submitters = 24
	var wg sync.WaitGroup
	start := make(chan struct{})
	subErrs := make([]error, submitters)
	for i := 0; i < submitters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			_, subErrs[i] = s.Submit([]byte(tinySpec))
		}(i)
	}
	drainErrs := make([]error, 2)
	for i := range drainErrs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
			defer cancel()
			drainErrs[i] = s.Drain(ctx)
		}(i)
	}
	close(start)

	raced := make(chan struct{})
	go func() {
		wg.Wait()
		close(raced)
	}()
	select {
	case <-raced:
	case <-time.After(30 * time.Second):
		t.Fatal("submissions racing Drain hung")
	}

	for i, err := range subErrs {
		if err != nil && !errors.Is(err, ErrDraining) && !errors.Is(err, ErrQueueFull) {
			t.Errorf("submitter %d: unexpected error %v", i, err)
		}
	}
	for i, err := range drainErrs {
		if err != nil {
			t.Errorf("drain %d: %v", i, err)
		}
	}
	// Drain has returned, so every accepted job must already be terminal.
	for _, job := range s.Jobs() {
		select {
		case <-job.Done():
		default:
			t.Errorf("job %s still live after Drain returned (%s)", job.ID, job.Status().State)
		}
	}
	// A third Drain after completion is a cheap no-op.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Errorf("post-drain Drain: %v", err)
	}
}

// TestEventsLastEventID checks the SSE resume contract: events carry
// monotone id: lines, and a reconnect replaying Last-Event-ID gets one
// snapshot of the current progress only when it is behind.
func TestEventsLastEventID(t *testing.T) {
	_, cl := testServer(t, Config{Workers: 1})
	ctx := context.Background()

	// Run a multi-shard sweep to completion so the finished job holds a
	// final progress snapshot with a known sequence number.
	eventSpec := `{
	  "version": "tesa.jobspec/v1",
	  "kind": "sweep",
	  "options": {"grid": 24},
	  "constraints": {"fps": 15, "temp_c": 85},
	  "space": {"preset": "validation"}
	}`
	st, err := cl.Submit(ctx, []byte(eventSpec))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Wait(ctx, st.ID, 0, nil); err != nil {
		t.Fatal(err)
	}

	// A stale reconnect (behind the job) gets the progress snapshot
	// first, then the terminal status, with ids attached and increasing.
	events, ids := rawEvents(t, cl, st.ID, "0")
	if len(events) != 2 || events[0] != "progress" || events[1] != "status" {
		t.Fatalf("stale reconnect events = %v, want [progress status]", events)
	}
	if len(ids) != 2 {
		t.Fatalf("stale reconnect ids = %v, want two", ids)
	}
	snapSeq, err1 := strconv.ParseUint(ids[0], 10, 64)
	finalSeq, err2 := strconv.ParseUint(ids[1], 10, 64)
	if err1 != nil || err2 != nil || snapSeq >= finalSeq {
		t.Fatalf("stale reconnect ids = %v, want two increasing numbers", ids)
	}

	// A caught-up reconnect (Last-Event-ID at the snapshot) skips the
	// snapshot and gets only the status event.
	events, _ = rawEvents(t, cl, st.ID, ids[0])
	if len(events) != 1 || events[0] != "status" {
		t.Fatalf("caught-up reconnect events = %v, want [status]", events)
	}
}

// rawEvents reads one full SSE stream for a job, returning the event
// names and their id: lines in order.
func rawEvents(t *testing.T, cl *Client, id, lastEventID string) (events, ids []string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, cl.base+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := cl.http.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var curID string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			events = append(events, strings.TrimPrefix(line, "event: "))
		case strings.HasPrefix(line, "id: "):
			curID = strings.TrimPrefix(line, "id: ")
		case line == "":
			if curID != "" {
				ids = append(ids, curID)
				curID = ""
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return events, ids
}

// waitState polls until the job reaches want (or any terminal state).
func waitState(t *testing.T, cl *Client, id string, want State) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st, err := cl.Status(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == want || st.State.Terminal() {
			if st.State != want {
				t.Fatalf("job %s reached %s, want %s", id, st.State, want)
			}
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
}
