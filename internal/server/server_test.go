package server

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"tesa/internal/jobspec"
	"tesa/internal/memo"
)

// tinySpec is a fast feasible optimize job (see internal/core's
// tinySpace: dims near 200 are feasible at 15 fps / 85 C).
const tinySpec = `{
  "version": "tesa.jobspec/v1",
  "kind": "optimize",
  "options": {"tech": "2d", "freq_mhz": 400, "grid": 16},
  "constraints": {"fps": 15, "temp_c": 85},
  "space": {"array_dims": [180, 200, 220], "ics_ums": [0, 500, 1000]},
  "seed": 1
}`

// slowSpec is a full-space sweep at a fine grid — long enough to still
// be running when a test cancels or drains it.
const slowSpec = `{
  "version": "tesa.jobspec/v1",
  "kind": "sweep",
  "options": {"grid": 48},
  "space": {"preset": "default"}
}`

func testServer(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	s := New(cfg)
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Drain(ctx)
		hs.Close()
	})
	return s, NewClient(hs.URL, hs.Client())
}

// TestServerMatchesLibraryPath is the API contract: a spec run through
// the HTTP server returns a byte-identical wire result to the same spec
// run through the library. Memoization on the server side must not
// change the bytes either.
func TestServerMatchesLibraryPath(t *testing.T) {
	_, cl := testServer(t, Config{Workers: 2, Store: memo.NewStore()})

	got, err := cl.Run(context.Background(), []byte(tinySpec), nil)
	if err != nil {
		t.Fatal(err)
	}

	spec, err := jobspec.Parse([]byte(tinySpec))
	if err != nil {
		t.Fatal(err)
	}
	r, err := spec.Resolve("")
	if err != nil {
		t.Fatal(err)
	}
	want, err := jobspec.Run(context.Background(), r, jobspec.Runtime{})
	if err != nil {
		t.Fatal(err)
	}

	a, _ := json.Marshal(got)
	b, _ := json.Marshal(want)
	if string(a) != string(b) {
		t.Errorf("server result drifted from library result:\nserver: %s\nlib:    %s", a, b)
	}
	if !got.Found {
		t.Fatalf("tiny optimize found nothing: %s", a)
	}
}

// TestServerSharedMemo submits the same job twice to one server and
// checks the second run hits the process-wide store warmed by the first.
func TestServerSharedMemo(t *testing.T) {
	store := memo.NewStore()
	_, cl := testServer(t, Config{Workers: 1, Store: store})

	first, err := cl.Run(context.Background(), []byte(tinySpec), nil)
	if err != nil {
		t.Fatal(err)
	}
	cold := store.Stats().Hits
	second, err := cl.Run(context.Background(), []byte(tinySpec), nil)
	if err != nil {
		t.Fatal(err)
	}
	warm := store.Stats().Hits
	if warm <= cold {
		t.Errorf("second identical job saw no new memo hits (cold=%d warm=%d)", cold, warm)
	}
	a, _ := json.Marshal(first)
	b, _ := json.Marshal(second)
	if string(a) != string(b) {
		t.Errorf("memo-warm rerun changed the result:\ncold: %s\nwarm: %s", a, b)
	}
}

// TestServerEvents exercises the SSE path: progress events arrive while
// the job runs and the stream terminates with the final status.
func TestServerEvents(t *testing.T) {
	_, cl := testServer(t, Config{Workers: 1})

	// A multi-shard sweep emits steady per-point progress, so the SSE
	// subscriber reliably attaches while updates are still flowing.
	eventSpec := `{
	  "version": "tesa.jobspec/v1",
	  "kind": "sweep",
	  "options": {"grid": 24},
	  "constraints": {"fps": 15, "temp_c": 85},
	  "space": {"preset": "validation"}
	}`
	st, err := cl.Submit(context.Background(), []byte(eventSpec))
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var updates int
	final, err := cl.Wait(context.Background(), st.ID, 0, func(map[string]any) {
		mu.Lock()
		updates++
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone || final.Result == nil {
		t.Fatalf("job did not finish cleanly: %+v", final)
	}
	mu.Lock()
	n := updates
	mu.Unlock()
	if n == 0 {
		t.Error("no progress events observed over SSE")
	}
}

// TestServerRejections covers the client-error surface: malformed
// specs, unknown ids, a full queue, and a draining server.
func TestServerRejections(t *testing.T) {
	s, cl := testServer(t, Config{Workers: 1, Queue: 1})
	ctx := context.Background()

	if _, err := cl.Submit(ctx, []byte(`{"version":"tesa.jobspec/v1"}`)); err == nil ||
		!strings.Contains(err.Error(), "missing kind") {
		t.Errorf("bad spec err = %v, want missing kind", err)
	}
	if _, err := cl.Status(ctx, "deadbeefdeadbeef"); err == nil ||
		!strings.Contains(err.Error(), "404") {
		t.Errorf("unknown id err = %v, want 404", err)
	}

	// Saturate: one slow job runs, one fills the queue, the next bounces.
	running, err := cl.Submit(ctx, []byte(slowSpec))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, cl, running.ID, StateRunning)
	if _, err := cl.Submit(ctx, []byte(slowSpec)); err != nil {
		t.Fatalf("queued submit: %v", err)
	}
	if _, err := cl.Submit(ctx, []byte(slowSpec)); err == nil ||
		!strings.Contains(err.Error(), "429") {
		t.Errorf("full-queue err = %v, want 429", err)
	}

	// Drain: in-flight jobs cancel, new submissions bounce with 503.
	drainCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := s.Drain(drainCtx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if _, err := cl.Submit(ctx, []byte(tinySpec)); err == nil ||
		!strings.Contains(err.Error(), "503") {
		t.Errorf("draining err = %v, want 503", err)
	}
	h, err := cl.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := h["ok"].(bool); ok {
		t.Errorf("healthz ok during drain: %v", h)
	}
	st, err := cl.Status(ctx, running.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCanceled {
		t.Errorf("drained job state = %s, want canceled", st.State)
	}
}

// TestServerCancel cancels a running job and a queued job.
func TestServerCancel(t *testing.T) {
	_, cl := testServer(t, Config{Workers: 1, Queue: 4})
	ctx := context.Background()

	running, err := cl.Submit(ctx, []byte(slowSpec))
	if err != nil {
		t.Fatal(err)
	}
	queued, err := cl.Submit(ctx, []byte(slowSpec))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, cl, running.ID, StateRunning)

	if err := cl.Cancel(ctx, queued.ID); err != nil {
		t.Fatal(err)
	}
	if err := cl.Cancel(ctx, running.ID); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{running.ID, queued.ID} {
		st, err := cl.Wait(ctx, id, 10*time.Millisecond, nil)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != StateCanceled {
			t.Errorf("job %s state = %s, want canceled", id, st.State)
		}
	}
}

// waitState polls until the job reaches want (or any terminal state).
func waitState(t *testing.T, cl *Client, id string, want State) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st, err := cl.Status(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == want || st.State.Terminal() {
			if st.State != want {
				t.Fatalf("job %s reached %s, want %s", id, st.State, want)
			}
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
}
