package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// maxSpecBytes bounds a submitted spec document; anything larger is a
// client error, not a workload.
const maxSpecBytes = 1 << 20

// Handler returns the server's HTTP API:
//
//	POST   /v1/jobs            submit a jobspec document → 202 + Status
//	GET    /v1/jobs            list all jobs
//	GET    /v1/jobs/{id}        one job's status (result once done)
//	GET    /v1/jobs/{id}/events SSE progress stream, ends with the final status
//	DELETE /v1/jobs/{id}        cancel a job
//	GET    /healthz             liveness: 200 as long as the process serves
//	GET    /readyz              readiness: 503 once draining begins
//
// When Config.Distrib is set, the coordinator's protocol is mounted
// under /v1/distrib/ with the prefix stripped.
//
// Telemetry endpoints (/metrics, /progress, ...) are served separately
// by telemetry.Server so the observability surface stays uniform across
// CLIs and the job server.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/jobs", s.handleJobs)
	mux.HandleFunc("/v1/jobs/", s.handleJob)
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/readyz", s.handleReady)
	if s.cfg.Distrib != nil {
		mux.Handle("/v1/distrib/", http.StripPrefix("/v1/distrib", s.cfg.Distrib))
	}
	return mux
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		s.handleSubmit(w, r)
	case http.MethodGet:
		jobs := s.Jobs()
		sts := make([]Status, 0, len(jobs))
		for _, j := range jobs {
			sts = append(sts, j.Status())
		}
		sortStatuses(sts)
		writeJSON(w, http.StatusOK, map[string]any{"jobs": sts})
	default:
		httpError(w, http.StatusMethodNotAllowed, "use GET or POST")
	}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes+1))
	if err != nil {
		httpError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	if len(body) > maxSpecBytes {
		httpError(w, http.StatusRequestEntityTooLarge, "spec exceeds %d bytes", maxSpecBytes)
		return
	}
	job, err := s.Submit(body)
	switch {
	case errors.Is(err, ErrDraining):
		httpError(w, http.StatusServiceUnavailable, "%v", err)
	case errors.Is(err, ErrQueueFull):
		httpError(w, http.StatusTooManyRequests, "%v", err)
	case err != nil:
		httpError(w, http.StatusBadRequest, "%v", err)
	default:
		w.Header().Set("Location", "/v1/jobs/"+job.ID)
		writeJSON(w, http.StatusAccepted, job.Status())
	}
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	id, sub, _ := strings.Cut(rest, "/")
	job, err := s.Job(id)
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	switch {
	case sub == "" && r.Method == http.MethodGet:
		writeJSON(w, http.StatusOK, job.Status())
	case sub == "" && r.Method == http.MethodDelete:
		if err := s.Cancel(id); err != nil {
			httpError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, job.Status())
	case sub == "events" && r.Method == http.MethodGet:
		s.handleEvents(w, r, job)
	default:
		httpError(w, http.StatusNotFound, "no such endpoint")
	}
}

// handleEvents streams a job's progress as Server-Sent Events: one
// "progress" event per update the client keeps up with, then a single
// "status" event carrying the terminal Status (result included), then
// EOF. Clients that connect after completion get just the status event.
//
// Every event carries an id: line with the job's progress sequence
// number. A reconnecting client replays its Last-Event-ID header;
// progress is latest-wins, so instead of replaying missed ticks the
// server sends one snapshot of the current progress when the client is
// behind, then resumes the live stream.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request, job *Job) {
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusNotImplemented, "streaming unsupported")
		return
	}
	var last uint64
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		if n, err := strconv.ParseUint(v, 10, 64); err == nil {
			last = n
		}
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	snap, ch, detach := job.subscribeSince(last)
	defer detach()
	if snap != nil {
		writeEvent(w, "progress", snap.seq, snap.fields)
		fl.Flush()
	}
	for {
		select {
		case u, live := <-ch:
			if !live {
				writeEvent(w, "status", job.lastSeq()+1, job.Status())
				fl.Flush()
				return
			}
			writeEvent(w, "progress", u.seq, u.fields)
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// handleHealth is pure liveness: it answers 200 whenever the process is
// serving, draining included — a draining server is alive, just not
// accepting work. Readiness lives at /readyz.
func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	queued, running, done := s.Counts()
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":       true,
		"draining": s.Draining(),
		"workers":  s.cfg.Workers,
		"queued":   queued,
		"running":  running,
		"finished": done,
	})
}

// handleReady is readiness: 503 once draining begins, so load balancers
// and pollers stop routing new submissions while in-flight jobs retire.
func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	draining := s.Draining()
	status := http.StatusOK
	if draining {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, map[string]any{
		"ready":    !draining,
		"draining": draining,
	})
}

// writeEvent emits one SSE frame with an event id and JSON data payload.
func writeEvent(w io.Writer, event string, id uint64, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		data = []byte(fmt.Sprintf(`{"error":%q}`, err.Error()))
	}
	fmt.Fprintf(w, "event: %s\nid: %d\ndata: %s\n\n", event, id, data)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // best effort: client may be gone
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]any{"error": fmt.Sprintf(format, args...)})
}
