package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// maxSpecBytes bounds a submitted spec document; anything larger is a
// client error, not a workload.
const maxSpecBytes = 1 << 20

// Handler returns the server's HTTP API:
//
//	POST   /v1/jobs            submit a jobspec document → 202 + Status
//	GET    /v1/jobs            list all jobs
//	GET    /v1/jobs/{id}        one job's status (result once done)
//	GET    /v1/jobs/{id}/events SSE progress stream, ends with the final status
//	DELETE /v1/jobs/{id}        cancel a job
//	GET    /healthz             liveness + drain state + pool tallies
//
// Telemetry endpoints (/metrics, /progress, ...) are served separately
// by telemetry.Server so the observability surface stays uniform across
// CLIs and the job server.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/jobs", s.handleJobs)
	mux.HandleFunc("/v1/jobs/", s.handleJob)
	mux.HandleFunc("/healthz", s.handleHealth)
	return mux
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		s.handleSubmit(w, r)
	case http.MethodGet:
		jobs := s.Jobs()
		sts := make([]Status, 0, len(jobs))
		for _, j := range jobs {
			sts = append(sts, j.Status())
		}
		sortStatuses(sts)
		writeJSON(w, http.StatusOK, map[string]any{"jobs": sts})
	default:
		httpError(w, http.StatusMethodNotAllowed, "use GET or POST")
	}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes+1))
	if err != nil {
		httpError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	if len(body) > maxSpecBytes {
		httpError(w, http.StatusRequestEntityTooLarge, "spec exceeds %d bytes", maxSpecBytes)
		return
	}
	job, err := s.Submit(body)
	switch {
	case errors.Is(err, ErrDraining):
		httpError(w, http.StatusServiceUnavailable, "%v", err)
	case errors.Is(err, ErrQueueFull):
		httpError(w, http.StatusTooManyRequests, "%v", err)
	case err != nil:
		httpError(w, http.StatusBadRequest, "%v", err)
	default:
		w.Header().Set("Location", "/v1/jobs/"+job.ID)
		writeJSON(w, http.StatusAccepted, job.Status())
	}
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	id, sub, _ := strings.Cut(rest, "/")
	job, err := s.Job(id)
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	switch {
	case sub == "" && r.Method == http.MethodGet:
		writeJSON(w, http.StatusOK, job.Status())
	case sub == "" && r.Method == http.MethodDelete:
		if err := s.Cancel(id); err != nil {
			httpError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, job.Status())
	case sub == "events" && r.Method == http.MethodGet:
		s.handleEvents(w, r, job)
	default:
		httpError(w, http.StatusNotFound, "no such endpoint")
	}
}

// handleEvents streams a job's progress as Server-Sent Events: one
// "progress" event per update the client keeps up with, then a single
// "status" event carrying the terminal Status (result included), then
// EOF. Clients that connect after completion get just the status event.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request, job *Job) {
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusNotImplemented, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	ch, detach := job.subscribe()
	defer detach()
	for {
		select {
		case f, live := <-ch:
			if !live {
				writeEvent(w, "status", job.Status())
				fl.Flush()
				return
			}
			writeEvent(w, "progress", f)
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	queued, running, done := s.Counts()
	status := http.StatusOK
	if s.Draining() {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, map[string]any{
		"ok":       status == http.StatusOK,
		"draining": s.Draining(),
		"workers":  s.cfg.Workers,
		"queued":   queued,
		"running":  running,
		"finished": done,
	})
}

// writeEvent emits one SSE frame with a JSON data payload.
func writeEvent(w io.Writer, event string, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		data = []byte(fmt.Sprintf(`{"error":%q}`, err.Error()))
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // best effort: client may be gone
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]any{"error": fmt.Sprintf(format, args...)})
}
