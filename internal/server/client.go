package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"time"

	"tesa/internal/jobspec"
)

// Retry policy: transient rejections (429 queue-full, 503 draining) and
// — on idempotent requests only — transport errors are retried with
// jittered exponential backoff under a fixed attempt budget. Submission
// never retries a transport error: the request may have reached the
// server, and a blind resend would duplicate the job.
const (
	retryAttempts = 4
	retryBase     = 100 * time.Millisecond
	retryCap      = 2 * time.Second
)

// Client is a minimal tesa-server API client over net/http. The zero
// value is not usable; construct with NewClient.
type Client struct {
	base string
	http *http.Client
}

// backoff returns the sleep before retry attempt n (0-based): an
// exponential ramp from retryBase capped at retryCap, with the upper
// half jittered so synchronized clients don't re-stampede the server.
func backoff(n int) time.Duration {
	d := retryBase << n
	if d > retryCap {
		d = retryCap
	}
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

// sleepCtx pauses for d unless ctx expires first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// NewClient returns a client for the server at base (e.g.
// "http://127.0.0.1:8080"). A nil httpClient uses a dedicated default
// with no overall timeout — job streams are long-lived by design.
func NewClient(base string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = &http.Client{}
	}
	return &Client{base: strings.TrimRight(base, "/"), http: httpClient}
}

// Submit posts a raw jobspec document and returns the accepted job's
// status (its ID field names the job from here on). Transient server
// rejections (429, 503) are retried under the backoff budget; transport
// errors are not, to never submit the same job twice.
func (c *Client) Submit(ctx context.Context, spec []byte) (*Status, error) {
	var st Status
	if err := c.doRetry(ctx, http.MethodPost, c.base+"/v1/jobs", spec, http.StatusAccepted, &st, false); err != nil {
		return nil, err
	}
	return &st, nil
}

// SubmitSpec marshals and posts a parsed spec.
func (c *Client) SubmitSpec(ctx context.Context, spec *jobspec.Spec) (*Status, error) {
	raw, err := spec.Marshal()
	if err != nil {
		return nil, err
	}
	return c.Submit(ctx, raw)
}

// Status fetches one job's current status. Idempotent, so transport
// errors retry too — a coordinator blip doesn't fail the poll loop.
func (c *Client) Status(ctx context.Context, id string) (*Status, error) {
	var st Status
	if err := c.doRetry(ctx, http.MethodGet, c.base+"/v1/jobs/"+id, nil, http.StatusOK, &st, true); err != nil {
		return nil, err
	}
	return &st, nil
}

// Cancel asks the server to stop a job. Cancellation is idempotent on
// the server, so transport errors retry.
func (c *Client) Cancel(ctx context.Context, id string) error {
	return c.doRetry(ctx, http.MethodDelete, c.base+"/v1/jobs/"+id, nil, http.StatusOK, nil, true)
}

// Health fetches /healthz (liveness: 200 whenever the process serves,
// draining included). The decoded body carries the drain state and pool
// tallies; transport failures are real errors.
func (c *Client) Health(ctx context.Context) (map[string]any, error) {
	return c.getBody(ctx, "/healthz")
}

// Ready fetches /readyz. It returns the decoded body and a nil error
// even when the server reports not-ready (503) — the caller inspects
// the "ready" field; transport failures are real errors.
func (c *Client) Ready(ctx context.Context) (map[string]any, error) {
	return c.getBody(ctx, "/readyz")
}

// getBody fetches path and decodes its JSON body regardless of status.
func (c *Client) getBody(ctx context.Context, path string) (map[string]any, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("client: decode %s: %w", path, err)
	}
	return out, nil
}

// Wait blocks until the job reaches a terminal state and returns its
// final status. It prefers the SSE events stream (onProgress, when
// non-nil, receives each update) and reconnects with the Last-Event-ID
// of the final frame it saw when the stream drops mid-job, so a
// coordinator blip costs a resume, not a restart. Only after the retry
// budget is spent does it fall back to polling every pollEvery
// (0 = 250ms).
func (c *Client) Wait(ctx context.Context, id string, pollEvery time.Duration, onProgress func(map[string]any)) (*Status, error) {
	var lastID string
	for attempt := 0; attempt < retryAttempts; attempt++ {
		st, err := c.waitEvents(ctx, id, &lastID, onProgress)
		if err == nil {
			return st, nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if err := sleepCtx(ctx, backoff(attempt)); err != nil {
			return nil, err
		}
	}
	if pollEvery <= 0 {
		pollEvery = 250 * time.Millisecond
	}
	tick := time.NewTicker(pollEvery)
	defer tick.Stop()
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			return nil, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		if onProgress != nil && st.Progress != nil {
			onProgress(st.Progress)
		}
		select {
		case <-tick.C:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// waitEvents consumes the SSE stream until the terminal status event,
// tracking the server's id: lines in lastID so a reconnect can tell the
// server what it has already seen.
func (c *Client) waitEvents(ctx context.Context, id string, lastID *string, onProgress func(map[string]any)) (*Status, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return nil, err
	}
	if *lastID != "" {
		req.Header.Set("Last-Event-ID", *lastID)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("client: events: %s", resp.Status)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var event string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "id: "):
			*lastID = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			switch event {
			case "progress":
				if onProgress != nil {
					var f map[string]any
					if json.Unmarshal([]byte(data), &f) == nil {
						onProgress(f)
					}
				}
			case "status":
				var st Status
				if err := json.Unmarshal([]byte(data), &st); err != nil {
					return nil, fmt.Errorf("client: decode status event: %w", err)
				}
				return &st, nil
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return nil, io.ErrUnexpectedEOF
}

// Run submits a spec and waits for its result in one call. A failed or
// canceled job surfaces as an error carrying the server's message.
func (c *Client) Run(ctx context.Context, spec []byte, onProgress func(map[string]any)) (*jobspec.Result, error) {
	st, err := c.Submit(ctx, spec)
	if err != nil {
		return nil, err
	}
	st, err = c.Wait(ctx, st.ID, 0, onProgress)
	if err != nil {
		return nil, err
	}
	if st.State != StateDone {
		return nil, fmt.Errorf("client: job %s %s: %s", st.ID, st.State, st.Error)
	}
	return st.Result, nil
}

// doRetry issues the request up to retryAttempts times, rebuilding it
// per attempt so the body can be resent. 429 and 503 are always
// retried; transport errors only when retryTransport is set (GET and
// DELETE — never POST, which may already have reached the server). A
// response with the wanted status decodes into out (skipped when nil);
// other statuses decode the error envelope.
func (c *Client) doRetry(ctx context.Context, method, url string, body []byte, want int, out any, retryTransport bool) error {
	var lastErr error
	for attempt := 0; attempt < retryAttempts; attempt++ {
		if attempt > 0 {
			if err := sleepCtx(ctx, backoff(attempt-1)); err != nil {
				return fmt.Errorf("%w (after: %v)", err, lastErr)
			}
		}
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, url, rd)
		if err != nil {
			return err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := c.http.Do(req)
		if err != nil {
			if !retryTransport || ctx.Err() != nil {
				return err
			}
			lastErr = err
			continue
		}
		respBody, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
		resp.Body.Close()
		if err != nil {
			if !retryTransport || ctx.Err() != nil {
				return err
			}
			lastErr = err
			continue
		}
		if resp.StatusCode == want {
			if out == nil {
				return nil
			}
			return json.Unmarshal(respBody, out)
		}
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(respBody, &e) == nil && e.Error != "" {
			err = fmt.Errorf("client: %s: %s", resp.Status, e.Error)
		} else {
			err = fmt.Errorf("client: %s", resp.Status)
		}
		if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
			lastErr = err
			continue
		}
		return err
	}
	return lastErr
}
