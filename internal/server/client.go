package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"tesa/internal/jobspec"
)

// Client is a minimal tesa-server API client over net/http. The zero
// value is not usable; construct with NewClient.
type Client struct {
	base string
	http *http.Client
}

// NewClient returns a client for the server at base (e.g.
// "http://127.0.0.1:8080"). A nil httpClient uses a dedicated default
// with no overall timeout — job streams are long-lived by design.
func NewClient(base string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = &http.Client{}
	}
	return &Client{base: strings.TrimRight(base, "/"), http: httpClient}
}

// Submit posts a raw jobspec document and returns the accepted job's
// status (its ID field names the job from here on).
func (c *Client) Submit(ctx context.Context, spec []byte) (*Status, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/jobs", bytes.NewReader(spec))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	var st Status
	if err := c.do(req, http.StatusAccepted, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// SubmitSpec marshals and posts a parsed spec.
func (c *Client) SubmitSpec(ctx context.Context, spec *jobspec.Spec) (*Status, error) {
	raw, err := spec.Marshal()
	if err != nil {
		return nil, err
	}
	return c.Submit(ctx, raw)
}

// Status fetches one job's current status.
func (c *Client) Status(ctx context.Context, id string) (*Status, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+id, nil)
	if err != nil {
		return nil, err
	}
	var st Status
	if err := c.do(req, http.StatusOK, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Cancel asks the server to stop a job.
func (c *Client) Cancel(ctx context.Context, id string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.base+"/v1/jobs/"+id, nil)
	if err != nil {
		return err
	}
	return c.do(req, http.StatusOK, nil)
}

// Health fetches /healthz. It returns the decoded body and a nil error
// even when the server reports draining (503) — the caller inspects
// the "ok" field; transport failures are real errors.
func (c *Client) Health(ctx context.Context) (map[string]any, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("client: decode /healthz: %w", err)
	}
	return out, nil
}

// Wait blocks until the job reaches a terminal state and returns its
// final status. It prefers the SSE events stream (onProgress, when
// non-nil, receives each update); if streaming fails it falls back to
// polling every pollEvery (0 = 250ms).
func (c *Client) Wait(ctx context.Context, id string, pollEvery time.Duration, onProgress func(map[string]any)) (*Status, error) {
	if st, err := c.waitEvents(ctx, id, onProgress); err == nil {
		return st, nil
	} else if ctx.Err() != nil {
		return nil, ctx.Err()
	}
	if pollEvery <= 0 {
		pollEvery = 250 * time.Millisecond
	}
	tick := time.NewTicker(pollEvery)
	defer tick.Stop()
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			return nil, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		if onProgress != nil && st.Progress != nil {
			onProgress(st.Progress)
		}
		select {
		case <-tick.C:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// waitEvents consumes the SSE stream until the terminal status event.
func (c *Client) waitEvents(ctx context.Context, id string, onProgress func(map[string]any)) (*Status, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("client: events: %s", resp.Status)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var event string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			switch event {
			case "progress":
				if onProgress != nil {
					var f map[string]any
					if json.Unmarshal([]byte(data), &f) == nil {
						onProgress(f)
					}
				}
			case "status":
				var st Status
				if err := json.Unmarshal([]byte(data), &st); err != nil {
					return nil, fmt.Errorf("client: decode status event: %w", err)
				}
				return &st, nil
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return nil, io.ErrUnexpectedEOF
}

// Run submits a spec and waits for its result in one call. A failed or
// canceled job surfaces as an error carrying the server's message.
func (c *Client) Run(ctx context.Context, spec []byte, onProgress func(map[string]any)) (*jobspec.Result, error) {
	st, err := c.Submit(ctx, spec)
	if err != nil {
		return nil, err
	}
	st, err = c.Wait(ctx, st.ID, 0, onProgress)
	if err != nil {
		return nil, err
	}
	if st.State != StateDone {
		return nil, fmt.Errorf("client: job %s %s: %s", st.ID, st.State, st.Error)
	}
	return st.Result, nil
}

// do issues req, checks for want, and decodes the JSON body into out
// (skipped when out is nil). Other statuses decode the error envelope.
func (c *Client) do(req *http.Request, want int, out any) error {
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != want {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(body, &e) == nil && e.Error != "" {
			return fmt.Errorf("client: %s: %s", resp.Status, e.Error)
		}
		return fmt.Errorf("client: %s", resp.Status)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(body, out)
}
