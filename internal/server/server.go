// Package server turns the tesa design-space-exploration library into a
// long-running service. A Server owns a bounded worker pool and a job
// table; clients POST versioned jobspec documents to /v1/jobs, poll or
// stream progress, and fetch wire-form results by job id. All jobs in
// one process share a single memoization store and telemetry hub, so a
// request warms the cache for every later request that overlaps with
// it — the service gets faster as it runs.
//
// The package sits below the root facade: it imports internal/jobspec
// and the engine packages but never the public "tesa" package, keeping
// the facade free to re-export the client types.
package server

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sort"
	"sync"
	"time"

	"tesa/internal/core"
	"tesa/internal/jobspec"
	"tesa/internal/memo"
	"tesa/internal/telemetry"
)

// State labels a job's position in its lifecycle.
type State string

// Job lifecycle states. A job moves queued → running → one of the three
// terminal states; Cancel may retire it from either live state.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether a job in this state will never change again.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Config sizes a Server and wires it into process-wide state.
type Config struct {
	// Workers is the number of jobs executed concurrently (default 2).
	Workers int
	// Queue bounds the number of accepted-but-unstarted jobs; a full
	// queue rejects submissions with 429 (default 64).
	Queue int
	// Store is the process-wide memoization store shared by every job
	// (nil disables memoization and with it cross-request warmth).
	Store *memo.Store
	// Tel is the shared observability hub; the server publishes
	// tesa_serve_* metrics through it (nil disables).
	Tel *telemetry.Telemetry
	// DefaultDeadline bounds jobs whose spec carries no deadline_sec
	// (0 = unbounded).
	DefaultDeadline time.Duration
	// Parallel is the per-job annealer worker bound passed through to
	// OptimizeOptions.Parallel (0 keeps the sequential schedule).
	Parallel int
	// BaseDir anchors relative workload_file paths in submitted specs
	// ("" = the server's working directory).
	BaseDir string
	// Distrib, when non-nil, is mounted under /v1/distrib/ with the
	// prefix stripped — point it at a distrib Coordinator's Handler to
	// run the distributed sweep protocol on the job server's listener.
	Distrib http.Handler
}

// Job is the server-side record of one submitted spec.
type Job struct {
	// ID is the server-assigned job identifier (16 hex digits).
	ID string
	// Kind echoes the spec's kind ("optimize", "sweep", or "pareto").
	Kind string

	mu       sync.Mutex
	state    State
	result   *jobspec.Result
	errMsg   string
	created  time.Time
	started  time.Time
	finished time.Time
	progress map[string]any
	seq      uint64
	subs     map[chan progressUpdate]struct{}
	cancel   context.CancelFunc
	done     chan struct{}

	resolved *jobspec.Resolved
}

// Status is the wire-form snapshot of a job returned by the status and
// list endpoints.
type Status struct {
	// ID is the job identifier assigned at submission.
	ID string `json:"id"`
	// Kind is the job kind from the spec.
	Kind string `json:"kind"`
	// State is the lifecycle state at snapshot time.
	State State `json:"state"`
	// Error carries the failure message for failed/canceled jobs.
	Error string `json:"error,omitempty"`
	// Result is the wire-form outcome, present once State is "done".
	Result *jobspec.Result `json:"result,omitempty"`
	// Created/Started/Finished are the lifecycle timestamps (RFC 3339);
	// Started and Finished are zero until the transition happens.
	Created  time.Time `json:"created"`
	Started  time.Time `json:"started,omitempty"`
	Finished time.Time `json:"finished,omitempty"`
	// Progress is the latest flattened progress update, nil before the
	// first one arrives.
	Progress map[string]any `json:"progress,omitempty"`
}

// Server executes jobspec jobs on a bounded worker pool.
type Server struct {
	cfg   Config
	queue chan *Job

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string // submission order, for stable listings
	draining bool

	root    context.Context
	stop    context.CancelFunc
	workers sync.WaitGroup
}

// ErrDraining rejects submissions while the server shuts down.
var ErrDraining = errors.New("server: draining, not accepting jobs")

// ErrQueueFull rejects submissions when the pending queue is at capacity.
var ErrQueueFull = errors.New("server: job queue full")

// ErrNotFound reports an unknown job id.
var ErrNotFound = errors.New("server: no such job")

// New builds a Server and starts its worker pool.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.Queue <= 0 {
		cfg.Queue = 64
	}
	s := &Server{
		cfg:   cfg,
		queue: make(chan *Job, cfg.Queue),
		jobs:  make(map[string]*Job),
	}
	s.root, s.stop = context.WithCancel(context.Background())
	for i := 0; i < cfg.Workers; i++ {
		s.workers.Add(1)
		go s.worker()
	}
	return s
}

// Submit parses, validates, and enqueues one spec document, returning
// the new job's id. The spec is resolved eagerly so malformed documents
// fail at submission, not minutes later on a worker.
func (s *Server) Submit(raw []byte) (*Job, error) {
	spec, err := jobspec.Parse(raw)
	if err != nil {
		return nil, err
	}
	r, err := spec.Resolve(s.cfg.BaseDir)
	if err != nil {
		return nil, err
	}
	if r.Deadline == 0 {
		r.Deadline = s.cfg.DefaultDeadline
	}
	job := &Job{
		ID:       telemetry.NewRunID(),
		Kind:     r.Kind,
		state:    StateQueued,
		created:  time.Now(),
		subs:     make(map[chan progressUpdate]struct{}),
		done:     make(chan struct{}),
		resolved: r,
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, ErrDraining
	}
	select {
	case s.queue <- job:
	default:
		s.mu.Unlock()
		return nil, ErrQueueFull
	}
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	s.mu.Unlock()

	s.count("serve_jobs_submitted")
	s.gaugeQueue()
	return job, nil
}

// Job looks up a job by id.
func (s *Server) Job(id string) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return job, nil
}

// Jobs lists all jobs in submission order.
func (s *Server) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// Cancel stops a queued or running job. Canceling a terminal job is a
// no-op; an unknown id is ErrNotFound.
func (s *Server) Cancel(id string) error {
	job, err := s.Job(id)
	if err != nil {
		return err
	}
	job.mu.Lock()
	switch {
	case job.state.Terminal():
		job.mu.Unlock()
		return nil
	case job.state == StateQueued:
		// The worker will see the canceled state and skip it.
		job.finish(StateCanceled, nil, context.Canceled)
		job.mu.Unlock()
	default:
		cancel := job.cancel
		job.mu.Unlock()
		if cancel != nil {
			cancel()
		}
	}
	s.count("serve_jobs_canceled")
	return nil
}

// Draining reports whether the server has begun shutting down.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain shuts the pool down: new submissions are refused, queued and
// running jobs are canceled, and Drain returns when every worker has
// retired or ctx expires. It is idempotent.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	s.mu.Unlock()
	if !already {
		s.stop() // cancels every in-flight job's context
		close(s.queue)
	}
	doneCh := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(doneCh)
	}()
	select {
	case <-doneCh:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server: drain timed out: %w", ctx.Err())
	}
}

// worker pulls jobs off the queue until Drain closes it.
func (s *Server) worker() {
	defer s.workers.Done()
	for job := range s.queue {
		s.runJob(job)
		s.gaugeQueue()
	}
}

// runJob executes one job to a terminal state.
func (s *Server) runJob(job *Job) {
	job.mu.Lock()
	if job.state.Terminal() { // canceled while queued
		job.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancel(s.root)
	job.state = StateRunning
	job.started = time.Now()
	job.cancel = cancel
	job.mu.Unlock()
	defer cancel()

	start := time.Now()
	res, err := jobspec.Run(ctx, job.resolved, jobspec.Runtime{
		Store:    s.cfg.Store,
		Tel:      s.cfg.Tel,
		Progress: job.publish,
		Parallel: s.cfg.Parallel,
	})

	job.mu.Lock()
	switch {
	case err == nil:
		job.finish(StateDone, res, nil)
		s.count("serve_jobs_done")
	case errors.Is(err, context.Canceled):
		job.finish(StateCanceled, nil, err)
	default:
		job.finish(StateFailed, nil, err)
		s.count("serve_jobs_failed")
	}
	job.mu.Unlock()
	s.observe("serve_job_seconds", time.Since(start).Seconds())
}

// Status snapshots the job for the wire.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID:       j.ID,
		Kind:     j.Kind,
		State:    j.state,
		Error:    j.errMsg,
		Result:   j.result,
		Created:  j.created,
		Started:  j.started,
		Finished: j.finished,
	}
	if j.progress != nil {
		p := make(map[string]any, len(j.progress))
		for k, v := range j.progress {
			p[k] = v
		}
		st.Progress = p
	}
	return st
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// finish moves the job to a terminal state. Caller holds j.mu.
func (j *Job) finish(state State, res *jobspec.Result, err error) {
	if j.state.Terminal() {
		return
	}
	j.state = state
	j.result = res
	if err != nil {
		j.errMsg = err.Error()
	}
	j.finished = time.Now()
	for ch := range j.subs {
		close(ch)
		delete(j.subs, ch)
	}
	close(j.done)
}

// progressUpdate pairs one flattened progress map with the job's
// monotone sequence number; the SSE layer exposes the number as the
// event id so reconnecting clients can say where they left off.
type progressUpdate struct {
	seq    uint64
	fields map[string]any
}

// publish is the job's core.ProgressFunc: it keeps the latest flattened
// update and fans it out to subscribers without ever blocking the
// engine — a subscriber that falls behind misses ticks, not the stream.
func (j *Job) publish(p core.Progress) {
	f := progressFields(p)
	j.mu.Lock()
	j.seq++
	j.progress = f
	u := progressUpdate{seq: j.seq, fields: f}
	for ch := range j.subs {
		select {
		case ch <- u:
		default:
		}
	}
	j.mu.Unlock()
}

// lastSeq returns the sequence number of the latest published update.
func (j *Job) lastSeq() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq
}

// subscribeSince registers a progress channel; the returned func
// detaches it. Channels are closed when the job finishes, and a
// subscription to an already-terminal job returns a closed channel.
// When the subscriber's last-seen sequence number trails the job's,
// the current progress is returned as a snapshot to emit first:
// progress is latest-wins, so a reconnect needs the present state, not
// a replay of missed ticks.
func (j *Job) subscribeSince(last uint64) (*progressUpdate, <-chan progressUpdate, func()) {
	ch := make(chan progressUpdate, 16)
	j.mu.Lock()
	var snap *progressUpdate
	if j.progress != nil && j.seq > last {
		snap = &progressUpdate{seq: j.seq, fields: j.progress}
	}
	if j.state.Terminal() {
		close(ch)
		j.mu.Unlock()
		return snap, ch, func() {}
	}
	j.subs[ch] = struct{}{}
	j.mu.Unlock()
	return snap, ch, func() {
		j.mu.Lock()
		if _, live := j.subs[ch]; live {
			delete(j.subs, ch)
			close(ch)
		}
		j.mu.Unlock()
	}
}

// progressFields flattens a Progress update into the always-finite map
// streamed over SSE (mirrors internal/cli: the full Evaluation can
// carry NaN fields that must never reach JSON).
func progressFields(p core.Progress) map[string]any {
	f := map[string]any{
		"phase":       p.Phase,
		"done":        p.Done,
		"total":       p.Total,
		"quarantined": p.Quarantined,
		"improved":    p.Improved,
		"elapsed_sec": p.Elapsed.Seconds(),
	}
	if p.Incumbent != nil {
		f["best_dim"] = p.Incumbent.Point.ArrayDim
		f["best_ics"] = p.Incumbent.Point.ICSUM
		if obj := p.Incumbent.Objective; !math.IsNaN(obj) && !math.IsInf(obj, 0) {
			f["best_obj"] = obj
		}
	}
	return f
}

// count bumps a server counter on the shared registry.
func (s *Server) count(name string) {
	if s.cfg.Tel.Enabled() {
		s.cfg.Tel.Registry().Counter(name).Inc()
	}
}

// observe records a server histogram sample on the shared registry.
func (s *Server) observe(name string, v float64) {
	if s.cfg.Tel.Enabled() {
		s.cfg.Tel.Registry().Histogram(name).Observe(v)
	}
}

// gaugeQueue publishes the current pending-queue depth.
func (s *Server) gaugeQueue() {
	if s.cfg.Tel.Enabled() {
		s.cfg.Tel.Registry().Gauge("serve_queue_depth").Set(float64(len(s.queue)))
	}
}

// Counts returns (queued, running, terminal) job tallies for /healthz.
func (s *Server) Counts() (queued, running, done int) {
	for _, job := range s.Jobs() {
		job.mu.Lock()
		switch {
		case job.state == StateQueued:
			queued++
		case job.state == StateRunning:
			running++
		default:
			done++
		}
		job.mu.Unlock()
	}
	return
}

// sortStatuses orders wire statuses by creation time then id, for
// deterministic listings even when timestamps collide.
func sortStatuses(sts []Status) {
	sort.Slice(sts, func(i, j int) bool {
		if !sts[i].Created.Equal(sts[j].Created) {
			return sts[i].Created.Before(sts[j].Created)
		}
		return sts[i].ID < sts[j].ID
	})
}
