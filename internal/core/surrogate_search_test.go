package core

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"tesa/internal/dnn"
	"tesa/internal/memo"
)

// rankedEvaluator mirrors testEvaluator with the learned ranking
// surrogate enabled.
func rankedEvaluator(t *testing.T, tech Tech, freqMHz, fps, budgetC float64) *Evaluator {
	t.Helper()
	opts := DefaultOptions()
	opts.Tech = tech
	opts.FreqHz = freqMHz * 1e6
	opts.Grid = 24
	opts.Surrogate = true
	cons := DefaultConstraints()
	cons.FPS = fps
	cons.TempBudgetC = budgetC
	e, err := NewEvaluator(dnn.ARVRWorkload(), opts, cons, Models{})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestRankedOptimizeIdenticalWinner is the soundness contract of the
// tentpole: the surrogate only reorders what gets evaluated first, and
// every proposal still runs the real pipeline, so on a space where the
// annealer converges (the Sec. IV-A agreement setup) the ranked run
// lands on the same winner as the unranked one — while actually using
// its model.
func TestRankedOptimizeIdenticalWinner(t *testing.T) {
	space := tinySpace()
	ref := testEvaluator(t, Tech2D, 400, 15, 85)
	refRes, err := ref.Optimize(space, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !refRes.Found {
		t.Fatal("reference optimizer found nothing")
	}

	sur := rankedEvaluator(t, Tech2D, 400, 15, 85)
	surRes, err := sur.Optimize(space, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !surRes.Found {
		t.Fatal("ranked optimizer found nothing")
	}
	if surRes.Best.Point != refRes.Best.Point || surRes.Best.Objective != refRes.Best.Objective {
		t.Errorf("ranked winner %v obj %v, want %v obj %v",
			surRes.Best.Point, surRes.Best.Objective, refRes.Best.Point, refRes.Best.Objective)
	}
	hits, misses, _ := sur.SurrogateStats()
	if hits+misses == 0 {
		t.Error("ranking never consulted: all counters zero")
	}
	if hits > 0 && surRes.Ranked == 0 {
		t.Error("warm decisions recorded but no candidates ranked")
	}
	if refHits, refMisses, refRanked := ref.SurrogateStats(); refHits+refMisses+refRanked != 0 {
		t.Errorf("surrogate-off evaluator tallied ranking stats: %d/%d/%d", refHits, refMisses, refRanked)
	}
}

// TestRankedSweepIdenticalResult: shard-interior ordering must not
// change anything observable about an exhaustive sweep — every point is
// still evaluated and BetterPoint is a total order, so winner and
// counts are identical by construction.
func TestRankedSweepIdenticalResult(t *testing.T) {
	space := gateSpace()
	ref := testEvaluator(t, Tech2D, 400, 15, 85)
	refRes, err := ref.Exhaustive(space)
	if err != nil {
		t.Fatal(err)
	}

	sur := rankedEvaluator(t, Tech2D, 400, 15, 85)
	// Warm the model first so the ordering path actually reorders:
	// train on a corner of the space, then sweep.
	for _, p := range space.Enumerate()[:surrogateDefaultKForTest()] {
		if _, err := sur.Evaluate(p); err != nil {
			t.Fatal(err)
		}
	}
	surRes, err := sur.Exhaustive(space)
	if err != nil {
		t.Fatal(err)
	}
	if surRes.Total != refRes.Total || surRes.Feasible != refRes.Feasible {
		t.Errorf("sweep shape changed: %d/%d, want %d/%d",
			surRes.Total, surRes.Feasible, refRes.Total, refRes.Feasible)
	}
	if (surRes.Best == nil) != (refRes.Best == nil) {
		t.Fatal("winner presence disagreement")
	}
	if refRes.Best != nil &&
		(surRes.Best.Point != refRes.Best.Point || surRes.Best.Objective != refRes.Best.Objective) {
		t.Errorf("sweep winner changed: %v obj %v, want %v obj %v",
			surRes.Best.Point, surRes.Best.Objective, refRes.Best.Point, refRes.Best.Objective)
	}
}

// surrogateDefaultKForTest keeps the warm-up loop in sync with the
// model's readiness threshold without exporting it from the evaluator.
func surrogateDefaultKForTest() int {
	e := &Evaluator{}
	return e.surrogateK()
}

// TestSurrogateReplayFromDiskTornTail is the corpus-loader coverage
// satellite: a torn trailing segment record (crash mid-write) must be
// skipped, not abort the load, and the surviving records must still
// warm the surrogate through the same replay path. This is the exact
// path the model's -memo-dir startup training shares with LoadMemoDir.
func TestSurrogateReplayFromDiskTornTail(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "memo")
	space := gateSpace()

	// First process: sweep the space with persistence on, so the disk
	// holds one eval record per point.
	writer := testEvaluator(t, Tech2D, 400, 15, 85)
	writerStore := memo.NewStore()
	closeWriter, err := LoadMemoDir(writerStore, dir)
	if err != nil {
		t.Fatal(err)
	}
	writer.UseMemo(writerStore)
	if _, err := writer.Exhaustive(space); err != nil {
		t.Fatal(err)
	}
	if err := closeWriter(); err != nil {
		t.Fatal(err)
	}

	// Tear the last record in half, as a crash mid-append would.
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.jsonl"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("want 1 segment, got %v (%v)", segs, err)
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(segs[0], data[:len(data)-9], 0o644); err != nil {
		t.Fatal(err)
	}

	// Second process: the load must succeed, skipping only the torn
	// tail, and the replay must train the model from what survived.
	store := memo.NewStore()
	closeStore, err := LoadMemoDir(store, dir)
	if err != nil {
		t.Fatalf("torn tail aborted the load: %v", err)
	}
	defer closeStore()
	loaded := store.Stats().Loaded
	if loaded == 0 {
		t.Fatal("nothing loaded from disk")
	}

	warm := rankedEvaluator(t, Tech2D, 400, 15, 85)
	warm.UseMemo(store)
	warm.warmSurrogate()
	n := warm.SurrogateLen()
	if n == 0 {
		t.Fatal("replay trained nothing from the surviving records")
	}
	// Feasible-only training: the corpus can hold infeasible records,
	// so the sample count is bounded by (not equal to) what loaded.
	if int64(n) > loaded {
		t.Errorf("trained %d samples from %d loaded records", n, loaded)
	}
}

// TestNSGA2FrontNonDominated: every reported front member is mutually
// non-dominated over (cost, DRAM power, peak temperature), feasible,
// and carries a full-fidelity evaluation.
func TestNSGA2FrontNonDominated(t *testing.T) {
	e := testEvaluator(t, Tech2D, 400, 15, 85)
	front, err := e.NSGA2FrontContext(context.Background(), tinySpace(), 1, &FrontOptions{Pop: 8, Gens: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(front) == 0 {
		t.Fatal("empty front on a feasible space")
	}
	for i, m := range front {
		if m.Rank != 0 {
			t.Errorf("member %d has rank %d", i, m.Rank)
		}
		if !m.Eval.Feasible {
			t.Errorf("member %d infeasible: %v", i, m.Eval.Violations)
		}
		if m.Eval.Compact() {
			t.Errorf("member %d is a compact record, not full fidelity", i)
		}
		if m.Eval.Schedule == nil {
			t.Errorf("member %d lost its schedule", i)
		}
		for j, o := range front {
			if i != j && dominates(frontObjectives(o.Eval), frontObjectives(m.Eval)) {
				t.Errorf("member %d (%v) dominated by member %d (%v)",
					i, m.Eval.Point, j, o.Eval.Point)
			}
		}
	}
	// Deterministic ordering: ascending on the cost axis first.
	for i := 1; i < len(front); i++ {
		if front[i].Eval.MCMCost.Total < front[i-1].Eval.MCMCost.Total {
			t.Errorf("front not sorted by cost at %d", i)
		}
	}
}

// TestNSGA2FrontDeterministic: same seed, same front — including under
// the surrogate, whose ranked-offspring path must stay inside the
// single-threaded deterministic loop.
func TestNSGA2FrontDeterministic(t *testing.T) {
	for _, ranked := range []bool{false, true} {
		run := func() []DesignPoint {
			var e *Evaluator
			if ranked {
				e = rankedEvaluator(t, Tech2D, 400, 15, 85)
			} else {
				e = testEvaluator(t, Tech2D, 400, 15, 85)
			}
			front, err := e.NSGA2FrontContext(context.Background(), tinySpace(), 7, &FrontOptions{Pop: 6, Gens: 2})
			if err != nil {
				t.Fatal(err)
			}
			pts := make([]DesignPoint, len(front))
			for i, m := range front {
				pts[i] = m.Eval.Point
			}
			return pts
		}
		a, b := run(), run()
		if len(a) != len(b) {
			t.Fatalf("ranked=%v: front sizes diverged: %d vs %d", ranked, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("ranked=%v: member %d diverged: %v vs %v", ranked, i, a[i], b[i])
			}
		}
	}
}

// TestNSGA2FrontNoFeasible: an impossible budget reports the paper's
// "solution does not exist" outcome as a typed error.
func TestNSGA2FrontNoFeasible(t *testing.T) {
	opts := DefaultOptions()
	opts.Grid = 24
	cons := DefaultConstraints()
	cons.PowerBudgetW = 0.01
	e, err := NewEvaluator(dnn.ARVRWorkload(), opts, cons, Models{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.NSGA2FrontContext(context.Background(), tinySpace(), 1, &FrontOptions{Pop: 4, Gens: 1}); err == nil {
		t.Fatal("impossible budget produced a front")
	}
}
