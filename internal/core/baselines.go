package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"tesa/internal/anneal"
	"tesa/internal/dnn"
)

// BaselineResult pairs a baseline's own pick (made under its reduced
// models) with the ground-truth evaluation of that pick under TESA's full
// models — the paper's Tables III and IV report exactly this "what the
// method chose" vs "what it actually does thermally".
type BaselineResult struct {
	Name string
	// Chosen is the evaluation under the baseline's own models (thermal
	// disabled, leakage ignored or linearized, constraints dropped...).
	Chosen *Evaluation
	// Actual is the same design point re-evaluated with the full TESA
	// models (exponential leakage, thermal analysis, all constraints).
	Actual *Evaluation
	// Found is false when the baseline itself found nothing feasible.
	Found bool
}

// objectiveFn scores an evaluation for the generalized optimizer;
// feasibleFn gates acceptance.
type objectiveFn func(*Evaluation) float64

type feasibleFn func(*Evaluation) bool

// optimizeObjective runs the multi-start annealer over an arbitrary
// objective/feasibility pair. full selects EvaluateFull (needed when the
// objective reads temperatures of constraint-violating points, as W1/W2
// adoptions do).
func (e *Evaluator) optimizeObjective(space Space, seed int64, full bool, obj objectiveFn, feas feasibleFn) (*Evaluation, bool, error) {
	eval := func(p DesignPoint) (*Evaluation, error) {
		if full {
			return e.EvaluateFull(p)
		}
		return e.Evaluate(p)
	}
	// Start from the best feasible sample (see sampleFeasibleStart: the
	// feasible set can be fragmented, making the starting basin
	// decisive).
	budget := initBudget(space)
	init := func(rng *rand.Rand) (DesignPoint, bool) {
		return sampleFeasibleStart(context.Background(), space, rng, budget, eval, obj, feas)
	}
	var evalErr error
	var once sync.Once
	score := func(p DesignPoint) (float64, bool) {
		ev, err := eval(p)
		if err != nil {
			once.Do(func() { evalErr = err })
			return 0, false
		}
		return obj(ev), feas(ev)
	}
	best, _, err := anneal.MultiStart(anneal.DefaultStarts(seed), init, space.Neighbor, score)
	if err != nil {
		return nil, false, err
	}
	if evalErr != nil {
		return nil, false, evalErr
	}
	if !best.Found {
		return nil, false, nil
	}
	ev, err := eval(best.Best)
	return ev, true, err
}

// groundTruth re-evaluates a baseline's pick under the full TESA models.
func groundTruth(w dnn.Workload, opts Options, cons Constraints, models Models, p DesignPoint) (*Evaluation, error) {
	opts.DisableThermal = false
	opts.NoLeakage = false
	opts.LinearLeakage = false
	e, err := NewEvaluator(w, opts, cons, models)
	if err != nil {
		return nil, err
	}
	return e.EvaluateFull(p)
}

// RunSC1 builds the paper's first temperature-unaware baseline: maximum
// parallelism — each of the six DNNs runs simultaneously on a dedicated
// chiplet, at the maximum ICS (1 mm) to be as charitable as possible
// about lateral coupling. The chiplet is the largest array whose derived
// six-chiplet mesh still fits at that spacing and that meets the latency
// and dynamic-power constraints (SC1 has no thermal or leakage model).
// Fig. 5 reports this baseline's real thermal behaviour.
func RunSC1(w dnn.Workload, opts Options, cons Constraints, models Models, space Space) (*BaselineResult, error) {
	scOpts := opts
	scOpts.DisableThermal = true
	e, err := NewEvaluator(w, scOpts, cons, models)
	if err != nil {
		return nil, err
	}
	maxICS := 0
	for _, ics := range space.ICSUMs {
		if ics > maxICS {
			maxICS = ics
		}
	}
	res := &BaselineResult{Name: "SC1"}
	nDNN := len(w.Networks)
	for i := len(space.ArrayDims) - 1; i >= 0; i-- {
		p := DesignPoint{ArrayDim: space.ArrayDims[i], ICSUM: maxICS}
		ev, err := e.Evaluate(p)
		if err != nil {
			return nil, err
		}
		if !ev.Fits || ev.Mesh.Count() != nDNN || !ev.Feasible {
			continue
		}
		res.Chosen = ev
		res.Found = true
		res.Actual, err = groundTruth(w, opts, cons, models, p)
		if err != nil {
			return nil, err
		}
		return res, nil
	}
	return res, nil
}

// RunSC2 builds the paper's second baseline: chiplet sizing WITHOUT
// temperature — the full TESA optimizer with the thermal and leakage
// models disabled and the power constraint applied to dynamic power only.
// Table IV reports what its picks actually do thermally, including the
// 3-D thermal-runaway rows.
func RunSC2(w dnn.Workload, opts Options, cons Constraints, models Models, space Space, seed int64) (*BaselineResult, error) {
	scOpts := opts
	scOpts.DisableThermal = true
	e, err := NewEvaluator(w, scOpts, cons, models)
	if err != nil {
		return nil, err
	}
	res := &BaselineResult{Name: "SC2"}
	opt, err := e.OptimizeContext(context.Background(), space, seed, nil)
	if errors.Is(err, ErrNoFeasibleStart) {
		return res, nil
	}
	if err != nil {
		return nil, err
	}
	if !opt.Found {
		return res, nil
	}
	res.Chosen = opt.Best
	res.Found = true
	res.Actual, err = groundTruth(w, opts, cons, models, opt.Best.Point)
	return res, err
}

// RunW1 reproduces the paper's adoption of W1 (TAP-2.5D, Ma et al. DATE
// 2021): objective "minimize peak temperature", no leakage model, and —
// in the original form — no performance or power constraints at all.
// With constraints=false this reproduces the Table III top row (the
// method happily picks the smallest, coolest chiplets and misses the
// latency target by a factor of ~40); with constraints=true it adds the
// latency and dynamic-power constraints and still lands on a thermally
// infeasible MCM at 75 C because leakage is ignored.
func RunW1(w dnn.Workload, opts Options, cons Constraints, models Models, space Space, seed int64, constraints bool) (*BaselineResult, error) {
	wOpts := opts
	wOpts.NoLeakage = true
	e, err := NewEvaluator(w, wOpts, cons, models)
	if err != nil {
		return nil, err
	}
	res := &BaselineResult{Name: "W1"}
	if constraints {
		res.Name = "W1+constraints"
	}
	obj := func(ev *Evaluation) float64 { return ev.PeakTempC }
	feas := func(ev *Evaluation) bool {
		if !ev.Fits || math.IsNaN(ev.PeakTempC) {
			return false
		}
		if !constraints {
			return true
		}
		return ev.LatencyFactor <= 1 && ev.DynamicPowerW <= cons.PowerBudgetW
	}
	ev, found, err := e.optimizeObjective(space, seed, true, obj, feas)
	if err != nil || !found {
		return res, err
	}
	res.Chosen = ev
	res.Found = true
	res.Actual, err = groundTruth(w, opts, cons, models, ev.Point)
	return res, err
}

// RunW2 reproduces the paper's adoption of W2 (Coskun et al. TCAD 2020):
// objective "minimize temperature + MCM cost + latency" (equally weighted
// normalized terms), no constraints in the original form, and a LINEAR
// leakage model that under-estimates leakage at high temperature. With
// constraints=true the latency and power constraints are added; the pick
// still violates the thermal budget once evaluated with the exponential
// model, the paper's point about linearized leakage.
func RunW2(w dnn.Workload, opts Options, cons Constraints, models Models, space Space, seed int64, constraints bool) (*BaselineResult, error) {
	wOpts := opts
	wOpts.LinearLeakage = true
	e, err := NewEvaluator(w, wOpts, cons, models)
	if err != nil {
		return nil, err
	}
	res := &BaselineResult{Name: "W2"}
	if constraints {
		res.Name = "W2+constraints"
	}
	obj := func(ev *Evaluation) float64 {
		return ev.PeakTempC/cons.TempBudgetC +
			ev.MCMCost.Total/opts.RefCostUSD +
			ev.MakespanSec*cons.FPS/10
	}
	feas := func(ev *Evaluation) bool {
		if !ev.Fits || math.IsNaN(ev.PeakTempC) {
			return false
		}
		if !constraints {
			return true
		}
		return ev.LatencyFactor <= 1 && ev.TotalPowerW <= cons.PowerBudgetW
	}
	ev, found, err := e.optimizeObjective(space, seed, true, obj, feas)
	if err != nil || !found {
		return res, err
	}
	res.Chosen = ev
	res.Found = true
	res.Actual, err = groundTruth(w, opts, cons, models, ev.Point)
	return res, err
}

// Describe formats a baseline outcome the way the paper's tables do.
func (r *BaselineResult) Describe(cons Constraints) string {
	if !r.Found {
		return fmt.Sprintf("%s: no configuration found", r.Name)
	}
	a := r.Actual
	s := fmt.Sprintf("%s: %v, %v grid", r.Name, a.Point, a.Mesh)
	switch {
	case a.Runaway:
		s += " -> INFEASIBLE: thermal runaway"
	case a.LatencyFactor > 1:
		s += fmt.Sprintf(" -> INFEASIBLE: latency %.1fx the %.0f fps budget", a.LatencyFactor, cons.FPS)
	case a.PeakTempC > cons.TempBudgetC:
		s += fmt.Sprintf(" -> INFEASIBLE: peak %.1f C over the %.0f C budget", a.PeakTempC, cons.TempBudgetC)
	case a.TotalPowerW > cons.PowerBudgetW:
		s += fmt.Sprintf(" -> INFEASIBLE: power %.1f W over the %.0f W budget", a.TotalPowerW, cons.PowerBudgetW)
	default:
		s += fmt.Sprintf(" -> feasible (peak %.1f C)", a.PeakTempC)
	}
	return s
}
