package core

import (
	"math"
	"testing"

	"tesa/internal/dnn"
	"tesa/internal/telemetry"
)

// fastEvaluator mirrors testEvaluator with the ThermalFast path enabled
// at the default guard band.
func fastEvaluator(t *testing.T, tech Tech, freqMHz, fps, budgetC float64) *Evaluator {
	t.Helper()
	opts := DefaultOptions()
	opts.Tech = tech
	opts.FreqHz = freqMHz * 1e6
	opts.Grid = 24
	opts.ThermalFast = true
	cons := DefaultConstraints()
	cons.FPS = fps
	cons.TempBudgetC = budgetC
	e, err := NewEvaluator(dnn.ARVRWorkload(), opts, cons, Models{})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// gateSpace is the design sub-space the surrogate-gate tests sweep.
func gateSpace() Space {
	var s Space
	for d := 180; d <= 256; d += 12 {
		s.ArrayDims = append(s.ArrayDims, d)
	}
	s.ICSUMs = []int{0, 500, 1000}
	return s
}

// TestSurrogateGateSoundness is the gate-correctness satellite: across
// the design sub-space, at the default guard band, the fast path makes
// exactly the same feasibility decision as the reference evaluation on
// every point — no feasible point is wrongly skipped (hot) and no
// infeasible point wrongly admitted (cool) — and grid-solved fast
// points stay within the 0.1 C agreement contract.
func TestSurrogateGateSoundness(t *testing.T) {
	configs := []struct {
		name            string
		freqMHz, budget float64
	}{
		{"loose-85C", 400, 85}, // mixed space: exercises both skip directions
		{"tight-75C", 500, 75}, // mostly over budget: exercises hot-skips
	}
	for _, cfg := range configs {
		ref := testEvaluator(t, Tech2D, cfg.freqMHz, 15, cfg.budget)
		fast := fastEvaluator(t, Tech2D, cfg.freqMHz, 15, cfg.budget)
		var hot, cool, solved int
		for _, p := range gateSpace().Enumerate() {
			rev, rerr := ref.Evaluate(p)
			fev, ferr := fast.Evaluate(p)
			if (rerr == nil) != (ferr == nil) {
				t.Fatalf("%s/%v: error disagreement: ref %v, fast %v", cfg.name, p, rerr, ferr)
			}
			if rerr != nil {
				continue
			}
			if rev.Feasible != fev.Feasible {
				t.Errorf("%s/%v: feasibility flipped: ref %v (%v, peak %.2f), fast %v (%v, %s, peak %.2f)",
					cfg.name, p, rev.Feasible, rev.Violations, rev.PeakTempC,
					fev.Feasible, fev.Violations, fev.ThermalFidelity, fev.PeakTempC)
			}
			switch fev.ThermalFidelity {
			case "surrogate-hot":
				hot++
				// The hot certificate covers temperature, power and runaway;
				// any of the three makes the reference infeasible.
				if rev.Feasible {
					t.Errorf("%s/%v: hot-skip on a feasible point (ref peak %.2f C, %.2f W)",
						cfg.name, p, rev.PeakTempC, rev.TotalPowerW)
				}
			case "surrogate-cool":
				cool++
				if rev.Runaway || rev.PeakTempC > cfg.budget || rev.TotalPowerW > ref.Cons.PowerBudgetW {
					t.Errorf("%s/%v: cool-skip on an infeasible point (ref peak %.2f C, %.2f W, runaway %v)",
						cfg.name, p, rev.PeakTempC, rev.TotalPowerW, rev.Runaway)
				}
			case "":
				// Thermal did not run (short-circuited on a cheap
				// violation) — identical on both paths by construction.
			default:
				solved++
				if !rev.Runaway && !fev.Runaway {
					if d := math.Abs(fev.PeakTempC - rev.PeakTempC); d > 0.1 {
						t.Errorf("%s/%v: fast grid solve differs by %.4f C", cfg.name, p, d)
					}
				}
			}
		}
		t.Logf("%s: %d hot-skips, %d cool-skips, %d grid solves", cfg.name, hot, cool, solved)
		if hot+cool == 0 {
			t.Errorf("%s: surrogate gate never fired — the test exercised nothing", cfg.name)
		}
	}
}

// TestSurrogateGateFullModeBypass: reporting-mode evaluations always run
// the grid ladder even under ThermalFast, so tables and figures never
// carry surrogate numbers.
func TestSurrogateGateFullModeBypass(t *testing.T) {
	fast := fastEvaluator(t, Tech2D, 400, 15, 85)
	ev, err := fast.EvaluateFull(DesignPoint{ArrayDim: 196, ICSUM: 500})
	if err != nil {
		t.Fatal(err)
	}
	switch ev.ThermalFidelity {
	case "surrogate-hot", "surrogate-cool":
		t.Errorf("full evaluation used the surrogate gate (%s)", ev.ThermalFidelity)
	case "":
		t.Error("full evaluation did not run thermal analysis")
	}
}

// TestFastPathIdenticalWinner is the end-to-end acceptance check: the
// optimizer run with ThermalFast lands on the same winning design point
// as the reference run, with the same feasibility outcome.
func TestFastPathIdenticalWinner(t *testing.T) {
	space := tinySpace()
	ref := testEvaluator(t, Tech2D, 400, 15, 85)
	refRes, err := ref.Optimize(space, 3)
	if err != nil {
		t.Fatal(err)
	}
	fast := fastEvaluator(t, Tech2D, 400, 15, 85)
	fastRes, err := fast.Optimize(space, 3)
	if err != nil {
		t.Fatal(err)
	}
	if refRes.Found != fastRes.Found {
		t.Fatalf("found disagreement: ref %v, fast %v", refRes.Found, fastRes.Found)
	}
	if !refRes.Found {
		t.Fatal("reference optimizer found nothing on a feasible space")
	}
	if refRes.Best.Point != fastRes.Best.Point {
		t.Errorf("winning point changed: ref %v (obj %.4f), fast %v (obj %.4f)",
			refRes.Best.Point, refRes.Best.Objective, fastRes.Best.Point, fastRes.Best.Objective)
	}
	if refRes.Evaluations != fastRes.Evaluations {
		t.Errorf("trajectory changed: ref %d evaluations, fast %d", refRes.Evaluations, fastRes.Evaluations)
	}
	if refRes.Screened != 0 {
		t.Errorf("reference run reported %d screened candidates, want 0", refRes.Screened)
	}
	switch fastRes.Best.ThermalFidelity {
	case "surrogate-hot", "surrogate-cool":
		t.Errorf("reported winner carries surrogate thermal numbers (%s)", fastRes.Best.ThermalFidelity)
	}
	if d := math.Abs(fastRes.Best.PeakTempC - refRes.Best.PeakTempC); d > 0.1 {
		t.Errorf("winner peak temperature differs by %.4f C between paths", d)
	}
}

// TestWarmStartCacheHits: with the surrogate gate held open (an
// impossibly wide band), consecutive same-geometry evaluations hit the
// warm-start cache, and the cached guess does not change the result
// beyond the solver contract.
func TestWarmStartCacheHits(t *testing.T) {
	fast := fastEvaluator(t, Tech2D, 400, 15, 85)
	fast.Opts.SurrogateBandC = 1e6 // gate never decides: every point grid-solves
	tel := telemetry.New(nil)
	fast.Instrument(tel)
	ref := testEvaluator(t, Tech2D, 400, 15, 85)

	// Same array dimension, different spacing: same warm-cache geometry
	// class, distinct design points (no memo-cache interference).
	points := []DesignPoint{{ArrayDim: 196, ICSUM: 250}, {ArrayDim: 196, ICSUM: 500}, {ArrayDim: 196, ICSUM: 750}}
	for _, p := range points {
		fev, err := fast.Evaluate(p)
		if err != nil {
			t.Fatal(err)
		}
		rev, err := ref.Evaluate(p)
		if err != nil {
			t.Fatal(err)
		}
		if !rev.Runaway && !fev.Runaway {
			if d := math.Abs(fev.PeakTempC - rev.PeakTempC); d > 0.1 {
				t.Errorf("%v: warm-started fast solve differs by %.4f C", p, d)
			}
		}
	}
	hits := tel.Registry().Counter("thermal.warmstart.hit").Value()
	misses := tel.Registry().Counter("thermal.warmstart.miss").Value()
	if hits < 1 {
		t.Errorf("warm-start cache never hit (%d hits, %d misses) across same-geometry evaluations", hits, misses)
	}
	if misses < 1 {
		t.Errorf("warm-start cache never missed (%d hits, %d misses) — first evaluation should miss", hits, misses)
	}
}

// TestSurrogateBandValidation: a negative guard band is rejected.
func TestSurrogateBandValidation(t *testing.T) {
	opts := DefaultOptions()
	opts.SurrogateBandC = -1
	if err := opts.Validate(); err == nil {
		t.Error("negative surrogate band accepted")
	}
}
