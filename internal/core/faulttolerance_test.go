package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math"
	"reflect"
	"testing"
	"time"

	"tesa/internal/dnn"
	"tesa/internal/faults"
	"tesa/internal/telemetry"
)

// faultSpace is a small all-fitting space for the chaos tests: every
// point completes the full pipeline, so faults at any stage fire.
func faultSpace() Space {
	return Space{ArrayDims: []int{180, 184, 188, 192, 196}, ICSUMs: []int{0, 250}}
}

// chaosEvaluator is testEvaluator at a coarser thermal grid: the matrix
// runs dozens of sweeps, and fidelity is irrelevant to fault handling.
func chaosEvaluator(t *testing.T) *Evaluator {
	t.Helper()
	opts := DefaultOptions()
	opts.FreqHz = 400e6
	opts.Grid = 16
	cons := DefaultConstraints()
	cons.FPS = 15
	cons.TempBudgetC = 85
	e, err := NewEvaluator(dnn.ARVRWorkload(), opts, cons, Models{})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// injectPlan parses a fault spec, failing the test on error.
func injectPlan(t *testing.T, spec string) *faults.Plan {
	t.Helper()
	plan, err := faults.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// TestFaultMatrix is the issue's acceptance matrix: every fault kind at
// every stage it applies to, injected for exactly one design point. The
// sweep must complete, quarantine exactly that point with the right
// stage and reason, and still evaluate the rest of the space.
func TestFaultMatrix(t *testing.T) {
	space := faultSpace()
	target := DesignPoint{ArrayDim: 188, ICSUM: 250}

	// The target must complete the full pipeline on a clean evaluator,
	// otherwise faults in late stages would never fire.
	clean := chaosEvaluator(t)
	ev, err := clean.Evaluate(target)
	if err != nil {
		t.Fatal(err)
	}
	if !ev.Fits || ev.ThermalFidelity == "" {
		t.Fatalf("target %v does not reach the thermal stage (fits=%v, fidelity=%q); pick another",
			target, ev.Fits, ev.ThermalFidelity)
	}

	stages := []string{"systolic", "floorplan", "sched", "dram", "cost", "thermal"}
	type cell struct {
		kind   string
		stages []string
		reason string
	}
	matrix := []cell{
		{"panic", stages, "panic"},
		{"error", stages, "error"},
		{"nan", stages, "non-finite"},
		{"latency", stages, "timeout"},
		{"diverge", []string{"thermal"}, "solver-diverged"},
	}
	pred := fmt.Sprintf("dim=%d,ics=%d", target.ArrayDim, target.ICSUM)
	for _, c := range matrix {
		for _, stage := range c.stages {
			t.Run(c.kind+"@"+stage, func(t *testing.T) {
				t.Parallel()
				spec := fmt.Sprintf("%s@%s:%s", c.kind, stage, pred)
				if c.kind == "latency" {
					// The budget must clear every organic stage duration
					// (thermal takes tens of ms at this grid, multiplied
					// several-fold under -race) while the injected stall
					// exceeds it decisively.
					spec += ",delay=5s"
				}
				e := chaosEvaluator(t)
				e.InjectFaults(injectPlan(t, spec))
				if c.kind == "latency" {
					e.SetStageTimeout(2 * time.Second)
				}
				res, err := e.ExhaustiveContext(context.Background(), space, nil)
				if err != nil {
					t.Fatalf("sweep aborted: %v", err)
				}
				if res.Quarantined != 1 || len(res.Poisoned) != 1 {
					t.Fatalf("quarantined %d points (%v), want exactly the target", res.Quarantined, res.Poisoned)
				}
				q := res.Poisoned[0]
				if q.Point != target || q.Stage != stage || q.Reason != c.reason {
					t.Errorf("ledger entry %+v, want {%v %s %s}", q, target, stage, c.reason)
				}
				if res.Evaluated != res.Total {
					t.Errorf("evaluated %d of %d: the sweep did not continue past the fault", res.Evaluated, res.Total)
				}
				if got := e.QuarantineLedger(); len(got) != 1 || !reflect.DeepEqual(got[0], q) {
					t.Errorf("evaluator ledger %v disagrees with sweep result %v", got, q)
				}
			})
		}
	}
}

// TestFaultSweepCheckpointResume: a chaos sweep persists its poisoned
// points, and a resume re-evaluates none of the space — poisoned points
// included.
func TestFaultSweepCheckpointResume(t *testing.T) {
	space := faultSpace()
	var buf bytes.Buffer
	sink := telemetry.NewJSONLSink(&buf)

	e := chaosEvaluator(t)
	e.InjectFaults(injectPlan(t, "panic@sched:dim=184;nan@thermal:dim=192,ics=0"))
	res, err := e.ExhaustiveContext(context.Background(), space,
		&SweepOptions{ShardSize: 2, Checkpoint: sink})
	if err != nil {
		t.Fatal(err)
	}
	if res.Quarantined != 3 { // dim=184 at both spacings, plus (192,0)
		t.Fatalf("quarantined %d points (%v), want 3", res.Quarantined, res.Poisoned)
	}
	if res.Best == nil {
		t.Fatal("chaos sweep found no feasible point; the space no longer exercises the scenario")
	}

	state, err := LoadCheckpoint(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(state.Poisoned) != 3 {
		t.Fatalf("checkpoint recovered %d poisoned records, want 3", len(state.Poisoned))
	}

	// Resume on a fresh evaluator with injection off: if the skip set
	// works, nothing is re-evaluated, so the faults' absence is invisible.
	fresh := chaosEvaluator(t)
	got, err := fresh.ExhaustiveContext(context.Background(), space,
		&SweepOptions{ShardSize: 2, ResumeFrom: state})
	if err != nil {
		t.Fatal(err)
	}
	if got.Evaluated != 0 {
		t.Errorf("resume re-evaluated %d points, want 0", got.Evaluated)
	}
	if got.Resumed != got.Total {
		t.Errorf("resume credited %d of %d points", got.Resumed, got.Total)
	}
	if got.Quarantined != 3 || len(got.Poisoned) != 3 {
		t.Errorf("resume carried %d quarantined (%v), want 3", got.Quarantined, got.Poisoned)
	}
	if got.Best == nil || got.Best.Point != res.Best.Point {
		t.Errorf("resumed best %+v != original %v", got.Best, res.Best.Point)
	}
}

// TestFaultSweepInterruptedResume: a chaos sweep killed mid-run persists
// the poisoned points seen so far; the resumed run skips them and still
// completes with the full ledger.
func TestFaultSweepInterruptedResume(t *testing.T) {
	space := tinySpace()                 // 100 points, 20 shards of 5
	spec := "error@systolic:dim=180-200" // 6 dims x 5 spacings = 30 points
	var buf bytes.Buffer
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sink := &cancellingSink{inner: telemetry.NewJSONLSink(&buf), after: 10, cancel: cancel}

	killed := chaosEvaluator(t)
	killed.InjectFaults(injectPlan(t, spec))
	if _, err := killed.ExhaustiveContext(ctx, space, &SweepOptions{ShardSize: 5, Checkpoint: sink}); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted sweep err = %v, want context.Canceled", err)
	}

	state, err := LoadCheckpoint(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	before := len(state.Poisoned)
	if before == 0 {
		t.Fatal("kill landed before any poisoned record; widen the fault predicate")
	}

	fresh := chaosEvaluator(t)
	fresh.InjectFaults(injectPlan(t, spec))
	got, err := fresh.ExhaustiveContext(context.Background(), space,
		&SweepOptions{ShardSize: 5, ResumeFrom: state})
	if err != nil {
		t.Fatal(err)
	}
	if got.Quarantined != 30 {
		t.Errorf("final ledger has %d points, want 30", got.Quarantined)
	}
	if got.Evaluated+got.Resumed != got.Total {
		t.Errorf("coverage gap: %d evaluated + %d resumed != %d", got.Evaluated, got.Resumed, got.Total)
	}
	// The checkpointed poisoned points must not have been re-evaluated.
	if fresh.QuarantinedCount() != 30-before {
		t.Errorf("resume re-ran %d poisoned evaluations, want %d (skipping %d from the checkpoint)",
			fresh.QuarantinedCount(), 30-before, before)
	}
}

// TestSweepFailurePolicies: MaxFailures aborts with ErrTooManyFailures
// once exceeded, FailFast surfaces the first EvalError itself.
func TestSweepFailurePolicies(t *testing.T) {
	space := faultSpace()
	spec := "error@systolic:dim=180-188" // 3 dims x 2 spacings = 6 poisoned

	e := chaosEvaluator(t)
	e.InjectFaults(injectPlan(t, spec))
	_, err := e.ExhaustiveContext(context.Background(), space, &SweepOptions{MaxFailures: 2})
	if !errors.Is(err, ErrTooManyFailures) {
		t.Errorf("MaxFailures=2 err = %v, want ErrTooManyFailures", err)
	}
	if n := e.QuarantinedCount(); n < 3 {
		t.Errorf("aborted with %d quarantined, want > MaxFailures", n)
	}

	ff := chaosEvaluator(t)
	ff.InjectFaults(injectPlan(t, spec))
	_, err = ff.ExhaustiveContext(context.Background(), space, &SweepOptions{FailFast: true})
	var ee *EvalError
	if !errors.As(err, &ee) || !errors.Is(err, faults.ErrInjected) {
		t.Errorf("FailFast err = %v, want the injected *EvalError", err)
	}

	// MaxFailures counts poisoned points credited from a resume too.
	resumed := chaosEvaluator(t)
	state := &CheckpointState{
		Fingerprint: space.Fingerprint(), Total: space.Size(), ShardSize: 2, Shards: 5,
		Done: map[int]ShardCheckpoint{},
		Poisoned: map[DesignPoint]QuarantinedPoint{
			{ArrayDim: 180, ICSUM: 0}:   {Point: DesignPoint{ArrayDim: 180, ICSUM: 0}, Stage: "systolic", Reason: "error"},
			{ArrayDim: 180, ICSUM: 250}: {Point: DesignPoint{ArrayDim: 180, ICSUM: 250}, Stage: "systolic", Reason: "error"},
			{ArrayDim: 184, ICSUM: 0}:   {Point: DesignPoint{ArrayDim: 184, ICSUM: 0}, Stage: "systolic", Reason: "error"},
		},
	}
	resumed.InjectFaults(injectPlan(t, spec))
	_, err = resumed.ExhaustiveContext(context.Background(), space,
		&SweepOptions{ShardSize: 2, ResumeFrom: state, MaxFailures: 3})
	if !errors.Is(err, ErrTooManyFailures) {
		t.Errorf("resumed MaxFailures err = %v, want ErrTooManyFailures", err)
	}
}

// TestFailureMemoized: a poisoned point's error is cached like a
// successful evaluation — the retry returns the identical *EvalError
// without re-running the pipeline.
func TestFailureMemoized(t *testing.T) {
	e := chaosEvaluator(t)
	e.InjectFaults(injectPlan(t, "panic@cost:dim=188"))
	p := DesignPoint{ArrayDim: 188, ICSUM: 250}
	_, err1 := e.Evaluate(p)
	_, err2 := e.Evaluate(p)
	if err1 == nil || err1 != err2 {
		t.Fatalf("memoized failure not identical: %v vs %v", err1, err2)
	}
	if !errors.Is(err1, ErrStagePanic) {
		t.Errorf("err = %v, want ErrStagePanic", err1)
	}
	if e.QuarantinedCount() != 1 {
		t.Errorf("quarantined %d, want 1", e.QuarantinedCount())
	}
	if e.Evaluations() != 2 || e.CacheHitRate() != 0.5 {
		t.Errorf("evaluations=%d hitRate=%.2f, want the retry served from cache", e.Evaluations(), e.CacheHitRate())
	}
}

// TestDegradedThermalRetry walks the fidelity ladder: each additional
// forced divergence pushes the point one rung down, and the lumped
// fallback always produces a finite temperature.
func TestDegradedThermalRetry(t *testing.T) {
	p := DesignPoint{ArrayDim: 188, ICSUM: 250}
	cases := []struct {
		attempts string
		fidelity string
		retries  int
	}{
		{"", "full", 0}, // no rule: nominal solve
		{"attempts=1", "relaxed", 1},
		{"attempts=2", "coarse", 2},
		{"attempts=3", "lumped", 3},
	}
	for _, tc := range cases {
		e := chaosEvaluator(t)
		if tc.attempts != "" {
			e.InjectFaults(injectPlan(t, "diverge@thermal:"+tc.attempts))
		}
		ev, err := e.Evaluate(p)
		if err != nil {
			t.Fatalf("%s: %v", tc.attempts, err)
		}
		if ev.ThermalFidelity != tc.fidelity || ev.ThermalRetries != tc.retries {
			t.Errorf("%s: fidelity=%q retries=%d, want %q/%d",
				tc.attempts, ev.ThermalFidelity, ev.ThermalRetries, tc.fidelity, tc.retries)
		}
		if math.IsNaN(ev.PeakTempC) || math.IsInf(ev.PeakTempC, 0) {
			t.Errorf("%s: non-finite peak temperature %f", tc.attempts, ev.PeakTempC)
		}
	}

	// Every rung failing — lumped included — finally quarantines.
	e := chaosEvaluator(t)
	e.InjectFaults(injectPlan(t, "diverge@thermal"))
	_, err := e.Evaluate(p)
	if !errors.Is(err, ErrSolverDiverged) {
		t.Fatalf("exhausted ladder err = %v, want ErrSolverDiverged", err)
	}
	var ee *EvalError
	if !errors.As(err, &ee) || ee.Stage != "thermal" || ee.Reason() != "solver-diverged" {
		t.Errorf("exhausted ladder EvalError = %+v", ee)
	}
}

// TestOptimizeQuarantine: the annealer treats poisoned points as
// infeasible and completes; a fully poisoned space surfaces as the
// "no solution" outcome with the ledger attached, and the failure
// policies abort like the sweep's.
func TestOptimizeQuarantine(t *testing.T) {
	space := faultSpace()

	// Poison one point: the run completes and reports it if visited.
	e := chaosEvaluator(t)
	e.InjectFaults(injectPlan(t, "error@sched:dim=184,ics=0"))
	res, err := e.OptimizeContext(context.Background(), space, 3, nil)
	if err != nil {
		t.Fatalf("optimize with one poisoned point: %v", err)
	}
	if !res.Found {
		t.Fatal("optimizer found nothing on a mostly-healthy space")
	}
	if res.Quarantined != len(res.Poisoned) || res.Quarantined != e.QuarantinedCount() {
		t.Errorf("ledger accounting: result %d/%d vs evaluator %d",
			res.Quarantined, len(res.Poisoned), e.QuarantinedCount())
	}

	// Poison everything: no feasible start, ledger carried in the result.
	dead := chaosEvaluator(t)
	dead.InjectFaults(injectPlan(t, "error@systolic"))
	res, err = dead.OptimizeContext(context.Background(), space, 3, nil)
	if !errors.Is(err, ErrNoFeasibleStart) {
		t.Fatalf("fully poisoned space err = %v, want ErrNoFeasibleStart", err)
	}
	if res == nil || res.Quarantined == 0 || res.Quarantined != len(res.Poisoned) {
		t.Errorf("fully poisoned result = %+v, want a non-empty ledger", res)
	}

	ff := chaosEvaluator(t)
	ff.InjectFaults(injectPlan(t, "error@systolic"))
	_, err = ff.OptimizeContext(context.Background(), space, 3, &OptimizeOptions{FailFast: true})
	var ee *EvalError
	if !errors.As(err, &ee) {
		t.Errorf("optimize FailFast err = %v, want the *EvalError", err)
	}

	lim := chaosEvaluator(t)
	lim.InjectFaults(injectPlan(t, "error@systolic"))
	_, err = lim.OptimizeContext(context.Background(), space, 3, &OptimizeOptions{MaxFailures: 2})
	if !errors.Is(err, ErrTooManyFailures) {
		t.Errorf("optimize MaxFailures err = %v, want ErrTooManyFailures", err)
	}
}
