package core

import (
	"math"
	"testing"

	"tesa/internal/dnn"
	"tesa/internal/systolic"
)

// testEvaluator builds an evaluator with a coarse thermal grid for fast
// tests.
func testEvaluator(t *testing.T, tech Tech, freqMHz, fps, budgetC float64) *Evaluator {
	t.Helper()
	opts := DefaultOptions()
	opts.Tech = tech
	opts.FreqHz = freqMHz * 1e6
	opts.Grid = 24
	cons := DefaultConstraints()
	cons.FPS = fps
	cons.TempBudgetC = budgetC
	e, err := NewEvaluator(dnn.ARVRWorkload(), opts, cons, Models{})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewEvaluatorValidation(t *testing.T) {
	w := dnn.ARVRWorkload()
	if _, err := NewEvaluator(dnn.Workload{}, DefaultOptions(), DefaultConstraints(), Models{}); err == nil {
		t.Error("empty workload accepted")
	}
	if _, err := NewEvaluator(w, Options{}, DefaultConstraints(), Models{}); err == nil {
		t.Error("zero options accepted")
	}
	if _, err := NewEvaluator(w, DefaultOptions(), Constraints{}, Models{}); err == nil {
		t.Error("zero constraints accepted")
	}
}

// TestPaper2DWinnerFeasible pins the calibration anchor: the paper's 2-D
// 400 MHz configuration (200x200, 3x1,024 KB, 2x1 at 1,700 um) must be
// thermally feasible at 75 C and meet 15 fps, with a peak temperature in
// the low 70s (the paper reports 72.11 C).
func TestPaper2DWinnerFeasible(t *testing.T) {
	e := testEvaluator(t, Tech2D, 400, 15, 75)
	ev, err := e.Evaluate(DesignPoint{ArrayDim: 200, ICSUM: 1700})
	if err != nil {
		t.Fatal(err)
	}
	if ev.Mesh.Count() != 2 {
		t.Errorf("mesh %v, want 2 chiplets (paper: 2x grid)", ev.Mesh)
	}
	if !ev.Feasible {
		t.Errorf("paper's winning point infeasible: %v (peak %.1f C)", ev.Violations, ev.PeakTempC)
	}
	if ev.PeakTempC < 65 || ev.PeakTempC > 75 {
		t.Errorf("peak %.1f C outside the expected low-70s band (paper: 72.11)", ev.PeakTempC)
	}
}

// TestICSControlsChipletCount: the paper's Table V mechanism — at
// 1,700 um two 200x200 chiplets fit; tightening to 1,400 um lets the mesh
// estimator pack three.
func TestICSControlsChipletCount(t *testing.T) {
	e := testEvaluator(t, Tech2D, 400, 30, 85)
	at := func(ics int) int {
		ev, err := e.Evaluate(DesignPoint{ArrayDim: 200, ICSUM: ics})
		if err != nil {
			t.Fatal(err)
		}
		return ev.Mesh.Count()
	}
	if n := at(1700); n != 2 {
		t.Errorf("200x200 at 1,700 um: %d chiplets, want 2", n)
	}
	if n := at(1400); n != 3 {
		t.Errorf("200x200 at 1,400 um: %d chiplets, want 3", n)
	}
}

// Test3DMeshIs2x2: the paper's 3-D configurations around 196x196 derive
// 2x2 meshes at moderate spacing.
func Test3DMeshIs2x2(t *testing.T) {
	e := testEvaluator(t, Tech3D, 400, 30, 75)
	ev, err := e.Evaluate(DesignPoint{ArrayDim: 196, ICSUM: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if ev.Mesh.Count() != 4 || ev.Mesh.Rows != 2 || ev.Mesh.Cols != 2 {
		t.Errorf("3-D 196x196 at 1 mm: mesh %v, want 2x2", ev.Mesh)
	}
}

// TestFrequencyHeats: 500 MHz runs the same configuration hotter than
// 400 MHz (the paper's 72.11 -> 77.53 C shift for 200x200).
func TestFrequencyHeats(t *testing.T) {
	p := DesignPoint{ArrayDim: 200, ICSUM: 1700}
	e400 := testEvaluator(t, Tech2D, 400, 15, 85)
	e500 := testEvaluator(t, Tech2D, 500, 15, 85)
	ev400, err := e400.Evaluate(p)
	if err != nil {
		t.Fatal(err)
	}
	ev500, err := e500.Evaluate(p)
	if err != nil {
		t.Fatal(err)
	}
	dT := ev500.PeakTempC - ev400.PeakTempC
	if dT < 2 || dT > 12 {
		t.Errorf("500-400 MHz delta = %.1f C, want 2..12 (paper: ~5.4)", dT)
	}
}

// TestTinyArrayViolatesLatency: W1's original pick (16x16, 24 KB) misses
// the 30 fps budget by a large factor (the paper reports 36x).
func TestTinyArrayViolatesLatency(t *testing.T) {
	e := testEvaluator(t, Tech2D, 400, 30, 85)
	ev, err := e.Evaluate(DesignPoint{ArrayDim: 16, ICSUM: 800})
	if err != nil {
		t.Fatal(err)
	}
	if ev.Feasible {
		t.Error("16x16 configuration reported feasible")
	}
	if ev.LatencyFactor < 10 {
		t.Errorf("latency factor %.1fx, want a gross (>10x) violation", ev.LatencyFactor)
	}
	if !contains(ev.Violations, "latency") {
		t.Errorf("violations %v missing latency", ev.Violations)
	}
}

// TestOversizedChipletArea: a maximal array with maximal SRAM must be
// rejected as an area violation (it cannot fit the 8 mm interposer).
func TestOversizedChipletArea(t *testing.T) {
	opts := DefaultOptions()
	opts.Grid = 24
	cons := DefaultConstraints()
	cons.InterposerMM = 3 // shrink the interposer to force the violation
	e, err := NewEvaluator(dnn.ARVRWorkload(), opts, cons, Models{})
	if err != nil {
		t.Fatal(err)
	}
	ev, err := e.Evaluate(DesignPoint{ArrayDim: 256, ICSUM: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if ev.Fits {
		t.Error("oversized chiplet reported as fitting")
	}
	if !contains(ev.Violations, "area") {
		t.Errorf("violations %v missing area", ev.Violations)
	}
	if !math.IsInf(ev.Objective, 1) {
		t.Errorf("infeasible objective %g, want +Inf", ev.Objective)
	}
}

// TestDisableThermalSkipsTemperature: SC2 mode reports NaN peak
// temperature and checks dynamic power only.
func TestDisableThermalSkipsTemperature(t *testing.T) {
	opts := DefaultOptions()
	opts.Grid = 24
	opts.DisableThermal = true
	e, err := NewEvaluator(dnn.ARVRWorkload(), opts, DefaultConstraints(), Models{})
	if err != nil {
		t.Fatal(err)
	}
	ev, err := e.Evaluate(DesignPoint{ArrayDim: 200, ICSUM: 1700})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(ev.PeakTempC) {
		t.Errorf("peak temp %.1f with thermal disabled, want NaN", ev.PeakTempC)
	}
	if ev.LeakageW != 0 {
		t.Errorf("leakage %.2f W with thermal disabled, want 0", ev.LeakageW)
	}
}

// TestEvaluationCached: repeated evaluation returns the identical object.
func TestEvaluationCached(t *testing.T) {
	e := testEvaluator(t, Tech2D, 400, 30, 85)
	p := DesignPoint{ArrayDim: 100, ICSUM: 500}
	a, err := e.Evaluate(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Evaluate(p)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("cache miss on repeated evaluation")
	}
	if e.Explored() != 1 {
		t.Errorf("explored = %d, want 1", e.Explored())
	}
}

// TestFullUpgradesCachedEvaluation: a DSE evaluation is upgraded, not
// reused, when a full report is requested later.
func TestFullUpgradesCachedEvaluation(t *testing.T) {
	e := testEvaluator(t, Tech2D, 400, 30, 85)
	p := DesignPoint{ArrayDim: 16, ICSUM: 0} // latency-infeasible: DSE skips thermal
	short, err := e.Evaluate(p)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(short.PeakTempC) {
		t.Fatal("DSE evaluation of an infeasible point ran thermal analysis")
	}
	full, err := e.EvaluateFull(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(full.PeakTempC) {
		t.Error("full evaluation missing temperature")
	}
	again, err := e.EvaluateFull(p)
	if err != nil {
		t.Fatal(err)
	}
	if again != full {
		t.Error("full evaluation not cached")
	}
}

// TestObjectiveWeights: Eq. (6) responds to alpha and beta.
func TestObjectiveWeights(t *testing.T) {
	p := DesignPoint{ArrayDim: 200, ICSUM: 1700}
	mk := func(alpha, beta float64) *Evaluation {
		opts := DefaultOptions()
		opts.Grid = 24
		opts.Alpha, opts.Beta = alpha, beta
		cons := DefaultConstraints()
		cons.FPS = 15
		e, err := NewEvaluator(dnn.ARVRWorkload(), opts, cons, Models{})
		if err != nil {
			t.Fatal(err)
		}
		ev, err := e.Evaluate(p)
		if err != nil {
			t.Fatal(err)
		}
		return ev
	}
	both := mk(1, 1)
	costOnly := mk(1, 0)
	dramOnly := mk(0, 1)
	if math.Abs(both.Objective-(costOnly.Objective+dramOnly.Objective)) > 1e-9 {
		t.Errorf("objective not additive: %g != %g + %g", both.Objective, costOnly.Objective, dramOnly.Objective)
	}
	wantCost := both.MCMCost.Total / DefaultOptions().RefCostUSD
	if math.Abs(costOnly.Objective-wantCost) > 1e-9 {
		t.Errorf("cost-only objective %g, want %g", costOnly.Objective, wantCost)
	}
}

// TestWeightStationaryDataflowWorks: the evaluator accepts the WS
// dataflow end to end.
func TestWeightStationaryDataflowWorks(t *testing.T) {
	opts := DefaultOptions()
	opts.Grid = 24
	opts.Dataflow = systolic.WeightStationary
	cons := DefaultConstraints()
	cons.FPS = 15
	e, err := NewEvaluator(dnn.ARVRWorkload(), opts, cons, Models{})
	if err != nil {
		t.Fatal(err)
	}
	ev, err := e.Evaluate(DesignPoint{ArrayDim: 200, ICSUM: 1700})
	if err != nil {
		t.Fatal(err)
	}
	if ev.MakespanSec <= 0 || math.IsNaN(ev.PeakTempC) && ev.Fits && len(ev.Violations) == 0 {
		t.Errorf("WS evaluation incomplete: %+v", ev)
	}
}

// TestPeakOPSDefinition: peak OPS = 2 * chiplets * PEs * freq.
func TestPeakOPSDefinition(t *testing.T) {
	e := testEvaluator(t, Tech2D, 400, 15, 85)
	ev, err := e.Evaluate(DesignPoint{ArrayDim: 200, ICSUM: 1700})
	if err != nil {
		t.Fatal(err)
	}
	want := 2.0 * float64(ev.Mesh.Count()) * 200 * 200 * 400e6
	if math.Abs(ev.PeakOPS-want) > 1 {
		t.Errorf("PeakOPS = %g, want %g", ev.PeakOPS, want)
	}
	if ev.OPS <= 0 || ev.OPS > ev.PeakOPS {
		t.Errorf("effective OPS %g outside (0, peak %g]", ev.OPS, ev.PeakOPS)
	}
}

// TestLeakageIncreasesTotalPower: the full model's total power exceeds
// its dynamic part for any real configuration.
func TestLeakageIncreasesTotalPower(t *testing.T) {
	e := testEvaluator(t, Tech2D, 400, 15, 85)
	ev, err := e.Evaluate(DesignPoint{ArrayDim: 200, ICSUM: 1700})
	if err != nil {
		t.Fatal(err)
	}
	if ev.TotalPowerW <= ev.DynamicPowerW {
		t.Errorf("total %.2f W not above dynamic %.2f W", ev.TotalPowerW, ev.DynamicPowerW)
	}
	if ev.LeakageW <= 0 {
		t.Errorf("leakage %.2f W not positive", ev.LeakageW)
	}
}

// Test3DRunsHotterThanIso2D: the same design point evaluated as a 3-D
// stack reaches a higher peak temperature than as 2-D chiplets (denser
// footprints, stacked tiers).
func Test3DRunsHotterThanIso2D(t *testing.T) {
	p := DesignPoint{ArrayDim: 216, ICSUM: 700}
	e2 := testEvaluator(t, Tech2D, 500, 15, 85)
	e3 := testEvaluator(t, Tech3D, 500, 15, 85)
	ev2, err := e2.EvaluateFull(p)
	if err != nil {
		t.Fatal(err)
	}
	ev3, err := e3.EvaluateFull(p)
	if err != nil {
		t.Fatal(err)
	}
	if ev3.PeakTempC <= ev2.PeakTempC {
		t.Errorf("3-D peak %.1f C not above 2-D peak %.1f C", ev3.PeakTempC, ev2.PeakTempC)
	}
}

// TestLeakIterationsBand: the paper reports temperature-leakage
// convergence within 3 (2-D) to 6 (3-D) HotSpot iterations; the warm
// start keeps the loop in a comparable band.
func TestLeakIterationsBand(t *testing.T) {
	e := testEvaluator(t, Tech2D, 400, 15, 85)
	ev, err := e.Evaluate(DesignPoint{ArrayDim: 200, ICSUM: 1700})
	if err != nil {
		t.Fatal(err)
	}
	if ev.LeakIters < 1 || ev.LeakIters > 8 {
		t.Errorf("leakage iterations = %d, want 1..8", ev.LeakIters)
	}
}

func contains(ss []string, want string) bool {
	for _, s := range ss {
		if s == want {
			return true
		}
	}
	return false
}
