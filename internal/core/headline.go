package core

import (
	"fmt"
	"strings"
)

// Headline aggregates the paper's Sec. IV-B summary claims: TESA's cost
// and DRAM-power savings against the temperature-unaware baselines, and
// the 2-D vs 3-D comparison at the relaxed 85 C budget.
type Headline struct {
	// SC1 comparison at 500 MHz, 30 fps, 85 C, 2-D (the baseline's own
	// corner; Fig. 5). Savings are 1 - TESA/SC1.
	SC1CostSaving, SC1DRAMSaving float64
	SC1OK                        bool

	// SC2 comparison at the strict 75 C corner, where the thermal
	// constraint actually binds and TESA must deviate from the
	// temperature-blind sizing: the paper reports TESA improving cost by
	// ~17% while paying ~38% more DRAM power (smaller, cooler chiplets
	// refetch more).
	SC2CostSaving, SC2DRAMDelta float64
	SC2OK                       bool

	// 3-D vs 2-D at the 85 C budget over both frequencies and both frame
	// rates: peak-OPS gain, cost increase, DRAM increase (averages), plus
	// the best-corner OPS gain (the paper's "up to" number).
	OPSGain3D, OPSGain3DMax, CostDelta3D, DRAMDelta3D float64
	Pairs3D2D                                         int
}

// RunHeadline computes the headline comparison. It reuses full corner
// optimizations, so it is the most expensive experiment driver.
func (cfg *ExperimentConfig) RunHeadline() (*Headline, error) {
	h := &Headline{}

	// TESA at SC1's corner.
	corner := Corner{Tech2D, 500, 30, 85}
	tesa, err := cfg.RunCorner(corner)
	if err != nil {
		return nil, err
	}
	opts, cons := cfg.optionsFor(corner)
	sc1, err := RunSC1(cfg.Workload, opts, cons, cfg.Models, cfg.Space)
	if err != nil {
		return nil, err
	}
	if tesa.Found && sc1.Found {
		h.SC1OK = true
		h.SC1CostSaving = 1 - tesa.Eval.MCMCost.Total/sc1.Actual.MCMCost.Total
		h.SC1DRAMSaving = 1 - tesa.Eval.DRAMPowerW/sc1.Actual.DRAMPowerW
	}
	// SC2 at the binding 75 C corner.
	strict := Corner{Tech2D, 500, 15, 75}
	tesaStrict, err := cfg.RunCorner(strict)
	if err != nil {
		return nil, err
	}
	sOpts, sCons := cfg.optionsFor(strict)
	sc2, err := RunSC2(cfg.Workload, sOpts, sCons, cfg.Models, cfg.Space, cfg.Seed)
	if err != nil {
		return nil, err
	}
	if tesaStrict.Found && sc2.Found {
		h.SC2OK = true
		h.SC2CostSaving = 1 - tesaStrict.Eval.MCMCost.Total/sc2.Actual.MCMCost.Total
		h.SC2DRAMDelta = tesaStrict.Eval.DRAMPowerW/sc2.Actual.DRAMPowerW - 1
	}

	// 2-D vs 3-D at 85 C, both frequencies and frame rates.
	var opsGain, costDelta, dramDelta float64
	for _, f := range []float64{400, 500} {
		for _, fps := range []float64{15, 30} {
			r2, err := cfg.RunCorner(Corner{Tech2D, f, fps, 85})
			if err != nil {
				return nil, err
			}
			r3, err := cfg.RunCorner(Corner{Tech3D, f, fps, 85})
			if err != nil {
				return nil, err
			}
			if !r2.Found || !r3.Found {
				continue
			}
			gain := r3.Eval.PeakOPS/r2.Eval.PeakOPS - 1
			opsGain += gain
			if gain > h.OPSGain3DMax {
				h.OPSGain3DMax = gain
			}
			costDelta += r3.Eval.MCMCost.Total/r2.Eval.MCMCost.Total - 1
			dramDelta += r3.Eval.DRAMPowerW/r2.Eval.DRAMPowerW - 1
			h.Pairs3D2D++
		}
	}
	if h.Pairs3D2D > 0 {
		n := float64(h.Pairs3D2D)
		h.OPSGain3D = opsGain / n
		h.CostDelta3D = costDelta / n
		h.DRAMDelta3D = dramDelta / n
	}
	return h, nil
}

// Format renders the headline numbers next to the paper's.
func (h *Headline) Format() string {
	var b strings.Builder
	b.WriteString("Headline comparison (paper's Sec. IV-B claims in brackets):\n")
	if h.SC1OK {
		fmt.Fprintf(&b, "  TESA vs SC1:  MCM cost saving %5.1f%% [44%%], DRAM power saving %5.1f%% [63%%]\n",
			100*h.SC1CostSaving, 100*h.SC1DRAMSaving)
	} else {
		b.WriteString("  TESA vs SC1:  not comparable (one side infeasible)\n")
	}
	if h.SC2OK {
		fmt.Fprintf(&b, "  TESA vs SC2:  MCM cost saving %5.1f%% [17%%], DRAM power delta %+5.1f%% [+37.8%%]\n",
			100*h.SC2CostSaving, 100*h.SC2DRAMDelta)
	} else {
		b.WriteString("  TESA vs SC2:  not comparable (one side infeasible)\n")
	}
	if h.Pairs3D2D > 0 {
		fmt.Fprintf(&b, "  3-D vs 2-D (85 C, %d corners): OPS %+5.1f%% avg / %+5.1f%% best [paper: up to +39%%], cost %+5.1f%% [+61%%], DRAM %+5.1f%% [+66%%]\n",
			h.Pairs3D2D, 100*h.OPSGain3D, 100*h.OPSGain3DMax, 100*h.CostDelta3D, 100*h.DRAMDelta3D)
	} else {
		b.WriteString("  3-D vs 2-D: no comparable corners\n")
	}
	return b.String()
}
