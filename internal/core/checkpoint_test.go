package core

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"

	"tesa/internal/telemetry"
)

// cancellingSink wraps a checkpoint sink and cancels the sweep once n
// shard records have been written — so the "kill" lands exactly on a
// shard boundary with everything before it flushed, like a real SIGINT.
type cancellingSink struct {
	mu     sync.Mutex
	inner  telemetry.EventSink
	shards int
	after  int
	cancel context.CancelFunc
}

func (s *cancellingSink) Emit(event string, fields map[string]any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inner.Emit(event, fields)
	if event == ckptShardEvent {
		if s.shards++; s.shards == s.after {
			s.cancel()
		}
	}
}

func (s *cancellingSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner.Flush()
}

// TestSweepCheckpointResume is the issue's acceptance scenario in
// miniature: checkpoint a sweep, kill it at ~50%, resume on a fresh
// evaluator, and land on the identical result while re-evaluating well
// under 60% of the space.
func TestSweepCheckpointResume(t *testing.T) {
	space := tinySpace()
	const shardSize = 5 // 100 points -> 20 shards

	ref := testEvaluator(t, Tech2D, 400, 15, 85)
	want, err := ref.ExhaustiveContext(context.Background(), space, &SweepOptions{ShardSize: shardSize})
	if err != nil {
		t.Fatal(err)
	}
	if want.Best == nil {
		t.Fatal("reference sweep found nothing; the space no longer exercises the scenario")
	}
	if want.Shards != 20 || want.Evaluated != 100 || want.Resumed != 0 {
		t.Fatalf("reference decomposition off: %+v", want)
	}

	// Interrupted run: cancel after 10 of 20 shard records.
	var buf bytes.Buffer
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sink := &cancellingSink{inner: telemetry.NewJSONLSink(&buf), after: 10, cancel: cancel}
	killed := testEvaluator(t, Tech2D, 400, 15, 85)
	_, err = killed.ExhaustiveContext(ctx, space, &SweepOptions{ShardSize: shardSize, Checkpoint: sink})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted sweep err = %v, want context.Canceled", err)
	}

	state, err := LoadCheckpoint(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if state.Fingerprint != space.Fingerprint() {
		t.Errorf("checkpoint fingerprint %s != space %s", state.Fingerprint, space.Fingerprint())
	}
	if state.Completed() < 10 || state.Completed() >= 20 {
		t.Fatalf("checkpointed %d of 20 shards, want a partial run with >= 10", state.Completed())
	}

	// Resume on a fresh evaluator (cold cache, like a new process).
	fresh := testEvaluator(t, Tech2D, 400, 15, 85)
	got, err := fresh.ExhaustiveContext(context.Background(), space,
		&SweepOptions{ShardSize: shardSize, ResumeFrom: state})
	if err != nil {
		t.Fatal(err)
	}
	if got.Best == nil || got.Best.Point != want.Best.Point || got.Best.Objective != want.Best.Objective {
		t.Errorf("resumed best %+v != uninterrupted best %v/%.6f",
			got.Best, want.Best.Point, want.Best.Objective)
	}
	if got.Feasible != want.Feasible {
		t.Errorf("resumed feasible count %d != %d", got.Feasible, want.Feasible)
	}
	if got.Evaluated+got.Resumed != got.Total {
		t.Errorf("coverage gap: %d evaluated + %d resumed != %d total", got.Evaluated, got.Resumed, got.Total)
	}
	// The issue's bar: a run killed at ~50% must re-evaluate < 60% of
	// the space. 10 checkpointed shards leave at most 50 points.
	if got.Evaluated > 60*got.Total/100 {
		t.Errorf("resume re-evaluated %d of %d points (> 60%%)", got.Evaluated, got.Total)
	}
}

// TestSweepResumeValidation: a resume state must match the swept space
// and decomposition.
func TestSweepResumeValidation(t *testing.T) {
	space := Space{ArrayDims: []int{196, 220}, ICSUMs: []int{200, 800}}
	good := &CheckpointState{
		Fingerprint: space.Fingerprint(), Total: 4, ShardSize: 2, Shards: 2,
		Done: map[int]ShardCheckpoint{0: {Shard: 0}},
	}
	e := testEvaluator(t, Tech2D, 400, 15, 85)

	wrongSpace := *good
	wrongSpace.Fingerprint = "0000000000000000"
	if _, err := e.ExhaustiveContext(context.Background(), space,
		&SweepOptions{ShardSize: 2, ResumeFrom: &wrongSpace}); !errors.Is(err, ErrCheckpointCorrupt) {
		t.Errorf("foreign-space resume err = %v, want ErrCheckpointCorrupt", err)
	}

	wrongShard := *good
	wrongShard.ShardSize, wrongShard.Shards = 3, 2
	if _, err := e.ExhaustiveContext(context.Background(), space,
		&SweepOptions{ShardSize: 2, ResumeFrom: &wrongShard}); !errors.Is(err, ErrCheckpointCorrupt) {
		t.Errorf("mismatched-decomposition resume err = %v, want ErrCheckpointCorrupt", err)
	}

	// ShardSize 0 adopts the checkpoint's decomposition.
	res, err := e.ExhaustiveContext(context.Background(), space, &SweepOptions{ResumeFrom: good})
	if err != nil {
		t.Fatal(err)
	}
	if res.Resumed != 2 || res.Evaluated != 2 {
		t.Errorf("adopted-decomposition resume: %d resumed, %d evaluated, want 2/2", res.Resumed, res.Evaluated)
	}
}

const ckptHeaderLine = `{"event":"checkpoint.header","space":"a1b2c3d4e5f60718","total":10,"shard_size":5,"shards":2}`

// TestLoadCheckpointCorruption walks the failure matrix of the loader.
// A semantically bad record is only provably corruption (rather than the
// torn tail of a killed run) when another line follows it, so each bad
// record here is followed by a valid one.
func TestLoadCheckpointCorruption(t *testing.T) {
	shard := `{"event":"checkpoint.shard","shard":0,"feasible":3,"found":true,"best_dim":196,"best_ics":200,"best_obj":1.5}`
	cases := []struct {
		name  string
		input string
	}{
		{"empty stream", ""},
		{"missing header", shard},
		{"garbage mid-file", ckptHeaderLine + "\n{garbage\n" + shard},
		{"conflicting headers", ckptHeaderLine + "\n" + strings.Replace(ckptHeaderLine, `"total":10`, `"total":99`, 1)},
		{"shard out of range", ckptHeaderLine + "\n" + strings.Replace(shard, `"shard":0`, `"shard":7`, 1) + "\n" + shard},
		{"incomplete header", `{"event":"checkpoint.header","space":"x","total":10}` + "\n" + shard},
		{"found without point", ckptHeaderLine + "\n" + `{"event":"checkpoint.shard","shard":0,"feasible":1,"found":true}` + "\n" + shard},
		{"non-integer count", ckptHeaderLine + "\n" + strings.Replace(shard, `"feasible":3`, `"feasible":3.7`, 1) + "\n" + shard},
		{"incomplete poisoned mid-file", ckptHeaderLine + "\n" + `{"event":"checkpoint.poisoned","dim":196}` + "\n" + shard},
	}
	for _, tc := range cases {
		if _, err := LoadCheckpoint(strings.NewReader(tc.input)); !errors.Is(err, ErrCheckpointCorrupt) {
			t.Errorf("%s: err = %v, want ErrCheckpointCorrupt", tc.name, err)
		}
	}
}

// TestLoadCheckpointTolerance: the loader accepts everything a real
// append-mode run can legitimately leave behind.
func TestLoadCheckpointTolerance(t *testing.T) {
	shard0 := `{"event":"checkpoint.shard","shard":0,"feasible":3,"found":true,"best_dim":196,"best_ics":200,"best_obj":1.5}`
	shard1 := `{"event":"checkpoint.shard","shard":1,"feasible":0,"found":false}`

	// A truncated final line is the tail of a run killed mid-write — and
	// the cut can land anywhere: mid-JSON, or after valid JSON but before
	// the record's fields were all written.
	tails := []string{
		`{"event":"checkpoint.sh`,
		`{"event":"checkpoint.shard","shard":7,"feasible":0,"found":false}`, // out-of-range index
		`{"event":"checkpoint.shard","shard":1,"feasible":1,"found":true}`,  // found without point
		`{"event":"checkpoint.poisoned","dim":196}`,                         // cut before ics
	}
	for _, tail := range tails {
		st, err := LoadCheckpoint(strings.NewReader(ckptHeaderLine + "\n" + shard0 + "\n" + tail))
		if err != nil {
			t.Fatalf("truncated tail %q rejected: %v", tail, err)
		}
		if st.Completed() != 1 || st.Done[0].BestObj != 1.5 {
			t.Errorf("truncated-tail state = %+v", st)
		}
	}

	// An appended resume repeats the identical header; duplicate shard
	// records overwrite; foreign trace events interleave; blank lines
	// are skipped.
	mixed := strings.Join([]string{
		ckptHeaderLine,
		`{"event":"sweep.done","total":10}`,
		shard0,
		"",
		ckptHeaderLine,
		shard0,
		shard1,
	}, "\n")
	st, err := LoadCheckpoint(strings.NewReader(mixed))
	if err != nil {
		t.Fatalf("legitimate append stream rejected: %v", err)
	}
	if st.Completed() != 2 || st.Total != 10 || st.ShardSize != 5 {
		t.Errorf("append-stream state = %+v", st)
	}
	if st.CompletedPoints() != 10 {
		t.Errorf("completed points = %d, want 10", st.CompletedPoints())
	}
}

// TestLoadCheckpointRoundTrip: what the writers emit, the loader reads
// back verbatim.
func TestLoadCheckpointRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sink := telemetry.NewJSONLSink(&buf)
	if err := WriteCheckpointHeader(sink, "cafe0123cafe0123", 17, 5, 4, "deadbeef00112233"); err != nil {
		t.Fatal(err)
	}
	shards := []ShardCheckpoint{
		{Shard: 0, Feasible: 2, Found: true, Best: DesignPoint{ArrayDim: 196, ICSUM: 200}, BestObj: 2.25},
		{Shard: 3, Feasible: 0},
	}
	for _, cp := range shards {
		if err := WriteShardCheckpoint(sink, cp); err != nil {
			t.Fatal(err)
		}
	}
	poisoned := []QuarantinedPoint{
		{Point: DesignPoint{ArrayDim: 200, ICSUM: 400}, Stage: "thermal", Reason: "solver-diverged",
			Trace: []string{"+0s stage.systolic dim=200 ics=400", "+1ms stage.thermal dim=200 ics=400"}},
		{Point: DesignPoint{ArrayDim: 204, ICSUM: 0}, Stage: "systolic", Reason: "panic"},
	}
	for _, q := range poisoned {
		if err := WritePoisonedCheckpoint(sink, q); err != nil {
			t.Fatal(err)
		}
	}
	st, err := LoadCheckpoint(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if st.Fingerprint != "cafe0123cafe0123" || st.Total != 17 || st.ShardSize != 5 || st.Shards != 4 {
		t.Errorf("header round-trip: %+v", st)
	}
	if st.RunID != "deadbeef00112233" {
		t.Errorf("run id round-trip: %q", st.RunID)
	}
	for _, cp := range shards {
		if got := st.Done[cp.Shard]; got != cp {
			t.Errorf("shard %d round-trip: %+v != %+v", cp.Shard, got, cp)
		}
	}
	if len(st.Poisoned) != len(poisoned) {
		t.Fatalf("poisoned round-trip: %d records, want %d", len(st.Poisoned), len(poisoned))
	}
	for _, q := range poisoned {
		if got := st.Poisoned[q.Point]; !reflect.DeepEqual(got, q) {
			t.Errorf("poisoned %v round-trip: %+v != %+v", q.Point, got, q)
		}
	}
	// The short final shard (17 points, size 5): shard 3 covers 2.
	if n := shardLen(3, 5, 17); n != 2 {
		t.Errorf("shardLen(3,5,17) = %d, want 2", n)
	}
}

// TestBetterPointTieBreak: the deterministic incumbent order — the PR's
// tie-break bugfix — is a strict total order.
func TestBetterPointTieBreak(t *testing.T) {
	a := DesignPoint{ArrayDim: 126, ICSUM: 0}
	b := DesignPoint{ArrayDim: 126, ICSUM: 400}
	c := DesignPoint{ArrayDim: 128, ICSUM: 0}
	if !BetterPoint(1.0, a, 1.0, b) || BetterPoint(1.0, b, 1.0, a) {
		t.Error("ICS tie-break is not a strict order")
	}
	if !BetterPoint(1.0, b, 1.0, c) || BetterPoint(1.0, c, 1.0, b) {
		t.Error("array-dim tie-break is not a strict order")
	}
	if !BetterPoint(0.5, c, 1.0, a) {
		t.Error("objective must dominate the lexicographic order")
	}
	if BetterPoint(1.0, a, 1.0, a) {
		t.Error("a point must not beat itself")
	}
}

// TestShardSizeErrorTyped: a shard-size mismatch is no longer a generic
// corruption string — errors.As recovers the expected vs found sizes
// and the run id of the header that recorded them, on both the resume
// path and the conflicting-header path of the loader.
func TestShardSizeErrorTyped(t *testing.T) {
	space := Space{ArrayDims: []int{196, 220}, ICSUMs: []int{200, 800}}
	st := &CheckpointState{
		Fingerprint: space.Fingerprint(), Total: 4, ShardSize: 4, Shards: 1,
		RunID: "feedfacefeedface",
		Done:  map[int]ShardCheckpoint{},
	}
	e := testEvaluator(t, Tech2D, 400, 15, 85)
	_, err := e.ExhaustiveContext(context.Background(), space,
		&SweepOptions{ShardSize: 2, ResumeFrom: st})
	var sse *ShardSizeError
	if !errors.As(err, &sse) {
		t.Fatalf("resume err = %v, want *ShardSizeError", err)
	}
	if sse.Expected != 2 || sse.Found != 4 || sse.RunID != "feedfacefeedface" {
		t.Errorf("ShardSizeError = %+v, want expected 2, found 4, run feedfacefeedface", sse)
	}
	if !errors.Is(err, ErrCheckpointCorrupt) {
		t.Errorf("typed error must stay in the ErrCheckpointCorrupt family, got %v", err)
	}
	for _, part := range []string{"2", "4", "feedfacefeedface"} {
		if !strings.Contains(sse.Error(), part) {
			t.Errorf("message %q does not name %q", sse.Error(), part)
		}
	}

	// Conflicting headers of one stream that differ only in shard_size
	// produce the same typed error, attributed to the first header's run.
	withRun := strings.Replace(ckptHeaderLine, `"shards":2`, `"shards":2,"run":"cafebabecafebabe"`, 1)
	resized := strings.Replace(ckptHeaderLine, `"shard_size":5`, `"shard_size":2`, 1)
	resized = strings.Replace(resized, `"shards":2`, `"shards":2`, 1)
	_, err = LoadCheckpoint(strings.NewReader(withRun + "\n" + resized))
	sse = nil
	if !errors.As(err, &sse) {
		t.Fatalf("loader err = %v, want *ShardSizeError", err)
	}
	if sse.Expected != 5 || sse.Found != 2 || sse.RunID != "cafebabecafebabe" {
		t.Errorf("loader ShardSizeError = %+v, want expected 5, found 2, run cafebabecafebabe", sse)
	}
}
