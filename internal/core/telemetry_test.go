package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"tesa/internal/telemetry"
)

// TestEvaluatorHitRateAccessors: Evaluations counts every lookup,
// CacheHitRate the memoized fraction.
func TestEvaluatorHitRateAccessors(t *testing.T) {
	e := testEvaluator(t, Tech2D, 400, 30, 85)
	if e.Evaluations() != 0 || e.CacheHitRate() != 0 {
		t.Fatal("fresh evaluator reports prior traffic")
	}
	p := DesignPoint{ArrayDim: 100, ICSUM: 500}
	for i := 0; i < 4; i++ {
		if _, err := e.Evaluate(p); err != nil {
			t.Fatal(err)
		}
	}
	if got := e.Evaluations(); got != 4 {
		t.Errorf("evaluations = %d, want 4", got)
	}
	if got := e.CacheHitRate(); got != 0.75 {
		t.Errorf("hit rate = %g, want 0.75", got)
	}
}

// TestPipelineTelemetry: an instrumented evaluator records per-stage
// timings and cache counters; an uninstrumented one records nothing and
// still works.
func TestPipelineTelemetry(t *testing.T) {
	e := testEvaluator(t, Tech2D, 400, 30, 85)
	tel := telemetry.New(nil)
	e.Instrument(tel)
	if e.Telemetry() != tel {
		t.Fatal("Telemetry() does not return the attached hub")
	}
	p := DesignPoint{ArrayDim: 100, ICSUM: 500}
	if _, err := e.Evaluate(p); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Evaluate(p); err != nil {
		t.Fatal(err)
	}
	reg := tel.Registry()
	for _, h := range []string{"pipeline.total", "stage.systolic", "stage.floorplan", "stage.sched"} {
		if n := reg.Histogram(h).Snapshot().Count; n != 1 {
			t.Errorf("%s count = %d, want 1", h, n)
		}
	}
	if hit := reg.Counter("evaluator.cache.hit").Value(); hit != 1 {
		t.Errorf("cache.hit = %d, want 1", hit)
	}
	if miss := reg.Counter("evaluator.cache.miss").Value(); miss != 1 {
		t.Errorf("cache.miss = %d, want 1", miss)
	}
}

// TestOptimizeEmitsTrace: an Optimize run on the validation space
// streams annealer start/level/done and an optimize.done JSONL record.
func TestOptimizeEmitsTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("optimize run in -short mode")
	}
	var buf bytes.Buffer
	tel := telemetry.New(telemetry.NewJSONLSink(&buf))
	e := testEvaluator(t, Tech2D, 400, 15, 85)
	e.Instrument(tel)
	res, err := e.Optimize(ValidationSpace(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := tel.Flush(); err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var rec struct {
			Event string `json:"event"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("trace line not JSON (%v): %q", err, line)
		}
		counts[rec.Event]++
	}
	if counts["anneal.start"] != 3 || counts["anneal.done"] != 3 {
		t.Errorf("lifecycle events %v, want 3 starts and 3 dones", counts)
	}
	if counts["anneal.level"] == 0 {
		t.Error("no per-level events in the trace")
	}
	if counts["optimize.done"] != 1 {
		t.Errorf("optimize.done count %d, want 1", counts["optimize.done"])
	}
	if res.Duration <= 0 {
		t.Errorf("optimize duration %v not populated", res.Duration)
	}
	if res.CacheHitRate <= 0 || res.CacheHitRate >= 1 {
		t.Errorf("optimize cache hit rate %g out of (0,1)", res.CacheHitRate)
	}
	for i, r := range res.PerStart {
		if r.Levels <= 0 || r.Duration <= 0 {
			t.Errorf("per-start %d summary not self-contained: %+v", i, r)
		}
	}
}
