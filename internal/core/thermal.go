package core

import (
	"errors"
	"fmt"
	"math"

	"tesa/internal/floorplan"
	"tesa/internal/sram"
	"tesa/internal/thermal"
)

// maxLeakIters bounds the leakage-temperature fixed point. The paper
// reports convergence in up to 3 (2-D) and 6 (3-D) HotSpot iterations;
// anything still diverging well past that is classified as runaway.
const maxLeakIters = 12

// leakConvergedC is the per-chiplet temperature delta below which the
// leakage-temperature loop is considered converged.
const leakConvergedC = 0.1

// packageMarginMM extends the thermal domain beyond the interposer on
// each side: the lid and mold compound of a real package reach past the
// interposer, so heat from chiplets near the interposer edge still
// spreads laterally. Without this margin the adiabatic boundary would sit
// directly against edge chiplets and invert the corner-coolest assumption
// the paper's scheduler relies on.
const packageMarginMM = 1.5

// phasePower is one execution phase's per-chiplet dynamic power split.
type phasePower struct {
	arr []float64 // systolic-array dynamic watts per chiplet
	srm []float64 // SRAM (+TSV) dynamic watts per chiplet
}

func (p phasePower) totalDyn() float64 {
	var t float64
	for i := range p.arr {
		t += p.arr[i] + p.srm[i]
	}
	return t
}

// dominatedBy reports whether q is pointwise >= p (then p's steady state
// is pointwise cooler and need not be solved).
func (p phasePower) dominatedBy(q phasePower) bool {
	for i := range p.arr {
		if p.arr[i] > q.arr[i]+1e-12 || p.srm[i] > q.srm[i]+1e-12 {
			return false
		}
	}
	return true
}

// thermalFidelity is one rung of the degraded-retry ladder: the grid
// resolution and CG solver relaxation the rung solves at.
type thermalFidelity struct {
	name      string  // recorded in Evaluation.ThermalFidelity
	grid      int     // thermal grid resolution
	tolScale  float64 // CG tolerance multiplier (1 = full fidelity)
	iterScale float64 // CG iteration-budget multiplier
	lumped    bool    // skip CG entirely: 1-resistor steady-state estimate
	bound     bool    // skip CG entirely: per-column upper bound (surrogate cool side)
	// leakPinC > 0 pins the leakage evaluation at this temperature and
	// runs a single solve instead of the fixed point. Used by the
	// surrogate cool certificate: with leakage over-estimated at the
	// test temperature u, a (bound) peak <= u is a super-solution
	// G(u) <= u of the monotone leakage map, so the true fixed point
	// lies below u — iterating the fixed point at bound temperatures
	// would instead spiral to a spurious runaway whenever the
	// over-estimated loop gain exceeds one.
	leakPinC float64
}

// thermalLadder is the degraded-retry schedule for a full-fidelity grid:
// the nominal solve, then a relaxed CG tolerance with a doubled
// iteration budget, then a coarsened grid, and finally the lumped
// steady-state fallback whose closed form cannot diverge. Each rung
// trades accuracy for conditioning, so an ill-conditioned corner of the
// space still produces a (lower-fidelity) temperature instead of
// aborting the run.
func thermalLadder(grid int) []thermalFidelity {
	coarse := grid / 2
	if coarse < 8 {
		coarse = 8
	}
	return []thermalFidelity{
		{name: "full", grid: grid, tolScale: 1, iterScale: 1},
		{name: "relaxed", grid: grid, tolScale: 100, iterScale: 2},
		{name: "coarse", grid: coarse, tolScale: 100, iterScale: 2},
		{name: "lumped", grid: coarse, lumped: true},
	}
}

// thermalAnalysis runs the paper's per-phase steady-state evaluation
// with leakage-temperature convergence and fills the thermal/power
// fields of ev. CG non-convergence no longer aborts the evaluation:
// the analysis walks the degraded-fidelity ladder and only reports
// ErrSolverDiverged once every rung — including the lumped fallback —
// has failed.
func (e *Evaluator) thermalAnalysis(ev *Evaluation, profiles []netProfile, place *floorplan.Placement, est sram.Estimate) error {
	n := ev.Mesh.Count()

	// Per-phase per-chiplet dynamic power decomposition.
	var phases []phasePower
	for _, ph := range ev.Schedule.Phases {
		pp := phasePower{arr: make([]float64, n), srm: make([]float64, n)}
		for c, d := range ph.Running {
			if d < 0 {
				continue
			}
			dyn := profiles[d].dyn
			pp.arr[c] = dyn.ArrayWatts
			pp.srm[c] = dyn.SRAMWatts + dyn.TSVWatts
		}
		phases = append(phases, pp)
	}
	// Prune pointwise-dominated phases: a phase whose every chiplet
	// dissipates no more than in some other phase is strictly cooler.
	// kept must be a fresh slice: filtering in place would overwrite
	// entries the dominance scan still reads.
	kept := make([]phasePower, 0, len(phases))
	for i, p := range phases {
		dominated := false
		for j, q := range phases {
			if i != j && p.dominatedBy(q) && !(q.dominatedBy(p) && j > i) {
				dominated = true
				break
			}
		}
		if !dominated {
			kept = append(kept, p)
		}
	}
	phases = kept

	// The thermal domain is the interposer plus the package margin; the
	// chiplet block stays centered, so re-placing over the wider domain
	// preserves the geometry while giving edge chiplets lateral spreading
	// room in the lid and mold.
	domainMM := e.Cons.InterposerMM + 2*packageMarginMM
	place, err := floorplan.Place(domainMM, place.WidthMM, place.HeightMM, place.ICSmm, place.Mesh)
	if err != nil {
		return err
	}

	// Fast path: bracket the peak with the closed-form surrogates and
	// skip the grid ladder when the bracket clears the budget by the
	// guard band (DSE mode only — full reports always solve the grid).
	if e.Opts.ThermalFast && !ev.Full {
		if e.surrogatePrescreen(ev, phases, place, domainMM, est) {
			ev.ThermalRetries = 0
			return nil
		}
	}

	var lastErr error
	for attempt, fid := range thermalLadder(e.Opts.Grid) {
		if e.injected != nil && e.injected.Diverge(ev.Point.ArrayDim, ev.Point.ICSUM, attempt) {
			lastErr = fmt.Errorf("%w (injected at fidelity %s)", thermal.ErrNoConvergence, fid.name)
			continue
		}
		err := e.thermalAttempt(ev, phases, place, domainMM, est, fid)
		if err == nil {
			ev.ThermalFidelity = fid.name
			ev.ThermalRetries = attempt
			e.tel.Registry().Counter("thermal.fidelity." + fid.name).Inc()
			if attempt > 0 {
				e.tel.Registry().Counter("thermal.retry.degraded").Inc()
			}
			return nil
		}
		if !errors.Is(err, thermal.ErrNoConvergence) {
			return err
		}
		lastErr = err
	}
	return fmt.Errorf("%w: %v", ErrSolverDiverged, lastErr)
}

// thermalAttempt runs the per-phase leakage-temperature analysis at one
// fidelity rung, resetting ev's thermal fields first so a previous
// failed rung leaves no partial state behind. Only a CG non-convergence
// (thermal.ErrNoConvergence) is retryable; any other error is final.
func (e *Evaluator) thermalAttempt(ev *Evaluation, phases []phasePower, place *floorplan.Placement, domainMM float64, est sram.Estimate, fid thermalFidelity) error {
	ev.PeakTempC = math.Inf(-1)
	ev.Runaway = false
	ev.LeakIters = 0
	ev.DynamicPowerW = 0
	ev.TotalPowerW = 0
	ev.LeakageW = 0
	ev.Hottest = nil
	ev.HottestStack = nil

	n := ev.Mesh.Count()
	grid := fid.grid
	solver := thermal.SolverParams{TolScale: fid.tolScale, IterScale: fid.iterScale}
	// Fast path: route CG through the allocation-free workspace solver,
	// relax the full-fidelity rung to the documented fast tolerance
	// (still two orders of magnitude inside the 0.1 C agreement
	// contract; degraded rungs keep their own, already looser,
	// tolerances), and seed the first solve from the cached field of the
	// most recent same-geometry evaluation.
	fast := e.Opts.ThermalFast && !fid.lumped && !fid.bound
	var ws *thermal.Workspace
	var wkey warmKey
	var rises []float64
	if fast {
		if fid.tolScale <= 1 {
			solver.TolScale = thermal.FastTolScale
		}
		ws = e.workspace()
		defer e.wsPool.Put(ws)
		wkey = e.warmKeyFor(ev, grid)
		if rises = e.warm.get(wkey); rises != nil {
			e.tel.Registry().Counter("thermal.warmstart.hit").Inc()
		} else {
			e.tel.Registry().Counter("thermal.warmstart.miss").Inc()
		}
	}
	coverage := e.coverageFor(place, grid)
	// Power is injected only into the active die area (inside the 3-D
	// assembly margin); the margin silicon still conducts.
	powerPlace := place.Inset(ev.Chiplet.ActiveInsetMM)
	numPEs := ev.Point.ArrayDim * ev.Point.ArrayDim
	arrayFrac := ev.Chiplet.ArrayMM2 / ev.Chiplet.FootprintMM2
	if arrayFrac > 1 {
		arrayFrac = 1
	}
	threeD := e.Opts.Tech == Tech3D
	// Warm-start the leakage fixed point near typical operating
	// temperatures instead of ambient: the loop is a contraction for
	// every non-runaway configuration, so the start only affects the
	// iteration count, not the fixed point.
	warmStartC := e.Models.Materials.AmbientC + 15
	if fid.leakPinC > 0 {
		warmStartC = fid.leakPinC
	}

	// CG warm start: chain each solve from the previous solution (within
	// and across phases — the geometry is identical, only power changes;
	// the fast path additionally seeded rises from the warm-start cache
	// above).
	solveIters := e.tel.Registry().Counter("thermal.solve.iterations")
	for _, pp := range phases {
		tArr := fill(n, warmStartC)
		tSrm := fill(n, warmStartC)
		var res *thermal.Result
		var stk *thermal.Stack
		var leakW float64
		iters := 0
		runaway := false
		prevDelta := math.Inf(1)
		for ; iters < maxLeakIters; iters++ {
			powers := make([]floorplan.ChipletPower, n)
			leakW = 0
			for c := 0; c < n; c++ {
				aLeak := e.leakage(e.Models.Power.ArrayLeakage(numPEs, e.Models.Power.RefTempC), tArr[c])
				sLeak := e.leakage(e.Models.Power.SRAMLeakage(est, e.Models.Power.RefTempC), tSrm[c])
				powers[c] = floorplan.ChipletPower{
					ArrayWatts: pp.arr[c] + aLeak,
					SRAMWatts:  pp.srm[c] + sLeak,
				}
				leakW += aLeak + sLeak
			}
			if math.IsInf(leakW, 0) || math.IsNaN(leakW) {
				// Exponential leakage overflowed: the fixed point has no
				// finite solution. Classify as runaway instead of feeding
				// a non-finite heat map to the solver.
				runaway = true
				leakW = 0
				break
			}
			maps, err := powerPlace.Rasterize(grid, powers, threeD, arrayFrac)
			if err != nil {
				return err
			}
			cell := domainMM * 1e-3 / float64(grid)
			if threeD {
				stk, err = thermal.BuildStack3D(grid, cell, coverage, maps.SRAM, maps.Array, ev.Chiplet.TSVCopperFraction, e.Models.Materials)
			} else {
				stk, err = thermal.BuildStack2D(grid, cell, coverage, maps.Array, e.Models.Materials)
			}
			if err != nil {
				return err
			}
			stk.Solver = solver
			switch {
			case fid.lumped:
				res = stk.LumpedEstimate()
			case fid.bound:
				res = stk.BoundEstimate()
			case ws != nil:
				res, err = stk.SolveWorkspace(ws, rises)
				if err != nil {
					return err
				}
			default:
				res, err = stk.SolveWithGuess(rises)
				if err != nil {
					return err
				}
			}
			solveIters.Add(int64(res.Iterations))
			rises = res.Rises
			if math.IsNaN(res.PeakC) || math.IsInf(res.PeakC, 0) {
				// A non-finite solve means the linear system itself broke
				// down; classify the point as runaway rather than letting
				// the NaN poison the evaluation.
				runaway = true
				break
			}
			if fid.leakPinC > 0 {
				// One-shot certificate: leakage was evaluated at the pinned
				// test temperature, not iterated (see thermalFidelity).
				iters++
				break
			}

			var newArr, newSrm []float64
			if threeD {
				newArr = chipletPeaks(res.LayerTemps(stk, "array"), grid, domainMM, place.Chiplets)
				newSrm = chipletPeaks(res.LayerTemps(stk, "sram"), grid, domainMM, place.Chiplets)
			} else {
				die := chipletPeaks(res.LayerTemps(stk, "die"), grid, domainMM, place.Chiplets)
				newArr, newSrm = die, die
			}
			delta := 0.0
			for c := 0; c < n; c++ {
				delta = math.Max(delta, math.Abs(newArr[c]-tArr[c]))
				delta = math.Max(delta, math.Abs(newSrm[c]-tSrm[c]))
			}
			tArr, tSrm = newArr, newSrm
			if res.PeakC > runawayLimitC {
				runaway = true
				iters++
				break
			}
			if delta < leakConvergedC {
				iters++
				break
			}
			// A growing step after several contractions means the loop
			// gain exceeded one: thermal runaway.
			if iters >= 3 && delta > prevDelta {
				runaway = true
				iters++
				break
			}
			prevDelta = delta
		}
		if iters >= maxLeakIters && prevDelta > 1 {
			runaway = true
		}

		if iters > ev.LeakIters {
			ev.LeakIters = iters
		}
		dyn := pp.totalDyn()
		if dyn > ev.DynamicPowerW {
			ev.DynamicPowerW = dyn
		}
		if dyn+leakW > ev.TotalPowerW {
			ev.TotalPowerW = dyn + leakW
			ev.LeakageW = leakW
		}
		if runaway {
			ev.Runaway = true
		}
		if res != nil && res.PeakC > ev.PeakTempC {
			ev.PeakTempC = res.PeakC
			if ev.Full {
				ev.Hottest = res
				ev.HottestStack = stk
			}
		}
	}
	if math.IsInf(ev.PeakTempC, -1) && !ev.Runaway {
		// No phase produced a temperature (e.g. an empty phase list);
		// report a deterministic ambient instead of -Inf.
		ev.PeakTempC = e.Models.Materials.AmbientC
	}
	if ev.Runaway && (math.IsInf(ev.PeakTempC, 0) || math.IsNaN(ev.PeakTempC)) {
		// Runaway evaluations clamp the (meaningless) peak so the result
		// stays finite end to end.
		ev.PeakTempC = runawayLimitC
	}
	if fast && len(rises) > 0 && !ev.Runaway {
		// Publish the converged field for the next same-geometry
		// evaluation (warm starts change the iteration count only, never
		// the fixed point, so a slightly different neighbor is safe).
		e.warm.put(wkey, rises)
	}
	return nil
}

// leakage scales a 45 C-reference leakage value to temperature tC using
// the configured model: exponential (TESA), linear under-estimate (W2),
// or none (W1).
func (e *Evaluator) leakage(ref45 float64, tC float64) float64 {
	if e.Opts.NoLeakage {
		return 0
	}
	k := e.Models.Power.LeakTempCoeffPerC
	dT := tC - e.Models.Power.RefTempC
	if e.Opts.LinearLeakage {
		s := 1 + k*dT
		if s < 0 {
			s = 0
		}
		return ref45 * s
	}
	return ref45 * math.Exp(k*dT)
}

// chipletPeaks extracts, for each chiplet rectangle, the peak temperature
// among grid cells whose centers fall inside it.
func chipletPeaks(temps []float64, grid int, interposerMM float64, rects []floorplan.Rect) []float64 {
	peaks := make([]float64, len(rects))
	cell := interposerMM / float64(grid)
	for ri, r := range rects {
		peak := math.Inf(-1)
		i0 := int(r.X / cell)
		j0 := int(r.Y / cell)
		i1 := int(math.Ceil((r.X + r.W) / cell))
		j1 := int(math.Ceil((r.Y + r.H) / cell))
		for j := max(0, j0); j < min(grid, j1); j++ {
			for i := max(0, i0); i < min(grid, i1); i++ {
				cx := (float64(i) + 0.5) * cell
				cy := (float64(j) + 0.5) * cell
				if cx >= r.X && cx < r.X+r.W && cy >= r.Y && cy < r.Y+r.H {
					if t := temps[j*grid+i]; t > peak {
						peak = t
					}
				}
			}
		}
		if math.IsInf(peak, -1) {
			// Degenerate: chiplet smaller than one cell; fall back to
			// the nearest cell.
			i := clampInt(int(r.CenterX()/cell), 0, grid-1)
			j := clampInt(int(r.CenterY()/cell), 0, grid-1)
			peak = temps[j*grid+i]
		}
		peaks[ri] = peak
	}
	return peaks
}

func fill(n int, v float64) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = v
	}
	return s
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
