package core

import (
	"context"
	"fmt"
	"io"
	"math"
	"time"

	"tesa/internal/des"
	"tesa/internal/floorplan"
	"tesa/internal/sram"
	"tesa/internal/systolic"
	"tesa/internal/thermal"
)

// stageSim is the pipeline-stage name of the dynamic-scenario
// co-simulation (EvalError.Stage, and — prefixed "sim." — the telemetry
// span names, which tesa-trace folds into its stage table next to the
// "stage." spans).
const stageSim = "sim"

// simSeedStride separates the per-draw seeds of SimulateDistribution:
// draw i runs at Scenario.Seed + i*simSeedStride, a fixed, documented
// derivation so a distribution evaluation is as reproducible as a
// single run.
const simSeedStride = 0x9E3779B9

// simStepper adapts the transient thermal solver to des.ThermalStepper:
// each scenario tick it adds temperature-dependent leakage (evaluated
// at the previous step's per-chiplet peaks, the transient analogue of
// the steady-state fixed point) to the DES-supplied dynamic power,
// rasterizes the result onto the thermal grid, and advances one
// implicit-Euler step.
type simStepper struct {
	e          *Evaluator
	stk        *thermal.Stack
	ts         *thermal.TransientStepper
	place      *floorplan.Placement
	powerPlace *floorplan.Placement
	domainMM   float64
	grid       int
	est        sram.Estimate
	numPEs     int
	arrayFrac  float64
	threeD     bool
	tArr, tSrm []float64 // per-chiplet temps driving the leakage model
	leakW      float64   // leakage of the most recent step
}

// newSimStepper rebuilds the evaluation's thermal geometry (the same
// margin-extended domain as thermalAnalysis) with all-zero power maps
// and primes a TransientStepper on it, starting from ambient.
func (e *Evaluator) newSimStepper(ev *Evaluation, dtSec float64) (*simStepper, error) {
	threeD := e.Opts.Tech == Tech3D
	arr := systolic.Array{
		Rows: ev.Point.ArrayDim, Cols: ev.Point.ArrayDim,
		Dataflow:  e.Opts.Dataflow,
		SRAMBytes: int64(ev.Point.SRAMKB()) * 1024,
	}
	bundle, err := e.profilesFor(arr, threeD)
	if err != nil {
		return nil, err
	}
	domainMM := e.Cons.InterposerMM + 2*packageMarginMM
	place, err := floorplan.Place(domainMM, ev.Placement.WidthMM, ev.Placement.HeightMM, ev.Placement.ICSmm, ev.Placement.Mesh)
	if err != nil {
		return nil, err
	}
	grid := e.Opts.Grid
	coverage := e.coverageFor(place, grid)
	cell := domainMM * 1e-3 / float64(grid)
	zero := make([]float64, grid*grid)
	var stk *thermal.Stack
	if threeD {
		stk, err = thermal.BuildStack3D(grid, cell, coverage, zero, zero, ev.Chiplet.TSVCopperFraction, e.Models.Materials)
	} else {
		stk, err = thermal.BuildStack2D(grid, cell, coverage, zero, e.Models.Materials)
	}
	if err != nil {
		return nil, err
	}
	ts, err := stk.NewTransientStepper(dtSec)
	if err != nil {
		return nil, err
	}
	n := ev.Mesh.Count()
	arrayFrac := ev.Chiplet.ArrayMM2 / ev.Chiplet.FootprintMM2
	if arrayFrac > 1 {
		arrayFrac = 1
	}
	ambient := e.Models.Materials.AmbientC
	return &simStepper{
		e: e, stk: stk, ts: ts,
		place: place, powerPlace: place.Inset(ev.Chiplet.ActiveInsetMM),
		domainMM: domainMM, grid: grid,
		est: bundle.est, numPEs: ev.Point.ArrayDim * ev.Point.ArrayDim,
		arrayFrac: arrayFrac, threeD: threeD,
		tArr: fill(n, ambient), tSrm: fill(n, ambient),
	}, nil
}

// Step implements des.ThermalStepper.
func (s *simStepper) Step(dtSec float64, power []des.ChipletPowerW) (float64, error) {
	if math.Abs(dtSec-s.ts.DtSec()) > 1e-12*s.ts.DtSec() {
		return 0, fmt.Errorf("%w: tick %g s against a stepper built for %g s", thermal.ErrInvalidStep, dtSec, s.ts.DtSec())
	}
	if len(power) != len(s.tArr) {
		return 0, fmt.Errorf("core: sim power trace has %d chiplets, placement %d", len(power), len(s.tArr))
	}
	e := s.e
	powers := make([]floorplan.ChipletPower, len(power))
	s.leakW = 0
	for c := range power {
		aLeak := e.leakage(e.Models.Power.ArrayLeakage(s.numPEs, e.Models.Power.RefTempC), s.tArr[c])
		sLeak := e.leakage(e.Models.Power.SRAMLeakage(s.est, e.Models.Power.RefTempC), s.tSrm[c])
		powers[c] = floorplan.ChipletPower{
			ArrayWatts: power[c].ArrayW + aLeak,
			SRAMWatts:  power[c].SRAMW + sLeak,
		}
		s.leakW += aLeak + sLeak
	}
	if math.IsNaN(s.leakW) || math.IsInf(s.leakW, 0) {
		// The exponential leakage model overflowed: transient runaway.
		return 0, fmt.Errorf("%w: leakage diverged at %g C", thermal.ErrNonFinitePower, maxOf(s.tArr))
	}
	maps, err := s.powerPlace.Rasterize(s.grid, powers, s.threeD, s.arrayFrac)
	if err != nil {
		return 0, err
	}
	if s.threeD {
		if err := s.ts.SetPower("array", maps.Array); err != nil {
			return 0, err
		}
		if err := s.ts.SetPower("sram", maps.SRAM); err != nil {
			return 0, err
		}
	} else if err := s.ts.SetPower("die", maps.Array); err != nil {
		return 0, err
	}
	res, err := s.ts.Step()
	if err != nil {
		return 0, err
	}
	if s.threeD {
		s.tArr = chipletPeaks(res.LayerTemps(s.stk, "array"), s.grid, s.domainMM, s.place.Chiplets)
		s.tSrm = chipletPeaks(res.LayerTemps(s.stk, "sram"), s.grid, s.domainMM, s.place.Chiplets)
	} else {
		die := chipletPeaks(res.LayerTemps(s.stk, "die"), s.grid, s.domainMM, s.place.Chiplets)
		s.tArr, s.tSrm = die, die
	}
	return res.PeakC, nil
}

func maxOf(v []float64) float64 {
	m := math.Inf(-1)
	for _, x := range v {
		if x > m {
			m = x
		}
	}
	return m
}

// platformFor derives the des.Platform of an evaluated design: each
// tenant's serving chiplet from the static schedule, its service time
// from the performance model, and its chiplet power split while
// running.
func (e *Evaluator) platformFor(ev *Evaluation, sc des.Scenario) (des.Platform, error) {
	var pl des.Platform
	threeD := e.Opts.Tech == Tech3D
	arr := systolic.Array{
		Rows: ev.Point.ArrayDim, Cols: ev.Point.ArrayDim,
		Dataflow:  e.Opts.Dataflow,
		SRAMBytes: int64(ev.Point.SRAMKB()) * 1024,
	}
	bundle, err := e.profilesFor(arr, threeD)
	if err != nil {
		return pl, err
	}
	// DNN index -> serving chiplet, from the static assignment.
	home := make(map[int]int, len(e.Workload.Networks))
	for c, dnns := range ev.Schedule.ChipletDNNs {
		for _, d := range dnns {
			home[d] = c
		}
	}
	n := len(sc.Tenants)
	pl = des.Platform{
		Chiplets:   ev.Mesh.Count(),
		Chiplet:    make([]int, n),
		ServiceSec: make([]float64, n),
		ArrayW:     make([]float64, n),
		SRAMW:      make([]float64, n),
	}
	for i, t := range sc.Tenants {
		if t.Network == "" {
			return pl, fmt.Errorf("core: sim tenant %s names no network", t.Name)
		}
		d := -1
		for j, net := range e.Workload.Networks {
			if net.Name == t.Network {
				d = j
				break
			}
		}
		if d < 0 {
			return pl, fmt.Errorf("core: sim tenant %s: network %q not in workload", t.Name, t.Network)
		}
		c, ok := home[d]
		if !ok {
			return pl, fmt.Errorf("core: sim tenant %s: network %q not scheduled on any chiplet", t.Name, t.Network)
		}
		pl.Chiplet[i] = c
		pl.ServiceSec[i] = bundle.profiles[d].stats.LatencySeconds(e.Opts.FreqHz)
		pl.ArrayW[i] = bundle.profiles[d].dyn.ArrayWatts
		pl.SRAMW[i] = bundle.profiles[d].dyn.SRAMWatts + bundle.profiles[d].dyn.TSVWatts
	}
	return pl, nil
}

// Simulate runs one seeded dynamic scenario against an evaluated design
// point, coupling the DES engine to the transient thermal solver. ev
// must be a structure-bearing evaluation (Fits, with Schedule and
// Placement — compact memo rebuilds must be re-run through
// EvaluateFull first). When logW is non-nil the deterministic event log
// is streamed to it. Failures are *EvalError at stage "sim", so the
// engines' quarantine taxonomy applies unchanged.
func (e *Evaluator) Simulate(ctx context.Context, ev *Evaluation, sc des.Scenario, logW io.Writer) (*des.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if ev == nil || !ev.Fits || ev.Schedule == nil || ev.Placement == nil {
		return nil, fmt.Errorf("core: simulate needs a structure-bearing evaluation (EvaluateFull a fitting point first)")
	}
	if err := sc.Validate(); err != nil {
		return nil, failStage(stageSim, ev.Point, err)
	}
	began := time.Now()
	span := e.tel.StartSpan("sim.run")
	pl, err := e.platformFor(ev, sc)
	if err != nil {
		span.End()
		return nil, failStage(stageSim, ev.Point, err)
	}
	stepper, err := e.newSimStepper(ev, sc.ThermalDtSec)
	if err != nil {
		span.End()
		return nil, failStage(stageSim, ev.Point, err)
	}
	res, err := des.Run(sc, pl, stepper, logW)
	span.End()
	if err != nil {
		return nil, failStage(stageSim, ev.Point, err)
	}
	if err := e.stageGuard(stageSim, ev.Point, began, res.PeakTempC, res.ThrottledSec); err != nil {
		return nil, err
	}
	reg := e.tel.Registry()
	reg.Counter("sim.requests").Add(res.Requests)
	reg.Counter("sim.sla_violations").Add(res.SLAViolations)
	reg.Counter("sim.throttle_events").Add(res.ThrottleEvents)
	reg.Counter("sim.steps").Add(int64(res.Steps))
	e.tel.Emit("sim.completed", map[string]any{
		"dim": ev.Point.ArrayDim, "ics": ev.Point.ICSUM,
		"seed": sc.Seed, "requests": res.Requests,
		"sla_violations": res.SLAViolations, "throttle_events": res.ThrottleEvents,
		"peak_c": res.PeakTempC,
	})
	return res, nil
}

// SimScore aggregates a design's behavior over a distribution of seeded
// scenario draws — the dynamic counterpart of the static Objective,
// letting sweeps and annealing rank designs on time-varying behavior
// instead of one corner. Deterministic under a fixed base seed: draw i
// uses Seed + i*simSeedStride.
type SimScore struct {
	// Draws is the number of scenario draws aggregated.
	Draws int `json:"draws"`
	// MeanSLARate and MaxSLARate are the mean and worst per-draw SLA
	// violation rates (violations over arrivals).
	MeanSLARate float64 `json:"mean_sla_rate"`
	MaxSLARate  float64 `json:"max_sla_rate"`
	// MeanThrottledFrac is the mean fraction of virtual time spent
	// below nominal frequency.
	MeanThrottledFrac float64 `json:"mean_throttled_frac"`
	// ThrottleEvents totals downward DVFS shifts across draws.
	ThrottleEvents int64 `json:"throttle_events"`
	// MeanPeakC and MaxPeakC summarize the envelope maxima.
	MeanPeakC float64 `json:"mean_peak_c"`
	MaxPeakC  float64 `json:"max_peak_c"`
	// WorstP99Sec is the worst per-tenant p99 latency seen in any draw.
	WorstP99Sec float64 `json:"worst_p99_sec"`
}

// DynamicPenalty folds the score into one scalar in [0, ~2]: the mean
// SLA-violation rate plus the mean throttled-time fraction. Zero for a
// design whose dynamic behavior never queues past SLA or throttles.
func (s SimScore) DynamicPenalty() float64 {
	return s.MeanSLARate + s.MeanThrottledFrac
}

// CombinedObjective returns the static objective inflated by the
// dynamic penalty — the ranking key for scenario-aware DSE:
// static * (1 + DynamicPenalty()). Designs identical at the static
// corner separate by their burst behavior.
func (s SimScore) CombinedObjective(static float64) float64 {
	return static * (1 + s.DynamicPenalty())
}

// SimulateDistribution scores ev over draws seeded scenario draws
// (Seed, Seed+stride, ...), feeding the evaluation-level view sweeps
// rank on. Cancellation is checked between draws.
func (e *Evaluator) SimulateDistribution(ctx context.Context, ev *Evaluation, sc des.Scenario, draws int) (*SimScore, error) {
	if draws <= 0 {
		return nil, fmt.Errorf("core: simulate distribution needs positive draws, got %d", draws)
	}
	span := e.tel.StartSpan("sim.distribution")
	defer span.End()
	score := &SimScore{Draws: draws}
	for i := 0; i < draws; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		draw := sc
		draw.Seed = sc.Seed + int64(i)*simSeedStride
		res, err := e.Simulate(ctx, ev, draw, nil)
		if err != nil {
			return nil, err
		}
		rate := res.SLARate()
		score.MeanSLARate += rate / float64(draws)
		if rate > score.MaxSLARate {
			score.MaxSLARate = rate
		}
		score.MeanThrottledFrac += res.ThrottledSec / res.DurationSec / float64(draws)
		score.ThrottleEvents += res.ThrottleEvents
		score.MeanPeakC += res.PeakTempC / float64(draws)
		if res.PeakTempC > score.MaxPeakC {
			score.MaxPeakC = res.PeakTempC
		}
		for _, ts := range res.Tenants {
			if ts.P99Sec > score.WorstP99Sec {
				score.WorstP99Sec = ts.P99Sec
			}
		}
	}
	return score, nil
}
