package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"time"

	"tesa/internal/dnn"
	"tesa/internal/memo"
	"tesa/internal/telemetry"
)

// ExperimentConfig parameterizes the paper's experiment drivers.
type ExperimentConfig struct {
	Workload dnn.Workload
	Models   Models
	Space    Space
	Seed     int64
	// Grid is the thermal resolution used during design-space search;
	// ReportGrid is the resolution winners are re-evaluated at for the
	// reported numbers (the paper's 125 um cells).
	Grid, ReportGrid int
	// ThermalFast routes the experiment evaluators through the fast
	// thermal path (Options.ThermalFast); off by default like the flag.
	ThermalFast bool
	// Surrogate turns on the learned ranking surrogate in every
	// evaluator the experiment creates (Options.Surrogate). Ranking only
	// reorders which candidates are evaluated first, so table and figure
	// numbers are unchanged; the validation study reports how many
	// search decisions the model served.
	Surrogate bool
	// Memo shares one cross-point memoization store across every
	// evaluator the experiment creates — the exhaustive sweep, the
	// optimizer, per-corner runs and the fine-grid re-evaluations — so
	// repeated sub-computations are paid once per experiment instead of
	// once per evaluator. Results are unchanged (see Options.Memo).
	Memo bool
	// Telemetry, when non-nil, instruments every evaluator the
	// experiment creates, so one hub aggregates stage timings and
	// counters across all tables and figures of a report run.
	Telemetry *telemetry.Telemetry

	mu        sync.Mutex
	corners   map[Corner]*TableVRow
	memoStore *memo.Store
}

// store lazily creates the experiment-wide shared memo store.
func (cfg *ExperimentConfig) store() *memo.Store {
	cfg.mu.Lock()
	defer cfg.mu.Unlock()
	if cfg.memoStore == nil {
		cfg.memoStore = memo.NewStore()
	}
	return cfg.memoStore
}

// newEvaluator builds an evaluator for one corner's options, attaching
// the shared memo store when Memo is set.
func (cfg *ExperimentConfig) newEvaluator(opts Options, cons Constraints) (*Evaluator, error) {
	e, err := NewEvaluator(cfg.Workload, opts, cons, cfg.Models)
	if err != nil {
		return nil, err
	}
	if cfg.Memo {
		e.UseMemo(cfg.store())
	}
	e.Instrument(cfg.Telemetry)
	return e, nil
}

// DefaultExperimentConfig returns the configuration used to regenerate
// the paper's tables: the AR/VR workload, Table II design space, the
// calibrated models, a coarse search grid and a fine reporting grid.
func DefaultExperimentConfig() ExperimentConfig {
	return ExperimentConfig{
		Workload:   dnn.ARVRWorkload(),
		Models:     DefaultModels(),
		Space:      DefaultSpace(),
		Seed:       1,
		Grid:       32,
		ReportGrid: 88,
	}
}

// Corner is one constraint corner of the paper's evaluation.
type Corner struct {
	Tech    Tech
	FreqMHz float64
	FPS     float64
	BudgetC float64
}

// String renders the corner the way the paper's tables label columns:
// tech, frequency, fps and thermal budget.
func (c Corner) String() string {
	return fmt.Sprintf("%s %3.0f MHz, %2.0f fps, %2.0f C", c.Tech, c.FreqMHz, c.FPS, c.BudgetC)
}

func (cfg *ExperimentConfig) optionsFor(c Corner) (Options, Constraints) {
	opts := DefaultOptions()
	opts.Tech = c.Tech
	opts.FreqHz = c.FreqMHz * 1e6
	opts.Grid = cfg.Grid
	opts.ThermalFast = cfg.ThermalFast
	opts.Surrogate = cfg.Surrogate
	cons := DefaultConstraints()
	cons.FPS = c.FPS
	cons.TempBudgetC = c.BudgetC
	return opts, cons
}

// reEvaluate re-runs a winner at the fine reporting grid.
func (cfg *ExperimentConfig) reEvaluate(c Corner, p DesignPoint) (*Evaluation, error) {
	opts, cons := cfg.optionsFor(c)
	opts.Grid = cfg.ReportGrid
	e, err := cfg.newEvaluator(opts, cons)
	if err != nil {
		return nil, err
	}
	return e.EvaluateFull(p)
}

// TableVRow is one row of the paper's Table V: a TESA output at one
// constraint corner.
type TableVRow struct {
	Corner Corner
	// Found is false when no feasible MCM exists at this corner (e.g.
	// 3-D at 500 MHz under 75 C, the paper's Table III headline).
	Found bool
	Eval  *Evaluation // fine-grid evaluation of the winner
	// Explored and SpaceSize quantify how much of the space the
	// optimizer visited.
	Explored, SpaceSize int
	Elapsed             time.Duration
}

// TableVCorners lists the 16 corners of the paper's Table V study (it
// prints the feasible subset; infeasible corners are the "no solution"
// results discussed in the text).
func TableVCorners() []Corner {
	var cs []Corner
	for _, tech := range []Tech{Tech2D, Tech3D} {
		for _, f := range []float64{400, 500} {
			for _, fps := range []float64{15, 30} {
				for _, b := range []float64{75, 85} {
					cs = append(cs, Corner{tech, f, fps, b})
				}
			}
		}
	}
	return cs
}

// RunCorner optimizes one constraint corner and re-evaluates the winner
// at the reporting grid (a context.Background() wrapper over
// RunCornerContext). Results are cached per corner, so experiment
// drivers that share corners (Table V, the headline study) pay once.
func (cfg *ExperimentConfig) RunCorner(c Corner) (*TableVRow, error) {
	return cfg.RunCornerContext(context.Background(), c)
}

// RunCornerContext is RunCorner with cooperative cancellation: the
// underlying optimization observes ctx between evaluations and the
// method returns ctx.Err() promptly when cancelled. A corner that has
// no feasible MCM is a valid result (Found=false), not an error.
func (cfg *ExperimentConfig) RunCornerContext(ctx context.Context, c Corner) (*TableVRow, error) {
	cfg.mu.Lock()
	if row, ok := cfg.corners[c]; ok {
		cfg.mu.Unlock()
		return row, nil
	}
	cfg.mu.Unlock()

	start := time.Now()
	opts, cons := cfg.optionsFor(c)
	e, err := cfg.newEvaluator(opts, cons)
	if err != nil {
		return nil, err
	}
	opt, err := e.OptimizeContext(ctx, cfg.Space, cfg.Seed, nil)
	if err != nil && !errors.Is(err, ErrNoFeasibleStart) {
		return nil, err
	}
	row := &TableVRow{
		Corner:    c,
		Found:     opt.Found,
		Explored:  opt.Explored,
		SpaceSize: cfg.Space.Size(),
		Elapsed:   time.Since(start),
	}
	if opt.Found {
		row.Eval, err = cfg.reEvaluate(c, opt.Best.Point)
		if err != nil {
			return nil, err
		}
	}
	cfg.mu.Lock()
	if cfg.corners == nil {
		cfg.corners = make(map[Corner]*TableVRow)
	}
	cfg.corners[c] = row
	cfg.mu.Unlock()
	return row, nil
}

// TableV regenerates the paper's Table V: TESA outputs across every
// constraint corner for both technologies.
func (cfg *ExperimentConfig) TableV() ([]*TableVRow, error) {
	var rows []*TableVRow
	for _, c := range TableVCorners() {
		row, err := cfg.RunCorner(c)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatTableV renders Table V rows in the paper's layout.
func FormatTableV(rows []*TableVRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-26s | %-34s | %-9s | %-9s | %-8s | %-8s | %-8s\n",
		"Constraints", "Architecture", "Grid,ICS", "Peak Temp", "Power", "MCM cost", "DRAM pwr")
	b.WriteString(strings.Repeat("-", 120) + "\n")
	for _, r := range rows {
		if !r.Found {
			fmt.Fprintf(&b, "%-26s | %s\n", r.Corner, "SOLUTION DOES NOT EXIST")
			continue
		}
		e := r.Eval
		fmt.Fprintf(&b, "%-26s | %-34s | %v,%4dum | %6.2f C | %5.2f W | $%6.2f | %5.2f W\n",
			r.Corner, e.Point, e.Mesh, e.Point.ICSUM, e.PeakTempC, e.TotalPowerW, e.MCMCost.Total, e.DRAMPowerW)
	}
	return b.String()
}

// TableIVRow is one row of Table IV: an SC2 (temperature-unaware sizing)
// pick and its ground-truth thermal behaviour.
type TableIVRow struct {
	Corner Corner
	Result *BaselineResult
}

// TableIV regenerates the paper's Table IV: SC2's 2-D and 3-D MCMs for
// each frequency/latency corner, evaluated against the strict 75 C
// budget with the full thermal and leakage models.
func (cfg *ExperimentConfig) TableIV() ([]*TableIVRow, error) {
	var rows []*TableIVRow
	for _, tech := range []Tech{Tech2D, Tech3D} {
		for _, f := range []float64{400, 500} {
			for _, fps := range []float64{15, 30} {
				c := Corner{tech, f, fps, 75}
				opts, cons := cfg.optionsFor(c)
				res, err := RunSC2(cfg.Workload, opts, cons, cfg.Models, cfg.Space, cfg.Seed)
				if err != nil {
					return nil, err
				}
				if res.Found {
					res.Actual, err = cfg.reEvaluate(c, res.Chosen.Point)
					if err != nil {
						return nil, err
					}
				}
				rows = append(rows, &TableIVRow{Corner: c, Result: res})
			}
		}
	}
	return rows, nil
}

// FormatTableIV renders Table IV rows.
func FormatTableIV(rows []*TableIVRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-26s | %-34s | %-9s | %s\n", "Corner", "SC2 chose", "Grid", "Actual peak junction temp")
	b.WriteString(strings.Repeat("-", 110) + "\n")
	for _, r := range rows {
		if !r.Result.Found {
			fmt.Fprintf(&b, "%-26s | no feasible configuration under SC2's own models\n", r.Corner)
			continue
		}
		a := r.Result.Actual
		temp := fmt.Sprintf("%.2f C", a.PeakTempC)
		if a.Runaway {
			temp = "THERMAL RUNAWAY"
		}
		fmt.Fprintf(&b, "%-26s | %-34s | %-9v | %s\n", r.Corner, a.Point, a.Mesh, temp)
	}
	return b.String()
}

// TableIIIResult aggregates the W1/W2 adoption study at 500 MHz on 3-D
// MCMs (the paper's Table III) plus TESA's own outcome at the same
// corner.
type TableIIIResult struct {
	W1Original, W1Constrained *BaselineResult
	W2Original, W2Constrained *BaselineResult
	// TESAFound reports whether TESA finds a feasible 3-D MCM at 500 MHz
	// under the 75 C budget (the paper: "Solution does not exist at
	// 75 C").
	TESAFound bool
	TESA      *Evaluation
}

// TableIII regenerates the paper's Table III comparison at 500 MHz, 3-D,
// 30 fps, 75 C.
func (cfg *ExperimentConfig) TableIII() (*TableIIIResult, error) {
	c := Corner{Tech3D, 500, 30, 75}
	opts, cons := cfg.optionsFor(c)
	res := &TableIIIResult{}
	var err error
	if res.W1Original, err = RunW1(cfg.Workload, opts, cons, cfg.Models, cfg.Space, cfg.Seed, false); err != nil {
		return nil, err
	}
	if res.W1Constrained, err = RunW1(cfg.Workload, opts, cons, cfg.Models, cfg.Space, cfg.Seed, true); err != nil {
		return nil, err
	}
	if res.W2Original, err = RunW2(cfg.Workload, opts, cons, cfg.Models, cfg.Space, cfg.Seed, false); err != nil {
		return nil, err
	}
	if res.W2Constrained, err = RunW2(cfg.Workload, opts, cons, cfg.Models, cfg.Space, cfg.Seed, true); err != nil {
		return nil, err
	}
	row, err := cfg.RunCorner(c)
	if err != nil {
		return nil, err
	}
	res.TESAFound = row.Found
	if row.Found {
		res.TESA = row.Eval
	}
	return res, nil
}

// FormatTableIII renders the Table III comparison.
func (cfg *ExperimentConfig) FormatTableIII(r *TableIIIResult) string {
	_, cons := cfg.optionsFor(Corner{Tech3D, 500, 30, 75})
	var b strings.Builder
	b.WriteString("W1 (min-T, no leakage) and W2 (min T+cost+latency, linear leakage) at 500 MHz, 3-D, 30 fps:\n")
	for _, br := range []*BaselineResult{r.W1Original, r.W1Constrained, r.W2Original, r.W2Constrained} {
		b.WriteString("  " + br.Describe(cons) + "\n")
	}
	if r.TESAFound {
		b.WriteString(fmt.Sprintf("  TESA: %v, %v grid, peak %.1f C\n", r.TESA.Point, r.TESA.Mesh, r.TESA.PeakTempC))
	} else {
		b.WriteString("  TESA: solution does not exist at 75 C — remedial action needed (e.g. reduce frequency)\n")
	}
	return b.String()
}

// Fig5Result is the SC1 baseline study (max parallelism, temperature
// unaware) for one technology at 500 MHz.
type Fig5Result struct {
	Tech   Tech
	Result *BaselineResult
}

// Fig5 regenerates the paper's Fig. 5: SC1 MCMs for 2-D and 3-D at
// 500 MHz, 30 fps, and what they actually do thermally against 75 C.
func (cfg *ExperimentConfig) Fig5() ([]*Fig5Result, error) {
	var out []*Fig5Result
	for _, tech := range []Tech{Tech2D, Tech3D} {
		c := Corner{tech, 500, 30, 75}
		opts, cons := cfg.optionsFor(c)
		res, err := RunSC1(cfg.Workload, opts, cons, cfg.Models, cfg.Space)
		if err != nil {
			return nil, err
		}
		if res.Found {
			res.Actual, err = cfg.reEvaluate(c, res.Chosen.Point)
			if err != nil {
				return nil, err
			}
		}
		out = append(out, &Fig5Result{Tech: tech, Result: res})
	}
	return out, nil
}

// FormatFig5 renders the Fig. 5 summary.
func FormatFig5(rs []*Fig5Result, cons Constraints) string {
	var b strings.Builder
	b.WriteString("SC1: temperature-unaware maximum parallelism (one chiplet per DNN, max ICS), 500 MHz:\n")
	for _, r := range rs {
		if !r.Result.Found {
			fmt.Fprintf(&b, "  %s: no six-chiplet configuration meets latency+power\n", r.Tech)
			continue
		}
		a := r.Result.Actual
		fmt.Fprintf(&b, "  %s: %v, %v grid -> peak %.1f C (budget %.0f C), power %.1f W (budget %.0f W)",
			r.Tech, a.Point, a.Mesh, a.PeakTempC, cons.TempBudgetC, a.TotalPowerW, cons.PowerBudgetW)
		if a.Runaway {
			b.WriteString(" [THERMAL RUNAWAY]")
		}
		b.WriteString("\n")
	}
	return b.String()
}

// ThermalMapASCII renders a full evaluation's hottest-phase die-layer
// temperature field as an ASCII heat map (Fig. 6 analogue). Returns ""
// when the evaluation carries no thermal field.
func ThermalMapASCII(ev *Evaluation) string {
	if ev == nil || ev.Hottest == nil || ev.HottestStack == nil {
		return ""
	}
	layer := "die"
	if ev.HottestStack.Layers[len(ev.HottestStack.Layers)-1].Name != "lid" {
		return ""
	}
	temps := ev.Hottest.LayerTemps(ev.HottestStack, layer)
	if temps == nil {
		temps = ev.Hottest.LayerTemps(ev.HottestStack, "array")
	}
	if temps == nil {
		return ""
	}
	g := ev.HottestStack.Grid
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, t := range temps {
		lo = math.Min(lo, t)
		hi = math.Max(hi, t)
	}
	shades := []byte(" .:-=+*#%@")
	var b strings.Builder
	fmt.Fprintf(&b, "thermal map %v: %.1f C (' ') .. %.1f C ('@'), peak %.2f C\n", ev.Point, lo, hi, ev.PeakTempC)
	step := 1
	if g > 64 {
		step = g / 64
	}
	for j := g - 1; j >= 0; j -= 2 * step {
		for i := 0; i < g; i += step {
			t := temps[j*g+i]
			idx := 0
			if hi > lo {
				idx = int((t - lo) / (hi - lo) * float64(len(shades)-1))
			}
			b.WriteByte(shades[idx])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ThermalMapCSV renders the same field as CSV for plotting.
func ThermalMapCSV(ev *Evaluation) string {
	if ev == nil || ev.Hottest == nil || ev.HottestStack == nil {
		return ""
	}
	temps := ev.Hottest.LayerTemps(ev.HottestStack, "die")
	if temps == nil {
		temps = ev.Hottest.LayerTemps(ev.HottestStack, "array")
	}
	if temps == nil {
		return ""
	}
	g := ev.HottestStack.Grid
	var b strings.Builder
	for j := 0; j < g; j++ {
		for i := 0; i < g; i++ {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%.3f", temps[j*g+i])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ValidationResult is the optimizer-correctness study of Sec. IV-A.
type ValidationResult struct {
	Corner Corner
	// ExhaustiveBest is the global optimum; OptimizerBest is the MSA
	// result on the same space.
	ExhaustiveBest, OptimizerBest *Evaluation
	ExhaustiveFound, OptFound     bool
	// Agreement is true when the optimizer matched the global optimum's
	// objective value.
	Agreement bool
	// ExploredFraction is the share of the space the annealers touched
	// (the paper reports <15%).
	ExploredFraction float64
	// CacheHitRate is the optimizer evaluator's memo-cache hit rate —
	// how much of the annealers' revisit traffic the cache absorbed.
	CacheHitRate float64
	// MemoHitRate is the shared memoization store's hit rate across both
	// evaluators (zero unless ExperimentConfig.Memo is set) — how much
	// cross-evaluator traffic the memo layer absorbed.
	MemoHitRate float64
	// WarmStartHitRate is the thermal warm-start cache hit rate summed
	// over both evaluators (zero unless ThermalFast ran grid solves).
	WarmStartHitRate float64
	// SurrogateHits counts the optimizer's search decisions served by a
	// warm ranking model (the surrogate.hit counter); SurrogateRanked
	// counts the candidates it scored (surrogate.rank). Both zero unless
	// ExperimentConfig.Surrogate is set.
	SurrogateHits   int64
	SurrogateRanked int64
	FeasibleCount   int
	SpaceSize       int
}

// ValidateOptimizer reproduces the paper's Sec. IV-A study: exhaustively
// evaluate the configured design space, then check the MSA optimizer
// finds the same global optimum while exploring a small fraction of the
// space. The paper could only afford a ~5k-point validation sub-space
// (SCALE-Sim points take minutes to hours); our substrates let the full
// Table II space be swept, which makes the "<15% explored" claim testable
// directly.
func (cfg *ExperimentConfig) ValidateOptimizer(c Corner) (*ValidationResult, error) {
	return cfg.ValidateOptimizerContext(context.Background(), c)
}

// ValidateOptimizerContext is ValidateOptimizer with cooperative
// cancellation through both the exhaustive sweep and the annealer run.
func (cfg *ExperimentConfig) ValidateOptimizerContext(ctx context.Context, c Corner) (*ValidationResult, error) {
	space := cfg.Space
	opts, cons := cfg.optionsFor(c)

	ex, err := cfg.newEvaluator(opts, cons)
	if err != nil {
		return nil, err
	}
	exRes, err := ex.ExhaustiveContext(ctx, space, nil)
	if err != nil {
		return nil, err
	}

	// With Memo, the optimizer evaluator shares the sweep's store: every
	// point the sweep touched is served without recomputation, which is
	// exactly the cross-evaluator sharing the memo layer exists for.
	op, err := cfg.newEvaluator(opts, cons)
	if err != nil {
		return nil, err
	}
	opRes, err := op.OptimizeContext(ctx, space, cfg.Seed, nil)
	if err != nil && !errors.Is(err, ErrNoFeasibleStart) {
		return nil, err
	}

	res := &ValidationResult{
		Corner:           c,
		ExhaustiveFound:  exRes.Best != nil,
		OptFound:         opRes.Found,
		FeasibleCount:    exRes.Feasible,
		SpaceSize:        exRes.Total,
		ExploredFraction: float64(opRes.Explored) / float64(exRes.Total),
		CacheHitRate:     op.CacheHitRate(),
	}
	if cfg.Memo {
		res.MemoHitRate = op.MemoStats().HitRate()
	}
	exHits, exMisses := ex.WarmStartStats()
	opHits, opMisses := op.WarmStartStats()
	if total := exHits + exMisses + opHits + opMisses; total > 0 {
		res.WarmStartHitRate = float64(exHits+opHits) / float64(total)
	}
	surHits, _, surRanked := op.SurrogateStats()
	res.SurrogateHits, res.SurrogateRanked = surHits, surRanked

	res.ExhaustiveBest = exRes.Best
	if opRes.Found {
		res.OptimizerBest = opRes.Best
	}
	switch {
	case !res.ExhaustiveFound && !res.OptFound:
		res.Agreement = true // both agree nothing is feasible
	case res.ExhaustiveFound && res.OptFound:
		res.Agreement = opRes.Best.Objective <= exRes.Best.Objective*(1+1e-9)
	default:
		res.Agreement = false
	}
	return res, nil
}
