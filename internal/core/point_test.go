package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestSRAMDerivationMatchesPaper pins the derived per-SRAM capacities to
// every chiplet configuration the paper reports (Tables III, IV, V and
// Fig. 5): the area-ratio rule must reproduce them all.
func TestSRAMDerivationMatchesPaper(t *testing.T) {
	cases := map[int]int{
		16:  8,    // W1 original: 24 KB total
		56:  64,   // W2 original: 192 KB total
		96:  256,  // Table V 3-D: 768 KB total
		132: 512,  // W1 with constraints: 1,536 KB total
		186: 512,  // Table V 3-D: 1,536 KB total
		196: 1024, // Table V 3-D: 3,072 KB total
		200: 1024, // Table V 2-D: 3,072 KB total
		216: 1024, // Table IV / V: 3,072 KB total
		240: 1024, // Table V 2-D: 3,072 KB total
	}
	for dim, want := range cases {
		if got := SRAMKBForArray(dim); got != want {
			t.Errorf("SRAMKBForArray(%d) = %d KB, want %d KB (paper total %d KB)", dim, got, want, 3*want)
		}
	}
}

// TestSRAMDerivationMonotone: bigger arrays never derive smaller SRAMs,
// and the result is always a power of two in [8, 4096].
func TestSRAMDerivationMonotone(t *testing.T) {
	prev := 0
	for d := 16; d <= 256; d += 2 {
		kb := SRAMKBForArray(d)
		if kb < prev {
			t.Errorf("dim %d: SRAM %d KB below smaller array's %d KB", d, kb, prev)
		}
		if kb < 8 || kb > 4096 || kb&(kb-1) != 0 {
			t.Errorf("dim %d: SRAM %d KB not a power of two in [8,4096]", d, kb)
		}
		prev = kb
	}
}

func TestDefaultSpaceMatchesTableII(t *testing.T) {
	s := DefaultSpace()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(s.ArrayDims) != 121 {
		t.Errorf("array sizes = %d, want 121 (16x16..256x256 step 2)", len(s.ArrayDims))
	}
	if len(s.ICSUMs) != 21 {
		t.Errorf("ICS options = %d, want 21 (0..1mm step 50um)", len(s.ICSUMs))
	}
	if s.Size() != 121*21 {
		t.Errorf("space size = %d, want %d", s.Size(), 121*21)
	}
	if s.ArrayDims[0] != 16 || s.ArrayDims[len(s.ArrayDims)-1] != 256 {
		t.Errorf("array range = [%d, %d], want [16, 256]", s.ArrayDims[0], s.ArrayDims[len(s.ArrayDims)-1])
	}
}

func TestEnumerateCoversSpace(t *testing.T) {
	s := ValidationSpace()
	pts := s.Enumerate()
	if len(pts) != s.Size() {
		t.Fatalf("enumerated %d points, size says %d", len(pts), s.Size())
	}
	seen := make(map[DesignPoint]bool, len(pts))
	for _, p := range pts {
		if seen[p] {
			t.Fatalf("duplicate point %v", p)
		}
		seen[p] = true
		if !s.Contains(p) {
			t.Fatalf("enumerated point %v not in space", p)
		}
	}
}

// TestNeighborStaysInSpace: every perturbation lands on the axes
// (property test).
func TestNeighborStaysInSpace(t *testing.T) {
	s := DefaultSpace()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := s.Random(rng)
		for i := 0; i < 50; i++ {
			p = s.Neighbor(p, rng)
			if !s.Contains(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestNeighborChangesExactlyOneKnob: each perturbation tunes chiplet size
// OR spacing, never both (Fig. 4).
func TestNeighborChangesExactlyOneKnob(t *testing.T) {
	s := DefaultSpace()
	rng := rand.New(rand.NewSource(7))
	p := DesignPoint{ArrayDim: 128, ICSUM: 500}
	changedDim, changedICS := false, false
	for i := 0; i < 200; i++ {
		q := s.Neighbor(p, rng)
		if q.ArrayDim != p.ArrayDim && q.ICSUM != p.ICSUM {
			t.Fatalf("perturbation changed both knobs: %v -> %v", p, q)
		}
		if q == p {
			t.Fatalf("perturbation %d changed nothing", i)
		}
		if q.ArrayDim != p.ArrayDim {
			changedDim = true
		}
		if q.ICSUM != p.ICSUM {
			changedICS = true
		}
	}
	if !changedDim || !changedICS {
		t.Error("perturbations never touched one of the knobs")
	}
}

func TestSpaceValidateRejectsEmpty(t *testing.T) {
	if err := (Space{}).Validate(); err == nil {
		t.Error("empty space accepted")
	}
	bad := Space{ArrayDims: []int{0}, ICSUMs: []int{0}}
	if err := bad.Validate(); err == nil {
		t.Error("zero array dim accepted")
	}
	neg := Space{ArrayDims: []int{16}, ICSUMs: []int{-5}}
	if err := neg.Validate(); err == nil {
		t.Error("negative ICS accepted")
	}
}

func TestPointString(t *testing.T) {
	p := DesignPoint{ArrayDim: 200, ICSUM: 1700}
	want := "200x200 array, 3072 KB SRAM, ICS 1700 um"
	if got := p.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
