package core

import (
	"math"
	"sort"
	"sync/atomic"

	"tesa/internal/surrogate"
)

// surrogateLCBC is the uncertainty weight of the lower-confidence-bound
// ranking score (mean - c*sigma): 1 keeps the optimism proportional to
// one standard deviation of the neighborhood spread, which on the
// coarse design grids balances exploiting predicted-good basins against
// revisiting unexplored ones. The ranking only chooses what to evaluate
// FIRST — every proposal still runs the real pipeline — so this
// constant tunes wall-clock, never results.
const surrogateLCBC = 1.0

// surrogateFeatures returns the canonical feature vector of a design
// point: the memo-fingerprint inputs that vary across a space — the
// array dimension, the inter-chiplet spacing, and the derived per-SRAM
// capacity (log2, since the axis is a power-of-two ladder). Everything
// else a point's evaluation depends on is fixed per evaluator and
// already bound by the configuration fingerprint.
func surrogateFeatures(p DesignPoint) []float64 {
	return []float64{float64(p.ArrayDim), float64(p.ICSUM), math.Log2(float64(p.SRAMKB()))}
}

// surrogateStats mirrors the surrogate.* telemetry counters at the
// evaluator level, so CLIs without an observability hub can still
// report ranking effectiveness (tesa-report validate does).
type surrogateStats struct {
	decided atomic.Int64 // ranking decisions taken by a warm model
	cold    atomic.Int64 // fallbacks to the unranked path (model not ready)
	ranked  atomic.Int64 // candidates scored across all decisions
}

// surrogateK returns the effective neighborhood size / ranked-move
// candidate count (Options.SurrogateK, or the package default).
func (e *Evaluator) surrogateK() int {
	if e.Opts.SurrogateK > 0 {
		return e.Opts.SurrogateK
	}
	return surrogate.DefaultK
}

// trainSurrogate feeds one completed evaluation to the online model.
// Only feasible evaluations with finite objectives train: DSE-mode
// infeasible points carry +Inf (nothing to regress), and reporting-mode
// infeasible points carry an Eq. 6 value the search must not mistake
// for attainable. Untrained regions are handled by the LCB's
// uncertainty term instead — they rank optimistically and get explored.
func (e *Evaluator) trainSurrogate(ev *Evaluation) {
	if e.sur == nil || !ev.Feasible || math.IsNaN(ev.Objective) || math.IsInf(ev.Objective, 0) {
		return
	}
	e.sur.Add(surrogateFeatures(ev.Point), ev.Objective)
}

// warmSurrogate replays the memo store's evaluation corpus into the
// model, once: every whole-point record under this evaluator's
// configuration fingerprint — computed live by any sharing evaluator or
// seeded from -memo-dir disk segments — becomes a training sample. The
// replay is lazy (first ranking consult) so it runs after LoadMemoDir
// has seeded the store.
func (e *Evaluator) warmSurrogate() {
	if e.sur == nil || e.memo == nil {
		return
	}
	e.surReplay.Do(func() {
		e.fingerprints()
		prefix := "eval:" + e.cfgFP + "|"
		e.memo.Range(prefix, func(_ string, v any) bool {
			if ev, ok := v.(*Evaluation); ok {
				e.trainSurrogate(ev)
			}
			return true
		})
	})
}

// surrogateScore returns the ranking closure the search engines hand to
// anneal.RankedNeighbor and the sweep ordering path: the surrogate's
// lower confidence bound at the point's feature vector (lower ranks
// better), declining (ok=false) while the model is cold. nil when the
// surrogate is disabled.
func (e *Evaluator) surrogateScore() func(DesignPoint) (float64, bool) {
	return e.surrogateScoreC(surrogateLCBC)
}

// surrogateScoreExploit is the pure-mean ranking (c = 0) the seeding
// path uses: a starting pool wants the most likely-good, likely-
// feasible draws first, not the optimism-under-uncertainty bonus —
// LCB's exploration credit sends seeding into unexplored (and mostly
// infeasible) territory that the annealers are better placed to probe.
func (e *Evaluator) surrogateScoreExploit() func(DesignPoint) (float64, bool) {
	return e.surrogateScoreC(0)
}

// surrogateScoreC builds a ranking closure with confidence weight c
// (score = mean − c·sigma).
func (e *Evaluator) surrogateScoreC(c float64) func(DesignPoint) (float64, bool) {
	if e.sur == nil {
		return nil
	}
	e.warmSurrogate()
	return func(p DesignPoint) (float64, bool) {
		mean, sigma, ok := e.sur.Predict(surrogateFeatures(p))
		if !ok {
			return 0, false
		}
		return surrogate.LCB(mean, sigma, c), true
	}
}

// recordSurrogate tallies ranking outcomes into the evaluator's stats
// and the telemetry counters (surrogate.hit = warm decisions,
// surrogate.miss = cold fallbacks, surrogate.rank = candidates scored).
func (e *Evaluator) recordSurrogate(decided, cold, ranked int64) {
	if decided != 0 {
		e.surStats.decided.Add(decided)
		e.tel.Registry().Counter("surrogate.hit").Add(decided)
	}
	if cold != 0 {
		e.surStats.cold.Add(cold)
		e.tel.Registry().Counter("surrogate.miss").Add(cold)
	}
	if ranked != 0 {
		e.surStats.ranked.Add(ranked)
		e.tel.Registry().Counter("surrogate.rank").Add(ranked)
	}
}

// SurrogateStats returns the surrogate ranking tallies: warm ranking
// decisions (hits), cold fallbacks (misses), and total candidates
// scored. All zero unless Options.Surrogate ran searches.
func (e *Evaluator) SurrogateStats() (hits, misses, ranked int64) {
	return e.surStats.decided.Load(), e.surStats.cold.Load(), e.surStats.ranked.Load()
}

// SurrogateLen returns the number of training samples the online model
// currently holds (0 when the surrogate is disabled).
func (e *Evaluator) SurrogateLen() int {
	if e.sur == nil {
		return 0
	}
	return e.sur.Len()
}

// orderByPrediction returns pts reordered best-predicted-first (LCB
// ascending, enumeration order on ties), or pts unchanged when the
// model is cold. Every point is still evaluated — the ordering only
// makes incumbent improvements land early, so progress streams, the
// distributed coordinator's incumbent-improving verification, and
// -fail-fast style policies all fire sooner. The sweep winner is
// order-independent by construction (BetterPoint is a total order).
func (e *Evaluator) orderByPrediction(pts []DesignPoint) []DesignPoint {
	e.warmSurrogate()
	if e.sur == nil || !e.sur.Ready() {
		e.recordSurrogate(0, 1, 0)
		return pts
	}
	scores := make([]float64, len(pts))
	for i, p := range pts {
		mean, sigma, ok := e.sur.Predict(surrogateFeatures(p))
		if !ok {
			return pts
		}
		scores[i] = surrogate.LCB(mean, sigma, surrogateLCBC)
	}
	idx := make([]int, len(pts))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] < scores[idx[b]] })
	out := make([]DesignPoint, len(pts))
	for i, j := range idx {
		out[i] = pts[j]
	}
	e.recordSurrogate(1, 0, int64(len(pts)))
	return out
}
