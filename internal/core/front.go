package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// FrontMember is one point of a multi-objective front: a full-fidelity
// evaluation plus its NSGA-II bookkeeping.
type FrontMember struct {
	// Eval is the member's evaluation. Every reported member is
	// re-evaluated in reporting mode before being returned, so Eval
	// always carries grid-solved thermal numbers and the full
	// schedule/placement structures — never a compact or surrogate-gated
	// record.
	Eval *Evaluation
	// Rank is the non-domination rank within the final population
	// (0 = the reported front; members always have Rank 0).
	Rank int
	// Crowding is the NSGA-II crowding distance over the three
	// objectives, +Inf at each objective's extremes. Larger means more
	// isolated — the diversity-preserving selection pressure.
	Crowding float64
}

// frontObjectives are the three minimized axes of the true
// multi-objective front: MCM cost (USD), DRAM power (W), and peak
// junction temperature (C) — the raw quantities Eq. 6 scalarizes two
// of, plus the thermal axis the paper's weight sweeps cannot expose.
func frontObjectives(ev *Evaluation) [3]float64 {
	t := ev.PeakTempC
	if math.IsNaN(t) {
		// DisableThermal evaluations carry no temperature; a constant
		// axis degrades the front to the remaining two objectives.
		t = 0
	}
	return [3]float64{ev.MCMCost.Total, ev.DRAMPowerW, t}
}

// dominates reports Pareto dominance: a is no worse on every objective
// and strictly better on at least one.
func dominates(a, b [3]float64) bool {
	better := false
	for i := range a {
		if a[i] > b[i] {
			return false
		}
		if a[i] < b[i] {
			better = true
		}
	}
	return better
}

// FrontOptions tunes the NSGA-II engine. The zero value (or a nil
// pointer) selects the defaults.
type FrontOptions struct {
	// Pop is the population size (default 24).
	Pop int
	// Gens is the number of generations (default 8).
	Gens int
	// Progress, when non-nil, streams one update per generation with
	// Phase "front"; Best carries the current cost-axis extreme so the
	// stream has a stable representative. See ProgressFunc.
	Progress ProgressFunc
}

// frontDefaults fills the option defaults.
func (o FrontOptions) withDefaults() FrontOptions {
	if o.Pop <= 0 {
		o.Pop = 24
	}
	if o.Gens <= 0 {
		o.Gens = 8
	}
	return o
}

// member is the in-flight representation during evolution: a DSE-mode
// evaluation plus its current sort keys.
type member struct {
	ev       *Evaluation
	obj      [3]float64
	rank     int
	crowding float64
}

// NSGA2FrontContext evolves a population over the design space and
// returns the non-dominated front over (MCM cost, DRAM power, peak
// temperature) — a true multi-objective alternative to the scalarized
// Eq. 6 weight sweep, which can only reach the convex hull of the
// front. The loop is the standard NSGA-II recipe: fast non-dominated
// sort, crowding-distance diversity, binary tournaments, one-point
// (axis-swap) crossover, and the Fig. 4 neighbor move as mutation.
// When Options.Surrogate is enabled, offspring are drawn in pairs and
// the learned model keeps the better-ranked of each pair — proposal
// traffic the pipeline never sees.
//
// Soundness: evolution runs on DSE-mode evaluations (cheap), but every
// member of the returned front is re-evaluated in full reporting mode
// before being returned, so each reported point carries full-fidelity
// numbers regardless of any surrogate or fast-path involvement along
// the way — and dominance is re-checked on those upgraded numbers, so
// a fidelity shift on the thermal axis cannot leak a dominated point
// into the reported front. The run is deterministic for a seed: one PRNG, sequential
// evaluation, and every sort tie-broken by design point.
//
// When no feasible point is found the error wraps ErrNoFeasibleStart.
func (e *Evaluator) NSGA2FrontContext(ctx context.Context, space Space, seed int64, opt *FrontOptions) ([]FrontMember, error) {
	if err := space.Validate(); err != nil {
		return nil, err
	}
	var o FrontOptions
	if opt != nil {
		o = *opt
	}
	o = o.withDefaults()
	rng := rand.New(rand.NewSource(seed))
	progress := newProgressReporter(o.Progress, "front", o.Gens+1)
	score := e.surrogateScore()

	span := e.tel.StartSpan("front.total")
	defer span.End()

	// Initial population: uniform draws, feasible survivors, distinct
	// points. The draw budget scales with the population so sparse
	// feasible regions still fill it.
	seen := make(map[DesignPoint]bool)
	var pop []member
	evalInto := func(p DesignPoint) error {
		if seen[p] {
			return nil
		}
		seen[p] = true
		ev, err := e.EvaluateContext(ctx, p)
		if err != nil {
			if _, pointLocal := asEvalError(err); pointLocal {
				return nil // quarantined: skip, like the sweep does
			}
			return err
		}
		if ev.Feasible {
			pop = append(pop, member{ev: ev, obj: frontObjectives(ev)})
		}
		return nil
	}
	for i := 0; i < 20*o.Pop && len(pop) < o.Pop; i++ {
		if err := evalInto(space.Random(rng)); err != nil {
			return nil, err
		}
	}
	if len(pop) == 0 {
		return nil, fmt.Errorf("core: NSGA-II front: %w", ErrNoFeasibleStart)
	}
	rankAndCrowd(pop)
	progress.emit(1, costExtreme(pop), true, e.QuarantinedCount())

	for gen := 0; gen < o.Gens; gen++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Offspring: tournament parents, axis-swap crossover, neighbor
		// mutation — surrogate-ranked in pairs when the model is warm.
		var children []DesignPoint
		for len(children) < o.Pop {
			c := e.spawn(space, pop, rng)
			if score != nil {
				alt := e.spawn(space, pop, rng)
				cs, okC := score(c)
				as, okA := score(alt)
				if okC && okA {
					e.recordSurrogate(1, 0, 2)
					if as < cs {
						c = alt
					}
				} else {
					e.recordSurrogate(0, 1, 0)
				}
			}
			children = append(children, c)
		}
		for _, c := range children {
			if err := evalInto(c); err != nil {
				return nil, err
			}
		}
		// Environmental selection over the combined population: rank,
		// crowd, keep the best Pop.
		rankAndCrowd(pop)
		sort.SliceStable(pop, memberLess(pop))
		if len(pop) > o.Pop {
			pop = pop[:o.Pop]
		}
		progress.emit(gen+2, costExtreme(pop), false, e.QuarantinedCount())
	}

	// Report rank 0 only, every member upgraded to full fidelity. The
	// upgrade can shift the thermal axis (evolution ran at DSE
	// fidelity), so dominance is re-checked on the full-fidelity
	// numbers and any member the upgrade exposes as dominated is
	// dropped: the reported front is non-dominated under the exact
	// objectives it reports.
	rankAndCrowd(pop)
	var full []member
	for _, m := range pop {
		if m.rank != 0 {
			continue
		}
		ev, err := e.EvaluateFullContext(ctx, m.ev.Point)
		if err != nil {
			return nil, err
		}
		full = append(full, member{ev: ev, obj: frontObjectives(ev), crowding: m.crowding})
	}
	var out []FrontMember
	for i, m := range full {
		dominated := false
		for j, o := range full {
			if j != i && dominates(o.obj, m.obj) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, FrontMember{Eval: m.ev, Rank: 0, Crowding: m.crowding})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := frontObjectives(out[i].Eval), frontObjectives(out[j].Eval)
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return out[i].Eval.Point.Less(out[j].Eval.Point)
	})
	if e.tel.Tracing() {
		e.tel.Emit("front.done", map[string]any{
			"front":       len(out),
			"pop":         len(pop),
			"gens":        o.Gens,
			"evaluations": e.Evaluations(),
			"explored":    e.Explored(),
		})
	}
	return out, nil
}

// spawn produces one offspring design point: two binary tournaments
// pick the parents, an axis-swap crossover mixes their knobs (each
// knob from either parent), and the Fig. 4 neighbor move mutates the
// result back into the space.
func (e *Evaluator) spawn(space Space, pop []member, rng *rand.Rand) DesignPoint {
	a := tournament(pop, rng)
	b := tournament(pop, rng)
	child := DesignPoint{ArrayDim: a.ArrayDim, ICSUM: b.ICSUM}
	if rng.Intn(2) == 0 {
		child = DesignPoint{ArrayDim: b.ArrayDim, ICSUM: a.ICSUM}
	}
	return space.Neighbor(child, rng)
}

// tournament picks the better of two uniform population members under
// the NSGA-II order (rank, then crowding, then point).
func tournament(pop []member, rng *rand.Rand) DesignPoint {
	i, j := rng.Intn(len(pop)), rng.Intn(len(pop))
	if better(pop[j], pop[i]) {
		i = j
	}
	return pop[i].ev.Point
}

// better is the NSGA-II selection order: lower rank first, then larger
// crowding distance, then the deterministic point tie-break.
func better(a, b member) bool {
	if a.rank != b.rank {
		return a.rank < b.rank
	}
	if a.crowding != b.crowding {
		return a.crowding > b.crowding
	}
	return a.ev.Point.Less(b.ev.Point)
}

// memberLess adapts better to sort.SliceStable.
func memberLess(pop []member) func(i, j int) bool {
	return func(i, j int) bool { return better(pop[i], pop[j]) }
}

// costExtreme returns the member with the lowest cost objective (ties
// by point), the front's stable progress representative.
func costExtreme(pop []member) *Evaluation {
	best := 0
	for i := 1; i < len(pop); i++ {
		if pop[i].obj[0] < pop[best].obj[0] ||
			(pop[i].obj[0] == pop[best].obj[0] && pop[i].ev.Point.Less(pop[best].ev.Point)) {
			best = i
		}
	}
	return pop[best].ev
}

// rankAndCrowd runs the fast non-dominated sort and computes crowding
// distances in place. O(n^2) dominance checks — populations are tens
// of members, evaluations are milliseconds; simplicity wins.
func rankAndCrowd(pop []member) {
	n := len(pop)
	domCount := make([]int, n)  // how many members dominate i
	domList := make([][]int, n) // members i dominates
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			switch {
			case dominates(pop[i].obj, pop[j].obj):
				domList[i] = append(domList[i], j)
				domCount[j]++
			case dominates(pop[j].obj, pop[i].obj):
				domList[j] = append(domList[j], i)
				domCount[i]++
			}
		}
	}
	var front []int
	for i := 0; i < n; i++ {
		if domCount[i] == 0 {
			pop[i].rank = 0
			front = append(front, i)
		}
	}
	for rank := 0; len(front) > 0; rank++ {
		crowd(pop, front)
		var next []int
		for _, i := range front {
			for _, j := range domList[i] {
				domCount[j]--
				if domCount[j] == 0 {
					pop[j].rank = rank + 1
					next = append(next, j)
				}
			}
		}
		front = next
	}
}

// crowd assigns crowding distances to one rank's members: for each
// objective, sort the rank along it and add each member's normalized
// gap between its neighbors; the extremes get +Inf so they are never
// crowded out.
func crowd(pop []member, front []int) {
	for _, i := range front {
		pop[i].crowding = 0
	}
	if len(front) <= 2 {
		for _, i := range front {
			pop[i].crowding = math.Inf(1)
		}
		return
	}
	idx := make([]int, len(front))
	for k := range [3]struct{}{} {
		copy(idx, front)
		sort.SliceStable(idx, func(a, b int) bool {
			if pop[idx[a]].obj[k] != pop[idx[b]].obj[k] {
				return pop[idx[a]].obj[k] < pop[idx[b]].obj[k]
			}
			return pop[idx[a]].ev.Point.Less(pop[idx[b]].ev.Point)
		})
		lo, hi := pop[idx[0]].obj[k], pop[idx[len(idx)-1]].obj[k]
		pop[idx[0]].crowding = math.Inf(1)
		pop[idx[len(idx)-1]].crowding = math.Inf(1)
		if hi == lo {
			continue
		}
		for m := 1; m < len(idx)-1; m++ {
			pop[idx[m]].crowding += (pop[idx[m+1]].obj[k] - pop[idx[m-1]].obj[k]) / (hi - lo)
		}
	}
}
