package core

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"time"

	"tesa/internal/anneal"
)

// OptimizeResult is the outcome of a TESA optimization run.
type OptimizeResult struct {
	// Best is the winning MCM, nil when no feasible configuration exists
	// (the paper's "solution does not exist" outcome, e.g. 3-D at
	// 500 MHz under a 75 C budget).
	Best *Evaluation
	// Found is false when the whole run saw no feasible point.
	Found bool
	// Evaluations counts annealer evaluations (including cache hits);
	// Explored counts distinct design points actually evaluated.
	Evaluations int
	Explored    int
	// CacheHitRate is the evaluator's memo-cache hit rate over the run.
	CacheHitRate float64
	// Duration is the wall-clock time of the multi-start ensemble.
	Duration time.Duration
	// PerStart reports each annealer's own best; each entry carries its
	// own Duration and Levels, so per-start summaries are self-contained.
	PerStart []anneal.Result[DesignPoint]
}

// OptimizeOptions tunes the context-first optimizer entrypoint beyond
// the paper's fixed annealing schedule. The zero value (or a nil
// pointer) reproduces the legacy behavior exactly.
type OptimizeOptions struct {
	// Progress, when non-nil, streams incremental incumbents: one update
	// per new best feasible evaluation, with Phase "anneal". See
	// ProgressFunc for the synchronization contract.
	Progress ProgressFunc
}

// initAttempts bounds the random search for a feasible starting MCM on
// the full design space; smaller spaces get a proportionally smaller
// budget so the initialization does not trivially exhaust them.
const initAttempts = 400

// initBudget scales the initialization sampling to the space.
func initBudget(space Space) int {
	b := space.Size() / 6
	if b > initAttempts {
		b = initAttempts
	}
	if b < 10 {
		b = 10
	}
	return b
}

// sampleFeasibleStart draws up to budget uniform samples from the space
// and returns the best one under obj among those passing feas — the
// Fig. 4 "initialize with a feasible MCM" step, shared by the TESA
// optimizer and the baseline adoptions. The feasible set can be
// fragmented (infeasible candidates are always rejected, so an annealer
// cannot cross an infeasible band), which makes the starting basin
// decisive. The loop observes ctx between samples; on cancellation it
// reports ok=false and the caller surfaces ctx.Err().
func sampleFeasibleStart(ctx context.Context, space Space, rng *rand.Rand, budget int,
	eval func(DesignPoint) (*Evaluation, error), obj objectiveFn, feas feasibleFn) (DesignPoint, bool) {
	var best DesignPoint
	bestObj, found := 0.0, false
	for i := 0; i < budget; i++ {
		if ctx.Err() != nil {
			return best, false
		}
		p := space.Random(rng)
		ev, err := eval(p)
		if err != nil || !feas(ev) {
			continue
		}
		if o := obj(ev); !found || o < bestObj {
			best, bestObj, found = p, o, true
		}
	}
	return best, found
}

// Optimize runs the paper's multi-start simulated annealing over the
// design space (Fig. 4) to completion, without cancellation. It is a
// context.Background() wrapper over OptimizeContext that preserves the
// legacy no-solution contract: a run that finds no feasible start
// returns (result with Found=false, nil error) rather than
// ErrNoFeasibleStart, so existing callers and examples behave
// unchanged.
func (e *Evaluator) Optimize(space Space, seed int64) (*OptimizeResult, error) {
	res, err := e.OptimizeContext(context.Background(), space, seed, nil)
	if errors.Is(err, ErrNoFeasibleStart) {
		return res, nil
	}
	return res, err
}

// OptimizeContext runs the paper's multi-start simulated annealing over
// the design space (Fig. 4): three parallel annealers with decays 0.89,
// 0.87 and 0.85, T_a from 19 down to 0.5, and 10 perturbations per
// level. Infeasible candidates are rejected outright; feasible ones
// compete on the Eq. (6) objective.
//
// Cancellation: every annealer observes ctx between evaluations, so
// cancelling (or a deadline) stops the run within one evaluation's
// latency, joins all worker goroutines, and returns ctx.Err().
//
// When no annealer finds a feasible starting configuration — the
// paper's "solution does not exist" outcome — the error wraps
// ErrNoFeasibleStart and the returned result still carries the
// exploration counters (match with errors.Is).
func (e *Evaluator) OptimizeContext(ctx context.Context, space Space, seed int64, opt *OptimizeOptions) (*OptimizeResult, error) {
	if err := space.Validate(); err != nil {
		return nil, err
	}
	var progress *progressReporter
	if opt != nil && opt.Progress != nil {
		progress = newProgressReporter(opt.Progress, "anneal", 0)
	}
	budget := initBudget(space)
	objective := func(ev *Evaluation) float64 { return ev.Objective }
	feasible := func(ev *Evaluation) bool { return ev.Feasible }
	init := func(rng *rand.Rand) (DesignPoint, bool) {
		return sampleFeasibleStart(ctx, space, rng, budget, e.Evaluate, objective, feasible)
	}
	// The eval closure tracks the run-wide incumbent under mu so the
	// three parallel annealers stream a single, monotone sequence of
	// improvements.
	var (
		mu        sync.Mutex
		evalErr   error
		evals     int
		incumbent *Evaluation
	)
	eval := func(p DesignPoint) (float64, bool) {
		ev, err := e.EvaluateContext(ctx, p)
		if err != nil {
			mu.Lock()
			if evalErr == nil {
				evalErr = err
			}
			mu.Unlock()
			return 0, false
		}
		mu.Lock()
		evals++
		if ev.Feasible && (incumbent == nil || betterEval(ev, incumbent)) {
			incumbent = ev
			progress.emit(evals, incumbent, true)
		}
		mu.Unlock()
		return ev.Objective, ev.Feasible
	}
	cfgs := anneal.DefaultStarts(seed)
	if e.tel.Enabled() {
		// Bridge annealer progress (per-level events, move counters)
		// into the hub; the observer is shared across the parallel
		// starts and each event carries its Start index.
		obs := &annealObserver{tel: e.tel}
		for i := range cfgs {
			cfgs[i].Observer = obs
		}
	}
	span := e.tel.StartSpan("optimize.total")
	best, per, err := anneal.MultiStartContext(ctx, cfgs, init, space.Neighbor, eval)
	span.End()
	if err != nil {
		return nil, err
	}
	if evalErr != nil {
		return nil, evalErr
	}
	if cerr := ctx.Err(); cerr != nil {
		// The annealers may all have wound down between the last
		// evaluation and the cancellation edge; report it regardless.
		return nil, cerr
	}
	res := &OptimizeResult{
		Found:        best.Found,
		Evaluations:  best.Evaluations,
		Explored:     e.Explored(),
		CacheHitRate: e.CacheHitRate(),
		Duration:     best.Duration,
		PerStart:     per,
	}
	if best.Found {
		ev, err := e.Evaluate(best.Best)
		if err != nil {
			return nil, err
		}
		res.Best = ev
	}
	if e.tel.Tracing() {
		// Aggregate per-start progress into one run-level trace record.
		fields := map[string]any{
			"found":       res.Found,
			"evaluations": res.Evaluations,
			"explored":    res.Explored,
			"hit_rate":    res.CacheHitRate,
			"duration_ms": float64(best.Duration.Microseconds()) / 1e3,
			"starts":      len(per),
		}
		if res.Found {
			fields["best_obj"] = res.Best.Objective
		}
		e.tel.Emit("optimize.done", fields)
	}
	if !res.Found {
		return res, ErrNoFeasibleStart
	}
	return res, nil
}

// betterEval orders feasible evaluations for incumbent selection; see
// betterPoint for the deterministic tie-break.
func betterEval(a, b *Evaluation) bool {
	return betterPoint(a.Objective, a.Point, b.Objective, b.Point)
}
