package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tesa/internal/anneal"
)

// OptimizeResult is the outcome of a TESA optimization run.
type OptimizeResult struct {
	// Best is the winning MCM, nil when no feasible configuration exists
	// (the paper's "solution does not exist" outcome, e.g. 3-D at
	// 500 MHz under a 75 C budget).
	Best *Evaluation
	// Found is false when the whole run saw no feasible point.
	Found bool
	// Evaluations counts annealer evaluations (including cache hits);
	// Explored counts distinct design points actually evaluated.
	Evaluations int
	Explored    int
	// CacheHitRate is the evaluator's memo-cache hit rate over the run.
	CacheHitRate float64
	// Duration is the wall-clock time of the multi-start ensemble.
	Duration time.Duration
	// PerStart reports each annealer's own best; each entry carries its
	// own Duration and Levels, so per-start summaries are self-contained.
	PerStart []anneal.Result[DesignPoint]
	// Quarantined counts distinct design points whose evaluation failed
	// during the run; the annealers treated them as infeasible and moved
	// on. Poisoned lists them with stage and reason, sorted by point.
	Quarantined int
	Poisoned    []QuarantinedPoint
	// Screened counts annealer candidates rejected by the surrogate
	// pre-screen without a grid thermal solve (always 0 unless
	// Options.ThermalFast is set). Screened candidates are still counted
	// in Evaluations — the screen changes their cost, not the
	// trajectory.
	Screened int
	// Ranked counts candidate moves scored by the learned search
	// surrogate (always 0 unless Options.Surrogate is set). Ranked
	// candidates are NOT evaluated — per annealing step only the
	// best-ranked of them is, so Ranked measures how much proposal
	// traffic the model absorbed instead of the pipeline.
	Ranked int
}

// OptimizeOptions tunes the context-first optimizer entrypoint beyond
// the paper's fixed annealing schedule. The zero value (or a nil
// pointer) reproduces the legacy behavior exactly.
type OptimizeOptions struct {
	// Progress, when non-nil, streams incremental incumbents: one update
	// per new best feasible evaluation, with Phase "anneal". See
	// ProgressFunc for the synchronization contract.
	Progress ProgressFunc
	// MaxFailures bounds the quarantine ledger: once more than
	// MaxFailures distinct points have failed, the run aborts with
	// ErrTooManyFailures. 0 (the default) tolerates any number — failed
	// points are rejected like infeasible ones and the search continues.
	MaxFailures int
	// FailFast aborts the run on the first failed evaluation, returning
	// the *EvalError itself instead of quarantining the point.
	FailFast bool
	// Parallel, when > 0, bounds the multi-start worker pool (the CLIs'
	// -starts-parallel flag): at most Parallel annealing chains run
	// concurrently, and each chain's initialization samples are
	// evaluated by Parallel workers too. Results are identical for any
	// value — chains keep their per-start PRNG streams, initialization
	// pre-draws its samples from the chain stream before fanning out,
	// and cross-start objective ties resolve with the deterministic
	// DesignPoint.Less tie-break instead of start order. 0 (the default)
	// preserves the legacy scheduling (all starts concurrent, sequential
	// initialization, start-order ties) bit for bit.
	Parallel int
}

// initAttempts bounds the random search for a feasible starting MCM on
// the full design space; smaller spaces get a proportionally smaller
// budget so the initialization does not trivially exhaust them.
const initAttempts = 400

// initBudget scales the initialization sampling to the space.
func initBudget(space Space) int {
	b := space.Size() / 6
	if b > initAttempts {
		b = initAttempts
	}
	if b < 10 {
		b = 10
	}
	return b
}

// sampleFeasibleStart draws up to budget uniform samples from the space
// and returns the best one under obj among those passing feas — the
// Fig. 4 "initialize with a feasible MCM" step, shared by the TESA
// optimizer and the baseline adoptions. The feasible set can be
// fragmented (infeasible candidates are always rejected, so an annealer
// cannot cross an infeasible band), which makes the starting basin
// decisive. The loop observes ctx between samples; on cancellation it
// reports ok=false and the caller surfaces ctx.Err().
func sampleFeasibleStart(ctx context.Context, space Space, rng *rand.Rand, budget int,
	eval func(DesignPoint) (*Evaluation, error), obj objectiveFn, feas feasibleFn) (DesignPoint, bool) {
	var best DesignPoint
	bestObj, found := 0.0, false
	for i := 0; i < budget; i++ {
		if ctx.Err() != nil {
			return best, false
		}
		p := space.Random(rng)
		ev, err := eval(p)
		if err != nil || !feas(ev) {
			continue
		}
		if o := obj(ev); !found || o < bestObj {
			best, bestObj, found = p, o, true
		}
	}
	return best, found
}

// sampleFeasibleStartParallel is sampleFeasibleStart with a worker pool:
// the budget's draws are taken from rng up front (consuming the same
// PRNG stream the sequential path would), evaluated by up to workers
// goroutines, and the winner is selected sequentially in draw order with
// the same strict-improvement rule — so the returned start is identical
// to the sequential path's for every seed. On cancellation it reports
// ok=false like the sequential path.
func sampleFeasibleStartParallel(ctx context.Context, space Space, rng *rand.Rand, budget, workers int,
	eval func(DesignPoint) (*Evaluation, error), obj objectiveFn, feas feasibleFn) (DesignPoint, bool) {
	draws := make([]DesignPoint, budget)
	for i := range draws {
		draws[i] = space.Random(rng)
	}
	if workers > budget {
		workers = budget
	}
	evs := make([]*Evaluation, budget)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= budget || ctx.Err() != nil {
					return
				}
				if ev, err := eval(draws[i]); err == nil {
					evs[i] = ev
				}
			}
		}()
	}
	wg.Wait()
	var best DesignPoint
	bestObj, found := 0.0, false
	if ctx.Err() != nil {
		return best, false
	}
	for i, ev := range evs {
		if ev == nil || !feas(ev) {
			continue
		}
		if o := obj(ev); !found || o < bestObj {
			best, bestObj, found = draws[i], o, true
		}
	}
	return best, found
}

// sampleFeasibleStartRanked is sampleFeasibleStart with surrogate
// ranking: the budget's draws are taken from rng up front (consuming
// the same PRNG stream as the other paths), ranked best-predicted-first
// by the surrogate's predicted mean (exploitation only — see
// surrogateScoreExploit), and evaluated in that
// order — stopping early once a feasible start is in hand and at least
// an eighth of the budget (min 8) has been evaluated, which is where
// the evals-to-optimum saving comes from. While the model is cold the
// draws are evaluated in draw order to the full budget, matching the
// sequential path's start exactly; a model that warms mid-scoring also
// falls back (conservative — ranking from a partial score set would
// depend on warm-up timing more than on the data).
func (e *Evaluator) sampleFeasibleStartRanked(ctx context.Context, space Space, rng *rand.Rand, budget int,
	eval func(DesignPoint) (*Evaluation, error), obj objectiveFn, feas feasibleFn,
	score func(DesignPoint) (float64, bool)) (DesignPoint, bool) {
	draws := make([]DesignPoint, budget)
	for i := range draws {
		draws[i] = space.Random(rng)
	}
	order := make([]int, budget)
	for i := range order {
		order[i] = i
	}
	scores := make([]float64, budget)
	warm := true
	for i, p := range draws {
		s, ok := score(p)
		if !ok {
			warm = false
			break
		}
		scores[i] = s
	}
	if warm {
		sort.SliceStable(order, func(a, b int) bool { return scores[order[a]] < scores[order[b]] })
		e.recordSurrogate(1, 0, int64(budget))
	} else {
		e.recordSurrogate(0, 1, 0)
	}
	keep := budget / 8
	if keep < 8 {
		keep = 8
	}
	var best DesignPoint
	bestObj, found := 0.0, false
	for n, i := range order {
		if ctx.Err() != nil {
			return best, false
		}
		if warm && found && n >= keep {
			break
		}
		ev, err := eval(draws[i])
		if err != nil || !feas(ev) {
			continue
		}
		if o := obj(ev); !found || o < bestObj {
			best, bestObj, found = draws[i], o, true
		}
	}
	return best, found
}

// Optimize runs the paper's multi-start simulated annealing over the
// design space (Fig. 4) to completion, without cancellation. It is a
// context.Background() wrapper over OptimizeContext that preserves the
// legacy no-solution contract: a run that finds no feasible start
// returns (result with Found=false, nil error) rather than
// ErrNoFeasibleStart, so existing callers and examples behave
// unchanged.
//
// Deprecated: use OptimizeContext, which adds cancellation, deadlines,
// progress streaming, failure policies, and parallel starts, and makes
// the no-solution case explicit via ErrNoFeasibleStart. This wrapper
// remains for compatibility and will not grow new capabilities.
func (e *Evaluator) Optimize(space Space, seed int64) (*OptimizeResult, error) {
	res, err := e.OptimizeContext(context.Background(), space, seed, nil)
	if errors.Is(err, ErrNoFeasibleStart) {
		return res, nil
	}
	return res, err
}

// OptimizeContext runs the paper's multi-start simulated annealing over
// the design space (Fig. 4): three parallel annealers with decays 0.89,
// 0.87 and 0.85, T_a from 19 down to 0.5, and 10 perturbations per
// level. Infeasible candidates are rejected outright; feasible ones
// compete on the Eq. (6) objective.
//
// Cancellation: every annealer observes ctx between evaluations, so
// cancelling (or a deadline) stops the run within one evaluation's
// latency, joins all worker goroutines, and returns ctx.Err().
//
// When no annealer finds a feasible starting configuration — the
// paper's "solution does not exist" outcome — the error wraps
// ErrNoFeasibleStart and the returned result still carries the
// exploration counters (match with errors.Is).
func (e *Evaluator) OptimizeContext(ctx context.Context, space Space, seed int64, opt *OptimizeOptions) (*OptimizeResult, error) {
	if err := space.Validate(); err != nil {
		return nil, err
	}
	var o OptimizeOptions
	if opt != nil {
		o = *opt
	}
	var progress *progressReporter
	if o.Progress != nil {
		progress = newProgressReporter(o.Progress, "anneal", 0)
	}
	// runCtx lets the failure policy stop all annealers without
	// affecting the caller's context.
	runCtx, cancelRun := context.WithCancel(ctx)
	defer cancelRun()
	budget := initBudget(space)
	objective := func(ev *Evaluation) float64 { return ev.Objective }
	feasible := func(ev *Evaluation) bool { return ev.Feasible }
	// The eval closures track the run-wide incumbent and the quarantine
	// ledger under mu so the three parallel annealers stream a single,
	// monotone sequence of improvements and share one failure budget.
	var (
		mu        sync.Mutex
		evalErr   error
		evals     int
		incumbent *Evaluation
		ledger    = make(map[DesignPoint]QuarantinedPoint)
	)
	fail := func(err error) {
		mu.Lock()
		if evalErr == nil {
			evalErr = err
			cancelRun() // stop every annealer within one evaluation
		}
		mu.Unlock()
	}
	// evalQ is the quarantining evaluation shared by the initialization
	// sampling and the annealers: a point-local failure lands in the
	// ledger (deduplicated — the evaluator memoizes failures, so
	// revisits return the same error) and the search continues unless
	// the MaxFailures/FailFast policy says otherwise; any other error
	// aborts the run.
	evalQ := func(p DesignPoint) (*Evaluation, error) {
		ev, err := e.EvaluateContext(runCtx, p)
		if err == nil {
			return ev, nil
		}
		ee, pointLocal := asEvalError(err)
		if !pointLocal {
			fail(err)
			return nil, err
		}
		mu.Lock()
		if _, dup := ledger[p]; !dup {
			ledger[p] = QuarantinedPoint{Point: p, Stage: ee.Stage, Reason: ee.Reason()}
		}
		n := len(ledger)
		mu.Unlock()
		if o.FailFast {
			fail(ee)
		} else if o.MaxFailures > 0 && n > o.MaxFailures {
			fail(fmt.Errorf("%w: %d points quarantined (limit %d), last: %v",
				ErrTooManyFailures, n, o.MaxFailures, ee))
		}
		return nil, err
	}
	// With the learned surrogate enabled, candidate moves are drawn K at
	// a time and the model proposes the best-ranked one, and the seeding
	// pool is evaluated best-predicted-first. Both paths fall back to
	// the plain behavior while the model is cold, and every proposal is
	// still evaluated at full pipeline fidelity — the ranking steers the
	// trajectory, never the answers (the reported winner is additionally
	// re-evaluated below, like every winner).
	neighbor := space.Neighbor
	score := e.surrogateScore()
	var rank *anneal.RankStats
	if score != nil {
		rank = &anneal.RankStats{}
		neighbor = anneal.RankedNeighbor(e.surrogateK(), space.Neighbor, score, rank)
	}
	init := func(rng *rand.Rand) (DesignPoint, bool) {
		if score != nil {
			// Seeding ranks by predicted mean, not LCB: a starting pool
			// wants likely-feasible draws first (see surrogateScoreExploit).
			return e.sampleFeasibleStartRanked(runCtx, space, rng, budget, evalQ, objective, feasible, e.surrogateScoreExploit())
		}
		if o.Parallel > 0 {
			return sampleFeasibleStartParallel(runCtx, space, rng, budget, o.Parallel, evalQ, objective, feasible)
		}
		return sampleFeasibleStart(runCtx, space, rng, budget, evalQ, objective, feasible)
	}
	eval := func(p DesignPoint) (float64, bool) {
		ev, err := evalQ(p)
		if err != nil {
			// Failed points are rejected exactly like infeasible ones;
			// the annealer backs away and keeps searching.
			return 0, false
		}
		mu.Lock()
		evals++
		if ev.Feasible && (incumbent == nil || betterEval(ev, incumbent)) {
			incumbent = ev
			progress.emit(evals, incumbent, true, len(ledger))
		}
		mu.Unlock()
		return ev.Objective, ev.Feasible
	}
	annealEval := eval
	var screen *anneal.ScreenStats
	if e.Opts.ThermalFast {
		// Surrogate pre-screen at the annealer level: a candidate whose
		// (memoized, surrogate-gated) evaluation was hot-skipped carries a
		// lumped-underestimate certificate of infeasibility, so the
		// annealer can reject it without entering the eval closure. The
		// screen evaluates through evalQ itself — the gate inside the
		// pipeline already avoided the grid solve — and a screened
		// candidate is trajectory-identical to an infeasible evaluation
		// (no PRNG is consumed either way; see anneal.Prescreened).
		screen = &anneal.ScreenStats{}
		annealEval = anneal.Prescreened(func(p DesignPoint) bool {
			ev, err := evalQ(p)
			return err == nil && ev.ThermalFidelity == "surrogate-hot"
		}, screen, eval)
	}
	cfgs := anneal.DefaultStarts(seed)
	if e.tel.Enabled() {
		// Bridge annealer progress (per-level events, move counters)
		// into the hub; the observer is shared across the parallel
		// starts and each event carries its Start index.
		obs := &annealObserver{tel: e.tel}
		for i := range cfgs {
			cfgs[i].Observer = obs
		}
	}
	span := e.tel.StartSpan("optimize.total")
	var best anneal.Result[DesignPoint]
	var per []anneal.Result[DesignPoint]
	var err error
	if o.Parallel > 0 {
		// Worker-pool mode: bounded chain concurrency plus the
		// state-based tie-break, so the ensemble winner is deterministic
		// under any pool width.
		less := func(a, b DesignPoint) bool { return a.Less(b) }
		best, per, err = anneal.MultiStartPoolContext(runCtx, cfgs, o.Parallel, less, init, neighbor, annealEval)
	} else {
		best, per, err = anneal.MultiStartContext(runCtx, cfgs, init, neighbor, annealEval)
	}
	span.End()
	// The failure policy cancels runCtx, so the annealers report a bare
	// context.Canceled; the recorded evalErr is the real cause and must
	// win.
	mu.Lock()
	ferr := evalErr
	poisoned := make([]QuarantinedPoint, 0, len(ledger))
	for _, q := range ledger {
		poisoned = append(poisoned, q)
	}
	mu.Unlock()
	sort.Slice(poisoned, func(i, j int) bool { return poisoned[i].Point.Less(poisoned[j].Point) })
	if ferr != nil {
		return nil, ferr
	}
	if err != nil {
		return nil, err
	}
	if cerr := ctx.Err(); cerr != nil {
		// The annealers may all have wound down between the last
		// evaluation and the cancellation edge; report it regardless.
		return nil, cerr
	}
	res := &OptimizeResult{
		Found:        best.Found,
		Evaluations:  best.Evaluations,
		Explored:     e.Explored(),
		CacheHitRate: e.CacheHitRate(),
		Duration:     best.Duration,
		PerStart:     per,
		Quarantined:  len(poisoned),
		Poisoned:     poisoned,
	}
	if screen != nil {
		res.Screened = screen.Screened()
		e.tel.Registry().Counter("anneal.screened").Add(int64(res.Screened))
	}
	if rank != nil {
		res.Ranked = rank.Ranked()
		e.recordSurrogate(int64(rank.Decided()), int64(rank.Cold()), int64(rank.Ranked()))
	}
	if best.Found {
		ev, err := e.Evaluate(best.Best)
		if err != nil {
			return nil, err
		}
		if ev.Compact() || strings.HasPrefix(ev.ThermalFidelity, "surrogate-") {
			// The winner's memoized DSE evaluation was surrogate-gated
			// (conservative cool-side temperatures) or served compact from
			// a persistent memo record (no schedule/placement); the
			// reported incumbent must carry grid-solved numbers and the
			// full structures, so re-evaluate in reporting mode, which
			// bypasses both.
			if ev, err = e.EvaluateFull(best.Best); err != nil {
				return nil, err
			}
		}
		res.Best = ev
	}
	if e.tel.Tracing() {
		// Aggregate per-start progress into one run-level trace record.
		fields := map[string]any{
			"found":       res.Found,
			"evaluations": res.Evaluations,
			"explored":    res.Explored,
			"hit_rate":    res.CacheHitRate,
			"duration_ms": float64(best.Duration.Microseconds()) / 1e3,
			"starts":      len(per),
			"quarantined": res.Quarantined,
			"screened":    res.Screened,
			"ranked":      res.Ranked,
		}
		if res.Found {
			fields["best_obj"] = res.Best.Objective
		}
		e.tel.Emit("optimize.done", fields)
	}
	if !res.Found {
		return res, ErrNoFeasibleStart
	}
	return res, nil
}

// betterEval orders feasible evaluations for incumbent selection; see
// BetterPoint for the deterministic tie-break.
func betterEval(a, b *Evaluation) bool {
	return BetterPoint(a.Objective, a.Point, b.Objective, b.Point)
}
