package core

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"tesa/internal/anneal"
)

// OptimizeResult is the outcome of a TESA optimization run.
type OptimizeResult struct {
	// Best is the winning MCM, nil when no feasible configuration exists
	// (the paper's "solution does not exist" outcome, e.g. 3-D at
	// 500 MHz under a 75 C budget).
	Best *Evaluation
	// Found is false when the whole run saw no feasible point.
	Found bool
	// Evaluations counts annealer evaluations (including cache hits);
	// Explored counts distinct design points actually evaluated.
	Evaluations int
	Explored    int
	// CacheHitRate is the evaluator's memo-cache hit rate over the run.
	CacheHitRate float64
	// Duration is the wall-clock time of the multi-start ensemble.
	Duration time.Duration
	// PerStart reports each annealer's own best; each entry carries its
	// own Duration and Levels, so per-start summaries are self-contained.
	PerStart []anneal.Result[DesignPoint]
}

// initAttempts bounds the random search for a feasible starting MCM on
// the full design space; smaller spaces get a proportionally smaller
// budget so the initialization does not trivially exhaust them.
const initAttempts = 400

// initBudget scales the initialization sampling to the space.
func initBudget(space Space) int {
	b := space.Size() / 6
	if b > initAttempts {
		b = initAttempts
	}
	if b < 10 {
		b = 10
	}
	return b
}

// Optimize runs the paper's multi-start simulated annealing over the
// design space (Fig. 4): three parallel annealers with decays 0.89, 0.87
// and 0.85, T_a from 19 down to 0.5, and 10 perturbations per level.
// Infeasible candidates are rejected outright; feasible ones compete on
// the Eq. (6) objective.
func (e *Evaluator) Optimize(space Space, seed int64) (*OptimizeResult, error) {
	if err := space.Validate(); err != nil {
		return nil, err
	}
	// Initialization with a feasible MCM (Fig. 4): sample the space and
	// start from the BEST feasible sample. The feasible set can be
	// fragmented (infeasible candidates are always rejected, so an
	// annealer cannot cross an infeasible band), which makes the starting
	// basin decisive.
	budget := initBudget(space)
	init := func(rng *rand.Rand) (DesignPoint, bool) {
		var best DesignPoint
		bestObj, found := 0.0, false
		for i := 0; i < budget; i++ {
			p := space.Random(rng)
			ev, err := e.Evaluate(p)
			if err != nil || !ev.Feasible {
				continue
			}
			if !found || ev.Objective < bestObj {
				best, bestObj, found = p, ev.Objective, true
			}
		}
		return best, found
	}
	var evalErr error
	var errOnce sync.Once
	eval := func(p DesignPoint) (float64, bool) {
		ev, err := e.Evaluate(p)
		if err != nil {
			errOnce.Do(func() { evalErr = err })
			return 0, false
		}
		return ev.Objective, ev.Feasible
	}
	cfgs := anneal.DefaultStarts(seed)
	if e.tel.Enabled() {
		// Bridge annealer progress (per-level events, move counters)
		// into the hub; the observer is shared across the parallel
		// starts and each event carries its Start index.
		obs := &annealObserver{tel: e.tel}
		for i := range cfgs {
			cfgs[i].Observer = obs
		}
	}
	span := e.tel.StartSpan("optimize.total")
	best, per, err := anneal.MultiStart(cfgs, init, space.Neighbor, eval)
	span.End()
	if err != nil {
		return nil, err
	}
	if evalErr != nil {
		return nil, evalErr
	}
	res := &OptimizeResult{
		Found:        best.Found,
		Evaluations:  best.Evaluations,
		Explored:     e.Explored(),
		CacheHitRate: e.CacheHitRate(),
		Duration:     best.Duration,
		PerStart:     per,
	}
	if best.Found {
		ev, err := e.Evaluate(best.Best)
		if err != nil {
			return nil, err
		}
		res.Best = ev
	}
	if e.tel.Tracing() {
		// Aggregate per-start progress into one run-level trace record.
		fields := map[string]any{
			"found":       res.Found,
			"evaluations": res.Evaluations,
			"explored":    res.Explored,
			"hit_rate":    res.CacheHitRate,
			"duration_ms": float64(best.Duration.Microseconds()) / 1e3,
			"starts":      len(per),
		}
		if res.Found {
			fields["best_obj"] = res.Best.Objective
		}
		e.tel.Emit("optimize.done", fields)
	}
	return res, nil
}

// ExhaustiveResult is the outcome of a full design-space sweep.
type ExhaustiveResult struct {
	// Best is the global optimum, nil when nothing is feasible.
	Best *Evaluation
	// Feasible counts feasible points; Total is the space size.
	Feasible, Total int
}

// Exhaustive evaluates every design vector in the space in parallel and
// returns the global optimum of Eq. (6). The paper uses this on a small
// validation sub-space to certify the optimizer (Sec. IV-A); it is also
// how the "an exhaustive evaluation can take multiple days" claim is
// quantified against the annealer's <15% exploration.
func (e *Evaluator) Exhaustive(space Space) (*ExhaustiveResult, error) {
	if err := space.Validate(); err != nil {
		return nil, err
	}
	pts := space.Enumerate()
	res := &ExhaustiveResult{Total: len(pts)}

	workers := runtime.GOMAXPROCS(0)
	if workers > len(pts) {
		workers = len(pts)
	}
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		firstEr error
		next    int
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if firstEr != nil || next >= len(pts) {
					mu.Unlock()
					return
				}
				p := pts[next]
				next++
				mu.Unlock()

				ev, err := e.Evaluate(p)
				mu.Lock()
				if err != nil {
					if firstEr == nil {
						firstEr = err
					}
					mu.Unlock()
					return
				}
				if ev.Feasible {
					res.Feasible++
					if res.Best == nil || ev.Objective < res.Best.Objective {
						res.Best = ev
					}
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if firstEr != nil {
		return nil, fmt.Errorf("core: exhaustive sweep: %w", firstEr)
	}
	return res, nil
}
