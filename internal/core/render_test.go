package core

import (
	"strings"
	"testing"
)

func TestFloorplanASCII2D(t *testing.T) {
	e := testEvaluator(t, Tech2D, 400, 15, 85)
	ev, err := e.Evaluate(DesignPoint{ArrayDim: 200, ICSUM: 1700})
	if err != nil {
		t.Fatal(err)
	}
	out := FloorplanASCII(ev)
	if !strings.Contains(out, "A") || !strings.Contains(out, "S") {
		t.Errorf("2-D floorplan missing array/SRAM regions:\n%s", out)
	}
	if !strings.Contains(out, "2x1 grid") {
		t.Errorf("missing mesh label:\n%s", out)
	}
}

func TestFloorplanASCII3D(t *testing.T) {
	e := testEvaluator(t, Tech3D, 400, 15, 85)
	ev, err := e.Evaluate(DesignPoint{ArrayDim: 196, ICSUM: 1000})
	if err != nil {
		t.Fatal(err)
	}
	out := FloorplanASCII(ev)
	if !strings.Contains(out, "3") || !strings.Contains(out, "m") {
		t.Errorf("3-D floorplan missing stack/margin markers:\n%s", out)
	}
}

func TestFloorplanASCIINoPlacement(t *testing.T) {
	if out := FloorplanASCII(&Evaluation{}); out != "" {
		t.Error("rendered a floorplan without placement")
	}
	if out := FloorplanASCII(nil); out != "" {
		t.Error("rendered a nil evaluation")
	}
}
