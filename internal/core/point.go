package core

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"

	"tesa/internal/area"
)

// DesignPoint is one candidate MCM configuration: the optimizer's state.
// Exactly as in the paper's Fig. 4, the optimizer tunes two knobs — the
// chiplet size (array dimension) and the inter-chiplet spacing. The two
// remaining quantities of a configuration are DERIVED:
//
//   - The per-SRAM capacity follows from the array dimension through the
//     paper's area-ratio assumption (the systolic array and its three
//     SRAMs occupy roughly equal silicon), rounded to the nearest power
//     of two. Every chiplet the paper reports obeys that rule (200x200 ->
//     3x1,024 KB, 96x96 -> 3x256 KB, 186x186 -> 3x512 KB, 56x56 ->
//     3x64 KB, 16x16 -> 3x8 KB, 132x132 -> 3x512 KB).
//   - The mesh is the max-fit grid of the mesh estimator (capped at the
//     DNN count): the ICS knob therefore controls the chiplet count, the
//     way the paper's Table V rows flip between "2x" at 1,700-1,950 um
//     and "3x" at 1,250-1,400 um spacing.
type DesignPoint struct {
	// ArrayDim is the square systolic-array dimension (ArrayDim^2 PEs).
	ArrayDim int
	// ICSUM is the inter-chiplet spacing in micrometers.
	ICSUM int
}

// SRAMKB returns the derived per-SRAM capacity in KB (see DesignPoint).
func (p DesignPoint) SRAMKB() int {
	return SRAMKBForArray(p.ArrayDim)
}

// Less orders design points lexicographically (array dimension, then
// ICS). The engines use it to break objective ties deterministically, so
// parallel sweeps of the same space always report the same winner.
func (p DesignPoint) Less(q DesignPoint) bool {
	if p.ArrayDim != q.ArrayDim {
		return p.ArrayDim < q.ArrayDim
	}
	return p.ICSUM < q.ICSUM
}

// String formats the point the way the paper's tables do.
func (p DesignPoint) String() string {
	return fmt.Sprintf("%dx%d array, %d KB SRAM, ICS %d um",
		p.ArrayDim, p.ArrayDim, 3*p.SRAMKB(), p.ICSUM)
}

// SRAMKBForArray derives the per-SRAM capacity (KB, power of two in
// [8, 4096]) whose macro area is nearest one third of the array area —
// the paper's array:SRAM area ratio of ~1 with three equal SRAMs. Near
// log-space ties round UP: an undersized SRAM costs DRAM refetch traffic,
// while oversizing only costs a little area. This reproduces every
// capacity the paper reports, including the borderline 132x132 -> 512 KB.
func SRAMKBForArray(arrayDim int) int {
	arrayMM2 := float64(arrayDim) * float64(arrayDim) * area.MACAreaMM2
	// Invert the SRAM area model's capacity-proportional term.
	targetBytes := arrayMM2 / 3 / 1.18e-6
	targetKB := targetBytes / 1024
	const tieBand = 0.04
	best, bestDist := 8, math.Inf(1)
	for kb := 8; kb <= 4096; kb *= 2 {
		if targetKB <= 0 {
			break
		}
		d := math.Abs(math.Log(float64(kb) / targetKB))
		if d < bestDist-tieBand || (d < bestDist+tieBand && kb > best) {
			best, bestDist = kb, d
		}
	}
	return best
}

// Space is the discrete design space (Table II).
type Space struct {
	ArrayDims []int // square array dimensions
	ICSUMs    []int // inter-chiplet spacings in micrometers
}

// DefaultSpace returns the paper's Table II space: 121 array sizes
// (16x16 .. 256x256, step 2) and 21 ICS options (0..1 mm, 50 um steps).
// With the 14 candidate meshes the estimator can derive, this is the
// paper's 35.6k-MCM design space.
func DefaultSpace() Space {
	var s Space
	for d := 16; d <= 256; d += 2 {
		s.ArrayDims = append(s.ArrayDims, d)
	}
	for ics := 0; ics <= 1000; ics += 50 {
		s.ICSUMs = append(s.ICSUMs, ics)
	}
	return s
}

// ValidationSpace returns the small space of the paper's Sec. IV-A
// optimizer-correctness study: 64x64 .. 128x128 arrays with a coarse
// 200 um ICS step, exhaustively enumerable.
func ValidationSpace() Space {
	var s Space
	for d := 64; d <= 128; d += 2 {
		s.ArrayDims = append(s.ArrayDims, d)
	}
	for ics := 0; ics <= 1000; ics += 200 {
		s.ICSUMs = append(s.ICSUMs, ics)
	}
	return s
}

// Validate reports an error for empty or non-physical spaces. All
// failures wrap ErrInvalidSpace.
func (s Space) Validate() error {
	if len(s.ArrayDims) == 0 || len(s.ICSUMs) == 0 {
		return fmt.Errorf("%w: empty axis", ErrInvalidSpace)
	}
	for _, d := range s.ArrayDims {
		if d <= 0 {
			return fmt.Errorf("%w: non-positive array dim %d", ErrInvalidSpace, d)
		}
	}
	for _, ics := range s.ICSUMs {
		if ics < 0 {
			return fmt.Errorf("%w: negative ICS %d um", ErrInvalidSpace, ics)
		}
	}
	return nil
}

// Fingerprint is a stable hash of the space's axes, used to bind sweep
// checkpoints to the space they were taken from.
func (s Space) Fingerprint() string {
	h := fnv.New64a()
	for _, d := range s.ArrayDims {
		fmt.Fprintf(h, "a%d,", d)
	}
	for _, ics := range s.ICSUMs {
		fmt.Fprintf(h, "i%d,", ics)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// Size returns the number of design vectors in the space.
func (s Space) Size() int {
	return len(s.ArrayDims) * len(s.ICSUMs)
}

// Contains reports whether the point lies on the space's axes.
func (s Space) Contains(p DesignPoint) bool {
	return indexOf(s.ArrayDims, p.ArrayDim) >= 0 && indexOf(s.ICSUMs, p.ICSUM) >= 0
}

// Enumerate lists every design vector (used by exhaustive search).
func (s Space) Enumerate() []DesignPoint {
	pts := make([]DesignPoint, 0, s.Size())
	for _, d := range s.ArrayDims {
		for _, ics := range s.ICSUMs {
			pts = append(pts, DesignPoint{ArrayDim: d, ICSUM: ics})
		}
	}
	return pts
}

// Random draws a uniform point from the space.
func (s Space) Random(rng *rand.Rand) DesignPoint {
	return DesignPoint{
		ArrayDim: s.ArrayDims[rng.Intn(len(s.ArrayDims))],
		ICSUM:    s.ICSUMs[rng.Intn(len(s.ICSUMs))],
	}
}

// Neighbor perturbs the point per Fig. 4: each perturbation tunes either
// the chiplet size (array dimension, which also retunes the derived SRAM
// capacity and can change the derived mesh) or the ICS (which can change
// the derived mesh). The result always stays in the space.
func (s Space) Neighbor(p DesignPoint, rng *rand.Rand) DesignPoint {
	q := p
	if rng.Intn(2) == 0 {
		// Array dimension: up to 4 axis steps either way.
		q.ArrayDim = stepAxis(s.ArrayDims, p.ArrayDim, rng, 4)
	} else {
		// ICS: up to 2 steps.
		q.ICSUM = stepAxis(s.ICSUMs, p.ICSUM, rng, 2)
	}
	return q
}

// stepAxis moves value along axis by a uniform nonzero offset in
// [-maxStep, maxStep], clamped to the axis ends. A value not on the axis
// snaps to the nearest entry.
func stepAxis(axis []int, value int, rng *rand.Rand, maxStep int) int {
	i := indexOf(axis, value)
	if i < 0 {
		i = nearest(axis, value)
	}
	step := rng.Intn(2*maxStep) + 1
	if step > maxStep {
		step = maxStep - step // maps to -1..-maxStep
	}
	j := i + step
	if j < 0 {
		j = 0
	}
	if j >= len(axis) {
		j = len(axis) - 1
	}
	return axis[j]
}

func indexOf(axis []int, v int) int {
	for i, a := range axis {
		if a == v {
			return i
		}
	}
	return -1
}

func nearest(axis []int, v int) int {
	best, bestD := 0, -1
	for i, a := range axis {
		d := a - v
		if d < 0 {
			d = -d
		}
		if bestD < 0 || d < bestD {
			best, bestD = i, d
		}
	}
	return best
}
