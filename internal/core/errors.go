package core

import (
	"errors"
	"fmt"

	"tesa/internal/thermal"
)

// Sentinel errors of the search layer. Callers match them with
// errors.Is; every error the engines return that represents one of these
// conditions wraps the corresponding sentinel (possibly with detail
// appended), so substring matching is never needed.
var (
	// ErrInvalidSpace marks a design space that cannot be searched:
	// empty axes, non-positive array dimensions, negative spacings, or a
	// design point off the space's axes.
	ErrInvalidSpace = errors.New("core: invalid design space")

	// ErrNoFeasibleStart is returned by the context-first optimizer
	// entrypoints when the initialization sampling (Fig. 4's "initialize
	// with a feasible MCM") finds no feasible configuration, i.e. the
	// paper's "solution does not exist" outcome. The legacy Optimize
	// wrapper converts it back to the historical (Found=false, nil error)
	// result for existing callers.
	ErrNoFeasibleStart = errors.New("core: no feasible starting configuration")

	// ErrCheckpointCorrupt marks an unreadable or inconsistent sweep
	// checkpoint: malformed records, a missing or conflicting header, or
	// a checkpoint that does not match the space being swept.
	ErrCheckpointCorrupt = errors.New("core: corrupt checkpoint")
)

// Evaluation-failure taxonomy. A failed evaluation of a single design
// point is always reported as an *EvalError wrapping one of these
// sentinels (or the raw model error), so the engines can tell a
// poisoned point — which they quarantine and skip — from an engine-level
// failure that must abort the run.
var (
	// ErrStagePanic marks a pipeline stage that panicked; the per-point
	// recover converted it into a structured error instead of killing
	// the worker pool.
	ErrStagePanic = errors.New("core: stage panic")

	// ErrNonFinite marks a NaN or Inf stage output caught by the
	// boundary validation before it could poison downstream stages, the
	// memo cache, or a checkpoint.
	ErrNonFinite = errors.New("core: non-finite stage output")

	// ErrSolverDiverged marks a thermal evaluation whose CG solve failed
	// to converge at every fidelity level of the degraded-retry ladder
	// (full grid, relaxed tolerance, coarse grid, lumped fallback).
	ErrSolverDiverged = errors.New("core: thermal solver diverged")

	// ErrStageTimeout marks a stage that exceeded the evaluator's
	// per-stage wall-clock budget (Evaluator.SetStageTimeout).
	ErrStageTimeout = errors.New("core: stage timeout")

	// ErrTooManyFailures aborts a sweep or optimization once more points
	// were quarantined than the run's MaxFailures policy tolerates.
	ErrTooManyFailures = errors.New("core: too many failed evaluations")
)

// EvalError is the structured failure of one design-point evaluation:
// which stage failed, for which point, and why. It wraps the underlying
// cause (one of the taxonomy sentinels above, or a raw model error), so
// errors.Is and errors.As both work through it. The engines treat any
// *EvalError as point-local: the point is quarantined with its reason
// and the run continues; every other error aborts the run.
type EvalError struct {
	// Stage is the pipeline stage that failed ("systolic", "floorplan",
	// "sched", "dram", "cost", "thermal", or "pipeline" when the failure
	// could not be attributed).
	Stage string
	// Point is the design point being evaluated.
	Point DesignPoint
	// Err is the underlying cause.
	Err error
	// Trace is the failing goroutine's flight-recorder dump — its most
	// recent stage events, oldest first — captured when the point was
	// quarantined. Nil when the evaluator was not instrumented (or the
	// pipeline ran on another goroutine via the shared memo store's
	// single-flight path).
	Trace []string
}

// Error formats the failure with its full context.
func (e *EvalError) Error() string {
	return fmt.Sprintf("core: evaluation of %v failed at stage %s: %v", e.Point, e.Stage, e.Err)
}

// Unwrap exposes the cause to errors.Is/As.
func (e *EvalError) Unwrap() error { return e.Err }

// Reason returns the short machine-readable failure class used in
// quarantine ledgers, checkpoint records, and telemetry counter names:
// "panic", "non-finite", "solver-diverged", "timeout", "invalid-step",
// or "error". The thermal package's transient input sentinels map into
// the same classes, so a DES scenario that feeds the solver a bad
// power trace or timestep quarantines exactly like any other poisoned
// point.
func (e *EvalError) Reason() string {
	switch {
	case errors.Is(e.Err, ErrStagePanic):
		return "panic"
	case errors.Is(e.Err, ErrNonFinite), errors.Is(e.Err, thermal.ErrNonFinitePower):
		return "non-finite"
	case errors.Is(e.Err, ErrSolverDiverged):
		return "solver-diverged"
	case errors.Is(e.Err, ErrStageTimeout):
		return "timeout"
	case errors.Is(e.Err, thermal.ErrInvalidStep):
		return "invalid-step"
	default:
		return "error"
	}
}

// QuarantinedPoint is one entry of a run's quarantine ledger: a design
// point whose evaluation failed, with the stage and failure class. The
// sweep engine persists these as checkpoint.poisoned records so a
// resumed run skips the poisoned points instead of re-evaluating them.
type QuarantinedPoint struct {
	Point  DesignPoint
	Stage  string
	Reason string
	// Trace is the flight-recorder dump captured at quarantine time (see
	// EvalError.Trace); nil when flight recording was off.
	Trace []string
}

// String formats the ledger entry for CLI failure summaries.
func (q QuarantinedPoint) String() string {
	return fmt.Sprintf("%v: %s at stage %s", q.Point, q.Reason, q.Stage)
}

// asEvalError extracts the structured per-point failure, if the error is
// one (directly or wrapped).
func asEvalError(err error) (*EvalError, bool) {
	var ee *EvalError
	if errors.As(err, &ee) {
		return ee, true
	}
	return nil, false
}
