package core

import "errors"

// Sentinel errors of the search layer. Callers match them with
// errors.Is; every error the engines return that represents one of these
// conditions wraps the corresponding sentinel (possibly with detail
// appended), so substring matching is never needed.
var (
	// ErrInvalidSpace marks a design space that cannot be searched:
	// empty axes, non-positive array dimensions, negative spacings, or a
	// design point off the space's axes.
	ErrInvalidSpace = errors.New("core: invalid design space")

	// ErrNoFeasibleStart is returned by the context-first optimizer
	// entrypoints when the initialization sampling (Fig. 4's "initialize
	// with a feasible MCM") finds no feasible configuration, i.e. the
	// paper's "solution does not exist" outcome. The legacy Optimize
	// wrapper converts it back to the historical (Found=false, nil error)
	// result for existing callers.
	ErrNoFeasibleStart = errors.New("core: no feasible starting configuration")

	// ErrCheckpointCorrupt marks an unreadable or inconsistent sweep
	// checkpoint: malformed records, a missing or conflicting header, or
	// a checkpoint that does not match the space being swept.
	ErrCheckpointCorrupt = errors.New("core: corrupt checkpoint")
)
