package core

import (
	"testing"

	"tesa/internal/dnn"
)

// tinySpace returns a small sub-space for fast optimizer tests.
func tinySpace() Space {
	var s Space
	for d := 180; d <= 256; d += 4 {
		s.ArrayDims = append(s.ArrayDims, d)
	}
	for ics := 0; ics <= 1000; ics += 250 {
		s.ICSUMs = append(s.ICSUMs, ics)
	}
	return s
}

// TestOptimizeFindsFeasible: on a space known to contain feasible points,
// the MSA returns one and its objective matches a fresh evaluation.
func TestOptimizeFindsFeasible(t *testing.T) {
	e := testEvaluator(t, Tech2D, 400, 15, 85)
	res, err := e.Optimize(tinySpace(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("optimizer found nothing on a feasible space")
	}
	if !res.Best.Feasible {
		t.Fatalf("winner infeasible: %v", res.Best.Violations)
	}
	if res.Evaluations <= 0 || res.Explored <= 0 {
		t.Errorf("bad counters: %+v", res)
	}
	if len(res.PerStart) != 3 {
		t.Errorf("per-start results = %d, want 3 (the paper's three annealers)", len(res.PerStart))
	}
}

// TestOptimizeAgreesWithExhaustive is the Sec. IV-A correctness check on
// a reduced space: the annealer must land on the exhaustive optimum.
func TestOptimizeAgreesWithExhaustive(t *testing.T) {
	space := tinySpace()
	ex := testEvaluator(t, Tech2D, 400, 15, 85)
	exRes, err := ex.Exhaustive(space)
	if err != nil {
		t.Fatal(err)
	}
	if exRes.Best == nil {
		t.Fatal("exhaustive search found nothing")
	}
	op := testEvaluator(t, Tech2D, 400, 15, 85)
	opRes, err := op.Optimize(space, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !opRes.Found {
		t.Fatal("optimizer found nothing")
	}
	if opRes.Best.Objective > exRes.Best.Objective*(1+1e-9) {
		t.Errorf("optimizer objective %.6f worse than global optimum %.6f (point %v vs %v)",
			opRes.Best.Objective, exRes.Best.Objective, opRes.Best.Point, exRes.Best.Point)
	}
}

// TestOptimizeReportsNoSolution: with an impossible power budget the
// optimizer reports the paper's "solution does not exist" outcome.
func TestOptimizeReportsNoSolution(t *testing.T) {
	opts := DefaultOptions()
	opts.Grid = 24
	cons := DefaultConstraints()
	cons.PowerBudgetW = 0.01
	e, err := NewEvaluator(dnn.ARVRWorkload(), opts, cons, Models{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Optimize(tinySpace(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Errorf("found %v under a 10 mW budget", res.Best.Point)
	}
}

// TestExhaustiveCountsFeasible: the sweep's feasible count matches
// re-evaluation.
func TestExhaustiveCountsFeasible(t *testing.T) {
	space := Space{ArrayDims: []int{196, 220, 244}, ICSUMs: []int{200, 800}}
	e := testEvaluator(t, Tech2D, 400, 15, 85)
	res, err := e.Exhaustive(space)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != 6 {
		t.Fatalf("total = %d, want 6", res.Total)
	}
	count := 0
	for _, p := range space.Enumerate() {
		ev, err := e.Evaluate(p)
		if err != nil {
			t.Fatal(err)
		}
		if ev.Feasible {
			count++
		}
	}
	if count != res.Feasible {
		t.Errorf("feasible = %d, recount = %d", res.Feasible, count)
	}
	if res.Best != nil {
		for _, p := range space.Enumerate() {
			ev, _ := e.Evaluate(p)
			if ev.Feasible && ev.Objective < res.Best.Objective {
				t.Errorf("exhaustive missed better point %v (%.4f < %.4f)", p, ev.Objective, res.Best.Objective)
			}
		}
	}
}

// TestOptimizeDeterministic: same seed, same winner.
func TestOptimizeDeterministic(t *testing.T) {
	run := func() DesignPoint {
		e := testEvaluator(t, Tech2D, 400, 15, 85)
		res, err := e.Optimize(tinySpace(), 11)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found {
			t.Fatal("nothing found")
		}
		return res.Best.Point
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same seed diverged: %v vs %v", a, b)
	}
}
