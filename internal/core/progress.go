package core

import "time"

// Progress is one incremental update from a long-running search. The
// engines emit it through a ProgressFunc so CLIs can render live
// status lines and callers can react (e.g. cancel a context once the
// incumbent is good enough) without waiting for the run to finish.
type Progress struct {
	// Phase names the emitting engine stage: "anneal" for the
	// multi-start optimizer, "sweep" for the sharded exhaustive engine.
	Phase string
	// Done counts completed evaluations (anneal) or evaluated points
	// including resumed ones (sweep); Total is the number of points in
	// the space for sweeps and 0 for anneal runs, whose length is not
	// known in advance.
	Done, Total int
	// Incumbent is the best feasible evaluation seen so far, nil while
	// nothing feasible has been found.
	Incumbent *Evaluation
	// Improved marks updates that announce a new incumbent (as opposed
	// to periodic completion ticks).
	Improved bool
	// Quarantined counts design points whose evaluation failed and was
	// quarantined so far (including ones credited from a resumed
	// checkpoint).
	Quarantined int
	// Elapsed is the wall-clock time since the engine started.
	Elapsed time.Duration
}

// ProgressFunc receives Progress updates. The engines serialize calls
// (no two run concurrently) and invoke it synchronously on a worker
// goroutine, so it must be fast and must not block; slow consumers
// should buffer. A nil ProgressFunc disables streaming at zero cost.
type ProgressFunc func(Progress)

// progressReporter serializes incumbent tracking and Progress emission
// for engines whose workers run in parallel. The zero value with a nil
// fn is a no-op.
type progressReporter struct {
	fn    ProgressFunc
	phase string
	total int
	began time.Time
}

func newProgressReporter(fn ProgressFunc, phase string, total int) *progressReporter {
	return &progressReporter{fn: fn, phase: phase, total: total, began: time.Now()}
}

// emit sends one update; callers must already hold whatever lock
// serializes their incumbent state.
func (r *progressReporter) emit(done int, incumbent *Evaluation, improved bool, quarantined int) {
	if r == nil || r.fn == nil {
		return
	}
	r.fn(Progress{
		Phase:       r.phase,
		Done:        done,
		Total:       r.total,
		Incumbent:   incumbent,
		Improved:    improved,
		Quarantined: quarantined,
		Elapsed:     time.Since(r.began),
	})
}
