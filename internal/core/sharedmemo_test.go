package core

import (
	"context"
	"sync"
	"testing"

	"tesa/internal/dnn"
	"tesa/internal/memo"
)

// memoJob is one "server request": a corner (distinct constraints) to be
// optimized over tinySpace with its own seed.
type memoJob struct {
	fps, budgetC float64
	seed         int64
}

// sharedMemoJobs are four corners that are all feasible on gateSpace and
// differ only in constraints, so they share the performance fingerprint
// (and with it the profiles/systolic/sram keys) but never the
// constraint-bound whole-point eval keys — exactly the traffic mix a
// long-running tesa-server sees.
func sharedMemoJobs() []memoJob {
	return []memoJob{
		{fps: 15, budgetC: 85, seed: 1},
		{fps: 15, budgetC: 90, seed: 2},
		{fps: 10, budgetC: 85, seed: 3},
		{fps: 12, budgetC: 95, seed: 4},
	}
}

// sumKinds aggregates per-kind stats across isolated stores.
func sumKinds(stats []memo.Stats) map[string]memo.KindStats {
	out := make(map[string]memo.KindStats)
	for _, st := range stats {
		for k, ks := range st.Kinds {
			agg := out[k]
			agg.Hits += ks.Hits
			agg.Misses += ks.Misses
			agg.Deduped += ks.Deduped
			out[k] = agg
		}
	}
	return out
}

// lookups is the total number of store lookups a KindStats records:
// every lookup increments exactly one of Hits, Misses, or Deduped.
func lookups(ks memo.KindStats) int64 { return ks.Hits + ks.Misses + ks.Deduped }

// TestSharedMemoConcurrentJobs is the DSE-as-a-service sharing contract:
// one process-wide memo store serving concurrent OptimizeContext jobs
// with DISTINCT constraints must (a) be race-free under -race, (b) leave
// every job's winner bit-identical to the same job run against its own
// isolated store, and (c) account computes exactly: for the job-unique
// "eval" kind the shared store computes exactly the sum of the isolated
// legs, no kind's compute count may grow under sharing, and for the
// config-shared "profiles" kind it MUST shrink — cross-job warmth is
// the point of sharing.
func TestSharedMemoConcurrentJobs(t *testing.T) {
	jobs := sharedMemoJobs()
	space := gateSpace()

	mkEvaluator := func(j memoJob, store *memo.Store) *Evaluator {
		opts := DefaultOptions()
		opts.FreqHz = 400e6
		opts.Grid = 24
		cons := DefaultConstraints()
		cons.FPS = j.fps
		cons.TempBudgetC = j.budgetC
		e, err := NewEvaluator(dnn.ARVRWorkload(), opts, cons, Models{})
		if err != nil {
			t.Fatal(err)
		}
		e.UseMemo(store)
		return e
	}

	// Reference leg: each job sequentially against its own private store.
	isolated := make([]*OptimizeResult, len(jobs))
	isoStats := make([]memo.Stats, len(jobs))
	for i, j := range jobs {
		store := memo.NewStore()
		res, err := mkEvaluator(j, store).OptimizeContext(context.Background(), space, j.seed, nil)
		if err != nil {
			t.Fatalf("isolated job %d: %v", i, err)
		}
		if !res.Found {
			t.Fatalf("isolated job %d found nothing on a feasible corner", i)
		}
		isolated[i] = res
		isoStats[i] = store.Stats()
	}

	// Shared leg: the same jobs concurrently against one store, as the
	// server's worker pool runs them. Evaluators are built before the
	// goroutines launch so t.Fatal stays on the test goroutine.
	shared := memo.NewStore()
	evs := make([]*Evaluator, len(jobs))
	for i, j := range jobs {
		evs[i] = mkEvaluator(j, shared)
	}
	results := make([]*OptimizeResult, len(jobs))
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, seed int64) {
			defer wg.Done()
			results[i], errs[i] = evs[i].OptimizeContext(context.Background(), space, seed, nil)
		}(i, j.seed)
	}
	wg.Wait()

	for i := range jobs {
		if errs[i] != nil {
			t.Fatalf("shared job %d: %v", i, errs[i])
		}
		got, want := results[i], isolated[i]
		if got.Found != want.Found {
			t.Fatalf("job %d: Found=%v shared vs %v isolated", i, got.Found, want.Found)
		}
		if a, b := recordJSON(t, got.Best), recordJSON(t, want.Best); a != b {
			t.Errorf("job %d: winner diverged under the shared store:\nshared   %s\nisolated %s", i, a, b)
		}
		if got.Explored != want.Explored || got.Evaluations != want.Evaluations {
			t.Errorf("job %d: trajectory diverged: explored/evals %d/%d shared vs %d/%d isolated",
				i, got.Explored, got.Evaluations, want.Explored, want.Evaluations)
		}
	}

	// Accounting. Lookup counts (Hits+Misses+Deduped) can wobble by a
	// few when chains race past the evaluator's local cache, but the
	// compute count cannot: single-flight runs each distinct key's
	// compute exactly once, so Misses is the number of distinct keys —
	// deterministic. Eval keys bind the constraints, so they never
	// alias across jobs and the shared store must compute exactly the
	// sum of the isolated legs.
	sh := shared.Stats()
	iso := sumKinds(isoStats)
	if got, want := sh.Kinds["eval"].Misses, iso["eval"].Misses; got != want {
		t.Errorf("eval computes: %d shared, want %d (sum of isolated legs)", got, want)
	}
	for _, kind := range []string{"eval", "profiles"} {
		if lookups(sh.Kinds[kind]) == 0 {
			t.Errorf("%s saw no traffic on the shared store", kind)
		}
	}
	for kind, ks := range sh.Kinds {
		if ks.Misses > iso[kind].Misses {
			t.Errorf("%s computes grew under sharing: %d shared > %d summed isolated", kind, ks.Misses, iso[kind].Misses)
		}
	}
	// Cross-job warmth: the jobs share perfFP, so distinct profiles keys
	// overlap across jobs and the shared store must compute fewer
	// bundles than the four isolated stores did together.
	if sh.Kinds["profiles"].Misses >= iso["profiles"].Misses {
		t.Errorf("no cross-job profile sharing: %d computes shared vs %d summed isolated",
			sh.Kinds["profiles"].Misses, iso["profiles"].Misses)
	}
	if sh.Hits+sh.Misses+sh.Deduped == 0 {
		t.Fatal("shared store saw no traffic")
	}
}
