package core

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"tesa/internal/des"
)

// simTestEvaluation evaluates the paper's 2-D winning point fully, the
// structure-bearing evaluation scenarios run against.
func simTestEvaluation(t *testing.T) (*Evaluator, *Evaluation) {
	t.Helper()
	e := testEvaluator(t, Tech2D, 400, 15, 75)
	ev, err := e.EvaluateFull(DesignPoint{ArrayDim: 200, ICSUM: 1700})
	if err != nil {
		t.Fatal(err)
	}
	if !ev.Feasible {
		t.Fatalf("anchor point infeasible: %v", ev.Violations)
	}
	return e, ev
}

// diurnalScenario is a gentle 2-tenant mix for determinism checks.
func diurnalScenario(seed int64) des.Scenario {
	return des.Scenario{
		Seed:         seed,
		DurationSec:  2,
		ThermalDtSec: 0.1,
		Tenants: []des.Tenant{
			{Name: "ar", Network: "MobileNet", Arrival: des.ArrivalSpec{Kind: des.ArrivalDiurnal, RateRPS: 10, PeriodSec: 1}, SLASec: 0.1},
			{Name: "vr", Network: "ResNet-50", Arrival: des.ArrivalSpec{Kind: des.ArrivalPoisson, RateRPS: 5}, SLASec: 0.1},
		},
		Throttle: des.Throttle{TripC: 85},
	}
}

// TestSimulateDeterminism: two identically-seeded runs through the full
// core coupling (leakage + rasterization + transient CG) produce
// bit-identical event logs and envelopes.
func TestSimulateDeterminism(t *testing.T) {
	e, ev := simTestEvaluation(t)
	run := func() (*des.Result, []byte) {
		var log bytes.Buffer
		res, err := e.Simulate(context.Background(), ev, diurnalScenario(42), &log)
		if err != nil {
			t.Fatal(err)
		}
		return res, log.Bytes()
	}
	r1, log1 := run()
	r2, log2 := run()
	if !bytes.Equal(log1, log2) {
		t.Fatal("event logs differ between identically-seeded runs")
	}
	if !reflect.DeepEqual(r1.Envelope, r2.Envelope) {
		t.Fatal("temperature envelopes differ between identically-seeded runs")
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatal("results differ between identically-seeded runs")
	}
	if r1.Steps != 20 || r1.Requests == 0 {
		t.Fatalf("steps=%d requests=%d, want 20 ticks and traffic", r1.Steps, r1.Requests)
	}
	if r1.PeakTempC <= e.Models.Materials.AmbientC {
		t.Fatalf("peak %g C never rose above ambient", r1.PeakTempC)
	}
}

// TestSimulateBurstFlagsWhatStaticMisses is the issue's acceptance
// scenario: the statically-feasible anchor point, hit with a burst
// trace whose burst-state rate exceeds the chiplet's service capacity,
// must report SLA violations (and/or throttling) that the steady-state
// evaluation cannot see.
func TestSimulateBurstFlagsWhatStaticMisses(t *testing.T) {
	e, ev := simTestEvaluation(t)
	if len(ev.Violations) != 0 {
		t.Fatalf("static evaluation already flags %v", ev.Violations)
	}
	// Derive the tenant's service time so the burst provably overloads:
	// burst rate = 3x the service rate.
	probe := des.Scenario{
		Seed: 1, DurationSec: 1, ThermalDtSec: 1,
		Tenants: []des.Tenant{{Name: "x", Network: "U-Net", Arrival: des.ArrivalSpec{Kind: des.ArrivalPoisson, RateRPS: 1}, SLASec: 1}},
	}
	pl, err := e.platformFor(ev, probe)
	if err != nil {
		t.Fatal(err)
	}
	svc := pl.ServiceSec[0]
	sc := des.Scenario{
		Seed:         7,
		DurationSec:  4,
		ThermalDtSec: 0.2,
		Tenants: []des.Tenant{{
			Name: "burst", Network: "U-Net",
			Arrival: des.ArrivalSpec{
				Kind: des.ArrivalMMPP, RateRPS: 0.2 / svc, BurstRPS: 3 / svc,
				MeanBurstSec: 1.5, MeanCalmSec: 0.5,
			},
			SLASec: 2 * svc,
		}},
		Throttle: des.Throttle{TripC: e.Cons.TempBudgetC},
	}
	res, err := e.Simulate(context.Background(), ev, sc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.SLAViolations == 0 && res.ThrottleEvents == 0 {
		t.Fatalf("burst run flagged nothing dynamic: %+v", res)
	}
	if res.SLAViolations == 0 {
		t.Fatal("overloaded burst produced no SLA violations")
	}
}

// TestSimulateDistribution: the N-draw score is deterministic under a
// fixed base seed and feeds a combined objective that separates designs
// by dynamic behavior.
func TestSimulateDistribution(t *testing.T) {
	e, ev := simTestEvaluation(t)
	sc := diurnalScenario(9)
	s1, err := e.SimulateDistribution(context.Background(), ev, sc, 3)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := e.SimulateDistribution(context.Background(), ev, sc, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s1, s2) {
		t.Fatalf("distribution scores differ:\n%+v\n%+v", s1, s2)
	}
	if s1.Draws != 3 || s1.MeanPeakC <= 0 || s1.MaxPeakC < s1.MeanPeakC-1e-9 {
		t.Fatalf("implausible score %+v", s1)
	}
	if got := s1.CombinedObjective(2); got < 2 {
		t.Fatalf("combined objective %g below static 2", got)
	}
	if s1.DynamicPenalty() > 0 && s1.CombinedObjective(2) == 2 {
		t.Fatal("nonzero penalty did not move the combined objective")
	}
}

// TestSimulateGuards: structural and spec preconditions.
func TestSimulateGuards(t *testing.T) {
	e, ev := simTestEvaluation(t)
	ctx := context.Background()
	if _, err := e.Simulate(ctx, nil, diurnalScenario(1), nil); err == nil {
		t.Error("nil evaluation accepted")
	}
	hollow := &Evaluation{Point: ev.Point}
	if _, err := e.Simulate(ctx, hollow, diurnalScenario(1), nil); err == nil {
		t.Error("structureless evaluation accepted")
	}
	bad := diurnalScenario(1)
	bad.Tenants[0].Network = "NoSuchNet"
	if _, err := e.Simulate(ctx, ev, bad, nil); err == nil {
		t.Error("unknown network accepted")
	}
	none := diurnalScenario(1)
	none.Tenants = nil
	if _, err := e.Simulate(ctx, ev, none, nil); err == nil {
		t.Error("tenantless scenario accepted")
	}
	if _, err := e.SimulateDistribution(ctx, ev, diurnalScenario(1), 0); err == nil {
		t.Error("zero draws accepted")
	}
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := e.Simulate(cancelled, ev, diurnalScenario(1), nil); err == nil {
		t.Error("cancelled context not honored")
	}
}
