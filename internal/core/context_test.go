package core

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"tesa/internal/telemetry"
)

// cancelAfterEvals returns a context that a telemetry hook cancels once
// n pipeline evaluations have completed — a deterministic way to stop a
// search "mid-flight" regardless of machine speed.
func cancelAfterEvals(t *testing.T, e *Evaluator, n int64) context.Context {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	tel := telemetry.New(nil)
	var seen int64
	tel.AddHook(func(name string, _ time.Duration) {
		if name == "pipeline.total" && atomic.AddInt64(&seen, 1) == n {
			cancel()
		}
	})
	e.Instrument(tel)
	return ctx
}

// waitGoroutines polls until the goroutine count settles back to at
// most base (with slack for runtime background goroutines).
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d running, started with %d", runtime.NumGoroutine(), base)
}

// TestOptimizeContextPreCancelled: an already-dead context returns its
// error without touching the pipeline.
func TestOptimizeContextPreCancelled(t *testing.T) {
	e := testEvaluator(t, Tech2D, 400, 15, 85)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.OptimizeContext(ctx, tinySpace(), 1, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if e.Explored() != 0 {
		t.Errorf("explored %d points under a pre-cancelled context", e.Explored())
	}
}

// TestOptimizeContextCancelMid: cancelling after a handful of
// evaluations stops the multi-start ensemble promptly, returns
// ctx.Err(), and leaks no goroutines.
func TestOptimizeContextCancelMid(t *testing.T) {
	base := runtime.NumGoroutine()
	e := testEvaluator(t, Tech2D, 400, 15, 85)
	ctx := cancelAfterEvals(t, e, 5)
	res, err := e.OptimizeContext(ctx, tinySpace(), 1, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v (res=%+v), want context.Canceled", err, res)
	}
	waitGoroutines(t, base)
}

// TestExhaustiveContextPreCancelled mirrors the optimizer check for the
// sharded sweep.
func TestExhaustiveContextPreCancelled(t *testing.T) {
	e := testEvaluator(t, Tech2D, 400, 15, 85)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.ExhaustiveContext(ctx, tinySpace(), nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestExhaustiveContextCancelMid: cancelling mid-sweep joins every
// worker, returns ctx.Err(), and evaluates only part of the space.
func TestExhaustiveContextCancelMid(t *testing.T) {
	base := runtime.NumGoroutine()
	e := testEvaluator(t, Tech2D, 400, 15, 85)
	space := tinySpace()
	ctx := cancelAfterEvals(t, e, 5)
	if _, err := e.ExhaustiveContext(ctx, space, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if e.Explored() >= space.Size() {
		t.Errorf("cancelled sweep still evaluated the whole %d-point space", space.Size())
	}
	waitGoroutines(t, base)
}

// TestOptimizeContextDeadline: a deadline surfaces as
// context.DeadlineExceeded through the same path.
func TestOptimizeContextDeadline(t *testing.T) {
	e := testEvaluator(t, Tech2D, 400, 15, 85)
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond)
	if _, err := e.OptimizeContext(ctx, tinySpace(), 1, nil); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestOptimizeContextProgress: the progress stream delivers a monotone
// improving sequence of incumbents ending at the winner.
func TestOptimizeContextProgress(t *testing.T) {
	e := testEvaluator(t, Tech2D, 400, 15, 85)
	var updates []Progress
	res, err := e.OptimizeContext(context.Background(), tinySpace(), 3, &OptimizeOptions{
		Progress: func(p Progress) { updates = append(updates, p) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(updates) == 0 {
		t.Fatal("no progress updates from a successful run")
	}
	for i, u := range updates {
		if u.Phase != "anneal" || !u.Improved || u.Incumbent == nil {
			t.Fatalf("update %d malformed: %+v", i, u)
		}
		if i > 0 {
			prev := updates[i-1].Incumbent
			if !betterEval(u.Incumbent, prev) {
				t.Errorf("update %d incumbent %v/%.6f did not improve on %v/%.6f",
					i, u.Incumbent.Point, u.Incumbent.Objective, prev.Point, prev.Objective)
			}
		}
	}
	if got := updates[len(updates)-1].Incumbent.Objective; got != res.Best.Objective {
		t.Errorf("final incumbent %.6f != winner %.6f", got, res.Best.Objective)
	}
}

// TestLegacyWrappersUnchanged: Optimize and Exhaustive keep their
// historical contracts — in particular the (Found=false, nil error)
// no-solution outcome that OptimizeContext reports as
// ErrNoFeasibleStart.
func TestLegacyWrappersUnchanged(t *testing.T) {
	e := testEvaluator(t, Tech2D, 400, 15, 85)
	e.Cons.PowerBudgetW = 0.01
	res, err := e.Optimize(tinySpace(), 1)
	if err != nil {
		t.Fatalf("legacy Optimize surfaced an error on no-solution: %v", err)
	}
	if res == nil || res.Found {
		t.Fatalf("legacy Optimize no-solution result = %+v", res)
	}

	e2 := testEvaluator(t, Tech2D, 400, 15, 85)
	e2.Cons.PowerBudgetW = 0.01
	_, err = e2.OptimizeContext(context.Background(), tinySpace(), 1, nil)
	if !errors.Is(err, ErrNoFeasibleStart) {
		t.Fatalf("OptimizeContext no-solution err = %v, want ErrNoFeasibleStart", err)
	}
}

// TestSentinelErrInvalidSpace: Validate failures and off-space design
// points match ErrInvalidSpace.
func TestSentinelErrInvalidSpace(t *testing.T) {
	bad := Space{}
	if err := bad.Validate(); !errors.Is(err, ErrInvalidSpace) {
		t.Errorf("empty space err = %v, want ErrInvalidSpace", err)
	}
	e := testEvaluator(t, Tech2D, 400, 15, 85)
	if _, err := e.Evaluate(DesignPoint{ArrayDim: -1}); !errors.Is(err, ErrInvalidSpace) {
		t.Errorf("invalid point err = %v, want ErrInvalidSpace", err)
	}
	if _, err := e.OptimizeContext(context.Background(), bad, 1, nil); !errors.Is(err, ErrInvalidSpace) {
		t.Errorf("OptimizeContext on bad space err = %v, want ErrInvalidSpace", err)
	}
	if _, err := e.ExhaustiveContext(context.Background(), bad, nil); !errors.Is(err, ErrInvalidSpace) {
		t.Errorf("ExhaustiveContext on bad space err = %v, want ErrInvalidSpace", err)
	}
}
