package core

import (
	"testing"

	"tesa/internal/floorplan"
)

// TestQuantMM pins the shared quantization primitive: round-to-nearest
// in steps of q, symmetric around the step midpoint.
func TestQuantMM(t *testing.T) {
	cases := []struct {
		mm, q float64
		want  int
	}{
		{0, 0.25, 0},
		{0.12, 0.25, 0},
		{0.13, 0.25, 1},
		{3.1, 0.25, 12},
		{3.23, 0.25, 13},
		{10, 1, 10},
	}
	for _, c := range cases {
		if got := quantMM(c.mm, c.q); got != c.want {
			t.Errorf("quantMM(%g, %g) = %d, want %d", c.mm, c.q, got, c.want)
		}
	}
}

// TestGeometryKeyConsistency is the regression guard for the deliberate
// difference between the two geometry-keyed caches: the thermal
// warm-start key collapses sub-quantum chiplet-dimension differences
// (a CG guess tolerates small shifts) and ignores the inter-chiplet
// spacing entirely, while the coverage memo class is exact in every
// dimension (a coverage map is a pure function of its precise
// geometry). Both derive from the same primitives in geom.go; this
// test pins the contract so neither drifts to match the other by
// accident.
func TestGeometryKeyConsistency(t *testing.T) {
	e := testEvaluator(t, Tech2D, 400, 15, 85)
	base := &Evaluation{Mesh: floorplan.Mesh{Rows: 2, Cols: 2}}
	base.Chiplet.WidthMM, base.Chiplet.HeightMM = 3.10, 3.10
	near := &Evaluation{Mesh: floorplan.Mesh{Rows: 2, Cols: 2}}
	near.Chiplet.WidthMM, near.Chiplet.HeightMM = 3.12, 3.10 // sub-quantum shift
	far := &Evaluation{Mesh: floorplan.Mesh{Rows: 2, Cols: 2}}
	far.Chiplet.WidthMM, far.Chiplet.HeightMM = 3.23, 3.10 // next quantum

	if e.warmKeyFor(base, 24) != e.warmKeyFor(near, 24) {
		t.Error("warm-start key separated two geometries within one quantum")
	}
	if e.warmKeyFor(base, 24) == e.warmKeyFor(far, 24) {
		t.Error("warm-start key collapsed geometries a full quantum apart")
	}
	if e.warmKeyFor(base, 24) == e.warmKeyFor(base, 32) {
		t.Error("warm-start key ignored the grid resolution")
	}

	place := func(w, ics float64) *floorplan.Placement {
		return &floorplan.Placement{
			Mesh: floorplan.Mesh{Rows: 2, Cols: 2}, InterposerMM: 8,
			WidthMM: w, HeightMM: 3.10, ICSmm: ics,
		}
	}
	if covClass(place(3.10, 0.5)) == covClass(place(3.12, 0.5)) {
		t.Error("coverage class collapsed distinct chiplet widths")
	}
	if covClass(place(3.10, 0.5)) == covClass(place(3.10, 0.5000001)) {
		t.Error("coverage class collapsed distinct inter-chiplet spacings")
	}
	if covClass(place(3.10, 0.5)) != covClass(place(3.10, 0.5)) {
		t.Error("coverage class not deterministic for equal geometry")
	}
}
