package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"tesa/internal/telemetry"
)

// ExhaustiveResult is the outcome of a full design-space sweep.
type ExhaustiveResult struct {
	// Best is the global optimum, nil when nothing is feasible. Under
	// objective ties the lexicographically smallest design point wins
	// (see DesignPoint.Less), so repeated sweeps agree.
	Best *Evaluation
	// Feasible counts feasible points; Total is the space size.
	Feasible, Total int
	// Evaluated counts points evaluated by this run (including points
	// whose evaluation failed and was quarantined); Resumed counts
	// points credited from a checkpoint — completed shards plus
	// previously poisoned points — instead of being re-evaluated.
	// Evaluated+Resumed == Total on a completed sweep.
	Evaluated, Resumed int
	// Shards is the number of shards in the sweep's decomposition.
	Shards int
	// Quarantined counts design points whose evaluation failed; the
	// sweep skipped them and continued. Poisoned lists them with stage
	// and reason, sorted by design point. Both include points credited
	// from a resumed checkpoint's poisoned records.
	Quarantined int
	Poisoned    []QuarantinedPoint
}

// SweepOptions tunes the sharded exhaustive engine. The zero value (or
// a nil pointer) runs a plain uncheckpointed sweep.
type SweepOptions struct {
	// ShardSize is the number of consecutive design points per shard —
	// the engine's unit of work distribution, checkpointing, and
	// progress reporting. 0 picks an automatic granularity (~16 shards
	// per worker, capped at 64 points) that keeps the checkpoint loss
	// window small relative to the space. When resuming, 0 adopts the
	// checkpoint's shard size; a non-zero value must match it.
	ShardSize int
	// Checkpoint, when non-nil, receives a header record plus one
	// record per completed shard, flushed record-by-record so a killed
	// run loses at most the shards in flight. Point it at a JSONL sink
	// over an append-mode file (telemetry.NewJSONLSink).
	Checkpoint telemetry.EventSink
	// ResumeFrom, when non-nil, credits the checkpointed shards without
	// re-evaluating them. The state must come from a sweep of the same
	// space with the same decomposition (ErrCheckpointCorrupt
	// otherwise).
	ResumeFrom *CheckpointState
	// Progress, when non-nil, streams one update per completed shard
	// with Phase "sweep"; Improved marks updates that found a new
	// incumbent. See ProgressFunc for the synchronization contract.
	Progress ProgressFunc
	// MaxFailures bounds the quarantine ledger: once more than
	// MaxFailures points have been quarantined (including ones credited
	// from a resumed checkpoint) the sweep aborts with
	// ErrTooManyFailures. 0 (the default) tolerates any number of
	// quarantined points.
	MaxFailures int
	// FailFast aborts the sweep on the first failed evaluation instead
	// of quarantining it, returning the *EvalError itself — the
	// pre-hardening behavior, useful when any failure indicates a
	// modeling bug rather than a pathological corner of the space.
	FailFast bool
	// RunID, when non-empty, is stamped into the checkpoint header so
	// the checkpoint stream can be joined against the run's manifest and
	// trace records (telemetry.Manifest.RunID). Resumed runs write their
	// own header with their own id; LoadCheckpoint keeps the first.
	RunID string
}

// Exhaustive evaluates every design vector in the space in parallel and
// returns the global optimum of Eq. (6) — a context.Background(),
// option-free wrapper over ExhaustiveContext. The paper uses this on a
// small validation sub-space to certify the optimizer (Sec. IV-A); it
// is also how the "an exhaustive evaluation can take multiple days"
// claim is quantified against the annealer's <15% exploration.
//
// Deprecated: use ExhaustiveContext, which adds cancellation, sharded
// checkpointing and resume, progress streaming, and failure policies.
// This wrapper remains for compatibility and will not grow new
// capabilities.
func (e *Evaluator) Exhaustive(space Space) (*ExhaustiveResult, error) {
	return e.ExhaustiveContext(context.Background(), space, nil)
}

// ExhaustiveContext sweeps the space with a shard-based worker pool:
// the enumeration is cut into contiguous shards, GOMAXPROCS workers
// drain a shard queue, and each worker observes ctx between
// evaluations. Cancellation therefore stops the sweep within one
// evaluation's latency, joins every worker, and returns ctx.Err();
// completed shards are already in the checkpoint (if one was
// requested), so the run can be resumed with SweepOptions.ResumeFrom.
func (e *Evaluator) ExhaustiveContext(ctx context.Context, space Space, opt *SweepOptions) (*ExhaustiveResult, error) {
	if err := space.Validate(); err != nil {
		return nil, err
	}
	var o SweepOptions
	if opt != nil {
		o = *opt
	}
	pts := space.Enumerate()
	workers := runtime.GOMAXPROCS(0)
	if workers > len(pts) {
		workers = len(pts)
	}
	size := o.ShardSize
	if size <= 0 && o.ResumeFrom != nil {
		size = o.ResumeFrom.ShardSize
	}
	if size <= 0 {
		size = AutoShardSize(len(pts), workers)
	}
	nShards := (len(pts) + size - 1) / size
	fingerprint := space.Fingerprint()

	res := &ExhaustiveResult{Total: len(pts), Shards: nShards}
	// The incumbent: bestEval is nil when the current best comes from a
	// resumed checkpoint record (only the point and objective survive a
	// restart); it is re-evaluated once at the end — a single cache-warm
	// pipeline run — to rebuild the full Evaluation.
	var (
		found    bool
		bestPt   DesignPoint
		bestObj  float64
		bestEval *Evaluation
	)
	resumed := make(map[int]bool, nShards)
	// skip holds previously poisoned points: a resumed sweep credits
	// them instead of re-running a deterministic failure.
	var skip map[DesignPoint]QuarantinedPoint
	if o.ResumeFrom != nil {
		if err := o.ResumeFrom.validateFor(fingerprint, len(pts), size, nShards); err != nil {
			return nil, err
		}
		for idx, cp := range o.ResumeFrom.Done {
			resumed[idx] = true
			res.Feasible += cp.Feasible
			res.Resumed += shardLen(idx, size, len(pts))
			if cp.Found && (!found || BetterPoint(cp.BestObj, cp.Best, bestObj, bestPt)) {
				bestPt, bestObj, found, bestEval = cp.Best, cp.BestObj, true, nil
			}
		}
		skip = o.ResumeFrom.Poisoned
		for _, q := range skip {
			res.Poisoned = append(res.Poisoned, q)
		}
		res.Quarantined = len(skip)
	}
	if o.Checkpoint != nil {
		if err := WriteCheckpointHeader(o.Checkpoint, fingerprint, len(pts), size, nShards, o.RunID); err != nil {
			return nil, fmt.Errorf("core: sweep checkpoint: %w", err)
		}
	}
	progress := newProgressReporter(o.Progress, "sweep", len(pts))
	if res.Resumed > 0 {
		progress.emit(res.Resumed, nil, false, res.Quarantined)
	}

	span := e.tel.StartSpan("sweep.total")
	defer span.End()

	// sweepCtx lets the first failing shard stop its siblings without
	// affecting the caller's context.
	sweepCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex // guards res, incumbent, firstErr, doneN
		firstErr error
		doneN    = res.Resumed
	)
	// onPoison centralizes the quarantine path: workers call it under no
	// lock the moment an evaluation fails. It records the point, streams
	// a checkpoint.poisoned record immediately (a kill right after loses
	// nothing), and enforces the failure policy; a non-nil return aborts
	// the sweep.
	onPoison := func(ee *EvalError) error {
		q := QuarantinedPoint{Point: ee.Point, Stage: ee.Stage, Reason: ee.Reason(), Trace: ee.Trace}
		mu.Lock()
		defer mu.Unlock()
		res.Quarantined++
		res.Poisoned = append(res.Poisoned, q)
		if o.Checkpoint != nil {
			if err := WritePoisonedCheckpoint(o.Checkpoint, q); err != nil {
				return fmt.Errorf("core: sweep checkpoint: %w", err)
			}
		}
		if o.FailFast {
			return ee
		}
		if o.MaxFailures > 0 && res.Quarantined > o.MaxFailures {
			return fmt.Errorf("%w: %d points quarantined (limit %d), last: %v",
				ErrTooManyFailures, res.Quarantined, o.MaxFailures, ee)
		}
		return nil
	}
	shardCh := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range shardCh {
				cp, nEval, nSkip, ev, err := e.runShard(sweepCtx, pts, idx, size, skip, onPoison)
				mu.Lock()
				if err != nil {
					if firstErr == nil {
						firstErr = err
						cancel() // fail fast: siblings bail at their next point
					}
					mu.Unlock()
					continue
				}
				res.Feasible += cp.Feasible
				res.Evaluated += nEval
				res.Resumed += nSkip
				doneN += nEval + nSkip
				improved := false
				if cp.Found && (!found || BetterPoint(cp.BestObj, cp.Best, bestObj, bestPt)) {
					bestPt, bestObj, bestEval, found = cp.Best, cp.BestObj, ev, true
					improved = true
				}
				if o.Checkpoint != nil {
					if err := WriteShardCheckpoint(o.Checkpoint, cp); err != nil && firstErr == nil {
						firstErr = fmt.Errorf("core: sweep checkpoint: %w", err)
						cancel()
					}
				}
				progress.emit(doneN, bestEval, improved, res.Quarantined)
				mu.Unlock()
			}
		}()
	}
	// Feed pending shards in order. Workers never stop consuming — on
	// cancellation the remaining shards fail fast at their first point —
	// so this loop cannot deadlock.
	for idx := 0; idx < nShards; idx++ {
		if !resumed[idx] {
			shardCh <- idx
		}
	}
	close(shardCh)
	wg.Wait()

	if firstErr != nil {
		if errors.Is(firstErr, context.Canceled) || errors.Is(firstErr, context.DeadlineExceeded) {
			return nil, firstErr
		}
		return nil, fmt.Errorf("core: exhaustive sweep: %w", firstErr)
	}
	if found && bestEval == nil {
		ev, err := e.EvaluateContext(ctx, bestPt)
		if err != nil {
			return nil, err
		}
		bestEval = ev
	}
	if found && bestEval.Compact() {
		// The winner was served from a persistent memo record; upgrade it
		// so the reported Best carries the schedule and placement.
		ev, err := e.EvaluateFullContext(ctx, bestPt)
		if err != nil {
			return nil, err
		}
		bestEval = ev
	}
	res.Best = bestEval
	// Workers append ledger entries in completion order; sort for a
	// deterministic report.
	sort.Slice(res.Poisoned, func(i, j int) bool { return res.Poisoned[i].Point.Less(res.Poisoned[j].Point) })
	if e.tel.Tracing() {
		fields := map[string]any{
			"total":       res.Total,
			"feasible":    res.Feasible,
			"evaluated":   res.Evaluated,
			"resumed":     res.Resumed,
			"shards":      res.Shards,
			"found":       res.Best != nil,
			"quarantined": res.Quarantined,
		}
		if res.Best != nil {
			fields["best_obj"] = res.Best.Objective
		}
		e.tel.Emit("sweep.done", fields)
	}
	return res, nil
}

// runShard is sweepShard behind a per-worker recover: the pipeline's
// own recover already converts stage panics into EvalErrors, so this
// guard only catches panics escaping the shard bookkeeping itself — but
// either way a panic fails the shard, not the pool, and the worker
// keeps draining the queue (so the shard feeder cannot deadlock).
func (e *Evaluator) runShard(ctx context.Context, pts []DesignPoint, idx, size int,
	skip map[DesignPoint]QuarantinedPoint, onPoison func(*EvalError) error) (cp ShardCheckpoint, evaluated, skipped int, best *Evaluation, err error) {
	defer func() {
		if r := recover(); r != nil {
			best = nil
			err = fmt.Errorf("%w: sweep shard %d: %v", ErrStagePanic, idx, r)
		}
	}()
	return e.sweepShard(ctx, pts, idx, size, skip, onPoison)
}

// sweepShard evaluates one contiguous shard sequentially, returning its
// checkpoint record, its evaluated and skipped point counts, and the
// best feasible Evaluation (nil when none). Points in the skip set —
// poisoned in a previous run — are credited without evaluation; a fresh
// evaluation failure is reported to onPoison, whose non-nil return
// aborts the shard. The loop observes ctx before every evaluation.
func (e *Evaluator) sweepShard(ctx context.Context, pts []DesignPoint, idx, size int,
	skip map[DesignPoint]QuarantinedPoint, onPoison func(*EvalError) error) (ShardCheckpoint, int, int, *Evaluation, error) {
	lo := idx * size
	hi := lo + size
	if hi > len(pts) {
		hi = len(pts)
	}
	cp := ShardCheckpoint{Shard: idx}
	interior := pts[lo:hi]
	if e.sur != nil {
		// Learned ordering: evaluate the shard's points
		// best-predicted-first so incumbent improvements (and the
		// progress/verification machinery keyed to them) fire early.
		// Every point is still evaluated and BetterPoint is a total
		// order, so the shard's checkpoint record — and the sweep winner
		// — are byte-identical to the unordered run's.
		interior = e.orderByPrediction(interior)
	}
	var best *Evaluation
	evaluated, skipped := 0, 0
	for _, p := range interior {
		if _, poisoned := skip[p]; poisoned {
			skipped++
			continue
		}
		ev, err := e.EvaluateContext(ctx, p)
		if err != nil {
			ee, pointLocal := asEvalError(err)
			if !pointLocal {
				return cp, evaluated, skipped, nil, err
			}
			evaluated++
			if perr := onPoison(ee); perr != nil {
				return cp, evaluated, skipped, nil, perr
			}
			continue
		}
		evaluated++
		if ev.Feasible {
			cp.Feasible++
			if best == nil || betterEval(ev, best) {
				best = ev
			}
		}
	}
	if best != nil {
		cp.Found, cp.Best, cp.BestObj = true, best.Point, best.Objective
	}
	return cp, evaluated, skipped, best, nil
}

// BetterPoint is the sweep's deterministic incumbent order: strictly
// lower objective wins, exact ties break lexicographically on the
// design point. A strict total order over distinct points, so merging
// shard results in any completion order — including records reported
// at-least-once by distributed workers — yields the same winner.
func BetterPoint(aObj float64, aPt DesignPoint, bObj float64, bPt DesignPoint) bool {
	if aObj != bObj {
		return aObj < bObj
	}
	return aPt.Less(bPt)
}

// SweepShard evaluates one contiguous shard of the canonical
// enumeration and returns its checkpoint record plus the quarantine
// entries for every point whose evaluation failed (the shard continues
// past failures, exactly like the in-process sweep). It is the unit of
// work a distributed worker executes for a leased shard, and the unit
// the coordinator re-executes to spot-check a reported record:
// evaluation is deterministic, so two honest executions of the same
// shard produce identical records.
func (e *Evaluator) SweepShard(ctx context.Context, pts []DesignPoint, idx, size int) (ShardCheckpoint, []QuarantinedPoint, error) {
	var poisons []QuarantinedPoint
	cp, _, _, _, err := e.runShard(ctx, pts, idx, size, nil, func(ee *EvalError) error {
		poisons = append(poisons, QuarantinedPoint{Point: ee.Point, Stage: ee.Stage, Reason: ee.Reason(), Trace: ee.Trace})
		return nil
	})
	if err != nil {
		return ShardCheckpoint{}, nil, err
	}
	return cp, poisons, nil
}

// AutoShardSize targets ~16 shards per worker — fine enough that a kill
// forfeits little work, coarse enough that per-shard bookkeeping stays
// negligible against millisecond-scale evaluations — capped at 64
// points per shard for large spaces.
func AutoShardSize(n, workers int) int {
	if workers < 1 {
		workers = 1
	}
	s := n / (workers * 16)
	if s < 1 {
		s = 1
	}
	if s > 64 {
		s = 64
	}
	return s
}
