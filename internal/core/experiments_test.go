package core

import (
	"math"
	"strings"
	"testing"

	"tesa/internal/dnn"
)

// fastConfig returns an experiment configuration scaled for unit tests:
// coarse grids and a reduced design space.
func fastConfig() *ExperimentConfig {
	cfg := ExperimentConfig{
		Workload:   dnn.ARVRWorkload(),
		Models:     DefaultModels(),
		Space:      tinySpace(),
		Seed:       1,
		Grid:       20,
		ReportGrid: 28,
	}
	return &cfg
}

// TestRunCornerCaching: repeated corner runs return the cached row.
func TestRunCornerCaching(t *testing.T) {
	cfg := fastConfig()
	c := Corner{Tech2D, 400, 15, 85}
	a, err := cfg.RunCorner(c)
	if err != nil {
		t.Fatal(err)
	}
	b, err := cfg.RunCorner(c)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("corner result not cached")
	}
}

// TestRunCornerShape: a feasible corner yields a winner whose full
// evaluation satisfies the corner's constraints at the reporting grid.
func TestRunCornerShape(t *testing.T) {
	cfg := fastConfig()
	row, err := cfg.RunCorner(Corner{Tech2D, 400, 15, 85})
	if err != nil {
		t.Fatal(err)
	}
	if !row.Found {
		t.Fatal("400 MHz / 15 fps / 85 C should be feasible")
	}
	e := row.Eval
	if !e.Feasible {
		t.Errorf("reported winner infeasible at the fine grid: %v", e.Violations)
	}
	if e.PeakTempC > 85 {
		t.Errorf("winner peak %.1f C over budget", e.PeakTempC)
	}
	if row.Explored <= 0 || row.Explored > row.SpaceSize {
		t.Errorf("explored %d of %d", row.Explored, row.SpaceSize)
	}
}

// TestValidateOptimizerAgreement: the Sec. IV-A check holds on the
// reduced space at test scale.
func TestValidateOptimizerAgreement(t *testing.T) {
	cfg := fastConfig()
	v, err := cfg.ValidateOptimizer(Corner{Tech2D, 400, 15, 85})
	if err != nil {
		t.Fatal(err)
	}
	if !v.Agreement {
		exh, opt := math.NaN(), math.NaN()
		if v.ExhaustiveBest != nil {
			exh = v.ExhaustiveBest.Objective
		}
		if v.OptimizerBest != nil {
			opt = v.OptimizerBest.Objective
		}
		t.Errorf("optimizer disagreed with exhaustive optimum: %.4f vs %.4f", opt, exh)
	}
	if v.ExploredFraction <= 0 || v.ExploredFraction > 1 {
		t.Errorf("explored fraction %.2f out of (0,1]", v.ExploredFraction)
	}
}

// TestFig1Scenarios: the four motivation scenarios behave as the paper's
// Fig. 1 describes.
func TestFig1Scenarios(t *testing.T) {
	cfg := fastConfig()
	cfg.Space = DefaultSpace()
	ss, err := cfg.Fig1()
	if err != nil {
		t.Fatal(err)
	}
	if len(ss) != 4 {
		t.Fatalf("scenarios = %d, want 4", len(ss))
	}
	// (a) dense large chiplets: thermally infeasible.
	if a := ss[0].Eval; a.Feasible || !contains(a.Violations, "temperature") {
		t.Errorf("(a) should violate temperature, got %v", a.Violations)
	}
	// (b) small chiplets: latency violation.
	if b := ss[1].Eval; b.Feasible || !contains(b.Violations, "latency") {
		t.Errorf("(b) should violate latency, got %v", b.Violations)
	}
	// (c) maximal chiplets: thermal (and possibly power) violation.
	if c := ss[2].Eval; c.Feasible ||
		!(contains(c.Violations, "temperature") || contains(c.Violations, "runaway") || contains(c.Violations, "power")) {
		t.Errorf("(c) should violate temperature/power, got %v", c.Violations)
	}
	// (d) TESA: feasible.
	if d := ss[3].Eval; d == nil || !d.Feasible {
		t.Error("(d) TESA scenario should be feasible")
	}
	out := FormatFig1(ss, DefaultConstraints())
	if !strings.Contains(out, "(d)") || !strings.Contains(out, "satisfies all constraints") {
		t.Errorf("format output incomplete:\n%s", out)
	}
}

// TestFrequencySweepRemedial: the sweep identifies a reduced frequency as
// the remedial action when the high frequency has no solution.
func TestFrequencySweepRemedial(t *testing.T) {
	cfg := fastConfig()
	rows, err := cfg.FrequencySweep(Tech2D, 15, 85, []float64{400, 300})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	f, ok := MaxFeasibleFrequency(rows)
	if !ok {
		t.Fatal("no feasible frequency at 85 C; calibration drift?")
	}
	if f != 400 {
		t.Errorf("max feasible = %.0f MHz, want 400 (85 C is relaxed)", f)
	}
	out := FormatFrequencySweep(Tech2D, 15, 85, rows)
	if !strings.Contains(out, "maximum feasible frequency") {
		t.Errorf("format output incomplete:\n%s", out)
	}
}

// TestThermalMapRendering: maps render for full evaluations and refuse
// thermal-less ones.
func TestThermalMapRendering(t *testing.T) {
	cfg := fastConfig()
	opts, cons := cfg.optionsFor(Corner{Tech3D, 400, 15, 85})
	e, err := NewEvaluator(cfg.Workload, opts, cons, cfg.Models)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := e.EvaluateFull(DesignPoint{ArrayDim: 196, ICSUM: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if s := ThermalMapASCII(ev); !strings.Contains(s, "thermal map") {
		t.Error("3-D ASCII map missing")
	}
	if s := ThermalMapCSV(ev); len(strings.Split(strings.TrimSpace(s), "\n")) != opts.Grid {
		t.Error("3-D CSV map has wrong row count")
	}
	if s := ThermalMapASCII(&Evaluation{}); s != "" {
		t.Error("map rendered without thermal data")
	}
}
