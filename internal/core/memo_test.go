package core

import (
	"context"
	"encoding/json"
	"path/filepath"
	"reflect"
	"testing"

	"tesa/internal/dnn"
	"tesa/internal/memo"
	"tesa/internal/telemetry"
)

// memoEvaluator mirrors testEvaluator with Options.Memo enabled (a
// fresh private store).
func memoEvaluator(t *testing.T, tech Tech, freqMHz, fps, budgetC float64) *Evaluator {
	t.Helper()
	opts := DefaultOptions()
	opts.Tech = tech
	opts.FreqHz = freqMHz * 1e6
	opts.Grid = 24
	opts.Memo = true
	cons := DefaultConstraints()
	cons.FPS = fps
	cons.TempBudgetC = budgetC
	e, err := NewEvaluator(dnn.ARVRWorkload(), opts, cons, Models{})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// recordJSON canonicalizes every scalar a DSE consumer reads (via the
// persisted-record encoding, whose jf wrapper makes NaN/Inf
// comparable) so two evaluations can be checked for bit-identity.
func recordJSON(t *testing.T, ev *Evaluation) string {
	t.Helper()
	raw, err := json.Marshal(newEvalRecord(ev))
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// TestMemoEvaluationsBitIdentical: every evaluation served through the
// memo store is bit-identical to the plain pipeline's — all scalars
// (compared through the NaN-safe record encoding) and the structural
// outputs (schedule, placement) alike, in both DSE and reporting mode.
func TestMemoEvaluationsBitIdentical(t *testing.T) {
	ref := testEvaluator(t, Tech2D, 400, 15, 85)
	mem := memoEvaluator(t, Tech2D, 400, 15, 85)
	if mem.Memo() == nil {
		t.Fatal("Options.Memo did not attach a store")
	}
	for _, p := range gateSpace().Enumerate() {
		rev, rerr := ref.Evaluate(p)
		mev, merr := mem.Evaluate(p)
		if (rerr == nil) != (merr == nil) {
			t.Fatalf("%v: error disagreement: ref %v, memo %v", p, rerr, merr)
		}
		if rerr != nil {
			continue
		}
		if a, b := recordJSON(t, rev), recordJSON(t, mev); a != b {
			t.Errorf("%v: DSE evaluation diverged:\nref  %s\nmemo %s", p, a, b)
		}
		if !reflect.DeepEqual(rev.Schedule, mev.Schedule) {
			t.Errorf("%v: schedule diverged", p)
		}
		if !reflect.DeepEqual(rev.Placement, mev.Placement) {
			t.Errorf("%v: placement diverged", p)
		}
	}
	// Stage-level sharing must have fired across the sweep.
	st := mem.MemoStats()
	if st.Hits == 0 {
		t.Fatalf("store never hit: %+v", st)
	}
	// A second evaluator sharing the store is served whole evaluations
	// (within one evaluator, repeats stop at the local cache instead).
	p := gateSpace().Enumerate()[0]
	peer := testEvaluator(t, Tech2D, 400, 15, 85)
	peer.UseMemo(mem.Memo())
	before := mem.MemoStats().Kinds["eval"].Hits
	pev, err := peer.Evaluate(p)
	if err != nil {
		t.Fatal(err)
	}
	if mem.MemoStats().Kinds["eval"].Hits == before {
		t.Error("peer evaluation did not hit the eval store")
	}
	if rev, err := ref.Evaluate(p); err == nil {
		if recordJSON(t, pev) != recordJSON(t, rev) {
			t.Error("store-served evaluation diverged from the reference")
		}
	}

	// Reporting mode: full evaluations agree too, and upgrade the store
	// entry rather than being served by a DSE record.
	rfull, err := ref.EvaluateFull(p)
	if err != nil {
		t.Fatal(err)
	}
	mfull, err := mem.EvaluateFull(p)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := recordJSON(t, rfull), recordJSON(t, mfull); a != b {
		t.Errorf("full evaluation diverged:\nref  %s\nmemo %s", a, b)
	}
	if mfull.Compact() {
		t.Error("full evaluation reported compact")
	}
}

// TestMemoOptimizeIdenticalTrajectory: the optimizer's whole trajectory
// — winner, objective, evaluation and exploration counts, and every
// per-start result — is identical with memoization off, on, and on
// with pooled parallel chains.
func TestMemoOptimizeIdenticalTrajectory(t *testing.T) {
	space := tinySpace()
	ref := testEvaluator(t, Tech2D, 400, 15, 85)
	refRes, err := ref.Optimize(space, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !refRes.Found {
		t.Fatal("reference optimizer found nothing on a feasible space")
	}

	runs := []struct {
		name string
		opt  *OptimizeOptions
	}{
		{"memo", nil},
		{"memo+parallel", &OptimizeOptions{Parallel: 4}},
	}
	for _, run := range runs {
		mem := memoEvaluator(t, Tech2D, 400, 15, 85)
		res, err := mem.OptimizeContext(context.Background(), space, 3, run.opt)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found {
			t.Fatalf("%s: found nothing", run.name)
		}
		if res.Best.Point != refRes.Best.Point || res.Best.Objective != refRes.Best.Objective {
			t.Errorf("%s: winner changed: %v obj %v, want %v obj %v", run.name,
				res.Best.Point, res.Best.Objective, refRes.Best.Point, refRes.Best.Objective)
		}
		if res.Evaluations != refRes.Evaluations || res.Explored != refRes.Explored {
			t.Errorf("%s: trajectory changed: %d evaluations / %d explored, want %d / %d",
				run.name, res.Evaluations, res.Explored, refRes.Evaluations, refRes.Explored)
		}
		if len(res.PerStart) != len(refRes.PerStart) {
			t.Fatalf("%s: %d starts, want %d", run.name, len(res.PerStart), len(refRes.PerStart))
		}
		for i, ps := range res.PerStart {
			want := refRes.PerStart[i]
			if ps.Found != want.Found || ps.BestObj != want.BestObj || ps.Best != want.Best ||
				ps.Evaluations != want.Evaluations || ps.Accepted != want.Accepted ||
				ps.Uphill != want.Uphill || ps.Levels != want.Levels {
				t.Errorf("%s: start %d diverged: %+v, want %+v", run.name, i, ps, want)
			}
		}
	}
}

// TestMemoFaultMatrixTrajectory: with a fault-injection plan armed, the
// memoized run takes the exact same trajectory as the plain one —
// injection decisions fire at stage boundaries per point, the
// eval-level store is bypassed, and the quarantine ledgers match —
// across a stack of fault specs.
func TestMemoFaultMatrixTrajectory(t *testing.T) {
	space := tinySpace()
	for _, spec := range []string{
		"panic@sched:dim=184",
		"nan@thermal:dim=192,ics=0",
		"panic@systolic:rate=0.05,seed=7;error@cost:rate=0.05,seed=11",
	} {
		ref := testEvaluator(t, Tech2D, 400, 15, 85)
		ref.InjectFaults(injectPlan(t, spec))
		refRes, rerr := ref.OptimizeContext(context.Background(), space, 3, nil)

		for _, parallel := range []int{0, 4} {
			mem := memoEvaluator(t, Tech2D, 400, 15, 85)
			mem.InjectFaults(injectPlan(t, spec))
			res, err := mem.OptimizeContext(context.Background(), space, 3, &OptimizeOptions{Parallel: parallel})
			if (rerr == nil) != (err == nil) {
				t.Fatalf("%q/parallel=%d: error disagreement: ref %v, memo %v", spec, parallel, rerr, err)
			}
			if res.Found != refRes.Found {
				t.Fatalf("%q/parallel=%d: found disagreement", spec, parallel)
			}
			if refRes.Found && (res.Best.Point != refRes.Best.Point || res.Best.Objective != refRes.Best.Objective) {
				t.Errorf("%q/parallel=%d: winner changed under faults", spec, parallel)
			}
			if res.Evaluations != refRes.Evaluations || res.Quarantined != refRes.Quarantined {
				t.Errorf("%q/parallel=%d: %d evaluations / %d quarantined, want %d / %d",
					spec, parallel, res.Evaluations, res.Quarantined, refRes.Evaluations, refRes.Quarantined)
			}
			if !reflect.DeepEqual(res.Poisoned, refRes.Poisoned) {
				t.Errorf("%q/parallel=%d: quarantine ledger diverged:\nmemo %v\nref  %v",
					spec, parallel, res.Poisoned, refRes.Poisoned)
			}
		}
	}
}

// TestMemoDiskWarmOptimize: a second process (modeled by a fresh store
// and evaluator over the same -memo-dir) reloads the first run's
// records, re-derives the identical winner mostly from disk, and
// upgrades the compact winning record to a full evaluation before
// reporting it.
func TestMemoDiskWarmOptimize(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "memo")
	space := tinySpace()

	cold := testEvaluator(t, Tech2D, 400, 15, 85)
	coldStore := memo.NewStore()
	closeCold, err := LoadMemoDir(coldStore, dir)
	if err != nil {
		t.Fatal(err)
	}
	cold.UseMemo(coldStore)
	coldRes, err := cold.Optimize(space, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !coldRes.Found {
		t.Fatal("cold run found nothing")
	}
	if err := closeCold(); err != nil {
		t.Fatal(err)
	}

	warm := testEvaluator(t, Tech2D, 400, 15, 85)
	warmStore := memo.NewStore()
	closeWarm, err := LoadMemoDir(warmStore, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer closeWarm()
	if loaded := warmStore.Stats().Loaded; loaded == 0 {
		t.Fatal("warm store loaded nothing from disk")
	}
	warm.UseMemo(warmStore)
	tel := telemetry.New(nil)
	warm.Instrument(tel)
	warmRes, err := warm.Optimize(space, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !warmRes.Found {
		t.Fatal("warm run found nothing")
	}
	if warmRes.Best.Point != coldRes.Best.Point || warmRes.Best.Objective != coldRes.Best.Objective {
		t.Errorf("warm winner %v obj %v, want %v obj %v",
			warmRes.Best.Point, warmRes.Best.Objective, coldRes.Best.Point, coldRes.Best.Objective)
	}
	if warmRes.Evaluations != coldRes.Evaluations || warmRes.Explored != coldRes.Explored {
		t.Errorf("warm trajectory changed: %d/%d, want %d/%d",
			warmRes.Evaluations, warmRes.Explored, coldRes.Evaluations, coldRes.Explored)
	}
	// The winner served from a compact disk record must have been
	// upgraded for reporting.
	if warmRes.Best.Compact() {
		t.Error("reported winner is still a compact record")
	}
	if warmRes.Best.Schedule == nil {
		t.Error("reported winner lost its schedule")
	}
	if hits := tel.Registry().Counter("memo.hit.eval").Value(); hits == 0 {
		t.Error("warm run never hit the persisted eval records")
	}
}

// TestMemoSharedStoreConcurrentEvaluators: two evaluators share one
// store while optimizing concurrently with pooled chains — the -race
// target for the cross-evaluator single-flight path — and both land on
// the reference result.
func TestMemoSharedStoreConcurrentEvaluators(t *testing.T) {
	space := tinySpace()
	ref := testEvaluator(t, Tech2D, 400, 15, 85)
	refRes, err := ref.Optimize(space, 3)
	if err != nil {
		t.Fatal(err)
	}

	store := memo.NewStore()
	evs := []*Evaluator{
		testEvaluator(t, Tech2D, 400, 15, 85),
		testEvaluator(t, Tech2D, 400, 15, 85),
	}
	results := make([]*OptimizeResult, 2)
	errs := make([]error, 2)
	done := make(chan int, 2)
	for i := 0; i < 2; i++ {
		evs[i].UseMemo(store)
		go func(i int) {
			defer func() { done <- i }()
			res, err := evs[i].OptimizeContext(context.Background(), space, 3, &OptimizeOptions{Parallel: 3})
			results[i], errs[i] = res, err
		}(i)
	}
	for i := 0; i < 2; i++ {
		<-done
	}
	for i := 0; i < 2; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		res := results[i]
		if !res.Found || res.Best.Point != refRes.Best.Point || res.Best.Objective != refRes.Best.Objective {
			t.Errorf("evaluator %d: winner %v obj %v, want %v obj %v",
				i, res.Best.Point, res.Best.Objective, refRes.Best.Point, refRes.Best.Objective)
		}
		if res.Evaluations != refRes.Evaluations {
			t.Errorf("evaluator %d: %d evaluations, want %d", i, res.Evaluations, refRes.Evaluations)
		}
	}
	if st := store.Stats(); st.Hits == 0 {
		t.Errorf("shared store never hit: %+v", st)
	}
}
